package everest

import (
	"fmt"
	"sync"

	"github.com/everest-project/everest/internal/durable"
	"github.com/everest-project/everest/internal/labelstore"
)

// durableReg is the process-wide table of open durable stores, one per
// directory: every session pointing a query at the same DurableDir logs
// through one store (and one segment file handle), and a directory is
// bound to exactly one label cache — attaching a second cache to it is
// an error, because a WAL of (frame, score) records is only meaningful
// against the one (video, UDF) timeline that produced it.
var durableReg = struct {
	mu sync.Mutex
	m  map[string]*durableEntry
}{m: make(map[string]*durableEntry)}

type durableEntry struct {
	store *durable.Store
	cache *labelstore.SharedCache
}

// ensureDurable makes the session's label cache durable in dir: it
// opens (or reuses) the store, recovering whatever consistent prefix a
// previous process left behind, and attaches it to the cache. A cold
// cache resumes the recovered labels AND version counter; a warm cache
// installs its current state as the store's baseline. Idempotent per
// (cache, dir); a cache already durable elsewhere, or a directory
// already bound to a different cache, is an error.
func ensureDurable(cache *labelstore.SharedCache, dir string) error {
	if dir == "" {
		return nil
	}
	if cache.DurableDir() == dir {
		return nil
	}
	durableReg.mu.Lock()
	defer durableReg.mu.Unlock()
	e, ok := durableReg.m[dir]
	if !ok {
		store, err := durable.Open(dir, durable.Options{})
		if err != nil {
			return fmt.Errorf("everest: opening durable state: %w", err)
		}
		e = &durableEntry{store: store}
		durableReg.m[dir] = e
	}
	if e.cache != nil && e.cache != cache {
		return fmt.Errorf("everest: durable dir %s already serves a different label cache", dir)
	}
	if err := cache.EnableDurable(e.store); err != nil {
		return err
	}
	e.cache = cache
	return nil
}

// closeDurableForTest closes and forgets the store open in dir — the
// process-exit half of a crash/restart simulation. Tests pair it with
// labelstore.ResetForTest; production code has no reason to call it
// (stores live for the process, like the caches they mirror).
func closeDurableForTest(dir string) {
	durableReg.mu.Lock()
	defer durableReg.mu.Unlock()
	if e, ok := durableReg.m[dir]; ok {
		_ = e.store.Close()
		delete(durableReg.m, dir)
	}
}

// EnableDurable makes the session's label cache crash-safe in dir
// without waiting for a query to carry Config.DurableDir: the
// directory's surviving history is recovered into the cache (visible
// through CachedLabels/CacheVersion before any query runs), and every
// label published from now on is logged before its version becomes
// observable. Idempotent for the same directory; see Config.DurableDir
// for the binding rules.
func (s *Session) EnableDurable(dir string) error {
	if dir == "" {
		return fmt.Errorf("everest: EnableDurable needs a directory")
	}
	return ensureDurable(s.cache, dir)
}

// DurableErr reports the first write-ahead-log failure of the session's
// label cache, if any. The cache keeps serving from RAM after a log
// failure — availability over durability — but the on-disk horizon
// stops advancing at the last durable version; a serving deployment
// should surface this the way it surfaces a failed disk. Nil for
// RAM-only sessions and healthy durable ones.
func (s *Session) DurableErr() error {
	return s.cache.DurableErr()
}

// DurableDir returns the directory the session's label cache logs to,
// or "" when the session is RAM-only.
func (s *Session) DurableDir() string {
	return s.cache.DurableDir()
}
