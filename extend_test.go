package everest

import (
	"bytes"
	"testing"

	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// growableSources builds two views of the same camera feed: the feed
// observed after `short` frames (a prefix of the full video) and the same
// feed after the append. The prefix view keeps the camera's name, so the
// index recognizes both as the same feed.
func growableSources(t *testing.T, short, long int, seed uint64) (video.Source, *video.Synthetic) {
	t.Helper()
	full, err := video.NewSynthetic(video.Config{
		Name: "growing", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: long, FPS: 30, Seed: seed, MeanPopulation: 3, BurstRate: 3,
		DailyCycle: true, DistractorPopulation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	day1, err := video.Prefix(full, short)
	if err != nil {
		t.Fatal(err)
	}
	return day1, full
}

func TestExtendIndexCoversAppendedFootage(t *testing.T) {
	day1, full := growableSources(t, 6000, 12000, 107)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)

	ix, err := BuildIndex(day1, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestDay1 := ix.IngestMS()
	tailMS, err := ix.Extend(full, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tailMS <= 0 {
		t.Fatal("tail ingestion cost not recorded")
	}
	if ix.IngestMS() != ingestDay1+tailMS {
		t.Fatalf("IngestMS %v, want %v + %v", ix.IngestMS(), ingestDay1, tailMS)
	}
	if ix.Info().TotalFrames != 12000 {
		t.Fatalf("index covers %d frames, want 12000", ix.Info().TotalFrames)
	}

	// Queries over the extended index see the whole feed and keep the
	// guarantee and the certain-result condition.
	res, err := ix.Query(full, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v < 0.9", res.Confidence)
	}
	sawTail := false
	for i, id := range res.IDs {
		if int(res.Scores[i]) != full.TrueCountFast(id) {
			t.Fatalf("frame %d score %v, truth %d", id, res.Scores[i], full.TrueCountFast(id))
		}
		if id >= 6000 {
			sawTail = true
		}
	}
	_ = sawTail // tail frames are eligible; whether they win depends on content
}

func TestExtendedIndexAnswersWindowQueries(t *testing.T) {
	day1, full := growableSources(t, 6000, 9000, 109)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(day1, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Extend(full, udf, cfg); err != nil {
		t.Fatal(err)
	}
	wcfg := cfg
	wcfg.Window = 60
	res, err := ix.Query(full, udf, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWindow || res.Confidence < 0.9 {
		t.Fatalf("window query over extended index: %+v", res)
	}
	nw := 9000 / 60
	for _, w := range res.IDs {
		if w < 0 || w >= nw {
			t.Fatalf("window %d out of [0, %d)", w, nw)
		}
	}
}

func TestExtendValidation(t *testing.T) {
	day1, full := growableSources(t, 6000, 9000, 113)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(day1, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Extend(day1, udf, cfg); err == nil {
		t.Fatal("extending with the already-covered video must fail")
	}
	if _, err := ix.Extend(full, vision.CountUDF{Class: video.ClassBus}, cfg); err == nil {
		t.Fatal("extending with a different UDF must fail")
	}
	other := testSource(t, 9000, 115)
	if _, err := ix.Extend(other, udf, cfg); err == nil {
		t.Fatal("extending with a different video must fail")
	}
	if _, err := ix.Extend(nil, udf, cfg); err == nil {
		t.Fatal("nil source must fail")
	}
}

func TestExtendedIndexSurvivesSaveLoad(t *testing.T) {
	day1, full := growableSources(t, 6000, 9000, 117)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(day1, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Extend(full, udf, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ix.Query(full, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Query(full, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatalf("round-tripped index diverges at %d", i)
		}
	}
}

func TestExtendThenSessionSharesWork(t *testing.T) {
	day1, full := growableSources(t, 6000, 9000, 119)
	udf := vision.CountUDF{Class: video.ClassCar}
	cfg := smallCfg(5)
	ix, err := BuildIndex(day1, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Extend(full, udf, cfg); err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(ix, full, udf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(cfg); err != nil {
		t.Fatal(err)
	}
	again, err := sess.Query(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.EngineStats.Cleaned != 0 {
		t.Fatalf("repeat over extended index cleaned %d, want 0", again.EngineStats.Cleaned)
	}
}
