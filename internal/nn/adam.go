package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba) over a fixed parameter set.
type Adam struct {
	lr, beta1, beta2, eps float64
	params                []*Param
	m, v                  [][]float64
	t                     int
}

// NewAdam creates an optimizer with the usual defaults (β1=0.9, β2=0.999).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.W))
		a.v[i] = make([]float64, len(p.W))
	}
	return a
}

// Step applies one update from the accumulated gradients and clears them.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		for j, g := range p.G {
			a.m[i][j] = a.beta1*a.m[i][j] + (1-a.beta1)*g
			a.v[i][j] = a.beta2*a.v[i][j] + (1-a.beta2)*g*g
			mhat := a.m[i][j] / c1
			vhat := a.v[i][j] / c2
			p.W[j] -= a.lr * mhat / (math.Sqrt(vhat) + a.eps)
		}
		p.ZeroGrad()
	}
}
