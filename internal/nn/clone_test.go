package nn

import (
	"math"
	"testing"

	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/xrand"
)

func cloneTestModel(seed uint64) *Model {
	r := xrand.New(seed)
	backbone := NewSequential(
		NewDense(6, 8, r),
		NewReLU(8),
	)
	return &Model{Backbone: backbone, Head: NewMDN(8, 3, r)}
}

func cloneTestData(seed uint64, n int) ([][]float64, []float64) {
	r := xrand.New(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, 6)
		for j := range x {
			x[j] = r.Norm()
		}
		xs[i] = x
		ys[i] = x[0] + 0.5*x[1]
	}
	return xs, ys
}

// flatMix copies a model-owned mixture into caller-owned floats.
func flatMix(mix uncertain.Mixture) []float64 {
	out := make([]float64, 0, 3*len(mix))
	for _, c := range mix {
		out = append(out, c.Weight, c.Mean, c.Sigma)
	}
	return out
}

// TestClonePredictsIdentically: a fresh deep clone is bit-identical to
// its original on every input.
func TestClonePredictsIdentically(t *testing.T) {
	m := cloneTestModel(7)
	xs, ys := cloneTestData(11, 64)
	if _, err := m.Fit(xs, ys, TrainConfig{Epochs: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	for _, x := range xs[:8] {
		a := flatMix(m.Predict(x))
		b := flatMix(c.Predict(x))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("clone prediction differs at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// TestCloneTrainsIndependently: fine-tuning a deep clone never mutates
// the original's weights (unlike CloneForInference, which shares them).
func TestCloneTrainsIndependently(t *testing.T) {
	m := cloneTestModel(7)
	xs, ys := cloneTestData(11, 64)
	if _, err := m.Fit(xs, ys, TrainConfig{Epochs: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	before := flatMix(m.Predict(xs[0]))

	c := m.Clone()
	xs2, ys2 := cloneTestData(13, 64)
	if _, err := c.Fit(xs2, ys2, TrainConfig{Epochs: 5, Seed: 9}); err != nil {
		t.Fatal(err)
	}

	after := flatMix(m.Predict(xs[0]))
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("fine-tuning the clone mutated the original (component %d: %v -> %v)", i, before[i], after[i])
		}
	}
	// And the clone did actually move.
	cl := flatMix(c.Predict(xs[0]))
	moved := false
	for i := range before {
		if math.Abs(before[i]-cl[i]) > 1e-12 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("clone's weights did not change under Fit")
	}
}
