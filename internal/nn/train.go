package nn

import (
	"fmt"

	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/xrand"
)

// Model is a complete density network: a feature backbone followed by an
// MDN head. Predict yields the score mixture for one input.
type Model struct {
	// Backbone maps raw inputs to features (may be nil for identity).
	Backbone Layer
	// Head is the mixture-density output.
	Head *MDN
}

// Predict returns the predicted score distribution for input x. The
// returned Mixture is backed by model-owned scratch and valid until the
// next Predict/Forward on this model; callers that retain it must copy.
func (m *Model) Predict(x []float64) uncertain.Mixture {
	if m.Backbone != nil {
		x = m.Backbone.Forward(x)
	}
	return m.Head.Forward(x)
}

// CloneForInference returns a model that shares m's trained weights but
// owns private activation scratch. Clones support concurrent Predict (one
// goroutine per clone) as long as no goroutine trains the shared weights
// at the same time.
func (m *Model) CloneForInference() *Model {
	c := &Model{Head: m.Head.cloneForInference()}
	if m.Backbone != nil {
		c.Backbone = cloneLayerForInference(m.Backbone)
	}
	return c
}

// Clone returns a deep copy of the model: fresh parameter tensors with
// the trained weights copied and gradients cleared. Unlike
// CloneForInference the clone owns its weights, so it can keep training
// — the warm-start path of streaming ingestion fine-tunes a clone of
// the previous segment's model without mutating the original. Optimizer
// state is not part of a Model; a subsequent Fit starts fresh Adam
// moments, as any Fit does.
func (m *Model) Clone() *Model {
	c := &Model{Head: m.Head.clone()}
	if m.Backbone != nil {
		c.Backbone = cloneLayerForTraining(m.Backbone)
	}
	return c
}

// params collects all trainable parameters.
func (m *Model) params() []*Param {
	var ps []*Param
	if m.Backbone != nil {
		ps = append(ps, m.Backbone.Params()...)
	}
	return append(ps, m.Head.Params()...)
}

// TrainConfig controls Fit.
type TrainConfig struct {
	// Epochs is the number of passes over the data.
	Epochs int
	// LearningRate for Adam; zero means 5e-3.
	LearningRate float64
	// BatchSize between optimizer steps; zero means 16.
	BatchSize int
	// Seed drives shuffling.
	Seed uint64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.LearningRate == 0 {
		c.LearningRate = 5e-3
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	return c
}

// Fit trains the model by minibatch Adam on the NLL and returns the final
// mean training NLL.
func (m *Model) Fit(xs [][]float64, ys []float64, cfg TrainConfig) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: %d inputs but %d targets", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, fmt.Errorf("nn: empty training set")
	}
	cfg = cfg.withDefaults()
	opt := NewAdam(m.params(), cfg.LearningRate)
	r := xrand.New(cfg.Seed).Split("nn/fit")
	var last float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := r.Perm(len(xs))
		total := 0.0
		inBatch := 0
		for _, i := range perm {
			x := xs[i]
			if m.Backbone != nil {
				x = m.Backbone.Forward(x)
			}
			m.Head.Forward(x)
			total += m.Head.NLL(ys[i])
			gradFeat := m.Head.Backward(ys[i])
			if m.Backbone != nil {
				m.Backbone.Backward(gradFeat)
			}
			inBatch++
			if inBatch == cfg.BatchSize {
				opt.Step()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step()
		}
		last = total / float64(len(xs))
	}
	return last, nil
}

// MeanNLL evaluates the mean NLL on a holdout set — the model-selection
// criterion of §3.2.
func (m *Model) MeanNLL(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for i, x := range xs {
		m.Predict(x)
		total += m.Head.NLL(ys[i])
	}
	return total / float64(len(xs))
}
