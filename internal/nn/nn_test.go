package nn

import (
	"math"
	"testing"

	"github.com/everest-project/everest/internal/xrand"
)

// gradCheck compares analytic parameter gradients of a scalar loss against
// central finite differences.
func gradCheck(t *testing.T, layer Layer, inSize int, seed uint64, tol float64) {
	t.Helper()
	r := xrand.New(seed)
	x := make([]float64, inSize)
	for i := range x {
		x[i] = r.Norm()
	}
	// Loss: weighted sum of outputs with fixed random weights (so the
	// output gradient is nontrivial).
	wOut := make([]float64, layer.OutSize())
	for i := range wOut {
		wOut[i] = r.Norm()
	}
	loss := func() float64 {
		out := layer.Forward(x)
		s := 0.0
		for i, v := range out {
			s += wOut[i] * v
		}
		return s
	}
	// Analytic gradients.
	loss()
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	dx := layer.Backward(wOut)

	const h = 1e-5
	for pi, p := range layer.Params() {
		for wi := 0; wi < len(p.W); wi += 1 + len(p.W)/25 { // sample entries
			orig := p.W[wi]
			p.W[wi] = orig + h
			up := loss()
			p.W[wi] = orig - h
			down := loss()
			p.W[wi] = orig
			want := (up - down) / (2 * h)
			if math.Abs(want-p.G[wi]) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %d[%d]: analytic %v, numeric %v", pi, wi, p.G[wi], want)
			}
		}
	}
	// Input gradients.
	for i := 0; i < inSize; i += 1 + inSize/25 {
		orig := x[i]
		x[i] = orig + h
		up := loss()
		x[i] = orig - h
		down := loss()
		x[i] = orig
		want := (up - down) / (2 * h)
		if math.Abs(want-dx[i]) > tol*(1+math.Abs(want)) {
			t.Fatalf("input[%d]: analytic %v, numeric %v", i, dx[i], want)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	gradCheck(t, NewDense(7, 5, xrand.New(1)), 7, 2, 1e-6)
}

func TestConvGradients(t *testing.T) {
	gradCheck(t, NewConv2D(2, 6, 6, 3, xrand.New(3)), 2*6*6, 4, 1e-5)
}

func TestSequentialGradients(t *testing.T) {
	r := xrand.New(5)
	seq := NewSequential(
		NewDense(6, 8, r),
		NewReLU(8),
		NewDense(8, 4, r),
	)
	gradCheck(t, seq, 6, 6, 1e-6)
}

func TestConvPoolStackGradients(t *testing.T) {
	r := xrand.New(7)
	seq := NewSequential(
		NewConv2D(1, 8, 8, 2, r),
		NewReLU(2*8*8),
		NewMaxPool2D(2, 8, 8),
		NewDense(2*4*4, 3, r),
	)
	gradCheck(t, seq, 64, 8, 1e-5)
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2D(1, 2, 2)
	out := p.Forward([]float64{1, 5, 3, 2})
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("pool output %v", out)
	}
	dx := p.Backward([]float64{2})
	want := []float64{0, 2, 0, 0}
	for i := range want {
		if dx[i] != want[i] {
			t.Fatalf("pool backward %v", dx)
		}
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU(3)
	out := r.Forward([]float64{-1, 0, 2})
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("relu forward %v", out)
	}
	dx := r.Backward([]float64{1, 1, 1})
	if dx[0] != 0 || dx[1] != 0 || dx[2] != 1 {
		t.Fatalf("relu backward %v", dx)
	}
}

func TestMDNGradients(t *testing.T) {
	r := xrand.New(11)
	mdn := NewMDN(5, 3, r)
	x := make([]float64, 5)
	for i := range x {
		x[i] = r.Norm()
	}
	y := 0.7
	loss := func() float64 {
		mdn.Forward(x)
		return mdn.NLL(y)
	}
	loss()
	for _, p := range mdn.Params() {
		p.ZeroGrad()
	}
	dx := mdn.Backward(y)
	const h = 1e-5
	for pi, p := range mdn.Params() {
		for wi := range p.W {
			orig := p.W[wi]
			p.W[wi] = orig + h
			up := loss()
			p.W[wi] = orig - h
			down := loss()
			p.W[wi] = orig
			want := (up - down) / (2 * h)
			if math.Abs(want-p.G[wi]) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("mdn param %d[%d]: analytic %v numeric %v", pi, wi, p.G[wi], want)
			}
		}
	}
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		up := loss()
		x[i] = orig - h
		down := loss()
		x[i] = orig
		want := (up - down) / (2 * h)
		if math.Abs(want-dx[i]) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("mdn input[%d]: analytic %v numeric %v", i, dx[i], want)
		}
	}
}

func TestMDNMixtureValid(t *testing.T) {
	r := xrand.New(13)
	mdn := NewMDN(4, 5, r)
	x := []float64{0.1, -0.5, 2, 0.3}
	mix := mdn.Forward(x)
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitLearnsConditionalMean(t *testing.T) {
	// y = 3*x0 + 1 + noise: after training, predicted mixture mean should
	// track the target.
	r := xrand.New(17)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		x := r.Float64() * 2
		xs = append(xs, []float64{x})
		ys = append(ys, 3*x+1+0.1*r.Norm())
	}
	rr := xrand.New(18)
	model := &Model{
		Backbone: NewSequential(NewDense(1, 16, rr), NewReLU(16)),
		Head:     NewMDN(16, 3, rr),
	}
	nll, err := model.Fit(xs, ys, TrainConfig{Epochs: 60, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	var errSum float64
	for _, xv := range []float64{0.2, 1.0, 1.8} {
		mix := model.Predict([]float64{xv})
		errSum += math.Abs(mix.Mean() - (3*xv + 1))
	}
	if errSum/3 > 0.4 {
		t.Fatalf("mean abs prediction error %v after training (nll %v)", errSum/3, nll)
	}
}

func TestFitLearnsBimodal(t *testing.T) {
	// Targets split into two modes depending on nothing: a single Gaussian
	// cannot model them; the mixture should place mass near both.
	r := xrand.New(23)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		xs = append(xs, []float64{1})
		mode := 2.0
		if r.Float64() < 0.5 {
			mode = 8
		}
		ys = append(ys, mode+0.2*r.Norm())
	}
	rr := xrand.New(24)
	model := &Model{Head: NewMDN(1, 4, rr)}
	if _, err := model.Fit(xs, ys, TrainConfig{Epochs: 120, Seed: 25}); err != nil {
		t.Fatal(err)
	}
	mix := model.Predict([]float64{1})
	var nearLow, nearHigh float64
	for _, c := range mix {
		if math.Abs(c.Mean-2) < 1 {
			nearLow += c.Weight
		}
		if math.Abs(c.Mean-8) < 1 {
			nearHigh += c.Weight
		}
	}
	if nearLow < 0.3 || nearHigh < 0.3 {
		t.Fatalf("bimodal not captured: low %.2f high %.2f (%v)", nearLow, nearHigh, mix)
	}
}

func TestFitReducesNLL(t *testing.T) {
	r := xrand.New(29)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := r.Norm()
		xs = append(xs, []float64{x})
		ys = append(ys, x*x+0.1*r.Norm())
	}
	rr := xrand.New(30)
	model := &Model{
		Backbone: NewSequential(NewDense(1, 12, rr), NewReLU(12)),
		Head:     NewMDN(12, 3, rr),
	}
	before := model.MeanNLL(xs, ys)
	after, err := model.Fit(xs, ys, TrainConfig{Epochs: 40, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("training did not reduce NLL: %v -> %v", before, after)
	}
}

func TestFitValidation(t *testing.T) {
	model := &Model{Head: NewMDN(1, 2, xrand.New(1))}
	if _, err := model.Fit(nil, nil, TrainConfig{}); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := model.Fit([][]float64{{1}}, []float64{1, 2}, TrainConfig{}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestFitDeterministic(t *testing.T) {
	build := func() *Model {
		rr := xrand.New(41)
		return &Model{Head: NewMDN(2, 2, rr)}
	}
	xs := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	ys := []float64{1, 2, 3}
	m1, m2 := build(), build()
	n1, _ := m1.Fit(xs, ys, TrainConfig{Epochs: 10, Seed: 42})
	n2, _ := m2.Fit(xs, ys, TrainConfig{Epochs: 10, Seed: 42})
	if n1 != n2 {
		t.Fatalf("training nondeterministic: %v vs %v", n1, n2)
	}
}
