package nn

import (
	"fmt"
	"math"

	"github.com/everest-project/everest/internal/xrand"
)

// Conv2D is a 3×3 same-padding convolution over channel-major (C,H,W)
// activations — the building block of the paper's CMDN backbone (Fig. 2:
// five 3×3 conv layers, each followed by 2×2 max-pooling).
type Conv2D struct {
	inC, inH, inW int
	outC          int
	k             int
	w, b          *Param
	x             []float64
	fwd           []float64
	din           []float64
}

// NewConv2D creates a conv layer with He-initialized 3×3 kernels.
func NewConv2D(inC, inH, inW, outC int, r *xrand.RNG) *Conv2D {
	const k = 3
	c := &Conv2D{
		inC: inC, inH: inH, inW: inW, outC: outC, k: k,
		w: newParam(outC * inC * k * k),
		b: newParam(outC),
	}
	std := math.Sqrt(2 / float64(inC*k*k))
	for i := range c.w.W {
		c.w.W[i] = std * r.Norm()
	}
	return c
}

func (c *Conv2D) inSize() int { return c.inC * c.inH * c.inW }

// OutSize implements Layer.
func (c *Conv2D) OutSize() int { return c.outC * c.inH * c.inW }

// Forward implements Layer.
func (c *Conv2D) Forward(x []float64) []float64 {
	if len(x) != c.inSize() {
		panic(fmt.Sprintf("nn: Conv2D input %d, want %d", len(x), c.inSize()))
	}
	c.x = x
	c.fwd = scratch(c.fwd, c.OutSize())
	out := c.fwd
	pad := c.k / 2
	for oc := 0; oc < c.outC; oc++ {
		for y := 0; y < c.inH; y++ {
			for xx := 0; xx < c.inW; xx++ {
				s := c.b.W[oc]
				for ic := 0; ic < c.inC; ic++ {
					for dy := 0; dy < c.k; dy++ {
						sy := y + dy - pad
						if sy < 0 || sy >= c.inH {
							continue
						}
						for dx := 0; dx < c.k; dx++ {
							sx := xx + dx - pad
							if sx < 0 || sx >= c.inW {
								continue
							}
							s += c.w.W[((oc*c.inC+ic)*c.k+dy)*c.k+dx] * x[(ic*c.inH+sy)*c.inW+sx]
						}
					}
				}
				out[(oc*c.inH+y)*c.inW+xx] = s
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad []float64) []float64 {
	c.din = zeroed(c.din, c.inSize())
	din := c.din
	pad := c.k / 2
	for oc := 0; oc < c.outC; oc++ {
		for y := 0; y < c.inH; y++ {
			for xx := 0; xx < c.inW; xx++ {
				g := grad[(oc*c.inH+y)*c.inW+xx]
				if g == 0 {
					continue
				}
				c.b.G[oc] += g
				for ic := 0; ic < c.inC; ic++ {
					for dy := 0; dy < c.k; dy++ {
						sy := y + dy - pad
						if sy < 0 || sy >= c.inH {
							continue
						}
						for dx := 0; dx < c.k; dx++ {
							sx := xx + dx - pad
							if sx < 0 || sx >= c.inW {
								continue
							}
							wi := ((oc*c.inC+ic)*c.k+dy)*c.k + dx
							xi := (ic*c.inH+sy)*c.inW + sx
							c.w.G[wi] += g * c.x[xi]
							din[xi] += g * c.w.W[wi]
						}
					}
				}
			}
		}
	}
	return din
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// MaxPool2D is a 2×2 stride-2 max pool over (C,H,W) activations.
type MaxPool2D struct {
	c, h, w int // input geometry; h and w must be even
	argmax  []int
	fwd     []float64
	dx      []float64
}

// NewMaxPool2D creates a pool layer for the given input geometry.
func NewMaxPool2D(c, h, w int) *MaxPool2D {
	if h%2 != 0 || w%2 != 0 {
		panic("nn: MaxPool2D requires even input dimensions")
	}
	return &MaxPool2D{c: c, h: h, w: w, argmax: make([]int, c*(h/2)*(w/2))}
}

// OutSize implements Layer.
func (m *MaxPool2D) OutSize() int { return m.c * (m.h / 2) * (m.w / 2) }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x []float64) []float64 {
	oh, ow := m.h/2, m.w/2
	m.fwd = scratch(m.fwd, m.OutSize())
	out := m.fwd
	for c := 0; c < m.c; c++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				best := math.Inf(-1)
				bestI := -1
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						i := (c*m.h+2*y+dy)*m.w + 2*xx + dx
						if x[i] > best {
							best = x[i]
							bestI = i
						}
					}
				}
				o := (c*oh+y)*ow + xx
				out[o] = best
				m.argmax[o] = bestI
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad []float64) []float64 {
	m.dx = zeroed(m.dx, m.c*m.h*m.w)
	dx := m.dx
	for o, g := range grad {
		dx[m.argmax[o]] += g
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }
