// Package nn is a small from-scratch neural-network substrate built for
// the CMDN proxy scorer (§3.2): dense and convolutional layers, ReLU,
// max-pooling, an Adam optimizer and a mixture-density output head trained
// by negative log-likelihood. It is slice-based and deliberately free of
// cleverness — the reproduction needs a correct, deterministic trainer at
// sample counts of a few thousand, not a framework.
//
// Memory discipline: layers own reusable scratch buffers, so the
// steady-state forward/backward hot path allocates nothing. The slices
// returned by Forward and Backward are owned by the layer and remain valid
// only until its next call; callers that retain results must copy.
//
// Concurrency: a Layer or Model instance processes one sample at a time
// and is NOT safe for concurrent use. Model.CloneForInference returns a
// clone that shares the trained weights but owns private scratch, so N
// clones can run Forward/Predict on N goroutines as long as nobody trains
// concurrently.
package nn

import (
	"fmt"
	"math"

	"github.com/everest-project/everest/internal/xrand"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	// W holds the weights.
	W []float64
	// G accumulates dLoss/dW between optimizer steps.
	G []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// clone returns a deep copy: fresh tensors with the weights copied and
// the gradient accumulator cleared.
func (p *Param) clone() *Param {
	c := newParam(len(p.W))
	copy(c.W, p.W)
	return c
}

// Layer is a differentiable transform. Forward caches whatever Backward
// needs, so a Layer instance processes one sample at a time. Forward and
// Backward return layer-owned scratch, valid until the next call.
type Layer interface {
	// Forward maps the input activation to the output activation.
	Forward(x []float64) []float64
	// Backward takes dLoss/dOutput, accumulates parameter gradients and
	// returns dLoss/dInput.
	Backward(grad []float64) []float64
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// OutSize is the length of the output activation vector.
	OutSize() int
}

// scratch returns buf resized to n, reusing its backing array when able.
func scratch(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// zeroed returns buf resized to n with every element cleared.
func zeroed(buf []float64, n int) []float64 {
	buf = scratch(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// cloneLayerForInference returns a layer sharing l's trainable parameters
// but owning private activation scratch. All layer types defined in this
// package are supported; cloning an unknown Layer implementation panics.
func cloneLayerForInference(l Layer) Layer {
	switch v := l.(type) {
	case *Dense:
		return &Dense{in: v.in, out: v.out, w: v.w, b: v.b}
	case *ReLU:
		return NewReLU(v.n)
	case *Conv2D:
		return &Conv2D{inC: v.inC, inH: v.inH, inW: v.inW, outC: v.outC, k: v.k, w: v.w, b: v.b}
	case *MaxPool2D:
		return NewMaxPool2D(v.c, v.h, v.w)
	case *Sequential:
		layers := make([]Layer, len(v.layers))
		for i, l := range v.layers {
			layers[i] = cloneLayerForInference(l)
		}
		return &Sequential{layers: layers}
	default:
		panic(fmt.Sprintf("nn: cannot clone layer of type %T", l))
	}
}

// cloneLayerForTraining returns a deep copy of a layer: fresh parameter
// tensors with the trained weights copied, so the clone can keep
// training (warm-start fine-tuning) without mutating the original. All
// layer types defined in this package are supported; cloning an unknown
// Layer implementation panics.
func cloneLayerForTraining(l Layer) Layer {
	switch v := l.(type) {
	case *Dense:
		return &Dense{in: v.in, out: v.out, w: v.w.clone(), b: v.b.clone()}
	case *ReLU:
		return NewReLU(v.n)
	case *Conv2D:
		return &Conv2D{inC: v.inC, inH: v.inH, inW: v.inW, outC: v.outC, k: v.k, w: v.w.clone(), b: v.b.clone()}
	case *MaxPool2D:
		return NewMaxPool2D(v.c, v.h, v.w)
	case *Sequential:
		layers := make([]Layer, len(v.layers))
		for i, l := range v.layers {
			layers[i] = cloneLayerForTraining(l)
		}
		return &Sequential{layers: layers}
	default:
		panic(fmt.Sprintf("nn: cannot clone layer of type %T", l))
	}
}

// Dense is a fully connected layer: out = W·x + b.
type Dense struct {
	in, out int
	w, b    *Param
	x       []float64 // cached input
	fwd     []float64 // Forward scratch
	dx      []float64 // Backward scratch
}

// NewDense creates a dense layer with He-initialized weights.
func NewDense(in, out int, r *xrand.RNG) *Dense {
	d := &Dense{in: in, out: out, w: newParam(in * out), b: newParam(out)}
	std := math.Sqrt(2 / float64(in))
	for i := range d.w.W {
		d.w.W[i] = std * r.Norm()
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.in {
		panic(fmt.Sprintf("nn: Dense input %d, want %d", len(x), d.in))
	}
	d.x = x
	d.fwd = scratch(d.fwd, d.out)
	out := d.fwd
	for o := 0; o < d.out; o++ {
		s := d.b.W[o]
		row := d.w.W[o*d.in : (o+1)*d.in]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	d.dx = zeroed(d.dx, d.in)
	dx := d.dx
	for o := 0; o < d.out; o++ {
		g := grad[o]
		d.b.G[o] += g
		row := d.w.W[o*d.in : (o+1)*d.in]
		growRow := d.w.G[o*d.in : (o+1)*d.in]
		for i := range row {
			growRow[i] += g * d.x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutSize implements Layer.
func (d *Dense) OutSize() int { return d.out }

// ReLU is the rectified linear activation.
type ReLU struct {
	n    int
	mask []bool
	fwd  []float64
	dx   []float64
}

// NewReLU creates a ReLU over n units.
func NewReLU(n int) *ReLU { return &ReLU{n: n, mask: make([]bool, n)} }

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	r.fwd = scratch(r.fwd, len(x))
	out := r.fwd
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		} else {
			out[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad []float64) []float64 {
	r.dx = scratch(r.dx, len(grad))
	dx := r.dx
	for i, g := range grad {
		if r.mask[i] {
			dx[i] = g
		} else {
			dx[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutSize implements Layer.
func (r *ReLU) OutSize() int { return r.n }

// Sequential chains layers.
type Sequential struct {
	layers []Layer
}

// NewSequential builds a chain.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad []float64) []float64 {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutSize implements Layer.
func (s *Sequential) OutSize() int { return s.layers[len(s.layers)-1].OutSize() }
