// Package nn is a small from-scratch neural-network substrate built for
// the CMDN proxy scorer (§3.2): dense and convolutional layers, ReLU,
// max-pooling, an Adam optimizer and a mixture-density output head trained
// by negative log-likelihood. It is single-threaded, slice-based and
// deliberately free of cleverness — the reproduction needs a correct,
// deterministic trainer at sample counts of a few thousand, not a
// framework.
package nn

import (
	"fmt"
	"math"

	"github.com/everest-project/everest/internal/xrand"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	// W holds the weights.
	W []float64
	// G accumulates dLoss/dW between optimizer steps.
	G []float64
}

func newParam(n int) *Param {
	return &Param{W: make([]float64, n), G: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is a differentiable transform. Forward caches whatever Backward
// needs, so a Layer instance processes one sample at a time.
type Layer interface {
	// Forward maps the input activation to the output activation.
	Forward(x []float64) []float64
	// Backward takes dLoss/dOutput, accumulates parameter gradients and
	// returns dLoss/dInput.
	Backward(grad []float64) []float64
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// OutSize is the length of the output activation vector.
	OutSize() int
}

// Dense is a fully connected layer: out = W·x + b.
type Dense struct {
	in, out int
	w, b    *Param
	x       []float64 // cached input
}

// NewDense creates a dense layer with He-initialized weights.
func NewDense(in, out int, r *xrand.RNG) *Dense {
	d := &Dense{in: in, out: out, w: newParam(in * out), b: newParam(out)}
	std := math.Sqrt(2 / float64(in))
	for i := range d.w.W {
		d.w.W[i] = std * r.Norm()
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.in {
		panic(fmt.Sprintf("nn: Dense input %d, want %d", len(x), d.in))
	}
	d.x = x
	out := make([]float64, d.out)
	for o := 0; o < d.out; o++ {
		s := d.b.W[o]
		row := d.w.W[o*d.in : (o+1)*d.in]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	dx := make([]float64, d.in)
	for o := 0; o < d.out; o++ {
		g := grad[o]
		d.b.G[o] += g
		row := d.w.W[o*d.in : (o+1)*d.in]
		growRow := d.w.G[o*d.in : (o+1)*d.in]
		for i := range row {
			growRow[i] += g * d.x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutSize implements Layer.
func (d *Dense) OutSize() int { return d.out }

// ReLU is the rectified linear activation.
type ReLU struct {
	n    int
	mask []bool
}

// NewReLU creates a ReLU over n units.
func NewReLU(n int) *ReLU { return &ReLU{n: n, mask: make([]bool, n)} }

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad []float64) []float64 {
	dx := make([]float64, len(grad))
	for i, g := range grad {
		if r.mask[i] {
			dx[i] = g
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutSize implements Layer.
func (r *ReLU) OutSize() int { return r.n }

// Sequential chains layers.
type Sequential struct {
	layers []Layer
}

// NewSequential builds a chain.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad []float64) []float64 {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutSize implements Layer.
func (s *Sequential) OutSize() int { return s.layers[len(s.layers)-1].OutSize() }
