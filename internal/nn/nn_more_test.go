package nn

import (
	"math"
	"testing"

	"github.com/everest-project/everest/internal/xrand"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² + (v+2)²; Adam must approach the optimum.
	p := newParam(2)
	p.W[0], p.W[1] = 10, 10
	opt := NewAdam([]*Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		p.G[0] = 2 * (p.W[0] - 3)
		p.G[1] = 2 * (p.W[1] + 2)
		opt.Step()
	}
	if math.Abs(p.W[0]-3) > 0.05 || math.Abs(p.W[1]+2) > 0.05 {
		t.Fatalf("Adam did not converge: %v", p.W)
	}
}

func TestAdamStepClearsGradients(t *testing.T) {
	p := newParam(1)
	p.G[0] = 5
	NewAdam([]*Param{p}, 0.01).Step()
	if p.G[0] != 0 {
		t.Fatal("Step must clear gradients")
	}
}

func TestZeroGrad(t *testing.T) {
	p := newParam(3)
	for i := range p.G {
		p.G[i] = float64(i + 1)
	}
	p.ZeroGrad()
	for _, g := range p.G {
		if g != 0 {
			t.Fatal("ZeroGrad incomplete")
		}
	}
}

func TestDenseInputSizePanic(t *testing.T) {
	d := NewDense(3, 2, xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size should panic")
		}
	}()
	d.Forward([]float64{1, 2})
}

func TestConvInputSizePanic(t *testing.T) {
	c := NewConv2D(1, 4, 4, 2, xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size should panic")
		}
	}()
	c.Forward(make([]float64, 15))
}

func TestMaxPoolOddDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd pooling dims should panic")
		}
	}()
	NewMaxPool2D(1, 3, 4)
}

func TestSequentialOutSize(t *testing.T) {
	r := xrand.New(2)
	s := NewSequential(NewDense(4, 8, r), NewReLU(8), NewDense(8, 3, r))
	if s.OutSize() != 3 {
		t.Fatalf("OutSize = %d", s.OutSize())
	}
	if len(s.Params()) != 4 { // two dense layers × (w, b)
		t.Fatalf("Params = %d", len(s.Params()))
	}
}

func TestMDNSigmaFloor(t *testing.T) {
	// Force tiny sigmas via the raw output and verify the floor holds.
	r := xrand.New(3)
	m := NewMDN(2, 3, r)
	// Push log-sigma biases far below the floor.
	for j := 0; j < 3; j++ {
		m.dense.b.W[6+j] = -100
	}
	mix := m.Forward([]float64{0, 0})
	for _, c := range mix {
		if c.Sigma < math.Exp(minLogSigma)-1e-12 {
			t.Fatalf("sigma %v below floor", c.Sigma)
		}
	}
	// NLL stays finite even at the floor.
	if nll := m.NLL(1000); math.IsInf(nll, 0) || math.IsNaN(nll) {
		t.Fatalf("NLL not finite: %v", nll)
	}
}

func TestMDNWeightsSumToOne(t *testing.T) {
	r := xrand.New(5)
	m := NewMDN(4, 6, r)
	x := make([]float64, 4)
	for trial := 0; trial < 20; trial++ {
		for i := range x {
			x[i] = r.Norm() * 3
		}
		mix := m.Forward(x)
		sum := 0.0
		for _, c := range mix {
			sum += c.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %v", sum)
		}
	}
}

func TestModelPredictWithoutBackbone(t *testing.T) {
	m := &Model{Head: NewMDN(3, 2, xrand.New(7))}
	mix := m.Predict([]float64{1, 2, 3})
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainConfigDefaults(t *testing.T) {
	c := TrainConfig{}.withDefaults()
	if c.Epochs == 0 || c.LearningRate == 0 || c.BatchSize == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
