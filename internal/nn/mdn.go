package nn

import (
	"math"

	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/xrand"
)

// MDN is the mixture-density output head of the CMDN (Fig. 2): a dense
// layer mapping the backbone's features to the parameters of g Gaussians —
// mixing logits α, means μ and log-standard-deviations s — trained by
// negative log-likelihood [23, 27].
//
// All per-call working memory (mixture parameters, responsibilities,
// gradients) lives in buffers sized once at construction, so Forward, NLL
// and Backward allocate nothing. The Mixture returned by Forward is owned
// by the head and valid until its next Forward.
type MDN struct {
	g     int
	dense *Dense

	// caches for NLL/Backward, sized g (lp/logNs/gamma) at construction.
	pi, mu, sigma []float64
	lp            []float64
	gamma         []float64
	grad          []float64 // 3g, Backward's head gradient
	mix           uncertain.Mixture
}

// minLogSigma floors σ to keep the likelihood finite on near-deterministic
// targets.
const minLogSigma = -4

// NewMDN creates a head with g mixture components over featIn features.
func NewMDN(featIn, g int, r *xrand.RNG) *MDN {
	m := &MDN{
		g:     g,
		dense: NewDense(featIn, 3*g, r),
		pi:    make([]float64, g),
		mu:    make([]float64, g),
		sigma: make([]float64, g),
		lp:    make([]float64, g),
		gamma: make([]float64, g),
		grad:  make([]float64, 3*g),
		mix:   make(uncertain.Mixture, g),
	}
	// Bias the initial log-sigmas to a moderate spread so early training
	// does not saturate, and spread the initial means across the
	// standardized-target range (roughly [-1.5, 4.5] for skewed counts)
	// so components specialize without parking at out-of-range values.
	for j := 0; j < g; j++ {
		m.dense.b.W[2*g+j] = 0.5
		if g > 1 {
			m.dense.b.W[g+j] = -1.5 + 6*float64(j)/float64(g-1)
		}
	}
	return m
}

// cloneForInference returns a head sharing m's trained weights with
// private scratch, safe for concurrent Forward/NLL against the original.
func (m *MDN) cloneForInference() *MDN {
	return &MDN{
		g:     m.g,
		dense: &Dense{in: m.dense.in, out: m.dense.out, w: m.dense.w, b: m.dense.b},
		pi:    make([]float64, m.g),
		mu:    make([]float64, m.g),
		sigma: make([]float64, m.g),
		lp:    make([]float64, m.g),
		gamma: make([]float64, m.g),
		grad:  make([]float64, 3*m.g),
		mix:   make(uncertain.Mixture, m.g),
	}
}

// clone returns a deep copy of the head: fresh dense parameters with
// the trained weights copied, private scratch. The clone may keep
// training independently of the original.
func (m *MDN) clone() *MDN {
	c := m.cloneForInference()
	c.dense.w = m.dense.w.clone()
	c.dense.b = m.dense.b.clone()
	return c
}

// Components returns g.
func (m *MDN) Components() int { return m.g }

// Params returns the head's trainable parameters.
func (m *MDN) Params() []*Param { return m.dense.Params() }

// Forward computes the predicted mixture for a feature vector. The
// returned Mixture is owned by the head and valid until the next Forward;
// callers that retain it must copy.
func (m *MDN) Forward(feat []float64) uncertain.Mixture {
	raw := m.dense.Forward(feat)
	g := m.g
	alpha, muRaw, sRaw := raw[:g], raw[g:2*g], raw[2*g:]

	// Softmax over alpha (stable).
	maxA := alpha[0]
	for _, a := range alpha[1:] {
		maxA = math.Max(maxA, a)
	}
	sum := 0.0
	for j, a := range alpha {
		m.pi[j] = math.Exp(a - maxA)
		sum += m.pi[j]
	}
	for j := 0; j < g; j++ {
		m.pi[j] /= sum
		m.mu[j] = muRaw[j]
		s := math.Max(sRaw[j], minLogSigma)
		m.sigma[j] = math.Exp(s)
		m.mix[j] = uncertain.GaussianComponent{Weight: m.pi[j], Mean: m.mu[j], Sigma: m.sigma[j]}
	}
	return m.mix
}

// NLL returns the negative log-likelihood of target y under the mixture
// from the most recent Forward.
func (m *MDN) NLL(y float64) float64 {
	// logsumexp over log π_j + log N_j.
	best := math.Inf(-1)
	lp := m.lp
	for j := 0; j < m.g; j++ {
		z := (y - m.mu[j]) / m.sigma[j]
		lp[j] = math.Log(m.pi[j]) - math.Log(m.sigma[j]) - 0.5*z*z - 0.5*math.Log(2*math.Pi)
		best = math.Max(best, lp[j])
	}
	s := 0.0
	for _, v := range lp {
		s += math.Exp(v - best)
	}
	return -(best + math.Log(s))
}

// Backward accumulates gradients of the NLL at target y (for the sample
// last passed to Forward) and returns dLoss/dFeatures.
func (m *MDN) Backward(y float64) []float64 {
	g := m.g
	// Responsibilities γ_j = π_j N_j / Σ π N (computed stably).
	logNs := m.lp
	best := math.Inf(-1)
	for j := 0; j < g; j++ {
		z := (y - m.mu[j]) / m.sigma[j]
		logNs[j] = math.Log(m.pi[j]) - math.Log(m.sigma[j]) - 0.5*z*z
		best = math.Max(best, logNs[j])
	}
	var norm float64
	gamma := m.gamma
	for j := 0; j < g; j++ {
		gamma[j] = math.Exp(logNs[j] - best)
		norm += gamma[j]
	}
	for j := range gamma {
		gamma[j] /= norm
	}

	grad := m.grad
	for j := 0; j < g; j++ {
		// dL/dα_j = π_j − γ_j (softmax + NLL).
		grad[j] = m.pi[j] - gamma[j]
		// dL/dμ_j = γ_j (μ_j − y)/σ_j².
		grad[g+j] = gamma[j] * (m.mu[j] - y) / (m.sigma[j] * m.sigma[j])
		// dL/ds_j = γ_j (1 − z²) with z = (y−μ)/σ; zero in the clamped
		// region.
		z := (y - m.mu[j]) / m.sigma[j]
		ds := gamma[j] * (1 - z*z)
		if math.Log(m.sigma[j]) <= minLogSigma+1e-12 {
			ds = 0 // σ is clamped: the forward pass is flat in s here
		}
		grad[2*g+j] = ds
	}
	return m.dense.Backward(grad)
}
