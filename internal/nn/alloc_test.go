package nn

import (
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/xrand"
)

// buildPredictModel mirrors the ArchPooled CMDN: Dense→ReLU backbone with
// an MDN head — the shape Predict runs millions of times in Phase 1.
func buildPredictModel() *Model {
	r := xrand.New(99)
	return &Model{
		Backbone: NewSequential(NewDense(32, 24, r), NewReLU(24)),
		Head:     NewMDN(24, 8, r),
	}
}

func TestPredictAllocationFree(t *testing.T) {
	m := buildPredictModel()
	x := make([]float64, 32)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	m.Predict(x) // warm up scratch
	if allocs := testing.AllocsPerRun(100, func() { m.Predict(x) }); allocs != 0 {
		t.Fatalf("Model.Predict allocates %v objects per call, want 0", allocs)
	}
}

func TestTrainStepAllocationFree(t *testing.T) {
	m := buildPredictModel()
	x := make([]float64, 32)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	step := func() {
		feat := m.Backbone.Forward(x)
		m.Head.Forward(feat)
		gradFeat := m.Head.Backward(0.5)
		m.Backbone.Backward(gradFeat)
	}
	step() // warm up scratch
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("forward/backward allocates %v objects per call, want 0", allocs)
	}
}

func TestConvStackAllocationFree(t *testing.T) {
	r := xrand.New(7)
	seq := NewSequential(
		NewConv2D(1, 8, 8, 2, r),
		NewReLU(2*8*8),
		NewMaxPool2D(2, 8, 8),
		NewDense(2*4*4, 3, r),
	)
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i%5) * 0.2
	}
	grad := []float64{1, -1, 0.5}
	step := func() {
		seq.Forward(x)
		seq.Backward(grad)
	}
	step()
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("conv stack allocates %v objects per call, want 0", allocs)
	}
}

func TestCloneForInferenceMatchesOriginal(t *testing.T) {
	m := buildPredictModel()
	clone := m.CloneForInference()
	x := []float64{0.3}
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = x[0] * float64(i)
	}
	want := m.Predict(xs)
	got := clone.Predict(xs)
	if len(want) != len(got) {
		t.Fatalf("clone mixture size %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("component %d: clone %+v vs original %+v", i, got[i], want[i])
		}
	}
}

func TestCloneForInferenceConcurrent(t *testing.T) {
	m := buildPredictModel()
	const workers = 8
	const perWorker = 200
	inputs := make([][]float64, perWorker)
	r := xrand.New(3)
	for i := range inputs {
		inputs[i] = make([]float64, 32)
		for j := range inputs[i] {
			inputs[i][j] = r.Norm()
		}
	}
	// Serial reference means.
	want := make([]float64, perWorker)
	for i, x := range inputs {
		want[i] = m.Predict(x).Mean()
	}
	var wg sync.WaitGroup
	errs := make([]string, workers)
	for w := 0; w < workers; w++ {
		clone := m.CloneForInference()
		wg.Add(1)
		go func(w int, c *Model) {
			defer wg.Done()
			for i, x := range inputs {
				if got := c.Predict(x).Mean(); got != want[i] {
					errs[w] = "clone diverged from serial prediction"
					return
				}
			}
		}(w, clone)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Fatal(e)
		}
	}
}

func TestCloneConvModel(t *testing.T) {
	r := xrand.New(11)
	m := &Model{
		Backbone: NewSequential(
			NewConv2D(1, 8, 8, 2, r),
			NewReLU(2*8*8),
			NewMaxPool2D(2, 8, 8),
			NewDense(2*4*4, 6, r),
			NewReLU(6),
		),
		Head: NewMDN(6, 3, r),
	}
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i%7) * 0.1
	}
	want := m.Predict(x)
	got := m.CloneForInference().Predict(x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("conv clone component %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
