// Package xrand provides deterministic, stream-splittable pseudo-random
// number generation for the Everest reproduction.
//
// Every stochastic component of the system (scene simulation, frame
// sampling, network initialization, window sampling) draws from an xrand
// stream derived from a single experiment seed, so that every experiment in
// EXPERIMENTS.md is bit-reproducible. Streams are split by string labels:
// two components that split from the same parent with different labels
// receive statistically independent streams, and inserting a new consumer
// does not perturb existing ones (unlike sharing one math/rand source).
package xrand

import (
	"hash/fnv"
	"math"
)

// RNG is a deterministic pseudo-random number generator based on the
// splitmix64 / xoshiro256** family. The zero value is NOT ready for use;
// construct with New or Split.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via splitmix64 state expansion.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child stream identified by label.
// The parent stream is not advanced, so adding or removing Split calls
// never perturbs sibling streams.
func (r *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(r.s[0] ^ rotl(r.s[2], 17) ^ h.Sum64())
}

// SplitIndex derives an independent child stream identified by an integer,
// for per-frame or per-window derivation.
func (r *RNG) SplitIndex(i uint64) *RNG {
	return New(r.s[0] ^ rotl(r.s[2], 17) ^ (i+1)*0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box–Muller; one value per call).
func (r *RNG) Norm() float64 {
	// Reject u1 == 0 to keep Log finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormMS returns a normal variate with the given mean and standard deviation.
func (r *RNG) NormMS(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Poisson returns a Poisson variate with mean lambda (Knuth for small
// lambda, normal approximation above 64 where the exact loop gets slow).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := int(math.Round(r.NormMS(lambda, math.Sqrt(lambda))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SampleK returns k distinct values drawn uniformly from [0, n) in
// ascending order. It panics if k > n or k < 0.
func (r *RNG) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: SampleK with k out of range")
	}
	// Floyd's algorithm: O(k) expected memory, then sort.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Insertion sort; k is typically small relative to n but may be large,
	// so use a shell-style pass for robustness.
	sortInts(out)
	return out
}

func sortInts(a []int) {
	// Simple bottom-up merge sort to avoid importing sort for one call site.
	n := len(a)
	buf := make([]int, n)
	for width := 1; width < n; width *= 2 {
		for i := 0; i < n; i += 2 * width {
			mid := min(i+width, n)
			end := min(i+2*width, n)
			merge(a[i:mid], a[mid:end], buf[i:end])
		}
		copy(a, buf[:n])
	}
}

func merge(left, right, out []int) {
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if left[i] <= right[j] {
			out[k] = left[i]
			i++
		} else {
			out[k] = right[j]
			j++
		}
		k++
	}
	for i < len(left) {
		out[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		out[k] = right[j]
		j++
		k++
	}
}
