package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 64", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("alpha")
	c2 := parent.Split("beta")
	c1Again := New(7).Split("alpha")
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c1Again.Uint64() {
			t.Fatalf("split stream not reproducible at draw %d", i)
		}
	}
	// Streams with different labels should not be identical.
	x, y := parent.Split("alpha"), parent.Split("beta")
	identical := true
	for i := 0; i < 16; i++ {
		if x.Uint64() != y.Uint64() {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("split streams alpha and beta are identical")
	}
	_ = c2
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	_ = a.Split("y")
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		r := New(17)
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.06*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		if r.Poisson(0.1) < 0 || r.Poisson(100) < 0 {
			t.Fatal("Poisson returned negative value")
		}
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	if r.Poisson(-1) != 0 {
		t.Fatal("Poisson(-1) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleKProperties(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).SampleK(n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v {
				return false // must be strictly ascending (distinct + sorted)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKFull(t *testing.T) {
	s := New(29).SampleK(10, 10)
	for i, v := range s {
		if v != i {
			t.Fatalf("SampleK(10,10) = %v, want identity", s)
		}
	}
}

func TestSampleKUniformity(t *testing.T) {
	// Each element of [0,10) should appear in a 3-subset with prob 0.3.
	counts := make([]int, 10)
	r := New(31)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleK(10, 3) {
			counts[v]++
		}
	}
	for i, c := range counts {
		p := float64(c) / trials
		if math.Abs(p-0.3) > 0.02 {
			t.Fatalf("element %d sampled with freq %v, want ~0.3", i, p)
		}
	}
}

func TestSplitIndexReproducible(t *testing.T) {
	a := New(99).SplitIndex(12345)
	b := New(99).SplitIndex(12345)
	c := New(99).SplitIndex(12346)
	diff := false
	for i := 0; i < 20; i++ {
		av := a.Uint64()
		if av != b.Uint64() {
			t.Fatal("SplitIndex not reproducible")
		}
		if av != c.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("SplitIndex(12345) and (12346) identical")
	}
}
