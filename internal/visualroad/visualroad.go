// Package visualroad generates the synthetic benchmark videos of §4.2.4,
// standing in for the Visual Road benchmark [29]: five videos of the same
// "mini-city" shot by the same camera from the same angle, identical in
// every respect except the total number of cars (50–250). The paper could
// not control object density in real videos; neither can we, hence the
// same controlled generator.
//
// The paper hit a Visual Road stability limit (≤15-minute clips) and
// concatenated 40 clips per 10-hour video; the generator here produces
// the full video directly but keeps the per-clip arrival re-seeding so
// the workload shape (clip-boundary discontinuities included) matches.
package visualroad

import (
	"fmt"

	"github.com/everest-project/everest/internal/video"
)

// CarCounts are the paper's five density settings.
func CarCounts() []int { return []int{50, 100, 150, 200, 250} }

// visibleFraction maps the city's total car population to the average
// number simultaneously visible to the fixed camera. 0.02 keeps the
// densest sweep point (250 cars → ~5 concurrent, ~25 at burst peaks) in
// the regime a pixel proxy can resolve — beyond that, heavy mutual
// occlusion makes counts unrecoverable from any fixed viewpoint.
const visibleFraction = 0.02

// Generate builds one Visual-Road-style video with the given total car
// count. All densities share one seed, so background, camera and timing
// structure are identical across the sweep — only the car population
// varies, exactly as in §4.2.4.
func Generate(cars, frames int, seed uint64) (*video.Synthetic, error) {
	if cars <= 0 {
		return nil, fmt.Errorf("visualroad: car count must be positive, got %d", cars)
	}
	return video.NewSynthetic(video.Config{
		Name:           fmt.Sprintf("visual-road-%dcars", cars),
		Kind:           video.KindTraffic,
		Class:          video.ClassCar,
		Frames:         frames,
		FPS:            30,
		Seed:           seed,
		MeanPopulation: float64(cars) * visibleFraction,
		MeanSojournSec: 3,
		BurstRate:      1.2,
		DailyCycle:     false, // controlled environment: no diurnal cycle
	})
}
