package visualroad

import "testing"

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(0, 100, 1); err == nil {
		t.Fatal("zero cars should fail")
	}
}

func TestDensityMonotone(t *testing.T) {
	// More cars in the city → more cars visible on average.
	var prev float64 = -1
	for _, cars := range CarCounts() {
		src, err := Generate(cars, 20000, 42)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for i := 0; i < src.NumFrames(); i++ {
			sum += src.TrueCountFast(i)
		}
		mean := float64(sum) / float64(src.NumFrames())
		if mean <= prev {
			t.Fatalf("density not monotone: %d cars → mean %v (prev %v)", cars, mean, prev)
		}
		prev = mean
	}
}

func TestSameSceneAcrossDensities(t *testing.T) {
	// The sweep shares one camera and timing structure: identical seeds
	// must give identical backgrounds (check an object-free pixel region
	// comparison is too brittle; instead check determinism per density).
	a, err := Generate(100, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(100, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Render(123), b.Render(123)
	for p := range fa.Pix {
		if fa.Pix[p] != fb.Pix[p] {
			t.Fatal("generator nondeterministic")
		}
	}
}

func TestCarCountsMatchPaper(t *testing.T) {
	want := []int{50, 100, 150, 200, 250}
	got := CarCounts()
	if len(got) != len(want) {
		t.Fatalf("CarCounts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CarCounts = %v, want %v", got, want)
		}
	}
}
