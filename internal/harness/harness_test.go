package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps harness tests fast: every dataset shrinks to a few
// thousand frames.
func tinyScale() Scale {
	return Scale{Frames: 6000, Seed: 3}
}

func TestFig4Shape(t *testing.T) {
	rows, err := Fig4(tinyScale(), 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// 5 datasets × 6 systems.
	if len(rows) != 30 {
		t.Fatalf("Fig4 has %d rows, want 30", len(rows))
	}
	bySystem := map[string][]SystemRow{}
	for _, r := range rows {
		bySystem[r.System] = append(bySystem[r.System], r)
	}
	for _, want := range []string{"everest", "scan-and-test", "hog-svm-only", "tinyyolov3-only", "cmdn-only", "select-and-topk"} {
		if len(bySystem[want]) != 5 {
			t.Fatalf("system %q has %d rows: %v", want, len(bySystem[want]), bySystem)
		}
	}
	for _, r := range bySystem["everest"] {
		if r.Speedup <= 1 {
			t.Fatalf("everest on %s: speedup %.2f ≤ 1", r.Dataset, r.Speedup)
		}
		if r.Quality.Precision < 0.7 {
			t.Fatalf("everest on %s: precision %.2f", r.Dataset, r.Quality.Precision)
		}
	}
	for _, r := range bySystem["scan-and-test"] {
		if r.Speedup != 1 || r.Quality.Precision != 1 {
			t.Fatalf("scan-and-test should be the exact 1× reference: %+v", r)
		}
	}
	// At this tiny scale Everest's fixed Phase 1 cost dominates, so we only
	// require it to beat the oracle-scale scans; the Everest-vs-select
	// comparison at the paper's scale lives in EXPERIMENTS.md.
	for _, ev := range bySystem["everest"] {
		for _, other := range rows {
			if other.Dataset != ev.Dataset {
				continue
			}
			if other.System == "scan-and-test" || other.System == "hog-svm-only" {
				if ev.MS >= other.MS {
					t.Fatalf("%s: everest (%.0fms) not faster than %s (%.0fms)",
						ev.Dataset, ev.MS, other.System, other.MS)
				}
			}
		}
	}
}

func TestTable8Shape(t *testing.T) {
	rows, err := Table8(tinyScale(), 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		sum := r.LabelShare + r.TrainShare + r.PopulateShare + r.SelectShare + r.ConfirmShare
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: shares sum to %v", r.Dataset, sum)
		}
		if r.CleanedFrac > 0.12 {
			t.Fatalf("%s: cleaned %.1f%% of frames", r.Dataset, 100*r.CleanedFrac)
		}
		if r.Confidence < 0.9 {
			t.Fatalf("%s: confidence %v", r.Dataset, r.Confidence)
		}
	}
}

func TestSweepsRunAtTinyScale(t *testing.T) {
	// One dataset's worth of each sweep at minimal size, checking shapes.
	scale := Scale{Frames: 4000, Seed: 5}

	fig6, err := Fig6(scale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6) != 25 { // 5 datasets × 5 thresholds
		t.Fatalf("Fig6 rows %d", len(fig6))
	}
	for _, r := range fig6 {
		if r.Quality.Precision < 0.5 {
			t.Fatalf("Fig6 %s thres=%v precision %.2f", r.Dataset, r.X, r.Quality.Precision)
		}
	}

	fig8, err := Fig8(Scale{Frames: 4000, Seed: 5}, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8) != 5 {
		t.Fatalf("Fig8 rows %d", len(fig8))
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9(Scale{Frames: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 dashcams × 4 scenarios
		t.Fatalf("Fig9 rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Fatalf("Fig9 %s/%s speedup %.2f", r.Dataset, r.System, r.Speedup)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	scale := Scale{Frames: 4000, Seed: 9}
	a1, err := AblationEarlyStop(scale, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 2 {
		t.Fatalf("A1 rows %d", len(a1))
	}
	// Early stop must not lose quality.
	if a1[0].Quality.Precision < a1[1].Quality.Precision-1e-9 {
		t.Fatalf("early stop degraded precision: %+v", a1)
	}

	a3, err := AblationBatch(scale, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a3) != 6 {
		t.Fatalf("A3 rows %d", len(a3))
	}

	a5, err := AblationSemantics(scale, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a5) < 3 {
		t.Fatalf("A5 rows %d", len(a5))
	}
	if a5[0].Variant != "everest" {
		t.Fatal("A5 first row should be everest")
	}
	for _, r := range a5[1:] {
		if r.Quality.Precision > a5[0].Quality.Precision+1e-9 {
			t.Fatalf("no-oracle notion %s beat everest: %+v", r.Variant, a5)
		}
	}
}

func TestFormatters(t *testing.T) {
	var buf bytes.Buffer
	WriteSystemRows(&buf, "fig4", []SystemRow{{Dataset: "d", System: "s", MS: 1, Speedup: 2}})
	WriteSweepRows(&buf, "fig5", "K", []SweepRow{{Dataset: "d", X: 5}})
	WriteTable8(&buf, []Table8Row{{Dataset: "d"}})
	WriteAblationRows(&buf, "a1", []AblationRow{{Dataset: "d", Variant: "v"}})
	out := buf.String()
	for _, want := range []string{"fig4", "fig5", "Table 8a", "a1", "dataset"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}
