package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestSelectTopkSensitivityShape(t *testing.T) {
	rows, err := SelectTopkSensitivity(Scale{Frames: 5000, Seed: 11}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 5 datasets × 7 λ values.
	if len(rows) != 35 {
		t.Fatalf("%d rows, want 35", len(rows))
	}
	byDataset := map[string][]LambdaRow{}
	for _, r := range rows {
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for ds, drs := range byDataset {
		if len(drs) != 7 {
			t.Fatalf("%s: %d λ rows", ds, len(drs))
		}
		// λ values are the canonical sweep, ascending.
		for i, want := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
			if drs[i].Lambda != want {
				t.Fatalf("%s: λ[%d] = %v, want %v", ds, i, drs[i].Lambda, want)
			}
		}
		// Non-failed rows have candidates and a cost; failed rows mark the
		// paper's "λ too large" pathology.
		for _, r := range drs {
			if r.Failed {
				continue
			}
			if r.Candidates < 10 || r.MS <= 0 || r.Speedup <= 0 {
				t.Fatalf("%s λ=%v: inconsistent row %+v", ds, r.Lambda, r)
			}
		}
	}
}

func TestWriteLambdaRows(t *testing.T) {
	var buf bytes.Buffer
	WriteLambdaRows(&buf, []LambdaRow{
		{Dataset: "d", Lambda: 0.5, Candidates: 100, MS: 1, Speedup: 2},
		{Dataset: "d", Lambda: 0.9, Failed: true},
	})
	out := buf.String()
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "sensitivity") {
		t.Fatalf("output missing markers:\n%s", out)
	}
}
