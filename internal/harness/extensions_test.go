package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestScaleoutScalabilityShape(t *testing.T) {
	rows, err := ScaleoutScalability(Scale{Frames: 4000, Seed: 21}, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (P ∈ {1,2,4,8})", len(rows))
	}
	if rows[0].Workers != 1 || rows[0].ScaleEfficiency != 1 {
		t.Fatalf("P=1 row must be the efficiency reference: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Quality.Precision < 0.7 {
			t.Fatalf("P=%d: precision %.2f below guarantee expectation", r.Workers, r.Quality.Precision)
		}
		if r.Workers > 1 {
			// Scale-out never shrinks the bill (per-shard floors), and a
			// worker's wall is never above the serial wall.
			if r.BillMS < rows[0].BillMS*0.9 {
				t.Fatalf("P=%d: bill %.0f implausibly below serial %.0f", r.Workers, r.BillMS, rows[0].BillMS)
			}
			if r.WallMS > rows[0].WallMS*1.05 {
				t.Fatalf("P=%d: wall %.0f above serial %.0f", r.Workers, r.WallMS, rows[0].WallMS)
			}
		}
	}
	var buf bytes.Buffer
	WriteScaleRows(&buf, rows)
	if !strings.Contains(buf.String(), "workers") {
		t.Fatal("WriteScaleRows output incomplete")
	}
}

func TestSessionAmortizationShape(t *testing.T) {
	rows, err := SessionAmortization(Scale{Frames: 4000, Seed: 23}, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5 session steps", len(rows))
	}
	byName := map[string]SessionRow{}
	for _, r := range rows {
		byName[r.Query] = r
	}
	rep, ok := byName["repeat"]
	if !ok {
		t.Fatalf("no repeat step in %v", rows)
	}
	if rep.Cleaned != 0 {
		t.Fatalf("repeated query cleaned %d frames, want 0", rep.Cleaned)
	}
	if rep.SessionMS > rep.AloneMS {
		t.Fatalf("repeat in session (%.0f ms) costs more than alone (%.0f ms)", rep.SessionMS, rep.AloneMS)
	}
	// Cache only grows along the session.
	for i := 1; i < len(rows); i++ {
		if rows[i].CacheSize < rows[i-1].CacheSize {
			t.Fatalf("cache shrank: %d -> %d at step %s", rows[i-1].CacheSize, rows[i].CacheSize, rows[i].Query)
		}
	}
	var buf bytes.Buffer
	WriteSessionRows(&buf, rows)
	if !strings.Contains(buf.String(), "session-ms") {
		t.Fatal("WriteSessionRows output incomplete")
	}
}

func TestSlidingWindowsShape(t *testing.T) {
	rows, err := SlidingWindows(Scale{Frames: 4000, Seed: 25}, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 variants", len(rows))
	}
	if rows[0].Bound != "independent" {
		t.Fatalf("tumbling must use the exact bound, got %s", rows[0].Bound)
	}
	for _, r := range rows[1:] {
		if r.Bound != "union" {
			t.Fatalf("overlapping variant %s must use the union bound, got %s", r.Variant, r.Bound)
		}
		if r.Windows <= rows[0].Windows {
			t.Fatalf("overlap should multiply the windows: %s has %d ≤ tumbling %d",
				r.Variant, r.Windows, rows[0].Windows)
		}
	}
	var buf bytes.Buffer
	WriteSlidingRows(&buf, rows)
	if !strings.Contains(buf.String(), "bound") {
		t.Fatal("WriteSlidingRows output incomplete")
	}
}

func TestAblationBoundShape(t *testing.T) {
	rows, err := AblationBound(Scale{Frames: 4000, Seed: 27}, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	// Conservative bound cannot be cheaper than the exact product.
	if rows[1].MS < rows[0].MS-1e-9 {
		t.Fatalf("union bound (%.0f ms) below exact (%.0f ms)", rows[1].MS, rows[0].MS)
	}
	for _, r := range rows {
		if r.Quality.Precision < 0.7 {
			t.Fatalf("%s: precision %.2f", r.Variant, r.Quality.Precision)
		}
	}
}
