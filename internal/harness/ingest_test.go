package harness

import "testing"

func TestIngestionAmortization(t *testing.T) {
	rows, err := IngestionAmortization(Scale{Frames: 4000, Seed: 13}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.IndexedMS >= r.FreshMS {
			t.Fatalf("%s: indexed workload (%.0f) not cheaper than fresh (%.0f)",
				r.Dataset, r.IndexedMS, r.FreshMS)
		}
		if r.Breakeven < 0 {
			t.Fatalf("%s: indexing never breaks even", r.Dataset)
		}
	}
}
