package harness

import (
	"fmt"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/metrics"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
)

// ScaleRow is one point of the scale-out scalability sweep (the RAM3S
// future-work experiment, E1).
type ScaleRow struct {
	Dataset string
	// Workers is the scale-out degree P.
	Workers int
	// WallMS is the BSP wall-clock (per-phase maxima over workers).
	WallMS float64
	// BillMS is the total paid accelerator time (Phase 1 sum + Phase 2).
	BillMS float64
	// Speedup is scan-and-test cost divided by WallMS.
	Speedup float64
	// ScaleEfficiency is Wall(1)/(P·Wall(P)), filled by the sweep.
	ScaleEfficiency float64
	Quality         Quality
}

// ScaleoutScalability sweeps the worker count on the default workload and
// reports latency, bill and result quality per P. Phase 1 dominates
// end-to-end cost (Table 8a), so parallelizing it is where scale-out
// pays; the efficiency column shows the price of per-shard sampling
// floors and proxy training.
func ScaleoutScalability(scale Scale, k int, thres float64) ([]ScaleRow, error) {
	scale = scale.withDefaults()
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		return nil, err
	}
	src, err := scale.buildDataset(spec)
	if err != nil {
		return nil, err
	}
	udf := vision.CountUDF{Class: src.TargetClass()}
	truth := frameTruth(src, udf)
	k = boundK(k, src.NumFrames()/10)
	top := metrics.TrueTopK(truth, k)
	scan := scanCostMS(src.NumFrames(), udf, simclock.Default())

	var rows []ScaleRow
	var wall1 float64
	for _, p := range []int{1, 2, 4, 8} {
		res, err := everest.RunParallel(src, udf, scale.everestConfig(k, thres), p)
		if err != nil {
			return nil, fmt.Errorf("harness: scaleout P=%d: %w", p, err)
		}
		wall := res.Clock.TotalMS()
		if p == 1 {
			wall1 = wall
		}
		phase2 := wall - phase1MS(res.Clock)
		rows = append(rows, ScaleRow{
			Dataset:         spec.Name,
			Workers:         p,
			WallMS:          wall,
			BillMS:          res.WorkerSumMS + phase2*float64(p),
			Speedup:         scan / wall,
			ScaleEfficiency: wall1 / (float64(p) * wall),
			Quality:         evalIDs(res.IDs, func(i int) float64 { return truth[i].Score }, top),
		})
	}
	return rows, nil
}

// phase1MS sums the Phase 1 phases of a clock.
func phase1MS(c *simclock.Clock) float64 {
	ms := 0.0
	for _, ph := range []simclock.Phase{
		simclock.PhaseLabelSamples, simclock.PhaseTrainCMDN,
		simclock.PhasePopulateD0, simclock.PhaseDiffDetect,
	} {
		ms += c.PhaseMS(ph)
	}
	return ms
}

// SessionRow is one query of the cross-query work-sharing workload (E2).
type SessionRow struct {
	Dataset string
	// Query names the step (e.g. "top-50", "repeat", "top-10").
	Query string
	// SessionMS is the query's cost inside the session (cache warm).
	SessionMS float64
	// AloneMS is the same query's cost as an independent indexed query.
	AloneMS float64
	// Cleaned is the session query's oracle confirmations.
	Cleaned int
	// CacheSize is the cumulative label cache after the query.
	CacheSize int
	Quality   Quality
}

// SessionAmortization runs a realistic analyst session — the default
// query, a repeat, a drill-down to a smaller K, a stricter threshold, and
// a window view — over one index, comparing each query's marginal cost
// against running it in isolation.
func SessionAmortization(scale Scale, k int, thres float64) ([]SessionRow, error) {
	scale = scale.withDefaults()
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		return nil, err
	}
	src, err := scale.buildDataset(spec)
	if err != nil {
		return nil, err
	}
	udf := vision.CountUDF{Class: src.TargetClass()}
	truth := frameTruth(src, udf)
	k = boundK(k, src.NumFrames()/10)

	ix, err := everest.BuildIndex(src, udf, scale.everestConfig(k, thres))
	if err != nil {
		return nil, err
	}
	sess, err := everest.NewSession(ix, src, udf)
	if err != nil {
		return nil, err
	}

	winSize := 30
	steps := []struct {
		name string
		cfg  everest.Config
	}{
		{fmt.Sprintf("top-%d", k), scale.everestConfig(k, thres)},
		{"repeat", scale.everestConfig(k, thres)},
		{fmt.Sprintf("top-%d", max(k/5, 1)), scale.everestConfig(max(k/5, 1), thres)},
		{"thres-0.99", scale.everestConfig(k, 0.99)},
		{fmt.Sprintf("window-%d", winSize), func() everest.Config {
			c := scale.everestConfig(boundK(k, src.NumFrames()/winSize/2), thres)
			c.Window = winSize
			return c
		}()},
	}

	var rows []SessionRow
	for _, st := range steps {
		res, err := sess.Query(st.cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: session step %s: %w", st.name, err)
		}
		alone, err := ix.Query(src, udf, st.cfg)
		if err != nil {
			return nil, err
		}
		var q Quality
		if st.cfg.Window > 0 {
			wTruth := slidingWindowTruth(src, udf, st.cfg.Window, st.cfg.Window)
			top := metrics.TrueTopK(wTruth, st.cfg.K)
			q = evalIDs(res.IDs, func(w int) float64 { return wTruth[w].Score }, top)
		} else {
			top := metrics.TrueTopK(truth, st.cfg.K)
			q = evalIDs(res.IDs, func(i int) float64 { return truth[i].Score }, top)
		}
		rows = append(rows, SessionRow{
			Dataset:   spec.Name,
			Query:     st.name,
			SessionMS: res.Clock.TotalMS(),
			AloneMS:   alone.Clock.TotalMS(),
			Cleaned:   res.EngineStats.Cleaned,
			CacheSize: sess.CachedLabels(),
			Quality:   q,
		})
	}
	return rows, nil
}

// SlidingRow is one variant of the sliding-window comparison (E3).
type SlidingRow struct {
	Dataset string
	// Variant names the window shape, e.g. "tumbling 60" or "60 every 15".
	Variant string
	// Windows is the relation size (number of windows).
	Windows int
	// Bound is the confidence computation used.
	Bound string
	// Cleaned is the number of windows confirmed.
	Cleaned int
	// MS is the end-to-end simulated cost.
	MS      float64
	Quality Quality
}

// SlidingWindows compares tumbling windows against overlapping sliding
// windows of the same size. Overlap multiplies the relation and switches
// the engine to the union bound, so the guarantee survives correlation at
// the price of extra cleaning — the experiment quantifies that price.
func SlidingWindows(scale Scale, k int, thres float64) ([]SlidingRow, error) {
	scale = scale.withDefaults()
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		return nil, err
	}
	src, err := scale.buildDataset(spec)
	if err != nil {
		return nil, err
	}
	udf := vision.CountUDF{Class: src.TargetClass()}
	size := 60
	variants := []struct {
		name   string
		stride int
	}{
		{"tumbling 60", 60},
		{"60 every 30", 30},
		{"60 every 15", 15},
	}

	var rows []SlidingRow
	for _, v := range variants {
		nw := windows.NumSlidingWindows(src.NumFrames(), size, v.stride)
		cfg := scale.everestConfig(boundK(k, nw/2), thres)
		cfg.Window = size
		cfg.Stride = v.stride
		res, err := everest.Run(src, udf, cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: sliding %s: %w", v.name, err)
		}
		wTruth := slidingWindowTruth(src, udf, size, v.stride)
		top := metrics.TrueTopK(wTruth, cfg.K)
		rows = append(rows, SlidingRow{
			Dataset: spec.Name,
			Variant: v.name,
			Windows: nw,
			Bound:   res.Bound.String(),
			Cleaned: res.EngineStats.Cleaned,
			MS:      res.Clock.TotalMS(),
			Quality: evalIDs(res.IDs, func(w int) float64 { return wTruth[w].Score }, top),
		})
	}
	return rows, nil
}

// slidingWindowTruth computes ground-truth mean scores for strided
// windows (stride == size gives tumbling truth).
func slidingWindowTruth(src video.Source, udf vision.UDF, size, stride int) []metrics.Ranked {
	frames := frameTruth(src, udf)
	nw := windows.NumSlidingWindows(len(frames), size, stride)
	out := make([]metrics.Ranked, nw)
	for w := 0; w < nw; w++ {
		sum := 0.0
		for f := w * stride; f < w*stride+size; f++ {
			sum += frames[f].Score
		}
		out[w] = metrics.Ranked{ID: w, Score: sum / float64(size)}
	}
	return out
}

// AblationBound (A7) compares the exact independent-product confidence
// against the conservative union bound on the same frame query: same
// guarantee target, different cleaning bills.
func AblationBound(scale Scale, k int, thres float64) ([]AblationRow, error) {
	scale = scale.withDefaults()
	src, udf, err := ablationDataset(scale)
	if err != nil {
		return nil, err
	}
	truth := frameTruth(src, udf)
	k = boundK(k, src.NumFrames()/10)
	top := metrics.TrueTopK(truth, k)

	var rows []AblationRow
	for _, v := range []struct {
		name  string
		union bool
	}{
		{"exact product (Eq. 3)", false},
		{"union bound", true},
	} {
		cfg := scale.everestConfig(k, thres)
		cfg.UnionBound = v.union
		res, err := everest.Run(src, udf, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Dataset: src.Name(),
			Variant: v.name,
			MS:      res.Clock.TotalMS(),
			Quality: evalIDs(res.IDs, func(i int) float64 { return truth[i].Score }, top),
			Note: fmt.Sprintf("cleaned %d (%.2f%%), confidence %.3f",
				res.EngineStats.Cleaned,
				100*float64(res.EngineStats.Cleaned)/float64(res.Phase1.Tuples),
				res.Confidence),
		})
	}
	return rows, nil
}
