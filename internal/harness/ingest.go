package harness

import (
	"fmt"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/metrics"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// IngestRow compares end-to-end queries against ingestion-time indexing
// (Focus-style offline Phase 1, which the paper's §4.2 discussion
// anticipates) for a workload of several queries on one video.
type IngestRow struct {
	Dataset string
	// Queries is the number of Top-K queries in the workload.
	Queries int
	// FreshMS is the total simulated cost running each query end to end.
	FreshMS float64
	// IngestMS is the one-off index build cost.
	IngestMS float64
	// IndexedMS is the total Phase-2-only cost of the indexed queries.
	IndexedMS float64
	// Breakeven is the workload size at which indexing wins.
	Breakeven int
}

// IngestionAmortization measures, per dataset, the cost of a mixed
// workload (varying K) with and without an ingestion-time index.
func IngestionAmortization(scale Scale, thres float64) ([]IngestRow, error) {
	scale = scale.withDefaults()
	ks := []int{5, 25, 50, 75}
	var rows []IngestRow
	for _, spec := range video.CountingDatasets() {
		src, err := scale.buildDataset(spec)
		if err != nil {
			return nil, err
		}
		udf := vision.CountUDF{Class: src.TargetClass()}
		truth := frameTruth(src, udf)

		var freshMS float64
		for _, k := range ks {
			cfg := scale.everestConfig(boundK(k, src.NumFrames()/10), thres)
			res, err := everest.Run(src, udf, cfg)
			if err != nil {
				return nil, err
			}
			freshMS += res.Clock.TotalMS()
		}

		ixCfg := scale.everestConfig(1, thres)
		ix, err := everest.BuildIndex(src, udf, ixCfg)
		if err != nil {
			return nil, err
		}
		var indexedMS float64
		for _, k := range ks {
			cfg := scale.everestConfig(boundK(k, src.NumFrames()/10), thres)
			res, err := ix.Query(src, udf, cfg)
			if err != nil {
				return nil, err
			}
			indexedMS += res.Clock.TotalMS()
			// The guarantee must survive the indexing path.
			top := metrics.TrueTopK(truth, cfg.K)
			q := evalIDs(res.IDs, func(i int) float64 { return truth[i].Score }, top)
			if q.ScoreError > 3 {
				return nil, fmt.Errorf("harness: indexed query on %s K=%d degraded (score error %.2f)",
					spec.Name, cfg.K, q.ScoreError)
			}
		}

		// Break-even: smallest q with ingest + q·avgIndexed < q·avgFresh.
		avgFresh := freshMS / float64(len(ks))
		avgIndexed := indexedMS / float64(len(ks))
		breakeven := -1
		if avgFresh > avgIndexed {
			breakeven = int(ix.IngestMS()/(avgFresh-avgIndexed)) + 1
		}
		rows = append(rows, IngestRow{
			Dataset:   spec.Name,
			Queries:   len(ks),
			FreshMS:   freshMS,
			IngestMS:  ix.IngestMS(),
			IndexedMS: indexedMS,
			Breakeven: breakeven,
		})
	}
	return rows, nil
}
