// Package harness runs the paper's experiments end to end: it builds the
// synthetic stand-in datasets, executes Everest and every baseline,
// computes the evaluation metrics of §4 (speedup, precision, rank
// distance, score error), and returns the rows of each table and figure.
// Both cmd/experiments and the repository's benchmarks drive it.
package harness

import (
	"fmt"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/metrics"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
)

// Scale sizes the experiments.
type Scale struct {
	// Frames per dataset; 0 means each spec's default
	// (PaperFrames/400), capped at FramesCap.
	Frames int
	// FramesCap bounds per-dataset frames; 0 means 60000.
	FramesCap int
	// FullGrid trains the paper's full 12-point hyperparameter grid
	// instead of the 4-point CPU default.
	FullGrid bool
	// Seed offsets all randomness.
	Seed uint64
}

func (s Scale) withDefaults() Scale {
	if s.FramesCap == 0 {
		s.FramesCap = 60000
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

func (s Scale) framesFor(spec video.DatasetSpec) int {
	f := s.Frames
	if f == 0 {
		f = int(float64(spec.PaperFrames) * video.DefaultScale)
	}
	if f > s.FramesCap {
		f = s.FramesCap
	}
	return f
}

// proxyConfig returns the CMDN grid: the full paper grid, or a 4-point
// subset sized for one CPU core (the selection mechanism — holdout NLL
// over a g×h grid — is identical either way).
func (s Scale) proxyConfig() cmdn.Config {
	if s.FullGrid {
		return cmdn.Config{}
	}
	return cmdn.Config{Grid: []cmdn.Hyper{
		{G: 5, H: 20}, {G: 5, H: 30}, {G: 8, H: 30}, {G: 12, H: 40},
	}}
}

func (s Scale) everestConfig(k int, thres float64) everest.Config {
	return everest.Config{
		K:         k,
		Threshold: thres,
		Proxy:     s.proxyConfig(),
		Seed:      s.Seed,
	}
}

// Quality bundles the paper's three result-quality metrics.
type Quality struct {
	Precision    float64
	RankDistance float64
	ScoreError   float64
}

// evalIDs computes Quality for a claimed result against ground truth.
func evalIDs(ids []int, trueScore func(int) float64, truth []metrics.Ranked) Quality {
	scores := make(map[int]float64, len(ids))
	exact := make([]float64, len(ids))
	for i, id := range ids {
		s := trueScore(id)
		scores[id] = s
		exact[i] = s
	}
	return Quality{
		Precision:    metrics.Precision(ids, truth, scores),
		RankDistance: metrics.RankDistance(ids, truth),
		ScoreError:   metrics.ScoreError(exact, truth),
	}
}

// frameTruth computes ground-truth frame scores (no cost charged: this is
// evaluation machinery, not part of any system under test).
func frameTruth(src video.Source, udf vision.UDF) []metrics.Ranked {
	n := src.NumFrames()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	scores := udf.Score(src, ids)
	out := make([]metrics.Ranked, n)
	for i := range out {
		out[i] = metrics.Ranked{ID: i, Score: scores[i]}
	}
	return out
}

// windowTruth computes ground-truth window mean scores.
func windowTruth(src video.Source, udf vision.UDF, size int) []metrics.Ranked {
	frames := frameTruth(src, udf)
	nw := windows.NumWindows(len(frames), size)
	out := make([]metrics.Ranked, nw)
	for w := 0; w < nw; w++ {
		sum := 0.0
		for f := w * size; f < (w+1)*size; f++ {
			sum += frames[f].Score
		}
		out[w] = metrics.Ranked{ID: w, Score: sum / float64(size)}
	}
	return out
}

func scanCostMS(n int, udf vision.UDF, cost simclock.CostModel) float64 {
	return float64(n) * (udf.OracleCostMS(cost) + cost.DecodeMS)
}

// buildDataset instantiates a Table 7 dataset at the scale's size.
func (s Scale) buildDataset(spec video.DatasetSpec) (*video.Synthetic, error) {
	src, err := spec.Build(s.framesFor(spec))
	if err != nil {
		return nil, fmt.Errorf("harness: building %s: %w", spec.Name, err)
	}
	return src, nil
}
