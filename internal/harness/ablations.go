package harness

import (
	"fmt"
	"sort"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/core"
	"github.com/everest-project/everest/internal/metrics"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Dataset string
	Variant string
	MS      float64
	Quality Quality
	Note    string
}

// ablationDataset builds the default ablation workload (Archie).
func ablationDataset(scale Scale) (*video.Synthetic, vision.CountUDF, error) {
	spec, err := video.DatasetByName("Archie")
	if err != nil {
		return nil, vision.CountUDF{}, err
	}
	src, err := scale.buildDataset(spec)
	if err != nil {
		return nil, vision.CountUDF{}, err
	}
	return src, vision.CountUDF{Class: src.TargetClass()}, nil
}

func evalEverest(src *video.Synthetic, udf vision.UDF, res *everest.Result, k int) Quality {
	truth := frameTruth(src, udf)
	top := metrics.TrueTopK(truth, k)
	return evalIDs(res.IDs, func(i int) float64 { return truth[i].Score }, top)
}

// AblationEarlyStop (A1) contrasts the ψ-bound pruning of §3.3.2 with
// exhaustive E[X_f] evaluation.
func AblationEarlyStop(scale Scale, k int, thres float64) ([]AblationRow, error) {
	scale = scale.withDefaults()
	src, udf, err := ablationDataset(scale)
	if err != nil {
		return nil, err
	}
	kk := boundK(k, src.NumFrames()/10)
	var rows []AblationRow
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"psi-early-stop", false}, {"exhaustive", true}} {
		cfg := scale.everestConfig(kk, thres)
		cfg.DisableEarlyStop = variant.disable
		res, err := everest.Run(src, udf, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Dataset: src.Name(),
			Variant: variant.name,
			MS:      res.Clock.TotalMS(),
			Quality: evalEverest(src, udf, res, kk),
			Note: fmt.Sprintf("examined=%d pruned=%d iters=%d",
				res.EngineStats.Examined, res.EngineStats.Pruned, res.EngineStats.Iterations),
		})
	}
	return rows, nil
}

// AblationResort (A2) contrasts the paper's adaptive ψ re-sort schedule
// with sorting only once at iteration 0.
func AblationResort(scale Scale, k int, thres float64) ([]AblationRow, error) {
	scale = scale.withDefaults()
	src, udf, err := ablationDataset(scale)
	if err != nil {
		return nil, err
	}
	kk := boundK(k, src.NumFrames()/10)
	var rows []AblationRow
	for _, variant := range []struct {
		name string
		once bool
	}{{"adaptive-resort", false}, {"sort-once", true}} {
		cfg := scale.everestConfig(kk, thres)
		cfg.ResortOnce = variant.once
		res, err := everest.Run(src, udf, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Dataset: src.Name(),
			Variant: variant.name,
			MS:      res.Clock.TotalMS(),
			Quality: evalEverest(src, udf, res, kk),
			Note: fmt.Sprintf("resorts=%d examined=%d cleaned=%d",
				res.EngineStats.Resorts, res.EngineStats.Examined, res.EngineStats.Cleaned),
		})
	}
	return rows, nil
}

// AblationBatch (A3) sweeps the Phase 2 batch size b (§3.5).
func AblationBatch(scale Scale, k int, thres float64) ([]AblationRow, error) {
	scale = scale.withDefaults()
	src, udf, err := ablationDataset(scale)
	if err != nil {
		return nil, err
	}
	kk := boundK(k, src.NumFrames()/10)
	var rows []AblationRow
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		cfg := scale.everestConfig(kk, thres)
		cfg.BatchSize = b
		res, err := everest.Run(src, udf, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Dataset: src.Name(),
			Variant: fmt.Sprintf("b=%d", b),
			MS:      res.Clock.TotalMS(),
			Quality: evalEverest(src, udf, res, kk),
			Note: fmt.Sprintf("iters=%d cleaned=%d",
				res.EngineStats.Iterations, res.EngineStats.Cleaned),
		})
	}
	return rows, nil
}

// AblationDiff (A4) contrasts running with and without the difference
// detector.
func AblationDiff(scale Scale, k int, thres float64) ([]AblationRow, error) {
	scale = scale.withDefaults()
	src, udf, err := ablationDataset(scale)
	if err != nil {
		return nil, err
	}
	kk := boundK(k, src.NumFrames()/10)
	var rows []AblationRow
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"diff-detector", false}, {"no-diff", true}} {
		cfg := scale.everestConfig(kk, thres)
		cfg.DisableDiff = variant.disable
		res, err := everest.Run(src, udf, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Dataset: src.Name(),
			Variant: variant.name,
			MS:      res.Clock.TotalMS(),
			Quality: evalEverest(src, udf, res, kk),
			Note: fmt.Sprintf("retained=%d/%d cleaned=%d",
				res.Phase1.Retained, res.Phase1.TotalFrames, res.EngineStats.Cleaned),
		})
	}
	return rows, nil
}

// AblationSemantics (A5) contrasts Everest's oracle-in-the-loop guarantee
// with the no-oracle uncertain Top-K notions of §2 (U-KRanks and PT-k) on
// the same uncertain relation D0.
func AblationSemantics(scale Scale, k int, thres float64) ([]AblationRow, error) {
	scale = scale.withDefaults()
	src, udf, err := ablationDataset(scale)
	if err != nil {
		return nil, err
	}
	kk := boundK(k, src.NumFrames()/20)
	truth := frameTruth(src, udf)
	top := metrics.TrueTopK(truth, kk)
	trueScore := func(i int) float64 { return truth[i].Score }

	var rows []AblationRow
	cfg := scale.everestConfig(kk, thres)
	res, err := everest.Run(src, udf, cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Dataset: src.Name(), Variant: "everest",
		MS:      res.Clock.TotalMS(),
		Quality: evalIDs(res.IDs, trueScore, top),
		Note:    fmt.Sprintf("conf=%.3f", res.Confidence),
	})

	// Build the same D0 and answer from the prior alone. The DP is
	// O(n²k)-ish; cap the relation at the most promising tuples by mean.
	st, err := phase1.Run(src, udf, phase1.Options{
		Proxy: scale.proxyConfig(), Cost: simclock.Default(), Seed: scale.Seed,
	}, simclock.NewClock())
	if err != nil {
		return nil, err
	}
	rel := st.FrameRelation(udf.Quantize())
	rel = topByMean(rel, 600)

	uk := core.UKRanks(rel, kk)
	rows = append(rows, AblationRow{
		Dataset: src.Name(), Variant: "u-kranks(no-oracle)",
		Quality: evalIDs(dedupe(uk), trueScore, top),
		Note:    "per-rank winners; no guarantee, no oracle",
	})
	for _, p := range []float64{0.3, 0.5} {
		pt := core.PTk(rel, kk, p)
		rows = append(rows, AblationRow{
			Dataset: src.Name(), Variant: fmt.Sprintf("pt-k(p=%.1f)", p),
			Quality: evalIDs(pt, trueScore, top),
			Note:    fmt.Sprintf("returned %d tuples (K=%d)", len(pt), kk),
		})
	}
	return rows, nil
}

// topByMean keeps the n tuples with the highest distribution means.
func topByMean(rel uncertain.Relation, n int) uncertain.Relation {
	if len(rel) <= n {
		return rel
	}
	sorted := append(uncertain.Relation(nil), rel...)
	sort.Slice(sorted, func(i, j int) bool {
		mi, mj := sorted[i].Dist.Mean(), sorted[j].Dist.Mean()
		if mi != mj {
			return mi > mj
		}
		return sorted[i].ID < sorted[j].ID
	})
	return sorted[:n]
}

func dedupe(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	var out []int
	for _, id := range ids {
		if id < 0 || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// AblationPrefetch (A6) contrasts ψ-order prefetching (§3.5) — which
// hides cleaned frames' decode latency behind oracle compute — with
// synchronous decode-then-infer cleaning.
func AblationPrefetch(scale Scale, k int, thres float64) ([]AblationRow, error) {
	scale = scale.withDefaults()
	src, udf, err := ablationDataset(scale)
	if err != nil {
		return nil, err
	}
	kk := boundK(k, src.NumFrames()/10)
	var rows []AblationRow
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"prefetch", false}, {"no-prefetch", true}} {
		cfg := scale.everestConfig(kk, thres)
		cfg.DisablePrefetch = variant.disable
		res, err := everest.Run(src, udf, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Dataset: src.Name(),
			Variant: variant.name,
			MS:      res.Clock.TotalMS(),
			Quality: evalEverest(src, udf, res, kk),
			Note: fmt.Sprintf("cleaned=%d confirmMS=%.0f",
				res.EngineStats.Cleaned, res.Clock.PhaseMS(simclock.PhaseConfirm)),
		})
	}
	return rows, nil
}
