package harness

import (
	"fmt"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/baselines"
	"github.com/everest-project/everest/internal/metrics"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/visualroad"
)

// SystemRow is one (dataset, system) cell of Fig. 4 / 9.
type SystemRow struct {
	Dataset string
	System  string
	MS      float64
	Speedup float64
	Quality Quality
	Note    string
}

// SweepRow is one (dataset, x) point of the K / thres / window / density
// sweeps (Fig. 5–8).
type SweepRow struct {
	Dataset string
	X       float64
	MS      float64
	Speedup float64
	Quality Quality
	Note    string
}

func boundK(k, maxK int) int {
	if maxK < 1 {
		maxK = 1
	}
	if k > maxK {
		return maxK
	}
	return k
}

// Fig4 reproduces the overall comparison (Fig. 4): the default Top-50
// (thres = 0.9) query on the five object-counting videos, against
// scan-and-test, HOG, CMDN-only, TinyYOLOv3-only and Select-and-Topk.
func Fig4(scale Scale, k int, thres float64) ([]SystemRow, error) {
	scale = scale.withDefaults()
	cost := simclock.Default()
	var rows []SystemRow
	for _, spec := range video.CountingDatasets() {
		src, err := scale.buildDataset(spec)
		if err != nil {
			return nil, err
		}
		kk := boundK(k, src.NumFrames()/10)
		udf := vision.CountUDF{Class: src.TargetClass()}
		truth := frameTruth(src, udf)
		topTruth := metrics.TrueTopK(truth, kk)
		trueScore := func(i int) float64 { return truth[i].Score }
		scan := baselines.ScanAndTest(src, udf, kk, cost)

		add := func(system string, ids []int, ms float64, note string) {
			rows = append(rows, SystemRow{
				Dataset: spec.Name,
				System:  system,
				MS:      ms,
				Speedup: metrics.Speedup(scan.MS, ms),
				Quality: evalIDs(ids, trueScore, topTruth),
				Note:    note,
			})
		}

		res, err := everest.Run(src, udf, scale.everestConfig(kk, thres))
		if err != nil {
			return nil, err
		}
		add("everest", res.IDs, res.Clock.TotalMS(),
			fmt.Sprintf("conf=%.3f cleaned=%d", res.Confidence, res.EngineStats.Cleaned))
		add(scan.Name, scan.IDs, scan.MS, "")

		hog := baselines.DetectorScan(src, vision.NewHOGDetector(), src.TargetClass(), kk, cost)
		add(hog.Name, hog.IDs, hog.MS, "")
		tiny := baselines.DetectorScan(src, vision.NewTinyDetector(), src.TargetClass(), kk, cost)
		add(tiny.Name, tiny.IDs, tiny.MS, "")

		p1opt := phase1.Options{Proxy: scale.proxyConfig(), Cost: cost, Seed: scale.Seed}
		co, err := baselines.CMDNOnly(src, udf, kk, p1opt)
		if err != nil {
			return nil, err
		}
		add(co.Name, co.IDs, co.MS, "")

		sel, err := baselines.SelectAndTopk(src, udf, kk, p1opt, nil)
		if err != nil {
			return nil, err
		}
		if best := pickBestSelectTopk(sel, trueScore, topTruth); best != nil {
			add("select-and-topk", best.IDs, best.MS, fmt.Sprintf("λ=%.1f", best.Lambda))
		} else {
			rows = append(rows, SystemRow{Dataset: spec.Name, System: "select-and-topk",
				Note: "no λ yielded ≥K candidates"})
		}
	}
	return rows, nil
}

// pickBestSelectTopk reproduces the paper's manual λ calibration: the λ
// with the largest speedup (smallest cost) subject to precision ≥ 0.9,
// falling back to the highest-precision λ when none qualifies.
func pickBestSelectTopk(outs []baselines.SelectTopkOutcome, trueScore func(int) float64, truth []metrics.Ranked) *baselines.SelectTopkOutcome {
	var qualified, fallback *baselines.SelectTopkOutcome
	fallbackPrec := -1.0
	for i := range outs {
		o := &outs[i]
		if o.Failed {
			continue
		}
		p := evalIDs(o.IDs, trueScore, truth).Precision
		if p >= 0.9 && (qualified == nil || o.MS < qualified.MS) {
			qualified = o
		}
		if p > fallbackPrec {
			fallback = o
			fallbackPrec = p
		}
	}
	if qualified != nil {
		return qualified
	}
	return fallback
}

// Table8Row is one dataset's row of Table 8 (latency breakdown + Phase 2
// counters).
type Table8Row struct {
	Dataset string
	// Shares of total simulated time, matching Table 8a's columns.
	LabelShare, TrainShare, PopulateShare, SelectShare, ConfirmShare float64
	// Iterations and the fraction of frames cleaned (Table 8b).
	Iterations  int
	CleanedFrac float64
	TotalMS     float64
	Confidence  float64
}

// Table8 reproduces the execution breakdown of Table 8 under the default
// query.
func Table8(scale Scale, k int, thres float64) ([]Table8Row, error) {
	scale = scale.withDefaults()
	var rows []Table8Row
	for _, spec := range video.CountingDatasets() {
		src, err := scale.buildDataset(spec)
		if err != nil {
			return nil, err
		}
		kk := boundK(k, src.NumFrames()/10)
		udf := vision.CountUDF{Class: src.TargetClass()}
		res, err := everest.Run(src, udf, scale.everestConfig(kk, thres))
		if err != nil {
			return nil, err
		}
		total := res.Clock.TotalMS()
		share := func(ph simclock.Phase) float64 {
			if total == 0 {
				return 0
			}
			return res.Clock.PhaseMS(ph) / total
		}
		rows = append(rows, Table8Row{
			Dataset:       spec.Name,
			LabelShare:    share(simclock.PhaseLabelSamples),
			TrainShare:    share(simclock.PhaseTrainCMDN),
			PopulateShare: share(simclock.PhasePopulateD0),
			SelectShare:   share(simclock.PhaseSelect),
			ConfirmShare:  share(simclock.PhaseConfirm),
			Iterations:    res.EngineStats.Iterations,
			CleanedFrac:   float64(res.EngineStats.Cleaned) / float64(res.Phase1.TotalFrames),
			TotalMS:       total,
			Confidence:    res.Confidence,
		})
	}
	return rows, nil
}

// runCountingPoint executes one Everest query on one counting dataset and
// evaluates it against ground truth.
func runCountingPoint(src *video.Synthetic, cfg everest.Config, x float64) (SweepRow, error) {
	udf := vision.CountUDF{Class: src.TargetClass()}
	cost := simclock.Default()
	res, err := everest.Run(src, udf, cfg)
	if err != nil {
		return SweepRow{}, err
	}
	scanMS := scanCostMS(src.NumFrames(), udf, cost)
	var q Quality
	var note string
	if cfg.Window > 0 {
		truth := windowTruth(src, udf, cfg.Window)
		top := metrics.TrueTopK(truth, cfg.K)
		q = evalIDs(res.IDs, func(w int) float64 { return truth[w].Score }, top)
	} else {
		truth := frameTruth(src, udf)
		top := metrics.TrueTopK(truth, cfg.K)
		q = evalIDs(res.IDs, func(i int) float64 { return truth[i].Score }, top)
	}
	note = fmt.Sprintf("conf=%.3f cleaned=%d", res.Confidence, res.EngineStats.Cleaned)
	return SweepRow{
		Dataset: src.Name(),
		X:       x,
		MS:      res.Clock.TotalMS(),
		Speedup: metrics.Speedup(scanMS, res.Clock.TotalMS()),
		Quality: q,
		Note:    note,
	}, nil
}

// Fig5 sweeps K ∈ {5,10,25,50,75,100} on the five counting videos.
func Fig5(scale Scale, thres float64) ([]SweepRow, error) {
	scale = scale.withDefaults()
	var rows []SweepRow
	for _, spec := range video.CountingDatasets() {
		src, err := scale.buildDataset(spec)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{5, 10, 25, 50, 75, 100} {
			cfg := scale.everestConfig(boundK(k, src.NumFrames()/10), thres)
			row, err := runCountingPoint(src, cfg, float64(k))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig6 sweeps thres ∈ {0.5,0.75,0.9,0.95,0.99}.
func Fig6(scale Scale, k int) ([]SweepRow, error) {
	scale = scale.withDefaults()
	var rows []SweepRow
	for _, spec := range video.CountingDatasets() {
		src, err := scale.buildDataset(spec)
		if err != nil {
			return nil, err
		}
		kk := boundK(k, src.NumFrames()/10)
		for _, thres := range []float64{0.5, 0.75, 0.9, 0.95, 0.99} {
			cfg := scale.everestConfig(kk, thres)
			row, err := runCountingPoint(src, cfg, thres)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig7 sweeps window sizes {1, 30, 60, 150, 300} frames (1 = frame-based)
// with 10% in-window sampling.
func Fig7(scale Scale, k int, thres float64) ([]SweepRow, error) {
	scale = scale.withDefaults()
	var rows []SweepRow
	for _, spec := range video.CountingDatasets() {
		src, err := scale.buildDataset(spec)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{1, 30, 60, 150, 300} {
			maxK := src.NumFrames() / 10
			if w > 1 {
				maxK = src.NumFrames() / w / 2
			}
			cfg := scale.everestConfig(boundK(k, maxK), thres)
			if w > 1 {
				cfg.Window = w
			}
			row, err := runCountingPoint(src, cfg, float64(w))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig8 sweeps Visual-Road car density {50,100,150,200,250}.
func Fig8(scale Scale, k int, thres float64) ([]SweepRow, error) {
	scale = scale.withDefaults()
	frames := scale.Frames
	if frames == 0 {
		frames = 27000 // the paper's 10-hour videos, scaled like Table 7
	}
	var rows []SweepRow
	for _, cars := range visualroad.CarCounts() {
		src, err := visualroad.Generate(cars, frames, 0x51a1)
		if err != nil {
			return nil, err
		}
		cfg := scale.everestConfig(boundK(k, src.NumFrames()/10), thres)
		row, err := runCountingPoint(src, cfg, float64(cars))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9 runs the depth-estimator UDF scenarios on the two dashcam videos:
// Top-50 (0.9), Top-100 (0.9), Top-50 (0.75) and a Top-50 window query.
func Fig9(scale Scale) ([]SystemRow, error) {
	scale = scale.withDefaults()
	cost := simclock.Default()
	scenarios := []struct {
		name   string
		k      int
		thres  float64
		window int
	}{
		{"top50", 50, 0.9, 0},
		{"top100", 100, 0.9, 0},
		{"top50-thres0.75", 50, 0.75, 0},
		{"top50-window30", 50, 0.9, 30},
	}
	var rows []SystemRow
	for _, spec := range video.DashcamDatasets() {
		// The dashcam corpora are only 3 hours long, so the global 1/400
		// scale would leave a few hundred frames; floor them at a size
		// where Phase 1's fixed sampling bill amortizes.
		frames := scale.framesFor(spec)
		if scale.Frames == 0 && frames < 20000 {
			frames = 20000
		}
		src, err := spec.Build(frames)
		if err != nil {
			return nil, err
		}
		udf := vision.TailgateUDF{}
		scanMS := scanCostMS(src.NumFrames(), udf, cost)
		for _, sc := range scenarios {
			maxK := src.NumFrames() / 10
			if sc.window > 0 {
				maxK = src.NumFrames() / sc.window / 2
			}
			cfg := scale.everestConfig(boundK(sc.k, maxK), sc.thres)
			cfg.Window = sc.window
			res, err := everest.Run(src, udf, cfg)
			if err != nil {
				return nil, err
			}
			var q Quality
			if sc.window > 0 {
				truth := windowTruth(src, udf, sc.window)
				top := metrics.TrueTopK(truth, cfg.K)
				q = evalIDs(res.IDs, func(w int) float64 { return truth[w].Score }, top)
			} else {
				truth := frameTruth(src, udf)
				top := metrics.TrueTopK(truth, cfg.K)
				q = evalIDs(res.IDs, func(i int) float64 { return truth[i].Score }, top)
			}
			rows = append(rows, SystemRow{
				Dataset: spec.Name,
				System:  sc.name,
				MS:      res.Clock.TotalMS(),
				Speedup: metrics.Speedup(scanMS, res.Clock.TotalMS()),
				Quality: q,
				Note:    fmt.Sprintf("conf=%.3f", res.Confidence),
			})
		}
	}
	return rows, nil
}

// LambdaRow is one λ setting of the Select-and-Topk sensitivity study:
// the paper's argument against the rewrite is that λ must be hand-tuned
// per dataset — too small floods the oracle, too large returns fewer than
// K frames or misses the true top.
type LambdaRow struct {
	Dataset    string
	Lambda     float64
	Candidates int
	MS         float64
	Speedup    float64
	Quality    Quality
	Failed     bool
}

// SelectTopkSensitivity sweeps λ on every counting dataset.
func SelectTopkSensitivity(scale Scale, k int) ([]LambdaRow, error) {
	scale = scale.withDefaults()
	cost := simclock.Default()
	var rows []LambdaRow
	for _, spec := range video.CountingDatasets() {
		src, err := scale.buildDataset(spec)
		if err != nil {
			return nil, err
		}
		kk := boundK(k, src.NumFrames()/10)
		udf := vision.CountUDF{Class: src.TargetClass()}
		truth := frameTruth(src, udf)
		topTruth := metrics.TrueTopK(truth, kk)
		trueScore := func(i int) float64 { return truth[i].Score }
		scanMS := scanCostMS(src.NumFrames(), udf, cost)

		p1opt := phase1.Options{Proxy: scale.proxyConfig(), Cost: cost, Seed: scale.Seed}
		outs, err := baselines.SelectAndTopk(src, udf, kk, p1opt, nil)
		if err != nil {
			return nil, err
		}
		for _, o := range outs {
			row := LambdaRow{
				Dataset:    spec.Name,
				Lambda:     o.Lambda,
				Candidates: o.Candidates,
				MS:         o.MS,
				Speedup:    metrics.Speedup(scanMS, o.MS),
				Failed:     o.Failed,
			}
			if !o.Failed {
				row.Quality = evalIDs(o.IDs, trueScore, topTruth)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
