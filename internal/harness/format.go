package harness

import (
	"fmt"
	"io"
)

// WriteSystemRows renders Fig. 4 / Fig. 9 rows as an aligned text table.
func WriteSystemRows(w io.Writer, title string, rows []SystemRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-20s %-22s %14s %9s %10s %10s %10s  %s\n",
		"dataset", "system", "sim-ms", "speedup", "precision", "rankdist", "scoreerr", "note")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-22s %14.0f %8.1fx %10.3f %10.4f %10.3f  %s\n",
			r.Dataset, r.System, r.MS, r.Speedup,
			r.Quality.Precision, r.Quality.RankDistance, r.Quality.ScoreError, r.Note)
	}
	fmt.Fprintln(w)
}

// WriteSweepRows renders Fig. 5–8 rows.
func WriteSweepRows(w io.Writer, title, xName string, rows []SweepRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-20s %8s %14s %9s %10s %10s %10s  %s\n",
		"dataset", xName, "sim-ms", "speedup", "precision", "rankdist", "scoreerr", "note")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %8g %14.0f %8.1fx %10.3f %10.4f %10.3f  %s\n",
			r.Dataset, r.X, r.MS, r.Speedup,
			r.Quality.Precision, r.Quality.RankDistance, r.Quality.ScoreError, r.Note)
	}
	fmt.Fprintln(w)
}

// WriteTable8 renders the Table 8 breakdown.
func WriteTable8(w io.Writer, rows []Table8Row) {
	fmt.Fprintln(w, "== Table 8a: latency breakdown (shares of simulated time) ==")
	fmt.Fprintf(w, "%-20s %8s %8s %10s %8s %9s\n",
		"dataset", "label", "train", "populate", "select", "confirm")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %7.2f%% %7.2f%% %9.2f%% %7.2f%% %8.2f%%\n",
			r.Dataset, 100*r.LabelShare, 100*r.TrainShare, 100*r.PopulateShare,
			100*r.SelectShare, 100*r.ConfirmShare)
	}
	fmt.Fprintln(w, "\n== Table 8b: Phase 2 counters ==")
	fmt.Fprintf(w, "%-20s %12s %16s %12s\n", "dataset", "iterations", "% frames cleaned", "confidence")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %12d %15.2f%% %12.3f\n",
			r.Dataset, r.Iterations, 100*r.CleanedFrac, r.Confidence)
	}
	fmt.Fprintln(w)
}

// WriteAblationRows renders an ablation study.
func WriteAblationRows(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-20s %-22s %14s %10s %10s %10s  %s\n",
		"dataset", "variant", "sim-ms", "precision", "rankdist", "scoreerr", "note")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-22s %14.0f %10.3f %10.4f %10.3f  %s\n",
			r.Dataset, r.Variant, r.MS,
			r.Quality.Precision, r.Quality.RankDistance, r.Quality.ScoreError, r.Note)
	}
	fmt.Fprintln(w)
}

// WriteLambdaRows renders the Select-and-Topk λ sensitivity study.
func WriteLambdaRows(w io.Writer, rows []LambdaRow) {
	fmt.Fprintln(w, "== Select-and-Topk λ sensitivity (the paper's calibration problem) ==")
	fmt.Fprintf(w, "%-20s %6s %11s %14s %9s %10s  %s\n",
		"dataset", "λ", "candidates", "oracle-ms", "speedup", "precision", "status")
	for _, r := range rows {
		status := "ok"
		if r.Failed {
			status = "FAILED (<K candidates)"
		}
		fmt.Fprintf(w, "%-20s %6.1f %11d %14.0f %8.1fx %10.3f  %s\n",
			r.Dataset, r.Lambda, r.Candidates, r.MS, r.Speedup, r.Quality.Precision, status)
	}
	fmt.Fprintln(w)
}

// WriteIngestRows renders the ingestion-amortization study.
func WriteIngestRows(w io.Writer, rows []IngestRow) {
	fmt.Fprintln(w, "== Ingestion-time indexing (Phase 1 offline, §4.2 discussion) ==")
	fmt.Fprintf(w, "%-20s %8s %14s %14s %14s %11s\n",
		"dataset", "queries", "fresh-ms", "ingest-ms", "indexed-ms", "break-even")
	for _, r := range rows {
		be := "never"
		if r.Breakeven >= 0 {
			be = fmt.Sprintf("%d queries", r.Breakeven)
		}
		fmt.Fprintf(w, "%-20s %8d %14.0f %14.0f %14.0f %11s\n",
			r.Dataset, r.Queries, r.FreshMS, r.IngestMS, r.IndexedMS, be)
	}
	fmt.Fprintln(w)
}

// WriteScaleRows renders the scale-out scalability sweep.
func WriteScaleRows(w io.Writer, rows []ScaleRow) {
	fmt.Fprintln(w, "== Scale-out scalability (RAM3S future work, §3.5) ==")
	fmt.Fprintf(w, "%-20s %8s %14s %14s %9s %11s %10s\n",
		"dataset", "workers", "wall-ms", "bill-ms", "speedup", "efficiency", "precision")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %8d %14.0f %14.0f %8.1fx %11.2f %10.3f\n",
			r.Dataset, r.Workers, r.WallMS, r.BillMS, r.Speedup,
			r.ScaleEfficiency, r.Quality.Precision)
	}
	fmt.Fprintln(w)
}

// WriteSessionRows renders the cross-query work-sharing study.
func WriteSessionRows(w io.Writer, rows []SessionRow) {
	fmt.Fprintln(w, "== Session work sharing (cross-query oracle cache) ==")
	fmt.Fprintf(w, "%-20s %-12s %14s %14s %9s %10s %10s\n",
		"dataset", "query", "session-ms", "alone-ms", "cleaned", "cache", "precision")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-12s %14.0f %14.0f %9d %10d %10.3f\n",
			r.Dataset, r.Query, r.SessionMS, r.AloneMS, r.Cleaned,
			r.CacheSize, r.Quality.Precision)
	}
	fmt.Fprintln(w)
}

// WriteSlidingRows renders the sliding-vs-tumbling comparison.
func WriteSlidingRows(w io.Writer, rows []SlidingRow) {
	fmt.Fprintln(w, "== Sliding windows (overlap → union bound) ==")
	fmt.Fprintf(w, "%-20s %-14s %9s %-12s %8s %14s %10s %10s\n",
		"dataset", "variant", "windows", "bound", "cleaned", "sim-ms", "precision", "scoreerr")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-14s %9d %-12s %8d %14.0f %10.3f %10.3f\n",
			r.Dataset, r.Variant, r.Windows, r.Bound, r.Cleaned, r.MS,
			r.Quality.Precision, r.Quality.ScoreError)
	}
	fmt.Fprintln(w)
}
