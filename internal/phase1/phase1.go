// Package phase1 implements Everest's first phase (§3.2): sample frames,
// label them with the oracle UDF, train the CMDN grid and select by
// holdout NLL, run the difference detector, and build the initial
// uncertain relation D0 (frame-level or window-level). It is shared by
// the Everest engine and by the baselines that reuse parts of the
// pipeline (CMDN-only, Select-and-Topk).
package phase1

import (
	"fmt"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/workpool"
	"github.com/everest-project/everest/internal/xrand"
)

// Options configures Phase 1.
type Options struct {
	// SampleFrac is the labelled-sample fraction; zero means 0.02 (the
	// paper's 0.5% is tied to multi-million-frame videos; see DESIGN.md).
	SampleFrac float64
	// SampleCap bounds absolute training samples; zero means 30000.
	SampleCap int
	// MinSamples floors training samples; zero means 600.
	MinSamples int
	// HoldoutFrac sizes the holdout set relative to training; zero means
	// 0.1.
	HoldoutFrac float64
	// Diff configures the difference detector.
	Diff diffdet.Options
	// DisableDiff retains every frame (ablation A4).
	DisableDiff bool
	// Proxy configures CMDN training.
	Proxy cmdn.Config
	// Cost is the simulated cost model.
	Cost simclock.CostModel
	// Seed drives sampling and training.
	Seed uint64
	// Procs bounds the worker count for feature extraction, CMDN grid
	// training and D0 proxy-inference sweeps; ≤ 0 means GOMAXPROCS.
	// Results are bit-identical for every value.
	Procs int
	// Pool, when non-nil, is a caller-owned resident worker pool the
	// fan-outs (feature extraction, the difference detector, proxy
	// inference, window aggregation) run on instead of transient
	// goroutines. The State keeps it for the relation builders, so it
	// must outlive them. Never affects results.
	Pool *workpool.Pool
}

func (o Options) withDefaults() Options {
	if o.SampleFrac == 0 {
		o.SampleFrac = 0.02
	}
	if o.SampleCap == 0 {
		o.SampleCap = 30000
	}
	if o.MinSamples == 0 {
		o.MinSamples = 600
	}
	if o.HoldoutFrac == 0 {
		o.HoldoutFrac = 0.1
	}
	if o.Cost == (simclock.CostModel{}) {
		o.Cost = simclock.Default()
	}
	return o
}

// Info reports Phase 1 statistics.
type Info struct {
	// TotalFrames is the video length.
	TotalFrames int
	// TrainSamples and HoldoutSamples are labelled sample counts.
	TrainSamples, HoldoutSamples int
	// Retained counts frames surviving the difference detector.
	Retained int
	// Hyper is the selected grid point; HoldoutNLL its criterion value.
	Hyper      cmdn.Hyper
	HoldoutNLL float64
}

// State carries Phase 1 outputs into Phase 2.
type State struct {
	// Src is the video.
	Src video.Source
	// Proxy is the selected CMDN.
	Proxy *cmdn.Proxy
	// Diff is the difference-detector result.
	Diff diffdet.Result
	// Labeled maps sampled frame → exact oracle score.
	Labeled map[int]float64
	// Info is the statistics summary.
	Info Info

	arch  cmdn.Arch
	clock *simclock.Clock
	cost  simclock.CostModel
	procs int
	pool  *workpool.Pool
}

// SamplePlan is the deterministic labelling plan for a video of a given
// length: which frames Phase 1 labels for training and holdout. It is a
// pure function of (n, Options.Seed and the sampling knobs) — see
// PlanSamples — so streaming ingestion can compute it the moment a
// segment's span is fixed and label eagerly as chunks arrive, knowing a
// batch ingest of the same span will label exactly the same frames.
type SamplePlan struct {
	// TrainIdx and HoldIdx are frame indices, in labelling order.
	TrainIdx, HoldIdx []int
}

// PlanSamples computes the labelling plan Run uses for an n-frame
// video: sample-fraction sizing with cap/floor, the tiny-video
// fallback, and the seed-derived draw and train/holdout split.
func PlanSamples(n int, opt Options) (SamplePlan, error) {
	opt = opt.withDefaults()
	rng := xrand.New(opt.Seed).Split("everest/phase1")

	trainN := int(opt.SampleFrac * float64(n))
	if trainN < opt.MinSamples {
		trainN = opt.MinSamples
	}
	if trainN > opt.SampleCap {
		trainN = opt.SampleCap
	}
	holdN := int(opt.HoldoutFrac * float64(trainN))
	if holdN < 100 {
		holdN = 100
	}
	if trainN+holdN > n {
		// Tiny videos: label at most half the video, split 80/20.
		total := n / 2
		if total < 5 {
			return SamplePlan{}, fmt.Errorf("phase1: video of %d frames is too short", n)
		}
		trainN = total * 4 / 5
		holdN = total - trainN
	}

	all := rng.Split("sample").SampleK(n, trainN+holdN)
	perm := rng.Split("split").Perm(len(all))
	trainIdx := make([]int, 0, trainN)
	holdIdx := make([]int, 0, holdN)
	for i, p := range perm {
		if i < trainN {
			trainIdx = append(trainIdx, all[p])
		} else {
			holdIdx = append(holdIdx, all[p])
		}
	}
	return SamplePlan{TrainIdx: trainIdx, HoldIdx: holdIdx}, nil
}

// Label scores the given frames with the oracle and charges the
// per-sample labelling cost (oracle plus decode) to clock — the one
// labelling path, shared by Run and by the streaming ingestor, which
// labels a segment's plan chunk by chunk as frames arrive. The total
// charge depends only on how many frames are labelled, not on how the
// calls are batched.
func Label(src video.Source, udf vision.UDF, ids []int, opt Options, clock *simclock.Clock) []float64 {
	if len(ids) == 0 {
		return nil
	}
	opt = opt.withDefaults()
	scores := udf.Score(src, ids)
	if clock != nil {
		clock.Charge(simclock.PhaseLabelSamples, float64(len(ids))*(udf.OracleCostMS(opt.Cost)+opt.Cost.DecodeMS))
	}
	return scores
}

// Samples renders and featurizes the given labelled frames into CMDN
// training samples, fanned out over the configured workers with
// index-ordered emission — a pure function of (src, idx, scores). No
// cost is charged: labelling cost was charged where the scores were
// obtained, and feature extraction rides the training charge.
func Samples(src video.Source, arch cmdn.Arch, idx []int, scores []float64, procs int, pool *workpool.Pool) []cmdn.Sample {
	return workpool.MapOn(pool, procs, len(idx), func(_, k int) cmdn.Sample {
		i := idx[k]
		return cmdn.Sample{Frame: i, X: cmdn.InputFor(arch, src.Render(i)), Y: scores[k]}
	})
}

// Run executes Phase 1: plan the samples, label them, train the CMDN
// grid, run the difference detector and assemble the State. It is the
// composition PlanSamples → Label → RunLabelled, exported separately so
// the streaming ingestor can interleave the stages with chunk arrival
// and still produce bit-identical output.
func Run(src video.Source, udf vision.UDF, opt Options, clock *simclock.Clock) (*State, error) {
	opt = opt.withDefaults()
	if clock == nil {
		clock = simclock.NewClock()
	}
	plan, err := PlanSamples(src.NumFrames(), opt)
	if err != nil {
		return nil, err
	}
	trainScores := Label(src, udf, plan.TrainIdx, opt, clock)
	holdScores := Label(src, udf, plan.HoldIdx, opt, clock)
	return RunLabelled(src, opt, plan, trainScores, holdScores, clock)
}

// RunLabelled is Run with the labelling already done: plan names the
// labelled frames (from PlanSamples over the same Options) and
// trainScores/holdScores their oracle scores, charged by the caller as
// they were obtained. Given the plan and scores Run would produce, it
// returns a bit-identical State with bit-identical remaining charges.
func RunLabelled(src video.Source, opt Options, plan SamplePlan, trainScores, holdScores []float64, clock *simclock.Clock) (*State, error) {
	opt = opt.withDefaults()
	if clock == nil {
		clock = simclock.NewClock()
	}
	arch := opt.Proxy.Arch
	proxyCfg := opt.Proxy
	w, h := src.Resolution()
	proxyCfg.FrameW, proxyCfg.FrameH = w, h
	if proxyCfg.Seed == 0 {
		// Derived exactly as in the pre-split Run: the "cmdn" child of the
		// phase-1 stream (Split never advances its parent, so deriving it
		// here is bit-identical to deriving it alongside the sample draw).
		proxyCfg.Seed = xrand.New(opt.Seed).Split("everest/phase1").Split("cmdn").Uint64()
	}
	if proxyCfg.Procs == 0 {
		proxyCfg.Procs = opt.Procs
	}
	train := Samples(src, arch, plan.TrainIdx, trainScores, opt.Procs, opt.Pool)
	hold := Samples(src, arch, plan.HoldIdx, holdScores, opt.Procs, opt.Pool)
	proxy, _, err := cmdn.Train(train, hold, proxyCfg, clock, opt.Cost)
	if err != nil {
		return nil, err
	}
	return AssembleState(src, proxy, opt, plan, trainScores, holdScores, clock)
}

// AssembleState runs the difference detector and packages a trained
// proxy with its labelled samples into the State Phase 2 consumes — the
// shared tail of Run and of warm-start streaming ingestion, whose proxy
// came from cmdn.Refresh instead of a full grid train.
func AssembleState(src video.Source, proxy *cmdn.Proxy, opt Options, plan SamplePlan, trainScores, holdScores []float64, clock *simclock.Clock) (*State, error) {
	opt = opt.withDefaults()
	if clock == nil {
		clock = simclock.NewClock()
	}
	n := src.NumFrames()

	var diff diffdet.Result
	var err error
	if opt.DisableDiff {
		rep := make([]int32, n)
		retained := make([]int, n)
		for i := range rep {
			rep[i] = int32(i)
			retained[i] = i
		}
		diff = diffdet.Result{Retained: retained, RepOf: rep}
		clock.Charge(simclock.PhasePopulateD0, float64(n)*opt.Cost.DecodeMS)
	} else {
		dopt := opt.Diff
		if dopt.Procs == 0 {
			// The detector follows the engine-wide worker bound unless its
			// own knob is set explicitly.
			dopt.Procs = opt.Procs
		}
		if dopt.Pool == nil {
			dopt.Pool = opt.Pool
		}
		diff, err = diffdet.Run(src, dopt, clock, opt.Cost, simclock.PhasePopulateD0)
		if err != nil {
			return nil, err
		}
	}

	labeled := make(map[int]float64, len(plan.TrainIdx)+len(plan.HoldIdx))
	for k, i := range plan.TrainIdx {
		labeled[i] = trainScores[k]
	}
	for k, i := range plan.HoldIdx {
		labeled[i] = holdScores[k]
	}

	return &State{
		Src:     src,
		Proxy:   proxy,
		Diff:    diff,
		Labeled: labeled,
		arch:    opt.Proxy.Arch,
		clock:   clock,
		cost:    opt.Cost,
		procs:   opt.Procs,
		pool:    opt.Pool,
		Info: Info{
			TotalFrames:    n,
			TrainSamples:   len(plan.TrainIdx),
			HoldoutSamples: len(plan.HoldIdx),
			Retained:       len(diff.Retained),
			Hyper:          proxy.Hyper(),
			HoldoutNLL:     proxy.HoldoutNLL(),
		},
	}, nil
}

// MixtureOf runs proxy inference for one frame (not charged; charging
// happens where inference volume is decided).
func (s *State) MixtureOf(i int) uncertain.Mixture {
	return s.Proxy.PredictFrame(s.Src.Render(i))
}

// InferMixtures runs proxy inference for the given frames on all
// configured workers and returns the mixtures in input order, identical
// to calling MixtureOf serially. No cost is charged; charging happens
// where inference volume is decided.
func (s *State) InferMixtures(ids []int) []uncertain.Mixture {
	return workpool.MapWithOn(s.pool, s.procs, len(ids), s.Proxy.CloneForInference,
		func(p *cmdn.Proxy, k int) uncertain.Mixture {
			return p.PredictFrame(s.Src.Render(ids[k]))
		})
}

// InferRetainedMixtures runs proxy inference for every retained frame
// without an exact Phase 1 label, on all configured workers, and returns
// those frame IDs with their mixtures in retained order. No cost is
// charged; callers charge where the inference volume is decided.
func (s *State) InferRetainedMixtures() ([]int, []uncertain.Mixture) {
	ids := make([]int, 0, len(s.Diff.Retained))
	for _, f := range s.Diff.Retained {
		if _, ok := s.Labeled[f]; !ok {
			ids = append(ids, f)
		}
	}
	return ids, s.InferMixtures(ids)
}

// FrameRelation builds D0 over retained frames: labelled frames enter as
// certain tuples (§3.2), the rest get their quantized CMDN distribution.
// Tuples are computed on all configured workers and emitted in retained
// order, bit-identical to the serial scan. Proxy inference cost is
// charged per inferred frame.
func (s *State) FrameRelation(qopt uncertain.QuantizeOptions) uncertain.Relation {
	type tupleOut struct {
		dist     uncertain.Dist
		inferred bool
	}
	outs := workpool.MapWithOn(s.pool, s.procs, len(s.Diff.Retained), s.Proxy.CloneForInference,
		func(p *cmdn.Proxy, k int) tupleOut {
			i := s.Diff.Retained[k]
			if score, ok := s.Labeled[i]; ok {
				return tupleOut{dist: uncertain.Certain(ClampLevel(uncertain.LevelOf(score, qopt.Step), qopt))}
			}
			mix := p.PredictFrame(s.Src.Render(i))
			d, err := uncertain.Quantize(mix, qopt)
			if err != nil {
				// Degenerate mixture: fall back to a point mass at its mean.
				d = uncertain.Certain(ClampLevel(uncertain.LevelOf(mix.Mean(), qopt.Step), qopt))
			}
			return tupleOut{dist: d, inferred: true}
		})
	rel := make(uncertain.Relation, len(outs))
	inferred := 0
	for k, o := range outs {
		rel[k] = uncertain.XTuple{ID: s.Diff.Retained[k], Dist: o.dist}
		if o.inferred {
			inferred++
		}
	}
	s.clock.Charge(simclock.PhasePopulateD0, float64(inferred)*s.cost.ProxyMS)
	return rel
}

// WindowRelation builds the window-level D0 of §3.4 for tumbling windows
// of the given size.
func (s *State) WindowRelation(size int, qopt uncertain.QuantizeOptions) (uncertain.Relation, error) {
	return s.WindowRelationStrided(size, size, qopt)
}

// WindowRelationStrided builds the window-level D0 for windows of the
// given size starting every stride frames. Stride < size produces
// overlapping (correlated) windows; the caller must then run Phase 2 with
// the union bound.
//
// The representatives the window aggregation consults are enumerated up
// front (a cheap segment walk, no pixels touched), their mixtures are
// inferred on all configured workers, and the relation itself is then
// assembled serially from the cache — so the result, and the simulated
// inference charge, match the serial lazy-cache path exactly.
func (s *State) WindowRelationStrided(size, stride int, qopt uncertain.QuantizeOptions) (uncertain.Relation, error) {
	maxLevel := 0
	if qopt.MaxLevel > 0 && qopt.MaxLevel < int(^uint(0)>>1) {
		maxLevel = qopt.MaxLevel
	}
	wopt := windows.Options{
		Size:     size,
		Stride:   stride,
		Step:     qopt.Step,
		MaxLevel: maxLevel,
		Procs:    s.procs,
		Pool:     s.pool,
	}
	reps := windows.Reps(s.Diff, wopt)
	inferIDs := make([]int, 0, len(reps))
	mixCache := make(map[int]windows.FrameScore, len(reps))
	for _, rep := range reps {
		if score, ok := s.Labeled[rep]; ok {
			mixCache[rep] = windows.FrameScore{IsExact: true, Exact: score}
		} else {
			inferIDs = append(inferIDs, rep)
		}
	}
	for k, mix := range s.InferMixtures(inferIDs) {
		mixCache[inferIDs[k]] = windows.FrameScore{Mix: mix}
	}
	rel, err := windows.BuildRelation(func(rep int) windows.FrameScore {
		fs, ok := mixCache[rep]
		if !ok {
			// windows.Reps enumerates exactly BuildRelation's requests; a
			// miss means the two went out of sync and the window means
			// would silently be wrong.
			panic(fmt.Sprintf("phase1: representative %d missing from precomputed window cache", rep))
		}
		return fs
	}, s.Diff, wopt)
	s.clock.Charge(simclock.PhasePopulateD0, float64(len(inferIDs))*s.cost.ProxyMS)
	return rel, err
}

// ClampLevel clips a level into the quantization bounds.
func ClampLevel(lvl int, qopt uncertain.QuantizeOptions) int {
	if lvl < qopt.MinLevel {
		return qopt.MinLevel
	}
	if lvl > qopt.MaxLevel {
		return qopt.MaxLevel
	}
	return lvl
}
