// Package phase1 implements Everest's first phase (§3.2): sample frames,
// label them with the oracle UDF, train the CMDN grid and select by
// holdout NLL, run the difference detector, and build the initial
// uncertain relation D0 (frame-level or window-level). It is shared by
// the Everest engine and by the baselines that reuse parts of the
// pipeline (CMDN-only, Select-and-Topk).
package phase1

import (
	"fmt"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/xrand"
)

// Options configures Phase 1.
type Options struct {
	// SampleFrac is the labelled-sample fraction; zero means 0.02 (the
	// paper's 0.5% is tied to multi-million-frame videos; see DESIGN.md).
	SampleFrac float64
	// SampleCap bounds absolute training samples; zero means 30000.
	SampleCap int
	// MinSamples floors training samples; zero means 600.
	MinSamples int
	// HoldoutFrac sizes the holdout set relative to training; zero means
	// 0.1.
	HoldoutFrac float64
	// Diff configures the difference detector.
	Diff diffdet.Options
	// DisableDiff retains every frame (ablation A4).
	DisableDiff bool
	// Proxy configures CMDN training.
	Proxy cmdn.Config
	// Cost is the simulated cost model.
	Cost simclock.CostModel
	// Seed drives sampling and training.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.SampleFrac == 0 {
		o.SampleFrac = 0.02
	}
	if o.SampleCap == 0 {
		o.SampleCap = 30000
	}
	if o.MinSamples == 0 {
		o.MinSamples = 600
	}
	if o.HoldoutFrac == 0 {
		o.HoldoutFrac = 0.1
	}
	if o.Cost == (simclock.CostModel{}) {
		o.Cost = simclock.Default()
	}
	return o
}

// Info reports Phase 1 statistics.
type Info struct {
	// TotalFrames is the video length.
	TotalFrames int
	// TrainSamples and HoldoutSamples are labelled sample counts.
	TrainSamples, HoldoutSamples int
	// Retained counts frames surviving the difference detector.
	Retained int
	// Hyper is the selected grid point; HoldoutNLL its criterion value.
	Hyper      cmdn.Hyper
	HoldoutNLL float64
}

// State carries Phase 1 outputs into Phase 2.
type State struct {
	// Src is the video.
	Src video.Source
	// Proxy is the selected CMDN.
	Proxy *cmdn.Proxy
	// Diff is the difference-detector result.
	Diff diffdet.Result
	// Labeled maps sampled frame → exact oracle score.
	Labeled map[int]float64
	// Info is the statistics summary.
	Info Info

	arch  cmdn.Arch
	clock *simclock.Clock
	cost  simclock.CostModel
}

// Run executes Phase 1.
func Run(src video.Source, udf vision.UDF, opt Options, clock *simclock.Clock) (*State, error) {
	opt = opt.withDefaults()
	if clock == nil {
		clock = simclock.NewClock()
	}
	n := src.NumFrames()
	rng := xrand.New(opt.Seed).Split("everest/phase1")

	trainN := int(opt.SampleFrac * float64(n))
	if trainN < opt.MinSamples {
		trainN = opt.MinSamples
	}
	if trainN > opt.SampleCap {
		trainN = opt.SampleCap
	}
	holdN := int(opt.HoldoutFrac * float64(trainN))
	if holdN < 100 {
		holdN = 100
	}
	if trainN+holdN > n {
		// Tiny videos: label at most half the video, split 80/20.
		total := n / 2
		if total < 5 {
			return nil, fmt.Errorf("phase1: video of %d frames is too short", n)
		}
		trainN = total * 4 / 5
		holdN = total - trainN
	}

	all := rng.Split("sample").SampleK(n, trainN+holdN)
	perm := rng.Split("split").Perm(len(all))
	trainIdx := make([]int, 0, trainN)
	holdIdx := make([]int, 0, holdN)
	for i, p := range perm {
		if i < trainN {
			trainIdx = append(trainIdx, all[p])
		} else {
			holdIdx = append(holdIdx, all[p])
		}
	}

	udfCost := udf.OracleCostMS(opt.Cost)
	label := func(ids []int) []float64 {
		scores := udf.Score(src, ids)
		clock.Charge(simclock.PhaseLabelSamples, float64(len(ids))*(udfCost+opt.Cost.DecodeMS))
		return scores
	}
	trainScores := label(trainIdx)
	holdScores := label(holdIdx)

	arch := opt.Proxy.Arch
	mkSamples := func(idx []int, scores []float64) []cmdn.Sample {
		out := make([]cmdn.Sample, len(idx))
		for k, i := range idx {
			out[k] = cmdn.Sample{Frame: i, X: cmdn.InputFor(arch, src.Render(i)), Y: scores[k]}
		}
		return out
	}

	proxyCfg := opt.Proxy
	w, h := src.Resolution()
	proxyCfg.FrameW, proxyCfg.FrameH = w, h
	if proxyCfg.Seed == 0 {
		proxyCfg.Seed = rng.Split("cmdn").Uint64()
	}
	proxy, _, err := cmdn.Train(mkSamples(trainIdx, trainScores), mkSamples(holdIdx, holdScores), proxyCfg, clock, opt.Cost)
	if err != nil {
		return nil, err
	}

	var diff diffdet.Result
	if opt.DisableDiff {
		rep := make([]int32, n)
		retained := make([]int, n)
		for i := range rep {
			rep[i] = int32(i)
			retained[i] = i
		}
		diff = diffdet.Result{Retained: retained, RepOf: rep}
		clock.Charge(simclock.PhasePopulateD0, float64(n)*opt.Cost.DecodeMS)
	} else {
		diff, err = diffdet.Run(src, opt.Diff, clock, opt.Cost, simclock.PhasePopulateD0)
		if err != nil {
			return nil, err
		}
	}

	labeled := make(map[int]float64, len(trainIdx)+len(holdIdx))
	for k, i := range trainIdx {
		labeled[i] = trainScores[k]
	}
	for k, i := range holdIdx {
		labeled[i] = holdScores[k]
	}

	return &State{
		Src:     src,
		Proxy:   proxy,
		Diff:    diff,
		Labeled: labeled,
		arch:    arch,
		clock:   clock,
		cost:    opt.Cost,
		Info: Info{
			TotalFrames:    n,
			TrainSamples:   len(trainIdx),
			HoldoutSamples: len(holdIdx),
			Retained:       len(diff.Retained),
			Hyper:          proxy.Hyper(),
			HoldoutNLL:     proxy.HoldoutNLL(),
		},
	}, nil
}

// MixtureOf runs proxy inference for one frame (not charged; charging
// happens where inference volume is decided).
func (s *State) MixtureOf(i int) uncertain.Mixture {
	return s.Proxy.PredictFrame(s.Src.Render(i))
}

// FrameRelation builds D0 over retained frames: labelled frames enter as
// certain tuples (§3.2), the rest get their quantized CMDN distribution.
// Proxy inference cost is charged per inferred frame.
func (s *State) FrameRelation(qopt uncertain.QuantizeOptions) uncertain.Relation {
	rel := make(uncertain.Relation, 0, len(s.Diff.Retained))
	inferred := 0
	for _, i := range s.Diff.Retained {
		if score, ok := s.Labeled[i]; ok {
			rel = append(rel, uncertain.XTuple{ID: i, Dist: uncertain.Certain(ClampLevel(uncertain.LevelOf(score, qopt.Step), qopt))})
			continue
		}
		inferred++
		d, err := uncertain.Quantize(s.MixtureOf(i), qopt)
		if err != nil {
			// Degenerate mixture: fall back to a point mass at its mean.
			d = uncertain.Certain(ClampLevel(uncertain.LevelOf(s.MixtureOf(i).Mean(), qopt.Step), qopt))
		}
		rel = append(rel, uncertain.XTuple{ID: i, Dist: d})
	}
	s.clock.Charge(simclock.PhasePopulateD0, float64(inferred)*s.cost.ProxyMS)
	return rel
}

// WindowRelation builds the window-level D0 of §3.4 for tumbling windows
// of the given size.
func (s *State) WindowRelation(size int, qopt uncertain.QuantizeOptions) (uncertain.Relation, error) {
	return s.WindowRelationStrided(size, size, qopt)
}

// WindowRelationStrided builds the window-level D0 for windows of the
// given size starting every stride frames. Stride < size produces
// overlapping (correlated) windows; the caller must then run Phase 2 with
// the union bound.
func (s *State) WindowRelationStrided(size, stride int, qopt uncertain.QuantizeOptions) (uncertain.Relation, error) {
	mixCache := make(map[int]windows.FrameScore, len(s.Diff.Retained))
	inferred := 0
	scoreOf := func(rep int) windows.FrameScore {
		if fs, ok := mixCache[rep]; ok {
			return fs
		}
		var fs windows.FrameScore
		if score, ok := s.Labeled[rep]; ok {
			fs = windows.FrameScore{IsExact: true, Exact: score}
		} else {
			inferred++
			fs = windows.FrameScore{Mix: s.MixtureOf(rep)}
		}
		mixCache[rep] = fs
		return fs
	}
	maxLevel := 0
	if qopt.MaxLevel > 0 && qopt.MaxLevel < int(^uint(0)>>1) {
		maxLevel = qopt.MaxLevel
	}
	rel, err := windows.BuildRelation(scoreOf, s.Diff, windows.Options{
		Size:     size,
		Stride:   stride,
		Step:     qopt.Step,
		MaxLevel: maxLevel,
	})
	s.clock.Charge(simclock.PhasePopulateD0, float64(inferred)*s.cost.ProxyMS)
	return rel, err
}

// ClampLevel clips a level into the quantization bounds.
func ClampLevel(lvl int, qopt uncertain.QuantizeOptions) int {
	if lvl < qopt.MinLevel {
		return qopt.MinLevel
	}
	if lvl > qopt.MaxLevel {
		return qopt.MaxLevel
	}
	return lvl
}
