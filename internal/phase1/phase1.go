// Package phase1 implements Everest's first phase (§3.2): sample frames,
// label them with the oracle UDF, train the CMDN grid and select by
// holdout NLL, run the difference detector, and build the initial
// uncertain relation D0 (frame-level or window-level). It is shared by
// the Everest engine and by the baselines that reuse parts of the
// pipeline (CMDN-only, Select-and-Topk).
package phase1

import (
	"fmt"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/workpool"
	"github.com/everest-project/everest/internal/xrand"
)

// Options configures Phase 1.
type Options struct {
	// SampleFrac is the labelled-sample fraction; zero means 0.02 (the
	// paper's 0.5% is tied to multi-million-frame videos; see DESIGN.md).
	SampleFrac float64
	// SampleCap bounds absolute training samples; zero means 30000.
	SampleCap int
	// MinSamples floors training samples; zero means 600.
	MinSamples int
	// HoldoutFrac sizes the holdout set relative to training; zero means
	// 0.1.
	HoldoutFrac float64
	// Diff configures the difference detector.
	Diff diffdet.Options
	// DisableDiff retains every frame (ablation A4).
	DisableDiff bool
	// Proxy configures CMDN training.
	Proxy cmdn.Config
	// Cost is the simulated cost model.
	Cost simclock.CostModel
	// Seed drives sampling and training.
	Seed uint64
	// Procs bounds the worker count for feature extraction, CMDN grid
	// training and D0 proxy-inference sweeps; ≤ 0 means GOMAXPROCS.
	// Results are bit-identical for every value.
	Procs int
	// Pool, when non-nil, is a caller-owned resident worker pool the
	// fan-outs (feature extraction, the difference detector, proxy
	// inference, window aggregation) run on instead of transient
	// goroutines. The State keeps it for the relation builders, so it
	// must outlive them. Never affects results.
	Pool *workpool.Pool
}

func (o Options) withDefaults() Options {
	if o.SampleFrac == 0 {
		o.SampleFrac = 0.02
	}
	if o.SampleCap == 0 {
		o.SampleCap = 30000
	}
	if o.MinSamples == 0 {
		o.MinSamples = 600
	}
	if o.HoldoutFrac == 0 {
		o.HoldoutFrac = 0.1
	}
	if o.Cost == (simclock.CostModel{}) {
		o.Cost = simclock.Default()
	}
	return o
}

// Info reports Phase 1 statistics.
type Info struct {
	// TotalFrames is the video length.
	TotalFrames int
	// TrainSamples and HoldoutSamples are labelled sample counts.
	TrainSamples, HoldoutSamples int
	// Retained counts frames surviving the difference detector.
	Retained int
	// Hyper is the selected grid point; HoldoutNLL its criterion value.
	Hyper      cmdn.Hyper
	HoldoutNLL float64
}

// State carries Phase 1 outputs into Phase 2.
type State struct {
	// Src is the video.
	Src video.Source
	// Proxy is the selected CMDN.
	Proxy *cmdn.Proxy
	// Diff is the difference-detector result.
	Diff diffdet.Result
	// Labeled maps sampled frame → exact oracle score.
	Labeled map[int]float64
	// Info is the statistics summary.
	Info Info

	arch  cmdn.Arch
	clock *simclock.Clock
	cost  simclock.CostModel
	procs int
	pool  *workpool.Pool
}

// Run executes Phase 1.
func Run(src video.Source, udf vision.UDF, opt Options, clock *simclock.Clock) (*State, error) {
	opt = opt.withDefaults()
	if clock == nil {
		clock = simclock.NewClock()
	}
	n := src.NumFrames()
	rng := xrand.New(opt.Seed).Split("everest/phase1")

	trainN := int(opt.SampleFrac * float64(n))
	if trainN < opt.MinSamples {
		trainN = opt.MinSamples
	}
	if trainN > opt.SampleCap {
		trainN = opt.SampleCap
	}
	holdN := int(opt.HoldoutFrac * float64(trainN))
	if holdN < 100 {
		holdN = 100
	}
	if trainN+holdN > n {
		// Tiny videos: label at most half the video, split 80/20.
		total := n / 2
		if total < 5 {
			return nil, fmt.Errorf("phase1: video of %d frames is too short", n)
		}
		trainN = total * 4 / 5
		holdN = total - trainN
	}

	all := rng.Split("sample").SampleK(n, trainN+holdN)
	perm := rng.Split("split").Perm(len(all))
	trainIdx := make([]int, 0, trainN)
	holdIdx := make([]int, 0, holdN)
	for i, p := range perm {
		if i < trainN {
			trainIdx = append(trainIdx, all[p])
		} else {
			holdIdx = append(holdIdx, all[p])
		}
	}

	udfCost := udf.OracleCostMS(opt.Cost)
	label := func(ids []int) []float64 {
		scores := udf.Score(src, ids)
		clock.Charge(simclock.PhaseLabelSamples, float64(len(ids))*(udfCost+opt.Cost.DecodeMS))
		return scores
	}
	trainScores := label(trainIdx)
	holdScores := label(holdIdx)

	arch := opt.Proxy.Arch
	// Feature extraction is a pure function of the frame index, so samples
	// can be rendered and featurized on all cores with index-ordered
	// emission.
	mkSamples := func(idx []int, scores []float64) []cmdn.Sample {
		return workpool.MapOn(opt.Pool, opt.Procs, len(idx), func(_, k int) cmdn.Sample {
			i := idx[k]
			return cmdn.Sample{Frame: i, X: cmdn.InputFor(arch, src.Render(i)), Y: scores[k]}
		})
	}

	proxyCfg := opt.Proxy
	w, h := src.Resolution()
	proxyCfg.FrameW, proxyCfg.FrameH = w, h
	if proxyCfg.Seed == 0 {
		proxyCfg.Seed = rng.Split("cmdn").Uint64()
	}
	if proxyCfg.Procs == 0 {
		proxyCfg.Procs = opt.Procs
	}
	proxy, _, err := cmdn.Train(mkSamples(trainIdx, trainScores), mkSamples(holdIdx, holdScores), proxyCfg, clock, opt.Cost)
	if err != nil {
		return nil, err
	}

	var diff diffdet.Result
	if opt.DisableDiff {
		rep := make([]int32, n)
		retained := make([]int, n)
		for i := range rep {
			rep[i] = int32(i)
			retained[i] = i
		}
		diff = diffdet.Result{Retained: retained, RepOf: rep}
		clock.Charge(simclock.PhasePopulateD0, float64(n)*opt.Cost.DecodeMS)
	} else {
		dopt := opt.Diff
		if dopt.Procs == 0 {
			// The detector follows the engine-wide worker bound unless its
			// own knob is set explicitly.
			dopt.Procs = opt.Procs
		}
		if dopt.Pool == nil {
			dopt.Pool = opt.Pool
		}
		diff, err = diffdet.Run(src, dopt, clock, opt.Cost, simclock.PhasePopulateD0)
		if err != nil {
			return nil, err
		}
	}

	labeled := make(map[int]float64, len(trainIdx)+len(holdIdx))
	for k, i := range trainIdx {
		labeled[i] = trainScores[k]
	}
	for k, i := range holdIdx {
		labeled[i] = holdScores[k]
	}

	return &State{
		Src:     src,
		Proxy:   proxy,
		Diff:    diff,
		Labeled: labeled,
		arch:    arch,
		clock:   clock,
		cost:    opt.Cost,
		procs:   opt.Procs,
		pool:    opt.Pool,
		Info: Info{
			TotalFrames:    n,
			TrainSamples:   len(trainIdx),
			HoldoutSamples: len(holdIdx),
			Retained:       len(diff.Retained),
			Hyper:          proxy.Hyper(),
			HoldoutNLL:     proxy.HoldoutNLL(),
		},
	}, nil
}

// MixtureOf runs proxy inference for one frame (not charged; charging
// happens where inference volume is decided).
func (s *State) MixtureOf(i int) uncertain.Mixture {
	return s.Proxy.PredictFrame(s.Src.Render(i))
}

// InferMixtures runs proxy inference for the given frames on all
// configured workers and returns the mixtures in input order, identical
// to calling MixtureOf serially. No cost is charged; charging happens
// where inference volume is decided.
func (s *State) InferMixtures(ids []int) []uncertain.Mixture {
	return workpool.MapWithOn(s.pool, s.procs, len(ids), s.Proxy.CloneForInference,
		func(p *cmdn.Proxy, k int) uncertain.Mixture {
			return p.PredictFrame(s.Src.Render(ids[k]))
		})
}

// InferRetainedMixtures runs proxy inference for every retained frame
// without an exact Phase 1 label, on all configured workers, and returns
// those frame IDs with their mixtures in retained order. No cost is
// charged; callers charge where the inference volume is decided.
func (s *State) InferRetainedMixtures() ([]int, []uncertain.Mixture) {
	ids := make([]int, 0, len(s.Diff.Retained))
	for _, f := range s.Diff.Retained {
		if _, ok := s.Labeled[f]; !ok {
			ids = append(ids, f)
		}
	}
	return ids, s.InferMixtures(ids)
}

// FrameRelation builds D0 over retained frames: labelled frames enter as
// certain tuples (§3.2), the rest get their quantized CMDN distribution.
// Tuples are computed on all configured workers and emitted in retained
// order, bit-identical to the serial scan. Proxy inference cost is
// charged per inferred frame.
func (s *State) FrameRelation(qopt uncertain.QuantizeOptions) uncertain.Relation {
	type tupleOut struct {
		dist     uncertain.Dist
		inferred bool
	}
	outs := workpool.MapWithOn(s.pool, s.procs, len(s.Diff.Retained), s.Proxy.CloneForInference,
		func(p *cmdn.Proxy, k int) tupleOut {
			i := s.Diff.Retained[k]
			if score, ok := s.Labeled[i]; ok {
				return tupleOut{dist: uncertain.Certain(ClampLevel(uncertain.LevelOf(score, qopt.Step), qopt))}
			}
			mix := p.PredictFrame(s.Src.Render(i))
			d, err := uncertain.Quantize(mix, qopt)
			if err != nil {
				// Degenerate mixture: fall back to a point mass at its mean.
				d = uncertain.Certain(ClampLevel(uncertain.LevelOf(mix.Mean(), qopt.Step), qopt))
			}
			return tupleOut{dist: d, inferred: true}
		})
	rel := make(uncertain.Relation, len(outs))
	inferred := 0
	for k, o := range outs {
		rel[k] = uncertain.XTuple{ID: s.Diff.Retained[k], Dist: o.dist}
		if o.inferred {
			inferred++
		}
	}
	s.clock.Charge(simclock.PhasePopulateD0, float64(inferred)*s.cost.ProxyMS)
	return rel
}

// WindowRelation builds the window-level D0 of §3.4 for tumbling windows
// of the given size.
func (s *State) WindowRelation(size int, qopt uncertain.QuantizeOptions) (uncertain.Relation, error) {
	return s.WindowRelationStrided(size, size, qopt)
}

// WindowRelationStrided builds the window-level D0 for windows of the
// given size starting every stride frames. Stride < size produces
// overlapping (correlated) windows; the caller must then run Phase 2 with
// the union bound.
//
// The representatives the window aggregation consults are enumerated up
// front (a cheap segment walk, no pixels touched), their mixtures are
// inferred on all configured workers, and the relation itself is then
// assembled serially from the cache — so the result, and the simulated
// inference charge, match the serial lazy-cache path exactly.
func (s *State) WindowRelationStrided(size, stride int, qopt uncertain.QuantizeOptions) (uncertain.Relation, error) {
	maxLevel := 0
	if qopt.MaxLevel > 0 && qopt.MaxLevel < int(^uint(0)>>1) {
		maxLevel = qopt.MaxLevel
	}
	wopt := windows.Options{
		Size:     size,
		Stride:   stride,
		Step:     qopt.Step,
		MaxLevel: maxLevel,
		Procs:    s.procs,
		Pool:     s.pool,
	}
	reps := windows.Reps(s.Diff, wopt)
	inferIDs := make([]int, 0, len(reps))
	mixCache := make(map[int]windows.FrameScore, len(reps))
	for _, rep := range reps {
		if score, ok := s.Labeled[rep]; ok {
			mixCache[rep] = windows.FrameScore{IsExact: true, Exact: score}
		} else {
			inferIDs = append(inferIDs, rep)
		}
	}
	for k, mix := range s.InferMixtures(inferIDs) {
		mixCache[inferIDs[k]] = windows.FrameScore{Mix: mix}
	}
	rel, err := windows.BuildRelation(func(rep int) windows.FrameScore {
		fs, ok := mixCache[rep]
		if !ok {
			// windows.Reps enumerates exactly BuildRelation's requests; a
			// miss means the two went out of sync and the window means
			// would silently be wrong.
			panic(fmt.Sprintf("phase1: representative %d missing from precomputed window cache", rep))
		}
		return fs
	}, s.Diff, wopt)
	s.clock.Charge(simclock.PhasePopulateD0, float64(len(inferIDs))*s.cost.ProxyMS)
	return rel, err
}

// ClampLevel clips a level into the quantization bounds.
func ClampLevel(lvl int, qopt uncertain.QuantizeOptions) int {
	if lvl < qopt.MinLevel {
		return qopt.MinLevel
	}
	if lvl > qopt.MaxLevel {
		return qopt.MaxLevel
	}
	return lvl
}
