package phase1

import (
	"math"
	"testing"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func testSource(t *testing.T, frames int) *video.Synthetic {
	t.Helper()
	s, err := video.NewSynthetic(video.Config{
		Name: "p1", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: 6, MeanPopulation: 3, BurstRate: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testOpts() Options {
	return Options{
		SampleFrac: 0.05,
		Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 30}}, Epochs: 20},
		Cost:       simclock.Default(),
		Seed:       2,
	}
}

func TestRunProducesState(t *testing.T) {
	src := testSource(t, 6000)
	udf := vision.CountUDF{Class: video.ClassCar}
	clock := simclock.NewClock()
	st, err := Run(src, udf, testOpts(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if st.Info.TrainSamples < 100 || st.Info.HoldoutSamples < 50 {
		t.Fatalf("sample sizes %d/%d", st.Info.TrainSamples, st.Info.HoldoutSamples)
	}
	if st.Info.Retained == 0 || st.Info.Retained > 6000 {
		t.Fatalf("retained %d", st.Info.Retained)
	}
	if len(st.Labeled) != st.Info.TrainSamples+st.Info.HoldoutSamples {
		t.Fatalf("labeled map size %d", len(st.Labeled))
	}
	// Labels are exact oracle scores.
	for f, s := range st.Labeled {
		if int(s) != src.TrueCountFast(f) {
			t.Fatalf("frame %d labelled %v, truth %d", f, s, src.TrueCountFast(f))
		}
	}
	// Labelling must be charged.
	if clock.PhaseMS(simclock.PhaseLabelSamples) <= 0 {
		t.Fatal("label phase not charged")
	}
	if clock.PhaseMS(simclock.PhaseTrainCMDN) <= 0 {
		t.Fatal("train phase not charged")
	}
}

func TestFrameRelationInvariants(t *testing.T) {
	src := testSource(t, 6000)
	udf := vision.CountUDF{Class: video.ClassCar}
	st, err := Run(src, udf, testOpts(), simclock.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	rel := st.FrameRelation(udf.Quantize())
	if len(rel) != st.Info.Retained {
		t.Fatalf("relation size %d, retained %d", len(rel), st.Info.Retained)
	}
	certain := 0
	for _, x := range rel {
		if err := x.Dist.Validate(); err != nil {
			t.Fatalf("tuple %d: %v", x.ID, err)
		}
		if x.Dist.Min < 0 {
			t.Fatalf("tuple %d has negative support %d", x.ID, x.Dist.Min)
		}
		if x.Dist.IsCertain() {
			certain++
			// Certain tuples are exactly the labelled retained frames.
			if s, ok := st.Labeled[x.ID]; ok {
				if x.Dist.Min != int(s) {
					t.Fatalf("labelled frame %d entered at level %d, truth %v", x.ID, x.Dist.Min, s)
				}
			}
		}
	}
	if certain == 0 {
		t.Fatal("no labelled frames entered the relation as certain")
	}
}

func TestWindowRelationInvariants(t *testing.T) {
	src := testSource(t, 6000)
	udf := vision.CountUDF{Class: video.ClassCar}
	st, err := Run(src, udf, testOpts(), simclock.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := st.WindowRelation(30, udf.Quantize())
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 200 {
		t.Fatalf("window relation size %d, want 200", len(rel))
	}
	for _, x := range rel {
		if err := x.Dist.Validate(); err != nil {
			t.Fatalf("window %d: %v", x.ID, err)
		}
	}
	// Window means should track true window means loosely.
	var mae float64
	for _, x := range rel {
		trueMean := 0.0
		for f := x.ID * 30; f < (x.ID+1)*30; f++ {
			trueMean += float64(src.TrueCountFast(f))
		}
		trueMean /= 30
		mae += math.Abs(x.Dist.Mean() - trueMean)
	}
	if mae/float64(len(rel)) > 2.5 {
		t.Fatalf("window relation MAE %.2f too large", mae/float64(len(rel)))
	}
}

func TestTinyVideoFallback(t *testing.T) {
	src := testSource(t, 300)
	udf := vision.CountUDF{Class: video.ClassCar}
	st, err := Run(src, udf, testOpts(), simclock.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	total := st.Info.TrainSamples + st.Info.HoldoutSamples
	if total > 150 {
		t.Fatalf("tiny video labelled %d of 300 frames", total)
	}
}

func TestTooShortVideoFails(t *testing.T) {
	src := testSource(t, 5)
	udf := vision.CountUDF{Class: video.ClassCar}
	if _, err := Run(src, udf, testOpts(), simclock.NewClock()); err == nil {
		t.Fatal("5-frame video should be rejected")
	}
}

func TestClampLevel(t *testing.T) {
	q := uncertain.QuantizeOptions{MinLevel: 0, MaxLevel: 10}
	if ClampLevel(-3, q) != 0 || ClampLevel(15, q) != 10 || ClampLevel(5, q) != 5 {
		t.Fatal("ClampLevel wrong")
	}
}

func TestDisableDiffRetainsAll(t *testing.T) {
	src := testSource(t, 1000)
	udf := vision.CountUDF{Class: video.ClassCar}
	opt := testOpts()
	opt.DisableDiff = true
	st, err := Run(src, udf, opt, simclock.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if st.Info.Retained != 1000 {
		t.Fatalf("retained %d, want all 1000", st.Info.Retained)
	}
}
