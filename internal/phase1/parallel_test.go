package phase1

import (
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
)

func relationsEqual(t *testing.T, tag string, a, b uncertain.Relation) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: relation sizes %d vs %d", tag, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("%s: tuple %d ID %d vs %d", tag, i, a[i].ID, b[i].ID)
		}
		da, db := a[i].Dist, b[i].Dist
		if da.Min != db.Min || len(da.P) != len(db.P) {
			t.Fatalf("%s: tuple %d support differs", tag, i)
		}
		for j := range da.P {
			if da.P[j] != db.P[j] {
				t.Fatalf("%s: tuple %d prob[%d] %v vs %v", tag, i, j, da.P[j], db.P[j])
			}
		}
	}
}

// TestPhase1ProcsBitIdentical runs the whole Phase 1 pipeline — sampling,
// feature extraction, grid training, D0 population (frame and window) —
// at several worker counts and requires byte-identical outputs and
// simulated charges.
func TestPhase1ProcsBitIdentical(t *testing.T) {
	src := testSource(t, 4000)
	udf := vision.CountUDF{Class: video.ClassCar}
	qopt := udf.Quantize()

	type outcome struct {
		frameRel  uncertain.Relation
		windowRel uncertain.Relation
		nll       float64
		calib     float64
		totalMS   float64
	}
	run := func(procs int) outcome {
		opt := testOpts()
		opt.Procs = procs
		clock := simclock.NewClock()
		st, err := Run(src, udf, opt, clock)
		if err != nil {
			t.Fatal(err)
		}
		frameRel := st.FrameRelation(qopt)
		windowRel, err := st.WindowRelationStrided(40, 20, qopt)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{
			frameRel:  frameRel,
			windowRel: windowRel,
			nll:       st.Proxy.HoldoutNLL(),
			calib:     st.Proxy.Calibration(),
			totalMS:   clock.TotalMS(),
		}
	}

	serial := run(1)
	for _, procs := range []int{2, 8} {
		par := run(procs)
		if par.nll != serial.nll {
			t.Fatalf("procs=%d: holdout NLL %v != serial %v", procs, par.nll, serial.nll)
		}
		if par.calib != serial.calib {
			t.Fatalf("procs=%d: calibration %v != serial %v", procs, par.calib, serial.calib)
		}
		if par.totalMS != serial.totalMS {
			t.Fatalf("procs=%d: simulated charge %v != serial %v", procs, par.totalMS, serial.totalMS)
		}
		relationsEqual(t, "frame", serial.frameRel, par.frameRel)
		relationsEqual(t, "window", serial.windowRel, par.windowRel)
	}
}

func TestInferMixturesMatchesSerial(t *testing.T) {
	src := testSource(t, 2000)
	udf := vision.CountUDF{Class: video.ClassCar}
	st, err := Run(src, udf, testOpts(), simclock.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{1, 77, 402, 1333, 1999}
	got := st.InferMixtures(ids)
	for k, id := range ids {
		want := st.MixtureOf(id)
		if len(want) != len(got[k]) {
			t.Fatalf("frame %d: mixture size %d vs %d", id, len(got[k]), len(want))
		}
		for c := range want {
			if want[c] != got[k][c] {
				t.Fatalf("frame %d component %d: %+v vs %+v", id, c, got[k][c], want[c])
			}
		}
	}
}

// TestWindowRepsMatchLazyCharge pins the precomputed inference set to the
// serial lazy-cache behavior: the simulated PopulateD0 charge equals
// ProxyMS times the number of distinct unlabeled representatives.
func TestWindowRepsMatchLazyCharge(t *testing.T) {
	src := testSource(t, 3000)
	udf := vision.CountUDF{Class: video.ClassCar}
	st, err := Run(src, udf, testOpts(), simclock.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	before := st.clock.PhaseMS(simclock.PhasePopulateD0)
	if _, err := st.WindowRelation(30, udf.Quantize()); err != nil {
		t.Fatal(err)
	}
	charged := st.clock.PhaseMS(simclock.PhasePopulateD0) - before
	unlabeled := 0
	for _, rep := range windows.Reps(st.Diff, windows.Options{Size: 30, Stride: 30}) {
		if _, ok := st.Labeled[rep]; !ok {
			unlabeled++
		}
	}
	want := float64(unlabeled) * st.cost.ProxyMS
	if charged != want {
		t.Fatalf("window inference charged %v, want %v (%d unlabeled reps)", charged, want, unlabeled)
	}
}
