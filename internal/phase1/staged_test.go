package phase1

import (
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// TestStagedMatchesRun: composing the exported stages by hand —
// PlanSamples, chunked Label calls, RunLabelled — produces a State and
// clock bit-identical to the one-shot Run. This is the invariant the
// streaming ingestor's eager labelling rests on.
func TestStagedMatchesRun(t *testing.T) {
	src := testSource(t, 6000)
	udf := vision.CountUDF{Class: video.ClassCar}
	opt := testOpts()

	batchClock := simclock.NewClock()
	batch, err := Run(src, udf, opt, batchClock)
	if err != nil {
		t.Fatal(err)
	}

	stagedClock := simclock.NewClock()
	plan, err := PlanSamples(src.NumFrames(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Label the plan in uneven chunks to mimic chunk-granular streaming.
	chunked := func(ids []int) []float64 {
		out := make([]float64, 0, len(ids))
		for lo := 0; lo < len(ids); {
			hi := lo + 1 + lo%7
			if hi > len(ids) {
				hi = len(ids)
			}
			out = append(out, Label(src, udf, ids[lo:hi], opt, stagedClock)...)
			lo = hi
		}
		return out
	}
	staged, err := RunLabelled(src, opt, plan, chunked(plan.TrainIdx), chunked(plan.HoldIdx), stagedClock)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(batch.Info, staged.Info) {
		t.Fatalf("Info diverged:\n batch  %+v\n staged %+v", batch.Info, staged.Info)
	}
	if !reflect.DeepEqual(batch.Labeled, staged.Labeled) {
		t.Fatal("labelled maps diverged")
	}
	if !reflect.DeepEqual(batch.Diff, staged.Diff) {
		t.Fatal("difference-detector results diverged")
	}
	if !reflect.DeepEqual(batchClock.Breakdown(), stagedClock.Breakdown()) {
		t.Fatalf("charges diverged:\n batch  %v\n staged %v", batchClock.Breakdown(), stagedClock.Breakdown())
	}
	// Proxies must predict identically, not just score identically.
	for _, f := range []int{0, 17, 2999, 5999} {
		a := batch.MixtureOf(f)
		b := staged.MixtureOf(f)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("proxy mixtures diverged at frame %d", f)
		}
	}
}
