package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/labelstore"
)

// TestSchedulerWithdrawAllDuringWaitReleasesLeadership is the
// deterministic (clock-injected) form of the withdraw-resurrection
// repro: the leader holds a group open for a CoalesceWait budget, every
// queued submission withdraws during the wait, and the leader must
// observe the empty queue when it re-locks — never slicing the
// withdrawn submission back out of the backing array — and release
// leadership so the next submitter can lead.
func TestSchedulerWithdrawAllDuringWaitReleasesLeadership(t *testing.T) {
	var snapshots, admits atomic.Int32
	aInGroup := make(chan struct{})
	aRelease := make(chan struct{})
	s := NewScheduler(
		func() *labelstore.Overlay {
			snapshots.Add(1)
			return labelstore.NewOverlay(labelstore.Map{})
		},
		func(map[int]float64) {},
		func(int) func() {
			if admits.Add(1) == 1 {
				close(aInGroup)
				<-aRelease
			}
			return func() {}
		},
	)

	ctx, cancel := context.WithCancel(context.Background())
	waited := make(chan struct{})
	s.SetWaitClockForTest(func(time.Duration) {
		// The wait clock runs on the leader goroutine with the queue
		// unlocked: cancel the sole queued submission and hold the wait
		// open until its withdrawal has emptied the queue.
		cancel()
		for s.QueuedForTest() != 0 {
			time.Sleep(time.Millisecond)
		}
		close(waited)
	})

	// A: leader, no ctx, no budget; blocks inside runGroup via the admit
	// hook so B is provably queued before A's group finishes.
	aErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(Plan{K: 1, Threshold: 0.9}.Normalize(), Binding{})
		aErr <- err
	}()
	<-aInGroup

	// B: follower with a coalesce wait and a cancellable ctx.
	bErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(Plan{K: 1, Threshold: 0.9, CoalesceWait: time.Millisecond}.Normalize(), Binding{Ctx: ctx})
		bErr <- err
	}()
	waitFor(t, func() bool { return s.QueuedForTest() == 1 })

	close(aRelease)
	<-aErr
	if err := <-bErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("withdrawn submission returned %v, want context.Canceled", err)
	}
	<-waited

	// The leader saw an empty queue after the wait and released
	// leadership: a fresh submission must find a working scheduler. (A
	// leader wedged with busy set would queue C forever and trip the
	// test timeout.)
	if _, err := s.Submit(Plan{K: 1, Threshold: 0.9}.Normalize(), Binding{}); err == nil {
		t.Fatal("empty-binding submission unexpectedly succeeded; fixture drift")
	}

	// Exactly two groups ran — A's and C's. The withdrawn B was never
	// admitted, never snapshotted, never executed.
	if n := admits.Load(); n != 2 {
		t.Fatalf("admit called %d times, want 2 — the withdrawn submission was executed", n)
	}
	if n := snapshots.Load(); n != 2 {
		t.Fatalf("snapshot called %d times, want 2 — a group formed from an empty queue", n)
	}
}

// TestSchedulerPartialWithdrawDuringWaitShrinksGroup pins the group
// recomputation contract: when only part of a compatible prefix
// withdraws mid-wait, the group shrinks to the survivors, they still
// coalesce into ONE run, and each survivor's outcome — results AND
// simulated charges — is bit-identical to serial submission order with
// the withdrawn member absent.
func TestSchedulerPartialWithdrawDuringWaitShrinksGroup(t *testing.T) {
	art, src, udf := fixture(t)
	mkPlan := func(k int) Plan {
		p := testPlan(k)
		p.CoalesceWait = 50 * time.Millisecond
		plan, err := NewPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}

	// Serial reference for the surviving order: A then C, each over the
	// label state its predecessor published — as if B were never
	// submitted.
	serialCache := labelstore.NewSharedCache()
	serial := make([]*Outcome, 2)
	for i, p := range []Plan{mkPlan(10), mkPlan(3)} {
		snap, _ := serialCache.Snapshot()
		overlay := labelstore.NewOverlay(snap)
		b := bind
		b.Labels = overlay
		out, err := Execute(p, b)
		if err != nil {
			t.Fatal(err)
		}
		serialCache.Publish(overlay.Fresh())
		serial[i] = out
	}

	cache := labelstore.NewSharedCache()
	sched, groups := countingSchedulerOver(cache)
	// Hold the leader open in the injected wait so the test controls
	// exactly what is queued — and what has withdrawn — at commit time.
	release := make(chan struct{})
	sched.SetWaitClockForTest(func(time.Duration) { <-release })

	var wg sync.WaitGroup
	var aOut, cOut *Outcome
	var aErr, cErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		aOut, aErr = sched.Submit(mkPlan(10), bind)
	}()
	waitFor(t, func() bool { return sched.QueuedForTest() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	var bOut *Outcome
	var bErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		b := bind
		b.Ctx = ctx
		bOut, bErr = sched.Submit(mkPlan(5), b)
	}()
	waitFor(t, func() bool { return sched.QueuedForTest() == 2 })

	wg.Add(1)
	go func() {
		defer wg.Done()
		cOut, cErr = sched.Submit(mkPlan(3), bind)
	}()
	waitFor(t, func() bool { return sched.QueuedForTest() == 3 })

	// B — the middle of the compatible prefix — withdraws mid-wait; the
	// queue shrinks around it and the group commits as [A, C].
	cancel()
	waitFor(t, func() bool { return sched.QueuedForTest() == 2 })
	close(release)
	wg.Wait()

	if !errors.Is(bErr, context.Canceled) || bOut != nil {
		t.Fatalf("withdrawn member returned (%v, %v), want (nil, context.Canceled)", bOut, bErr)
	}
	if aErr != nil || cErr != nil {
		t.Fatalf("survivors errored: A=%v C=%v", aErr, cErr)
	}
	if g := groups.Load(); g != 1 {
		t.Fatalf("survivors split into %d groups, want 1 — they must still coalesce", g)
	}
	if !reflect.DeepEqual(keyOf(aOut), keyOf(serial[0])) {
		t.Fatalf("survivor A diverged from serial order without B:\n%+v\nvs\n%+v",
			keyOf(aOut), keyOf(serial[0]))
	}
	if !reflect.DeepEqual(keyOf(cOut), keyOf(serial[1])) {
		t.Fatalf("survivor C diverged from serial order without B:\n%+v\nvs\n%+v",
			keyOf(cOut), keyOf(serial[1]))
	}
}
