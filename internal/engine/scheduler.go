package engine

import (
	"fmt"
	"sync"
	"time"

	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/workpool"
)

// Scheduler coalesces compatible plans submitted by different callers
// into one engine run, so N overlapping queries pay the oracle roughly
// once: the group shares a single label overlay (a frame one plan's
// cleaning confirmed is already certain in every later plan's D0, and is
// charged once), a single resident worker pool, and one merged
// oracle-selection pass in submission order.
//
// Scheduling is group-commit by default: the first submitter becomes
// the leader and executes whatever is queued; submissions arriving
// while a run is in flight queue up and are coalesced into the next
// run, so coalescing width adapts to load with no added latency when
// idle. Plans may additionally grant a latency budget
// (Plan.CoalesceWait): before committing a group, the leader holds it
// open for the longest wait any queued compatible plan requests, so
// near-simultaneous arrivals land in one run even when they would have
// missed the first submitter's commit. The wait clock is injectable
// (SetWaitClockForTest) so tests make the grouping itself
// deterministic.
//
// Determinism contract (locked by the coalesced golden test): a group's
// outcomes are bit-identical to executing the same plans serially in
// submission order, each over the label state left by its predecessors —
// i.e. coalescing changes who waits and who pays, never what anyone
// gets. Which plans end up in one group depends on arrival timing (like
// the snapshot a free-running Session.Query pins); SubmitGroup submits a
// pre-formed group atomically when the caller needs the grouping itself
// to be deterministic.
//
// One Scheduler serves one (video, frame count, UDF) identity — the
// sessions of one label cache. Incompatible neighbours in the queue
// (see Compatible) split the run: each maximal compatible prefix
// executes as its own group, still in submission order.
type Scheduler struct {
	// snapshot opens the group's shared overlay over the current label
	// cache state; publish folds the overlay's fresh labels back when
	// the group finishes; admit gates the group as one oracle-heavy unit
	// (the strictest positive AdmissionLimit of its members).
	snapshot func() *labelstore.Overlay
	publish  func(fresh map[int]float64)
	admit    func(limit int) (release func())

	// wait sleeps the leader for a group's latency budget; time.Sleep
	// in production, injectable for deterministic grouping in tests.
	wait func(time.Duration)

	mu    sync.Mutex
	busy  bool
	queue []*submission
	// inflight counts submissions accepted and not yet delivered (queued
	// or executing) — the observed-arrivals signal the EQL set planner
	// reads to size its concurrency budget.
	inflight int
}

// InFlight reports how many submissions are currently queued or
// executing. It is the scheduler's observed-load signal: the EQL
// planner's ChooseSet derives its concurrency budget from this instead
// of a caller-supplied hint.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// NewScheduler wires a scheduler to one label cache. snapshot and
// publish must not be nil; admit may be nil when the cache has no
// admission gate.
func NewScheduler(snapshot func() *labelstore.Overlay, publish func(fresh map[int]float64), admit func(limit int) (release func())) *Scheduler {
	if admit == nil {
		admit = func(int) func() { return func() {} }
	}
	return &Scheduler{snapshot: snapshot, publish: publish, admit: admit, wait: time.Sleep}
}

// NewCacheScheduler wires a scheduler to a shared label cache the
// standard way: groups snapshot one overlay from the cache, publish
// once when they finish, and count as one unit against the cache's
// admission gate. Shared sessions and streaming followers both attach
// their scheduler with this wiring.
func NewCacheScheduler(cache *labelstore.SharedCache) *Scheduler {
	return NewScheduler(
		func() *labelstore.Overlay {
			snap, _ := cache.Snapshot()
			return labelstore.NewOverlay(snap)
		},
		func(fresh map[int]float64) { cache.Publish(fresh) },
		cache.Admit,
	)
}

// SetWaitClockForTest replaces the leader's wait clock (nil restores
// time.Sleep) — the labelstore.SetClockForTest pattern. Tests inject a
// clock that blocks until the submissions they launched are queued, so
// group membership stops depending on goroutine scheduling. Tests
// only; call before any submission is in flight.
func (s *Scheduler) SetWaitClockForTest(wait func(time.Duration)) {
	if wait == nil {
		wait = time.Sleep
	}
	s.mu.Lock()
	s.wait = wait
	s.mu.Unlock()
}

// QueuedForTest reports how many submissions are queued and not yet
// taken into a group — what an injected wait clock polls to decide the
// group is complete. Tests only.
func (s *Scheduler) QueuedForTest() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// submission is one queued plan with its delivery channel.
type submission struct {
	plan Plan
	bind Binding
	out  *Outcome
	err  error
	done chan struct{}
}

func (s *submission) deliver() {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// Submit queues one plan and blocks until its coalesced run completes.
// The binding's Labels, Clock and Pool must be nil: the scheduler
// supplies the group's shared overlay and pool, and every plan gets its
// own fresh clock (per-plan charges stay separable).
//
// A non-nil Binding.Ctx bounds the wait: a submission cancelled while
// still queued withdraws — it leaves the queue without joining any
// group, so siblings coalesce exactly as if it were never submitted —
// and Submit returns ctx.Err(). Once a leader has taken the submission
// into a group, Submit waits for the group (the engine run itself
// observes the cancellation and returns ctx.Err() without poisoning
// the group's other members).
func (s *Scheduler) Submit(p Plan, b Binding) (*Outcome, error) {
	ctx := b.Ctx
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	sub := &submission{plan: p, bind: b, done: make(chan struct{})}
	s.enqueue([]*submission{sub})
	if ctx != nil {
		select {
		case <-sub.done:
		case <-ctx.Done():
			if s.withdraw(sub) {
				return nil, ctx.Err()
			}
			// A leader already took the submission into a group; its run
			// delivers (Execute returns ctx.Err() for a cancelled member).
			<-sub.done
		}
	} else {
		<-sub.done
	}
	return sub.out, sub.err
}

// withdraw removes a still-queued submission (cancelled by its
// submitter) from the queue. It reports false when a leader already
// took the submission into a group.
func (s *Scheduler) withdraw(sub *submission) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.queue {
		if q == sub {
			// Shift left and nil the vacated trailing slot: the backing
			// array must not keep a dead *submission alive (the aliasing
			// the resurrection bug exploited) nor pin its bindings for GC.
			copy(s.queue[i:], s.queue[i+1:])
			last := len(s.queue) - 1
			s.queue[last] = nil
			s.queue = s.queue[:last]
			s.inflight--
			return true
		}
	}
	return false
}

// SubmitGroup queues plans as one atomic block — no foreign submission
// interleaves them — and blocks until all complete. Outcomes and errors
// are in input order; the first non-nil error is returned alongside the
// outcomes.
func (s *Scheduler) SubmitGroup(ps []Plan, bs []Binding) ([]*Outcome, error) {
	if len(ps) != len(bs) {
		return nil, fmt.Errorf("everest: scheduler group has %d plans but %d bindings", len(ps), len(bs))
	}
	if len(ps) == 0 {
		return nil, nil
	}
	subs := make([]*submission, len(ps))
	for i := range ps {
		subs[i] = &submission{plan: ps[i], bind: bs[i], done: make(chan struct{})}
	}
	s.enqueue(subs)
	outs := make([]*Outcome, len(subs))
	var firstErr error
	for i, sub := range subs {
		<-sub.done
		outs[i] = sub.out
		if sub.err != nil && firstErr == nil {
			firstErr = sub.err
			// A group of one is a lone query: surface its error verbatim
			// so the Coalesce flag never changes an error message.
			if len(subs) > 1 {
				firstErr = fmt.Errorf("everest: coalesced query %d: %w", i, sub.err)
			}
		}
	}
	return outs, firstErr
}

// enqueue appends subs to the queue and, if no leader is running, makes
// the calling goroutine the leader. Followers return immediately and
// wait on their done channels.
func (s *Scheduler) enqueue(subs []*submission) []*submission {
	s.mu.Lock()
	s.queue = append(s.queue, subs...)
	s.inflight += len(subs)
	if s.busy {
		s.mu.Unlock()
		return subs
	}
	s.busy = true
	s.mu.Unlock()
	s.lead(subs)
	return subs
}

// lead drains the queue: each iteration takes the longest compatible
// prefix as one group and executes it. New submissions keep queueing
// while a group runs and are picked up by the next iteration.
//
// Latency-bounded close: when any plan of the compatible prefix grants
// a CoalesceWait budget, the leader sleeps the largest such budget
// before committing, so compatible arrivals during the wait join the
// group (the prefix is re-computed after the wait). One wait per
// group: arrivals cannot extend a wait already under way, which keeps
// every plan's added latency bounded by the largest budget in its
// group. Waiting changes group membership only — results are
// bit-identical to serial submission order regardless of grouping.
//
// A submitter-leader (mine non-nil) leads only until its own
// submissions are served: once they are, any remaining work is handed
// to a detached leader goroutine (mine nil, which drains to empty), so
// under sustained coalesced traffic a caller's latency is bounded by
// its own group plus whatever was already queued ahead of it — it
// never ends up serving other callers' queries indefinitely.
//
// The leadership release is atomic with the empty-queue check — busy
// is cleared under the same lock hold that observed the queue empty,
// so a submitter can never enqueue behind a leader that has already
// decided to stop. (runGroup recovers every panic, so lead cannot
// unwind with busy still set.)
func (s *Scheduler) lead(mine []*submission) {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.busy = false
			s.mu.Unlock()
			return
		}
		if len(mine) > 0 && allDelivered(mine) {
			s.mu.Unlock()
			go s.lead(nil)
			return
		}
		if w := maxCoalesceWait(s.queue); w > 0 {
			wait := s.wait
			s.mu.Unlock()
			wait(w)
			s.mu.Lock()
			// Every queued submission may have withdrawn during the wait.
			// The queue's slice header is then empty, but its backing array
			// still holds the dead *submission — and s.queue[:1:1] on a
			// zero-length slice with spare capacity would legally slice the
			// withdrawn submission back into a group after its Submit
			// already returned ctx.Err(). Re-check emptiness and recompute
			// the prefix from scratch; the loop top releases leadership
			// atomically with its own empty-queue check.
			if len(s.queue) == 0 {
				s.mu.Unlock()
				continue
			}
		}
		n := 1
		for n < len(s.queue) && Compatible(s.queue[0].plan, s.queue[n].plan) {
			n++
		}
		group := s.queue[:n:n]
		s.queue = append([]*submission(nil), s.queue[n:]...)
		s.mu.Unlock()
		s.runGroup(group)
	}
}

// maxCoalesceWait returns the largest latency budget among the queue's
// leading compatible run — the plans that would form the next group.
// Incompatible neighbours further back never stretch a group they
// cannot join. Caller holds s.mu.
func maxCoalesceWait(queue []*submission) time.Duration {
	var w time.Duration
	for i, sub := range queue {
		if i > 0 && !Compatible(queue[0].plan, sub.plan) {
			break
		}
		if sub.plan.CoalesceWait > w {
			w = sub.plan.CoalesceWait
		}
	}
	return w
}

// allDelivered reports whether every submission has been delivered.
func allDelivered(subs []*submission) bool {
	for _, sub := range subs {
		select {
		case <-sub.done:
		default:
			return false
		}
	}
	return true
}

// runGroup executes one compatible group: admit as one unit, open the
// shared overlay, execute plans in submission order over it, publish
// once. The deferred block publishes before delivering — even on panic
// — so completed members' paid-for labels always reach the cache and a
// submitter that immediately queries again snapshots its own labels;
// a panic becomes the unserved members' error rather than deadlocking
// followers.
func (s *Scheduler) runGroup(group []*submission) {
	var overlay *labelstore.Overlay
	defer func() {
		r := recover()
		if r != nil {
			for _, sub := range group {
				if sub.out == nil && sub.err == nil {
					sub.err = fmt.Errorf("everest: coalesced engine run panicked: %v", r)
				}
			}
		}
		// The overlay holds confirmed oracle labels only — a member that
		// failed mid-cleaning contributed just the labels its successful
		// dispatches paid for, and degraded estimates never enter an
		// overlay — so publishing after a partial failure is always safe.
		// A nil overlay (snapshot itself failed) publishes nothing.
		s.publish(overlay.Fresh())
		s.mu.Lock()
		s.inflight -= len(group)
		s.mu.Unlock()
		for _, sub := range group {
			sub.deliver()
		}
	}()

	limit := 0
	for _, sub := range group {
		if l := sub.plan.AdmissionLimit; l > 0 && (limit == 0 || l < limit) {
			limit = l
		}
	}
	release := s.admit(limit)
	defer release()

	overlay = s.snapshot()
	procs := 1
	for _, sub := range group {
		if p := workpool.Procs(sub.plan.Procs); p > procs {
			procs = p
		}
	}
	var pool *workpool.Pool
	if procs > 1 {
		pool = workpool.NewPool(procs)
		defer pool.Close()
	}
	for _, sub := range group {
		b := sub.bind
		b.Labels = overlay
		b.Clock = nil
		// The group pool is sized for the widest member; a plan that
		// requested serial execution (effective Procs 1) runs serially —
		// exactly as it would alone — rather than inheriting its
		// neighbours' workers. (Results are worker-count-independent
		// either way; this keeps each member's execution mode the one
		// its plan asked for.)
		b.Pool = nil
		if workpool.Procs(sub.plan.Procs) > 1 {
			b.Pool = pool
		}
		sub.out, sub.err = Execute(sub.plan, b)
	}
}
