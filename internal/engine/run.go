package engine

import (
	"context"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Run is the one-shot entrypoint: Ingest then Execute, sharing one
// clock (so the outcome carries the full Phase 1 + Phase 2 cost
// breakdown) and one resident worker pool across both stages. The
// returned artifact is the ingest product; callers that want to reuse
// it for further plans may keep it. A non-nil ctx bounds the Phase 2
// loop (cancellation returns ctx.Err()); Phase 1 ingestion runs to
// completion — it is the reusable artifact, not per-query work.
func Run(ctx context.Context, src video.Source, udf vision.UDF, p Plan) (*Artifact, *Outcome, error) {
	clock := simclock.NewClock()
	// One resident worker pool serves the whole query: Phase 1 fan-outs,
	// window aggregation and Phase 2's speculative selection blocks all
	// reuse the same goroutines.
	pool := p.WorkerPool()
	if pool != nil {
		defer pool.Close()
	}
	opt := p.Ingest
	opt.Pool = pool
	art, err := Ingest(src, udf, opt, clock)
	if err != nil {
		return nil, nil, err
	}
	out, err := Execute(p, Binding{
		Src:      src,
		UDF:      udf,
		Artifact: art,
		Clock:    clock,
		Pool:     pool,
		Ctx:      ctx,
	})
	if err != nil {
		return nil, nil, err
	}
	return art, out, nil
}
