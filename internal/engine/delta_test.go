package engine

import (
	"reflect"
	"testing"
)

func TestDiffOutcome(t *testing.T) {
	out := func(ids ...int) *Outcome { return &Outcome{IDs: ids} }
	cases := []struct {
		name       string
		prev, next *Outcome
		want       AnswerDelta
	}{
		{"first answer", nil, out(5, 3, 9), AnswerDelta{Entered: []int{5, 3, 9}}},
		{"identical", out(5, 3, 9), out(5, 3, 9), AnswerDelta{}},
		{"replacement", out(5, 3, 9), out(5, 7, 3),
			AnswerDelta{Entered: []int{7}, Left: []int{9}, Reordered: []int{3}}},
		{"pure swap", out(5, 3), out(3, 5),
			AnswerDelta{Reordered: []int{3, 5}}},
		{"shrink", out(5, 3, 9), out(5), AnswerDelta{Left: []int{3, 9}}},
	}
	for _, c := range cases {
		got := DiffOutcome(c.prev, c.next)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
		if got.Empty() != (len(c.want.Entered)+len(c.want.Left)+len(c.want.Reordered) == 0) {
			t.Errorf("%s: Empty() inconsistent", c.name)
		}
	}
}
