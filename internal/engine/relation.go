package engine

import (
	"fmt"

	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/workpool"
)

// FrameRelation builds the frame-level D0 from the artifact's captured
// mixtures. labels, when non-nil, supplies exact scores confirmed by
// earlier queries over the same cache (session overlay, or the running
// overlay of a coalesced group); those frames enter D0 certain. A nil
// overlay is the uncached path: every uncertain frame keeps its mixture.
func (a *Artifact) FrameRelation(qopt uncertain.QuantizeOptions, labels *labelstore.Overlay) (uncertain.Relation, error) {
	rel := make(uncertain.Relation, 0, len(a.Retained))
	for _, f := range a.Retained {
		if s, ok := a.Exact[f]; ok {
			lvl := phase1.ClampLevel(uncertain.LevelOf(s, qopt.Step), qopt)
			rel = append(rel, uncertain.XTuple{ID: int(f), Dist: uncertain.Certain(lvl)})
			continue
		}
		if s, ok := labels.Get(int(f)); ok {
			lvl := phase1.ClampLevel(uncertain.LevelOf(s, qopt.Step), qopt)
			rel = append(rel, uncertain.XTuple{ID: int(f), Dist: uncertain.Certain(lvl)})
			continue
		}
		mix, ok := a.Mixtures[f]
		if !ok {
			return nil, fmt.Errorf("everest: index missing mixture for frame %d", f)
		}
		d, err := uncertain.Quantize(mix, qopt)
		if err != nil {
			d = uncertain.Certain(phase1.ClampLevel(uncertain.LevelOf(mix.Mean(), qopt.Step), qopt))
		}
		rel = append(rel, uncertain.XTuple{ID: int(f), Dist: d})
	}
	return rel, nil
}

// WindowRelation builds the window-level D0 (Eq. 9) from the captured
// mixtures and segment structure. labels, when non-nil, supplies exact
// scores confirmed by earlier queries over the same cache; it must not
// be mutated while this runs (the score lookup fans out over the
// query's workers).
func (a *Artifact) WindowRelation(w WindowSpec, qopt uncertain.QuantizeOptions, labels *labelstore.Overlay, procs int, pool *workpool.Pool) (uncertain.Relation, error) {
	diff := diffdet.Result{RepOf: a.RepOf}
	maxLevel := 0
	if qopt.MaxLevel > 0 && qopt.MaxLevel < int(^uint(0)>>1) {
		maxLevel = qopt.MaxLevel
	}
	return windows.BuildRelation(func(rep int) windows.FrameScore {
		if s, ok := a.Exact[int32(rep)]; ok {
			return windows.FrameScore{IsExact: true, Exact: s}
		}
		if s, ok := labels.Get(rep); ok {
			return windows.FrameScore{IsExact: true, Exact: s}
		}
		return windows.FrameScore{Mix: a.Mixtures[int32(rep)]}
	}, diff, windows.Options{Size: w.Size, Stride: w.Stride, Step: qopt.Step, MaxLevel: maxLevel, Procs: procs, Pool: pool})
}
