// Package engine owns the unified Everest query pipeline. Every public
// entrypoint — everest.Run, Index.Query, Index.Extend, Session.Query and
// its batch/coalesced variants — compiles the user-facing Config down to
// an explicit Plan and submits it here, so the pipeline exists exactly
// once and each stage is individually testable:
//
//	Plan          a validated, normalized query description (result size,
//	              guarantee, window spec, bound kind, ingest options)
//	Ingest        Phase 1 — sample, label, train the CMDN, run the
//	              difference detector — captured as an Artifact that any
//	              number of later plans execute against
//	RelationBuild the uncertain relation D0 (frame- or window-level) over
//	              the Artifact plus a labelstore.Overlay of already-known
//	              exact scores
//	TopKLoop      Phase 2 — oracle-in-the-loop uncertain Top-K cleaning
//	              (internal/core) fed by an overlay-aware frame oracle
//
// On top of the single pipeline, Scheduler coalesces compatible plans
// from different callers into one engine run (see scheduler.go).
//
// Determinism: an Outcome is a pure function of (Plan, Artifact, overlay
// snapshot). Procs and Pool trade wall-clock only; simulated charges and
// results are bit-identical for every worker count, the property the
// golden suite locks.
package engine

import (
	"fmt"
	"time"

	"github.com/everest-project/everest/internal/core"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/workpool"
)

// DefaultRetryBackoffMS is the initial simulated retry backoff used
// when a plan enables retries (Retries > 0) without choosing a base.
const DefaultRetryBackoffMS = 100

// retryBackoffCap bounds the exponential backoff at this multiple of
// the base, so a long outage's simulated waits stay proportionate.
const retryBackoffCap = 32

// WindowSpec describes the window shape of a plan. The zero value is a
// frame query.
type WindowSpec struct {
	// Size is the window length in frames; zero means a frame query.
	Size int
	// Stride is the offset between window starts. Normalize sets it to
	// Size (tumbling) when the plan is windowed and the stride is unset.
	Stride int
	// SampleFrac is the fraction of a window's frames the oracle scores
	// when confirming it.
	SampleFrac float64
}

// Enabled reports whether the plan is a window query.
func (w WindowSpec) Enabled() bool { return w.Size > 0 }

// Overlapping reports whether consecutive windows share frames, which
// correlates their scores and forces the union bound.
func (w WindowSpec) Overlapping() bool { return w.Enabled() && w.Stride < w.Size }

// Plan is one validated, normalized Top-K query: everything the engine
// needs to execute, with defaults resolved and the bound kind fixed.
// Plans are plain values; two plans over the same artifact can execute
// concurrently or be coalesced by a Scheduler.
type Plan struct {
	// K is the result size.
	K int
	// Threshold is the probabilistic guarantee thres ∈ (0,1].
	Threshold float64
	// Window is the window spec; zero Size means a frame query.
	Window WindowSpec
	// BatchSize is the Phase 2 cleaning batch b.
	BatchSize int
	// MaxCleaned caps Phase 2 oracle invocations (0 = none).
	MaxCleaned int
	// DisableEarlyStop, ResortOnce and DisablePrefetch are the §4.3
	// ablation knobs, forwarded to the Phase 2 loop.
	DisableEarlyStop bool
	ResortOnce       bool
	DisablePrefetch  bool
	// ForceUnionBound requests the Bonferroni bound even for independent
	// tuples (ablation A7). Overlapping windows use it regardless.
	ForceUnionBound bool
	// Procs bounds the real CPU workers; ≤ 0 means GOMAXPROCS. Never
	// affects results.
	Procs int
	// Seed drives window-confirmation sampling (and, through Ingest, all
	// Phase 1 randomness).
	Seed uint64
	// Cost is the simulated cost model.
	Cost simclock.CostModel
	// AdmissionLimit caps concurrent oracle-heavy units on one label
	// cache; scheduling only, never results. A coalesced group applies
	// the strictest positive limit of its members.
	AdmissionLimit int
	// CoalesceWait is the latency budget this plan grants a coalescing
	// scheduler: a group leader may hold the group open up to the
	// longest wait requested by its queued plans, letting compatible
	// arrivals join instead of committing on first-submitter timing.
	// Zero (the default) commits immediately — pure group-commit.
	// Scheduling only, never results; Normalize clamps negatives to 0.
	CoalesceWait time.Duration
	// UseMux routes this plan's Phase 2 confirmation batches through
	// the process-wide oracle multiplexer (internal/oraclemux), which
	// consolidates in-flight batches from all runs into device batches.
	// Device-side accounting only: results and this plan's simulated
	// charges are bit-identical to direct dispatch. Binding.Dispatch,
	// when set, takes precedence (tests inject private muxes there).
	UseMux bool
	// DeadlineMS bounds the query's simulated cost: once the plan's
	// clock reaches this many simulated milliseconds mid-run, the Top-K
	// loop stops — with an explicitly marked degraded answer when
	// DegradedOK, with core.ErrDeadline otherwise. Charged on the §3.5
	// simclock, so a run that never hits its deadline is bit-identical
	// (results AND charges) to an unbounded one. 0 means no deadline;
	// Normalize clamps negatives to 0.
	DeadlineMS float64
	// Retries caps how many times a transient oracle dispatch failure
	// is retried (per failing dispatch) before the error propagates.
	// 0 means no retries; Normalize clamps negatives to 0.
	Retries int
	// RetryBackoffMS is the initial retry backoff, doubling per attempt
	// and capped at 32× the base. The waits are simulated — charged to
	// simclock.PhaseRetryBackoff, never slept — so retry behavior is
	// deterministic. 0 with Retries > 0 uses DefaultRetryBackoffMS.
	RetryBackoffMS float64
	// DegradedOK lets a run whose deadline expired, or whose oracle
	// stayed down past the retry budget, return proxy-only results
	// carrying an explicit Degraded marker instead of an error. The
	// unconfirmed estimates never enter the label overlay, so degraded
	// answers cannot pollute a shared cache.
	DegradedOK bool
	// Ingest parameterizes the Phase 1 stage for entrypoints that run it
	// (Run, BuildIndex, Extend); plans executed against an existing
	// Artifact ignore it.
	Ingest phase1.Options
}

// Normalize resolves derived fields: a windowed plan with an unset
// (zero or negative) stride becomes tumbling, a frame plan's negative
// "unset" stride is cleared so equal plans compare equal, and a
// negative coalesce wait (meaning "no budget") becomes zero.
// Idempotent.
func (p Plan) Normalize() Plan {
	if p.Window.Enabled() {
		if p.Window.Stride <= 0 {
			p.Window.Stride = p.Window.Size
		}
	} else if p.Window.Stride < 0 {
		p.Window.Stride = 0
	}
	if p.CoalesceWait < 0 {
		p.CoalesceWait = 0
	}
	if p.DeadlineMS < 0 {
		p.DeadlineMS = 0
	}
	if p.Retries < 0 {
		p.Retries = 0
	}
	if p.RetryBackoffMS < 0 {
		p.RetryBackoffMS = 0
	}
	return p
}

// Bound selects the Phase 2 confidence computation: the paper's exact
// independent product unless the tuples are correlated (overlapping
// windows) or the caller forces the conservative bound.
func (p Plan) Bound() core.BoundKind {
	if p.ForceUnionBound || p.Window.Overlapping() {
		return core.BoundUnion
	}
	return core.BoundIndependent
}

// Validate checks the source-independent plan shape. Error messages keep
// the public "everest:" prefix — they surface verbatim through the
// adapters.
func (p Plan) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("everest: K must be positive, got %d", p.K)
	}
	if p.Threshold <= 0 || p.Threshold > 1 {
		return fmt.Errorf("everest: threshold must be in (0,1], got %v", p.Threshold)
	}
	if p.Window.Size < 0 {
		return fmt.Errorf("everest: negative window %d", p.Window.Size)
	}
	if !p.Window.Enabled() && p.Window.Stride > 0 {
		return fmt.Errorf("everest: stride %d given without a window", p.Window.Stride)
	}
	return nil
}

// ValidateFor checks the plan against a video of n frames.
func (p Plan) ValidateFor(n int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("everest: empty video")
	}
	if p.Window.Enabled() {
		if nw := windows.NumSlidingWindows(n, p.Window.Size, p.Window.Stride); nw < p.K {
			return fmt.Errorf("everest: only %d windows of %d frames (stride %d) but K=%d",
				nw, p.Window.Size, p.Window.Stride, p.K)
		}
	}
	return nil
}

// NewPlan normalizes and validates a plan in one step.
func NewPlan(p Plan) (Plan, error) {
	p = p.Normalize()
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Compatible reports whether two plans may be coalesced into one engine
// run. Any two valid plans over the same (video, frame count, UDF)
// identity — the identity a Scheduler is keyed by — are compatible:
// K, threshold, window shape, seeds and ablation knobs may all differ,
// because each plan keeps its own Phase 2 loop and clock inside the
// coalesced run and shares only the exact frame scores, which are
// query-independent. The one thing that must match is the simulated
// cost model: a shared oracle confirmation is charged at the cost of
// the plan that triggered it, so mixing cost models inside one group
// would make a plan's bill depend on its co-runners' configuration.
func Compatible(a, b Plan) bool {
	return a.Cost == b.Cost
}

// Knob is one engine setting rendered for plan introspection (EXPLAIN
// and the planner's reports).
type Knob struct {
	Name, Value string
}

// Knobs renders the plan's engine settings in a fixed, deterministic
// order. Knobs that are off and default-zero (admission limit,
// deadline, retries) are omitted so reports stay readable.
func (p Plan) Knobs() []Knob {
	ks := []Knob{
		{"k", fmt.Sprintf("%d", p.K)},
		{"threshold", fmt.Sprintf("%g", p.Threshold)},
	}
	if p.Window.Enabled() {
		ks = append(ks,
			Knob{"window-size", fmt.Sprintf("%d", p.Window.Size)},
			Knob{"window-stride", fmt.Sprintf("%d", p.Window.Stride)},
			Knob{"window-sample-frac", fmt.Sprintf("%g", p.Window.SampleFrac)},
		)
	}
	ks = append(ks, Knob{"batch-size", fmt.Sprintf("%d", p.BatchSize)})
	procs := "auto"
	if p.Procs > 0 {
		procs = fmt.Sprintf("%d", p.Procs)
	}
	ks = append(ks,
		Knob{"procs", procs},
		Knob{"coalesce-wait", p.CoalesceWait.String()},
		Knob{"use-mux", fmt.Sprintf("%t", p.UseMux)},
	)
	if p.Ingest.DisableDiff {
		ks = append(ks, Knob{"proxy-cascade", "decode→proxy"})
	} else {
		ks = append(ks, Knob{"proxy-cascade", "decode→diff→proxy"})
	}
	if p.AdmissionLimit > 0 {
		ks = append(ks, Knob{"admission-limit", fmt.Sprintf("%d", p.AdmissionLimit)})
	}
	if p.DeadlineMS > 0 {
		ks = append(ks, Knob{"deadline-ms", fmt.Sprintf("%g", p.DeadlineMS)})
	}
	if p.Retries > 0 {
		ks = append(ks, Knob{"retries", fmt.Sprintf("%d", p.Retries)})
	}
	ks = append(ks, Knob{"seed", fmt.Sprintf("%d", p.Seed)})
	return ks
}

// WorkerPool returns a resident worker pool for one plan execution or
// ingestion run (nil when the effective worker count is 1, where
// transient serial paths are exact already). The caller owns it: pass
// it down via the Pool options and Close it when the operation
// finishes.
func (p Plan) WorkerPool() *workpool.Pool {
	if workpool.Procs(p.Procs) == 1 {
		return nil
	}
	return workpool.NewPool(p.Procs)
}
