package engine

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/labelstore"
)

// Repro: a follower that withdraws during the leader's coalesce wait
// can be resurrected from the queue's backing array and executed anyway.
func TestWithdrawDuringCoalesceWaitRepro(t *testing.T) {
	var admits atomic.Int32
	aInGroup := make(chan struct{})
	aRelease := make(chan struct{})
	s := NewScheduler(
		func() *labelstore.Overlay { return labelstore.NewOverlay(labelstore.Map{}) },
		func(map[int]float64) {},
		func(int) func() {
			if admits.Add(1) == 1 {
				close(aInGroup)
				<-aRelease
			}
			return func() {}
		},
	)

	ctx, cancel := context.WithCancel(context.Background())
	bDone := make(chan struct{})
	waited := make(chan struct{})
	s.SetWaitClockForTest(func(time.Duration) {
		cancel() // B's submitter cancels while the leader sleeps
		<-bDone  // B withdraws and Submit returns
		close(waited)
	})

	// A: leader, no ctx, no wait; blocks in runGroup via the admit hook.
	aOut := make(chan error)
	go func() {
		_, err := s.Submit(Plan{K: 1, Threshold: 0.9}.Normalize(), Binding{})
		aOut <- err
	}()
	<-aInGroup

	// B: follower with a coalesce wait and a cancellable ctx.
	go func() {
		_, err := s.Submit(Plan{K: 1, Threshold: 0.9, CoalesceWait: time.Millisecond}.Normalize(), Binding{Ctx: ctx})
		if err != context.Canceled {
			t.Errorf("B: got err %v, want context.Canceled", err)
		}
		close(bDone)
	}()

	// Let B reach the queue before releasing A (crude but deterministic
	// enough for a repro: B must be enqueued before A's group finishes).
	time.Sleep(50 * time.Millisecond)
	close(aRelease)
	<-aOut
	<-waited
	// Give the detached leader time to (wrongly) run the withdrawn B.
	time.Sleep(100 * time.Millisecond)

	if n := admits.Load(); n != 1 {
		t.Fatalf("admit called %d times; want 1 — the withdrawn submission was executed", n)
	}
}
