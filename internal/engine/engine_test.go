package engine

import (
	"reflect"
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// The test fixture ingests one small synthetic video once and shares the
// artifact across every engine test: the engine contract is that an
// Artifact is immutable under Execute, so sharing is safe.
var (
	fixOnce sync.Once
	fixSrc  *video.Synthetic
	fixUDF  vision.UDF
	fixArt  *Artifact
	fixErr  error
)

func testPlan(k int) Plan {
	return Plan{
		K:         k,
		Threshold: 0.9,
		Seed:      7,
		Cost:      simclock.Default(),
		Ingest: phase1.Options{
			SampleFrac: 0.05,
			Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 30}}, Epochs: 30},
			Seed:       7,
			Cost:       simclock.Default(),
		},
	}
}

func fixture(t *testing.T) (*Artifact, video.Source, vision.UDF) {
	t.Helper()
	fixOnce.Do(func() {
		fixSrc, fixErr = video.NewSynthetic(video.Config{
			Name: "engine-fixture", Kind: video.KindTraffic, Class: video.ClassCar,
			Frames: 3000, FPS: 30, Seed: 311, MeanPopulation: 3, BurstRate: 3,
			DailyCycle: true, DistractorPopulation: 1,
		})
		if fixErr != nil {
			return
		}
		fixUDF = vision.CountUDF{Class: video.ClassCar}
		fixArt, fixErr = Ingest(fixSrc, fixUDF, testPlan(5).Ingest, simclock.NewClock())
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixArt, fixSrc, fixUDF
}

// outcomeKey projects an Outcome onto everything a caller observes,
// including the simulated charges, for bit-equality checks.
type outcomeKey struct {
	IDs        []int
	Scores     []float64
	Confidence float64
	Cleaned    int
	Oracle     int
	Examined   int
	TotalMS    float64
}

func keyOf(o *Outcome) outcomeKey {
	return outcomeKey{
		IDs:        o.IDs,
		Scores:     o.Scores,
		Confidence: o.Confidence,
		Cleaned:    o.Stats.Cleaned,
		Oracle:     o.Stats.OracleCalls,
		Examined:   o.Stats.Examined,
		TotalMS:    o.Clock.TotalMS(),
	}
}

func TestExecuteBitIdenticalAcrossProcs(t *testing.T) {
	art, src, udf := fixture(t)
	for _, window := range []int{0, 30} {
		plan, err := NewPlan(func() Plan {
			p := testPlan(5)
			p.Window = WindowSpec{Size: window, SampleFrac: 0.1}
			return p
		}())
		if err != nil {
			t.Fatal(err)
		}
		var ref *Outcome
		for _, procs := range []int{1, 2, 8} {
			p := plan
			p.Procs = procs
			out, err := Execute(p, Binding{Src: src, UDF: udf, Artifact: art})
			if err != nil {
				t.Fatalf("window=%d procs=%d: %v", window, procs, err)
			}
			if ref == nil {
				ref = out
				continue
			}
			if !reflect.DeepEqual(keyOf(out), keyOf(ref)) {
				t.Fatalf("window=%d procs=%d diverged:\n%+v\nvs\n%+v", window, procs, keyOf(out), keyOf(ref))
			}
		}
	}
}

func TestExecuteOverlayMakesRepeatOracleFree(t *testing.T) {
	art, src, udf := fixture(t)
	plan, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	overlay := labelstore.NewOverlay(labelstore.Map{})
	first, err := Execute(plan, Binding{Src: src, UDF: udf, Artifact: art, Labels: overlay})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Cleaned == 0 {
		t.Fatal("first execution cleaned nothing; the reuse assertion would be vacuous")
	}
	if got := len(overlay.Fresh()); got != first.Stats.Cleaned {
		t.Fatalf("overlay recorded %d fresh labels, engine cleaned %d", got, first.Stats.Cleaned)
	}
	// A second execution over the same overlay sees every confirmed frame
	// as certain: no oracle work, same answer.
	second, err := Execute(plan, Binding{Src: src, UDF: udf, Artifact: art, Labels: overlay})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Cleaned != 0 || second.Stats.OracleCalls != 0 {
		t.Fatalf("repeat over a warm overlay cleaned %d in %d calls, want 0 in 0",
			second.Stats.Cleaned, second.Stats.OracleCalls)
	}
	if !reflect.DeepEqual(second.IDs, first.IDs) || !reflect.DeepEqual(second.Scores, first.Scores) {
		t.Fatal("warm-overlay repeat changed the answer")
	}
}

func TestExecuteRejectsOversizedK(t *testing.T) {
	art, src, udf := fixture(t)
	plan, err := NewPlan(testPlan(len(art.Retained) + 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(plan, Binding{Src: src, UDF: udf, Artifact: art}); err == nil {
		t.Fatal("K larger than the relation must be rejected")
	}
}

func TestArtifactValidateFor(t *testing.T) {
	art, src, udf := fixture(t)
	if err := art.ValidateFor(src, udf); err != nil {
		t.Fatal(err)
	}
	if err := art.ValidateFor(src, vision.CountUDF{Class: video.ClassBus}); err == nil {
		t.Fatal("wrong UDF accepted")
	}
	other, err := video.NewSynthetic(video.Config{
		Name: "other", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 3000, FPS: 30, Seed: 5, MeanPopulation: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := art.ValidateFor(other, udf); err == nil {
		t.Fatal("wrong video accepted")
	}
	if err := art.ValidateFor(nil, udf); err == nil {
		t.Fatal("nil source accepted")
	}
}
