package engine

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/core"
)

func validPlan() Plan {
	return Plan{K: 5, Threshold: 0.9}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Plan)
		want string // substring of the error; empty means valid
	}{
		{"valid frame", func(p *Plan) {}, ""},
		{"valid tumbling", func(p *Plan) { p.Window.Size = 30 }, ""},
		{"valid sliding", func(p *Plan) { p.Window = WindowSpec{Size: 30, Stride: 10} }, ""},
		{"zero K", func(p *Plan) { p.K = 0 }, "K must be positive"},
		{"negative K", func(p *Plan) { p.K = -3 }, "K must be positive"},
		{"zero threshold", func(p *Plan) { p.Threshold = 0 }, "threshold must be in (0,1]"},
		{"threshold above one", func(p *Plan) { p.Threshold = 1.5 }, "threshold must be in (0,1]"},
		{"negative window", func(p *Plan) { p.Window.Size = -1 }, "negative window"},
		{"stride without window", func(p *Plan) { p.Window.Stride = 10 }, "stride 10 given without a window"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := validPlan()
			c.mut(&p)
			_, err := NewPlan(p)
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("plan %+v accepted, want error containing %q", p, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
			if !strings.HasPrefix(err.Error(), "everest:") {
				t.Fatalf("error %q lost the public everest: prefix", err)
			}
		})
	}
}

func TestPlanNormalizeTumblingAndIdempotence(t *testing.T) {
	p := validPlan()
	p.Window.Size = 30
	n := p.Normalize()
	if n.Window.Stride != 30 {
		t.Fatalf("tumbling stride not normalized: %d", n.Window.Stride)
	}
	if again := n.Normalize(); !reflect.DeepEqual(again, n) {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", again, n)
	}
	// Frame plans stay untouched.
	f := validPlan().Normalize()
	if f.Window.Stride != 0 || f.Window.Size != 0 {
		t.Fatalf("frame plan grew a window: %+v", f.Window)
	}
}

func TestPlanBoundKind(t *testing.T) {
	p := validPlan()
	if p.Bound() != core.BoundIndependent {
		t.Fatal("frame plan must use the independent bound")
	}
	p.Window = WindowSpec{Size: 30, Stride: 30}
	if p.Bound() != core.BoundIndependent {
		t.Fatal("tumbling windows are independent")
	}
	p.Window.Stride = 10
	if p.Bound() != core.BoundUnion {
		t.Fatal("overlapping windows must force the union bound")
	}
	p = validPlan()
	p.ForceUnionBound = true
	if p.Bound() != core.BoundUnion {
		t.Fatal("ForceUnionBound ignored")
	}
}

func TestPlanValidateFor(t *testing.T) {
	p := validPlan()
	if err := p.ValidateFor(0); err == nil || !strings.Contains(err.Error(), "empty video") {
		t.Fatalf("empty video accepted: %v", err)
	}
	w, err := NewPlan(Plan{K: 50, Threshold: 0.9, Window: WindowSpec{Size: 100}})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 frames / 100-frame tumbling windows = 10 windows < K = 50.
	if err := w.ValidateFor(1000); err == nil || !strings.Contains(err.Error(), "only 10 windows") {
		t.Fatalf("window-starved plan accepted: %v", err)
	}
	if err := w.ValidateFor(10000); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPlanCompatible(t *testing.T) {
	a := validPlan().Normalize()
	b := a
	b.K = 20
	b.Threshold = 0.99
	b.Window = WindowSpec{Size: 30, Stride: 30}
	b.Seed = 99
	if !Compatible(a, b) {
		t.Fatal("plans differing only in K/threshold/window/seed must coalesce")
	}
	c := a
	c.Cost.OracleMS = a.Cost.OracleMS + 1
	if Compatible(a, c) {
		t.Fatal("plans with different cost models must not coalesce")
	}
}

func TestPlanKnobsIntrospection(t *testing.T) {
	p := Plan{
		K: 7, Threshold: 0.95,
		Window:       WindowSpec{Size: 300, Stride: 30, SampleFrac: 0.2},
		BatchSize:    8,
		Procs:        4,
		CoalesceWait: 25 * time.Millisecond,
		UseMux:       true,
		Retries:      3,
		Seed:         11,
	}.Normalize()
	got := map[string]string{}
	var order []string
	for _, k := range p.Knobs() {
		got[k.Name] = k.Value
		order = append(order, k.Name)
	}
	want := map[string]string{
		"k": "7", "threshold": "0.95",
		"window-size": "300", "window-stride": "30", "window-sample-frac": "0.2",
		"batch-size": "8", "procs": "4", "coalesce-wait": "25ms",
		"use-mux": "true", "proxy-cascade": "decode→diff→proxy",
		"retries": "3", "seed": "11",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("knobs = %v, want %v", got, want)
	}
	// Deterministic order, and the zero-valued optional knobs are omitted.
	again := p.Knobs()
	for i, k := range again {
		if k.Name != order[i] {
			t.Fatalf("knob order not deterministic: %v vs %v", again, order)
		}
	}
	frame := validPlan().Normalize()
	for _, k := range frame.Knobs() {
		switch k.Name {
		case "window-size", "admission-limit", "deadline-ms", "retries":
			t.Fatalf("frame plan with defaults rendered optional knob %s", k.Name)
		case "procs":
			if k.Value != "auto" {
				t.Fatalf("unset procs rendered %q, want auto", k.Value)
			}
		}
	}
}
