package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/labelstore"
)

func schedulerOver(cache *labelstore.SharedCache) *Scheduler {
	s, _ := countingSchedulerOver(cache)
	return s
}

// countingSchedulerOver wires a scheduler to cache and counts groups:
// the scheduler snapshots exactly once per group, so the counter is
// the number of engine runs the queue was split into.
func countingSchedulerOver(cache *labelstore.SharedCache) (*Scheduler, *atomic.Int64) {
	groups := new(atomic.Int64)
	return NewScheduler(
		func() *labelstore.Overlay {
			groups.Add(1)
			snap, _ := cache.Snapshot()
			return labelstore.NewOverlay(snap)
		},
		func(fresh map[int]float64) { cache.Publish(fresh) },
		cache.Admit,
	), groups
}

// TestSchedulerGroupMatchesSerial is the scheduler's determinism
// contract at the engine level: a coalesced group's outcomes are
// bit-identical — IDs, scores, confidence, counters and simulated
// charges — to executing the same plans serially in submission order,
// each over the label state its predecessors left behind.
func TestSchedulerGroupMatchesSerial(t *testing.T) {
	art, src, udf := fixture(t)
	mkPlans := func() []Plan {
		ks := []int{10, 5, 3}
		ths := []float64{0.9, 0.99, 0.9}
		plans := make([]Plan, len(ks))
		for i := range ks {
			p := testPlan(ks[i])
			p.Threshold = ths[i]
			var err error
			plans[i], err = NewPlan(p)
			if err != nil {
				t.Fatal(err)
			}
		}
		return plans
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}

	// Serial reference: each plan runs alone over the cache state left by
	// its predecessors (snapshot → execute → publish).
	serialCache := labelstore.NewSharedCache()
	plans := mkPlans()
	serial := make([]*Outcome, len(plans))
	for i, p := range plans {
		snap, _ := serialCache.Snapshot()
		overlay := labelstore.NewOverlay(snap)
		b := bind
		b.Labels = overlay
		out, err := Execute(p, b)
		if err != nil {
			t.Fatal(err)
		}
		serialCache.Publish(overlay.Fresh())
		serial[i] = out
	}

	coalescedCache := labelstore.NewSharedCache()
	outs, err := schedulerOver(coalescedCache).SubmitGroup(mkPlans(), []Binding{bind, bind, bind})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if !reflect.DeepEqual(keyOf(outs[i]), keyOf(serial[i])) {
			t.Fatalf("coalesced plan %d diverged from serial submission order:\n%+v\nvs\n%+v",
				i, keyOf(outs[i]), keyOf(serial[i]))
		}
	}
	// The coalesced run shared labels: later plans rode the first plan's
	// confirmations, so only the group's first member paid the oracle
	// for overlapping frames.
	if outs[0].Stats.Cleaned == 0 {
		t.Fatal("first plan cleaned nothing; coalescing assertions are vacuous")
	}
	if outs[2].Stats.Cleaned != 0 {
		t.Fatalf("plan 2 (K=3 after K=10) cleaned %d frames, want 0 — labels did not flow through the group",
			outs[2].Stats.Cleaned)
	}
	// Both modes end with the same cache content.
	if a, b := serialCache.Len(), coalescedCache.Len(); a != b {
		t.Fatalf("cache contents diverged: serial %d labels, coalesced %d", a, b)
	}
}

// TestSchedulerCoalescesConcurrentSubmitters drives concurrent Submit
// callers (the race-gate workload) and checks group-commit batching:
// everyone gets the right answer, and the total oracle bill is at most
// what the first caller alone paid — coalescing plus the shared cache
// make every repeat free, whatever the interleaving.
func TestSchedulerCoalescesConcurrentSubmitters(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	plan, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}

	lone, err := Execute(plan, Binding{Src: src, UDF: udf, Artifact: art,
		Labels: labelstore.NewOverlay(labelstore.Map{})})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	outs := make([]*Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = sched.Submit(plan, bind)
		}(i)
	}
	wg.Wait()
	total := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submitter %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(outs[i].IDs, lone.IDs) || !reflect.DeepEqual(outs[i].Scores, lone.Scores) {
			t.Fatalf("submitter %d got a different answer", i)
		}
		total += outs[i].Stats.Cleaned
	}
	if total > lone.Stats.Cleaned {
		t.Fatalf("%d coalesced submitters cleaned %d frames total; one lone query cleans %d",
			n, total, lone.Stats.Cleaned)
	}
}

// TestSchedulerSplitsIncompatibleRuns checks that an incompatible
// neighbour (different cost model) splits the queue rather than
// poisoning the group: both halves still execute and answer.
func TestSchedulerSplitsIncompatibleRuns(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	a, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Cost.OracleMS *= 2
	bind := Binding{Src: src, UDF: udf, Artifact: art}
	outs, err := sched.SubmitGroup([]Plan{a, b}, []Binding{bind, bind})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0] == nil || outs[1] == nil {
		t.Fatalf("incompatible pair not fully executed: %v", outs)
	}
	if !reflect.DeepEqual(outs[0].IDs, outs[1].IDs) {
		t.Fatal("split runs over one cache disagreed on the answer")
	}
	// The second run still rides the first's published labels — splitting
	// loses in-flight sharing, not cache sharing.
	if outs[1].Stats.Cleaned != 0 {
		t.Fatalf("second (split) run cleaned %d frames, want 0 via the published cache", outs[1].Stats.Cleaned)
	}
}

// TestSchedulerMixedProcsMatchesSerial locks the mixed-worker-count
// binding rule: a group whose members request different Procs — here
// serial, wide and narrow — hands the group pool only to members that
// asked for parallel execution, and every member's outcome (results
// AND simulated charges) is bit-identical to its own serial baseline,
// i.e. the plan executed alone with its own Procs over the label state
// its predecessors left behind. Runs under the race gate: a Procs-1
// member sharing its neighbours' pool is exactly the kind of bug the
// detector would catch here.
func TestSchedulerMixedProcsMatchesSerial(t *testing.T) {
	art, src, udf := fixture(t)
	procsOf := []int{1, 8, 2, 1}
	mkPlans := func() []Plan {
		ks := []int{10, 5, 3, 8}
		plans := make([]Plan, len(ks))
		for i := range ks {
			p := testPlan(ks[i])
			p.Procs = procsOf[i]
			var err error
			plans[i], err = NewPlan(p)
			if err != nil {
				t.Fatal(err)
			}
		}
		return plans
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}

	// Serial baselines: each plan alone, at its own Procs, over its
	// predecessors' published labels.
	serialCache := labelstore.NewSharedCache()
	plans := mkPlans()
	serial := make([]*Outcome, len(plans))
	for i, p := range plans {
		snap, _ := serialCache.Snapshot()
		overlay := labelstore.NewOverlay(snap)
		b := bind
		b.Labels = overlay
		out, err := Execute(p, b)
		if err != nil {
			t.Fatal(err)
		}
		serialCache.Publish(overlay.Fresh())
		serial[i] = out
	}

	cache := labelstore.NewSharedCache()
	sched, groups := countingSchedulerOver(cache)
	binds := make([]Binding, len(plans))
	for i := range binds {
		binds[i] = bind
	}
	outs, err := sched.SubmitGroup(mkPlans(), binds)
	if err != nil {
		t.Fatal(err)
	}
	if g := groups.Load(); g != 1 {
		t.Fatalf("mixed-Procs plans split into %d groups, want 1 (Procs never affects compatibility)", g)
	}
	for i := range outs {
		if !reflect.DeepEqual(keyOf(outs[i]), keyOf(serial[i])) {
			t.Fatalf("mixed-Procs member %d (Procs=%d) diverged from its serial baseline:\n%+v\nvs\n%+v",
				i, procsOf[i], keyOf(outs[i]), keyOf(serial[i]))
		}
	}
}

// TestSchedulerCoalesceWaitGroupsArrivals is the latency-bounded
// group-close contract under a deterministic clock: the leader of a
// group whose plans grant a CoalesceWait budget holds the group open —
// blocked in the injected wait — while later compatible submissions
// arrive, then commits them all as ONE group. Without the wait the
// first submitter would have committed alone. Grouping changes who
// shares a run, never what anyone gets: every outcome still matches
// serial submission order.
func TestSchedulerCoalesceWaitGroupsArrivals(t *testing.T) {
	art, src, udf := fixture(t)
	mkPlan := func(k int) Plan {
		p := testPlan(k)
		p.CoalesceWait = 50 * time.Millisecond
		plan, err := NewPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	plans := []Plan{mkPlan(10), mkPlan(5), mkPlan(3)}
	bind := Binding{Src: src, UDF: udf, Artifact: art}

	// Serial reference for the submission order the test enforces.
	serialCache := labelstore.NewSharedCache()
	serial := make([]*Outcome, len(plans))
	for i, p := range plans {
		snap, _ := serialCache.Snapshot()
		overlay := labelstore.NewOverlay(snap)
		b := bind
		b.Labels = overlay
		out, err := Execute(p, b)
		if err != nil {
			t.Fatal(err)
		}
		serialCache.Publish(overlay.Fresh())
		serial[i] = out
	}

	cache := labelstore.NewSharedCache()
	sched, groups := countingSchedulerOver(cache)
	// The injected clock blocks the leader until every submission the
	// test launches is queued — grouping no longer depends on goroutine
	// scheduling. Later wait calls (none expected) return immediately.
	release := make(chan struct{})
	sched.SetWaitClockForTest(func(time.Duration) { <-release })

	outs := make([]*Outcome, len(plans))
	errs := make([]error, len(plans))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		outs[0], errs[0] = sched.Submit(plans[0], bind)
	}()
	// The first submitter becomes leader and blocks in the wait with its
	// own submission still queued.
	waitFor(t, func() bool { return sched.QueuedForTest() == 1 })
	for i := 1; i < len(plans); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = sched.Submit(plans[i], bind)
		}(i)
	}
	waitFor(t, func() bool { return sched.QueuedForTest() == len(plans) })
	close(release) // budget elapses; the leader re-reads the queue
	wg.Wait()

	if g := groups.Load(); g != 1 {
		t.Fatalf("latency-bounded close formed %d groups, want 1 — arrivals during the wait did not join", g)
	}
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("plan %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(keyOf(outs[i]), keyOf(serial[i])) {
			t.Fatalf("waited group member %d diverged from serial submission order:\n%+v\nvs\n%+v",
				i, keyOf(outs[i]), keyOf(serial[i]))
		}
	}
	// The whole group shared one overlay: only the first member paid for
	// the overlapping frames.
	if outs[0].Stats.Cleaned == 0 {
		t.Fatal("leader cleaned nothing; grouping assertions are vacuous")
	}
	if outs[2].Stats.Cleaned != 0 {
		t.Fatalf("member 2 cleaned %d frames inside a single group, want 0", outs[2].Stats.Cleaned)
	}
}

// TestSchedulerNoWaitWithoutBudget pins the default: plans with a zero
// CoalesceWait never invoke the wait clock — pure group-commit, no
// added latency when idle.
func TestSchedulerNoWaitWithoutBudget(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	var waits atomic.Int64
	sched.SetWaitClockForTest(func(time.Duration) { waits.Add(1) })
	plan, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Submit(plan, Binding{Src: src, UDF: udf, Artifact: art}); err != nil {
		t.Fatal(err)
	}
	if w := waits.Load(); w != 0 {
		t.Fatalf("zero-budget submission slept %d times, want 0", w)
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerValidationErrorDelivered checks that a plan rejected by
// the engine surfaces to its submitter without wedging the scheduler.
func TestSchedulerValidationErrorDelivered(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	bad := testPlan(len(art.Retained) + 1).Normalize() // K exceeds the relation
	good, err := NewPlan(testPlan(3))
	if err != nil {
		t.Fatal(err)
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}
	outs, err := sched.SubmitGroup([]Plan{bad, good}, []Binding{bind, bind})
	if err == nil {
		t.Fatal("oversized K must surface an error")
	}
	if outs[0] != nil {
		t.Fatal("failed plan produced an outcome")
	}
	if outs[1] == nil {
		t.Fatal("healthy plan was starved by its failed neighbour")
	}
	// The scheduler stays usable.
	if _, err := sched.Submit(good, bind); err != nil {
		t.Fatalf("scheduler wedged after a failed group: %v", err)
	}
}

// TestSchedulerSubmitPreCancelled pins the cheap path: a submission
// whose context is already cancelled never enters the queue.
func TestSchedulerSubmitPreCancelled(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	plan, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := sched.Submit(plan, Binding{Src: src, UDF: udf, Artifact: art, Ctx: ctx})
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("pre-cancelled Submit returned (%v, %v), want (nil, context.Canceled)", out, err)
	}
	if q := sched.QueuedForTest(); q != 0 {
		t.Fatalf("pre-cancelled submission left %d entries queued", q)
	}
	// The scheduler is untouched: a live submission still runs.
	if _, err := sched.Submit(plan, Binding{Src: src, UDF: udf, Artifact: art}); err != nil {
		t.Fatalf("scheduler unusable after pre-cancelled submit: %v", err)
	}
}

// TestSchedulerCancelWhileQueuedWithdraws is the sibling-isolation
// contract for cancellation: a submission cancelled while still queued
// leaves the queue without joining any group — the surviving sibling
// coalesces and answers exactly as if the cancelled query were never
// submitted, and the canceller gets ctx.Err() promptly instead of
// waiting out a run it no longer wants.
func TestSchedulerCancelWhileQueuedWithdraws(t *testing.T) {
	art, src, udf := fixture(t)
	mkPlan := func(k int) Plan {
		p := testPlan(k)
		p.CoalesceWait = 50 * time.Millisecond
		plan, err := NewPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}

	// Baseline: the surviving plan alone on an empty cache.
	lone, err := Execute(mkPlan(5), Binding{Src: src, UDF: udf, Artifact: art,
		Labels: labelstore.NewOverlay(labelstore.Map{})})
	if err != nil {
		t.Fatal(err)
	}

	cache := labelstore.NewSharedCache()
	sched, groups := countingSchedulerOver(cache)
	// Hold the leader open in the injected wait so the test controls
	// exactly what is queued when the group commits.
	release := make(chan struct{})
	sched.SetWaitClockForTest(func(time.Duration) { <-release })

	var leaderOut *Outcome
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderOut, leaderErr = sched.Submit(mkPlan(5), bind)
	}()
	waitFor(t, func() bool { return sched.QueuedForTest() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	var victimOut *Outcome
	var victimErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		b := bind
		b.Ctx = ctx
		victimOut, victimErr = sched.Submit(mkPlan(3), b)
	}()
	waitFor(t, func() bool { return sched.QueuedForTest() == 2 })

	// Cancel while the leader is still holding the group open: the victim
	// must withdraw and return without waiting for the run.
	cancel()
	waitFor(t, func() bool { return sched.QueuedForTest() == 1 })
	close(release)
	wg.Wait()

	if !errors.Is(victimErr, context.Canceled) || victimOut != nil {
		t.Fatalf("cancelled submission returned (%v, %v), want (nil, context.Canceled)", victimOut, victimErr)
	}
	if leaderErr != nil {
		t.Fatalf("surviving sibling: %v", leaderErr)
	}
	if g := groups.Load(); g != 1 {
		t.Fatalf("queue split into %d groups, want 1", g)
	}
	if !reflect.DeepEqual(keyOf(leaderOut), keyOf(lone)) {
		t.Fatalf("surviving sibling perturbed by its neighbour's withdrawal:\n%+v\nvs\n%+v",
			keyOf(leaderOut), keyOf(lone))
	}
}

// TestSchedulerCancelledMemberInsideGroup covers the other side of the
// race: once a leader has taken a submission into a group, cancellation
// is observed by the engine run itself — the member gets ctx.Err(), its
// siblings complete untouched, and the run's confirmed labels still
// publish.
func TestSchedulerCancelledMemberInsideGroup(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	a, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(testPlan(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled when the group executes it
	bind := Binding{Src: src, UDF: udf, Artifact: art}
	cancelledBind := bind
	cancelledBind.Ctx = ctx
	outs, err := sched.SubmitGroup([]Plan{a, b}, []Binding{bind, cancelledBind})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("group error = %v, want the cancelled member's context.Canceled", err)
	}
	if outs[1] != nil {
		t.Fatal("cancelled member produced an outcome")
	}
	if outs[0] == nil {
		t.Fatal("healthy sibling starved by its cancelled neighbour")
	}
	if cache.Len() == 0 {
		t.Fatal("group's confirmed labels were not published")
	}
	// The scheduler stays usable and the repeat rides the published labels.
	repeat, err := sched.Submit(a, bind)
	if err != nil {
		t.Fatalf("scheduler wedged after a cancelled member: %v", err)
	}
	if repeat.Stats.Cleaned != 0 {
		t.Fatalf("repeat cleaned %d frames, want 0 via the published cache", repeat.Stats.Cleaned)
	}
}

// TestSchedulerInFlight locks the observed-load signal the EQL set
// planner consumes: submissions count from acceptance to delivery, so
// a blocked group is visible as backlog while it runs and invisible
// once drained.
func TestSchedulerInFlight(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := NewScheduler(
		func() *labelstore.Overlay {
			// Block the first group at its snapshot so the test can
			// observe the queue mid-flight.
			once.Do(func() { close(started); <-release })
			snap, _ := cache.Snapshot()
			return labelstore.NewOverlay(snap)
		},
		func(fresh map[int]float64) { cache.Publish(fresh) },
		cache.Admit,
	)
	if got := s.InFlight(); got != 0 {
		t.Fatalf("idle scheduler reports %d in flight", got)
	}

	p1, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(testPlan(3))
	if err != nil {
		t.Fatal(err)
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}
	done := make(chan error, 1)
	go func() {
		_, err := s.SubmitGroup([]Plan{p1, p2}, []Binding{bind, bind})
		done <- err
	}()

	<-started
	if got := s.InFlight(); got != 2 {
		t.Fatalf("blocked group reports %d in flight, want 2", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("drained scheduler reports %d in flight", got)
	}
}
