package engine

import (
	"reflect"
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/labelstore"
)

func schedulerOver(cache *labelstore.SharedCache) *Scheduler {
	return NewScheduler(
		func() *labelstore.Overlay {
			snap, _ := cache.Snapshot()
			return labelstore.NewOverlay(snap)
		},
		func(fresh map[int]float64) { cache.Publish(fresh) },
		cache.Admit,
	)
}

// TestSchedulerGroupMatchesSerial is the scheduler's determinism
// contract at the engine level: a coalesced group's outcomes are
// bit-identical — IDs, scores, confidence, counters and simulated
// charges — to executing the same plans serially in submission order,
// each over the label state its predecessors left behind.
func TestSchedulerGroupMatchesSerial(t *testing.T) {
	art, src, udf := fixture(t)
	mkPlans := func() []Plan {
		ks := []int{10, 5, 3}
		ths := []float64{0.9, 0.99, 0.9}
		plans := make([]Plan, len(ks))
		for i := range ks {
			p := testPlan(ks[i])
			p.Threshold = ths[i]
			var err error
			plans[i], err = NewPlan(p)
			if err != nil {
				t.Fatal(err)
			}
		}
		return plans
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}

	// Serial reference: each plan runs alone over the cache state left by
	// its predecessors (snapshot → execute → publish).
	serialCache := labelstore.NewSharedCache()
	plans := mkPlans()
	serial := make([]*Outcome, len(plans))
	for i, p := range plans {
		snap, _ := serialCache.Snapshot()
		overlay := labelstore.NewOverlay(snap)
		b := bind
		b.Labels = overlay
		out, err := Execute(p, b)
		if err != nil {
			t.Fatal(err)
		}
		serialCache.Publish(overlay.Fresh())
		serial[i] = out
	}

	coalescedCache := labelstore.NewSharedCache()
	outs, err := schedulerOver(coalescedCache).SubmitGroup(mkPlans(), []Binding{bind, bind, bind})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if !reflect.DeepEqual(keyOf(outs[i]), keyOf(serial[i])) {
			t.Fatalf("coalesced plan %d diverged from serial submission order:\n%+v\nvs\n%+v",
				i, keyOf(outs[i]), keyOf(serial[i]))
		}
	}
	// The coalesced run shared labels: later plans rode the first plan's
	// confirmations, so only the group's first member paid the oracle
	// for overlapping frames.
	if outs[0].Stats.Cleaned == 0 {
		t.Fatal("first plan cleaned nothing; coalescing assertions are vacuous")
	}
	if outs[2].Stats.Cleaned != 0 {
		t.Fatalf("plan 2 (K=3 after K=10) cleaned %d frames, want 0 — labels did not flow through the group",
			outs[2].Stats.Cleaned)
	}
	// Both modes end with the same cache content.
	if a, b := serialCache.Len(), coalescedCache.Len(); a != b {
		t.Fatalf("cache contents diverged: serial %d labels, coalesced %d", a, b)
	}
}

// TestSchedulerCoalescesConcurrentSubmitters drives concurrent Submit
// callers (the race-gate workload) and checks group-commit batching:
// everyone gets the right answer, and the total oracle bill is at most
// what the first caller alone paid — coalescing plus the shared cache
// make every repeat free, whatever the interleaving.
func TestSchedulerCoalescesConcurrentSubmitters(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	plan, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}

	lone, err := Execute(plan, Binding{Src: src, UDF: udf, Artifact: art,
		Labels: labelstore.NewOverlay(labelstore.Map{})})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	outs := make([]*Outcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = sched.Submit(plan, bind)
		}(i)
	}
	wg.Wait()
	total := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submitter %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(outs[i].IDs, lone.IDs) || !reflect.DeepEqual(outs[i].Scores, lone.Scores) {
			t.Fatalf("submitter %d got a different answer", i)
		}
		total += outs[i].Stats.Cleaned
	}
	if total > lone.Stats.Cleaned {
		t.Fatalf("%d coalesced submitters cleaned %d frames total; one lone query cleans %d",
			n, total, lone.Stats.Cleaned)
	}
}

// TestSchedulerSplitsIncompatibleRuns checks that an incompatible
// neighbour (different cost model) splits the queue rather than
// poisoning the group: both halves still execute and answer.
func TestSchedulerSplitsIncompatibleRuns(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	a, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Cost.OracleMS *= 2
	bind := Binding{Src: src, UDF: udf, Artifact: art}
	outs, err := sched.SubmitGroup([]Plan{a, b}, []Binding{bind, bind})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0] == nil || outs[1] == nil {
		t.Fatalf("incompatible pair not fully executed: %v", outs)
	}
	if !reflect.DeepEqual(outs[0].IDs, outs[1].IDs) {
		t.Fatal("split runs over one cache disagreed on the answer")
	}
	// The second run still rides the first's published labels — splitting
	// loses in-flight sharing, not cache sharing.
	if outs[1].Stats.Cleaned != 0 {
		t.Fatalf("second (split) run cleaned %d frames, want 0 via the published cache", outs[1].Stats.Cleaned)
	}
}

// TestSchedulerValidationErrorDelivered checks that a plan rejected by
// the engine surfaces to its submitter without wedging the scheduler.
func TestSchedulerValidationErrorDelivered(t *testing.T) {
	art, src, udf := fixture(t)
	cache := labelstore.NewSharedCache()
	sched := schedulerOver(cache)
	bad := testPlan(len(art.Retained) + 1).Normalize() // K exceeds the relation
	good, err := NewPlan(testPlan(3))
	if err != nil {
		t.Fatal(err)
	}
	bind := Binding{Src: src, UDF: udf, Artifact: art}
	outs, err := sched.SubmitGroup([]Plan{bad, good}, []Binding{bind, bind})
	if err == nil {
		t.Fatal("oversized K must surface an error")
	}
	if outs[0] != nil {
		t.Fatal("failed plan produced an outcome")
	}
	if outs[1] == nil {
		t.Fatal("healthy plan was starved by its failed neighbour")
	}
	// The scheduler stays usable.
	if _, err := sched.Submit(good, bind); err != nil {
		t.Fatalf("scheduler wedged after a failed group: %v", err)
	}
}
