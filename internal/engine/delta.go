package engine

// AnswerDelta is the difference between two top-K answers over the same
// stream — what a continuous follower reports when a new chunk of
// footage lands. Order within each list is deterministic: Entered and
// Reordered follow the new answer's rank order, Left follows the old
// answer's.
type AnswerDelta struct {
	// Entered lists frames in the new answer but not the old, in new
	// rank order.
	Entered []int
	// Left lists frames dropped from the old answer, in old rank order.
	Left []int
	// Reordered lists frames present in both answers whose rank
	// changed, in new rank order.
	Reordered []int
}

// Empty reports whether the two answers were identical.
func (d AnswerDelta) Empty() bool {
	return len(d.Entered) == 0 && len(d.Left) == 0 && len(d.Reordered) == 0
}

// DiffOutcome computes the answer delta from prev to next. A nil prev
// means no answer yet: every frame of next enters. Only membership and
// rank are compared; score refinements that leave the ranking intact
// produce an empty delta.
func DiffOutcome(prev, next *Outcome) AnswerDelta {
	var d AnswerDelta
	if next == nil {
		next = &Outcome{}
	}
	rankNext := make(map[int]int, len(next.IDs))
	for r, f := range next.IDs {
		rankNext[f] = r
	}
	var rankPrev map[int]int
	if prev != nil {
		rankPrev = make(map[int]int, len(prev.IDs))
		for r, f := range prev.IDs {
			rankPrev[f] = r
		}
		for _, f := range prev.IDs {
			if _, ok := rankNext[f]; !ok {
				d.Left = append(d.Left, f)
			}
		}
	}
	for r, f := range next.IDs {
		if pr, ok := rankPrev[f]; !ok {
			d.Entered = append(d.Entered, f)
		} else if pr != r {
			d.Reordered = append(d.Reordered, f)
		}
	}
	return d
}
