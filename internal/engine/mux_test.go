package engine

import (
	"reflect"
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/oraclemux"
	"github.com/everest-project/everest/internal/simclock"
)

// TestExecuteMuxBitIdenticalWithDeviceAccounting is the oracle
// multiplexer's engine-level contract, in three locks:
//
//  1. Transport neutrality: plans executed concurrently through one
//     mux return bit-identically — results AND full per-plan clock
//     breakdowns — what the same plans return serially with direct
//     UDF dispatch. The mux changes which device launch carries a
//     confirmation batch, never what any plan gets or is billed.
//  2. Device-side accounting golden: the mux's simulated device time
//     is exactly one launch overhead per consolidated batch plus the
//     per-frame inference cost of every frame scored, and the saving
//     it reports is exactly the launch overheads consolidation
//     removed.
//  3. Scale-out cost-model invariants (§3.5): folding the per-plan
//     clocks into a parent via ChargeParallelMax yields the same
//     BSP wall-clock and the same summed bill with the mux on or off.
func TestExecuteMuxBitIdenticalWithDeviceAccounting(t *testing.T) {
	art, src, udf := fixture(t)
	mkPlans := func() []Plan {
		ks := []int{10, 5, 3}
		plans := make([]Plan, 0, len(ks)+1)
		for _, k := range ks {
			p, err := NewPlan(testPlan(k))
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, p)
		}
		w := testPlan(4)
		w.Window = WindowSpec{Size: 30, SampleFrac: 0.1}
		p, err := NewPlan(w)
		if err != nil {
			t.Fatal(err)
		}
		return append(plans, p)
	}

	// Direct baseline: serial, each plan over its own private overlay of
	// an empty cache — fully independent executions.
	plans := mkPlans()
	direct := make([]*Outcome, len(plans))
	for i, p := range plans {
		out, err := Execute(p, Binding{Src: src, UDF: udf, Artifact: art,
			Labels: labelstore.NewOverlay(labelstore.Map{})})
		if err != nil {
			t.Fatal(err)
		}
		direct[i] = out
	}

	// Muxed: the same independent plans, concurrently, all dispatching
	// through one private mux (injected via the binding, the test hook
	// Plan.UseMux's process-wide fallback shares).
	mux := oraclemux.New(0)
	muxed := make([]*Outcome, len(plans))
	errs := make([]error, len(plans))
	var wg sync.WaitGroup
	for i, p := range mkPlans() {
		wg.Add(1)
		go func(i int, p Plan) {
			defer wg.Done()
			muxed[i], errs[i] = Execute(p, Binding{Src: src, UDF: udf, Artifact: art,
				Labels:   labelstore.NewOverlay(labelstore.Map{}),
				Dispatch: mux})
		}(i, p)
	}
	wg.Wait()

	for i := range plans {
		if errs[i] != nil {
			t.Fatalf("muxed plan %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(keyOf(muxed[i]), keyOf(direct[i])) {
			t.Fatalf("muxed plan %d diverged from direct dispatch:\n%+v\nvs\n%+v",
				i, keyOf(muxed[i]), keyOf(direct[i]))
		}
		if !reflect.DeepEqual(muxed[i].Clock.Breakdown(), direct[i].Clock.Breakdown()) {
			t.Fatalf("muxed plan %d's charge breakdown diverged:\n%v\nvs\n%v",
				i, muxed[i].Clock.Breakdown(), direct[i].Clock.Breakdown())
		}
	}

	// Device-side accounting golden.
	cost := plans[0].Cost
	rate := udf.OracleCostMS(cost)
	st := mux.Stats()
	if st.Requests == 0 {
		t.Fatal("no confirmation batch reached the mux; the accounting assertions are vacuous")
	}
	if st.Launches < 1 || st.Launches > st.Requests {
		t.Fatalf("launch count %d out of range [1, %d]", st.Launches, st.Requests)
	}
	wantDevice := float64(st.Launches)*cost.OracleCallMS + float64(st.Frames)*rate
	if st.DeviceMS != wantDevice {
		t.Fatalf("device clock %v ms, want %v (one launch overhead per consolidated batch, %d launches × %v + %d frames × %v)",
			st.DeviceMS, wantDevice, st.Launches, cost.OracleCallMS, st.Frames, rate)
	}
	if want := float64(st.Requests-st.Launches) * cost.OracleCallMS; st.SavedMS != want {
		t.Fatalf("reported saving %v ms, want %v (%d requests consolidated into %d launches)",
			st.SavedMS, want, st.Requests, st.Launches)
	}

	// ChargeParallelMax invariants: the BSP fold of the per-plan clocks
	// — per-phase max (wall-clock) and total sum (the paid bill) — is
	// identical with the mux on and off.
	clocksOf := func(outs []*Outcome) []*simclock.Clock {
		cs := make([]*simclock.Clock, len(outs))
		for i, o := range outs {
			cs[i] = o.Clock
		}
		return cs
	}
	parentDirect, parentMux := simclock.NewClock(), simclock.NewClock()
	sumDirect := parentDirect.ChargeParallelMax(clocksOf(direct))
	sumMux := parentMux.ChargeParallelMax(clocksOf(muxed))
	if sumMux != sumDirect {
		t.Fatalf("summed per-plan bill changed under the mux: %v vs %v", sumMux, sumDirect)
	}
	if !reflect.DeepEqual(parentMux.Breakdown(), parentDirect.Breakdown()) {
		t.Fatalf("BSP wall-clock fold changed under the mux:\n%v\nvs\n%v",
			parentMux.Breakdown(), parentDirect.Breakdown())
	}
}

// TestExecuteUseMuxFallsBackToSharedMux pins the Plan.UseMux wiring:
// with no injected dispatch, a UseMux plan routes through the
// process-wide mux (visible in its stats) and still returns exactly
// the direct-dispatch outcome.
func TestExecuteUseMuxFallsBackToSharedMux(t *testing.T) {
	art, src, udf := fixture(t)
	plan, err := NewPlan(testPlan(5))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Execute(plan, Binding{Src: src, UDF: udf, Artifact: art,
		Labels: labelstore.NewOverlay(labelstore.Map{})})
	if err != nil {
		t.Fatal(err)
	}
	plan.UseMux = true
	before := oraclemux.Shared().Stats()
	muxed, err := Execute(plan, Binding{Src: src, UDF: udf, Artifact: art,
		Labels: labelstore.NewOverlay(labelstore.Map{})})
	if err != nil {
		t.Fatal(err)
	}
	after := oraclemux.Shared().Stats()
	if after.Requests <= before.Requests {
		t.Fatal("UseMux plan did not dispatch through the process-wide mux")
	}
	if !reflect.DeepEqual(keyOf(muxed), keyOf(direct)) {
		t.Fatalf("UseMux outcome diverged from direct dispatch:\n%+v\nvs\n%+v", keyOf(muxed), keyOf(direct))
	}
}
