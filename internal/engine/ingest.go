package engine

import (
	"errors"
	"fmt"

	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Artifact is the captured product of the Ingest stage: everything Phase
// 2 needs from Phase 1, detached from the live pipeline. Per retained
// frame it holds either the exact oracle label (a Phase 1 sample) or the
// CMDN's score mixture, plus the difference-detector segment structure.
// One Artifact serves any number of plans — different K, thres, window
// shape — and is the in-memory body of a persisted everest.Index.
type Artifact struct {
	// Dataset, UDFName and TotalFrames identify the (video, UDF) pair the
	// artifact was ingested from; ValidateFor enforces the binding.
	Dataset     string
	UDFName     string
	TotalFrames int
	// Retained lists the frames surviving the difference detector, in
	// ascending order; RepOf maps every frame to its segment
	// representative.
	Retained []int32
	RepOf    []int32
	// Exact holds Phase 1 oracle labels; Mixtures the proxy's score
	// mixtures for the remaining retained frames.
	Exact    map[int32]float64
	Mixtures map[int32]uncertain.Mixture
	// Info is the Phase 1 statistics summary.
	Info phase1.Info
}

// Ingest runs Phase 1 over src and captures its outputs. Proxy inference
// for unlabeled retained frames runs on the configured workers and is
// charged to clock (PhasePopulateD0), exactly like the lazy relation
// build it replaces. opt.Pool should carry the caller's resident pool.
func Ingest(src video.Source, udf vision.UDF, opt phase1.Options, clock *simclock.Clock) (*Artifact, error) {
	if src == nil || udf == nil {
		return nil, errors.New("everest: nil source or UDF")
	}
	if opt.Cost == (simclock.CostModel{}) {
		opt.Cost = simclock.Default()
	}
	st, err := phase1.Run(src, udf, opt, clock)
	if err != nil {
		return nil, err
	}
	return Capture(st, udf, opt.Cost, clock), nil
}

// Capture assembles an Artifact from a completed Phase 1 State —
// Ingest's second half, exported so the streaming ingestor can feed it
// states whose proxy came from a warm refresh rather than phase1.Run.
// Proxy inference for unlabeled retained frames runs on the state's
// configured workers and its cost is charged here (PhasePopulateD0).
func Capture(st *phase1.State, udf vision.UDF, cost simclock.CostModel, clock *simclock.Clock) *Artifact {
	a := &Artifact{
		Dataset:     st.Src.Name(),
		UDFName:     udf.Name(),
		TotalFrames: st.Src.NumFrames(),
		RepOf:       append([]int32(nil), st.Diff.RepOf...),
		Exact:       make(map[int32]float64),
		Mixtures:    make(map[int32]uncertain.Mixture),
		Info:        st.Info,
	}
	for _, f := range st.Diff.Retained {
		a.Retained = append(a.Retained, int32(f))
		if s, ok := st.Labeled[f]; ok {
			a.Exact[int32(f)] = s
		}
	}
	inferIDs, mixes := st.InferRetainedMixtures()
	for k, f := range inferIDs {
		a.Mixtures[int32(f)] = mixes[k]
	}
	clock.Charge(simclock.PhasePopulateD0, float64(len(inferIDs))*cost.ProxyMS)
	return a
}

// ValidateFor checks that (src, udf) is what the artifact was ingested
// from.
func (a *Artifact) ValidateFor(src video.Source, udf vision.UDF) error {
	if src == nil || udf == nil {
		return errors.New("everest: nil source or UDF")
	}
	if src.Name() != a.Dataset || src.NumFrames() != a.TotalFrames {
		return fmt.Errorf("everest: index was built for %s (%d frames), not %s (%d frames)",
			a.Dataset, a.TotalFrames, src.Name(), src.NumFrames())
	}
	if udf.Name() != a.UDFName {
		return fmt.Errorf("everest: index was built for UDF %s, not %s", a.UDFName, udf.Name())
	}
	return nil
}

// Append merges the artifact of an ingested tail into a, shifting the
// tail's frame coordinates by lo (the frame count a covered before the
// append). The difference detector never links across the append
// boundary, so the merge is a pure coordinate translation. The tail's
// invariants are validated before a is touched: on error a is
// unchanged.
func (a *Artifact) Append(tail *Artifact, lo int) error {
	if tail == nil {
		return errors.New("everest: append of nil artifact")
	}
	if lo != a.TotalFrames {
		return fmt.Errorf("everest: append at frame %d, artifact covers %d", lo, a.TotalFrames)
	}
	if err := tail.check(); err != nil {
		return fmt.Errorf("everest: append tail: %w", err)
	}
	for _, rep := range tail.RepOf {
		a.RepOf = append(a.RepOf, int32(lo)+rep)
	}
	for _, f := range tail.Retained {
		a.Retained = append(a.Retained, int32(lo)+f)
	}
	for f, s := range tail.Exact {
		a.Exact[int32(lo)+f] = s
	}
	for f, m := range tail.Mixtures {
		a.Mixtures[int32(lo)+f] = m
	}
	a.TotalFrames = lo + tail.TotalFrames
	a.Info.TotalFrames = a.TotalFrames
	a.Info.TrainSamples += tail.Info.TrainSamples
	a.Info.HoldoutSamples += tail.Info.HoldoutSamples
	a.Info.Retained += tail.Info.Retained
	return nil
}

// check verifies the structural invariants every ingested artifact
// holds: RepOf covers every frame, Retained is strictly ascending and
// in range, and every labelled or mixture-scored frame is a real frame.
func (a *Artifact) check() error {
	n := a.TotalFrames
	if n < 0 {
		return fmt.Errorf("negative frame count %d", n)
	}
	if len(a.RepOf) != n {
		return fmt.Errorf("RepOf covers %d of %d frames", len(a.RepOf), n)
	}
	for i, rep := range a.RepOf {
		if rep < 0 || int(rep) >= n {
			return fmt.Errorf("frame %d has out-of-range representative %d", i, rep)
		}
	}
	prev := int32(-1)
	for _, f := range a.Retained {
		if f <= prev || int(f) >= n {
			return fmt.Errorf("retained frame %d out of order or range (after %d, total %d)", f, prev, n)
		}
		prev = f
	}
	for f := range a.Exact {
		if f < 0 || int(f) >= n {
			return fmt.Errorf("exact label for out-of-range frame %d", f)
		}
	}
	for f := range a.Mixtures {
		if f < 0 || int(f) >= n {
			return fmt.Errorf("mixture for out-of-range frame %d", f)
		}
	}
	return nil
}
