package engine

import (
	"context"
	"fmt"

	"github.com/everest-project/everest/internal/core"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/oraclemux"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/workpool"
)

// Binding is what a plan executes against: the artifact plus the live
// (video, UDF) pair, and the execution context the caller wants shared —
// a label overlay, a clock that may already carry ingest charges, a
// resident worker pool.
type Binding struct {
	// Src and UDF are the live pair; they must match the artifact
	// (callers validate via Artifact.ValidateFor).
	Src video.Source
	UDF vision.UDF
	// Artifact is the ingested Phase 1 product.
	Artifact *Artifact
	// Labels is the query's private overlay over a label-cache snapshot.
	// Frames in it enter D0 certain, cleaned frames are recorded into its
	// fresh set, and oracle cost is charged only for cache misses. nil is
	// the uncached path: nothing is reused or recorded, and every oracle
	// confirmation is charged.
	Labels *labelstore.Overlay
	// Clock receives the query's simulated charges; nil starts a fresh
	// clock. Entrypoints that ingest and query in one call (everest.Run)
	// pass the ingest clock so the Result carries the full breakdown.
	Clock *simclock.Clock
	// Pool, when non-nil, is a caller-owned resident worker pool
	// (ingest-plus-query runs and coalesced groups share one); nil makes
	// Execute create and close its own when Procs > 1.
	Pool *workpool.Pool
	// Dispatch, when non-nil, routes the plan's oracle confirmation
	// batches through this multiplexer instead of invoking the UDF
	// directly — device-level consolidation across in-flight runs. nil
	// with Plan.UseMux set falls back to the process-wide mux. Never
	// affects results or the plan's own charges.
	Dispatch *oraclemux.Mux
	// Ctx, when non-nil, bounds the execution: it is checked before each
	// oracle dispatch and between Phase 2 cleaning rounds, and a
	// cancelled context returns ctx.Err() — never a degraded answer,
	// because cancellation means the caller stopped wanting one. nil
	// means context.Background(). Cancellation never perturbs sibling
	// plans sharing a coalesced group, mux batch or label cache.
	Ctx context.Context
}

// Outcome is the engine's answer to one plan.
type Outcome struct {
	// IDs are the Top-K frame or window indices in descending score
	// order; Levels and Scores are their confirmed quantized levels and
	// level values.
	IDs    []int
	Levels []int
	Scores []float64
	// Confidence is p̂ ≥ Threshold at termination (a lower bound under
	// BoundUnion); Bound echoes the computation used.
	Confidence float64
	Bound      core.BoundKind
	// Stats are the Phase 2 counters; Tuples is |D0|.
	Stats  core.Stats
	Tuples int
	// Clock holds the simulated charges (including any the caller had
	// already accumulated on a provided clock).
	Clock *simclock.Clock
	// Retries counts transient oracle failures the dispatch boundary
	// retried; BackoffMS is the simulated backoff those retries cost
	// (also charged to the clock as simclock.PhaseRetryBackoff). Both
	// are zero on a fault-free run.
	Retries   int
	BackoffMS float64
	// Degraded is non-nil when the plan allowed graceful degradation
	// (Plan.DegradedOK) and the run had to take it: the IDs hold a
	// best-effort answer whose unconfirmed members are estimated from
	// proxy scores and never entered the label overlay.
	Degraded *core.Degraded
}

// Execute runs the RelationBuild and TopKLoop stages of one plan against
// a binding. The plan must be normalized and validated (NewPlan); the
// binding's artifact must match its source and UDF.
//
// The outcome is a pure function of (plan, artifact, overlay snapshot):
// Procs and Pool change wall-clock only, and a nil overlay behaves as a
// frozen empty cache.
func Execute(p Plan, b Binding) (*Outcome, error) {
	ctx := b.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	clock := b.Clock
	if clock == nil {
		clock = simclock.NewClock()
	}
	pool := b.Pool
	if pool == nil {
		// One resident worker pool serves the whole execution: window
		// aggregation and Phase 2's speculative selection blocks reuse the
		// same goroutines instead of spawning a worker set per block.
		if pool = p.WorkerPool(); pool != nil {
			defer pool.Close()
		}
	}

	// dispatch resolves the oracle transport: a caller-injected mux, the
	// process-wide one when the plan asks for it, or direct UDF calls.
	// The transport changes which device launch carries a confirmation
	// batch, never its scores or this plan's charges.
	dispatch := b.Dispatch
	if dispatch == nil && p.UseMux {
		dispatch = oraclemux.Shared()
	}

	qopt := b.UDF.Quantize()
	// dispatchScore is the single oracle dispatch boundary — every Phase 2
	// confirmation, mux-routed or direct, passes through here with the
	// error-returning contract (vision.SafeScore: a panicking UDF becomes
	// a typed *vision.OracleError, never an escaped panic). Transient
	// failures retry up to p.Retries times with capped exponential
	// backoff whose waits are simulated — charged to the clock as
	// simclock.PhaseRetryBackoff, never slept — so retry behavior is
	// bit-deterministic and identical with the mux on or off. Oracle
	// calls are serial within one plan (the Phase 2 loop cleans batches
	// in order), so the plain counters need no synchronization.
	var retries int
	var backoffMS float64
	dispatchScore := func(missIDs []int) ([]float64, error) {
		wait := p.RetryBackoffMS
		if wait <= 0 {
			wait = DefaultRetryBackoffMS
		}
		capMS := wait * retryBackoffCap
		for attempt := 0; ; attempt++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var fresh []float64
			var err error
			if dispatch != nil {
				fresh, err = dispatch.Score(ctx, b.Src, b.UDF, missIDs, p.Cost)
			} else {
				fresh, err = vision.SafeScore(b.UDF, b.Src, missIDs)
			}
			if err == nil {
				return fresh, nil
			}
			if attempt >= p.Retries || !vision.Transient(err) {
				return nil, err
			}
			retries++
			backoffMS += wait
			clock.Charge(simclock.PhaseRetryBackoff, wait)
			if wait *= 2; wait > capMS {
				wait = capMS
			}
		}
	}
	// scoreFrames is the frame-level oracle shared by both query kinds:
	// it consults and feeds the label overlay and charges per miss. With
	// a nil overlay every frame misses, which is exactly the uncached
	// per-confirmation charge. A failed dispatch feeds nothing back:
	// only successfully confirmed labels ever enter the overlay, so a
	// faulted query cannot pollute a shared cache.
	scoreFrames := func(ids []int) ([]float64, error) {
		scores := make([]float64, len(ids))
		var missAt, missIDs []int
		for i, id := range ids {
			if s, ok := b.Labels.Get(id); ok {
				scores[i] = s
				continue
			}
			missAt = append(missAt, i)
			missIDs = append(missIDs, id)
		}
		if len(missIDs) > 0 {
			fresh, err := dispatchScore(missIDs)
			if err != nil {
				return nil, err
			}
			for j, i := range missAt {
				scores[i] = fresh[j]
				b.Labels.Set(missIDs[j], fresh[j])
			}
			clock.Charge(simclock.PhaseConfirm, float64(len(missIDs))*b.UDF.OracleCostMS(p.Cost))
		}
		return scores, nil
	}

	var rel uncertain.Relation
	var oracle core.Oracle
	// The frame-level oracle above charges its own per-frame cost, so the
	// engine charges only the per-call overhead (and unhidden decode).
	engineCost := p.Cost
	engineCost.OracleMS = 0
	var err error
	if p.Window.Enabled() {
		rel, err = b.Artifact.WindowRelation(p.Window, qopt, b.Labels, p.Procs, pool)
		if err != nil {
			return nil, err
		}
		oracle = &windows.Oracle{
			ScoreFrames: scoreFrames,
			Size:        p.Window.Size,
			Stride:      p.Window.Stride,
			SampleFrac:  p.Window.SampleFrac,
			Step:        qopt.Step,
			Seed:        p.Seed,
		}
	} else {
		rel, err = b.Artifact.FrameRelation(qopt, b.Labels)
		if err != nil {
			return nil, err
		}
		oracle = core.OracleFunc(func(ids []int) ([]int, error) {
			scores, err := scoreFrames(ids)
			if err != nil {
				return nil, err
			}
			levels := make([]int, len(ids))
			for i, s := range scores {
				levels[i] = uncertain.LevelOf(s, qopt.Step)
			}
			return levels, nil
		})
	}
	if p.K > len(rel) {
		return nil, fmt.Errorf("everest: K=%d exceeds relation size %d", p.K, len(rel))
	}

	coreCfg := core.Config{
		K:                p.K,
		Threshold:        p.Threshold,
		BatchSize:        p.BatchSize,
		MaxCleaned:       p.MaxCleaned,
		DisableEarlyStop: p.DisableEarlyStop,
		ResortOnce:       p.ResortOnce,
		Bound:            p.Bound(),
		Procs:            p.Procs,
		Pool:             pool,
		Ctx:              ctx,
		BudgetMS:         p.DeadlineMS,
		DegradedOK:       p.DegradedOK,
	}
	if p.DisablePrefetch {
		coreCfg.UnhiddenDecodeMS = p.Cost.DecodeMS
	}
	eng, err := core.NewEngine(rel, coreCfg, oracle, clock, engineCost)
	if err != nil {
		return nil, err
	}
	coreRes, err := eng.Run()
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(coreRes.Levels))
	for i, lvl := range coreRes.Levels {
		scores[i] = uncertain.LevelValue(lvl, qopt.Step)
	}
	return &Outcome{
		IDs:        coreRes.IDs,
		Levels:     coreRes.Levels,
		Scores:     scores,
		Confidence: coreRes.Confidence,
		Bound:      coreRes.Bound,
		Stats:      coreRes.Stats,
		Tuples:     len(rel),
		Clock:      clock,
		Retries:    retries,
		BackoffMS:  backoffMS,
		Degraded:   coreRes.Degraded,
	}, nil
}
