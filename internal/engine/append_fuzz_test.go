package engine

import (
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/uncertain"
)

// artifactFromBytes decodes a (possibly invariant-violating) tail
// artifact from fuzz input. The encoding is positional and total: any
// byte string decodes to some artifact, valid or not, so the fuzzer
// explores both sides of Append's validation.
//
//	byte 0:  TotalFrames (mod 32)
//	byte 1:  length of RepOf (mod 40 — may disagree with TotalFrames)
//	then per RepOf entry: one byte, representative = int(b) - 4
//	then one byte per remaining input, round-robin:
//	  0 mod 3 → append value to Retained (int(b) - 4)
//	  1 mod 3 → Exact[int(b)-4] = 1
//	  2 mod 3 → Mixtures[int(b)-4] = a one-component mixture
func artifactFromBytes(data []byte) *Artifact {
	a := &Artifact{Exact: map[int32]float64{}, Mixtures: map[int32]uncertain.Mixture{}}
	if len(data) == 0 {
		return a
	}
	a.TotalFrames = int(data[0]) % 32
	data = data[1:]
	if len(data) == 0 {
		return a
	}
	repLen := int(data[0]) % 40
	data = data[1:]
	for i := 0; i < repLen && i < len(data); i++ {
		a.RepOf = append(a.RepOf, int32(data[i])-4)
	}
	if repLen < len(data) {
		data = data[repLen:]
	} else {
		data = nil
	}
	for i, b := range data {
		f := int32(b) - 4
		switch i % 3 {
		case 0:
			a.Retained = append(a.Retained, f)
		case 1:
			a.Exact[f] = 1
		case 2:
			a.Mixtures[f] = uncertain.Mixture{{Weight: 1, Mean: float64(f), Sigma: 1}}
		}
	}
	return a
}

// fuzzBase is a small valid artifact for Append to mutate.
func fuzzBase() *Artifact {
	return &Artifact{
		Dataset: "fuzz", UDFName: "count", TotalFrames: 4,
		RepOf:    []int32{0, 0, 2, 2},
		Retained: []int32{0, 2},
		Exact:    map[int32]float64{0: 3},
		Mixtures: map[int32]uncertain.Mixture{2: {{Weight: 1, Mean: 1, Sigma: 1}}},
	}
}

func copyArtifact(a *Artifact) *Artifact {
	c := *a
	c.RepOf = append([]int32(nil), a.RepOf...)
	c.Retained = append([]int32(nil), a.Retained...)
	c.Exact = make(map[int32]float64, len(a.Exact))
	for k, v := range a.Exact {
		c.Exact[k] = v
	}
	c.Mixtures = make(map[int32]uncertain.Mixture, len(a.Mixtures))
	for k, v := range a.Mixtures {
		c.Mixtures[k] = v
	}
	return &c
}

// FuzzArtifactAppend: for any decodable tail, Append either merges and
// the merged artifact satisfies every structural invariant, or rejects
// and leaves the receiver bit-identical — never a panic, never a
// silently corrupted artifact.
func FuzzArtifactAppend(f *testing.F) {
	// A valid 3-frame tail: RepOf covers it, Retained ascending.
	f.Add([]byte{3, 3, 4, 4, 6, 4, 5, 6})
	// RepOf length disagrees with TotalFrames.
	f.Add([]byte{5, 2, 4, 4})
	// Out-of-range representative (byte 3 → rep -1).
	f.Add([]byte{2, 2, 3, 4})
	// Unordered Retained entries.
	f.Add([]byte{8, 8, 4, 4, 4, 4, 5, 5, 5, 5, 9, 4, 4, 7, 4, 4})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		base := fuzzBase()
		if err := base.check(); err != nil {
			t.Fatalf("fuzz base invalid: %v", err)
		}
		snap := copyArtifact(base)
		tail := artifactFromBytes(data)
		wrongLo := len(data) > 0 && data[len(data)-1]%5 == 0

		lo := base.TotalFrames
		if wrongLo {
			lo++
		}
		err := base.Append(tail, lo)
		if wrongLo && err == nil {
			t.Fatal("append at wrong offset accepted")
		}
		if err != nil {
			if !reflect.DeepEqual(base, snap) {
				t.Fatalf("rejected append mutated the artifact: %v", err)
			}
			return
		}
		if cerr := base.check(); cerr != nil {
			t.Fatalf("accepted append broke invariants: %v", cerr)
		}
		if base.TotalFrames != snap.TotalFrames+tail.TotalFrames {
			t.Fatalf("frame count %d after appending %d to %d", base.TotalFrames, tail.TotalFrames, snap.TotalFrames)
		}
	})
}
