package engine

import (
	"reflect"
	"testing"
	"time"

	"github.com/everest-project/everest/internal/core"
)

// FuzzPlanNormalize fuzzes the plan compiler's contract: whatever shape
// the raw config takes, NewPlan either rejects it or returns a plan
// that is normalized (idempotently), self-consistently validated, and
// carries a sound bound kind — overlapping windows can never slip
// through with the independent bound, and a scheduling wait budget can
// never go negative.
func FuzzPlanNormalize(f *testing.F) {
	f.Add(5, 0.9, 0, 0, false, int64(0))
	f.Add(10, 0.99, 30, 0, false, int64(time.Millisecond))
	f.Add(3, 0.5, 300, 30, true, int64(-1))
	f.Add(0, 0.0, -1, -5, false, int64(-time.Hour))
	f.Add(1, 1.0, 1, 1, true, int64(time.Second))
	f.Fuzz(func(t *testing.T, k int, thres float64, window, stride int, union bool, waitNS int64) {
		p, err := NewPlan(Plan{
			K:               k,
			Threshold:       thres,
			Window:          WindowSpec{Size: window, Stride: stride},
			ForceUnionBound: union,
			CoalesceWait:    time.Duration(waitNS),
		})
		if err != nil {
			return
		}
		if again := p.Normalize(); !reflect.DeepEqual(again, p) {
			t.Fatalf("Normalize not idempotent: %+v vs %+v", again, p)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("NewPlan returned an invalid plan: %v", err)
		}
		if p.Window.Enabled() && p.Window.Stride <= 0 {
			t.Fatalf("windowed plan kept an unset stride: %+v", p.Window)
		}
		if !p.Window.Enabled() && p.Window.Stride != 0 {
			t.Fatalf("frame plan kept a stride: %+v", p.Window)
		}
		if p.CoalesceWait < 0 {
			t.Fatalf("negative coalesce wait survived normalization: %v", p.CoalesceWait)
		}
		if p.Window.Overlapping() && p.Bound() != core.BoundUnion {
			t.Fatalf("overlapping windows with bound %v", p.Bound())
		}
		if union && p.Bound() != core.BoundUnion {
			t.Fatal("ForceUnionBound dropped")
		}
		if !Compatible(p, p) {
			t.Fatal("a plan must be compatible with itself")
		}
	})
}
