package engine

import (
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/core"
)

// FuzzPlanNormalize fuzzes the plan compiler's contract: whatever shape
// the raw config takes, NewPlan either rejects it or returns a plan
// that is normalized (idempotently), self-consistently validated, and
// carries a sound bound kind — overlapping windows can never slip
// through with the independent bound.
func FuzzPlanNormalize(f *testing.F) {
	f.Add(5, 0.9, 0, 0, false)
	f.Add(10, 0.99, 30, 0, false)
	f.Add(3, 0.5, 300, 30, true)
	f.Add(0, 0.0, -1, -5, false)
	f.Add(1, 1.0, 1, 1, true)
	f.Fuzz(func(t *testing.T, k int, thres float64, window, stride int, union bool) {
		p, err := NewPlan(Plan{
			K:               k,
			Threshold:       thres,
			Window:          WindowSpec{Size: window, Stride: stride},
			ForceUnionBound: union,
		})
		if err != nil {
			return
		}
		if again := p.Normalize(); !reflect.DeepEqual(again, p) {
			t.Fatalf("Normalize not idempotent: %+v vs %+v", again, p)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("NewPlan returned an invalid plan: %v", err)
		}
		if p.Window.Enabled() && p.Window.Stride <= 0 {
			t.Fatalf("windowed plan kept an unset stride: %+v", p.Window)
		}
		if !p.Window.Enabled() && p.Window.Stride != 0 {
			t.Fatalf("frame plan kept a stride: %+v", p.Window)
		}
		if p.Window.Overlapping() && p.Bound() != core.BoundUnion {
			t.Fatalf("overlapping windows with bound %v", p.Bound())
		}
		if union && p.Bound() != core.BoundUnion {
			t.Fatal("ForceUnionBound dropped")
		}
		if !Compatible(p, p) {
			t.Fatal("a plan must be compatible with itself")
		}
	})
}
