// Package simclock provides the simulated-cost accounting substrate.
//
// The paper's evaluation runs on a GTX 1080 Ti where the oracle (YOLOv3)
// processes ~5 frames/second while the specialized proxy runs two orders of
// magnitude faster. This reproduction has no GPU, so all reported "runtimes"
// and speedups are expressed in simulated milliseconds of accelerator+decode
// time charged through a Clock. Each component (decoder, difference
// detector, proxy, oracle, baselines) charges its per-frame cost to a named
// phase, which yields both end-to-end latency (Fig. 4–9) and the phase
// breakdown of Table 8.
//
// The default cost model is calibrated so that the *relative* costs match
// the paper's hardware: oracle ≈ 200 ms/frame (5 fps), video decode ≈ 6
// ms/frame (the paper notes decode becomes the bottleneck once the CMDN is
// small), CMDN inference ≈ 3 ms/frame, CMDN training ≈ 18 ms per sample
// epoch. Absolute wall-clock is irrelevant; the shape (who wins and by what
// factor) is what the model preserves.
package simclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Phase identifies a stage of query execution for the Table 8 breakdown.
type Phase string

// Phases used by the Everest pipeline. Baselines use their own phases.
const (
	PhaseLabelSamples Phase = "phase1/label-samples-by-oracle"
	PhaseTrainCMDN    Phase = "phase1/train-cmdn"
	PhasePopulateD0   Phase = "phase1/populate-d0-by-cmdn"
	PhaseDiffDetect   Phase = "phase1/difference-detector"
	PhaseSelect       Phase = "phase2/select-candidate"
	PhaseConfirm      Phase = "phase2/confirm-by-oracle"
	PhaseTopkProb     Phase = "phase2/topk-prob"
	// PhaseRetryBackoff accounts the simulated waits the retry layer
	// inserts between oracle dispatch attempts after transient failures.
	// Zero on the golden path — it appears only when faults fire.
	PhaseRetryBackoff  Phase = "phase2/retry-backoff"
	PhaseBaselineScan  Phase = "baseline/scan"
	PhaseBaselineTrain Phase = "baseline/train"
)

// CostModel holds per-operation simulated costs in milliseconds.
type CostModel struct {
	// OracleMS is the accurate detector's per-frame inference cost
	// (YOLOv3-class model at ~5 fps, fully batched throughput).
	OracleMS float64
	// OracleCallMS is the fixed overhead of one oracle invocation (kernel
	// launch, host↔device transfer, pipeline fill). Batching b frames per
	// call amortizes it — the reason §3.5 batches Phase 2 cleaning.
	OracleCallMS float64
	// DecodeMS is the per-frame video decode cost.
	DecodeMS float64
	// DiffMS is the per-frame difference-detector (pixel MSE) cost.
	DiffMS float64
	// ProxyMS is the CMDN's per-frame inference cost.
	ProxyMS float64
	// ProxyTrainSampleMS is the CMDN training cost per (sample × epoch),
	// summed across the 12 hyperparameter configurations.
	ProxyTrainSampleMS float64
	// TinyMS is the TinyYOLOv3-class baseline's per-frame cost.
	TinyMS float64
	// HOGMS is the HOG+SVM baseline's per-frame cost (hundreds of SVM
	// evaluations over sub-regions make it slower than the deep proxy).
	HOGMS float64
	// SpecializedNNMS is the per-frame cost of a NoScope-style specialized
	// binary classifier used by the Select-and-Topk baseline.
	SpecializedNNMS float64
	// SelectPerFrameMS is the algorithmic cost of scoring one candidate in
	// Select-candidate (Eq. 6); it is orders of magnitude below inference.
	SelectPerFrameMS float64
}

// Default returns the calibrated cost model described in the package
// comment.
func Default() CostModel {
	return CostModel{
		OracleMS:           200,  // 5 fps
		OracleCallMS:       160,  // per-invocation overhead
		DecodeMS:           6,    // decode dominates once the proxy is small
		DiffMS:             0.4,  // pixel MSE on a decoded frame
		ProxyMS:            3,    // specialized CMDN inference
		ProxyTrainSampleMS: 18,   // all 12 configs, per sample-epoch
		TinyMS:             22,   // TinyYOLOv3 ≈ 45 fps
		HOGMS:              260,  // hundreds of SVM sub-region evaluations
		SpecializedNNMS:    2,    // NoScope specialized model
		SelectPerFrameMS:   1e-4, // CPU-side arithmetic per candidate
	}
}

// Cost-prediction helpers: the arithmetic a planner (or EXPLAIN) uses
// to price work on this model BEFORE running it. They mirror how the
// pipeline charges its clock — per-frame inference plus a per-invocation
// launch overhead — so a prediction and the actual charge differ only by
// how well the tuple counts were estimated, never by the pricing rule.

// Batches returns how many oracle invocations confirming items tuples
// takes at batch size batch (ceil division; §3.5's b). Zero items need
// zero invocations; a non-positive batch is treated as 1.
func Batches(items, batch int) int {
	if items <= 0 {
		return 0
	}
	if batch <= 0 {
		batch = 1
	}
	return (items + batch - 1) / batch
}

// LaunchOverheadMS prices the fixed per-invocation overhead of the given
// number of oracle launches — the cost §3.5's batching amortizes.
func (m CostModel) LaunchOverheadMS(launches int) float64 {
	return float64(launches) * m.OracleCallMS
}

// ConfirmMS prices a Phase 2 confirmation workload: frames scored by an
// oracle charging udfFrameMS per frame, dispatched in the given number
// of launches.
func (m CostModel) ConfirmMS(frames, launches int, udfFrameMS float64) float64 {
	return float64(frames)*udfFrameMS + m.LaunchOverheadMS(launches)
}

// LabelMS prices Phase 1 sample labelling: each sample is decoded and
// scored by the oracle.
func (m CostModel) LabelMS(samples int, udfFrameMS float64) float64 {
	return float64(samples) * (udfFrameMS + m.DecodeMS)
}

// TrainMS prices CMDN grid training over samples, mirroring the charge
// cmdn.Train makes: ProxyTrainSampleMS per sample, with the epoch and
// hyperparameter-grid factors baked into the constant.
func (m CostModel) TrainMS(samples int) float64 {
	return float64(samples) * m.ProxyTrainSampleMS
}

// CascadeMS prices the ingest proxy cascade over a video of frames
// frames, of which retained survive the difference detector. Depth 3
// (decode → diff → proxy, disableDiff false) diff-filters every decoded
// frame and proxy-scores only the retained; depth 2 (decode → proxy)
// skips the filter and proxy-scores everything.
func (m CostModel) CascadeMS(frames, retained int, disableDiff bool) float64 {
	ms := float64(frames) * m.DecodeMS
	if disableDiff {
		return ms + float64(frames)*m.ProxyMS
	}
	return ms + float64(frames)*m.DiffMS + float64(retained)*m.ProxyMS
}

// Clock accumulates simulated milliseconds per phase. It is safe for
// concurrent use.
type Clock struct {
	mu    sync.Mutex
	total float64
	byPh  map[Phase]float64
}

// NewClock returns an empty clock.
func NewClock() *Clock {
	return &Clock{byPh: make(map[Phase]float64)}
}

// Charge adds ms simulated milliseconds to the given phase.
func (c *Clock) Charge(ph Phase, ms float64) {
	if ms < 0 {
		panic(fmt.Sprintf("simclock: negative charge %v to %s", ms, ph))
	}
	c.mu.Lock()
	c.total += ms
	c.byPh[ph] += ms
	c.mu.Unlock()
}

// TotalMS returns the total simulated milliseconds charged so far.
func (c *Clock) TotalMS() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// PhaseMS returns the simulated milliseconds charged to a phase.
func (c *Clock) PhaseMS(ph Phase) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byPh[ph]
}

// Breakdown returns each phase's share of the total, in deterministic
// (sorted) order. Shares sum to 1 when total > 0.
func (c *Clock) Breakdown() []PhaseShare {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PhaseShare, 0, len(c.byPh))
	for ph, ms := range c.byPh {
		share := 0.0
		if c.total > 0 {
			share = ms / c.total
		}
		out = append(out, PhaseShare{Phase: ph, MS: ms, Share: share})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// PhaseShare reports one phase's absolute and relative cost.
type PhaseShare struct {
	Phase Phase
	MS    float64
	Share float64
}

// String renders the breakdown as a small table.
func (c *Clock) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total %.1f ms\n", c.TotalMS())
	for _, ps := range c.Breakdown() {
		fmt.Fprintf(&b, "  %-36s %12.1f ms  %6.2f%%\n", ps.Phase, ps.MS, 100*ps.Share)
	}
	return b.String()
}

// Reset clears all accumulated charges.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.total = 0
	c.byPh = make(map[Phase]float64)
	c.mu.Unlock()
}

// ChargeParallelMax folds a parallel stage into this clock under a
// bulk-synchronous (BSP) model: the stage's workers run each phase
// concurrently with a barrier between phases, so the stage's wall-clock
// contribution per phase is the maximum over the workers' clocks. This is
// how the scale-out executor accounts for P accelerators running Phase 1
// shards side by side. Total worker time (the paid bill, as opposed to
// elapsed time) is the sum of the workers' totals and is returned for
// reporting.
func (c *Clock) ChargeParallelMax(workers []*Clock) (sumMS float64) {
	maxByPh := make(map[Phase]float64)
	for _, w := range workers {
		if w == nil {
			continue
		}
		sumMS += w.TotalMS()
		for _, ps := range w.Breakdown() {
			if ps.MS > maxByPh[ps.Phase] {
				maxByPh[ps.Phase] = ps.MS
			}
		}
	}
	// Deterministic charge order.
	phases := make([]Phase, 0, len(maxByPh))
	for ph := range maxByPh {
		phases = append(phases, ph)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, ph := range phases {
		c.Charge(ph, maxByPh[ph])
	}
	return sumMS
}
