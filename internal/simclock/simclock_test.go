package simclock

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestChargeAccumulates(t *testing.T) {
	c := NewClock()
	c.Charge(PhaseConfirm, 10)
	c.Charge(PhaseConfirm, 5)
	c.Charge(PhaseSelect, 2)
	if got := c.PhaseMS(PhaseConfirm); got != 15 {
		t.Fatalf("PhaseMS(confirm) = %v, want 15", got)
	}
	if got := c.TotalMS(); got != 17 {
		t.Fatalf("TotalMS = %v, want 17", got)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	NewClock().Charge(PhaseSelect, -1)
}

func TestBreakdownSharesSumToOne(t *testing.T) {
	c := NewClock()
	c.Charge(PhaseLabelSamples, 100)
	c.Charge(PhaseTrainCMDN, 300)
	c.Charge(PhasePopulateD0, 500)
	c.Charge(PhaseConfirm, 100)
	sum := 0.0
	for _, ps := range c.Breakdown() {
		sum += ps.Share
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestBreakdownEmptyClock(t *testing.T) {
	c := NewClock()
	if len(c.Breakdown()) != 0 {
		t.Fatal("empty clock should have empty breakdown")
	}
	if c.TotalMS() != 0 {
		t.Fatal("empty clock total should be 0")
	}
}

func TestBreakdownDeterministicOrder(t *testing.T) {
	c := NewClock()
	c.Charge(PhaseSelect, 1)
	c.Charge(PhaseConfirm, 1)
	c.Charge(PhaseLabelSamples, 1)
	b := c.Breakdown()
	for i := 1; i < len(b); i++ {
		if b[i-1].Phase >= b[i].Phase {
			t.Fatalf("breakdown not sorted: %v before %v", b[i-1].Phase, b[i].Phase)
		}
	}
}

func TestConcurrentCharge(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge(PhaseConfirm, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.TotalMS(); got != 8000 {
		t.Fatalf("concurrent total = %v, want 8000", got)
	}
}

func TestReset(t *testing.T) {
	c := NewClock()
	c.Charge(PhaseSelect, 42)
	c.Reset()
	if c.TotalMS() != 0 || c.PhaseMS(PhaseSelect) != 0 {
		t.Fatal("Reset did not clear charges")
	}
}

func TestStringContainsPhases(t *testing.T) {
	c := NewClock()
	c.Charge(PhaseTrainCMDN, 5)
	s := c.String()
	if !strings.Contains(s, string(PhaseTrainCMDN)) {
		t.Fatalf("String() missing phase name: %q", s)
	}
}

func TestDefaultModelOrdering(t *testing.T) {
	m := Default()
	// The cost model must preserve the paper's cost ordering:
	// oracle >> tiny > decode > proxy > diff; HOG is oracle-scale.
	if !(m.OracleMS > m.TinyMS && m.TinyMS > m.DecodeMS && m.DecodeMS > m.ProxyMS && m.ProxyMS > m.DiffMS) {
		t.Fatalf("cost ordering violated: %+v", m)
	}
	if m.HOGMS < m.OracleMS {
		t.Fatalf("HOG should be oracle-scale or slower, got %v vs %v", m.HOGMS, m.OracleMS)
	}
	if m.OracleMS/m.ProxyMS < 20 {
		t.Fatalf("oracle/proxy ratio too small for specialization to pay off: %v", m.OracleMS/m.ProxyMS)
	}
}

func TestChargeParallelMaxBSP(t *testing.T) {
	w1 := NewClock()
	w1.Charge(PhaseLabelSamples, 100)
	w1.Charge(PhaseTrainCMDN, 50)
	w2 := NewClock()
	w2.Charge(PhaseLabelSamples, 80)
	w2.Charge(PhaseTrainCMDN, 70)
	w2.Charge(PhasePopulateD0, 10)

	c := NewClock()
	sum := c.ChargeParallelMax([]*Clock{w1, w2, nil})
	if sum != 310 {
		t.Fatalf("sum of worker totals = %v, want 310", sum)
	}
	if got := c.PhaseMS(PhaseLabelSamples); got != 100 {
		t.Fatalf("label phase = %v, want max 100", got)
	}
	if got := c.PhaseMS(PhaseTrainCMDN); got != 70 {
		t.Fatalf("train phase = %v, want max 70", got)
	}
	if got := c.PhaseMS(PhasePopulateD0); got != 10 {
		t.Fatalf("populate phase = %v, want 10", got)
	}
	if got := c.TotalMS(); got != 180 {
		t.Fatalf("BSP wall total = %v, want 180 (sum of per-phase maxima)", got)
	}
}

func TestChargeParallelMaxSingleWorkerEqualsSerial(t *testing.T) {
	w := NewClock()
	w.Charge(PhaseLabelSamples, 42)
	w.Charge(PhaseConfirm, 8)
	c := NewClock()
	sum := c.ChargeParallelMax([]*Clock{w})
	if sum != 50 || c.TotalMS() != 50 {
		t.Fatalf("single-worker merge: sum=%v total=%v, want 50/50", sum, c.TotalMS())
	}
}

func TestChargeParallelMaxEmpty(t *testing.T) {
	c := NewClock()
	if sum := c.ChargeParallelMax(nil); sum != 0 || c.TotalMS() != 0 {
		t.Fatal("empty merge must be a no-op")
	}
}

func TestBatchesCeilDivision(t *testing.T) {
	cases := []struct{ items, batch, want int }{
		{0, 8, 0}, {-3, 8, 0}, {1, 8, 1}, {8, 8, 1}, {9, 8, 2},
		{23, 8, 3}, {23, 1, 23}, {5, 0, 5}, {5, -2, 5},
	}
	for _, c := range cases {
		if got := Batches(c.items, c.batch); got != c.want {
			t.Fatalf("Batches(%d, %d) = %d, want %d", c.items, c.batch, got, c.want)
		}
	}
}

// TestConfirmMSMatchesCleanCharge pins the prediction helpers to the
// pricing rule the Phase 2 loop actually charges: per-frame inference
// plus one launch overhead per invocation.
func TestConfirmMSMatchesCleanCharge(t *testing.T) {
	m := Default()
	frames, batch := 23, 8
	launches := Batches(frames, batch)
	want := float64(frames)*m.OracleMS + float64(launches)*m.OracleCallMS
	if got := m.ConfirmMS(frames, launches, m.OracleMS); got != want {
		t.Fatalf("ConfirmMS = %v, want %v", got, want)
	}
	if got := m.LaunchOverheadMS(launches); got != float64(launches)*m.OracleCallMS {
		t.Fatalf("LaunchOverheadMS = %v", got)
	}
}

func TestCascadeMSDepths(t *testing.T) {
	m := Default()
	frames, retained := 1000, 600
	depth3 := m.CascadeMS(frames, retained, false)
	depth2 := m.CascadeMS(frames, retained, true)
	if want := 1000*m.DecodeMS + 1000*m.DiffMS + 600*m.ProxyMS; depth3 != want {
		t.Fatalf("depth-3 cascade = %v, want %v", depth3, want)
	}
	if want := 1000 * (m.DecodeMS + m.ProxyMS); depth2 != want {
		t.Fatalf("depth-2 cascade = %v, want %v", depth2, want)
	}
	// Under the default model the diff filter pays for itself whenever it
	// prunes frames: diffing everything is cheaper than proxy-scoring the
	// pruned share.
	if depth3 >= depth2 {
		t.Fatalf("diff filter should win at 60%% retention: depth3 %v vs depth2 %v", depth3, depth2)
	}
}

func TestLabelAndTrainMS(t *testing.T) {
	m := Default()
	if got, want := m.LabelMS(120, m.OracleMS), 120*(m.OracleMS+m.DecodeMS); got != want {
		t.Fatalf("LabelMS = %v, want %v", got, want)
	}
	if got, want := m.TrainMS(660), 660.0*m.ProxyTrainSampleMS; got != want {
		t.Fatalf("TrainMS = %v, want %v", got, want)
	}
}
