// Package skyline implements the probabilistic skyline over uncertain
// video scores — the future-work direction named in the paper's
// conclusion (§5, citing Bartolini et al. [6]): "finding the skyline from
// such uncertain video data".
//
// A tuple (frame) with d uncertain score dimensions — say car count and
// pedestrian count — belongs to the probabilistic skyline with the
// probability that no other tuple dominates it. With independent x-tuples
// (the difference detector's independence argument extends dimension-wise)
// the probability factors exactly:
//
//	Pr(t in skyline) = Σ_v Pr(t = v) · Π_{u≠t} (1 − Pr(u ≻ v))
//	Pr(u ≻ v)        = Π_i Pr(u_i ≥ v_i) − Π_i Pr(u_i = v_i)
//
// where u ≻ v means u is at least as large on every dimension and
// strictly larger on at least one. Complexity is O(n²·s^d) for support
// size s; the operator targets relation sizes in the thousands (post
// difference-detector), matching its exploratory role.
package skyline

import (
	"fmt"
	"sort"

	"github.com/everest-project/everest/internal/uncertain"
)

// Tuple is one item with d independent uncertain score dimensions.
type Tuple struct {
	// ID identifies the frame or window.
	ID int
	// Dims are the per-dimension score distributions (larger is better).
	Dims []uncertain.Dist
}

// Relation is a set of independent multi-dimensional tuples.
type Relation []Tuple

// Validate checks dimensional consistency.
func (r Relation) Validate() error {
	if len(r) == 0 {
		return fmt.Errorf("skyline: empty relation")
	}
	d := len(r[0].Dims)
	if d == 0 {
		return fmt.Errorf("skyline: tuple %d has no dimensions", r[0].ID)
	}
	for _, t := range r {
		if len(t.Dims) != d {
			return fmt.Errorf("skyline: tuple %d has %d dimensions, want %d", t.ID, len(t.Dims), d)
		}
		for i, dist := range t.Dims {
			if err := dist.Validate(); err != nil {
				return fmt.Errorf("skyline: tuple %d dim %d: %w", t.ID, i, err)
			}
		}
	}
	return nil
}

// dominationProb returns Pr(u ≻ v): u at least ties v everywhere and
// beats it somewhere.
func dominationProb(u Tuple, v []int) float64 {
	geAll := 1.0
	eqAll := 1.0
	for i, d := range u.Dims {
		ge := 1 - d.CDF(v[i]-1) // Pr(u_i >= v_i)
		geAll *= ge
		eqAll *= d.Pr(v[i])
		if geAll == 0 {
			return 0
		}
	}
	p := geAll - eqAll
	if p < 0 {
		p = 0 // float drift
	}
	return p
}

// Membership returns each tuple's probability of belonging to the
// skyline, in relation order.
func Membership(rel Relation) ([]float64, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, len(rel))
	for ti, t := range rel {
		out[ti] = membershipOf(rel, ti, t)
	}
	return out, nil
}

func membershipOf(rel Relation, ti int, t Tuple) float64 {
	// Enumerate t's value vectors (product of its supports).
	v := make([]int, len(t.Dims))
	total := 0.0
	var rec func(dim int, prob float64)
	rec = func(dim int, prob float64) {
		if prob == 0 {
			return
		}
		if dim == len(t.Dims) {
			notDom := 1.0
			for ui, u := range rel {
				if ui == ti {
					continue
				}
				notDom *= 1 - dominationProb(u, v)
				if notDom == 0 {
					break
				}
			}
			total += prob * notDom
			return
		}
		d := t.Dims[dim]
		for lvl := d.Min; lvl <= d.Max(); lvl++ {
			p := d.Pr(lvl)
			if p == 0 {
				continue
			}
			v[dim] = lvl
			rec(dim+1, prob*p)
		}
	}
	rec(0, 1)
	if total > 1 {
		total = 1
	}
	return total
}

// Result is one skyline member.
type Result struct {
	// ID is the tuple's identifier.
	ID int
	// Probability is Pr(tuple in skyline).
	Probability float64
}

// Query returns the tuples whose skyline-membership probability is at
// least p, ordered by probability descending (ties by ascending ID) —
// the probabilistic-threshold skyline of [6].
func Query(rel Relation, p float64) ([]Result, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("skyline: probability threshold %v must be in (0,1]", p)
	}
	probs, err := Membership(rel)
	if err != nil {
		return nil, err
	}
	var out []Result
	for i, pr := range probs {
		if pr >= p {
			out = append(out, Result{ID: rel[i].ID, Probability: pr})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Probability != out[b].Probability {
			return out[a].Probability > out[b].Probability
		}
		return out[a].ID < out[b].ID
	})
	return out, nil
}
