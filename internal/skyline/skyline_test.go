package skyline

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/xrand"
)

func certTuple(id int, vals ...int) Tuple {
	dims := make([]uncertain.Dist, len(vals))
	for i, v := range vals {
		dims[i] = uncertain.Certain(v)
	}
	return Tuple{ID: id, Dims: dims}
}

func TestValidate(t *testing.T) {
	if err := (Relation{}).Validate(); err == nil {
		t.Fatal("empty relation should fail")
	}
	bad := Relation{certTuple(0, 1, 2), certTuple(1, 1)}
	if err := bad.Validate(); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestCertainSkyline(t *testing.T) {
	// Classic certain case: (5,1), (1,5) are skyline; (1,1) is dominated;
	// (5,5) dominates everything.
	rel := Relation{
		certTuple(0, 5, 1),
		certTuple(1, 1, 5),
		certTuple(2, 1, 1),
		certTuple(3, 5, 5),
	}
	probs, err := Membership(rel)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 0, 1}
	// (5,1) and (1,5) are dominated by (5,5)? (5,5) ≥ both dims and > on
	// one → yes, dominated.
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Fatalf("probs = %v, want %v", probs, want)
		}
	}
}

func TestCertainSkylineNoDominator(t *testing.T) {
	rel := Relation{
		certTuple(0, 5, 1),
		certTuple(1, 1, 5),
		certTuple(2, 3, 3),
	}
	probs, err := Membership(rel)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if p != 1 {
			t.Fatalf("tuple %d: prob %v, want 1 (pairwise incomparable)", i, p)
		}
	}
}

func TestTiesDoNotDominate(t *testing.T) {
	// Identical tuples tie on all dimensions: neither dominates.
	rel := Relation{certTuple(0, 3, 3), certTuple(1, 3, 3)}
	probs, err := Membership(rel)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 1 || probs[1] != 1 {
		t.Fatalf("tied tuples should both be skyline: %v", probs)
	}
}

// bruteMembership enumerates the joint worlds of the whole relation.
func bruteMembership(rel Relation) []float64 {
	// Flatten all dists into one world enumeration.
	var flat uncertain.Relation
	for ti, t := range rel {
		for di, d := range t.Dims {
			flat = append(flat, uncertain.XTuple{ID: ti*8 + di, Dist: d})
		}
	}
	d := len(rel[0].Dims)
	out := make([]float64, len(rel))
	uncertain.EnumerateWorlds(flat, func(w uncertain.World) {
		for ti := range rel {
			dominated := false
			for ui := range rel {
				if ui == ti {
					continue
				}
				geAll, gtAny := true, false
				for di := 0; di < d; di++ {
					uv := w.Levels[ui*d+di]
					tv := w.Levels[ti*d+di]
					if uv < tv {
						geAll = false
						break
					}
					if uv > tv {
						gtAny = true
					}
				}
				if geAll && gtAny {
					dominated = true
					break
				}
			}
			if !dominated {
				out[ti] += w.Prob
			}
		}
	})
	return out
}

func randomDist(r *xrand.RNG) uncertain.Dist {
	n := 1 + r.Intn(3)
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 0.1 + r.Float64()
	}
	return uncertain.MustDist(r.Intn(4), probs)
}

func TestMembershipMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(3)
		rel := make(Relation, n)
		for i := range rel {
			rel[i] = Tuple{ID: i, Dims: []uncertain.Dist{randomDist(r), randomDist(r)}}
		}
		got, err := Membership(rel)
		if err != nil {
			return false
		}
		want := bruteMembership(rel)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryThresholding(t *testing.T) {
	rel := Relation{
		certTuple(0, 5, 5),
		certTuple(1, 1, 1),
		{ID: 2, Dims: []uncertain.Dist{
			uncertain.MustDist(4, []float64{0.5, 0, 0.5}), // 4 or 6
			uncertain.Certain(4),
		}},
	}
	res, err := Query(rel, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple 0 is skyline with prob 1; tuple 2 with prob 0.5 (when it draws
	// a 6 in dim 0 it is incomparable with (5,5)); tuple 1 never.
	if len(res) != 2 || res[0].ID != 0 || res[1].ID != 2 {
		t.Fatalf("Query = %+v", res)
	}
	if math.Abs(res[1].Probability-0.5) > 1e-12 {
		t.Fatalf("tuple 2 prob %v, want 0.5", res[1].Probability)
	}
	if _, err := Query(rel, 0); err == nil {
		t.Fatal("threshold 0 should fail")
	}
}

func TestQueryOrdering(t *testing.T) {
	rel := Relation{
		{ID: 7, Dims: []uncertain.Dist{uncertain.MustDist(0, []float64{0.3, 0.7}), uncertain.Certain(9)}},
		certTuple(3, 9, 0),
		certTuple(5, 9, 0), // tie with 3 → both skyline, ordered by ID
	}
	res, err := Query(rel, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Probability < res[i].Probability {
			t.Fatalf("not ordered by probability: %+v", res)
		}
	}
}
