package eql

import (
	"fmt"
	"strings"

	"github.com/everest-project/everest/internal/eql/planner"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/windows"
)

// plannedSamples mirrors Phase 1's sampling arithmetic (fraction,
// floor, cap, holdout) so cost predictions price the label bill the
// engine will actually pay.
func plannedSamples(sampleFrac float64, minSamples, sampleCap, n int) int {
	if sampleFrac == 0 {
		sampleFrac = 0.02
	}
	trainN := int(sampleFrac * float64(n))
	floor := minSamples
	if floor == 0 {
		floor = 600
	}
	if trainN < floor {
		trainN = floor
	}
	ceil := sampleCap
	if ceil == 0 {
		ceil = 30000
	}
	if trainN > ceil {
		trainN = ceil
	}
	holdN := trainN / 10
	if holdN < 100 {
		holdN = 100
	}
	return trainN + holdN
}

// plannerInput assembles the planner's view of a bound plan. Callers
// holding an index refine it with measured Phase 1 statistics.
func plannerInput(plan *Plan) planner.Input {
	cfg := plan.Config
	cost := cfg.Cost
	if cost == (simclock.CostModel{}) {
		cost = simclock.Default()
	}
	n := plan.Source.NumFrames()
	return planner.Input{
		Frames:           n,
		K:                cfg.K,
		Window:           cfg.Window,
		Stride:           cfg.Stride,
		WindowSampleFrac: cfg.WindowSampleFrac,
		UDFFrameMS:       plan.UDF.OracleCostMS(cost),
		Cost:             cost,
		TrainSamples:     plannedSamples(cfg.SampleFrac, cfg.MinSamples, cfg.SampleCap, n),
	}
}

// unitPlannerInput assembles the planner's view of one script plan
// unit.
func unitPlannerInput(u *Unit) planner.Input {
	return plannerInput(&Plan{Source: u.Source, UDF: u.UDF, Config: u.Config, Workers: u.Workers})
}

// candidateTable renders a planner enumeration as the table EXPLAIN and
// EXPLAIN ANALYZE share.
func candidateTable(b *strings.Builder, cands []planner.Candidate) {
	b.WriteString("  candidates (batch × cascade, predicted §3.5 cost):\n")
	fmt.Fprintf(b, "    %5s  %-26s  %8s  %12s  %s\n", "batch", "cascade", "launches", "predicted-ms", "")
	for _, c := range cands {
		mark := ""
		if c.Chosen {
			mark = "← chosen"
		}
		fmt.Fprintf(b, "    %5d  %-26s  %8d  %12.0f  %s\n",
			c.Knobs.BatchSize, planner.CascadeName(c.Knobs.DisableDiff),
			c.Pred.Launches, c.Pred.TotalMS, mark)
	}
}

// Explain parses and binds an EQL statement (with or without the EXPLAIN
// keyword) and renders the execution plan without running it: the bound
// dataset and UDF, the query shape (frames vs windows, stride, bound
// kind, scale-out degree), and the planner's knob choices with their
// predicted costs under the simulated cost model — the candidate table,
// the chosen batch size and cascade depth, the Phase 1 bill, the
// expected Phase 2 oracle bill, and the naive scan-and-test cost the
// optimizer avoids. Phase 2's actual bill depends on the score
// distribution; EXPLAIN ANALYZE (Analyze) runs the chosen plan and
// reports predicted vs actual.
func Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := Bind(q)
	if err != nil {
		return "", err
	}

	in := plannerInput(plan)
	in.Concurrency = 1
	if plan.Workers > 1 {
		in.PinProcs = plan.Workers
	}
	chosen := planner.Choose(in)
	cands := planner.Enumerate(in)

	cost := in.Cost
	n := in.Frames
	scanMS := float64(n) * (in.UDFFrameMS + cost.DecodeMS)

	var b strings.Builder
	fmt.Fprintf(&b, "plan: everest top-%d", q.K)
	if q.Window > 0 {
		stride := q.Stride
		if stride == 0 {
			stride = q.Window
		}
		fmt.Fprintf(&b, " windows(size=%d stride=%d", q.Window, stride)
		if (windows.Options{Size: q.Window, Stride: stride}).Overlapping() {
			b.WriteString(" overlapping → union bound")
		}
		b.WriteString(")")
	} else {
		b.WriteString(" frames")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  dataset   %s (%d frames, %d fps)\n", plan.Source.Name(), n, plan.Source.FPS())
	fmt.Fprintf(&b, "  rank by   %s\n", plan.UDF.Name())
	thres := q.Threshold
	if thres == 0 {
		thres = 0.9
	}
	fmt.Fprintf(&b, "  guarantee Pr(result = exact top-k) ≥ %.2f, certain-result condition\n", thres)
	if plan.Workers > 1 {
		fmt.Fprintf(&b, "  scale-out %d workers (partitioned phase 1, parallel cleaning)\n", plan.Workers)
	}
	fmt.Fprintf(&b, "  phase 1   label ≈%d samples + train grid + cascade %s ≈ %.0f ms\n",
		in.TrainSamples, planner.CascadeName(chosen.Knobs.DisableDiff), chosen.Pred.Phase1MS)
	fmt.Fprintf(&b, "  phase 2   batch %d → ≈%d confirmations in %d launches ≈ %.0f ms (bill depends on score skew; typically <2%% of frames)\n",
		chosen.Knobs.BatchSize, chosen.Pred.Cleaned, chosen.Pred.Launches, chosen.Pred.ConfirmMS)
	fmt.Fprintf(&b, "  baseline  scan-and-test would cost %.0f ms\n", scanMS)
	candidateTable(&b, cands)
	b.WriteString("  reasons:\n")
	for _, w := range chosen.Why {
		fmt.Fprintf(&b, "    - %s\n", w)
	}
	return b.String(), nil
}

// ExplainScript parses and binds a whole script and renders its
// coordinated plan graph without running it: every statement's units,
// the relations they share, the one serving budget the set planner
// chose, and the predicted coordinated-vs-independent cost with the
// shared-work breakdown. Observed in-flight arrivals are 0 here (no
// session is attached); ExecScript re-prices with the live count.
func ExplainScript(src string) (string, error) {
	script, err := ParseScript(src)
	if err != nil {
		return "", err
	}
	sp, err := BindScript(script)
	if err != nil {
		return "", err
	}
	return explainScriptPlan(sp), nil
}

// explainScriptPlan renders a bound script's plan graph with the joint
// budget and shared-work cost table.
func explainScriptPlan(sp *ScriptPlan) string {
	// Every relation-bound unit participates: the whole script is being
	// explained, so EXPLAIN statements inside it price like the rest.
	var units []*Unit
	idx := make(map[*Unit]int)
	in := planner.SetInput{}
	for _, u := range sp.Units {
		if u.Rel == nil {
			continue
		}
		idx[u] = len(units)
		units = append(units, u)
		in.Units = append(in.Units, unitPlannerInput(u))
	}
	for _, rel := range sp.Relations {
		var g []int
		for _, u := range rel.Units {
			if i, ok := idx[u]; ok {
				g = append(g, i)
			}
		}
		if len(g) > 0 {
			in.Shared = append(in.Shared, g)
		}
	}
	setPlan := planner.ChooseSet(in)

	var b strings.Builder
	fmt.Fprintf(&b, "script: %d statement(s), %d plan unit(s), %d relation(s), %d shared\n",
		len(sp.Statements), len(sp.Units)+streamUnitCount(sp), len(sp.Relations), sp.SharedUnits())
	b.WriteString(budgetLine(setPlan))
	for si, stp := range sp.Statements {
		fmt.Fprintf(&b, "  [%d] %s\n", si+1, stp.Stmt.String())
		for _, u := range stp.Units {
			switch {
			case u.Workers > 1:
				fmt.Fprintf(&b, "      %s rank-by %s: scale-out %d workers, runs standalone\n",
					u.Source.Name(), u.UDF.Name(), u.Workers)
			case u.Rel != nil:
				c := setPlan.Units[idx[u]]
				shared := ""
				if len(u.Rel.Units) > 1 {
					shared = fmt.Sprintf("  [shares relation %s with %d more]", u.Rel.Key.String(), len(u.Rel.Units)-1)
				}
				fmt.Fprintf(&b, "      %s rank-by %s: batch %d, cascade %s, predicted ≈%.0f ms%s\n",
					u.Source.Name(), u.UDF.Name(), c.Knobs.BatchSize,
					planner.CascadeName(c.Knobs.DisableDiff), c.Pred.TotalMS, shared)
			}
		}
		for _, u := range stp.StreamUnits {
			fmt.Fprintf(&b, "      %s rank-by %s: continuous — compiles to a follower registration on the attached live stream\n",
				u.Source.Name(), u.UDF.Name())
		}
		if len(stp.Stmt.Predicates) > 1 {
			b.WriteString("      AND: per source, IDs in every predicate's top-K, ordered by the first predicate's rank\n")
		}
	}
	if sp.SharedUnits() > 0 {
		b.WriteString("  shared work:\n")
		for _, rel := range sp.Relations {
			if len(rel.Units) > 1 {
				fmt.Fprintf(&b, "    relation %s: %d units — ingest bound once, overlapping confirmations charged once\n",
					rel.Key.String(), len(rel.Units))
			}
		}
	}
	fmt.Fprintf(&b, "  totals: coordinated ≈%.0f ms vs independent ≈%.0f ms (saved ≈%.0f ms: ingest %.0f, confirmations %.0f)\n",
		setPlan.TotalMS, setPlan.IndependentMS, setPlan.SavedMS(),
		setPlan.SharedIngestMS, setPlan.SharedConfirmMS)
	for _, w := range setPlan.Why {
		fmt.Fprintf(&b, "  - %s\n", w)
	}
	return b.String()
}

func streamUnitCount(sp *ScriptPlan) int {
	n := 0
	for _, stp := range sp.Statements {
		n += len(stp.StreamUnits)
	}
	return n
}

// budgetLine renders the set planner's one-budget choice.
func budgetLine(setPlan planner.SetPlan) string {
	return fmt.Sprintf("  one budget: concurrency %d, coalesce %s, mux %s\n",
		setPlan.Concurrency, onOff(setPlan.Coalesce), onOff(setPlan.UseMux))
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// explainStatementPlan renders an EXPLAIN statement inside a script:
// single-unit statements get the full single-statement rendering plus
// the script's budget; multi-unit statements a per-unit plan listing.
func explainStatementPlan(stp *StatementPlan, sp *ScriptPlan, setPlan planner.SetPlan) string {
	stmt := stp.Stmt
	if stmt.Stream {
		return fmt.Sprintf("plan: continuous query — compiles to %d follower registration(s) on the attached live stream; no batch plan\n",
			len(stp.StreamUnits))
	}
	if len(stp.Units) == 1 {
		text, err := Explain(stmt.String())
		if err != nil {
			return "explain: " + err.Error() + "\n"
		}
		if u := stp.Units[0]; u.Rel != nil && len(u.Rel.Units) > 1 {
			text += fmt.Sprintf("  shares relation %s with %d more unit(s) in this script\n",
				u.Rel.Key.String(), len(u.Rel.Units)-1)
		}
		return text + budgetLine(setPlan)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d coordinated units (%d sources × %d predicates)\n",
		len(stp.Units), len(stmt.Sources), len(stmt.Predicates))
	for i, u := range stp.Units {
		if u.Workers > 1 {
			fmt.Fprintf(&b, "  [%d] %s rank-by %s: scale-out %d workers, runs standalone\n",
				i+1, u.Source.Name(), u.UDF.Name(), u.Workers)
			continue
		}
		in := unitPlannerInput(u)
		in.Concurrency = setPlan.Concurrency
		c := planner.Choose(in)
		shared := ""
		if u.Rel != nil && len(u.Rel.Units) > 1 {
			shared = fmt.Sprintf("  [shares relation %s with %d more]", u.Rel.Key.String(), len(u.Rel.Units)-1)
		}
		fmt.Fprintf(&b, "  [%d] %s rank-by %s: batch %d, cascade %s, predicted ≈%.0f ms%s\n",
			i+1, u.Source.Name(), u.UDF.Name(), c.Knobs.BatchSize,
			planner.CascadeName(c.Knobs.DisableDiff), c.Pred.TotalMS, shared)
	}
	if len(stmt.Predicates) > 1 {
		b.WriteString("  AND: per source, IDs in every predicate's top-K, ordered by the first predicate's rank\n")
	}
	b.WriteString(budgetLine(setPlan))
	return b.String()
}
