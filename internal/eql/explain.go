package eql

import (
	"fmt"
	"strings"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/windows"
)

// Explain parses and binds an EQL statement (with or without the EXPLAIN
// keyword) and renders the execution plan without running it: the bound
// dataset and UDF, the query shape (frames vs windows, stride, bound
// kind, scale-out degree), and cost estimates under the simulated cost
// model — the naive scan-and-test cost the optimizer avoids and an upper
// bound on Phase 1. Phase 2's oracle bill depends on the score
// distribution and cannot be known before running; the plan says so
// rather than guessing.
func Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := Bind(q)
	if err != nil {
		return "", err
	}

	cost := simclock.Default()
	n := plan.Source.NumFrames()
	udfMS := plan.UDF.OracleCostMS(cost)
	scanMS := float64(n) * (udfMS + cost.DecodeMS)

	// Mirror Phase 1's sampling arithmetic for the label estimate.
	cfg := plan.Config
	sampleFrac := cfg.SampleFrac
	if sampleFrac == 0 {
		sampleFrac = 0.02
	}
	trainN := int(sampleFrac * float64(n))
	floor := cfg.MinSamples
	if floor == 0 {
		floor = 600
	}
	if trainN < floor {
		trainN = floor
	}
	ceil := cfg.SampleCap
	if ceil == 0 {
		ceil = 30000
	}
	if trainN > ceil {
		trainN = ceil
	}
	holdN := trainN / 10
	if holdN < 100 {
		holdN = 100
	}
	labelMS := float64(trainN+holdN) * (udfMS + cost.DecodeMS)
	populateMS := float64(n) * (cost.DecodeMS + cost.DiffMS + cost.ProxyMS)

	var b strings.Builder
	fmt.Fprintf(&b, "plan: everest top-%d", q.K)
	if q.Window > 0 {
		stride := q.Stride
		if stride == 0 {
			stride = q.Window
		}
		fmt.Fprintf(&b, " windows(size=%d stride=%d", q.Window, stride)
		if (windows.Options{Size: q.Window, Stride: stride}).Overlapping() {
			b.WriteString(" overlapping → union bound")
		}
		b.WriteString(")")
	} else {
		b.WriteString(" frames")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  dataset   %s (%d frames, %d fps)\n", plan.Source.Name(), n, plan.Source.FPS())
	fmt.Fprintf(&b, "  rank by   %s\n", plan.UDF.Name())
	thres := q.Threshold
	if thres == 0 {
		thres = 0.9
	}
	fmt.Fprintf(&b, "  guarantee Pr(result = exact top-k) ≥ %.2f, certain-result condition\n", thres)
	if plan.Workers > 1 {
		fmt.Fprintf(&b, "  scale-out %d workers (partitioned phase 1, parallel cleaning)\n", plan.Workers)
	}
	fmt.Fprintf(&b, "  phase 1   label ≈%d samples (%.0f ms) + train grid + populate ≤ %.0f ms\n",
		trainN+holdN, labelMS, populateMS)
	b.WriteString("  phase 2   oracle-in-the-loop cleaning; bill depends on score skew (typically <2% of frames)\n")
	fmt.Fprintf(&b, "  baseline  scan-and-test would cost %.0f ms\n", scanMS)
	return b.String(), nil
}
