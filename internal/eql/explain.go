package eql

import (
	"fmt"
	"strings"

	"github.com/everest-project/everest/internal/eql/planner"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/windows"
)

// plannedSamples mirrors Phase 1's sampling arithmetic (fraction,
// floor, cap, holdout) so cost predictions price the label bill the
// engine will actually pay.
func plannedSamples(sampleFrac float64, minSamples, sampleCap, n int) int {
	if sampleFrac == 0 {
		sampleFrac = 0.02
	}
	trainN := int(sampleFrac * float64(n))
	floor := minSamples
	if floor == 0 {
		floor = 600
	}
	if trainN < floor {
		trainN = floor
	}
	ceil := sampleCap
	if ceil == 0 {
		ceil = 30000
	}
	if trainN > ceil {
		trainN = ceil
	}
	holdN := trainN / 10
	if holdN < 100 {
		holdN = 100
	}
	return trainN + holdN
}

// plannerInput assembles the planner's view of a bound plan. Callers
// holding an index refine it with measured Phase 1 statistics.
func plannerInput(plan *Plan) planner.Input {
	cfg := plan.Config
	cost := cfg.Cost
	if cost == (simclock.CostModel{}) {
		cost = simclock.Default()
	}
	n := plan.Source.NumFrames()
	return planner.Input{
		Frames:           n,
		K:                cfg.K,
		Window:           cfg.Window,
		Stride:           cfg.Stride,
		WindowSampleFrac: cfg.WindowSampleFrac,
		UDFFrameMS:       plan.UDF.OracleCostMS(cost),
		Cost:             cost,
		TrainSamples:     plannedSamples(cfg.SampleFrac, cfg.MinSamples, cfg.SampleCap, n),
	}
}

// candidateTable renders a planner enumeration as the table EXPLAIN and
// EXPLAIN ANALYZE share.
func candidateTable(b *strings.Builder, cands []planner.Candidate) {
	b.WriteString("  candidates (batch × cascade, predicted §3.5 cost):\n")
	fmt.Fprintf(b, "    %5s  %-26s  %8s  %12s  %s\n", "batch", "cascade", "launches", "predicted-ms", "")
	for _, c := range cands {
		mark := ""
		if c.Chosen {
			mark = "← chosen"
		}
		fmt.Fprintf(b, "    %5d  %-26s  %8d  %12.0f  %s\n",
			c.Knobs.BatchSize, planner.CascadeName(c.Knobs.DisableDiff),
			c.Pred.Launches, c.Pred.TotalMS, mark)
	}
}

// Explain parses and binds an EQL statement (with or without the EXPLAIN
// keyword) and renders the execution plan without running it: the bound
// dataset and UDF, the query shape (frames vs windows, stride, bound
// kind, scale-out degree), and the planner's knob choices with their
// predicted costs under the simulated cost model — the candidate table,
// the chosen batch size and cascade depth, the Phase 1 bill, the
// expected Phase 2 oracle bill, and the naive scan-and-test cost the
// optimizer avoids. Phase 2's actual bill depends on the score
// distribution; EXPLAIN ANALYZE (Analyze) runs the chosen plan and
// reports predicted vs actual.
func Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := Bind(q)
	if err != nil {
		return "", err
	}

	in := plannerInput(plan)
	in.Concurrency = 1
	if plan.Workers > 1 {
		in.PinProcs = plan.Workers
	}
	chosen := planner.Choose(in)
	cands := planner.Enumerate(in)

	cost := in.Cost
	n := in.Frames
	scanMS := float64(n) * (in.UDFFrameMS + cost.DecodeMS)

	var b strings.Builder
	fmt.Fprintf(&b, "plan: everest top-%d", q.K)
	if q.Window > 0 {
		stride := q.Stride
		if stride == 0 {
			stride = q.Window
		}
		fmt.Fprintf(&b, " windows(size=%d stride=%d", q.Window, stride)
		if (windows.Options{Size: q.Window, Stride: stride}).Overlapping() {
			b.WriteString(" overlapping → union bound")
		}
		b.WriteString(")")
	} else {
		b.WriteString(" frames")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  dataset   %s (%d frames, %d fps)\n", plan.Source.Name(), n, plan.Source.FPS())
	fmt.Fprintf(&b, "  rank by   %s\n", plan.UDF.Name())
	thres := q.Threshold
	if thres == 0 {
		thres = 0.9
	}
	fmt.Fprintf(&b, "  guarantee Pr(result = exact top-k) ≥ %.2f, certain-result condition\n", thres)
	if plan.Workers > 1 {
		fmt.Fprintf(&b, "  scale-out %d workers (partitioned phase 1, parallel cleaning)\n", plan.Workers)
	}
	fmt.Fprintf(&b, "  phase 1   label ≈%d samples + train grid + cascade %s ≈ %.0f ms\n",
		in.TrainSamples, planner.CascadeName(chosen.Knobs.DisableDiff), chosen.Pred.Phase1MS)
	fmt.Fprintf(&b, "  phase 2   batch %d → ≈%d confirmations in %d launches ≈ %.0f ms (bill depends on score skew; typically <2%% of frames)\n",
		chosen.Knobs.BatchSize, chosen.Pred.Cleaned, chosen.Pred.Launches, chosen.Pred.ConfirmMS)
	fmt.Fprintf(&b, "  baseline  scan-and-test would cost %.0f ms\n", scanMS)
	candidateTable(&b, cands)
	b.WriteString("  reasons:\n")
	for _, w := range chosen.Why {
		fmt.Fprintf(&b, "    - %s\n", w)
	}
	return b.String(), nil
}
