package eql

import (
	"fmt"
	"strings"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/eql/planner"
	"github.com/everest-project/everest/internal/oraclemux"
	"github.com/everest-project/everest/internal/simclock"
)

// AnalyzeOptions tunes an EXPLAIN ANALYZE run.
type AnalyzeOptions struct {
	// Procs pins the worker count (0 lets the planner choose). Wall-clock
	// only: results and simulated charges are identical for any value.
	Procs int
	// Concurrency tells the planner how many compatible queries to expect
	// in flight together (≤ 1 plans for a lone query, leaving the serving
	// knobs — coalesce, mux — off).
	Concurrency int
}

// PhaseRow is one line of the predicted-vs-actual cost table.
type PhaseRow struct {
	Phase       string
	PredictedMS float64
	ActualMS    float64
}

// AnalyzeReport is the result of an EXPLAIN ANALYZE: the planner's
// choice with its reasoning and candidate table, plus the measured
// execution of the chosen plan.
type AnalyzeReport struct {
	// Statement echoes the analyzed EQL text.
	Statement string
	// Plan is the bound query.
	Plan *Plan
	// Config is the final engine configuration the planner chose — the
	// exact Config a caller would hand-set to reproduce the run
	// bit-identically.
	Config everest.Config
	// Chosen is the winning candidate with per-phase reasoning.
	Chosen planner.Candidate
	// Candidates is the priced enumeration (post-ingest: the cascade is
	// fixed, so the grid ranges over batch sizes).
	Candidates []planner.Candidate
	// IngestMS is the measured Phase 1 cost (0 when the session's index
	// predates this call and nothing was ingested here).
	IngestMS float64
	// Result is the executed query's answer.
	Result *everest.Result
	// Phases is the predicted-vs-actual simulated cost per phase.
	Phases []PhaseRow
	// PredictedLaunches/Cleaned vs the engine's counters.
	PredictedLaunches int
	ActualLaunches    int
	PredictedCleaned  int
	ActualCleaned     int
	// Mux accounting deltas for the run (zero unless the chosen plan
	// routed through the shared oracle multiplexer).
	MuxRequests int
	MuxLaunches int
	MuxSavedMS  float64
}

// String renders the report.
func (r *AnalyzeReport) String() string {
	var b strings.Builder
	stmt := strings.TrimSpace(r.Statement)
	if !strings.HasPrefix(strings.ToUpper(stmt), "EXPLAIN") {
		stmt = "EXPLAIN ANALYZE " + stmt
	}
	fmt.Fprintf(&b, "%s\n", stmt)
	b.WriteString("  chosen knobs:\n")
	for _, k := range r.Config.PlanKnobs() {
		fmt.Fprintf(&b, "    %-20s %s\n", k.Name, k.Value)
	}
	b.WriteString("  reasons:\n")
	for _, w := range r.Chosen.Why {
		fmt.Fprintf(&b, "    - %s\n", w)
	}
	candidateTable(&b, r.Candidates)
	b.WriteString("  predicted vs actual (simulated ms):\n")
	fmt.Fprintf(&b, "    %-28s  %12s  %12s\n", "phase", "predicted", "actual")
	for _, row := range r.Phases {
		fmt.Fprintf(&b, "    %-28s  %12.1f  %12.1f\n", row.Phase, row.PredictedMS, row.ActualMS)
	}
	fmt.Fprintf(&b, "  oracle launches  predicted %d, actual %d\n", r.PredictedLaunches, r.ActualLaunches)
	fmt.Fprintf(&b, "  confirmations    predicted %d, actual %d\n", r.PredictedCleaned, r.ActualCleaned)
	if r.Config.UseMux {
		fmt.Fprintf(&b, "  mux              %d requests in %d device launches, %.0f ms launch overhead saved\n",
			r.MuxRequests, r.MuxLaunches, r.MuxSavedMS)
	}
	if res := r.Result; res != nil {
		fmt.Fprintf(&b, "  result           top-%d ids=%v confidence=%.4f\n", len(res.IDs), res.IDs, res.Confidence)
	}
	return b.String()
}

// Analyze parses an EQL statement (with or without the EXPLAIN ANALYZE
// prefix), lets the planner choose every engine knob, runs the chosen
// plan, and reports predicted vs actual simulated cost per phase.
func Analyze(src string) (*AnalyzeReport, error) {
	return AnalyzeWithOptions(src, AnalyzeOptions{})
}

// AnalyzeWithOptions is Analyze with pinned options. It ingests its own
// index (paying Phase 1 under the planner's cascade and procs choices),
// so the report covers both phases; use AnalyzeOnSession to analyze
// against an existing session instead.
func AnalyzeWithOptions(src string, opt AnalyzeOptions) (*AnalyzeReport, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Parallel > 1 {
		return nil, fmt.Errorf("eql: EXPLAIN ANALYZE does not support PARALLEL scale-out; the planner sets procs itself")
	}
	plan, err := Bind(q)
	if err != nil {
		return nil, err
	}

	// Pre-ingest planning: the cascade depth and worker count must be
	// fixed before Phase 1 runs.
	in := plannerInput(plan)
	in.Concurrency = opt.Concurrency
	in.PinProcs = opt.Procs
	pre := planner.Choose(in)
	cfg := plan.Config
	cfg.DisableDiff = pre.Knobs.DisableDiff
	cfg.Procs = pre.Knobs.Procs

	ix, err := everest.BuildIndex(plan.Source, plan.UDF, cfg)
	if err != nil {
		return nil, err
	}
	sess, err := everest.NewSession(ix, plan.Source, plan.UDF)
	if err != nil {
		return nil, err
	}
	rep, err := analyzeOn(plan, ix, sess, cfg, opt)
	if err != nil {
		return nil, err
	}
	rep.Statement = src
	rep.IngestMS = ix.IngestMS()
	return rep, nil
}

// AnalyzeOnSession analyzes a statement against an existing index and
// session (the REPL's serving path): Phase 1 is already paid, so the
// planner inherits the cascade and ranges over the Phase 2 knobs only.
func AnalyzeOnSession(src string, ix *everest.Index, sess *everest.Session, opt AnalyzeOptions) (*AnalyzeReport, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Parallel > 1 {
		return nil, fmt.Errorf("eql: EXPLAIN ANALYZE does not support PARALLEL scale-out; the planner sets procs itself")
	}
	plan, err := Bind(q)
	if err != nil {
		return nil, err
	}
	cfg := plan.Config
	rep, err := analyzeOn(plan, ix, sess, cfg, opt)
	if err != nil {
		return nil, err
	}
	rep.Statement = src
	return rep, nil
}

// analyzeOn runs the post-ingest half of EXPLAIN ANALYZE: refine the
// planner input with the index's measured Phase 1 statistics, choose
// the Phase 2 knobs, execute on the session, and assemble the report.
func analyzeOn(plan *Plan, ix *everest.Index, sess *everest.Session, cfg everest.Config, opt AnalyzeOptions) (*AnalyzeReport, error) {
	info := ix.Info()
	in := plannerInput(plan)
	in.Concurrency = opt.Concurrency
	in.TrainSamples = info.TrainSamples + info.HoldoutSamples
	in.Retained = info.Retained
	in.Certain = ix.CertainFrames()
	in.HasIndex = true
	in.CascadeFixed = true
	in.DisableDiff = cfg.DisableDiff
	// Procs was fixed before ingest (or by the caller); keep it stable so
	// the reported Config reproduces the whole run, ingest included.
	if cfg.Procs > 0 {
		in.PinProcs = cfg.Procs
	} else if opt.Procs > 0 {
		in.PinProcs = opt.Procs
	}

	chosen := planner.Choose(in)
	cands := planner.Enumerate(in)
	cfg.BatchSize = chosen.Knobs.BatchSize
	cfg.Procs = chosen.Knobs.Procs
	cfg.Coalesce = chosen.Knobs.Coalesce
	cfg.CoalesceWait = chosen.Knobs.CoalesceWait
	cfg.UseMux = chosen.Knobs.UseMux

	var muxBefore oraclemux.Stats
	if cfg.UseMux {
		muxBefore = oraclemux.Shared().Stats()
	}
	res, err := sess.Query(cfg)
	if err != nil {
		return nil, err
	}

	// Predicted ingest re-priced from the measured Phase 1 statistics, so
	// the phase-1 row isolates the pricing model from tuple estimation.
	ingestIn := in
	ingestIn.HasIndex = false
	ingestPred := planner.Predict(ingestIn, chosen.Knobs).Phase1MS

	selectActual := res.Clock.PhaseMS(simclock.PhaseSelect) + res.Clock.PhaseMS(simclock.PhaseTopkProb)
	confirmActual := res.Clock.PhaseMS(simclock.PhaseConfirm)
	rep := &AnalyzeReport{
		Plan:       plan,
		Config:     cfg,
		Chosen:     chosen,
		Candidates: cands,
		Result:     res,
		Phases: []PhaseRow{
			{Phase: "phase1 (ingest)", PredictedMS: ingestPred, ActualMS: ix.IngestMS()},
			{Phase: "phase2/select+topk-prob", PredictedMS: chosen.Pred.SelectMS, ActualMS: selectActual},
			{Phase: "phase2/confirm-by-oracle", PredictedMS: chosen.Pred.ConfirmMS, ActualMS: confirmActual},
			{Phase: "query total (phase 2)", PredictedMS: chosen.Pred.SelectMS + chosen.Pred.ConfirmMS, ActualMS: res.Clock.TotalMS()},
		},
		PredictedLaunches: chosen.Pred.Launches,
		ActualLaunches:    res.EngineStats.OracleCalls,
		PredictedCleaned:  chosen.Pred.Cleaned,
		ActualCleaned:     res.EngineStats.Cleaned,
	}
	if cfg.UseMux {
		after := oraclemux.Shared().Stats()
		rep.MuxRequests = after.Requests - muxBefore.Requests
		rep.MuxLaunches = after.Launches - muxBefore.Launches
		rep.MuxSavedMS = after.SavedMS - muxBefore.SavedMS
	}
	return rep, nil
}
