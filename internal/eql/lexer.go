// Package eql implements the Everest Query Language, a small declarative
// layer over the Top-K engine. The paper's conclusion (§5) names
// integration with an expressive video query language (FrameQL [37],
// Rekall [25]) as the path to richer analytics; EQL is that integration
// for the reproduced system:
//
//	SELECT TOP 50 FRAMES FROM "Taipei-bus"
//	RANK BY count(car) THRESHOLD 0.9
//
//	SELECT TOP 10 WINDOWS OF 150 FROM "Dashcam-California"
//	RANK BY tailgate() THRESHOLD 0.9 SAMPLE 0.1
//
// Statement grammar: [EXPLAIN [ANALYZE]] SELECT [STREAM] TOP k
// (FRAMES | WINDOWS OF n [EVERY m]) FROM source ("," source)*
// RANK BY udf[(arg)] (AND udf[(arg)])*
// [THRESHOLD p] [SAMPLE f] [LIMIT FRAMES n] [SEED s] [PARALLEL w].
//
// Semicolon-separated statements form a script (ParseScript) that is
// bound to a coordinated plan set (BindScript) and executed over shared
// sub-plans with one scheduling budget (ScriptSession) — statements
// over the same (video, frames, UDF, seed) relation ingest once and
// share oracle labels, bit-identical to running them one at a time.
package eql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokSemi
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of statement"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// lexer splits an EQL string into tokens. Keywords are case-insensitive
// identifiers; the parser decides which identifiers are keywords.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == ';':
		l.pos++
		return token{tokSemi, ";", start}, nil
	case c == '"' || c == '\'':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			// AtEOF: a later input line may supply the closing quote — the
			// REPL treats this as a continuation, not a fatal error.
			return token{}, &ParseError{Pos: start, AtEOF: true, Msg: "unterminated string"}
		}
		l.pos++ // closing quote
		return token{tokString, b.String(), start}, nil
	case unicode.IsDigit(rune(c)) || c == '.':
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' {
				break
			}
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

// lexAll tokenizes the whole query.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
