package eql

import (
	"strings"
	"testing"
)

func TestParseFrameQuery(t *testing.T) {
	q, err := Parse(`SELECT TOP 50 FRAMES FROM "Taipei-bus" RANK BY count(car) THRESHOLD 0.9`)
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 50 || q.Window != 0 || q.Dataset != "Taipei-bus" {
		t.Fatalf("parsed %+v", q)
	}
	if q.UDF != "count" || q.UDFArg != "car" || q.Threshold != 0.9 {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseWindowQuery(t *testing.T) {
	q, err := Parse(`select top 10 windows of 150 from Archie rank by count() threshold 0.95 sample 0.2 seed 7`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window != 150 || q.K != 10 || q.SampleFrac != 0.2 || q.Seed != 7 {
		t.Fatalf("parsed %+v", q)
	}
	if q.UDFArg != "" {
		t.Fatalf("empty arg expected, got %q", q.UDFArg)
	}
}

func TestParseLimitFrames(t *testing.T) {
	q, err := Parse(`SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 4000`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Frames != 4000 {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`SeLeCt ToP 3 fRaMeS fRoM Archie RaNk By count(car)`); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{``, "expected SELECT"},
		{`SELECT 5`, "expected TOP"},
		{`SELECT TOP x FRAMES FROM a RANK BY count`, "expected K"},
		{`SELECT TOP 0 FRAMES FROM a RANK BY count`, "must be positive"},
		{`SELECT TOP 5 CLIPS FROM a RANK BY count`, "expected FRAMES or WINDOWS"},
		{`SELECT TOP 5 WINDOWS 30 FROM a RANK BY count`, "expected OF"},
		{`SELECT TOP 5 FRAMES FROM a ORDER BY count`, "expected RANK"},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) THRESHOLD 1.5`, "must be in (0,1]"},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) SAMPLE 0`, "must be in (0,1]"},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) garbage`, "unexpected trailing"},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car`, "expected )"},
		{`SELECT TOP 5 FRAMES FROM "unclosed RANK BY count`, "unterminated string"},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) SEED x`, "expected seed"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("Parse(%q) should fail", c.src)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestBindValidation(t *testing.T) {
	cases := []string{
		`SELECT TOP 5 FRAMES FROM "no-such-video" RANK BY count(car)`,
		`SELECT TOP 5 FRAMES FROM Archie RANK BY frobnicate()`,
		`SELECT TOP 5 FRAMES FROM Archie RANK BY tailgate()`,  // not a dashcam
		`SELECT TOP 5 FRAMES FROM Archie RANK BY sentiment()`, // not a street
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Bind(q); err == nil {
			t.Fatalf("Bind(%q) should fail", src)
		}
	}
}

func TestBindDefaultsClassToDatasetTarget(t *testing.T) {
	q, err := Parse(`SELECT TOP 5 FRAMES FROM "Grand-Canal" RANK BY count() LIMIT FRAMES 2000`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Bind(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.UDF.Name(); got != "count(boat)" {
		t.Fatalf("bound UDF %q, want count(boat)", got)
	}
}

func TestExecuteEndToEnd(t *testing.T) {
	res, plan, err := Execute(
		`SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) THRESHOLD 0.9 LIMIT FRAMES 6000 SEED 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 5 {
		t.Fatalf("result size %d", len(res.IDs))
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
	if plan.Source.NumFrames() != 6000 {
		t.Fatalf("frame limit not applied: %d", plan.Source.NumFrames())
	}
	// Certain-result condition flows through the language layer.
	for i, id := range res.IDs {
		if int(res.Scores[i]) != plan.Source.TrueCountFast(id) {
			t.Fatalf("frame %d score %v, truth %d", id, res.Scores[i], plan.Source.TrueCountFast(id))
		}
	}
}

func TestExecuteWindowQuery(t *testing.T) {
	res, _, err := Execute(
		`SELECT TOP 3 WINDOWS OF 30 FROM Archie RANK BY count(car) LIMIT FRAMES 6000 SEED 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWindow || len(res.IDs) != 3 {
		t.Fatalf("window result wrong: %+v", res)
	}
}
