package eql

import (
	"errors"
	"strings"
	"testing"
)

func TestParseFrameQuery(t *testing.T) {
	q, err := Parse(`SELECT TOP 50 FRAMES FROM "Taipei-bus" RANK BY count(car) THRESHOLD 0.9`)
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 50 || q.Window != 0 || q.Dataset() != "Taipei-bus" {
		t.Fatalf("parsed %+v", q)
	}
	if q.UDF() != "count" || q.UDFArg() != "car" || q.Threshold != 0.9 {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseWindowQuery(t *testing.T) {
	q, err := Parse(`select top 10 windows of 150 from Archie rank by count() threshold 0.95 sample 0.2 seed 7`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window != 150 || q.K != 10 || q.SampleFrac != 0.2 || q.Seed != 7 {
		t.Fatalf("parsed %+v", q)
	}
	if q.UDFArg() != "" {
		t.Fatalf("empty arg expected, got %q", q.UDFArg())
	}
}

func TestParseLimitFrames(t *testing.T) {
	q, err := Parse(`SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 4000`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Frames != 4000 {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`SeLeCt ToP 3 fRaMeS fRoM Archie RaNk By count(car)`); err != nil {
		t.Fatal(err)
	}
}

// TestParseGrammar covers every grammar clause through the canonical
// printer: each accepted source must render to the expected canonical
// form, and the canonical form must be a fixed point of parse∘print —
// the same invariant FuzzParseEQL hammers.
func TestParseGrammar(t *testing.T) {
	cases := []struct {
		name, src, canonical string
	}{
		{"frames-threshold",
			`SELECT TOP 50 FRAMES FROM "Taipei-bus" RANK BY count(car) THRESHOLD 0.9`,
			`SELECT TOP 50 FRAMES FROM "Taipei-bus" RANK BY count("car") THRESHOLD 0.9`},
		{"windows-every-sample-seed",
			`select top 10 windows of 150 every 30 from Archie rank by count() threshold 0.95 sample 0.2 seed 7`,
			`SELECT TOP 10 WINDOWS OF 150 EVERY 30 FROM "Archie" RANK BY count() THRESHOLD 0.95 SAMPLE 0.2 SEED 7`},
		{"tumbling-windows",
			`SELECT TOP 3 WINDOWS OF 30 FROM Archie RANK BY count(car)`,
			`SELECT TOP 3 WINDOWS OF 30 FROM "Archie" RANK BY count("car")`},
		{"limit-frames-parallel",
			`SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 4000 PARALLEL 4`,
			`SELECT TOP 5 FRAMES FROM "Archie" RANK BY count("car") LIMIT FRAMES 4000 PARALLEL 4`},
		{"and-predicates",
			`SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) AND count(bus)`,
			`SELECT TOP 5 FRAMES FROM "Archie" RANK BY count("car") AND count("bus")`},
		{"cross-video",
			`SELECT TOP 5 FRAMES FROM Archie, "Grand-Canal" RANK BY count()`,
			`SELECT TOP 5 FRAMES FROM "Archie", "Grand-Canal" RANK BY count()`},
		{"stream",
			`SELECT STREAM TOP 3 FRAMES FROM Archie RANK BY count(car)`,
			`SELECT STREAM TOP 3 FRAMES FROM "Archie" RANK BY count("car")`},
		{"explain",
			`EXPLAIN SELECT TOP 5 FRAMES FROM Archie RANK BY count(car)`,
			`EXPLAIN SELECT TOP 5 FRAMES FROM "Archie" RANK BY count("car")`},
		{"explain-analyze",
			`explain analyze select top 5 frames from Archie rank by count(car)`,
			`EXPLAIN ANALYZE SELECT TOP 5 FRAMES FROM "Archie" RANK BY count("car")`},
		{"bare-predicate",
			`SELECT TOP 5 FRAMES FROM Dashcam-California RANK BY tailgate`,
			`SELECT TOP 5 FRAMES FROM "Dashcam-California" RANK BY tailgate()`},
		{"single-quoted-name",
			`SELECT TOP 5 FRAMES FROM 'Grand-Canal' RANK BY count()`,
			`SELECT TOP 5 FRAMES FROM "Grand-Canal" RANK BY count()`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, err := Parse(c.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", c.src, err)
			}
			if got := q.String(); got != c.canonical {
				t.Fatalf("canonical form of %q:\n got %q\nwant %q", c.src, got, c.canonical)
			}
			q2, err := Parse(c.canonical)
			if err != nil {
				t.Fatalf("reparse of canonical %q: %v", c.canonical, err)
			}
			if got := q2.String(); got != c.canonical {
				t.Fatalf("canonical form is not a fixed point:\n got %q\nwant %q", got, c.canonical)
			}
		})
	}
}

// TestParseErrors locks the rejection cases: the message, the reported
// byte position (anchored by a unique marker substring in the source;
// an empty marker means end-of-input), and the AtEOF incomplete-
// statement signal the REPL's continuation keys on.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
		marker    string // error anchors at strings.Index(src, marker); "" = len(src)
		atEOF     bool
	}{
		{``, "expected SELECT", "", true},
		{`SELECT 5`, "expected TOP", "5", false},
		{`SELECT TOP x FRAMES FROM a RANK BY count`, "expected K", "x", false},
		{`SELECT TOP 0 FRAMES FROM a RANK BY count`, "must be positive", "0 FRAMES", false},
		{`SELECT TOP 5 CLIPS FROM a RANK BY count`, "expected FRAMES or WINDOWS", "CLIPS", false},
		{`SELECT TOP 5 WINDOWS 30 FROM a RANK BY count`, "expected OF", "30", false},
		{`SELECT TOP 5 WINDOWS OF 0 FROM a RANK BY count`, "must be positive", "0 FROM", false},
		{`SELECT TOP 5 WINDOWS OF 30 EVERY 0 FROM a RANK BY count`, "EVERY 0 must be positive", "0 FROM", false},
		{`SELECT TOP 5 FRAMES FROM a ORDER BY count`, "expected RANK", "ORDER", false},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) THRESHOLD 1.5`, "must be in (0,1]", "1.5", false},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) SAMPLE 0`, "must be in (0,1]", "0", false},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) PARALLEL 0`, "PARALLEL 0 must be positive", "0", false},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) garbage`, "unexpected trailing", "garbage", false},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) SEED x`, "expected seed", "x", false},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car`, "expected )", "", true},
		{`SELECT TOP 5 FRAMES FROM "unclosed RANK BY count`, "unterminated string", `"unclosed`, true},
		{`SELECT TOP 5`, "expected FRAMES or WINDOWS", "", true},
		{`SELECT TOP 5 FRAMES FROM a RANK BY`, "expected ranking function", "", true},
		{`SELECT TOP 5 FRAMES FROM Archie,`, "expected dataset name", "", true},
		{`SELECT TOP 5 FRAMES FROM a RANK BY count(car) AND`, "expected ranking function", "", true},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("Parse(%q) should fail", c.src)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q) error %T is not a *ParseError", c.src, err)
		}
		wantPos := len(c.src)
		if c.marker != "" {
			wantPos = strings.Index(c.src, c.marker)
		}
		if pe.Pos != wantPos {
			t.Fatalf("Parse(%q) error at position %d, want %d (%q)", c.src, pe.Pos, wantPos, c.marker)
		}
		if pe.AtEOF != c.atEOF {
			t.Fatalf("Parse(%q) AtEOF=%v, want %v", c.src, pe.AtEOF, c.atEOF)
		}
	}
}

// TestParseScript covers the script layer: `;`-separated statements,
// stray separators, positioned errors in later statements, and the
// script-level canonical form.
func TestParseScript(t *testing.T) {
	src := `SELECT TOP 5 FRAMES FROM Archie RANK BY count(car);
		; SELECT TOP 3 WINDOWS OF 30 FROM Archie RANK BY count(car) ;`
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Statements) != 2 {
		t.Fatalf("parsed %d statements, want 2", len(s.Statements))
	}
	if s.Statements[1].Window != 30 {
		t.Fatalf("second statement wrong: %+v", s.Statements[1])
	}
	want := "SELECT TOP 5 FRAMES FROM \"Archie\" RANK BY count(\"car\");\n" +
		"SELECT TOP 3 WINDOWS OF 30 FROM \"Archie\" RANK BY count(\"car\")"
	if got := s.String(); got != want {
		t.Fatalf("script canonical form:\n got %q\nwant %q", got, want)
	}

	// An error in a later statement reports its position, not the start.
	bad := `SELECT TOP 5 FRAMES FROM a RANK BY count(car); SELECT TOP bad`
	_, err = ParseScript(bad)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("script error %v (%T), want *ParseError", err, err)
	}
	if want := strings.Index(bad, "bad"); pe.Pos != want {
		t.Fatalf("script error at %d, want %d", pe.Pos, want)
	}

	// Parse (single-statement API) refuses scripts.
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "use ParseScript") {
		t.Fatalf("Parse of a 2-statement script: %v", err)
	}
}

// TestStatementPositions checks the AST's source anchors: statements and
// their sources/predicates carry the byte offsets later layers (binder
// errors, REPL messages) report.
func TestStatementPositions(t *testing.T) {
	src := `SELECT TOP 5 FRAMES FROM Archie RANK BY count(car); SELECT TOP 3 FRAMES FROM "Grand-Canal" RANK BY count(boat)`
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	second := s.Statements[1]
	if want := strings.LastIndex(src, "SELECT"); second.Pos != want {
		t.Fatalf("second statement at %d, want %d", second.Pos, want)
	}
	if want := strings.Index(src, `"Grand-Canal"`); second.Sources[0].Pos != want {
		t.Fatalf("source at %d, want %d", second.Sources[0].Pos, want)
	}
	if want := strings.Index(src, "count(boat)"); second.Predicates[0].Pos != want {
		t.Fatalf("predicate at %d, want %d", second.Predicates[0].Pos, want)
	}
}

func TestBindValidation(t *testing.T) {
	cases := []string{
		`SELECT TOP 5 FRAMES FROM "no-such-video" RANK BY count(car)`,
		`SELECT TOP 5 FRAMES FROM Archie RANK BY frobnicate()`,
		`SELECT TOP 5 FRAMES FROM Archie RANK BY tailgate()`,  // not a dashcam
		`SELECT TOP 5 FRAMES FROM Archie RANK BY sentiment()`, // not a street
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Bind(q); err == nil {
			t.Fatalf("Bind(%q) should fail", src)
		}
	}
}

func TestBindDefaultsClassToDatasetTarget(t *testing.T) {
	q, err := Parse(`SELECT TOP 5 FRAMES FROM "Grand-Canal" RANK BY count() LIMIT FRAMES 2000`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Bind(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.UDF.Name(); got != "count(boat)" {
		t.Fatalf("bound UDF %q, want count(boat)", got)
	}
}

func TestExecuteEndToEnd(t *testing.T) {
	res, plan, err := Execute(
		`SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) THRESHOLD 0.9 LIMIT FRAMES 6000 SEED 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 5 {
		t.Fatalf("result size %d", len(res.IDs))
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
	if plan.Source.NumFrames() != 6000 {
		t.Fatalf("frame limit not applied: %d", plan.Source.NumFrames())
	}
	// Certain-result condition flows through the language layer.
	for i, id := range res.IDs {
		if int(res.Scores[i]) != plan.Source.TrueCountFast(id) {
			t.Fatalf("frame %d score %v, truth %d", id, res.Scores[i], plan.Source.TrueCountFast(id))
		}
	}
}

func TestExecuteWindowQuery(t *testing.T) {
	res, _, err := Execute(
		`SELECT TOP 3 WINDOWS OF 30 FROM Archie RANK BY count(car) LIMIT FRAMES 6000 SEED 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWindow || len(res.IDs) != 3 {
		t.Fatalf("window result wrong: %+v", res)
	}
}
