package eql

import (
	"reflect"
	"strings"
	"testing"

	everest "github.com/everest-project/everest"
)

func TestParseExplainAnalyzePrefix(t *testing.T) {
	q, err := Parse("EXPLAIN ANALYZE SELECT TOP 5 FRAMES FROM Archie RANK BY count(car)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain || !q.Analyze {
		t.Fatalf("Explain/Analyze = %v/%v, want true/true", q.Explain, q.Analyze)
	}
	q, err = Parse("EXPLAIN SELECT TOP 5 FRAMES FROM Archie RANK BY count(car)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Analyze {
		t.Fatal("plain EXPLAIN must not set Analyze")
	}
	if _, err := Parse("ANALYZE SELECT TOP 5 FRAMES FROM Archie RANK BY count(car)"); err == nil {
		t.Fatal("bare ANALYZE (without EXPLAIN) should fail to parse")
	}
}

func TestExecuteRejectsAnalyze(t *testing.T) {
	_, _, err := Execute("EXPLAIN ANALYZE SELECT TOP 5 FRAMES FROM Archie RANK BY count(car)")
	if err == nil || !strings.Contains(err.Error(), "Analyze") {
		t.Fatalf("Execute on EXPLAIN ANALYZE should direct to Analyze, got %v", err)
	}
}

func TestAnalyzeRejectsParallel(t *testing.T) {
	_, err := Analyze("EXPLAIN ANALYZE SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) PARALLEL 4 LIMIT FRAMES 6000")
	if err == nil || !strings.Contains(err.Error(), "PARALLEL") {
		t.Fatalf("PARALLEL under EXPLAIN ANALYZE should be rejected, got %v", err)
	}
}

func TestAnalyzeReportShape(t *testing.T) {
	rep, err := Analyze("EXPLAIN ANALYZE SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 6000 SEED 3")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result == nil || len(rep.Result.IDs) != 5 {
		t.Fatalf("analyze did not execute: %+v", rep.Result)
	}
	if rep.Config.BatchSize <= 0 {
		t.Fatalf("planner left BatchSize unset: %+v", rep.Config)
	}
	if rep.Config.Coalesce || rep.Config.UseMux {
		t.Fatalf("lone analyze chose serving knobs: %+v", rep.Config)
	}
	if len(rep.Candidates) == 0 || len(rep.Chosen.Why) == 0 {
		t.Fatal("report missing the candidate table or reasoning")
	}
	if rep.IngestMS <= 0 {
		t.Fatalf("self-ingested analyze reported IngestMS %v", rep.IngestMS)
	}
	if rep.ActualLaunches <= 0 || rep.ActualCleaned < 5 {
		t.Fatalf("engine counters missing: launches=%d cleaned=%d", rep.ActualLaunches, rep.ActualCleaned)
	}
	// Every phase row must carry a prediction and a measurement; the
	// confirm row's actual must be nonzero (the oracle ran).
	var confirmActual float64
	for _, row := range rep.Phases {
		if row.Phase == "phase2/confirm-by-oracle" {
			confirmActual = row.ActualMS
		}
	}
	if confirmActual <= 0 {
		t.Fatalf("confirm phase measured no cost: %+v", rep.Phases)
	}
	out := rep.String()
	for _, want := range []string{"chosen knobs", "batch-size", "predicted vs actual", "oracle launches", "← chosen", "reasons"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeGoldenMatchesHandSetKnobs is the planner's determinism
// contract: executing the planner-chosen plan must be bit-identical —
// results AND simulated charges — to hand-setting the same knobs on the
// public API, for every worker count. Procs is pinned across {1, 2, 8}
// to also lock the engine's procs-never-affect-results property through
// the EXPLAIN ANALYZE path.
func TestAnalyzeGoldenMatchesHandSetKnobs(t *testing.T) {
	const stmt = "SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) THRESHOLD 0.9 LIMIT FRAMES 6000 SEED 3"
	var ref *everest.Result
	for _, procs := range []int{1, 2, 8} {
		rep, err := AnalyzeWithOptions(stmt, AnalyzeOptions{Procs: procs})
		if err != nil {
			t.Fatalf("procs %d: %v", procs, err)
		}
		if rep.Config.Procs != procs {
			t.Fatalf("procs %d: planner overrode the pin: %+v", procs, rep.Config)
		}

		// Hand-set run: a user reading the report sets rep.Config on the
		// public API. Fresh bind, fresh ingest, fresh session.
		q, err := Parse(stmt)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Bind(q)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := everest.BuildIndex(plan.Source, plan.UDF, rep.Config)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := everest.NewSession(ix, plan.Source, plan.UDF)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Query(rep.Config)
		if err != nil {
			t.Fatal(err)
		}

		if ix.IngestMS() != rep.IngestMS {
			t.Fatalf("procs %d: ingest cost diverged: hand %v vs analyze %v", procs, ix.IngestMS(), rep.IngestMS)
		}
		got, want := rep.Result, res
		if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Scores, want.Scores) || got.Confidence != want.Confidence {
			t.Fatalf("procs %d: results diverged from hand-set knobs:\n%v %v %v\nvs\n%v %v %v",
				procs, got.IDs, got.Scores, got.Confidence, want.IDs, want.Scores, want.Confidence)
		}
		if !reflect.DeepEqual(got.EngineStats, want.EngineStats) {
			t.Fatalf("procs %d: engine counters diverged:\n%+v\nvs\n%+v", procs, got.EngineStats, want.EngineStats)
		}
		if got.Clock.TotalMS() != want.Clock.TotalMS() || !reflect.DeepEqual(got.Clock.Breakdown(), want.Clock.Breakdown()) {
			t.Fatalf("procs %d: simulated charges diverged:\n%v\nvs\n%v", procs, got.Clock, want.Clock)
		}

		// And across procs values: the answer itself never moves.
		if ref == nil {
			ref = rep.Result
		} else if !reflect.DeepEqual(ref.IDs, rep.Result.IDs) || ref.Clock.TotalMS() != rep.Result.Clock.TotalMS() {
			t.Fatalf("procs %d: outcome differs from procs 1", procs)
		}
	}
}

// TestAnalyzeOnSessionSkipsIngest: the serving-path variant inherits the
// session's index — no new Phase 1, IngestMS 0, and the executed result
// matches a direct session query with the reported config.
func TestAnalyzeOnSessionSkipsIngest(t *testing.T) {
	const stmt = "SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 6000 SEED 3"
	q, err := Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Bind(q)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := everest.BuildIndex(plan.Source, plan.UDF, plan.Config)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := everest.NewSession(ix, plan.Source, plan.UDF)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeOnSession(stmt, ix, sess, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestMS != 0 {
		t.Fatalf("session analyze reported fresh ingest cost %v", rep.IngestMS)
	}
	if rep.Result == nil || len(rep.Result.IDs) != 5 {
		t.Fatalf("session analyze did not execute: %+v", rep.Result)
	}
	// The session's cache now holds the confirmed labels; a re-run with
	// the reported config must terminate on the same answer.
	res, err := sess.Query(rep.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.IDs, rep.Result.IDs) {
		t.Fatalf("session re-query diverged: %v vs %v", res.IDs, rep.Result.IDs)
	}
}
