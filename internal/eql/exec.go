package eql

import (
	"fmt"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Plan is a validated, executable single-unit query: the bound dataset,
// UDF and engine configuration. Scripts, cross-video and AND-predicate
// statements bind to a ScriptPlan of many units instead (BindScript).
type Plan struct {
	// Source is the bound video.
	Source *video.Synthetic
	// UDF is the bound scoring function.
	UDF vision.UDF
	// Config is the engine configuration derived from the query.
	Config everest.Config
	// Workers is the scale-out degree (1 = serial).
	Workers int
}

// RelationKey identifies a shared ingest/relation sub-plan: statements
// over the same (video, frame count, UDF, seed) bind to one relation,
// pay Phase 1 once, and share every oracle label through one session
// cache. Seed is part of the identity because Phase 1's sample set —
// and therefore the artifact — depends on it (the REPL has always
// keyed its sessions the same way).
type RelationKey struct {
	Dataset string
	Frames  int
	UDF     string
	Seed    uint64
}

func (k RelationKey) String() string {
	return fmt.Sprintf("%s|%d|%s|%d", k.Dataset, k.Frames, k.UDF, k.Seed)
}

// Relation is one common sub-plan of a script: the bound (video, UDF)
// pair every unit with the same RelationKey executes against.
type Relation struct {
	Key    RelationKey
	Source *video.Synthetic
	UDF    vision.UDF
	// Units are the script's executable units bound to this relation, in
	// statement order — the coalesced group the executor submits over
	// the relation's shared cache.
	Units []*Unit
}

// Unit is one executable engine plan of a script: one (statement,
// source, predicate) combination.
type Unit struct {
	// Stmt, SourceIdx and PredIdx locate the unit in the script.
	Stmt      int
	SourceIdx int
	PredIdx   int
	// Rel is the shared relation the unit runs against; nil for
	// scale-out (PARALLEL) units, which bypass the session machinery.
	Rel *Relation
	// Source and UDF are the unit's own bindings (== Rel's when set).
	Source *video.Synthetic
	UDF    vision.UDF
	// Config is the engine configuration derived from the statement.
	Config everest.Config
	// Workers is the scale-out degree (1 = serial).
	Workers int
}

// StatementPlan is one statement's bound form: its executable units in
// (source-major, predicate-minor) order, or its follower units for a
// STREAM statement.
type StatementPlan struct {
	Stmt *Statement
	// Units is empty for STREAM statements; stream units live in
	// StreamUnits and compile to follower registrations instead of
	// batch runs.
	Units       []*Unit
	StreamUnits []*Unit
}

// ScriptPlan is a script bound to a coordinated plan graph: every
// statement's units plus the deduplicated relations they share.
type ScriptPlan struct {
	Script     *Script
	Statements []*StatementPlan
	// Relations lists the distinct (video, frames, UDF, seed) sub-plans
	// in first-appearance order — the script's shared work.
	Relations []*Relation
	// Units lists every batch-executable unit in statement order.
	Units []*Unit
}

// SharedUnits counts units beyond the first on each relation — the
// ingest stages the script binds once instead of repeatedly.
func (sp *ScriptPlan) SharedUnits() int {
	n := 0
	for _, rel := range sp.Relations {
		if len(rel.Units) > 1 {
			n += len(rel.Units) - 1
		}
	}
	return n
}

// bindSource resolves one FROM operand against the dataset catalog.
func bindSource(ref SourceRef, frames int) (*video.Synthetic, video.DatasetSpec, error) {
	spec, err := video.DatasetByName(ref.Name)
	if err != nil {
		return nil, spec, &ParseError{Pos: ref.Pos, Msg: err.Error()}
	}
	src, err := spec.Build(frames)
	if err != nil {
		return nil, spec, &ParseError{Pos: ref.Pos, Msg: err.Error()}
	}
	return src, spec, nil
}

// bindUDF resolves one RANK BY predicate against the catalog for a
// bound source.
func bindUDF(pred Predicate, spec video.DatasetSpec, src *video.Synthetic) (vision.UDF, error) {
	switch pred.UDF {
	case "count":
		class := pred.Arg
		if class == "" {
			class = src.TargetClass()
		}
		return vision.CountUDF{Class: class}, nil
	case "tailgate":
		if spec.Config.Kind != video.KindDashcam {
			return nil, &ParseError{Pos: pred.Pos, Msg: fmt.Sprintf("tailgate() requires a dashcam dataset, %s is not one", spec.Name)}
		}
		return vision.TailgateUDF{}, nil
	case "sentiment":
		if spec.Config.Kind != video.KindStreet {
			return nil, &ParseError{Pos: pred.Pos, Msg: fmt.Sprintf("sentiment() requires a street dataset, %s is not one", spec.Name)}
		}
		return vision.SentimentUDF{}, nil
	default:
		return nil, &ParseError{Pos: pred.Pos, Msg: fmt.Sprintf("unknown ranking function %q (count, tailgate, sentiment)", pred.UDF)}
	}
}

// statementConfig derives the engine configuration common to all of a
// statement's units.
func statementConfig(q *Statement) everest.Config {
	cfg := everest.Config{
		K:                q.K,
		Threshold:        q.Threshold,
		Window:           q.Window,
		Stride:           q.Stride,
		WindowSampleFrac: q.SampleFrac,
		Seed:             q.Seed,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// BindScript resolves every statement of a script against the catalog
// and produces the coordinated plan set: one Unit per (statement,
// source, predicate) combination, with units over the same (video,
// frames, UDF, seed) identity bound to one shared Relation. Binding is
// all-or-nothing — a script with any unresolvable name fails as a
// whole, before anything runs.
func BindScript(s *Script) (*ScriptPlan, error) {
	sp := &ScriptPlan{Script: s}
	rels := make(map[RelationKey]*Relation)
	for si, stmt := range s.Statements {
		stp := &StatementPlan{Stmt: stmt}
		if stmt.Stream {
			if stmt.Parallel > 1 {
				return nil, &ParseError{Pos: stmt.Pos, Msg: "STREAM statements cannot use PARALLEL scale-out"}
			}
			if stmt.Analyze {
				return nil, &ParseError{Pos: stmt.Pos, Msg: "EXPLAIN ANALYZE is not supported for STREAM statements"}
			}
		}
		if stmt.Analyze {
			// EXPLAIN ANALYZE prices and measures one plan; reject the
			// unsupported shapes here so a bad statement costs nothing.
			if stmt.Parallel > 1 {
				return nil, &ParseError{Pos: stmt.Pos,
					Msg: "EXPLAIN ANALYZE does not support PARALLEL scale-out; the planner sets procs itself"}
			}
			if len(stmt.Sources) > 1 || len(stmt.Predicates) > 1 {
				return nil, &ParseError{Pos: stmt.Pos,
					Msg: "EXPLAIN ANALYZE supports single-source, single-predicate statements"}
			}
		}
		workers := stmt.Parallel
		if workers == 0 {
			workers = 1
		}
		cfg := statementConfig(stmt)
		for srcIdx, ref := range stmt.Sources {
			src, spec, err := bindSource(ref, stmt.Frames)
			if err != nil {
				return nil, err
			}
			for predIdx, pred := range stmt.Predicates {
				udf, err := bindUDF(pred, spec, src)
				if err != nil {
					return nil, err
				}
				u := &Unit{
					Stmt:      si,
					SourceIdx: srcIdx,
					PredIdx:   predIdx,
					Source:    src,
					UDF:       udf,
					Config:    cfg,
					Workers:   workers,
				}
				if stmt.Stream {
					// Followers run against a live stream's own ingestor;
					// they never join a batch relation.
					stp.StreamUnits = append(stp.StreamUnits, u)
					continue
				}
				if workers <= 1 {
					key := RelationKey{
						Dataset: src.Name(),
						Frames:  src.NumFrames(),
						UDF:     udf.Name(),
						Seed:    cfg.Seed,
					}
					rel, ok := rels[key]
					if !ok {
						rel = &Relation{Key: key, Source: src, UDF: udf}
						rels[key] = rel
						sp.Relations = append(sp.Relations, rel)
					}
					// All units of one relation run over the relation's own
					// bound source/UDF instance, so the shared session sees
					// one identity.
					u.Rel = rel
					u.Source = rel.Source
					u.UDF = rel.UDF
					rel.Units = append(rel.Units, u)
				}
				stp.Units = append(stp.Units, u)
				sp.Units = append(sp.Units, u)
			}
		}
		sp.Statements = append(sp.Statements, stp)
	}
	return sp, nil
}

// Bind resolves a single-unit statement — one source, one predicate, no
// STREAM — and produces an executable plan. Multi-unit statements must
// go through BindScript.
func Bind(q *Statement) (*Plan, error) {
	if q.Stream {
		return nil, &ParseError{Pos: q.Pos, Msg: "STREAM statements compile to follower registrations; execute them through a ScriptSession with an attached live stream"}
	}
	if len(q.Sources) != 1 || len(q.Predicates) != 1 {
		return nil, &ParseError{Pos: q.Pos,
			Msg: fmt.Sprintf("statement has %d sources and %d predicates; multi-unit statements bind through BindScript", len(q.Sources), len(q.Predicates))}
	}
	src, spec, err := bindSource(q.Sources[0], q.Frames)
	if err != nil {
		return nil, err
	}
	udf, err := bindUDF(q.Predicates[0], spec, src)
	if err != nil {
		return nil, err
	}
	workers := q.Parallel
	if workers == 0 {
		workers = 1
	}
	return &Plan{Source: src, UDF: udf, Config: statementConfig(q), Workers: workers}, nil
}

// Execute parses, binds and runs a single-unit EQL statement. EXPLAIN
// statements are rejected here (use Explain); scripts and multi-unit
// statements are rejected too (use ScriptSession).
func Execute(src string) (*everest.Result, *Plan, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if q.Analyze {
		return nil, nil, fmt.Errorf("eql: EXPLAIN ANALYZE statements plan and measure; use Analyze")
	}
	if q.Explain {
		return nil, nil, fmt.Errorf("eql: EXPLAIN statements describe a plan; use Explain")
	}
	plan, err := Bind(q)
	if err != nil {
		return nil, nil, err
	}
	if plan.Workers > 1 {
		pres, err := everest.RunParallel(plan.Source, plan.UDF, plan.Config, plan.Workers)
		if err != nil {
			return nil, nil, err
		}
		return &pres.Result, plan, nil
	}
	res, err := everest.Run(plan.Source, plan.UDF, plan.Config)
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}
