package eql

import (
	"fmt"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Plan is a validated, executable query: the bound dataset, UDF and
// engine configuration.
type Plan struct {
	// Source is the bound video.
	Source *video.Synthetic
	// UDF is the bound scoring function.
	UDF vision.UDF
	// Config is the engine configuration derived from the query.
	Config everest.Config
	// Workers is the scale-out degree (1 = serial).
	Workers int
}

// Bind resolves the query's dataset and ranking function against the
// built-in catalog and produces an executable plan.
func Bind(q *Query) (*Plan, error) {
	spec, err := video.DatasetByName(q.Dataset)
	if err != nil {
		return nil, fmt.Errorf("eql: %w", err)
	}
	src, err := spec.Build(q.Frames)
	if err != nil {
		return nil, fmt.Errorf("eql: %w", err)
	}

	var udf vision.UDF
	switch q.UDF {
	case "count":
		class := q.UDFArg
		if class == "" {
			class = src.TargetClass()
		}
		udf = vision.CountUDF{Class: class}
	case "tailgate":
		if spec.Config.Kind != video.KindDashcam {
			return nil, fmt.Errorf("eql: tailgate() requires a dashcam dataset, %s is not one", q.Dataset)
		}
		udf = vision.TailgateUDF{}
	case "sentiment":
		if spec.Config.Kind != video.KindStreet {
			return nil, fmt.Errorf("eql: sentiment() requires a street dataset, %s is not one", q.Dataset)
		}
		udf = vision.SentimentUDF{}
	default:
		return nil, fmt.Errorf("eql: unknown ranking function %q (count, tailgate, sentiment)", q.UDF)
	}

	cfg := everest.Config{
		K:                q.K,
		Threshold:        q.Threshold,
		Window:           q.Window,
		Stride:           q.Stride,
		WindowSampleFrac: q.SampleFrac,
		Seed:             q.Seed,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	workers := q.Parallel
	if workers == 0 {
		workers = 1
	}
	return &Plan{Source: src, UDF: udf, Config: cfg, Workers: workers}, nil
}

// Execute parses, binds and runs an EQL statement. EXPLAIN statements are
// rejected here; use Explain.
func Execute(src string) (*everest.Result, *Plan, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if q.Analyze {
		return nil, nil, fmt.Errorf("eql: EXPLAIN ANALYZE statements plan and measure; use Analyze")
	}
	if q.Explain {
		return nil, nil, fmt.Errorf("eql: EXPLAIN statements describe a plan; use Explain")
	}
	plan, err := Bind(q)
	if err != nil {
		return nil, nil, err
	}
	if plan.Workers > 1 {
		pres, err := everest.RunParallel(plan.Source, plan.UDF, plan.Config, plan.Workers)
		if err != nil {
			return nil, nil, err
		}
		return &pres.Result, plan, nil
	}
	res, err := everest.Run(plan.Source, plan.UDF, plan.Config)
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}
