package eql

import (
	"strings"
	"testing"
)

func TestParseSlidingWindowClause(t *testing.T) {
	q, err := Parse("SELECT TOP 5 WINDOWS OF 300 EVERY 30 FROM Archie RANK BY count(car)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Window != 300 || q.Stride != 30 {
		t.Fatalf("window/stride = %d/%d, want 300/30", q.Window, q.Stride)
	}
}

func TestParseTumblingHasZeroStride(t *testing.T) {
	q, err := Parse("SELECT TOP 5 WINDOWS OF 300 FROM Archie RANK BY count(car)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Stride != 0 {
		t.Fatalf("stride = %d, want 0 (tumbling default)", q.Stride)
	}
}

func TestParseParallelClause(t *testing.T) {
	q, err := Parse("SELECT TOP 50 FRAMES FROM Archie RANK BY count(car) PARALLEL 4 SEED 2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Parallel != 4 || q.Seed != 2 {
		t.Fatalf("parallel/seed = %d/%d, want 4/2", q.Parallel, q.Seed)
	}
}

func TestParseExplainPrefix(t *testing.T) {
	q, err := Parse("EXPLAIN SELECT TOP 5 FRAMES FROM Archie RANK BY count(car)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain {
		t.Fatal("EXPLAIN not recognized")
	}
}

func TestParseNewClauseErrors(t *testing.T) {
	bad := []string{
		"SELECT TOP 5 WINDOWS OF 300 EVERY 0 FROM Archie RANK BY count(car)",
		"SELECT TOP 5 WINDOWS OF 300 EVERY FROM Archie RANK BY count(car)",
		"SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) PARALLEL 0",
		"SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) PARALLEL x",
		"EXPLAIN EXPLAIN SELECT TOP 5 FRAMES FROM Archie RANK BY count(car)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("statement %q should fail to parse", src)
		}
	}
}

func TestExecuteRejectsExplain(t *testing.T) {
	_, _, err := Execute("EXPLAIN SELECT TOP 5 FRAMES FROM Archie RANK BY count(car)")
	if err == nil || !strings.Contains(err.Error(), "Explain") {
		t.Fatalf("Execute on EXPLAIN should direct to Explain, got %v", err)
	}
}

func TestExplainDescribesPlan(t *testing.T) {
	out, err := Explain("EXPLAIN SELECT TOP 10 WINDOWS OF 300 EVERY 30 FROM Archie RANK BY count(car) THRESHOLD 0.95 PARALLEL 4 LIMIT FRAMES 9000")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"top-10", "size=300 stride=30", "union bound", "0.95",
		"4 workers", "scan-and-test", "phase 1", "phase 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainWorksWithoutKeyword(t *testing.T) {
	out, err := Explain("SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 6000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "frames") || !strings.Contains(out, "Archie") {
		t.Fatalf("explain output incomplete:\n%s", out)
	}
}

func TestExplainBindErrorsSurface(t *testing.T) {
	if _, err := Explain("SELECT TOP 5 FRAMES FROM NoSuchVideo RANK BY count(car)"); err == nil {
		t.Fatal("unknown dataset must fail at bind time")
	}
}

func TestBindPropagatesStrideAndWorkers(t *testing.T) {
	q, err := Parse("SELECT TOP 3 WINDOWS OF 60 EVERY 20 FROM Archie RANK BY count(car) PARALLEL 2 LIMIT FRAMES 6000")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Bind(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.Window != 60 || plan.Config.Stride != 20 {
		t.Fatalf("plan window/stride = %d/%d", plan.Config.Window, plan.Config.Stride)
	}
	if plan.Workers != 2 {
		t.Fatalf("plan workers = %d, want 2", plan.Workers)
	}
}

func TestExecuteSlidingWindowStatement(t *testing.T) {
	res, plan, err := Execute("SELECT TOP 3 WINDOWS OF 60 EVERY 30 FROM Archie RANK BY count(car) LIMIT FRAMES 6000 SEED 4")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.Stride != 30 {
		t.Fatalf("plan stride = %d", plan.Config.Stride)
	}
	if !res.IsWindow || res.WindowStride != 30 {
		t.Fatalf("result metadata: %+v", res)
	}
	if res.Bound.String() != "union" {
		t.Fatalf("overlapping EQL windows must use the union bound, got %v", res.Bound)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
}

func TestExecuteParallelStatement(t *testing.T) {
	res, plan, err := Execute("SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) PARALLEL 2 LIMIT FRAMES 6000 SEED 4")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workers != 2 {
		t.Fatalf("plan workers = %d", plan.Workers)
	}
	if len(res.IDs) != 5 || res.Confidence < 0.9 {
		t.Fatalf("parallel EQL result: %d ids, confidence %v", len(res.IDs), res.Confidence)
	}
}
