package eql

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError is the positioned error every lexer and parser failure
// surfaces: Pos is the byte offset into the source script where the
// offending token starts, so multi-statement scripts report where, not
// just what.
type ParseError struct {
	// Pos is the byte offset of the offending token in the source.
	Pos int
	// AtEOF marks an error caused by the source ending too early (an
	// incomplete statement or an unterminated string) — the REPL's
	// multi-line continuation signal: more input may complete the
	// statement, whereas a mid-source error never can.
	AtEOF bool
	// Msg is the human-readable description.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("eql: position %d: %s", e.Pos, e.Msg)
}

// Script is a parsed EQL script: one or more statements separated by
// semicolons, compiled and executed as one coordinated set (see
// BindScript and ScriptSession).
type Script struct {
	Statements []*Statement
}

// Statement is the AST of one EQL statement.
//
//	[EXPLAIN [ANALYZE]] SELECT [STREAM] TOP k
//	  (FRAMES | WINDOWS OF n [EVERY m])
//	  FROM source ("," source)*
//	  RANK BY predicate (AND predicate)*
//	  [THRESHOLD p] [SAMPLE f] [LIMIT FRAMES n] [SEED s] [PARALLEL w]
//
// A statement with several sources (cross-video) or several predicates
// (AND) compiles to one engine plan per (source, predicate) pair; the
// AND combination is computed over the per-predicate answers (see
// StatementResult.And).
type Statement struct {
	// Pos is the byte offset of the statement's first token.
	Pos int
	// Explain marks an EXPLAIN statement: bind and describe, do not run.
	Explain bool
	// Analyze marks an EXPLAIN ANALYZE statement: plan, run the chosen
	// plan, and report predicted vs actual cost. Implies Explain.
	Analyze bool
	// Stream marks a continuous query (SELECT STREAM …): compiled to a
	// follower registration on a live stream instead of a batch run.
	Stream bool
	// K is the result size.
	K int
	// Window is the window length in frames; 0 for frame queries.
	Window int
	// Stride is the window start offset (WINDOWS OF n EVERY m); 0 means
	// Window (tumbling).
	Stride int
	// Parallel is the scale-out worker count; 0 or 1 means serial.
	Parallel int
	// Sources are the video sources (FROM a, b); at least one.
	Sources []SourceRef
	// Predicates are the ranking functions (RANK BY p AND q); at least
	// one.
	Predicates []Predicate
	// Threshold is the probabilistic guarantee; 0 means the 0.9 default.
	Threshold float64
	// SampleFrac overrides window confirmation sampling; 0 means default.
	SampleFrac float64
	// Frames overrides the dataset's frame count; 0 means default.
	Frames int
	// Seed fixes the query's randomness; 0 means default.
	Seed uint64
}

// SourceRef is one FROM operand with its source position.
type SourceRef struct {
	Pos  int
	Name string
}

// Predicate is one RANK BY operand: a ranking function application.
type Predicate struct {
	Pos int
	// UDF is the function name, lowercased: count, tailgate or sentiment.
	UDF string
	// Arg is the argument (the class for count); "" when absent.
	Arg string
}

// String renders the predicate in canonical form.
func (p Predicate) String() string {
	return fmt.Sprintf("%s(%s)", printName(p.UDF), printArg(p.Arg))
}

// Dataset returns the first source's name — the whole statement's
// dataset for the common single-source case.
func (s *Statement) Dataset() string {
	if len(s.Sources) == 0 {
		return ""
	}
	return s.Sources[0].Name
}

// UDF returns the first predicate's function name.
func (s *Statement) UDF() string {
	if len(s.Predicates) == 0 {
		return ""
	}
	return s.Predicates[0].UDF
}

// UDFArg returns the first predicate's argument.
func (s *Statement) UDFArg() string {
	if len(s.Predicates) == 0 {
		return ""
	}
	return s.Predicates[0].Arg
}

// String renders the statement in canonical form: keywords uppercase,
// names quoted where the bare identifier syntax cannot express them,
// options in a fixed order. The rendering reparses to an equivalent
// statement and is a fixed point of parse∘print — the round-trip
// invariant FuzzParseEQL locks.
func (s *Statement) String() string {
	var b strings.Builder
	if s.Analyze {
		b.WriteString("EXPLAIN ANALYZE ")
	} else if s.Explain {
		b.WriteString("EXPLAIN ")
	}
	b.WriteString("SELECT ")
	if s.Stream {
		b.WriteString("STREAM ")
	}
	fmt.Fprintf(&b, "TOP %d ", s.K)
	if s.Window > 0 {
		fmt.Fprintf(&b, "WINDOWS OF %d", s.Window)
		if s.Stride > 0 {
			fmt.Fprintf(&b, " EVERY %d", s.Stride)
		}
	} else {
		b.WriteString("FRAMES")
	}
	b.WriteString(" FROM ")
	for i, src := range s.Sources {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteName(src.Name))
	}
	b.WriteString(" RANK BY ")
	for i, p := range s.Predicates {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(p.String())
	}
	if s.Threshold > 0 {
		fmt.Fprintf(&b, " THRESHOLD %s", formatFloat(s.Threshold))
	}
	if s.SampleFrac > 0 {
		fmt.Fprintf(&b, " SAMPLE %s", formatFloat(s.SampleFrac))
	}
	if s.Frames > 0 {
		fmt.Fprintf(&b, " LIMIT FRAMES %d", s.Frames)
	}
	if s.Seed > 0 {
		fmt.Fprintf(&b, " SEED %d", s.Seed)
	}
	if s.Parallel > 0 {
		fmt.Fprintf(&b, " PARALLEL %d", s.Parallel)
	}
	return b.String()
}

// String renders the script in canonical form, one statement per line.
func (s *Script) String() string {
	parts := make([]string, len(s.Statements))
	for i, st := range s.Statements {
		parts[i] = st.String()
	}
	return strings.Join(parts, ";\n")
}

// formatFloat renders a float without exponent notation (the lexer has
// no exponent syntax, so %g output would not reparse).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// identLike reports whether the lexer would read s back as one bare
// identifier token.
func identLike(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case i > 0 && (r == '-' || r >= '0' && r <= '9'):
		default:
			return false
		}
	}
	return true
}

// quoteName renders a name as a string literal. The lexer's strings
// have no escapes, so the quote character is chosen to avoid the
// content (a lexed name can never contain both quote kinds).
func quoteName(s string) string {
	if strings.Contains(s, `"`) {
		return "'" + s + "'"
	}
	return `"` + s + `"`
}

// printName renders a function name: bare when the identifier syntax
// can express it, quoted otherwise.
func printName(s string) string {
	if identLike(s) {
		return s
	}
	return quoteName(s)
}

// printArg renders a predicate argument: empty stays empty (count()),
// anything else is quoted.
func printArg(s string) string {
	if s == "" {
		return ""
	}
	return quoteName(s)
}
