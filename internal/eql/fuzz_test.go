package eql

import (
	"errors"
	"testing"
)

// FuzzParseEQL hammers the whole language front end with two
// invariants:
//
//  1. lex→parse never panics, and every rejection is a *ParseError
//     whose position lies inside the source — the REPL and script
//     surfaces render Pos unconditionally.
//  2. parse→print→reparse is a fixed point: an accepted script's
//     canonical rendering reparses, and reparsing it prints the same
//     canonical text (so the printer emits exactly the language the
//     parser accepts — quoting, float formatting, option order and
//     all).
func FuzzParseEQL(f *testing.F) {
	seeds := []string{
		``,
		`SELECT TOP 50 FRAMES FROM "Taipei-bus" RANK BY count(car) THRESHOLD 0.9`,
		`select top 10 windows of 150 every 30 from Archie rank by count() sample 0.2 seed 7`,
		`SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) AND count(bus) LIMIT FRAMES 4000`,
		`SELECT TOP 5 FRAMES FROM Archie, "Grand-Canal" RANK BY count()`,
		`SELECT STREAM TOP 3 FRAMES FROM Archie RANK BY count(car)`,
		`EXPLAIN ANALYZE SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) SEED 3`,
		`SELECT TOP 5 FRAMES FROM a RANK BY count(car); SELECT TOP 3 WINDOWS OF 30 FROM a RANK BY count(car);`,
		`SELECT TOP 5 FRAMES FROM 'single"quote' RANK BY "weird name"("the arg") PARALLEL 2`,
		`;;; SELECT TOP 1 FRAMES FROM a RANK BY tailgate ;;`,
		`SELECT TOP 5 CLIPS FROM a RANK BY count`,
		`SELECT TOP 5 FRAMES FROM "unclosed RANK BY count`,
		`SELECT TOP 9999999999999999999 FRAMES FROM a RANK BY count`,
		`SELECT TOP 5 FRAMES FROM a RANK BY count(car) THRESHOLD 0.000000001`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseScript(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseScript(%q) error %v (%T) is not a *ParseError", src, err, err)
			}
			if pe.Pos < 0 || pe.Pos > len(src) {
				t.Fatalf("ParseScript(%q) error position %d outside source (len %d)", src, pe.Pos, len(src))
			}
			return
		}
		printed := s.String()
		s2, err := ParseScript(printed)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", printed, src, err)
		}
		if len(s2.Statements) != len(s.Statements) {
			t.Fatalf("canonical form %q reparses to %d statements, want %d", printed, len(s2.Statements), len(s.Statements))
		}
		if got := s2.String(); got != printed {
			t.Fatalf("canonical form is not a fixed point:\nsource %q\n first %q\nsecond %q", src, printed, got)
		}
	})
}
