package eql

import (
	"reflect"
	"strings"
	"testing"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/vision"
)

const scriptA = `SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 3000 SEED 3`
const scriptB = `SELECT TOP 3 WINDOWS OF 30 FROM Archie RANK BY count(car) LIMIT FRAMES 3000 SEED 3`
const scriptC = `SELECT TOP 4 FRAMES FROM Archie RANK BY count(car) THRESHOLD 0.95 LIMIT FRAMES 3000 SEED 3`

func TestBindScriptSharesRelations(t *testing.T) {
	s, err := ParseScript(scriptA + ";" + scriptB + ";" +
		`SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 3000 SEED 5`)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := BindScript(s)
	if err != nil {
		t.Fatal(err)
	}
	// Statements 1 and 2 share (Archie, 3000, count(car), 3); statement 3
	// differs in seed, so it is its own relation.
	if len(sp.Relations) != 2 {
		t.Fatalf("%d relations, want 2", len(sp.Relations))
	}
	if got := sp.SharedUnits(); got != 1 {
		t.Fatalf("SharedUnits() = %d, want 1", got)
	}
	rel := sp.Relations[0]
	if len(rel.Units) != 2 {
		t.Fatalf("first relation has %d units, want 2", len(rel.Units))
	}
	// Shared units are rebound to the relation's one source and UDF
	// instance, so the shared session sees a single identity.
	if rel.Units[0].Source != rel.Units[1].Source || rel.Units[0].UDF != rel.Units[1].UDF {
		t.Fatal("shared units must share the relation's source and UDF instances")
	}
}

func TestBindScriptAllOrNothing(t *testing.T) {
	src := scriptA + `; SELECT TOP 5 FRAMES FROM NoSuchVideo RANK BY count(car)`
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = BindScript(s)
	if err == nil {
		t.Fatal("bind of a script with an unknown dataset must fail")
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("bind error %v (%T), want *ParseError", err, err)
	}
	if want := strings.Index(src, "NoSuchVideo"); pe.Pos != want {
		t.Fatalf("bind error at %d, want %d", pe.Pos, want)
	}
}

func asParseError(err error, out **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*out = pe
	}
	return ok
}

// TestScriptSharedSubPlanDeterminism is the in-package version of the
// root golden test: a script whose statements share a relation is
// bit-identical — results and charges — to executing the statements one
// at a time in order on a fresh session, and cheaper in total oracle
// calls than independent runs.
func TestScriptSharedSubPlanDeterminism(t *testing.T) {
	script := scriptA + ";" + scriptB + ";" + scriptC

	ss := NewScriptSession()
	together, err := ss.Exec(script)
	if err != nil {
		t.Fatal(err)
	}
	if together.Relations != 1 || together.SharedUnits != 2 {
		t.Fatalf("coordination header wrong: %d relations, %d shared", together.Relations, together.SharedUnits)
	}

	serial := NewScriptSession()
	var serialResults []*everest.Result
	for _, stmt := range []string{scriptA, scriptB, scriptC} {
		r, err := serial.Exec(stmt)
		if err != nil {
			t.Fatal(err)
		}
		serialResults = append(serialResults, r.Statements[0].Units[0].Result)
	}

	independentCalls := 0
	for _, stmt := range []string{scriptA, scriptB, scriptC} {
		fresh := NewScriptSession()
		r, err := fresh.Exec(stmt)
		if err != nil {
			t.Fatal(err)
		}
		independentCalls += r.OracleCalls
	}

	for i, sr := range together.Statements {
		got := sr.Units[0].Result
		want := serialResults[i]
		if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Scores, want.Scores) {
			t.Fatalf("statement %d: script answer differs from serial execution\n got %v\nwant %v", i, got.IDs, want.IDs)
		}
		if got.Confidence != want.Confidence {
			t.Fatalf("statement %d: confidence %v vs serial %v", i, got.Confidence, want.Confidence)
		}
		if got.EngineStats.OracleCalls != want.EngineStats.OracleCalls ||
			got.EngineStats.Cleaned != want.EngineStats.Cleaned {
			t.Fatalf("statement %d: charges differ from serial execution: %+v vs %+v",
				i, got.EngineStats, want.EngineStats)
		}
		if got.Clock.TotalMS() != want.Clock.TotalMS() {
			t.Fatalf("statement %d: simulated cost %v vs serial %v", i, got.Clock.TotalMS(), want.Clock.TotalMS())
		}
	}
	if together.OracleCalls >= independentCalls {
		t.Fatalf("coordinated script paid %d oracle calls, independent sum is %d — sharing must cut the bill",
			together.OracleCalls, independentCalls)
	}
}

func TestScriptAndPredicates(t *testing.T) {
	ss := NewScriptSession()
	res, err := ss.Exec(`SELECT TOP 8 FRAMES FROM Archie RANK BY count(car) AND count(truck) LIMIT FRAMES 3000 SEED 3`)
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Statements[0]
	if len(sr.Units) != 2 {
		t.Fatalf("%d units, want 2", len(sr.Units))
	}
	if len(sr.And) != 1 {
		t.Fatalf("%d AND results, want 1", len(sr.And))
	}
	first := map[int]int{}
	for rank, id := range sr.Units[0].Result.IDs {
		first[id] = rank
	}
	second := map[int]bool{}
	for _, id := range sr.Units[1].Result.IDs {
		second[id] = true
	}
	last := -1
	for _, id := range sr.And[0].IDs {
		rank, inFirst := first[id]
		if !inFirst || !second[id] {
			t.Fatalf("AND id %d is not in both predicates' top-K", id)
		}
		if rank <= last {
			t.Fatalf("AND ids not ordered by the first predicate's rank: %v", sr.And[0].IDs)
		}
		last = rank
	}
	// Two predicates over one video are two UDFs → two relations, no
	// sharing, but still one coordinated budget.
	if res.Relations != 2 || res.SharedUnits != 0 {
		t.Fatalf("AND coordination wrong: %d relations, %d shared", res.Relations, res.SharedUnits)
	}
	if res.Concurrency < 2 {
		t.Fatalf("joint budget must see both units, got concurrency %d", res.Concurrency)
	}
}

func TestScriptCrossVideo(t *testing.T) {
	ss := NewScriptSession()
	res, err := ss.Exec(`SELECT TOP 3 FRAMES FROM Archie, "Grand-Canal" RANK BY count() LIMIT FRAMES 2000 SEED 3`)
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Statements[0]
	if len(sr.Units) != 2 {
		t.Fatalf("%d units, want 2", len(sr.Units))
	}
	if sr.Units[0].Dataset != "Archie" || sr.Units[1].Dataset != "Grand-Canal" {
		t.Fatalf("unit datasets wrong: %q, %q", sr.Units[0].Dataset, sr.Units[1].Dataset)
	}
	// count() defaults to each source's target class.
	if sr.Units[1].Predicate != "count(boat)" {
		t.Fatalf("Grand-Canal unit bound %q, want count(boat)", sr.Units[1].Predicate)
	}
	for _, ur := range sr.Units {
		if ur.Result == nil || len(ur.Result.IDs) != 3 {
			t.Fatalf("unit %s/%s incomplete: %+v", ur.Dataset, ur.Predicate, ur.Result)
		}
	}
}

func TestScriptStreamStatements(t *testing.T) {
	ss := NewScriptSession()
	// Unattached live stream: the statement fails with its source
	// position, the script session survives.
	src := `SELECT STREAM TOP 3 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 2000`
	_, err := ss.Exec(src)
	if err == nil || !strings.Contains(err.Error(), "no live stream attached") {
		t.Fatalf("unattached STREAM statement: %v", err)
	}

	vsrc, _, err := bindSource(SourceRef{Name: "Archie"}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	live, err := everest.OpenLive(vsrc, vision.CountUDF{Class: vsrc.TargetClass()},
		everest.Config{K: 3, Seed: 3}, everest.LiveConfig{SegmentFrames: 600})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	ss.AttachLive("Archie", live)
	res, err := ss.Exec(src)
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Statements[0]
	if len(sr.Followers) != 1 {
		t.Fatalf("%d followers registered, want 1", len(sr.Followers))
	}
	if err := live.Append(600); err != nil {
		t.Fatal(err)
	}
	if a := sr.Followers[0].Answer(); a == nil || len(a.IDs) != 3 {
		t.Fatalf("follower answer after a segment close: %+v", a)
	}
	// STREAM statements never build batch relations.
	if len(ss.Entries()) != 0 {
		t.Fatalf("STREAM registration must not ingest, have %d entries", len(ss.Entries()))
	}
}

func TestScriptExplainAndAnalyze(t *testing.T) {
	ss := NewScriptSession()
	res, err := ss.Exec(`EXPLAIN ` + scriptA)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Statements[0].Explain, "plan: everest top-5") {
		t.Fatalf("explain text wrong:\n%s", res.Statements[0].Explain)
	}
	if len(ss.Entries()) != 0 {
		t.Fatal("EXPLAIN must not ingest")
	}

	res, err = ss.Exec(`EXPLAIN ANALYZE ` + scriptA + ";" + scriptB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statements[0].Analyze == nil {
		t.Fatal("EXPLAIN ANALYZE statement must carry a report")
	}
	if res.Statements[1].Units[0].Result == nil {
		t.Fatal("plain statement next to an analyze must still run")
	}
	if len(ss.Entries()) != 1 {
		t.Fatalf("analyze and plain statement share one relation, have %d", len(ss.Entries()))
	}
}

func TestExplainScriptRendering(t *testing.T) {
	out, err := ExplainScript(scriptA + ";" + scriptB)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"script: 2 statement(s)",
		"one budget: concurrency 2, coalesce on, mux on",
		"shared work:",
		"ingest bound once",
		"totals: coordinated",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ExplainScript output missing %q:\n%s", want, out)
		}
	}
}
