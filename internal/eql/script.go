package eql

import (
	"fmt"
	"sort"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/eql/planner"
)

// ScriptOptions tunes script execution.
type ScriptOptions struct {
	// Procs pins the engine worker count for every unit (0 = engine
	// default). Wall-clock only: results and simulated charges are
	// bit-identical for any value.
	Procs int
	// MaxLagChunks is the staleness bound handed to STREAM follower
	// registrations (0 = segment cadence only).
	MaxLagChunks int
}

// ScriptSession executes EQL scripts over persistent shared sub-plans:
// one ingestion index + session per (dataset, frames, UDF, seed)
// relation, built lazily on first use and reused by every later
// statement — in the same script or a later Exec call. It is the EQL
// layer's serving surface: the REPL and `cmd/everest -script` both run
// on one ScriptSession. Not safe for concurrent use.
//
// Script execution contract (locked by the script golden test):
//
//   - Statements bound to one relation execute in statement order as
//     one coalesced scheduler group over the relation's shared cache
//     (Scheduler.SubmitGroup), so results AND per-statement simulated
//     charges are bit-identical to executing the statements one at a
//     time in script order — coalescing changes who pays, never what
//     anyone gets.
//   - Overlapping confirmations are charged once to the first statement
//     that needs them, so a script's total oracle bill is strictly
//     below the sum of independent single-statement runs whenever
//     statements share a relation.
//   - Relations are independent label domains (different video or UDF),
//     so their groups never interact; the executor runs them in
//     first-appearance order.
type ScriptSession struct {
	entries map[RelationKey]*scriptEntry
	live    map[string]*everest.LiveStream

	// OnIngestStart/OnIngestDone, when set, observe relation ingests
	// (the REPL's "(ingesting …)" messages).
	OnIngestStart func(dataset, udf string)
	OnIngestDone  func(dataset, udf string, ingestMS float64)
}

type scriptEntry struct {
	ix       *everest.Index
	sess     *everest.Session
	ingestMS float64
}

// NewScriptSession returns an empty script session.
func NewScriptSession() *ScriptSession {
	return &ScriptSession{
		entries: make(map[RelationKey]*scriptEntry),
		live:    make(map[string]*everest.LiveStream),
	}
}

// AttachLive registers a live stream under a source name: `SELECT
// STREAM … FROM name …` statements compile to follower registrations
// on it. The stream stays owned by the caller (Append/Seal/Close).
func (ss *ScriptSession) AttachLive(name string, ls *everest.LiveStream) {
	ss.live[name] = ls
}

// UnitResult is one executed plan unit of a statement.
type UnitResult struct {
	// Dataset and Predicate identify the unit within its statement; FPS
	// is the source's frame rate (for rendering frame times).
	Dataset   string
	Predicate string
	FPS       int
	// Result is the unit's answer; nil when the unit failed.
	Result *everest.Result
}

// AndResult is the AND-combination of a multi-predicate statement for
// one source: the IDs present in every predicate's top-K, ordered by
// the first predicate's ranking.
type AndResult struct {
	Dataset string
	IDs     []int
}

// StatementResult is one statement's outcome within a script.
type StatementResult struct {
	// Stmt is the statement AST; Text its canonical rendering.
	Stmt *Statement
	Text string
	// Explain holds the rendered plan for EXPLAIN statements (which do
	// not execute); Analyze the report for EXPLAIN ANALYZE statements.
	Explain string
	Analyze *AnalyzeReport
	// Units are the executed units in (source-major, predicate-minor)
	// order; empty for EXPLAIN and STREAM statements.
	Units []*UnitResult
	// And is the per-source AND-combination, filled only for statements
	// with more than one predicate.
	And []AndResult
	// Followers are the continuous-query registrations of a STREAM
	// statement, one per predicate.
	Followers []*everest.LiveFollower
}

// ScriptResult is the outcome of executing a script.
type ScriptResult struct {
	Statements []*StatementResult
	// Relations and SharedUnits describe the coordinated plan graph:
	// distinct sub-plans bound, and units beyond the first on each (the
	// ingest stages the script did not repeat).
	Relations   int
	SharedUnits int
	// Concurrency, Coalesce and UseMux echo the joint serving budget the
	// set planner chose (script width + observed in-flight arrivals).
	Concurrency int
	Coalesce    bool
	UseMux      bool
	// PredictedSavedMS is the planner's forecast of what coordination
	// saves over independent runs.
	PredictedSavedMS float64
	// OracleCalls, Cleaned and TotalMS sum the executed units' charges.
	OracleCalls int
	Cleaned     int
	TotalMS     float64
}

// Exec parses and executes a script with default options.
func (ss *ScriptSession) Exec(src string) (*ScriptResult, error) {
	return ss.ExecWith(src, ScriptOptions{})
}

// ExecWith parses and executes a script.
func (ss *ScriptSession) ExecWith(src string, opt ScriptOptions) (*ScriptResult, error) {
	script, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	return ss.ExecScript(script, opt)
}

// ExecScript binds and executes a parsed script. Binding is
// all-or-nothing; execution failures cost only the failing unit (its
// slot stays nil) and the first error is returned alongside the
// results, mirroring Session.QueryBatch.
func (ss *ScriptSession) ExecScript(script *Script, opt ScriptOptions) (*ScriptResult, error) {
	sp, err := BindScript(script)
	if err != nil {
		return nil, err
	}

	res := &ScriptResult{
		Relations:   len(sp.Relations),
		SharedUnits: sp.SharedUnits(),
	}
	for _, stp := range sp.Statements {
		res.Statements = append(res.Statements, &StatementResult{
			Stmt: stp.Stmt,
			Text: stp.Stmt.String(),
		})
	}

	// Ensure the shared sub-plans: one index + session per relation that
	// some statement will actually run against (EXPLAIN statements
	// describe, they never ingest).
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	needed := ss.neededRelations(sp)
	entries := make(map[*Relation]*scriptEntry, len(needed))
	for _, rel := range needed {
		ent, err := ss.entryFor(rel, opt)
		if err != nil {
			return res, err
		}
		entries[rel] = ent
	}

	// One scheduling budget for the whole set: concurrency derived from
	// the script's own unit count plus the scheduler's observed
	// in-flight arrivals — never a caller hint.
	units := runnableUnits(sp)
	observed := 0
	for _, ent := range entries {
		if n := ent.sess.ObservedInFlight(); n > observed {
			observed = n
		}
	}
	setPlan := planner.ChooseSet(setInput(sp, units, observed))
	res.Concurrency = setPlan.Concurrency
	res.Coalesce = setPlan.Coalesce
	res.UseMux = setPlan.UseMux
	res.PredictedSavedMS = setPlan.SavedMS()

	// EXPLAIN statements render without executing.
	for i, stp := range sp.Statements {
		if stp.Stmt.Explain && !stp.Stmt.Analyze {
			res.Statements[i].Explain = explainStatementPlan(stp, sp, setPlan)
		}
	}

	// Execute each relation's units in statement order as coalesced
	// groups; EXPLAIN ANALYZE units break the group at their position so
	// the whole per-relation sequence stays bit-identical to serial
	// statement order.
	for _, rel := range needed {
		keep(ss.runRelation(rel, entries[rel], sp, res, setPlan, opt))
	}

	// Scale-out (PARALLEL) units bypass the session machinery, exactly
	// like the REPL's scale-out path.
	for _, stp := range sp.Statements {
		for ui, u := range stp.Units {
			if u.Workers <= 1 {
				continue
			}
			pres, err := everest.RunParallel(u.Source, u.UDF, u.Config, u.Workers)
			if err != nil {
				keep(err)
				setUnitResult(res.Statements[u.Stmt], ui, u, nil)
				continue
			}
			setUnitResult(res.Statements[u.Stmt], ui, u, &pres.Result)
		}
	}

	// STREAM statements register followers on attached live streams.
	for i, stp := range sp.Statements {
		if !stp.Stmt.Stream {
			continue
		}
		keep(ss.registerFollowers(stp, res.Statements[i], opt))
	}

	// Statement-level post-processing: AND-combinations and totals.
	for _, sr := range res.Statements {
		sr.And = andCombine(sr)
		for _, ur := range sr.Units {
			if ur != nil && ur.Result != nil {
				res.OracleCalls += ur.Result.EngineStats.OracleCalls
				res.Cleaned += ur.Result.EngineStats.Cleaned
				res.TotalMS += ur.Result.Clock.TotalMS()
			}
		}
		if sr.Analyze != nil && sr.Analyze.Result != nil {
			res.OracleCalls += sr.Analyze.Result.EngineStats.OracleCalls
			res.Cleaned += sr.Analyze.Result.EngineStats.Cleaned
			res.TotalMS += sr.Analyze.Result.Clock.TotalMS()
		}
	}
	return res, firstErr
}

// neededRelations filters a plan's relations to those with at least one
// unit that will execute (EXPLAIN-only relations never ingest),
// preserving first-appearance order.
func (ss *ScriptSession) neededRelations(sp *ScriptPlan) []*Relation {
	var out []*Relation
	for _, rel := range sp.Relations {
		for _, u := range rel.Units {
			stmt := sp.Statements[u.Stmt].Stmt
			if !stmt.Explain || stmt.Analyze {
				out = append(out, rel)
				break
			}
		}
	}
	return out
}

// runnableUnits lists the units the batch executor will submit (bound
// to a relation, not EXPLAIN-only, not EXPLAIN ANALYZE — those run via
// the analyze path but still share the relation's cache and budget).
func runnableUnits(sp *ScriptPlan) []*Unit {
	var out []*Unit
	for _, u := range sp.Units {
		if u.Rel == nil {
			continue
		}
		stmt := sp.Statements[u.Stmt].Stmt
		if stmt.Explain && !stmt.Analyze {
			continue
		}
		out = append(out, u)
	}
	return out
}

// setInput assembles the joint planner's view of the runnable set.
func setInput(sp *ScriptPlan, units []*Unit, observed int) planner.SetInput {
	in := planner.SetInput{Observed: observed}
	idx := make(map[*Unit]int, len(units))
	for i, u := range units {
		idx[u] = i
		in.Units = append(in.Units, unitPlannerInput(u))
	}
	for _, rel := range sp.Relations {
		var group []int
		for _, u := range rel.Units {
			if i, ok := idx[u]; ok {
				group = append(group, i)
			}
		}
		if len(group) > 0 {
			in.Shared = append(in.Shared, group)
		}
	}
	return in
}

// entryFor returns the session for a relation, ingesting its index on
// first use. Entries persist across Exec calls — the script session's
// relations are its long-lived shared sub-plans.
func (ss *ScriptSession) entryFor(rel *Relation, opt ScriptOptions) (*scriptEntry, error) {
	if ent, ok := ss.entries[rel.Key]; ok {
		return ent, nil
	}
	cfg := rel.Units[0].Config
	if opt.Procs > 0 {
		cfg.Procs = opt.Procs
	}
	if ss.OnIngestStart != nil {
		ss.OnIngestStart(rel.Source.Name(), rel.UDF.Name())
	}
	ix, err := everest.BuildIndex(rel.Source, rel.UDF, cfg)
	if err != nil {
		return nil, err
	}
	sess, err := everest.NewSession(ix, rel.Source, rel.UDF)
	if err != nil {
		return nil, err
	}
	ent := &scriptEntry{ix: ix, sess: sess, ingestMS: ix.IngestMS()}
	ss.entries[rel.Key] = ent
	if ss.OnIngestDone != nil {
		ss.OnIngestDone(rel.Source.Name(), rel.UDF.Name(), ent.ingestMS)
	}
	return ent, nil
}

// SessionFor exposes the (index, session) pair for a bound single-unit
// plan, ingesting on first use — the REPL's EXPLAIN ANALYZE hook.
func (ss *ScriptSession) SessionFor(plan *Plan, opt ScriptOptions) (*everest.Index, *everest.Session, error) {
	rel := &Relation{
		Key: RelationKey{
			Dataset: plan.Source.Name(),
			Frames:  plan.Source.NumFrames(),
			UDF:     plan.UDF.Name(),
			Seed:    plan.Config.Seed,
		},
		Source: plan.Source,
		UDF:    plan.UDF,
		Units:  []*Unit{{Source: plan.Source, UDF: plan.UDF, Config: plan.Config, Workers: plan.Workers}},
	}
	ent, err := ss.entryFor(rel, opt)
	if err != nil {
		return nil, nil, err
	}
	return ent.ix, ent.sess, nil
}

// runRelation executes one relation's units in statement order:
// consecutive plain units form one coalesced group (SubmitGroup over
// the shared cache — bit-identical to running them serially), and an
// EXPLAIN ANALYZE unit flushes the pending group and runs at its exact
// position, so the relation's full sequence equals serial statement
// order.
func (ss *ScriptSession) runRelation(rel *Relation, ent *scriptEntry, sp *ScriptPlan, res *ScriptResult, setPlan planner.SetPlan, opt ScriptOptions) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	var pending []*Unit
	flush := func() {
		if len(pending) == 0 {
			return
		}
		cfgs := make([]everest.Config, len(pending))
		for i, u := range pending {
			cfg := u.Config
			if opt.Procs > 0 {
				cfg.Procs = opt.Procs
			}
			// The group is pre-formed, so Coalesce routes it through
			// SubmitGroup; no CoalesceWait — there is nothing to hold the
			// group open for. UseMux is the set's one budget.
			cfg.Coalesce = true
			cfg.UseMux = setPlan.UseMux
			cfgs[i] = cfg
		}
		results, err := ent.sess.QueryBatch(cfgs)
		keep(err)
		for i, u := range pending {
			var r *everest.Result
			if results != nil {
				r = results[i]
			}
			setUnitResult(res.Statements[u.Stmt], unitIndexIn(sp.Statements[u.Stmt], u), u, r)
		}
		pending = pending[:0]
	}

	for _, u := range rel.Units {
		stmt := sp.Statements[u.Stmt].Stmt
		switch {
		case stmt.Explain && !stmt.Analyze:
			continue
		case stmt.Analyze:
			flush()
			rep, err := AnalyzeOnSession(stmt.String(), ent.ix, ent.sess,
				AnalyzeOptions{Procs: opt.Procs, Concurrency: setPlan.Concurrency})
			if err != nil {
				keep(err)
				continue
			}
			res.Statements[u.Stmt].Analyze = rep
		default:
			pending = append(pending, u)
		}
	}
	flush()
	return firstErr
}

// registerFollowers compiles a STREAM statement to follower
// registrations on the attached live stream.
func (ss *ScriptSession) registerFollowers(stp *StatementPlan, sr *StatementResult, opt ScriptOptions) error {
	stmt := stp.Stmt
	for _, u := range stp.StreamUnits {
		ls, ok := ss.live[stmt.Sources[u.SourceIdx].Name]
		if !ok {
			return &ParseError{Pos: stmt.Sources[u.SourceIdx].Pos,
				Msg: fmt.Sprintf("no live stream attached as %q (ScriptSession.AttachLive)", stmt.Sources[u.SourceIdx].Name)}
		}
		fol, err := ls.Follow(u.Config, opt.MaxLagChunks, nil)
		if err != nil {
			return err
		}
		sr.Followers = append(sr.Followers, fol)
	}
	return nil
}

// unitIndexIn locates a unit within its statement plan's unit list.
func unitIndexIn(stp *StatementPlan, u *Unit) int {
	for i, v := range stp.Units {
		if v == u {
			return i
		}
	}
	return -1
}

// setUnitResult records a unit's outcome at its slot in the statement's
// result, growing the slice to the statement's unit count on first use.
func setUnitResult(sr *StatementResult, idx int, u *Unit, r *everest.Result) {
	if idx < 0 {
		return
	}
	for len(sr.Units) <= idx {
		sr.Units = append(sr.Units, nil)
	}
	sr.Units[idx] = &UnitResult{
		Dataset:   u.Source.Name(),
		Predicate: u.UDF.Name(),
		FPS:       u.Source.FPS(),
		Result:    r,
	}
}

// andCombine computes the AND-combination of a multi-predicate
// statement: per source, the IDs present in every predicate's top-K,
// ordered by the first predicate's ranking. It is deterministic pure
// post-processing over the per-unit answers — the engine's per-unit
// guarantees are untouched.
func andCombine(sr *StatementResult) []AndResult {
	stmt := sr.Stmt
	if stmt == nil || len(stmt.Predicates) < 2 || len(sr.Units) == 0 {
		return nil
	}
	np := len(stmt.Predicates)
	var out []AndResult
	for si := range stmt.Sources {
		base := si * np
		if base+np > len(sr.Units) {
			return out
		}
		first := sr.Units[base]
		if first == nil || first.Result == nil {
			continue
		}
		ok := true
		inAll := make(map[int]int, len(first.Result.IDs)) // id -> count of predicate sets containing it
		for _, id := range first.Result.IDs {
			inAll[id] = 1
		}
		for p := 1; p < np; p++ {
			ur := sr.Units[base+p]
			if ur == nil || ur.Result == nil {
				ok = false
				break
			}
			for _, id := range ur.Result.IDs {
				if c, present := inAll[id]; present && c == p {
					inAll[id] = p + 1
				}
			}
		}
		if !ok {
			continue
		}
		ids := make([]int, 0, len(inAll))
		for _, id := range first.Result.IDs {
			if inAll[id] == np {
				ids = append(ids, id)
			}
		}
		out = append(out, AndResult{Dataset: first.Dataset, IDs: ids})
	}
	return out
}

// Entries lists the session's open relations, sorted by key — the
// REPL's `sessions` command.
type EntryInfo struct {
	Key          string
	Queries      int
	CachedLabels int
	IngestMS     float64
}

// Entries returns the open relations' serving statistics.
func (ss *ScriptSession) Entries() []EntryInfo {
	keys := make([]RelationKey, 0, len(ss.entries))
	for k := range ss.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	out := make([]EntryInfo, 0, len(keys))
	for _, k := range keys {
		ent := ss.entries[k]
		out = append(out, EntryInfo{
			Key:          k.String(),
			Queries:      ent.sess.Queries(),
			CachedLabels: ent.sess.CachedLabels(),
			IngestMS:     ent.ingestMS,
		})
	}
	return out
}
