package eql

import (
	"fmt"
	"strconv"
	"strings"
)

// parser consumes the token stream.
type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// errf builds a positioned parse error anchored at t. AtEOF is set when
// the source simply ended too early — the incomplete-statement signal
// the REPL's multi-line continuation keys on.
func (p *parser) errf(t token, format string, args ...any) error {
	return &ParseError{Pos: t.pos, AtEOF: t.kind == tokEOF, Msg: fmt.Sprintf(format, args...)}
}

// keyword consumes an identifier matching word (case-insensitive).
func (p *parser) keyword(word string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, word) {
		return p.errf(t, "expected %s, got %s", word, t)
	}
	return nil
}

func (p *parser) tryKeyword(word string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) integer(what string) (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errf(t, "expected %s, got %s", what, t)
	}
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf(t, "%s must be an integer, got %q", what, t.text)
	}
	return v, nil
}

func (p *parser) number(what string) (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errf(t, "expected %s, got %s", what, t)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf(t, "invalid %s %q", what, t.text)
	}
	return v, nil
}

func (p *parser) name(what string) (string, token, error) {
	t := p.next()
	if t.kind != tokIdent && t.kind != tokString {
		return "", t, p.errf(t, "expected %s, got %s", what, t)
	}
	return t.text, t, nil
}

// ParseScript parses a semicolon-separated EQL script. Empty statements
// (stray or trailing semicolons) are skipped; every parse error carries
// the byte position of the offending token (*ParseError).
func ParseScript(src string) (*Script, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	script := &Script{}
	for {
		for p.peek().kind == tokSemi {
			p.next()
		}
		if p.peek().kind == tokEOF {
			return script, nil
		}
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		script.Statements = append(script.Statements, stmt)
	}
}

// Parse parses exactly one EQL statement (a script of length one).
func Parse(src string) (*Statement, error) {
	script, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	switch len(script.Statements) {
	case 0:
		return nil, &ParseError{Pos: len(src), AtEOF: true, Msg: "expected SELECT, got end of statement"}
	case 1:
		return script.Statements[0], nil
	default:
		return nil, &ParseError{Pos: script.Statements[1].Pos,
			Msg: fmt.Sprintf("expected one statement, script has %d (use ParseScript)", len(script.Statements))}
	}
}

// statement parses one statement up to (not including) its terminating
// semicolon or EOF.
func (p *parser) statement() (*Statement, error) {
	q := &Statement{Pos: p.peek().pos}
	var err error

	if p.tryKeyword("EXPLAIN") {
		q.Explain = true
		if p.tryKeyword("ANALYZE") {
			q.Analyze = true
		}
	}
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	if p.tryKeyword("STREAM") {
		q.Stream = true
	}
	if err := p.keyword("TOP"); err != nil {
		return nil, err
	}
	if q.K, err = p.integer("K"); err != nil {
		return nil, err
	}
	if q.K <= 0 {
		return nil, p.errf(p.toks[p.i-1], "TOP %d must be positive", q.K)
	}

	switch {
	case p.tryKeyword("FRAMES"):
		// frame query
	case p.tryKeyword("WINDOWS"):
		if err := p.keyword("OF"); err != nil {
			return nil, err
		}
		if q.Window, err = p.integer("window size"); err != nil {
			return nil, err
		}
		if q.Window <= 0 {
			return nil, p.errf(p.toks[p.i-1], "WINDOWS OF %d must be positive", q.Window)
		}
		if p.tryKeyword("EVERY") {
			if q.Stride, err = p.integer("window stride"); err != nil {
				return nil, err
			}
			if q.Stride <= 0 {
				return nil, p.errf(p.toks[p.i-1], "EVERY %d must be positive", q.Stride)
			}
		}
	default:
		return nil, p.errf(p.peek(), "expected FRAMES or WINDOWS, got %s", p.peek())
	}

	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, tok, err := p.name("dataset name")
		if err != nil {
			return nil, err
		}
		q.Sources = append(q.Sources, SourceRef{Pos: tok.pos, Name: name})
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}

	if err := p.keyword("RANK"); err != nil {
		return nil, err
	}
	if err := p.keyword("BY"); err != nil {
		return nil, err
	}
	for {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		q.Predicates = append(q.Predicates, pred)
		if !p.tryKeyword("AND") {
			break
		}
	}

	for {
		switch {
		case p.tryKeyword("THRESHOLD"):
			if q.Threshold, err = p.number("threshold"); err != nil {
				return nil, err
			}
			if q.Threshold <= 0 || q.Threshold > 1 {
				return nil, p.errf(p.toks[p.i-1], "THRESHOLD %v must be in (0,1]", q.Threshold)
			}
		case p.tryKeyword("SAMPLE"):
			if q.SampleFrac, err = p.number("sample fraction"); err != nil {
				return nil, err
			}
			if q.SampleFrac <= 0 || q.SampleFrac > 1 {
				return nil, p.errf(p.toks[p.i-1], "SAMPLE %v must be in (0,1]", q.SampleFrac)
			}
		case p.tryKeyword("LIMIT"):
			if err := p.keyword("FRAMES"); err != nil {
				return nil, err
			}
			if q.Frames, err = p.integer("frame limit"); err != nil {
				return nil, err
			}
		case p.tryKeyword("SEED"):
			s, err := p.integer("seed")
			if err != nil {
				return nil, err
			}
			q.Seed = uint64(s)
		case p.tryKeyword("PARALLEL"):
			if q.Parallel, err = p.integer("worker count"); err != nil {
				return nil, err
			}
			if q.Parallel <= 0 {
				return nil, p.errf(p.toks[p.i-1], "PARALLEL %d must be positive", q.Parallel)
			}
		default:
			if t := p.peek(); t.kind != tokEOF && t.kind != tokSemi {
				return nil, p.errf(t, "unexpected trailing %s", t)
			}
			return q, nil
		}
	}
}

// predicate parses one ranking-function application: udf, udf() or
// udf(arg).
func (p *parser) predicate() (Predicate, error) {
	name, tok, err := p.name("ranking function")
	if err != nil {
		return Predicate{}, err
	}
	pred := Predicate{Pos: tok.pos, UDF: strings.ToLower(name)}
	if p.peek().kind == tokLParen {
		p.next()
		if p.peek().kind != tokRParen {
			if pred.Arg, _, err = p.name("function argument"); err != nil {
				return Predicate{}, err
			}
		}
		if t := p.next(); t.kind != tokRParen {
			return Predicate{}, p.errf(t, "expected ), got %s", t)
		}
	}
	return pred, nil
}
