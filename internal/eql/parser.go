package eql

import (
	"fmt"
	"strconv"
	"strings"
)

// Query is the parsed form of an EQL statement.
type Query struct {
	// Explain marks an EXPLAIN statement: bind and describe, do not run.
	Explain bool
	// Analyze marks an EXPLAIN ANALYZE statement: plan, run the chosen
	// plan, and report predicted vs actual cost. Implies Explain.
	Analyze bool
	// K is the result size.
	K int
	// Window is the window length in frames; 0 for frame queries.
	Window int
	// Stride is the window start offset (WINDOWS OF n EVERY m); 0 means
	// Window (tumbling).
	Stride int
	// Parallel is the scale-out worker count; 0 or 1 means serial.
	Parallel int
	// Dataset names the video source.
	Dataset string
	// UDF is the ranking function name: count, tailgate or sentiment.
	UDF string
	// UDFArg is the argument (the class for count).
	UDFArg string
	// Threshold is the probabilistic guarantee; 0 means the 0.9 default.
	Threshold float64
	// SampleFrac overrides window confirmation sampling; 0 means default.
	SampleFrac float64
	// Frames overrides the dataset's frame count; 0 means default.
	Frames int
	// Seed fixes the query's randomness; 0 means default.
	Seed uint64
}

// parser consumes the token stream.
type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// keyword consumes an identifier matching word (case-insensitive).
func (p *parser) keyword(word string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, word) {
		return fmt.Errorf("eql: expected %s, got %s", word, t)
	}
	return nil
}

func (p *parser) tryKeyword(word string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) integer(what string) (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("eql: expected %s, got %s", what, t)
	}
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("eql: %s must be an integer, got %q", what, t.text)
	}
	return v, nil
}

func (p *parser) number(what string) (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("eql: expected %s, got %s", what, t)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("eql: invalid %s %q", what, t.text)
	}
	return v, nil
}

func (p *parser) name(what string) (string, error) {
	t := p.next()
	if t.kind != tokIdent && t.kind != tokString {
		return "", fmt.Errorf("eql: expected %s, got %s", what, t)
	}
	return t.text, nil
}

// Parse parses one EQL statement.
func Parse(src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}

	if p.tryKeyword("EXPLAIN") {
		q.Explain = true
		if p.tryKeyword("ANALYZE") {
			q.Analyze = true
		}
	}
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.keyword("TOP"); err != nil {
		return nil, err
	}
	if q.K, err = p.integer("K"); err != nil {
		return nil, err
	}
	if q.K <= 0 {
		return nil, fmt.Errorf("eql: TOP %d must be positive", q.K)
	}

	switch {
	case p.tryKeyword("FRAMES"):
		// frame query
	case p.tryKeyword("WINDOWS"):
		if err := p.keyword("OF"); err != nil {
			return nil, err
		}
		if q.Window, err = p.integer("window size"); err != nil {
			return nil, err
		}
		if q.Window <= 0 {
			return nil, fmt.Errorf("eql: WINDOWS OF %d must be positive", q.Window)
		}
		if p.tryKeyword("EVERY") {
			if q.Stride, err = p.integer("window stride"); err != nil {
				return nil, err
			}
			if q.Stride <= 0 {
				return nil, fmt.Errorf("eql: EVERY %d must be positive", q.Stride)
			}
		}
	default:
		return nil, fmt.Errorf("eql: expected FRAMES or WINDOWS, got %s", p.peek())
	}

	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	if q.Dataset, err = p.name("dataset name"); err != nil {
		return nil, err
	}

	if err := p.keyword("RANK"); err != nil {
		return nil, err
	}
	if err := p.keyword("BY"); err != nil {
		return nil, err
	}
	if q.UDF, err = p.name("ranking function"); err != nil {
		return nil, err
	}
	q.UDF = strings.ToLower(q.UDF)
	if p.peek().kind == tokLParen {
		p.next()
		if p.peek().kind != tokRParen {
			if q.UDFArg, err = p.name("function argument"); err != nil {
				return nil, err
			}
		}
		if t := p.next(); t.kind != tokRParen {
			return nil, fmt.Errorf("eql: expected ), got %s", t)
		}
	}

	for {
		switch {
		case p.tryKeyword("THRESHOLD"):
			if q.Threshold, err = p.number("threshold"); err != nil {
				return nil, err
			}
			if q.Threshold <= 0 || q.Threshold > 1 {
				return nil, fmt.Errorf("eql: THRESHOLD %v must be in (0,1]", q.Threshold)
			}
		case p.tryKeyword("SAMPLE"):
			if q.SampleFrac, err = p.number("sample fraction"); err != nil {
				return nil, err
			}
			if q.SampleFrac <= 0 || q.SampleFrac > 1 {
				return nil, fmt.Errorf("eql: SAMPLE %v must be in (0,1]", q.SampleFrac)
			}
		case p.tryKeyword("LIMIT"):
			if err := p.keyword("FRAMES"); err != nil {
				return nil, err
			}
			if q.Frames, err = p.integer("frame limit"); err != nil {
				return nil, err
			}
		case p.tryKeyword("SEED"):
			s, err := p.integer("seed")
			if err != nil {
				return nil, err
			}
			q.Seed = uint64(s)
		case p.tryKeyword("PARALLEL"):
			if q.Parallel, err = p.integer("worker count"); err != nil {
				return nil, err
			}
			if q.Parallel <= 0 {
				return nil, fmt.Errorf("eql: PARALLEL %d must be positive", q.Parallel)
			}
		default:
			if t := p.next(); t.kind != tokEOF {
				return nil, fmt.Errorf("eql: unexpected trailing %s", t)
			}
			return q, nil
		}
	}
}
