package planner

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
)

// servedInput is a post-ingest (index-backed) frame query: 500 uncertain
// tuples (600 retained minus 100 already exact), K=10.
func servedInput() Input {
	return Input{
		Frames:       3000,
		K:            10,
		UDFFrameMS:   simclock.Default().OracleMS,
		Cost:         simclock.Default(),
		Retained:     600,
		Certain:      100,
		HasIndex:     true,
		CascadeFixed: true,
	}
}

// TestChooseDerivesPaperBatchSize locks the planner to the §3.5
// trade-off: per-launch overhead amortization vs overshooting the
// stopping point by half a batch. At K=10 over 500 uncertain tuples the
// cost curve is 7200/5600/5160/5080/5720/7320 ms for b=1..32 — the
// argmin independently derives the paper's b=8 default.
func TestChooseDerivesPaperBatchSize(t *testing.T) {
	in := servedInput()
	chosen := Choose(in)
	if chosen.Knobs.BatchSize != 8 {
		t.Fatalf("chosen batch = %d, want 8", chosen.Knobs.BatchSize)
	}
	m := in.Cost
	wantByBatch := map[int]float64{
		1:  20*m.OracleMS + 20*m.OracleCallMS,
		2:  20*m.OracleMS + 10*m.OracleCallMS,
		4:  21*m.OracleMS + 6*m.OracleCallMS,
		8:  23*m.OracleMS + 3*m.OracleCallMS,
		16: 27*m.OracleMS + 2*m.OracleCallMS,
		32: 35*m.OracleMS + 2*m.OracleCallMS,
	}
	for _, c := range Enumerate(in) {
		if got, want := c.Pred.ConfirmMS, wantByBatch[c.Knobs.BatchSize]; got != want {
			t.Fatalf("b=%d: ConfirmMS = %v, want %v", c.Knobs.BatchSize, got, want)
		}
		if c.Pred.Phase1MS != 0 {
			t.Fatalf("b=%d: index-backed plan predicted ingest cost %v", c.Knobs.BatchSize, c.Pred.Phase1MS)
		}
	}
	if chosen.Pred.Launches != 3 || chosen.Pred.Cleaned != 23 {
		t.Fatalf("chosen prediction = %d launches / %d cleaned, want 3 / 23", chosen.Pred.Launches, chosen.Pred.Cleaned)
	}
}

func TestEnumerateMarksExactlyOneChosen(t *testing.T) {
	cands := Enumerate(servedInput())
	if len(cands) != 6 {
		t.Fatalf("index-backed grid has %d candidates, want 6 (batch sizes only)", len(cands))
	}
	n := 0
	for _, c := range cands {
		if c.Chosen {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d candidates marked chosen, want 1", n)
	}
}

// TestServingKnobsFollowConcurrency: coalesce/mux are scheduling-only
// knobs — on under expected concurrency (with amortized per-query cost
// and device savings predicted), off for a lone query.
func TestServingKnobsFollowConcurrency(t *testing.T) {
	lone := Choose(servedInput())
	if lone.Knobs.Coalesce || lone.Knobs.UseMux || lone.Knobs.CoalesceWait != 0 {
		t.Fatalf("lone query chose serving knobs: %+v", lone.Knobs)
	}
	if lone.Pred.PerQueryMS != lone.Pred.TotalMS || lone.Pred.MuxSavedMS != 0 {
		t.Fatalf("lone query predicted sharing: %+v", lone.Pred)
	}

	in := servedInput()
	in.Concurrency = 4
	shared := Choose(in)
	if !shared.Knobs.Coalesce || !shared.Knobs.UseMux {
		t.Fatalf("concurrency 4 left serving knobs off: %+v", shared.Knobs)
	}
	if shared.Knobs.CoalesceWait != ServingWait {
		t.Fatalf("CoalesceWait = %v, want %v", shared.Knobs.CoalesceWait, ServingWait)
	}
	if shared.Pred.PerQueryMS >= shared.Pred.TotalMS {
		t.Fatalf("coalesced per-query cost %v not below total %v", shared.Pred.PerQueryMS, shared.Pred.TotalMS)
	}
	if shared.Pred.MuxSavedMS <= 0 {
		t.Fatal("mux predicted no device savings at concurrency 4")
	}
	// Serving knobs must never change the single-query cost prediction.
	if shared.Pred.TotalMS != lone.Pred.TotalMS {
		t.Fatalf("serving knobs changed predicted total: %v vs %v", shared.Pred.TotalMS, lone.Pred.TotalMS)
	}
}

// ingestInput is a pre-ingest frame query where the cascade knob is
// still free.
func ingestInput(cost simclock.CostModel) Input {
	return Input{
		Frames:       1000,
		K:            5,
		UDFFrameMS:   cost.OracleMS,
		Cost:         cost,
		TrainSamples: 600,
	}
}

// TestCascadeChoiceFollowsCostModel: under the default model the diff
// filter pays for itself (cheap MSE prunes expensive proxy scoring and
// shrinks the uncertain relation); under a skewed model where diffing
// is expensive and the proxy near-free, the planner drops the filter.
func TestCascadeChoiceFollowsCostModel(t *testing.T) {
	keep := Choose(ingestInput(simclock.Default()))
	if keep.Knobs.DisableDiff {
		t.Fatalf("default model dropped the diff filter: %+v", keep.Knobs)
	}

	skewed := simclock.Default()
	skewed.DiffMS = 50
	skewed.ProxyMS = 0.1
	drop := Choose(ingestInput(skewed))
	if !drop.Knobs.DisableDiff {
		t.Fatalf("skewed model (diff 50 ms, proxy 0.1 ms) kept the filter: %+v", drop.Knobs)
	}
	if drop.Pred.Phase1MS <= 0 {
		t.Fatal("pre-ingest plan predicted zero Phase 1 cost")
	}
}

// TestProcsHeuristicIsWorkloadSized: wide pool for large workloads,
// serial for small, pinnable by the caller — and always annotated as
// wall-clock-only.
func TestProcsHeuristicIsWorkloadSized(t *testing.T) {
	small := Choose(servedInput())
	if small.Knobs.Procs != 1 {
		t.Fatalf("500-tuple workload chose %d workers, want 1", small.Knobs.Procs)
	}

	big := ingestInput(simclock.Default())
	big.Frames = 30000
	if got := Choose(big).Knobs.Procs; got != WideProcs {
		t.Fatalf("30000-frame ingest chose %d workers, want %d", got, WideProcs)
	}

	pinned := servedInput()
	pinned.PinProcs = 2
	if got := Choose(pinned).Knobs.Procs; got != 2 {
		t.Fatalf("PinProcs=2 chose %d workers", got)
	}

	found := false
	for _, w := range small.Why {
		if strings.Contains(w, "wall-clock only") {
			found = true
		}
	}
	if !found {
		t.Fatalf("procs reasoning missing the wall-clock-only caveat: %v", small.Why)
	}
}

// TestWindowQueryPricesSampledConfirmation: window tuples confirm via
// per-window sampling, so predicted confirmation frames are cleaned ×
// samples-per-window.
func TestWindowQueryPricesSampledConfirmation(t *testing.T) {
	in := servedInput()
	in.Window, in.Stride = 300, 30
	chosen := Choose(in)
	spw := in.samplesPerWindow()
	if spw != 30 {
		t.Fatalf("samplesPerWindow = %d, want 30 (ceil(0.1×300))", spw)
	}
	if chosen.Pred.ConfirmFrames != chosen.Pred.Cleaned*spw {
		t.Fatalf("window confirm frames = %d, want cleaned %d × %d",
			chosen.Pred.ConfirmFrames, chosen.Pred.Cleaned, spw)
	}
}

// TestChooseIsDeterministic: same input, same plan — the planner has no
// hidden state or randomness.
func TestChooseIsDeterministic(t *testing.T) {
	in := servedInput()
	in.Concurrency = 4
	a, b := Choose(in), Choose(in)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two Choose calls diverged:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Why) == 0 {
		t.Fatal("chosen candidate has no reasoning")
	}
}

// freshInput is a pre-ingest unit (no index yet): the set planner must
// price its Phase 1 and share it within a relation group.
func freshInput() Input {
	return Input{
		Frames:       3000,
		K:            10,
		UDFFrameMS:   simclock.Default().OracleMS,
		Cost:         simclock.Default(),
		TrainSamples: 760,
	}
}

// TestChooseSetOneBudget locks the joint serving budget: the set's own
// width plus the observed scheduler backlog decides coalesce and mux
// once for every unit — never a caller hint.
func TestChooseSetOneBudget(t *testing.T) {
	lone := ChooseSet(SetInput{Units: []Input{freshInput()}})
	if lone.Concurrency != 1 || lone.Coalesce || lone.UseMux {
		t.Fatalf("lone unit budget wrong: %+v", lone)
	}
	if lone.SavedMS() != 0 || lone.TotalMS != lone.IndependentMS {
		t.Fatalf("lone unit must price as an independent run: %+v", lone)
	}

	// The same lone unit with an observed backlog turns the serving
	// knobs on: arrivals are facts, not hints.
	busy := ChooseSet(SetInput{Units: []Input{freshInput()}, Observed: 2})
	if busy.Concurrency != 3 || !busy.Coalesce || !busy.UseMux {
		t.Fatalf("observed backlog ignored: %+v", busy)
	}
	if busy.CoalesceWait != ServingWait {
		t.Fatalf("CoalesceWait = %v, want ServingWait", busy.CoalesceWait)
	}
}

// TestChooseSetSharedGroupPricing locks the shared-relation pricing:
// a group pays one ingest and one confirmation bill, so the coordinated
// total is strictly below the independent sum, with the saving split
// into its ingest and confirmation parts.
func TestChooseSetSharedGroupPricing(t *testing.T) {
	set := ChooseSet(SetInput{
		Units:  []Input{freshInput(), freshInput(), freshInput()},
		Shared: [][]int{{0, 1}},
	})
	if set.Concurrency != 3 || !set.Coalesce || !set.UseMux {
		t.Fatalf("set budget wrong: %+v", set)
	}
	if len(set.Units) != 3 {
		t.Fatalf("%d unit candidates, want 3", len(set.Units))
	}
	if set.TotalMS >= set.IndependentMS {
		t.Fatalf("coordinated %v must undercut independent %v", set.TotalMS, set.IndependentMS)
	}
	if set.SharedIngestMS <= 0 || set.SharedConfirmMS <= 0 {
		t.Fatalf("shared savings not priced: ingest %v, confirm %v", set.SharedIngestMS, set.SharedConfirmMS)
	}
	if got, want := set.SavedMS(), set.SharedIngestMS+set.SharedConfirmMS; math.Abs(got-want) > 1e-6 {
		t.Fatalf("SavedMS %v != shared ingest %v + shared confirm %v", got, set.SharedIngestMS, set.SharedConfirmMS)
	}
	foundShare := false
	for _, w := range set.Why {
		if strings.Contains(w, "share one relation") {
			foundShare = true
		}
	}
	if !foundShare {
		t.Fatalf("set reasoning missing the sharing line: %v", set.Why)
	}

	// Determinism: same input, same plan.
	again := ChooseSet(SetInput{
		Units:  []Input{freshInput(), freshInput(), freshInput()},
		Shared: [][]int{{0, 1}},
	})
	if !reflect.DeepEqual(set, again) {
		t.Fatal("ChooseSet is not deterministic")
	}
}
