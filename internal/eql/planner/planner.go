// Package planner chooses engine knob settings for one EQL query by
// pricing candidate plans on the §3.5 simulated cost model and picking
// the cheapest. It is a phase-based, statistics-free greedy planner:
// each knob family is decided by direct cost arithmetic over the few
// numbers Phase 1 already produces (frame count, retained frames,
// already-exact labels) — no cardinality estimator, no learned model.
//
// The knob families, in decision order:
//
//	cascade   ingest proxy-cascade depth: decode→diff→proxy (depth 3)
//	          vs decode→proxy (depth 2). Priced by CostModel.CascadeMS
//	          plus the Phase 2 cost of the extra uncertain tuples a
//	          skipped filter leaves behind. Fixed once an index exists.
//	batch     the Phase 2 cleaning batch b: expected confirmations ×
//	          per-frame oracle cost + expected launches × launch
//	          overhead. Small b pays overhead per tuple; large b
//	          overshoots the stopping point by half a batch.
//	procs     real CPU workers. Wall-clock only — simulated charges and
//	          results are bit-identical for every value — so it is a
//	          workload-size heuristic, never a cost term.
//	serving   Coalesce / CoalesceWait / UseMux. Pure scheduling: they
//	          change who shares a run and what the device pays, never a
//	          single query's results or charges, so they switch on
//	          expected concurrency, with the amortized per-query cost
//	          and device savings reported as predictions.
//
// Every prediction uses the same pricing rules the engine charges its
// simclock with (see the cost-prediction helpers in internal/simclock),
// so predicted and actual cost differ only by tuple-count estimation.
//
// ChooseSet extends the same pricing to a coordinated statement set (an
// EQL script): per-unit knobs are chosen per unit, but the serving
// knobs become one budget for the whole set, with Concurrency derived
// from the set's own width plus the scheduler's observed in-flight
// arrivals instead of a caller hint, and shared relations priced once.
package planner

import (
	"fmt"
	"math"
	"time"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/windows"
)

// Tuning constants of the statistics-free heuristics.
const (
	// DefaultRetention is the assumed difference-detector retention ratio
	// before ingest has measured the real one.
	DefaultRetention = 0.6
	// CleanFrac is the expected fraction of uncertain tuples Phase 2
	// confirms beyond the mandatory K (the paper's "typically <2% of
	// frames" observation).
	CleanFrac = 0.02
	// ScaleOutTuples is the workload size — frames to ingest, or
	// uncertain tuples to scan per Phase 2 iteration — above which the
	// procs heuristic requests a wide worker pool. Wall-clock only.
	ScaleOutTuples = 24000
	// WideProcs is the worker count the procs heuristic requests for
	// large workloads. A fixed constant (not NumCPU) so planner output
	// is machine-independent.
	WideProcs = 8
	// ServingWait is the CoalesceWait budget granted under expected
	// concurrency: long enough for near-simultaneous arrivals to join
	// one group, short enough to bound added latency. Wall-clock only.
	ServingWait = 25 * time.Millisecond
)

// batchGrid is the candidate batch sizes the batch phase prices.
var batchGrid = []int{1, 2, 4, 8, 16, 32}

// Input is everything the planner knows about one query. Zero values
// mean "unknown" where a heuristic default exists.
type Input struct {
	// Frames is the video length. Required.
	Frames int
	// K is the result size. Required.
	K int
	// Window and Stride describe a window query (zero Window = frames).
	Window, Stride int
	// WindowSampleFrac is the per-window confirmation sampling fraction
	// (zero = the 0.1 default).
	WindowSampleFrac float64
	// UDFFrameMS is the oracle's per-frame inference cost for the bound
	// UDF under Cost.
	UDFFrameMS float64
	// Cost is the simulated cost model the engine will charge.
	Cost simclock.CostModel
	// TrainSamples is the planned Phase 1 label count (train + holdout);
	// used to price ingest.
	TrainSamples int
	// Retained is the diff-detector survivor count when known (an
	// artifact exists); zero estimates via DefaultRetention.
	Retained int
	// Certain is how many retained frames the artifact already holds
	// exact oracle scores for — they enter D0 certain and are never
	// cleaned.
	Certain int
	// HasIndex marks Phase 1 as already paid (serving from an index or
	// session): ingest cost drops out of the objective and the cascade
	// is fixed.
	HasIndex bool
	// CascadeFixed pins the cascade knob to DisableDiff instead of
	// letting the cascade phase price it (always the case with an
	// index; ingest-time callers leave it false).
	CascadeFixed bool
	// DisableDiff is the pinned cascade depth when CascadeFixed.
	DisableDiff bool
	// Concurrency is how many compatible queries the caller expects in
	// flight together; ≤ 1 plans for a lone query.
	Concurrency int
	// PinProcs pins the procs knob when positive.
	PinProcs int
}

// Knobs is one concrete setting of the engine knobs the planner ranges
// over.
type Knobs struct {
	BatchSize    int
	Procs        int
	Coalesce     bool
	CoalesceWait time.Duration
	UseMux       bool
	// DisableDiff false is the depth-3 ingest cascade
	// (decode→diff→proxy); true skips the filter (depth 2).
	DisableDiff bool
}

// Prediction is the §3.5-model cost forecast for one Knobs setting.
type Prediction struct {
	// Phase1MS is the one-off ingest cost (0 when an index exists).
	Phase1MS float64
	// SelectMS is Phase 2's algorithmic cost (select-candidate +
	// topk-prob passes over the uncertain relation).
	SelectMS float64
	// ConfirmMS is Phase 2's oracle bill: confirmation frames at the
	// UDF's per-frame cost plus LaunchMS.
	ConfirmMS float64
	// LaunchMS is the launch-overhead share of ConfirmMS.
	LaunchMS float64
	// TotalMS = Phase1MS + SelectMS + ConfirmMS.
	TotalMS float64
	// Cleaned is the expected number of tuples confirmed.
	Cleaned int
	// ConfirmFrames is the expected number of frames the oracle scores
	// (== Cleaned for frame queries; Cleaned × samples-per-window for
	// window queries).
	ConfirmFrames int
	// Launches is the expected number of oracle invocations.
	Launches int
	// PerQueryMS is the amortized per-query cost at Input.Concurrency
	// when coalescing shares the confirmation bill (== TotalMS for a
	// lone query).
	PerQueryMS float64
	// MuxSavedMS is the device-side launch overhead the oracle
	// multiplexer is predicted to save by consolidating the concurrent
	// queries' confirmation batches.
	MuxSavedMS float64
}

// Candidate is one priced knob setting.
type Candidate struct {
	Knobs Knobs
	Pred  Prediction
	// Why explains each phase decision (filled on the chosen candidate).
	Why []string
	// Chosen marks the winner in an Enumerate table.
	Chosen bool
}

// uncertainTuples returns the expected uncertain-relation size for a
// cascade depth: windows are all uncertain; frames are the retained set
// minus the already-exact labels.
func (in Input) uncertainTuples(disableDiff bool) int {
	if in.Window > 0 {
		stride := in.Stride
		if stride <= 0 {
			stride = in.Window
		}
		return windows.NumSlidingWindows(in.Frames, in.Window, stride)
	}
	retained := in.Retained
	if retained == 0 {
		if disableDiff {
			retained = in.Frames
		} else {
			retained = int(math.Round(DefaultRetention * float64(in.Frames)))
		}
	}
	u := retained - in.Certain
	if u < 0 {
		u = 0
	}
	return u
}

// samplesPerWindow mirrors windows.Oracle.SamplesPerWindow.
func (in Input) samplesPerWindow() int {
	frac := in.WindowSampleFrac
	if frac == 0 {
		frac = 0.1
	}
	k := int(math.Ceil(frac * float64(in.Window)))
	if k < 1 {
		k = 1
	}
	return k
}

// expectedCleaned is the statistics-free confirmation estimate: Phase 2
// must confirm at least the K result tuples and typically CleanFrac of
// the uncertain relation beyond them.
func (in Input) expectedCleaned(uncertain int) int {
	e := in.K + int(math.Ceil(CleanFrac*float64(uncertain)))
	if e > uncertain {
		e = uncertain
	}
	return e
}

// ingestMS prices Phase 1 at a cascade depth: labelling, grid training,
// and the decode/diff/proxy cascade.
func (in Input) ingestMS(disableDiff bool) float64 {
	retained := in.Retained
	if retained == 0 {
		retained = int(math.Round(DefaultRetention * float64(in.Frames)))
	}
	return in.Cost.LabelMS(in.TrainSamples, in.UDFFrameMS) +
		in.Cost.TrainMS(in.TrainSamples) +
		in.Cost.CascadeMS(in.Frames, retained, disableDiff)
}

// Predict prices one knob setting on the §3.5 model.
func Predict(in Input, kn Knobs) Prediction {
	uncertain := in.uncertainTuples(kn.DisableDiff)
	cleaned := in.expectedCleaned(uncertain)
	if cleaned > 0 {
		// The loop stops mid-batch on average half a batch past the
		// stopping point; the last launch still confirms its whole batch.
		cleaned += (kn.BatchSize - 1) / 2
		if cleaned > uncertain {
			cleaned = uncertain
		}
	}
	launches := simclock.Batches(cleaned, kn.BatchSize)
	confirmFrames := cleaned
	if in.Window > 0 {
		confirmFrames = cleaned * in.samplesPerWindow()
	}
	launchMS := in.Cost.LaunchOverheadMS(launches)
	confirmMS := in.Cost.ConfirmMS(confirmFrames, launches, in.UDFFrameMS)
	// Each cleaning iteration makes a select-candidate pass and a
	// topk-prob pass over the uncertain relation.
	selectMS := 2 * float64(launches) * float64(uncertain) * in.Cost.SelectPerFrameMS
	phase1MS := 0.0
	if !in.HasIndex {
		phase1MS = in.ingestMS(kn.DisableDiff)
	}
	total := phase1MS + selectMS + confirmMS
	perQuery := total
	muxSaved := 0.0
	if in.Concurrency > 1 {
		if kn.Coalesce {
			// The group's first member pays the confirmations; the rest
			// ride the shared overlay.
			perQuery = phase1MS + selectMS + confirmMS/float64(in.Concurrency)
		}
		if kn.UseMux {
			// Each cleaning round's concurrent batches consolidate into
			// one device launch.
			muxSaved = in.Cost.LaunchOverheadMS(launches * (in.Concurrency - 1))
		}
	}
	return Prediction{
		Phase1MS:      phase1MS,
		SelectMS:      selectMS,
		ConfirmMS:     confirmMS,
		LaunchMS:      launchMS,
		TotalMS:       total,
		Cleaned:       cleaned,
		ConfirmFrames: confirmFrames,
		Launches:      launches,
		PerQueryMS:    perQuery,
		MuxSavedMS:    muxSaved,
	}
}

// chooseProcs is the wall-clock-only worker heuristic: wide when the
// per-iteration workload (ingest frames, or uncertain tuples) is large.
func (in Input) chooseProcs(uncertain int) (int, string) {
	if in.PinProcs > 0 {
		return in.PinProcs, fmt.Sprintf("pinned to %d by the caller (wall-clock only; results and charges identical for any value)", in.PinProcs)
	}
	work := uncertain
	if !in.HasIndex && in.Frames > work {
		work = in.Frames
	}
	if work >= ScaleOutTuples {
		return WideProcs, fmt.Sprintf("%d-tuple workload ≥ %d: wide pool of %d workers (wall-clock only; results and charges identical for any value)", work, ScaleOutTuples, WideProcs)
	}
	return 1, fmt.Sprintf("%d-tuple workload below the %d scale-out bar: serial (wall-clock only; results and charges identical for any value)", work, ScaleOutTuples)
}

// servingKnobs is the concurrency phase: scheduling-only knobs that
// never change a query's own results or charges.
func (in Input) servingKnobs() (coalesce bool, wait time.Duration, mux bool, why []string) {
	if in.Concurrency <= 1 {
		return false, 0, false, []string{
			"coalesce off: lone query (concurrency ≤ 1), nothing to share a run with",
			"mux off: lone query, no in-flight batches to consolidate",
		}
	}
	return true, ServingWait, true, []string{
		fmt.Sprintf("coalesce on, wait %s: %d expected compatible queries share one engine run — the group pays the confirmation bill once", ServingWait, in.Concurrency),
		fmt.Sprintf("mux on: %d concurrent confirmation streams consolidate per device launch", in.Concurrency),
	}
}

// cascadeOptions lists the cascade depths to price: just the pinned one
// when fixed, both otherwise.
func (in Input) cascadeOptions() []bool {
	if in.CascadeFixed || in.HasIndex {
		return []bool{in.DisableDiff}
	}
	return []bool{false, true}
}

// Enumerate prices the candidate grid — batch sizes × cascade depths,
// with the procs and serving phases applied uniformly — and marks the
// chosen (cheapest) entry. The table is what EXPLAIN renders.
func Enumerate(in Input) []Candidate {
	coalesce, wait, mux, _ := in.servingKnobs()
	var cands []Candidate
	for _, disableDiff := range in.cascadeOptions() {
		procs, _ := in.chooseProcs(in.uncertainTuples(disableDiff))
		for _, b := range batchGrid {
			kn := Knobs{
				BatchSize:    b,
				Procs:        procs,
				Coalesce:     coalesce,
				CoalesceWait: wait,
				UseMux:       mux,
				DisableDiff:  disableDiff,
			}
			cands = append(cands, Candidate{Knobs: kn, Pred: Predict(in, kn)})
		}
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if better(cands[i], cands[best]) {
			best = i
		}
	}
	cands[best].Chosen = true
	return cands
}

// better orders candidates: lower predicted total, then the depth-3
// cascade (keep the filter), then the smaller batch — a deterministic
// tie-break so planner output never depends on grid order.
func better(a, b Candidate) bool {
	if a.Pred.TotalMS != b.Pred.TotalMS {
		return a.Pred.TotalMS < b.Pred.TotalMS
	}
	if a.Knobs.DisableDiff != b.Knobs.DisableDiff {
		return !a.Knobs.DisableDiff
	}
	return a.Knobs.BatchSize < b.Knobs.BatchSize
}

// Choose runs the greedy phases and returns the chosen candidate with
// its per-phase reasoning filled in.
func Choose(in Input) Candidate {
	cands := Enumerate(in)
	var chosen Candidate
	for _, c := range cands {
		if c.Chosen {
			chosen = c
			break
		}
	}
	kn := chosen.Knobs
	var why []string
	switch {
	case in.HasIndex:
		why = append(why, "cascade inherited: Phase 1 already paid by the index, ingest knobs are fixed")
	case in.CascadeFixed:
		why = append(why, fmt.Sprintf("cascade pinned by the caller: %s", cascadeName(kn.DisableDiff)))
	default:
		other := Predict(in, withDisableDiff(kn, !kn.DisableDiff))
		why = append(why, fmt.Sprintf("cascade %s: %.0f ms predicted vs %.0f ms at %s",
			cascadeName(kn.DisableDiff), chosen.Pred.TotalMS, other.TotalMS, cascadeName(!kn.DisableDiff)))
	}
	why = append(why, fmt.Sprintf("batch %d: %d expected confirmations in %d launches — %.0f ms launch overhead vs %.0f ms at b=1",
		kn.BatchSize, chosen.Pred.Cleaned, chosen.Pred.Launches, chosen.Pred.LaunchMS,
		Predict(in, withBatch(kn, 1)).LaunchMS))
	_, procsWhy := in.chooseProcs(in.uncertainTuples(kn.DisableDiff))
	why = append(why, "procs: "+procsWhy)
	_, _, _, servingWhy := in.servingKnobs()
	why = append(why, servingWhy...)
	chosen.Why = why
	return chosen
}

// SetInput is a coordinated statement set to price jointly: one script
// (or one scheduler backlog) of units that will execute together over
// shared relations.
type SetInput struct {
	// Units are the per-unit planner inputs, in statement order. Each
	// unit's Concurrency field is ignored — the set derives one value.
	Units []Input
	// Shared groups unit indices bound to one relation (same video,
	// frames, UDF, seed): each group pays its Phase 1 ingest once and
	// shares confirmations through one session cache. Units absent from
	// every group are priced alone. Groups must not overlap.
	Shared [][]int
	// Observed is the scheduler's in-flight submission count at plan
	// time (engine.Scheduler.InFlight via Session.ObservedInFlight):
	// queries already queued or running that the set's members will
	// coalesce with. It replaces the caller-supplied concurrency hint.
	Observed int
}

// SetPlan is the jointly priced outcome: one serving budget for the
// whole set plus per-unit chosen candidates.
type SetPlan struct {
	// Concurrency is the derived expected in-flight count: the set's own
	// unit count plus the observed scheduler backlog.
	Concurrency int
	// Coalesce/CoalesceWait/UseMux is the one scheduling budget every
	// unit of the set shares — scheduling only, never results or
	// charges.
	Coalesce     bool
	CoalesceWait time.Duration
	UseMux       bool
	// Units are the chosen candidates, aligned with SetInput.Units.
	Units []Candidate
	// IndependentMS prices the set as isolated runs: every unit pays its
	// own ingest and full confirmation bill.
	IndependentMS float64
	// TotalMS prices the coordinated execution: each shared group pays
	// one ingest, and its confirmation bill is charged once (the
	// group's widest member) instead of per member.
	TotalMS float64
	// SharedIngestMS and SharedConfirmMS break down the predicted
	// saving: ingest stages bound once instead of per unit, and
	// confirmations shared through the group overlay.
	SharedIngestMS  float64
	SharedConfirmMS float64
	// Why explains the set-level decisions.
	Why []string
}

// SavedMS is the predicted total saving of coordinated over independent
// execution.
func (sp SetPlan) SavedMS() float64 { return sp.IndependentMS - sp.TotalMS }

// ChooseSet prices a statement set jointly. Per-unit knobs (batch,
// cascade, procs) are chosen per unit as usual, but the serving knobs
// are decided once for the whole set from its own width plus the
// scheduler's observed in-flight arrivals — no caller hint. The shared
// groups are priced under the coalesced-group contract: one ingest per
// relation, and each group's confirmation bill charged once (later
// members ride the shared overlay; the golden suite locks the
// bit-identity of that sharing, this prices it).
func ChooseSet(in SetInput) SetPlan {
	sp := SetPlan{Concurrency: len(in.Units) + in.Observed}
	if sp.Concurrency > 1 {
		sp.Coalesce, sp.CoalesceWait, sp.UseMux = true, ServingWait, true
		sp.Why = append(sp.Why, fmt.Sprintf(
			"one budget: %d units + %d observed in flight → coalesce on, mux on (scheduling only; results and charges identical)",
			len(in.Units), in.Observed))
	} else {
		sp.Why = append(sp.Why, "one budget: lone unit and idle scheduler → coalesce off, mux off")
	}

	grouped := make(map[int]bool)
	for i := range in.Units {
		u := in.Units[i]
		u.Concurrency = sp.Concurrency
		c := Choose(u)
		sp.Units = append(sp.Units, c)
		sp.IndependentMS += c.Pred.TotalMS
		grouped[i] = false
	}
	// Shared groups: one ingest, one confirmation bill (the widest
	// member's), every member's own select pass.
	for _, group := range in.Shared {
		if len(group) == 0 {
			continue
		}
		var ingest, maxConfirm, sumIngest, sumConfirm float64
		for _, i := range group {
			grouped[i] = true
			p := sp.Units[i].Pred
			if p.Phase1MS > ingest {
				ingest = p.Phase1MS
			}
			if p.ConfirmMS > maxConfirm {
				maxConfirm = p.ConfirmMS
			}
			sumIngest += p.Phase1MS
			sumConfirm += p.ConfirmMS
			sp.TotalMS += p.SelectMS
		}
		sp.TotalMS += ingest + maxConfirm
		sp.SharedIngestMS += sumIngest - ingest
		sp.SharedConfirmMS += sumConfirm - maxConfirm
		if len(group) > 1 {
			sp.Why = append(sp.Why, fmt.Sprintf(
				"%d units share one relation: ingest bound once (%.0f ms saved), confirmations charged once (%.0f ms saved)",
				len(group), sumIngest-ingest, sumConfirm-maxConfirm))
		}
	}
	for i, c := range sp.Units {
		if !grouped[i] {
			sp.TotalMS += c.Pred.TotalMS
		}
	}
	return sp
}

func withBatch(kn Knobs, b int) Knobs        { kn.BatchSize = b; return kn }
func withDisableDiff(kn Knobs, d bool) Knobs { kn.DisableDiff = d; return kn }

// cascadeName renders a cascade depth for reports.
func cascadeName(disableDiff bool) string {
	if disableDiff {
		return "decode→proxy (depth 2)"
	}
	return "decode→diff→proxy (depth 3)"
}

// CascadeName is cascadeName for report rendering outside the package.
func CascadeName(disableDiff bool) string { return cascadeName(disableDiff) }
