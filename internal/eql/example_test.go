package eql_test

import (
	"fmt"
	"log"

	"github.com/everest-project/everest/internal/eql"
)

// ExampleParse shows the parsed form of an EQL statement.
func ExampleParse() {
	q, err := eql.Parse(`SELECT TOP 50 WINDOWS OF 150 FROM "Taipei-bus"
		RANK BY count(car) THRESHOLD 0.95 SAMPLE 0.1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top %d windows of %d from %s by %s(%s) at %.2f\n",
		q.K, q.Window, q.Dataset(), q.UDF(), q.UDFArg(), q.Threshold)
	// Output:
	// top 50 windows of 150 from Taipei-bus by count(car) at 0.95
}
