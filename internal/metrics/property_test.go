package metrics

import (
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/xrand"
)

// randomWorld builds a universe of n scored items plus a "claimed" result
// of size k drawn (with bias toward true winners) from it.
func randomWorld(r *xrand.RNG) (items []Ranked, result []int, scores map[int]float64, k int) {
	n := 3 + r.Intn(20)
	items = make([]Ranked, n)
	scores = make(map[int]float64, n)
	for i := range items {
		s := float64(r.Intn(8))
		items[i] = Ranked{ID: i, Score: s}
		scores[i] = s
	}
	k = 1 + r.Intn(n)
	truth := TrueTopK(items, k)
	result = make([]int, 0, k)
	used := make(map[int]bool)
	for len(result) < k {
		var id int
		if r.Float64() < 0.7 && len(truth) > 0 {
			id = truth[r.Intn(len(truth))].ID
		} else {
			id = r.Intn(n)
		}
		if !used[id] {
			used[id] = true
			result = append(result, id)
		}
	}
	return items, result, scores, k
}

func TestPrecisionBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		items, result, scores, k := randomWorld(r)
		truth := TrueTopK(items, k)
		p := Precision(result, truth, scores)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectResultScoresPerfectly(t *testing.T) {
	// The exact Top-K in exact order: precision 1, rank distance 0, score
	// error 0 — for any random universe.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		items, _, scores, k := randomWorld(r)
		truth := TrueTopK(items, k)
		result := make([]int, len(truth))
		exact := make([]float64, len(truth))
		for i, t := range truth {
			result[i] = t.ID
			exact[i] = t.Score
		}
		return Precision(result, truth, scores) == 1 &&
			RankDistance(result, truth) == 0 &&
			ScoreError(exact, truth) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRankDistanceBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		items, result, _, k := randomWorld(r)
		truth := TrueTopK(items, k)
		d := RankDistance(result, truth)
		return d >= 0 && d <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreErrorNonNegativeAndTieInsensitive(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		items, result, scores, k := randomWorld(r)
		truth := TrueTopK(items, k)
		exact := make([]float64, len(result))
		for i, id := range result {
			exact[i] = scores[id]
		}
		if ScoreError(exact, truth) < 0 {
			return false
		}
		// Swapping two result positions never changes the score error
		// (rank-by-rank comparison sorts both sides).
		if len(result) >= 2 {
			exact[0], exact[1] = exact[1], exact[0]
			a := ScoreError(exact, truth)
			exact[0], exact[1] = exact[1], exact[0]
			b := ScoreError(exact, truth)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTieTolerantPrecisionProperty(t *testing.T) {
	// Any returned item whose exact score ties the truth's K-th score
	// counts as a hit: a result made only of such items has precision 1.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		items, _, scores, k := randomWorld(r)
		truth := TrueTopK(items, k)
		kth := truth[len(truth)-1].Score
		var result []int
		for _, it := range items {
			if it.Score >= kth {
				result = append(result, it.ID)
			}
			if len(result) == k {
				break
			}
		}
		if len(result) == 0 {
			return true
		}
		return Precision(result, truth, scores) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
