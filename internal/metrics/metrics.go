// Package metrics implements the paper's result-quality metrics (§4):
// precision, normalized footrule rank distance, and score error, plus the
// speedup ratio over scan-and-test.
package metrics

import (
	"math"
	"sort"
)

// Ranked is a scored item (frame or window) used to define ground truth.
type Ranked struct {
	// ID identifies the item.
	ID int
	// Score is the exact score.
	Score float64
}

// TrueTopK returns the exact Top-K of the given scores, ordered by score
// descending with ties broken by ascending ID (the same deterministic
// order the engine uses).
func TrueTopK(items []Ranked, k int) []Ranked {
	sorted := append([]Ranked(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		return sorted[i].ID < sorted[j].ID
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// Precision returns the fraction of returned items that belong to the
// exact Top-K (§4: "the fraction of results in R̂ that belongs to R").
// Items whose score ties the truth's K-th score count as correct,
// matching the paper's tie-tolerant semantics (footnote 1). scores must
// map every result ID to its exact score.
func Precision(result []int, truth []Ranked, scores map[int]float64) float64 {
	if len(truth) == 0 || len(result) == 0 {
		return 0
	}
	inTruth := make(map[int]bool, len(truth))
	for _, t := range truth {
		inTruth[t.ID] = true
	}
	kth := truth[len(truth)-1].Score
	hit := 0
	for _, id := range result {
		if inTruth[id] || scores[id] >= kth {
			hit++
		}
	}
	return float64(hit) / float64(len(result))
}

// RankDistance returns the normalized Spearman footrule between the
// result's order and the items' true ranks: Σ|pos(i) − trueRank(i)| over
// result positions, with items absent from the true Top-K assigned rank
// K+1, normalized by the maximum attainable sum so the value lies in
// [0,1]. 0 means the result lists the exact Top-K in exact order.
func RankDistance(result []int, truth []Ranked) float64 {
	k := len(truth)
	if k == 0 || len(result) == 0 {
		return 0
	}
	trueRank := make(map[int]int, k)
	for i, t := range truth {
		trueRank[t.ID] = i + 1
	}
	sum := 0.0
	maxSum := 0.0
	for i, id := range result {
		pos := i + 1
		r, ok := trueRank[id]
		if !ok {
			r = k + 1
		}
		sum += math.Abs(float64(pos - r))
		maxSum += math.Max(float64(k+1-pos), float64(pos-1))
	}
	if maxSum == 0 {
		return 0
	}
	return sum / maxSum
}

// ScoreError returns the mean absolute difference between the result's
// exact scores and the true Top-K's scores, compared rank-by-rank with
// both sides sorted descending (§4: "the average absolute error for
// scores between R̂ and R").
func ScoreError(resultScores []float64, truth []Ranked) float64 {
	if len(truth) == 0 || len(resultScores) == 0 {
		return 0
	}
	rs := append([]float64(nil), resultScores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(rs)))
	n := min(len(rs), len(truth))
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Abs(rs[i] - truth[i].Score)
	}
	return sum / float64(n)
}

// Speedup returns baselineMS / systemMS.
func Speedup(baselineMS, systemMS float64) float64 {
	if systemMS <= 0 {
		return math.Inf(1)
	}
	return baselineMS / systemMS
}
