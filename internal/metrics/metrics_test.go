package metrics

import (
	"math"
	"testing"
)

func items(scores ...float64) []Ranked {
	out := make([]Ranked, len(scores))
	for i, s := range scores {
		out[i] = Ranked{ID: i, Score: s}
	}
	return out
}

func TestTrueTopK(t *testing.T) {
	top := TrueTopK(items(1, 9, 5, 7), 2)
	if top[0].ID != 1 || top[1].ID != 3 {
		t.Fatalf("TrueTopK = %v", top)
	}
}

func TestTrueTopKTieBreak(t *testing.T) {
	top := TrueTopK([]Ranked{{ID: 5, Score: 3}, {ID: 2, Score: 3}, {ID: 9, Score: 3}}, 2)
	if top[0].ID != 2 || top[1].ID != 5 {
		t.Fatalf("tie break wrong: %v", top)
	}
}

func TestTrueTopKSmallInput(t *testing.T) {
	if got := TrueTopK(items(1, 2), 5); len(got) != 2 {
		t.Fatalf("TrueTopK over-asks: %v", got)
	}
}

func TestPrecisionPerfect(t *testing.T) {
	truth := TrueTopK(items(1, 9, 5, 7), 2)
	scores := map[int]float64{1: 9, 3: 7}
	if p := Precision([]int{1, 3}, truth, scores); p != 1 {
		t.Fatalf("precision = %v, want 1", p)
	}
}

func TestPrecisionPartial(t *testing.T) {
	truth := TrueTopK(items(1, 9, 5, 7), 2) // ids 1,3 scores 9,7
	scores := map[int]float64{1: 9, 0: 1}
	if p := Precision([]int{1, 0}, truth, scores); p != 0.5 {
		t.Fatalf("precision = %v, want 0.5", p)
	}
}

func TestPrecisionTieTolerant(t *testing.T) {
	// id 4 scores the same as the true K-th: counts as a hit.
	all := []Ranked{{ID: 0, Score: 9}, {ID: 1, Score: 7}, {ID: 4, Score: 7}}
	truth := TrueTopK(all, 2) // ids 0,1
	scores := map[int]float64{0: 9, 4: 7}
	if p := Precision([]int{0, 4}, truth, scores); p != 1 {
		t.Fatalf("tie-tolerant precision = %v, want 1", p)
	}
}

func TestRankDistanceZeroForExact(t *testing.T) {
	truth := TrueTopK(items(1, 9, 5, 7), 3) // ids 1,3,2
	if d := RankDistance([]int{1, 3, 2}, truth); d != 0 {
		t.Fatalf("rank distance = %v, want 0", d)
	}
}

func TestRankDistanceSwap(t *testing.T) {
	truth := TrueTopK(items(1, 9, 5, 7), 3)
	d := RankDistance([]int{3, 1, 2}, truth) // swap first two
	if d <= 0 || d > 0.5 {
		t.Fatalf("rank distance for one swap = %v", d)
	}
}

func TestRankDistanceMissing(t *testing.T) {
	truth := TrueTopK(items(1, 9, 5, 7), 2)
	dMiss := RankDistance([]int{1, 0}, truth)  // 0 not in truth
	dExact := RankDistance([]int{1, 3}, truth) // exact
	if !(dMiss > dExact) {
		t.Fatalf("missing item should raise distance: %v vs %v", dMiss, dExact)
	}
	if dMiss > 1 {
		t.Fatalf("rank distance %v exceeds 1", dMiss)
	}
}

func TestRankDistanceBounds(t *testing.T) {
	truth := TrueTopK(items(5, 4, 3, 2, 1), 5) // ids 0..4 descending
	// Fully reversed result is the worst order of the right set.
	d := RankDistance([]int{4, 3, 2, 1, 0}, truth)
	if d <= 0.5 || d > 1 {
		t.Fatalf("reversed rank distance = %v", d)
	}
}

func TestScoreErrorZero(t *testing.T) {
	truth := TrueTopK(items(1, 9, 5, 7), 2)
	if e := ScoreError([]float64{9, 7}, truth); e != 0 {
		t.Fatalf("score error = %v, want 0", e)
	}
	// Order of the result slice must not matter.
	if e := ScoreError([]float64{7, 9}, truth); e != 0 {
		t.Fatalf("score error = %v, want 0 (order independence)", e)
	}
}

func TestScoreErrorMagnitude(t *testing.T) {
	truth := TrueTopK(items(10, 8), 2) // scores 10, 8
	e := ScoreError([]float64{9, 8}, truth)
	if math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("score error = %v, want 0.5", e)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(200, 10); s != 20 {
		t.Fatalf("speedup = %v", s)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("zero system time should be +Inf")
	}
}

func TestEmptyInputs(t *testing.T) {
	if Precision(nil, nil, nil) != 0 {
		t.Fatal("empty precision")
	}
	if RankDistance(nil, nil) != 0 {
		t.Fatal("empty rank distance")
	}
	if ScoreError(nil, nil) != 0 {
		t.Fatal("empty score error")
	}
}
