package cmdn

import (
	"math"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
)

func trafficSource(t testing.TB, frames int) *video.Synthetic {
	t.Helper()
	s, err := video.NewSynthetic(video.Config{
		Name: "cmdntest", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: 3, MeanPopulation: 3, BurstRate: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func makeSamples(src *video.Synthetic, arch Arch, idxs []int) []Sample {
	out := make([]Sample, len(idxs))
	for k, i := range idxs {
		out[k] = Sample{
			Frame: i,
			X:     InputFor(arch, src.Render(i)),
			Y:     float64(src.TrueCountFast(i)),
		}
	}
	return out
}

func offsetEvery(n, step, off int) []int {
	var out []int
	for i := off; i < n; i += step {
		out = append(out, i)
	}
	return out
}

func sampleEvery(n, step int) []int {
	var out []int
	for i := 0; i < n; i += step {
		out = append(out, i)
	}
	return out
}

func TestPaperGrid(t *testing.T) {
	grid := PaperGrid()
	if len(grid) != 12 {
		t.Fatalf("grid has %d points, want 12 (4×3, §3.5)", len(grid))
	}
	seen := map[Hyper]bool{}
	for _, h := range grid {
		if seen[h] {
			t.Fatalf("duplicate grid point %+v", h)
		}
		seen[h] = true
	}
	if !seen[(Hyper{G: 15, H: 40})] || !seen[(Hyper{G: 5, H: 20})] {
		t.Fatal("grid corners missing")
	}
}

func TestExtractFeaturesShape(t *testing.T) {
	src := trafficSource(t, 100)
	f := src.Render(50)
	feats := ExtractFeatures(f)
	w, h := src.Resolution()
	if len(feats) != FeatureSize(w, h) {
		t.Fatalf("feature length %d, want %d", len(feats), FeatureSize(w, h))
	}
	for _, v := range feats {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite feature")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(nil, nil, Config{}, nil, simclock.Default()); err == nil {
		t.Fatal("empty training set should fail")
	}
	s := []Sample{{X: []float64{1}, Y: 1}}
	if _, _, err := Train(s, nil, Config{}, nil, simclock.Default()); err == nil {
		t.Fatal("empty holdout should fail")
	}
}

func TestTrainedProxyBeatsPrior(t *testing.T) {
	// The selected proxy's holdout NLL must beat a data-independent
	// Gaussian prior fit to the target moments — i.e., the CMDN learned
	// something from pixels.
	src := trafficSource(t, 6000)
	train := makeSamples(src, ArchPooled, sampleEvery(6000, 7))
	holdout := makeSamples(src, ArchPooled, offsetEvery(6000, 13, 3))

	cfg := Config{Grid: []Hyper{{G: 5, H: 20}, {G: 8, H: 30}}, Epochs: 12, Seed: 1}
	proxy, reports, err := Train(train, holdout, cfg, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	// The prior's standardized NLL is that of N(0,1): 0.5·log(2πe) ≈ 1.419.
	prior := 0.5 * math.Log(2*math.Pi*math.E)
	if proxy.HoldoutNLL() >= prior {
		t.Fatalf("proxy holdout NLL %.3f not better than unconditional prior %.3f",
			proxy.HoldoutNLL(), prior)
	}
	// Reports are sorted ascending and the best matches the proxy.
	if reports[0].HoldoutNLL != proxy.HoldoutNLL() {
		t.Fatal("best report does not match selected proxy")
	}
}

func TestProxyPredictionsTrackScores(t *testing.T) {
	src := trafficSource(t, 6000)
	train := makeSamples(src, ArchPooled, sampleEvery(6000, 9))
	holdout := makeSamples(src, ArchPooled, offsetEvery(6000, 17, 4))
	cfg := Config{Grid: []Hyper{{G: 8, H: 30}}, Epochs: 15, Seed: 2}
	proxy, _, err := Train(train, holdout, cfg, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []float64
	var absErr float64
	n := 0
	for i := 100; i < 6000; i += 31 {
		mix := proxy.PredictFrame(src.Render(i))
		if err := mix.Validate(); err != nil {
			t.Fatalf("invalid mixture at %d: %v", i, err)
		}
		xs = append(xs, mix.Mean())
		truth := float64(src.TrueCountFast(i))
		ys = append(ys, truth)
		absErr += math.Abs(mix.Mean() - truth)
		n++
	}
	if r := pearson(xs, ys); r < 0.6 {
		t.Fatalf("proxy mean / truth correlation %.3f too weak", r)
	}
	t.Logf("proxy MAE %.3f, correlation %.3f", absErr/float64(n), pearson(xs, ys))
}

func TestProxyUncertaintyIsHonest(t *testing.T) {
	// Roughly calibrated intervals: the truth should fall within ±2 total
	// σ of the mixture mean for the large majority of frames.
	src := trafficSource(t, 6000)
	train := makeSamples(src, ArchPooled, sampleEvery(6000, 9))
	holdout := makeSamples(src, ArchPooled, offsetEvery(6000, 17, 4))
	proxy, _, err := Train(train, holdout, Config{Grid: []Hyper{{G: 8, H: 30}}, Epochs: 15, Seed: 4}, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	within := 0
	n := 0
	for i := 50; i < 6000; i += 41 {
		mix := proxy.PredictFrame(src.Render(i))
		mu := mix.Mean()
		sd := math.Sqrt(mix.Variance())
		truth := float64(src.TrueCountFast(i))
		if math.Abs(truth-mu) <= 2*sd+1e-9 {
			within++
		}
		n++
	}
	frac := float64(within) / float64(n)
	if frac < 0.75 {
		t.Fatalf("only %.2f of truths within 2σ — proxy badly overconfident", frac)
	}
}

func TestTrainChargesClock(t *testing.T) {
	src := trafficSource(t, 800)
	train := makeSamples(src, ArchPooled, sampleEvery(800, 11))
	holdout := makeSamples(src, ArchPooled, offsetEvery(800, 23, 5))
	clock := simclock.NewClock()
	cost := simclock.Default()
	if _, _, err := Train(train, holdout, Config{Grid: []Hyper{{G: 5, H: 20}}, Epochs: 3, Seed: 5}, clock, cost); err != nil {
		t.Fatal(err)
	}
	want := cost.ProxyTrainSampleMS * float64(len(train)+len(holdout))
	if got := clock.PhaseMS(simclock.PhaseTrainCMDN); math.Abs(got-want) > 1e-9 {
		t.Fatalf("training charge %v, want %v", got, want)
	}
}

func TestTrainDeterministic(t *testing.T) {
	src := trafficSource(t, 1000)
	train := makeSamples(src, ArchPooled, sampleEvery(1000, 13))
	holdout := makeSamples(src, ArchPooled, offsetEvery(1000, 29, 6))
	cfg := Config{Grid: []Hyper{{G: 5, H: 20}}, Epochs: 4, Seed: 7}
	p1, _, err := Train(train, holdout, cfg, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Train(train, holdout, cfg, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	if p1.HoldoutNLL() != p2.HoldoutNLL() {
		t.Fatalf("nondeterministic training: %v vs %v", p1.HoldoutNLL(), p2.HoldoutNLL())
	}
}

func TestConvArchTrains(t *testing.T) {
	// The faithful conv backbone must train end to end (small scale).
	if testing.Short() {
		t.Skip("conv training is slow")
	}
	src32, err := video.NewSynthetic(video.Config{
		Name: "cmdnconv", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 2000, FPS: 30, Seed: 3, MeanPopulation: 3, BurstRate: 3,
		W: 32, H: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := src32
	train := makeSamples(src, ArchConv, sampleEvery(2000, 12))
	holdout := makeSamples(src, ArchConv, offsetEvery(2000, 37, 7))
	cfg := Config{
		Arch: ArchConv, Grid: []Hyper{{G: 5, H: 20}},
		Epochs: 4, Seed: 8, FrameW: 32, FrameH: 32,
	}
	proxy, _, err := Train(train, holdout, cfg, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	prior := 0.5 * math.Log(2*math.Pi*math.E)
	if proxy.HoldoutNLL() >= prior+0.3 {
		t.Fatalf("conv proxy NLL %.3f did not approach prior %.3f", proxy.HoldoutNLL(), prior)
	}
	mix := proxy.PredictFrame(src.Render(123))
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	den := math.Sqrt((sxx - sx*sx/n) * (syy - sy*sy/n))
	if den == 0 {
		return 0
	}
	return (sxy - sx*sy/n) / den
}
