// Package cmdn implements Everest's proxy scorer (§3.2): a convolutional
// mixture density network trained per query on oracle-labelled sample
// frames, selected over a hyperparameter grid by holdout negative
// log-likelihood, and applied to every retained frame to produce the score
// distributions of the initial uncertain relation D0.
//
// The paper's CMDN is five 3×3 conv + 2×2 max-pool stages over 128×128
// inputs (Fig. 2) in PyTorch on a GPU. This reproduction offers two
// backbones:
//
//   - ArchConv: the same conv/pool/MDN architecture scaled to the
//     simulator's 32×32 frames (three stages, filter counts divided by 4) —
//     faithful in structure, expensive on one CPU core;
//   - ArchPooled: a fixed average-pooling feature pyramid feeding the same
//     MDN head — the default, two orders of magnitude faster with
//     equivalent proxy quality on the synthetic renderer.
//
// Either way the training pipeline — sample, label with the oracle, train
// the g×h grid, pick by holdout NLL — is exactly the paper's, and the
// simulated training cost charged to the clock is the same.
package cmdn

import (
	"fmt"
	"math"
	"sort"

	"github.com/everest-project/everest/internal/nn"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/workpool"
	"github.com/everest-project/everest/internal/xrand"
)

// Arch selects the feature backbone.
type Arch int

const (
	// ArchPooled uses a fixed average-pooling pyramid (default).
	ArchPooled Arch = iota
	// ArchConv uses trained conv/pool stages per the paper's Fig. 2.
	ArchConv
)

// Hyper is one grid point: g Gaussians in the mixture and h hidden units
// in the MDN layer (the paper's "hypotheses").
type Hyper struct {
	G, H int
}

// PaperGrid returns the paper's 4×3 hyperparameter grid:
// g ∈ {5,8,12,15}, h ∈ {20,30,40}.
func PaperGrid() []Hyper {
	var grid []Hyper
	for _, g := range []int{5, 8, 12, 15} {
		for _, h := range []int{20, 30, 40} {
			grid = append(grid, Hyper{G: g, H: h})
		}
	}
	return grid
}

// Config controls proxy training.
type Config struct {
	// Arch selects the backbone; default ArchPooled.
	Arch Arch
	// Grid is the hyperparameter grid; nil means PaperGrid().
	Grid []Hyper
	// Epochs per candidate model; zero means 15.
	Epochs int
	// LearningRate for Adam; zero means 5e-3.
	LearningRate float64
	// Seed drives initialization and shuffling.
	Seed uint64
	// FrameW, FrameH are the source resolution (needed by ArchConv and
	// feature extraction).
	FrameW, FrameH int
	// Procs bounds the worker count for grid training, holdout NLL
	// evaluation and calibration; ≤ 0 means GOMAXPROCS. Results are
	// bit-identical for every value.
	Procs int
}

func (c Config) withDefaults() Config {
	if c.Grid == nil {
		c.Grid = PaperGrid()
	}
	if c.Epochs == 0 {
		c.Epochs = 35
	}
	if c.LearningRate == 0 {
		c.LearningRate = 5e-3
	}
	if c.FrameW == 0 {
		c.FrameW = 64
	}
	if c.FrameH == 0 {
		c.FrameH = 64
	}
	return c
}

// Sample is one labelled training example.
type Sample struct {
	// Frame is the frame index (kept for bookkeeping).
	Frame int
	// X is the extracted feature vector (or raw pixels for ArchConv).
	X []float64
	// Y is the oracle score.
	Y float64
}

// Proxy is a trained CMDN: it maps a frame's features to a score mixture.
// A Proxy processes one frame at a time and is not safe for concurrent
// use; CloneForInference returns weight-sharing clones for parallel
// inference sweeps.
type Proxy struct {
	model        *nn.Model
	arch         Arch
	hyper        Hyper
	yMean, yStd  float64
	holdoutNLL   float64
	featW, featH int
	// calib is a post-hoc variance calibration factor: the holdout RMS of
	// standardized residuals. When the network's σ underestimates its own
	// error, every predicted σ is inflated by calib, so Phase 2's p̂ stays
	// an honest probability instead of silently excluding frames the
	// proxy is confidently wrong about.
	calib float64
	// featBuf is PredictFrame's reusable feature-extraction scratch.
	featBuf []float64
}

// CloneForInference returns a proxy sharing the trained weights with
// private inference scratch. N clones may PredictFrame concurrently on N
// goroutines; predictions are bit-identical to the original's.
func (p *Proxy) CloneForInference() *Proxy {
	c := *p
	c.model = p.model.CloneForInference()
	c.featBuf = nil
	return &c
}

// Calibration returns the σ inflation factor applied to predictions.
func (p *Proxy) Calibration() float64 { return p.calib }

// Hyper returns the selected grid point.
func (p *Proxy) Hyper() Hyper { return p.hyper }

// HoldoutNLL returns the selection criterion value of the chosen model.
func (p *Proxy) HoldoutNLL() float64 { return p.holdoutNLL }

// CandidateReport records one grid candidate's holdout NLL.
type CandidateReport struct {
	Hyper      Hyper
	HoldoutNLL float64
}

// ExtractFeatures computes the ArchPooled feature vector of a frame: an
// 8×8 average-pool grid plus row and column means, centred around the
// frame mean. The pyramid preserves spatial occupancy — the signal that
// correlates with object counts and apparent object size.
func ExtractFeatures(f video.Frame) []float64 {
	return AppendFeatures(make([]float64, 0, FeatureSize(f.W, f.H)), f)
}

// AppendFeatures appends the ArchPooled feature vector of f to dst and
// returns the extended slice — the allocation-free form of
// ExtractFeatures for hot loops that reuse a scratch buffer.
func AppendFeatures(dst []float64, f video.Frame) []float64 {
	// The inner sums range over contiguous row slices so the compiler can
	// drop the per-pixel index arithmetic and bounds checks; the summation
	// order is exactly the row-major order of the scalar-indexed original,
	// so the emitted features are bit-identical.
	const grid = 8
	feats := dst
	cellW, cellH := f.W/grid, f.H/grid
	mean := 0.0
	for _, v := range f.Pix {
		mean += v
	}
	mean /= float64(len(f.Pix))
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			s := 0.0
			x0 := gx * cellW
			for y := gy * cellH; y < (gy+1)*cellH; y++ {
				for _, v := range f.Pix[y*f.W+x0 : y*f.W+x0+cellW] {
					s += v
				}
			}
			feats = append(feats, s/float64(cellW*cellH)-mean)
		}
	}
	// Coarse row/column profiles (4-pixel bands).
	for y0 := 0; y0 < f.H; y0 += 4 {
		s := 0.0
		for y := y0; y < y0+4 && y < f.H; y++ {
			for _, v := range f.Pix[y*f.W : (y+1)*f.W] {
				s += v
			}
		}
		feats = append(feats, s/float64(4*f.W)-mean)
	}
	for x0 := 0; x0 < f.W; x0 += 4 {
		s := 0.0
		for x := x0; x < x0+4 && x < f.W; x++ {
			for y := 0; y < f.H; y++ {
				s += f.Pix[y*f.W+x]
			}
		}
		feats = append(feats, s/float64(4*f.H)-mean)
	}
	feats = append(feats, mean)
	return feats
}

// FeatureSize returns the ArchPooled feature length for a resolution.
func FeatureSize(w, h int) int { return 64 + h/4 + w/4 + 1 }

// InputFor prepares a frame for the given architecture: extracted features
// for ArchPooled, raw pixels for ArchConv. The result is freshly
// allocated at exact size and safe to retain.
func InputFor(arch Arch, f video.Frame) []float64 {
	if arch == ArchConv {
		x := make([]float64, len(f.Pix))
		copy(x, f.Pix)
		return x
	}
	return ExtractFeatures(f)
}

// AppendInput appends the architecture's prepared input for f to dst and
// returns the extended slice — the allocation-free form of InputFor.
func AppendInput(dst []float64, arch Arch, f video.Frame) []float64 {
	if arch == ArchConv {
		return append(dst, f.Pix...)
	}
	return AppendFeatures(dst, f)
}

func buildModel(cfg Config, hy Hyper, r *xrand.RNG) (*nn.Model, error) {
	switch cfg.Arch {
	case ArchPooled:
		in := FeatureSize(cfg.FrameW, cfg.FrameH)
		backbone := nn.NewSequential(
			nn.NewDense(in, hy.H, r),
			nn.NewReLU(hy.H),
		)
		return &nn.Model{Backbone: backbone, Head: nn.NewMDN(hy.H, hy.G, r)}, nil
	case ArchConv:
		w, h := cfg.FrameW, cfg.FrameH
		if w%8 != 0 || h%8 != 0 {
			return nil, fmt.Errorf("cmdn: ArchConv needs dimensions divisible by 8, got %dx%d", w, h)
		}
		// The paper's stage i has 2^(i+3) filters at 128×128; scaled to the
		// simulator's resolution we keep three stages at one quarter the
		// filter count.
		backbone := nn.NewSequential(
			nn.NewConv2D(1, h, w, 4, r),
			nn.NewReLU(4*h*w),
			nn.NewMaxPool2D(4, h, w),
			nn.NewConv2D(4, h/2, w/2, 8, r),
			nn.NewReLU(8*h/2*w/2),
			nn.NewMaxPool2D(8, h/2, w/2),
			nn.NewConv2D(8, h/4, w/4, 16, r),
			nn.NewReLU(16*h/4*w/4),
			nn.NewMaxPool2D(16, h/4, w/4),
			nn.NewDense(16*h/8*w/8, hy.H, r),
			nn.NewReLU(hy.H),
		)
		return &nn.Model{Backbone: backbone, Head: nn.NewMDN(hy.H, hy.G, r)}, nil
	default:
		return nil, fmt.Errorf("cmdn: unknown architecture %d", cfg.Arch)
	}
}

// Train fits one model per grid point on the training samples, evaluates
// each on the holdout set, and returns the model with the smallest holdout
// NLL (§3.2). Training cost is charged to PhaseTrainCMDN.
func Train(train, holdout []Sample, cfg Config, clock *simclock.Clock, cost simclock.CostModel) (*Proxy, []CandidateReport, error) {
	cfg = cfg.withDefaults()
	if len(train) == 0 {
		return nil, nil, fmt.Errorf("cmdn: no training samples")
	}
	if len(holdout) == 0 {
		return nil, nil, fmt.Errorf("cmdn: no holdout samples")
	}

	// Normalize targets; the MDN trains in standardized space.
	var mean, sq float64
	for _, s := range train {
		mean += s.Y
	}
	mean /= float64(len(train))
	for _, s := range train {
		d := s.Y - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(train)))
	if std < 1e-6 {
		std = 1
	}

	xs := make([][]float64, len(train))
	ys := make([]float64, len(train))
	for i, s := range train {
		xs[i] = s.X
		ys[i] = (s.Y - mean) / std
	}
	hx := make([][]float64, len(holdout))
	hy := make([]float64, len(holdout))
	for i, s := range holdout {
		hx[i] = s.X
		hy[i] = (s.Y - mean) / std
	}

	// Each grid point draws from an independent RNG stream keyed by its
	// index (SplitIndex does not advance the parent), so candidates may
	// train on any worker in any order and still come out bit-identical
	// to the serial loop.
	root := xrand.New(cfg.Seed).Split("cmdn/train")
	seeds := make([]*xrand.RNG, len(cfg.Grid))
	for gi := range seeds {
		seeds[gi] = root.SplitIndex(uint64(gi))
	}
	procs := workpool.Procs(cfg.Procs)

	type gridOut struct {
		model *nn.Model
		err   error
	}
	outs := workpool.Map(procs, len(cfg.Grid), func(_, gi int) gridOut {
		r := seeds[gi]
		model, err := buildModel(cfg, cfg.Grid[gi], r)
		if err != nil {
			return gridOut{err: err}
		}
		if _, err := model.Fit(xs, ys, nn.TrainConfig{
			Epochs:       cfg.Epochs,
			LearningRate: cfg.LearningRate,
			Seed:         r.Uint64(),
		}); err != nil {
			return gridOut{err: err}
		}
		return gridOut{model: model}
	})
	models := make([]*nn.Model, len(outs))
	for gi, o := range outs {
		if o.err != nil {
			return nil, nil, o.err
		}
		models[gi] = o.model
	}

	nlls := holdoutNLLs(models, hx, hy, procs)
	var best *Proxy
	reports := make([]CandidateReport, 0, len(cfg.Grid))
	for gi, hyp := range cfg.Grid {
		reports = append(reports, CandidateReport{Hyper: hyp, HoldoutNLL: nlls[gi]})
		if best == nil || nlls[gi] < best.holdoutNLL {
			best = &Proxy{
				model: models[gi], arch: cfg.Arch, hyper: hyp,
				yMean: mean, yStd: std, holdoutNLL: nlls[gi],
				featW: cfg.FrameW, featH: cfg.FrameH,
			}
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].HoldoutNLL < reports[j].HoldoutNLL })
	best.calibrate(hx, hy, procs)
	if clock != nil {
		clock.Charge(simclock.PhaseTrainCMDN, cost.ProxyTrainSampleMS*float64(len(train)+len(holdout)))
	}
	return best, reports, nil
}

// holdoutNLLs evaluates every candidate's mean holdout NLL, parallelized
// over (candidate, holdout sample) pairs with weight-sharing inference
// clones. Per-candidate terms are reduced in sample order, so each mean
// is bit-identical to nn.Model.MeanNLL's serial loop.
func holdoutNLLs(models []*nn.Model, hx [][]float64, hy []float64, procs int) []float64 {
	nModels, nSamples := len(models), len(hx)
	if nSamples == 0 {
		// Mirror nn.Model.MeanNLL's empty-input guard (0, not 0/0 = NaN).
		return make([]float64, nModels)
	}
	newClones := func() map[int]*nn.Model { return make(map[int]*nn.Model, nModels) }
	terms := workpool.MapWith(procs, nModels*nSamples, newClones, func(clones map[int]*nn.Model, idx int) float64 {
		gi, i := idx/nSamples, idx%nSamples
		m := clones[gi]
		if m == nil {
			m = models[gi].CloneForInference()
			clones[gi] = m
		}
		m.Predict(hx[i])
		return m.Head.NLL(hy[i])
	})
	nlls := make([]float64, nModels)
	for gi := 0; gi < nModels; gi++ {
		total := 0.0
		for _, t := range terms[gi*nSamples : (gi+1)*nSamples] {
			total += t
		}
		nlls[gi] = total / float64(nSamples)
	}
	return nlls
}

// calibrate computes the holdout RMS of standardized residuals
// z = (y − μ̂)/σ̂ and stores max(1, RMS) as the σ inflation factor.
// Residuals are computed in parallel on weight-sharing clones and reduced
// in sample order, matching the serial loop bit for bit.
func (p *Proxy) calibrate(hx [][]float64, hy []float64, procs int) {
	p.calib = 1
	if len(hx) == 0 {
		return
	}
	terms := workpool.MapWith(procs, len(hx), p.model.CloneForInference, func(m *nn.Model, i int) float64 {
		mix := m.Predict(hx[i])
		sd := math.Sqrt(mix.Variance())
		if sd < 1e-9 {
			sd = 1e-9
		}
		z := (hy[i] - mix.Mean()) / sd
		return z * z
	})
	// Index-ordered reduction: same rounding as the serial loop.
	sumSq := 0.0
	for _, t := range terms {
		sumSq += t
	}
	rms := math.Sqrt(sumSq / float64(len(hx)))
	if rms > 1 {
		p.calib = rms
	}
}

// pruneWeight drops mixture components below this weight. Softmax never
// outputs an exact zero, so every MDN carries vestigial components that
// training parked at arbitrary means with ~10⁻³ weight; left in place,
// their stray tail mass above the Top-K threshold forces Phase 2 to clean
// thousands of frames that are not real contenders.
const pruneWeight = 0.02

// Predict returns the de-standardized, calibration-inflated score mixture
// for a prepared input, with vestigial components pruned and the remaining
// weights renormalized.
func (p *Proxy) Predict(x []float64) uncertain.Mixture {
	mix := p.model.Predict(x)
	calib := p.calib
	if calib < 1 {
		calib = 1
	}
	out := make(uncertain.Mixture, 0, len(mix))
	kept := 0.0
	for _, c := range mix {
		if c.Weight < pruneWeight {
			continue
		}
		kept += c.Weight
		out = append(out, uncertain.GaussianComponent{
			Weight: c.Weight,
			Mean:   c.Mean*p.yStd + p.yMean,
			Sigma:  math.Max(c.Sigma*p.yStd*calib, 1e-6),
		})
	}
	if len(out) == 0 {
		// Degenerate case: keep the heaviest component.
		best := 0
		for i, c := range mix {
			if c.Weight > mix[best].Weight {
				best = i
			}
		}
		c := mix[best]
		return uncertain.Mixture{{
			Weight: 1,
			Mean:   c.Mean*p.yStd + p.yMean,
			Sigma:  math.Max(c.Sigma*p.yStd*calib, 1e-6),
		}}
	}
	for i := range out {
		out[i].Weight /= kept
	}
	return out
}

// PredictFrame renders nothing; it prepares the given decoded frame for
// the proxy's architecture (into proxy-owned scratch) and predicts.
func (p *Proxy) PredictFrame(f video.Frame) uncertain.Mixture {
	p.featBuf = AppendInput(p.featBuf[:0], p.arch, f)
	return p.Predict(p.featBuf)
}
