package cmdn

import (
	"math"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
)

// refreshFixture trains a base proxy on the first half of a synthetic
// feed and returns samples from the second half for refreshing.
func refreshFixture(t *testing.T) (base *Proxy, train2, hold2 []Sample, cfg Config, cost simclock.CostModel) {
	t.Helper()
	src := trafficSource(t, 1200)
	w, h := src.Resolution()
	cfg = Config{Grid: []Hyper{{G: 5, H: 20}, {G: 8, H: 30}}, Epochs: 20, Seed: 9, FrameW: w, FrameH: h}
	cost = simclock.Default()

	train1 := makeSamples(src, cfg.Arch, offsetEvery(600, 7, 0))
	hold1 := makeSamples(src, cfg.Arch, offsetEvery(600, 29, 3))
	var err error
	base, _, err = Train(train1, hold1, cfg, nil, cost)
	if err != nil {
		t.Fatal(err)
	}
	train2 = makeSamples(src, cfg.Arch, offsetEvery(1200, 7, 600))
	hold2 = makeSamples(src, cfg.Arch, offsetEvery(1200, 29, 601))
	return base, train2, hold2, cfg, cost
}

// TestRefreshWarmStart: a warm refresh produces a usable proxy at a
// fraction of the full-train charge, and never mutates the original.
func TestRefreshWarmStart(t *testing.T) {
	base, train2, hold2, cfg, cost := refreshFixture(t)

	probe := train2[0].X
	before := append([]float64(nil), flattenMixture(base.Predict(probe))...)

	warmClock := simclock.NewClock()
	warm, err := Refresh(base, train2, hold2, nil, RefreshConfig{Seed: 11}, cfg, warmClock, cost)
	if err != nil {
		t.Fatal(err)
	}

	after := flattenMixture(base.Predict(probe))
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("refresh mutated the previous proxy (term %d: %v -> %v)", i, before[i], after[i])
		}
	}

	fullClock := simclock.NewClock()
	if _, _, err := Train(train2, hold2, cfg, fullClock, cost); err != nil {
		t.Fatal(err)
	}
	warmMS := warmClock.PhaseMS(simclock.PhaseTrainCMDN)
	fullMS := fullClock.PhaseMS(simclock.PhaseTrainCMDN)
	if warmMS <= 0 || warmMS >= fullMS/2 {
		t.Fatalf("warm refresh charge %v ms not a clear win over full train %v ms", warmMS, fullMS)
	}

	// The refreshed proxy should still explain the new segment: its
	// holdout NLL must stay in the neighbourhood of a full retrain's
	// (both evaluated on the same holdout samples; exact values differ,
	// catastrophic divergence must not happen).
	if math.IsNaN(warm.HoldoutNLL()) || warm.HoldoutNLL() > base.HoldoutNLL()+5 {
		t.Fatalf("warm holdout NLL %v degenerated (base %v)", warm.HoldoutNLL(), base.HoldoutNLL())
	}
	if warm.Calibration() < 1 {
		t.Fatalf("calibration factor %v below 1", warm.Calibration())
	}
}

// TestDriftNLLDetectsShift: in-distribution samples score near the
// selection-time holdout NLL; a shifted score distribution scores
// clearly worse.
func TestDriftNLLDetectsShift(t *testing.T) {
	base, _, hold2, _, _ := refreshFixture(t)

	same := base.DriftNLL(hold2)
	if math.Abs(same-base.HoldoutNLL()) > 3 {
		t.Fatalf("in-distribution drift NLL %v far from holdout NLL %v", same, base.HoldoutNLL())
	}

	shifted := make([]Sample, len(hold2))
	for i, s := range hold2 {
		shifted[i] = Sample{Frame: s.Frame, X: s.X, Y: s.Y + 40}
	}
	far := base.DriftNLL(shifted)
	if far < same+3 {
		t.Fatalf("shifted targets drift NLL %v not clearly above in-distribution %v", far, same)
	}
}

func flattenMixture(mix uncertain.Mixture) []float64 {
	out := make([]float64, 0, 3*len(mix))
	for _, c := range mix {
		out = append(out, c.Weight, c.Mean, c.Sigma)
	}
	return out
}
