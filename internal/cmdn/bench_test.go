package cmdn

import (
	"testing"

	"github.com/everest-project/everest/internal/simclock"
)

func BenchmarkExtractFeatures(b *testing.B) {
	src := trafficSource(b, 100)
	f := src.Render(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExtractFeatures(f)
	}
}

func BenchmarkProxyPredict(b *testing.B) {
	src := trafficSource(b, 2000)
	train := makeSamples(src, ArchPooled, sampleEvery(2000, 7))
	holdout := makeSamples(src, ArchPooled, offsetEvery(2000, 13, 3))
	proxy, _, err := Train(train, holdout, Config{Grid: []Hyper{{G: 8, H: 30}}, Epochs: 5, Seed: 1}, nil, simclock.Default())
	if err != nil {
		b.Fatal(err)
	}
	f := src.Render(123)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = proxy.PredictFrame(f)
	}
}

func BenchmarkTrainGridPoint(b *testing.B) {
	src := trafficSource(b, 2000)
	train := makeSamples(src, ArchPooled, sampleEvery(2000, 7))
	holdout := makeSamples(src, ArchPooled, offsetEvery(2000, 13, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Train(train, holdout, Config{Grid: []Hyper{{G: 5, H: 20}}, Epochs: 5, Seed: 1}, nil, simclock.Default()); err != nil {
			b.Fatal(err)
		}
	}
}
