// Warm-start refresh: the streaming-ingestion alternative to a full
// grid Train. A live camera closes one CMDN segment every few thousand
// frames; retraining the 12-point hyperparameter grid from scratch per
// segment costs O(retrain) when the scene usually has not changed.
// Refresh deep-clones the previous segment's selected model and
// fine-tunes it for a few epochs on the new segment's samples, and
// DriftNLL is the pre-check that decides whether warm-starting is safe
// or the scene has drifted enough to deserve a full specialize.
package cmdn

import (
	"fmt"

	"github.com/everest-project/everest/internal/nn"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/workpool"
	"github.com/everest-project/everest/internal/xrand"
)

// RefreshConfig controls a warm-start refresh.
type RefreshConfig struct {
	// Epochs of fine-tuning; zero means 5 (vs a full train's 35: the
	// weights start near an optimum for the previous segment).
	Epochs int
	// LearningRate for the fine-tune Adam; zero means 2e-3, lower than
	// a cold train's 5e-3 so the inherited weights are adjusted, not
	// overwritten.
	LearningRate float64
	// Seed drives the fine-tune shuffling.
	Seed uint64
	// Procs bounds the calibration workers; ≤ 0 means GOMAXPROCS.
	// Never affects results.
	Procs int
}

func (c RefreshConfig) withDefaults() RefreshConfig {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.LearningRate == 0 {
		c.LearningRate = 2e-3
	}
	return c
}

// DriftNLL measures how well the trained proxy explains newly labelled
// holdout samples: their mean NLL under p, computed in p's standardized
// target space — directly comparable to p.HoldoutNLL(), which is the
// same statistic on the holdout set p was selected with. A DriftNLL
// far above HoldoutNLL means the score distribution has moved and a
// warm start would inherit stale structure.
func (p *Proxy) DriftNLL(holdout []Sample) float64 {
	if len(holdout) == 0 {
		return 0
	}
	hx := make([][]float64, len(holdout))
	hy := make([]float64, len(holdout))
	for i, s := range holdout {
		hx[i] = s.X
		hy[i] = (s.Y - p.yMean) / p.yStd
	}
	return p.model.CloneForInference().MeanNLL(hx, hy)
}

// Refresh warm-starts a proxy from prev: the selected model is
// deep-cloned (prev is never mutated) and fine-tuned on the new
// segment's training samples in prev's standardized target space — the
// space the inherited weights are meaningful in — then re-evaluated on
// the new holdout set and σ-recalibrated on calib (typically a
// reservoir of held-out samples spanning past segments plus the new
// holdout, so calibration reflects the whole stream, not one segment).
//
// full is the Config a cold specialize would have used; it prices the
// charge. A full Train costs ProxyTrainSampleMS per sample with the
// grid width and epoch count baked into the constant, so the refresh
// charges the fraction it actually trains: one model instead of
// len(full.Grid), Epochs instead of full.Epochs. With the defaults
// (5 epochs, 12-point grid, 35 full epochs) that is ~1/84 of a full
// specialize over the same samples — the O(retrain) → O(chunk) win the
// streaming ingestor banks per segment.
func Refresh(prev *Proxy, train, holdout, calib []Sample, cfg RefreshConfig, full Config, clock *simclock.Clock, cost simclock.CostModel) (*Proxy, error) {
	if prev == nil {
		return nil, fmt.Errorf("cmdn: refresh needs a previous proxy")
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("cmdn: no training samples")
	}
	if len(holdout) == 0 {
		return nil, fmt.Errorf("cmdn: no holdout samples")
	}
	cfg = cfg.withDefaults()
	full = full.withDefaults()

	xs := make([][]float64, len(train))
	ys := make([]float64, len(train))
	for i, s := range train {
		xs[i] = s.X
		ys[i] = (s.Y - prev.yMean) / prev.yStd
	}
	model := prev.model.Clone()
	if _, err := model.Fit(xs, ys, nn.TrainConfig{
		Epochs:       cfg.Epochs,
		LearningRate: cfg.LearningRate,
		Seed:         xrand.New(cfg.Seed).Split("cmdn/refresh").Uint64(),
	}); err != nil {
		return nil, err
	}

	hx := make([][]float64, len(holdout))
	hy := make([]float64, len(holdout))
	for i, s := range holdout {
		hx[i] = s.X
		hy[i] = (s.Y - prev.yMean) / prev.yStd
	}
	next := &Proxy{
		model: model, arch: prev.arch, hyper: prev.hyper,
		yMean: prev.yMean, yStd: prev.yStd,
		holdoutNLL: model.MeanNLL(hx, hy),
		featW:      prev.featW, featH: prev.featH,
	}

	if len(calib) == 0 {
		calib = holdout
	}
	cx := make([][]float64, len(calib))
	cy := make([]float64, len(calib))
	for i, s := range calib {
		cx[i] = s.X
		cy[i] = (s.Y - prev.yMean) / prev.yStd
	}
	next.calibrate(cx, cy, workpool.Procs(cfg.Procs))

	if clock != nil {
		frac := float64(cfg.Epochs) / float64(full.Epochs) / float64(len(full.Grid))
		clock.Charge(simclock.PhaseTrainCMDN,
			cost.ProxyTrainSampleMS*float64(len(train)+len(holdout))*frac)
	}
	return next, nil
}
