package cmdn

import (
	"testing"

	"github.com/everest-project/everest/internal/simclock"
)

// TestTrainProcsBitIdentical is the package-level determinism contract:
// the grid may train on any number of workers, yet the selected proxy,
// every candidate report, the calibration factor and downstream
// predictions must match the serial path bit for bit.
func TestTrainProcsBitIdentical(t *testing.T) {
	src := trafficSource(t, 1500)
	train := makeSamples(src, ArchPooled, sampleEvery(1500, 9))
	holdout := makeSamples(src, ArchPooled, offsetEvery(1500, 21, 4))
	grid := []Hyper{{G: 5, H: 20}, {G: 8, H: 30}, {G: 12, H: 20}}

	run := func(procs int) (*Proxy, []CandidateReport) {
		cfg := Config{Grid: grid, Epochs: 5, Seed: 11, Procs: procs}
		p, reports, err := Train(train, holdout, cfg, nil, simclock.Default())
		if err != nil {
			t.Fatal(err)
		}
		return p, reports
	}
	serial, serialReports := run(1)
	for _, procs := range []int{2, 8} {
		par, parReports := run(procs)
		if par.HoldoutNLL() != serial.HoldoutNLL() {
			t.Fatalf("procs=%d: holdout NLL %v != serial %v", procs, par.HoldoutNLL(), serial.HoldoutNLL())
		}
		if par.Hyper() != serial.Hyper() {
			t.Fatalf("procs=%d: selected %+v != serial %+v", procs, par.Hyper(), serial.Hyper())
		}
		if par.Calibration() != serial.Calibration() {
			t.Fatalf("procs=%d: calibration %v != serial %v", procs, par.Calibration(), serial.Calibration())
		}
		for i := range serialReports {
			if parReports[i] != serialReports[i] {
				t.Fatalf("procs=%d: report %d %+v != serial %+v", procs, i, parReports[i], serialReports[i])
			}
		}
		for _, f := range []int{17, 430, 977, 1321} {
			sm := serial.PredictFrame(src.Render(f))
			pm := par.PredictFrame(src.Render(f))
			if len(sm) != len(pm) {
				t.Fatalf("procs=%d frame %d: mixture sizes differ", procs, f)
			}
			for c := range sm {
				if sm[c] != pm[c] {
					t.Fatalf("procs=%d frame %d component %d: %+v != %+v", procs, f, c, pm[c], sm[c])
				}
			}
		}
	}
}

func TestProxyCloneForInference(t *testing.T) {
	src := trafficSource(t, 800)
	train := makeSamples(src, ArchPooled, sampleEvery(800, 7))
	holdout := makeSamples(src, ArchPooled, offsetEvery(800, 19, 3))
	proxy, _, err := Train(train, holdout, Config{Grid: []Hyper{{G: 5, H: 20}}, Epochs: 4, Seed: 13}, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	clone := proxy.CloneForInference()
	for _, f := range []int{3, 99, 512, 790} {
		want := proxy.PredictFrame(src.Render(f))
		got := clone.PredictFrame(src.Render(f))
		if len(want) != len(got) {
			t.Fatalf("frame %d: clone mixture size differs", f)
		}
		for c := range want {
			if want[c] != got[c] {
				t.Fatalf("frame %d component %d: clone %+v vs %+v", f, c, got[c], want[c])
			}
		}
	}
}

// BenchmarkCMDNGridTrainSerial and BenchmarkCMDNGridTrainParallel compare
// the paper's full 12-point grid trained on one worker vs all cores.
func benchGridTrain(b *testing.B, procs int) {
	src := trafficSource(b, 2000)
	train := makeSamples(src, ArchPooled, sampleEvery(2000, 7))
	holdout := makeSamples(src, ArchPooled, offsetEvery(2000, 13, 3))
	cfg := Config{Epochs: 5, Seed: 1, Procs: procs} // nil Grid → full 12-point paper grid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Train(train, holdout, cfg, nil, simclock.Default()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCMDNGridTrainSerial(b *testing.B)   { benchGridTrain(b, 1) }
func BenchmarkCMDNGridTrainParallel(b *testing.B) { benchGridTrain(b, 0) }
