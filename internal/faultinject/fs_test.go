package faultinject

import (
	"errors"
	"testing"

	"github.com/everest-project/everest/internal/durable"
)

// writeHistory runs a fixed publish/evict sequence against a store on
// the given FS and returns the per-version expected states. Version i
// of the sequence is: publishes 1..6, then one eviction of the first
// batch's frames at version 7.
func writeHistory(fs durable.FS, dir string) error {
	s, err := durable.Open(dir, durable.Options{FS: fs, CheckpointEvery: 3})
	if err != nil {
		return err
	}
	defer s.Close()
	for i := 1; i <= 6; i++ {
		if err := s.AppendPublish(uint64(i), []int{10 * i, 10*i + 1}, []float64{1, 2}); err != nil {
			return err
		}
	}
	return s.AppendEvict(7, []int{10, 11})
}

// TestFaultFSDeterministicOps: the same workload against the same
// schedule consumes the same op count and tears at the same offset —
// the crash clock is a pure function of the write history.
func TestFaultFSDeterministicOps(t *testing.T) {
	count := func() int {
		fs := NewFaultFS(durable.OSFS{}, 7)
		if err := writeHistory(fs, t.TempDir()); err != nil {
			t.Fatal(err)
		}
		return fs.Stats().Ops
	}
	a, b := count(), count()
	if a != b || a == 0 {
		t.Fatalf("op counts %d vs %d, want equal and positive", a, b)
	}

	// Crash at a mid-history op: identical tear both times.
	tear := func() (int, int) {
		fs := NewFaultFS(durable.OSFS{}, 7).CrashAt(4)
		_ = writeHistory(fs, t.TempDir())
		st := fs.Stats()
		if !st.Crashed {
			t.Fatalf("crash at op 4 of %d never fired", a)
		}
		return st.Ops, st.TornBytes
	}
	ops1, torn1 := tear()
	ops2, torn2 := tear()
	if ops1 != ops2 || torn1 != torn2 {
		t.Fatalf("crash run not deterministic: (%d ops, %d torn) vs (%d ops, %d torn)", ops1, torn1, ops2, torn2)
	}
}

// TestFaultFSCrashIsSticky: after the crash op, every operation —
// mutating or read — fails with ErrCrashed and nothing more reaches
// the disk.
func TestFaultFSCrashIsSticky(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(durable.OSFS{}, 1).CrashAt(0) // dies on MkdirAll
	if _, err := durable.Open(dir, durable.Options{FS: fs}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Open over crashed FS = %v, want ErrCrashed", err)
	}
	if err := fs.MkdirAll(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("MkdirAll after crash = %v", err)
	}
	if _, err := fs.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadDir after crash = %v", err)
	}
	if _, err := fs.ReadFile(dir + "/x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ReadFile after crash = %v", err)
	}
	if err := fs.Rename(dir+"/a", dir+"/b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Rename after crash = %v", err)
	}
}

// TestFaultFSSyncErrIsNonFatal: a failed fsync reports ErrInjectedIO
// once; the store latches it sticky (durability stopped) but the
// process — and the FS — keep working.
func TestFaultFSSyncErrIsNonFatal(t *testing.T) {
	dir := t.TempDir()
	// Op layout for the first append on a fresh dir: 0 MkdirAll,
	// 1 OpenAppend, 2 Write, 3 Sync.
	fs := NewFaultFS(durable.OSFS{}, 1).SyncErrAt(3)
	s, err := durable.Open(dir, durable.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.AppendPublish(1, []int{1}, []float64{1})
	if !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("append with failed fsync = %v, want ErrInjectedIO", err)
	}
	if s.Err() == nil {
		t.Fatal("store did not latch the fsync failure")
	}
	if !errors.Is(s.AppendPublish(2, []int{2}, []float64{2}), ErrInjectedIO) {
		t.Fatal("sticky error not returned on later appends")
	}
	if fs.Stats().Crashed {
		t.Fatal("non-fatal fault marked the process crashed")
	}
}

// TestFaultFSShortWriteTruncatedOnRecovery: a short write leaves a
// torn record; reopening the directory recovers the consistent prefix
// and physically truncates the tail.
func TestFaultFSShortWriteTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	// Op layout: 0 MkdirAll, 1 OpenAppend, 2 Write, 3 Sync (first
	// append), 4 Write (second append — the segment handle stays open).
	fs := NewFaultFS(durable.OSFS{}, 3).ShortWriteAt(4)
	s, err := durable.Open(dir, durable.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPublish(1, []int{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	err = s.AppendPublish(2, []int{2}, []float64{2})
	if !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("short write surfaced as %v", err)
	}
	s.Close()

	r, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, v := r.Recovered(); v != 1 {
		t.Fatalf("recovered version %d, want 1 (short-written record dropped)", v)
	}
}
