package faultinject

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func testSource(t testing.TB, seed uint64) *video.Synthetic {
	t.Helper()
	src, err := video.NewSynthetic(video.Config{
		Name: "fault-fixture", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 300, FPS: 30, Seed: seed, MeanPopulation: 3, BurstRate: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestParseExamples(t *testing.T) {
	cases := []struct {
		in   string
		want Schedule
	}{
		{"", Schedule{}},
		{"err", Schedule{Rules: []Rule{{Kind: KindErr, Count: 1}}}},
		{"err:3", Schedule{Rules: []Rule{{Kind: KindErr, Count: 3}}}},
		{"5@panic", Schedule{Rules: []Rule{{Kind: KindPanic, Start: 5, Count: 1}}}},
		{"slow:10:250", Schedule{Rules: []Rule{{Kind: KindSlow, Count: 10, MS: 250}}}},
		{"slow:2", Schedule{Rules: []Rule{{Kind: KindSlow, Count: 2, MS: 100}}}},
		{"err:1000~0.2", Schedule{Rules: []Rule{{Kind: KindErr, Count: 1000, Prob: 0.2}}}},
		{"err:2~1", Schedule{Rules: []Rule{{Kind: KindErr, Count: 2}}}}, // ~1 means always
		{" err:1 , 2@slow:1:50 ", Schedule{Rules: []Rule{
			{Kind: KindErr, Count: 1},
			{Kind: KindSlow, Start: 2, Count: 1, MS: 50},
		}}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want.Normalize()) {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.in, got, c.want.Normalize())
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"nope", "err:x", "err:-1", "-3@err", "x@err", "err:1:50", // latency on non-slow
		"slow:1:-5", "slow:1:NaN", "slow:1:+Inf", "err~0", "err~1.5", "err~NaN",
		"err:1:2:3", "@err", "~0.5",
	} {
		if _, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q) accepted malformed input", in)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	for _, in := range []string{"", "err:3", "5@panic:1", "slow:10:250", "err:1000~0.2", "err:1,3@slow:2:50,7@panic:1"} {
		sched := MustParse(in)
		canon := sched.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, in, err)
		}
		if !reflect.DeepEqual(again, sched) {
			t.Fatalf("round-trip of %q drifted: %+v vs %+v", in, again, sched)
		}
		if again.String() != canon {
			t.Fatalf("String not stable for %q: %q vs %q", in, again.String(), canon)
		}
	}
}

func TestNormalizeSortsAndDrops(t *testing.T) {
	s := Schedule{Rules: []Rule{
		{Kind: KindSlow, Start: 4, Count: 1, MS: 10},
		{Kind: KindErr, Count: 0},                            // dropped
		{Kind: KindPanic, Start: -3, Count: 2},               // start clamps to 0
		{Kind: KindErr, Start: 0, Count: 1, MS: 99, Prob: 2}, // MS cleared (not slow), prob clamped
	}}.Normalize()
	want := Schedule{Rules: []Rule{
		{Kind: KindErr, Count: 1},
		{Kind: KindPanic, Count: 2},
		{Kind: KindSlow, Start: 4, Count: 1, MS: 10},
	}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("Normalize = %+v, want %+v", s, want)
	}
	if !reflect.DeepEqual(s, s.Normalize()) {
		t.Fatal("Normalize is not idempotent")
	}
}

// TestUDFWrapperSchedule drives the wrapper through every fault kind at
// the dispatch boundary and checks the N-then-succeed contract: once
// the scheduled faults are exhausted, scores are exactly the inner
// UDF's.
func TestUDFWrapperSchedule(t *testing.T) {
	src := testSource(t, 3)
	inner := vision.CountUDF{Class: video.ClassCar}
	clock := simclock.NewClock()
	// Calls 0-1 fail transiently, call 2 panics, call 3 is slow (+250
	// simulated ms), calls 4+ succeed.
	w := WrapUDF(inner, MustParse("err:2,2@panic,3@slow:1:250"), 1).WithClock(clock)
	ids := []int{1, 2, 3}

	for call := 0; call < 2; call++ {
		_, err := vision.SafeScore(w, src, ids)
		var te *TransientError
		if !errors.As(err, &te) || te.Call != call {
			t.Fatalf("call %d: got %v, want injected TransientError for that call", call, err)
		}
		if !vision.Transient(err) {
			t.Fatalf("call %d: injected error must classify transient", call)
		}
	}
	_, err := vision.SafeScore(w, src, ids)
	var oe *vision.OracleError
	if !errors.As(err, &oe) || oe.Panic == nil {
		t.Fatalf("call 2: got %v, want a recovered injected panic", err)
	}
	if vision.Transient(err) {
		t.Fatal("an injected panic must not classify transient")
	}
	before := clock.TotalMS()
	scores, err := vision.SafeScore(w, src, ids)
	if err != nil {
		t.Fatalf("call 3 (slow) should succeed: %v", err)
	}
	if got := clock.TotalMS() - before; got != 250 {
		t.Fatalf("slow call charged %v simulated ms, want 250", got)
	}
	if want := inner.Score(src, ids); !reflect.DeepEqual(scores, want) {
		t.Fatalf("slow call perturbed scores: %v vs %v", scores, want)
	}
	scores, err = vision.SafeScore(w, src, ids)
	if err != nil {
		t.Fatalf("post-schedule call should succeed: %v", err)
	}
	if want := inner.Score(src, ids); !reflect.DeepEqual(scores, want) {
		t.Fatalf("post-schedule scores drifted: %v vs %v", scores, want)
	}
	st := w.Stats()
	if st.Calls != 5 || st.Transients != 2 || st.Panics != 1 || st.Slow != 1 || st.SpikeMS != 250 {
		t.Fatalf("stats %+v, want 5 calls / 2 transients / 1 panic / 1 slow / 250 spike ms", st)
	}
}

// TestDirectScoreBypassesInjection locks the Phase 1 contract: plain
// Score calls (ingestion's path) never consume or trigger faults.
func TestDirectScoreBypassesInjection(t *testing.T) {
	src := testSource(t, 5)
	inner := vision.CountUDF{Class: video.ClassCar}
	w := WrapUDF(inner, MustParse("err:100"), 1)
	for i := 0; i < 3; i++ {
		if got, want := w.Score(src, []int{i}), inner.Score(src, []int{i}); !reflect.DeepEqual(got, want) {
			t.Fatalf("direct Score perturbed: %v vs %v", got, want)
		}
	}
	if st := w.Stats(); st.Calls != 0 {
		t.Fatalf("direct Score consumed %d fault slots", st.Calls)
	}
}

// TestProbabilisticFaultsDeterministicUnderConcurrency is the chaos
// layer's own determinism contract: with a probabilistic rule, the set
// of faulted call indices is a pure function of (schedule, seed), so a
// serial run and a concurrent run observe identical fault totals.
func TestProbabilisticFaultsDeterministicUnderConcurrency(t *testing.T) {
	const calls = 400
	sched := MustParse("err:400~0.3")
	count := func(concurrent bool) int {
		in := newInjector(sched, 42)
		if !concurrent {
			n := 0
			for i := 0; i < calls; i++ {
				if r, _ := in.next(); r != nil {
					n++
				}
			}
			return n
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < calls/8; i++ {
					in.next()
				}
			}()
		}
		wg.Wait()
		return in.snapshot().Transients
	}
	serial, concurrent := count(false), count(true)
	if serial == 0 || serial == calls {
		t.Fatalf("degenerate probabilistic schedule: %d of %d faulted", serial, calls)
	}
	if serial != concurrent {
		t.Fatalf("fault totals depend on interleaving: serial %d, concurrent %d", serial, concurrent)
	}
	// And a different seed draws a different set.
	other := newInjector(sched, 43)
	n := 0
	for i := 0; i < calls; i++ {
		if r, _ := other.next(); r != nil {
			n++
		}
	}
	if n == serial {
		t.Logf("seed 42 and 43 drew the same fault count %d (possible, but suspicious)", n)
	}
}

// TestSourceWrapperPanics checks the decode-path injection: a faulted
// Scene call panics with the typed PanicValue (sources have no error
// channel; the dispatch boundary's recovery types it).
func TestSourceWrapperPanics(t *testing.T) {
	src := testSource(t, 7)
	w := WrapSource(src, MustParse("1@err:1"), 1)
	_ = w.Scene(0) // call 0: clean
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Call != 1 {
			t.Fatalf("recovered %v, want PanicValue for call 1", r)
		}
	}()
	_ = w.Scene(1) // call 1: injected fault
	t.Fatal("faulted Scene call did not panic")
}
