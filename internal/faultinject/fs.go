package faultinject

import (
	"errors"
	"fmt"
	"sync"

	"github.com/everest-project/everest/internal/durable"
	"github.com/everest-project/everest/internal/xrand"
)

// ErrCrashed is what every filesystem operation returns once a FaultFS
// crash has fired: the simulated process is dead, nothing it does
// reaches the disk anymore. Recovery is modeled by reopening the same
// directory through a fresh (fault-free) FS — exactly what a restarted
// process would do.
var ErrCrashed = errors.New("faultinject: simulated crash")

// ErrInjectedIO is the non-fatal injected I/O failure (failed fsync,
// short write): the operation reports an error but the process lives
// on, so callers exercise their availability-over-durability path.
var ErrInjectedIO = errors.New("faultinject: injected I/O failure")

// FSStats counts what the filesystem fault layer observed and did.
type FSStats struct {
	// Ops is the number of mutating operations observed (the crash
	// clock: crash-at-k kills the k-th of these).
	Ops int
	// TornBytes is how many bytes of the fatal torn write survived.
	TornBytes int
	// Crashed reports whether the crash fired.
	Crashed bool
}

// FaultFS wraps a durable.FS with deterministic fault injection. Every
// mutating operation — Write, Sync, Create, OpenAppend, Rename,
// Remove, Truncate, SyncDir, MkdirAll — consumes one op slot from a
// process-order counter; reads are free. Three fault kinds, each
// pinned to an op index so a schedule is a pure function of
// (CrashAt, SyncErrAt, ShortWriteAt, Seed), reproducible across runs:
//
//   - CrashAt k: the k-th mutating op is where the process dies. A
//     Write persists only a prefix of its buffer first — the torn
//     write a real crash mid-append leaves — with the prefix length
//     drawn xrand-style from (Seed, k); any other op persists nothing.
//     The op and every later one return ErrCrashed.
//   - SyncErrAt k: the k-th op, if it is a Sync or SyncDir, fails with
//     ErrInjectedIO; the process continues.
//   - ShortWriteAt k: the k-th op, if it is a Write, persists a
//     deterministic prefix and reports ErrInjectedIO; the process
//     continues.
//
// The mutating-op counter is the complete enumeration of a
// durable.Store's failure points (see durable.FS), so iterating
// CrashAt over [0, Stats().Ops) crash-tests every prefix of the
// store's write history.
type FaultFS struct {
	inner durable.FS
	seed  uint64

	// CrashAt, SyncErrAt, ShortWriteAt are mutating-op indices; -1
	// disables that fault.
	crashAt, syncErrAt, shortWriteAt int

	mu    sync.Mutex
	stats FSStats
}

// NewFaultFS wraps inner (nil means the real filesystem) with all
// faults disabled; arm them with CrashAt/SyncErrAt/ShortWriteAt.
func NewFaultFS(inner durable.FS, seed uint64) *FaultFS {
	if inner == nil {
		inner = durable.OSFS{}
	}
	return &FaultFS{inner: inner, seed: seed, crashAt: -1, syncErrAt: -1, shortWriteAt: -1}
}

// CrashAt arms the crash at mutating-op index k (-1 disarms). Returns
// the FaultFS for chaining.
func (f *FaultFS) CrashAt(k int) *FaultFS { f.crashAt = k; return f }

// SyncErrAt arms a non-fatal fsync failure at op index k (-1 disarms).
func (f *FaultFS) SyncErrAt(k int) *FaultFS { f.syncErrAt = k; return f }

// ShortWriteAt arms a non-fatal short write at op index k (-1 disarms).
func (f *FaultFS) ShortWriteAt(k int) *FaultFS { f.shortWriteAt = k; return f }

// Stats returns what the fault layer saw so far. After a fault-free
// run, Stats().Ops is the crash-point count a harness iterates over.
func (f *FaultFS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// fsOp consumes one mutating-op slot and says how the op must behave.
type fsVerdict int

const (
	fsOK       fsVerdict = iota
	fsCrash              // the crash fires on this op
	fsDead               // the process already crashed
	fsSyncErr            // this op's Sync fails non-fatally
	fsShortErr           // this op's Write goes short non-fatally
)

func (f *FaultFS) nextOp() (fsVerdict, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stats.Crashed {
		return fsDead, 0
	}
	op := f.stats.Ops
	f.stats.Ops++
	switch {
	case op == f.crashAt:
		f.stats.Crashed = true
		return fsCrash, op
	case op == f.syncErrAt:
		return fsSyncErr, op
	case op == f.shortWriteAt:
		return fsShortErr, op
	}
	return fsOK, op
}

// tornLen picks the surviving prefix of an n-byte write torn at op k:
// a deterministic draw in [0, n) from the (seed, op) stream, so every
// crash point also explores a different tear offset.
func (f *FaultFS) tornLen(op, n int) int {
	if n == 0 {
		return 0
	}
	return xrand.New(f.seed).Split("fsfault").SplitIndex(uint64(op)).Intn(n)
}

// MkdirAll implements durable.FS.
func (f *FaultFS) MkdirAll(dir string) error {
	switch v, _ := f.nextOp(); v {
	case fsCrash, fsDead:
		return ErrCrashed
	}
	return f.inner.MkdirAll(dir)
}

// ReadDir implements durable.FS (reads are free of fault slots but die
// with the process).
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

// ReadFile implements durable.FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats.Crashed
}

// Create implements durable.FS.
func (f *FaultFS) Create(name string) (durable.File, error) {
	switch v, _ := f.nextOp(); v {
	case fsCrash, fsDead:
		return nil, ErrCrashed
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// OpenAppend implements durable.FS.
func (f *FaultFS) OpenAppend(name string) (durable.File, error) {
	switch v, _ := f.nextOp(); v {
	case fsCrash, fsDead:
		return nil, ErrCrashed
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename implements durable.FS. A crash on the rename op models dying
// just before it: the old name survives.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	switch v, _ := f.nextOp(); v {
	case fsCrash, fsDead:
		return ErrCrashed
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements durable.FS.
func (f *FaultFS) Remove(name string) error {
	switch v, _ := f.nextOp(); v {
	case fsCrash, fsDead:
		return ErrCrashed
	}
	return f.inner.Remove(name)
}

// Truncate implements durable.FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	switch v, _ := f.nextOp(); v {
	case fsCrash, fsDead:
		return ErrCrashed
	}
	return f.inner.Truncate(name, size)
}

// SyncDir implements durable.FS.
func (f *FaultFS) SyncDir(dir string) error {
	switch v, _ := f.nextOp(); v {
	case fsCrash, fsDead:
		return ErrCrashed
	case fsSyncErr:
		return fmt.Errorf("syncing %s: %w", dir, ErrInjectedIO)
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes a file's Write/Sync through the fault layer.
type faultFile struct {
	fs    *FaultFS
	inner durable.File
}

// Write implements durable.File: a crash here persists a deterministic
// prefix of buf (the torn write), a short-write fault persists a
// prefix and reports ErrInjectedIO, and a dead process persists
// nothing.
func (w *faultFile) Write(buf []byte) (int, error) {
	switch v, op := w.fs.nextOp(); v {
	case fsDead:
		return 0, ErrCrashed
	case fsCrash:
		n := w.fs.tornLen(op, len(buf))
		w.fs.mu.Lock()
		w.fs.stats.TornBytes = n
		w.fs.mu.Unlock()
		if n > 0 {
			_, _ = w.inner.Write(buf[:n])
		}
		return 0, ErrCrashed
	case fsShortErr:
		n := w.fs.tornLen(op, len(buf))
		if n > 0 {
			_, _ = w.inner.Write(buf[:n])
		}
		return n, fmt.Errorf("short write (%d of %d bytes): %w", n, len(buf), ErrInjectedIO)
	}
	return w.inner.Write(buf)
}

// Sync implements durable.File.
func (w *faultFile) Sync() error {
	switch v, _ := w.fs.nextOp(); v {
	case fsCrash, fsDead:
		return ErrCrashed
	case fsSyncErr:
		return fmt.Errorf("fsync: %w", ErrInjectedIO)
	}
	return w.inner.Sync()
}

// Close implements durable.File. Close consumes no op slot (it
// persists nothing a crash could tear) but fails once the process is
// dead.
func (w *faultFile) Close() error {
	if w.fs.dead() {
		return ErrCrashed
	}
	return w.inner.Close()
}
