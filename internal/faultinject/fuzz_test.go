package faultinject

import (
	"reflect"
	"testing"
)

// FuzzFaultSchedule fuzzes the schedule DSL for the canonical-form
// contract: anything Parse accepts must String to a form that
// re-parses to the same schedule, and that canonical form must be a
// fixed point (String of the re-parse is byte-identical). Inputs Parse
// rejects are simply skipped — the fuzz target hunts for crashes in
// the parser and for round-trip drift, not for a grammar oracle.
func FuzzFaultSchedule(f *testing.F) {
	for _, s := range []string{
		"",
		"err",
		"err:3",
		"5@panic",
		"slow:10:250",
		"slow:2",
		"err:1000~0.2",
		"err:2~1",
		"err:1,3@slow:2:50,7@panic",
		" err:1 , 2@slow:1:50 ",
		"slow:1:0.5",
		"0@err:0",
		"err~0.999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := Parse(s)
		if err != nil {
			return
		}
		if !reflect.DeepEqual(sched, sched.Normalize()) {
			t.Fatalf("Parse(%q) returned non-normalized schedule %+v", s, sched)
		}
		canon := sched.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(again, sched) {
			t.Fatalf("round-trip of %q drifted: %+v vs %+v", s, again, sched)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form of %q is not a fixed point: %q -> %q", s, canon, got)
		}
	})
}
