package faultinject

import (
	"fmt"
	"sync"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/xrand"
)

// TransientError is the retryable failure the injector returns for
// KindErr faults. It implements the Transient() classification hook the
// dispatch boundary (vision.SafeScore) probes, so the engine's retry
// layer treats it as worth retrying.
type TransientError struct {
	// Call is the 0-based scoring-call index the fault fired on.
	Call int
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: injected transient oracle failure (call %d)", e.Call)
}

// Transient marks the error retryable.
func (e *TransientError) Transient() bool { return true }

// PanicValue is what injected panics carry, so recovery paths can
// distinguish an injected fault from a genuine bug.
type PanicValue struct {
	// Call is the 0-based scoring-call index the fault fired on.
	Call int
}

func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected oracle panic (call %d)", p.Call)
}

// Stats counts what the injector actually did. All fields are totals
// since the wrapper was created.
type Stats struct {
	// Calls is the number of scoring calls observed.
	Calls int
	// Transients is the number of injected transient errors.
	Transients int
	// Panics is the number of injected panics.
	Panics int
	// Slow is the number of calls that took a latency spike.
	Slow int
	// SpikeMS is the total simulated latency injected by KindSlow rules.
	SpikeMS float64
}

// injector is the shared fault engine behind the UDF and Source
// wrappers: a call counter plus the schedule/seed pair that decides,
// per call, which fault (if any) fires. Decisions depend only on the
// call index, so a run's fault sequence is reproducible even when the
// calls come from many goroutines.
type injector struct {
	sched Schedule
	seed  uint64

	mu    sync.Mutex
	calls int
	stats Stats
	clock *simclock.Clock
}

func newInjector(sched Schedule, seed uint64) *injector {
	return &injector{sched: sched.Normalize(), seed: seed}
}

// next consumes one call slot and returns the rule that fires on it
// (nil for none) along with the call index.
func (in *injector) next() (rule *Rule, call int) {
	in.mu.Lock()
	call = in.calls
	in.calls++
	in.stats.Calls++
	var spike float64
	var clock *simclock.Clock
	for i := range in.sched.Rules {
		r := &in.sched.Rules[i]
		if !r.matches(call) {
			continue
		}
		if r.Prob > 0 {
			// Per-call stream: the draw is a function of (seed, call), not
			// of how many probabilistic rules ran before — deterministic
			// under any concurrency.
			if xrand.New(in.seed).Split("faultinject").SplitIndex(uint64(call)).Float64() >= r.Prob {
				continue
			}
		}
		switch r.Kind {
		case KindErr:
			in.stats.Transients++
		case KindPanic:
			in.stats.Panics++
		case KindSlow:
			in.stats.Slow++
			in.stats.SpikeMS += r.MS
			spike, clock = r.MS, in.clock
		}
		rule = r
		break
	}
	in.mu.Unlock()
	if clock != nil && spike > 0 {
		clock.Charge(simclock.PhaseConfirm, spike)
	}
	return rule, call
}

func (in *injector) snapshot() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

func (in *injector) setClock(c *simclock.Clock) {
	in.mu.Lock()
	in.clock = c
	in.mu.Unlock()
}

// UDF wraps a vision.UDF with a fault schedule at the dispatch
// boundary: TryScore (the error-returning contract the engine
// dispatches through) consults the schedule before delegating, so
// transient errors and panics are injected exactly where a real flaky
// oracle would fail. Name, Quantize and OracleCostMS delegate, so a
// wrapped UDF serves against an index built with the clean one.
//
// Direct Score calls bypass injection (they delegate to the inner UDF
// verbatim): faults model the serving-path oracle dispatch, not Phase 1
// ingestion, which labels its samples through Score.
type UDF struct {
	vision.UDF
	in *injector
}

// WrapUDF wraps udf with the given schedule and seed (the seed matters
// only for probabilistic rules).
func WrapUDF(udf vision.UDF, sched Schedule, seed uint64) *UDF {
	return &UDF{UDF: udf, in: newInjector(sched, seed)}
}

// WithClock makes KindSlow latency spikes charge the given simclock (in
// the oracle-confirm phase) in addition to accumulating in Stats.
// Returns the wrapper for chaining.
func (u *UDF) WithClock(c *simclock.Clock) *UDF {
	u.in.setClock(c)
	return u
}

// TryScore implements vision.FallibleUDF: it applies the schedule's
// fault for this call — error, panic, or latency spike — and otherwise
// returns exactly the inner UDF's scores.
func (u *UDF) TryScore(src video.Source, ids []int) ([]float64, error) {
	rule, call := u.in.next()
	if rule != nil {
		switch rule.Kind {
		case KindErr:
			return nil, &TransientError{Call: call}
		case KindPanic:
			panic(PanicValue{Call: call})
		}
	}
	return vision.SafeScore(u.UDF, src, ids)
}

// Stats returns what the injector did so far.
func (u *UDF) Stats() Stats { return u.in.snapshot() }

// Source wraps a video.Source with a fault schedule on its Scene calls
// — the decode/ground-truth path oracles read through. Sources have no
// error channel, so both KindErr and KindPanic panic (the dispatch
// boundary's recovery converts them into typed errors); KindSlow
// accumulates spike latency in Stats. All other methods delegate.
type Source struct {
	video.Source
	in *injector
}

// WrapSource wraps src with the given schedule and seed.
func WrapSource(src video.Source, sched Schedule, seed uint64) *Source {
	return &Source{Source: src, in: newInjector(sched, seed)}
}

// Scene implements video.Source with fault injection.
func (s *Source) Scene(i int) video.Scene {
	rule, call := s.in.next()
	if rule != nil && (rule.Kind == KindErr || rule.Kind == KindPanic) {
		panic(PanicValue{Call: call})
	}
	return s.Source.Scene(i)
}

// Stats returns what the injector did so far.
func (s *Source) Stats() Stats { return s.in.snapshot() }
