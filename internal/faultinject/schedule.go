// Package faultinject is the chaos layer of the serving stack: it wraps
// a vision.UDF (or a video.Source) with a deterministic, seedable fault
// schedule — transient errors, panics, simulated latency spikes,
// N-failures-then-succeed — so the full pipeline can be driven through
// every failure path repeatably. Fault decisions are a pure function of
// (schedule, seed, call index): concurrent queries observe exactly the
// faults the schedule prescribes regardless of goroutine interleaving,
// which is what lets chaos tests assert bit-identical convergence once
// the injected faults are exhausted.
package faultinject

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind is a fault class.
type Kind uint8

const (
	// KindErr makes scoring calls fail with a transient error (the
	// retry layer's retryable class).
	KindErr Kind = iota
	// KindPanic makes scoring calls panic, exercising the dispatch
	// boundary's recovery.
	KindPanic
	// KindSlow lets scoring succeed but adds a simulated latency spike
	// of Rule.MS milliseconds per call.
	KindSlow
)

// String returns the kind's schedule-DSL name.
func (k Kind) String() string {
	switch k {
	case KindErr:
		return "err"
	case KindPanic:
		return "panic"
	case KindSlow:
		return "slow"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Rule applies one fault kind to a contiguous range of scoring calls:
// the Count calls starting at the Start-th call (0-based) of the
// wrapped function. The zero Prob means the fault fires on every call
// in range; a Prob in (0,1) fires it per call with that probability,
// drawn from a seeded per-call stream so the decision is deterministic
// and independent of arrival interleaving.
type Rule struct {
	Kind  Kind
	Start int
	Count int
	// MS is the simulated latency spike per affected call (KindSlow).
	MS float64
	// Prob in (0,1) makes the rule probabilistic; 0 (and 1) mean always.
	Prob float64
}

// matches reports whether the rule covers call n (probability aside).
func (r Rule) matches(n int) bool { return n >= r.Start && n < r.Start+r.Count }

// Schedule is an ordered set of fault rules. The zero value injects
// nothing. For a given call the first matching rule (in normalized
// order) decides the outcome.
type Schedule struct {
	Rules []Rule
}

// Empty reports whether the schedule injects no faults at all.
func (s Schedule) Empty() bool { return len(s.Rules) == 0 }

// Normalize returns the canonical form Parse and String agree on:
// rules sorted by (Start, Kind), non-positive counts dropped, negative
// starts clamped to 0, negative spike latencies cleared, probabilities
// clamped into [0,1] with 1 meaning "always" (stored as 0). Idempotent.
func (s Schedule) Normalize() Schedule {
	out := make([]Rule, 0, len(s.Rules))
	for _, r := range s.Rules {
		if r.Count <= 0 {
			continue
		}
		if r.Start < 0 {
			r.Start = 0
		}
		if r.MS < 0 || r.Kind != KindSlow || !isFinite(r.MS) {
			r.MS = 0
		}
		if r.Prob <= 0 || r.Prob >= 1 || math.IsNaN(r.Prob) {
			r.Prob = 0
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Kind < out[j].Kind
	})
	if len(out) == 0 {
		out = nil
	}
	return Schedule{Rules: out}
}

// String renders the schedule in the canonical DSL: one item per rule,
// comma-separated, each `[start@]kind:count[:ms][~prob]`. The output
// round-trips through Parse.
func (s Schedule) String() string {
	items := make([]string, 0, len(s.Rules))
	for _, r := range s.Normalize().Rules {
		var b strings.Builder
		if r.Start > 0 {
			fmt.Fprintf(&b, "%d@", r.Start)
		}
		fmt.Fprintf(&b, "%s:%d", r.Kind, r.Count)
		if r.Kind == KindSlow {
			fmt.Fprintf(&b, ":%s", strconv.FormatFloat(r.MS, 'g', -1, 64))
		}
		if r.Prob > 0 {
			fmt.Fprintf(&b, "~%s", strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		items = append(items, b.String())
	}
	return strings.Join(items, ",")
}

// Parse reads a fault schedule from its DSL form: comma-separated
// items, each
//
//	[start@]kind[:count][:ms][~prob]
//
// where kind is err | panic | slow, count defaults to 1, ms (KindSlow
// only) defaults to 100 simulated milliseconds, and ~prob in (0,1)
// makes the rule fire probabilistically per call (seeded — see
// WrapUDF). Examples:
//
//	err:3           the first 3 scoring calls fail transiently, then succeed
//	5@panic         the 6th scoring call panics
//	slow:10:250     the first 10 calls each cost +250 simulated ms
//	err:1000~0.2    each of the first 1000 calls fails with probability 0.2
//
// The empty string is the empty schedule. The result is normalized.
func Parse(s string) (Schedule, error) {
	var sched Schedule
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		r, err := parseItem(item)
		if err != nil {
			return Schedule{}, err
		}
		sched.Rules = append(sched.Rules, r)
	}
	return sched.Normalize(), nil
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(s string) Schedule {
	sched, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sched
}

func parseItem(item string) (Rule, error) {
	r := Rule{Count: 1}
	if at := strings.IndexByte(item, '@'); at >= 0 {
		start, err := strconv.Atoi(strings.TrimSpace(item[:at]))
		if err != nil || start < 0 {
			return Rule{}, fmt.Errorf("faultinject: bad start offset %q in %q", item[:at], item)
		}
		r.Start = start
		item = item[at+1:]
	}
	if tilde := strings.IndexByte(item, '~'); tilde >= 0 {
		prob, err := strconv.ParseFloat(strings.TrimSpace(item[tilde+1:]), 64)
		if err != nil || math.IsNaN(prob) || prob <= 0 || prob > 1 {
			return Rule{}, fmt.Errorf("faultinject: bad probability %q in %q (want (0,1])", item[tilde+1:], item)
		}
		if prob < 1 {
			r.Prob = prob
		}
		item = item[:tilde]
	}
	parts := strings.Split(item, ":")
	switch strings.TrimSpace(parts[0]) {
	case "err":
		r.Kind = KindErr
	case "panic":
		r.Kind = KindPanic
	case "slow":
		r.Kind = KindSlow
		r.MS = 100
	case "":
		return Rule{}, fmt.Errorf("faultinject: empty fault kind in %q", item)
	default:
		return Rule{}, fmt.Errorf("faultinject: unknown fault kind %q (want err|panic|slow)", parts[0])
	}
	if len(parts) > 1 {
		count, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || count < 0 {
			return Rule{}, fmt.Errorf("faultinject: bad count %q in %q", parts[1], item)
		}
		r.Count = count
	}
	if len(parts) > 2 {
		if r.Kind != KindSlow {
			return Rule{}, fmt.Errorf("faultinject: latency parameter only applies to slow, got %q", item)
		}
		ms, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil || ms < 0 || !isFinite(ms) {
			return Rule{}, fmt.Errorf("faultinject: bad latency %q in %q", parts[2], item)
		}
		r.MS = ms
	}
	if len(parts) > 3 {
		return Rule{}, fmt.Errorf("faultinject: too many fields in %q", item)
	}
	return r, nil
}

// isFinite rejects the float values the DSL must not round-trip: NaN
// and the infinities (an infinite latency spike is a hang, not a fault).
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
