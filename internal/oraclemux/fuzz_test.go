package oraclemux

import (
	"testing"
)

// FuzzConsolidate fuzzes the batch-consolidation splitter against its
// partition invariants: every request appears in exactly one batch, in
// arrival order; a batch holds one key only; a batch never exceeds the
// frame bound unless it is a single oversized request; batches are
// ordered by their first request's arrival; and the partition is a pure
// function of its inputs (the determinism the mux's accounting golden
// relies on).
//
// keys encodes one request per byte: the low 2 bits are the batch key
// (4 distinct oracle models), the high bits plus one are the request's
// frame count (1..64).
func FuzzConsolidate(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{0x00, 0x01, 0x02, 0x03}, 0)
	f.Add([]byte{0x04, 0x04, 0x04}, 2)
	f.Add([]byte{0xff, 0x00, 0xff, 0x00}, 8)
	f.Add([]byte{0x13, 0x21, 0x13, 0x45, 0x21}, 5)
	f.Fuzz(func(t *testing.T, keys []byte, maxFrames int) {
		if len(keys) > 1<<12 {
			keys = keys[:1<<12]
		}
		if maxFrames < -8 || maxFrames > 1<<10 {
			return
		}
		key := func(i int) byte { return keys[i] & 0x3 }
		size := func(i int) int { return int(keys[i]>>2) + 1 }

		batches := consolidateBy(len(keys), key, size, maxFrames)

		// Partition: every index exactly once, ascending within a batch.
		seen := make([]bool, len(keys))
		n := 0
		for b, batch := range batches {
			if len(batch) == 0 {
				t.Fatalf("batch %d is empty", b)
			}
			frames := 0
			for j, i := range batch {
				if i < 0 || i >= len(keys) || seen[i] {
					t.Fatalf("batch %d holds out-of-range or duplicate index %d", b, i)
				}
				seen[i] = true
				n++
				if j > 0 && batch[j] <= batch[j-1] {
					t.Fatalf("batch %d not in arrival order: %v", b, batch)
				}
				if key(i) != key(batch[0]) {
					t.Fatalf("batch %d mixes keys %v and %v", b, key(batch[0]), key(i))
				}
				frames += size(i)
			}
			if maxFrames > 0 && frames > maxFrames && len(batch) > 1 {
				t.Fatalf("batch %d holds %d frames over the %d bound", b, frames, maxFrames)
			}
			if b > 0 && batch[0] <= batches[b-1][0] {
				t.Fatalf("batches out of first-arrival order at %d", b)
			}
		}
		if n != len(keys) {
			t.Fatalf("partition covered %d of %d requests", n, len(keys))
		}

		// Pure function: a second run over the same inputs is identical.
		again := consolidateBy(len(keys), key, size, maxFrames)
		if len(again) != len(batches) {
			t.Fatalf("re-split produced %d batches, first run %d", len(again), len(batches))
		}
		for b := range batches {
			if len(again[b]) != len(batches[b]) {
				t.Fatalf("re-split batch %d sized %d, first run %d", b, len(again[b]), len(batches[b]))
			}
			for j := range batches[b] {
				if again[b][j] != batches[b][j] {
					t.Fatalf("re-split diverged at batch %d index %d", b, j)
				}
			}
		}
	})
}
