package oraclemux

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// score is the tests' happy-path Score: background context, errors
// reported (Error, not Fatal — many callers are goroutines).
func score(t testing.TB, m *Mux, src video.Source, udf vision.UDF, ids []int, cost simclock.CostModel) []float64 {
	t.Helper()
	got, err := m.Score(context.Background(), src, udf, ids, cost)
	if err != nil {
		t.Errorf("mux score %v: %v", ids, err)
	}
	return got
}

func testSource(t testing.TB, seed uint64) *video.Synthetic {
	t.Helper()
	src, err := video.NewSynthetic(video.Config{
		Name: "mux-fixture", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: 600, FPS: 30, Seed: seed, MeanPopulation: 3, BurstRate: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// gateUDF wraps a UDF and blocks its FIRST Score call until released,
// so a test can deterministically queue more requests behind an
// in-flight launch before letting the dispatcher proceed.
type gateUDF struct {
	vision.UDF
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func (g *gateUDF) Score(src video.Source, ids []int) []float64 {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
	return g.UDF.Score(src, ids)
}

// TestMuxConsolidatesQueuedRequests is the deterministic consolidation
// test: while the first request's launch is held open, four more
// requests queue up; when the launch completes, the dispatcher must
// consolidate all four into ONE device batch — five requests, two
// launches — and the device clock must carry exactly one launch
// overhead per consolidated batch.
func TestMuxConsolidatesQueuedRequests(t *testing.T) {
	src := testSource(t, 11)
	inner := vision.CountUDF{Class: video.ClassCar}
	gate := &gateUDF{UDF: inner, started: make(chan struct{}), release: make(chan struct{})}
	cost := simclock.Default()
	m := New(0)

	idsOf := func(i int) []int { return []int{i * 10, i*10 + 1, i*10 + 2} }
	var wg sync.WaitGroup
	scores := make([][]float64, 5)
	wg.Add(1)
	go func() {
		defer wg.Done()
		scores[0] = score(t, m, src, gate, idsOf(0), cost)
	}()
	<-gate.started // request 0 is mid-launch; the dispatcher is busy
	for i := 1; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scores[i] = score(t, m, src, gate, idsOf(i), cost)
		}(i)
	}
	for m.pending() < 4 {
		runtime.Gosched()
	}
	close(gate.release) // launch 0 completes; the 4 queued consolidate
	wg.Wait()

	for i := range scores {
		want := inner.Score(src, idsOf(i))
		if !reflect.DeepEqual(scores[i], want) {
			t.Fatalf("request %d scores diverged from a direct oracle call: %v vs %v", i, scores[i], want)
		}
	}
	st := m.Stats()
	if st.Requests != 5 || st.Launches != 2 {
		t.Fatalf("want 5 requests in 2 consolidated launches, got %d in %d", st.Requests, st.Launches)
	}
	if st.Frames != 15 {
		t.Fatalf("want 15 frames scored, got %d", st.Frames)
	}
	// Accounting golden: one launch overhead per consolidated batch,
	// plus per-frame inference — accumulated in the same order launch()
	// charges, so the equality is exact.
	rate := inner.OracleCostMS(cost)
	wantMS := 0.0
	for _, frames := range []int{3, 12} {
		wantMS += cost.OracleCallMS + float64(frames)*rate
	}
	if st.DeviceMS != wantMS {
		t.Fatalf("device clock %v ms, want %v (one launch overhead per consolidated batch)", st.DeviceMS, wantMS)
	}
	if want := 3 * cost.OracleCallMS; st.SavedMS != want {
		t.Fatalf("consolidation saved %v ms of launch overhead, want %v", st.SavedMS, want)
	}
}

// TestMuxSplitsIncompatibleModels checks the splitter at the dispatch
// level: requests for different oracle models (or cost models) held in
// one queue drain must launch separately — a device batch serves one
// resident model.
func TestMuxSplitsIncompatibleModels(t *testing.T) {
	src := testSource(t, 13)
	carInner := vision.CountUDF{Class: video.ClassCar}
	busInner := vision.CountUDF{Class: video.ClassBus}
	gate := &gateUDF{UDF: carInner, started: make(chan struct{}), release: make(chan struct{})}
	cost := simclock.Default()
	costlier := cost
	costlier.OracleMS *= 2
	m := New(0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		score(t, m, src, gate, []int{0, 1}, cost)
	}()
	<-gate.started
	// Queue two compatible car requests, one bus request, and one car
	// request under a different cost model: 2 + 1 + 1 = 3 launches.
	for _, sub := range []struct {
		udf  vision.UDF
		ids  []int
		cost simclock.CostModel
	}{
		{carInner, []int{10, 11}, cost},
		{busInner, []int{20}, cost},
		{carInner, []int{30, 31}, cost},
		{carInner, []int{40}, costlier},
	} {
		wg.Add(1)
		go func(udf vision.UDF, ids []int, c simclock.CostModel) {
			defer wg.Done()
			score(t, m, src, udf, ids, c)
		}(sub.udf, sub.ids, sub.cost)
	}
	for m.pending() < 4 {
		runtime.Gosched()
	}
	close(gate.release)
	wg.Wait()

	st := m.Stats()
	if st.Requests != 5 || st.Launches != 4 {
		t.Fatalf("want 5 requests in 4 launches (gated car, car+car, bus, costlier car), got %d in %d",
			st.Requests, st.Launches)
	}
}

// TestMuxMaxFramesBound checks that a bounded mux closes a consolidated
// batch rather than exceed the device's batch capacity.
func TestMuxMaxFramesBound(t *testing.T) {
	src := testSource(t, 17)
	inner := vision.CountUDF{Class: video.ClassCar}
	gate := &gateUDF{UDF: inner, started: make(chan struct{}), release: make(chan struct{})}
	m := New(4)
	cost := simclock.Default()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		score(t, m, src, gate, []int{0}, cost)
	}()
	<-gate.started
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			score(t, m, src, gate, []int{10 * (i + 1), 10*(i+1) + 1}, cost)
		}(i)
	}
	for m.pending() < 3 {
		runtime.Gosched()
	}
	close(gate.release)
	wg.Wait()

	// 3 queued requests of 2 frames each under a 4-frame cap: the third
	// does not fit the open batch and starts a new one.
	st := m.Stats()
	if st.Requests != 4 || st.Launches != 3 {
		t.Fatalf("want 4 requests in 3 launches under the 4-frame cap, got %d in %d", st.Requests, st.Launches)
	}
}

// TestMuxConcurrentSubmitters hammers the mux from many goroutines (the
// race-gate workload): every caller must get exactly what a direct
// oracle call returns, and the request/launch/frame accounting must
// balance.
func TestMuxConcurrentSubmitters(t *testing.T) {
	src := testSource(t, 19)
	udf := vision.CountUDF{Class: video.ClassCar}
	cost := simclock.Default()
	m := New(64)

	const callers = 16
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan string, callers*rounds)
	totalFrames := 0
	var framesMu sync.Mutex
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for r := 0; r < rounds; r++ {
				n := 1 + rng.Intn(5)
				ids := make([]int, n)
				for i := range ids {
					ids[i] = rng.Intn(src.NumFrames())
				}
				got := score(t, m, src, udf, ids, cost)
				if want := udf.Score(src, ids); !reflect.DeepEqual(got, want) {
					errs <- "muxed scores diverged from direct oracle call"
					return
				}
				framesMu.Lock()
				totalFrames += n
				framesMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := m.Stats()
	if st.Requests != callers*rounds {
		t.Fatalf("want %d requests, got %d", callers*rounds, st.Requests)
	}
	if st.Launches < 1 || st.Launches > st.Requests {
		t.Fatalf("launch count %d out of range [1, %d]", st.Launches, st.Requests)
	}
	if st.Frames != totalFrames {
		t.Fatalf("frame accounting drifted: %d scored, %d submitted", st.Frames, totalFrames)
	}
}

// TestMuxEmptyRequest checks the trivial edge: no frames, no dispatch.
func TestMuxEmptyRequest(t *testing.T) {
	m := New(0)
	if got := score(t, m, testSource(t, 23), vision.CountUDF{Class: video.ClassCar}, nil, simclock.Default()); got != nil {
		t.Fatalf("empty request returned %v", got)
	}
	if st := m.Stats(); st.Requests != 0 || st.Launches != 0 {
		t.Fatalf("empty request reached the queue: %+v", st)
	}
}

// panicUDF fails scoring one designated frame.
type panicUDF struct {
	vision.UDF
	bad int
}

func (p panicUDF) Score(src video.Source, ids []int) []float64 {
	for _, id := range ids {
		if id == p.bad {
			panic("oracle fault")
		}
	}
	return p.UDF.Score(src, ids)
}

// TestMuxPanicIsolatedToItsRequest checks fault isolation: a panicking
// oracle fails its own submitter — as a typed *vision.OracleError
// carrying the recovered panic value and the failing frame IDs, never
// a re-raised panic in the submitter's goroutine — while the rest of
// the batch is served, and the mux stays usable.
func TestMuxPanicIsolatedToItsRequest(t *testing.T) {
	src := testSource(t, 29)
	inner := vision.CountUDF{Class: video.ClassCar}
	bad := panicUDF{UDF: inner, bad: 7}
	cost := simclock.Default()
	m := New(0)

	scores, err := m.Score(context.Background(), src, bad, []int{7}, cost)
	if scores != nil {
		t.Fatalf("panicked request returned scores %v", scores)
	}
	var oe *vision.OracleError
	if !errors.As(err, &oe) {
		t.Fatalf("panicked request returned %v (%T), want *vision.OracleError", err, err)
	}
	if oe.Panic != "oracle fault" {
		t.Fatalf("OracleError carries panic %v, want the oracle's value", oe.Panic)
	}
	if !reflect.DeepEqual(oe.Frames, []int{7}) {
		t.Fatalf("OracleError frames %v, want [7]", oe.Frames)
	}
	if vision.Transient(err) {
		t.Fatal("a panic must not classify as transient")
	}
	// The mux still serves.
	got := score(t, m, src, inner, []int{1, 2}, cost)
	if want := inner.Score(src, []int{1, 2}); !reflect.DeepEqual(got, want) {
		t.Fatalf("mux wedged after a panicking launch: %v vs %v", got, want)
	}
	// The failed request's frame is not accounted as scored or charged —
	// only the follow-up's 2 frames are, plus both launches' overheads.
	st := m.Stats()
	if st.Frames != 2 {
		t.Fatalf("frame accounting counted the panicked request: %d frames, want 2", st.Frames)
	}
	if want := 2*cost.OracleCallMS + 2*inner.OracleCostMS(cost); st.DeviceMS != want {
		t.Fatalf("device clock %v ms charged for unscored frames, want %v", st.DeviceMS, want)
	}
}

// TestMuxCancelWhileQueuedWithdraws checks the cancellation contract:
// a request cancelled while still queued leaves the queue (Withdrawn
// accounting, ctx.Err() to the submitter) without perturbing the
// sibling requests it would have consolidated with — they score and
// account exactly as usual.
func TestMuxCancelWhileQueuedWithdraws(t *testing.T) {
	src := testSource(t, 31)
	inner := vision.CountUDF{Class: video.ClassCar}
	gate := &gateUDF{UDF: inner, started: make(chan struct{}), release: make(chan struct{})}
	cost := simclock.Default()
	m := New(0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		score(t, m, src, gate, []int{0}, cost)
	}()
	<-gate.started // dispatcher is mid-launch; new requests queue

	ctx, cancel := context.WithCancel(context.Background())
	var sibling []float64
	var cancelledErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		sibling = score(t, m, src, gate, []int{10, 11}, cost)
	}()
	go func() {
		defer wg.Done()
		_, cancelledErr = m.Score(ctx, src, gate, []int{20}, cost)
	}()
	for m.pending() < 2 {
		runtime.Gosched()
	}
	cancel()
	// The withdrawal must land before the held launch completes, or the
	// dispatcher could legitimately take the request into a batch.
	for m.Stats().Withdrawn == 0 {
		runtime.Gosched()
	}
	close(gate.release)
	wg.Wait()

	if !errors.Is(cancelledErr, context.Canceled) {
		t.Fatalf("cancelled submitter got %v, want context.Canceled", cancelledErr)
	}
	if want := inner.Score(src, []int{10, 11}); !reflect.DeepEqual(sibling, want) {
		t.Fatalf("sibling scores perturbed by a withdrawn neighbour: %v vs %v", sibling, want)
	}
	st := m.Stats()
	if st.Withdrawn != 1 {
		t.Fatalf("want 1 withdrawn request, got %d", st.Withdrawn)
	}
	// 3 requests, 2 launches (gated; sibling), 3 frames — the withdrawn
	// request's frame was never scored or charged.
	if st.Requests != 3 || st.Launches != 2 || st.Frames != 3 {
		t.Fatalf("accounting after withdrawal: %+v, want 3 requests / 2 launches / 3 frames", st)
	}
}
