// Package oraclemux is the process-wide oracle dispatch queue: a
// GPU-style multiplexer that consolidates Phase 2 confirmation batches
// from *all* in-flight engine runs — across sessions, label caches and
// videos — into device batches, the way a serving deployment funnels
// every query's oracle work through one GPU-resident model.
//
// Without the mux, every plan-level oracle call is its own device
// launch: N concurrent queries over M videos pay N×(calls per query)
// launch overheads (simclock.CostModel.OracleCallMS each), even though
// the device could have scored their frames in far fewer invocations.
// The mux extends the paper's §3.5 batch-inference observation from
// within one query to across the whole process: requests that are in
// flight together and target the same oracle model are packed into one
// consolidated launch.
//
// Scheduling is group-commit, the same discipline as the coalescing
// scheduler (internal/engine): the first requester becomes the
// dispatcher and launches whatever is queued; requests arriving while a
// launch is in flight queue up and are consolidated into the next one,
// so batch width adapts to load with no added latency when idle.
//
// Determinism contract: the mux never changes what any caller gets or
// what any plan is billed. A request's scores are exactly
// udf.Score(src, ids) — scoring is a pure function of the frames, so
// packing requests together cannot perturb results — and per-plan
// simulated charges are made by the engine exactly as in independent
// execution. What the mux adds is *device-side* accounting: a
// simclock.Clock that charges one launch overhead per consolidated
// batch plus each request's per-frame inference cost, extending the
// scale-out cost model (simclock.Clock.ChargeParallelMax accounts P
// accelerators; the mux accounts one shared accelerator multiplexing
// everyone). Stats exposes the consolidation ratio — Launches vs
// Requests — and the simulated launch overhead the consolidation saved.
// Which requests share a launch depends on arrival timing, exactly like
// coalesced group membership; only the device totals reflect it, never
// per-plan outcomes.
package oraclemux

import (
	"context"
	"sync"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// request is one plan-level confirmation batch awaiting dispatch.
type request struct {
	src  video.Source
	udf  vision.UDF
	ids  []int
	cost simclock.CostModel

	scores []float64
	err    error
	done   chan struct{}
}

// batchKey identifies requests one device launch may serve: the same
// oracle model (UDF) under the same simulated cost model, so the
// consolidated batch has one well-defined launch overhead. Videos may
// differ — a GPU-resident detector does not care which stream a frame
// decoded from.
type batchKey struct {
	udf  string
	cost simclock.CostModel
}

func (r *request) key() batchKey { return batchKey{udf: r.udf.Name(), cost: r.cost} }

// Stats is a snapshot of the mux's device-side accounting.
type Stats struct {
	// Requests counts plan-level confirmation batches submitted.
	Requests int
	// Launches counts consolidated device batches dispatched; the
	// consolidation ratio is Requests/Launches (1 when every request
	// launched alone).
	Launches int
	// Frames counts frames scored across all launches.
	Frames int
	// DeviceMS is the simulated device time: one OracleCallMS launch
	// overhead per consolidated batch plus every request's per-frame
	// inference cost.
	DeviceMS float64
	// SavedMS is the launch overhead consolidation avoided versus
	// dispatching every request independently.
	SavedMS float64
	// Withdrawn counts requests cancelled by their submitter while
	// still queued — they left the queue before any launch took them.
	Withdrawn int
}

// Mux is one oracle dispatch queue. The zero value is not usable; use
// New, or Shared for the process-wide instance every engine run with
// Plan.UseMux submits to.
type Mux struct {
	// maxFrames bounds one consolidated batch (0 = unbounded): a real
	// device has a maximum inference batch, and the splitter closes a
	// batch rather than exceed it. A single request larger than the
	// bound launches alone — requests are never split across launches,
	// so a plan-level call's frames always share one launch, as they do
	// without the mux.
	maxFrames int

	mu    sync.Mutex
	busy  bool
	queue []*request
	clock *simclock.Clock
	stats Stats
}

// New returns a mux whose consolidated batches hold at most maxFrames
// frames (0 = unbounded).
func New(maxFrames int) *Mux {
	return &Mux{maxFrames: maxFrames, clock: simclock.NewClock()}
}

// shared is the process-wide mux: one simulated device for the whole
// serving process, unbounded batches.
var sharedMux = New(0)

// Shared returns the process-wide mux.
func Shared() *Mux { return sharedMux }

// Score scores the given frames with the UDF's oracle through the
// dispatch queue, blocking until the consolidated launch that carries
// them completes. The returned scores are exactly what a direct
// dispatch (vision.SafeScore) would return; cost is the caller's
// simulated cost model, used for device-side accounting only (the
// caller charges its own clock as usual).
//
// Failure semantics: a failing or panicking UDF fails only its own
// request, as a typed error (*vision.OracleError) — never a re-raised
// panic in the submitter's goroutine, and never the rest of the batch.
// A non-nil ctx bounds the wait: a request cancelled while still
// queued withdraws — it leaves the queue without perturbing the
// batches its siblings consolidate into — and returns ctx.Err(); once
// a launch has taken the request, Score waits for that launch (a
// device batch completes as a unit).
func (m *Mux) Score(ctx context.Context, src video.Source, udf vision.UDF, ids []int, cost simclock.CostModel) ([]float64, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	req := &request{src: src, udf: udf, ids: ids, cost: cost, done: make(chan struct{})}
	m.mu.Lock()
	m.queue = append(m.queue, req)
	m.stats.Requests++
	if m.busy {
		m.mu.Unlock()
	} else {
		m.busy = true
		m.mu.Unlock()
		m.dispatch(req)
	}
	if ctx != nil {
		select {
		case <-req.done:
		case <-ctx.Done():
			if m.withdraw(req) {
				return nil, ctx.Err()
			}
			// A launch already took the request; it completes as a unit.
			<-req.done
		}
	} else {
		<-req.done
	}
	return req.scores, req.err
}

// withdraw removes a still-queued request (cancelled by its submitter)
// from the dispatch queue. It reports false when a dispatcher already
// took the request into a launch.
func (m *Mux) withdraw(req *request) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range m.queue {
		if r == req {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.stats.Withdrawn++
			return true
		}
	}
	return false
}

// dispatch drains the queue: each iteration takes everything queued,
// consolidates it into device batches and launches them. A
// requester-dispatcher (mine non-nil) serves only until its own request
// is done, then hands any remaining work to a detached dispatcher, so a
// caller's latency is bounded by the launches already ahead of it. The
// busy flag is cleared under the same lock hold that observed the queue
// empty, so a submitter can never enqueue behind a dispatcher that has
// already decided to stop.
func (m *Mux) dispatch(mine *request) {
	for {
		m.mu.Lock()
		if len(m.queue) == 0 {
			m.busy = false
			m.mu.Unlock()
			return
		}
		if mine != nil {
			select {
			case <-mine.done:
				m.mu.Unlock()
				go m.dispatch(nil)
				return
			default:
			}
		}
		pending := m.queue
		m.queue = nil
		m.mu.Unlock()
		for _, batch := range consolidate(pending, m.maxFrames) {
			m.launch(batch)
		}
	}
}

// launch executes one consolidated device batch: every request's frames
// are scored, the device clock is charged once — the batch's single
// launch overhead plus each request's per-frame inference cost — and
// then the whole batch delivers, the way a real device launch completes
// as a unit. Accounting strictly precedes delivery so that once a
// submitter's Score has returned, its launch is visible in Stats — an
// observer that joins all submitters can never see a request counted
// but its launch missing. A failing or panicking UDF fails its own
// request only (vision.SafeScore converts both into a typed error);
// the rest of the batch is still served, and the failed request's
// frames are not counted as scored or charged (its scoring never
// completed).
func (m *Mux) launch(batch []*request) {
	frames := 0
	deviceMS := batch[0].cost.OracleCallMS
	for _, r := range batch {
		r.scores, r.err = vision.SafeScore(r.udf, r.src, r.ids)
		if r.err != nil {
			continue
		}
		frames += len(r.ids)
		deviceMS += float64(len(r.ids)) * r.udf.OracleCostMS(r.cost)
	}
	m.clock.Charge(simclock.PhaseConfirm, deviceMS)
	m.mu.Lock()
	m.stats.Launches++
	m.stats.Frames += frames
	m.stats.DeviceMS = m.clock.TotalMS()
	m.stats.SavedMS += float64(len(batch)-1) * batch[0].cost.OracleCallMS
	m.mu.Unlock()
	for _, r := range batch {
		close(r.done)
	}
}

// Stats returns a snapshot of the device-side accounting. Benchmarks
// diff two snapshots around a workload; absolute values accumulate for
// the mux's lifetime.
func (m *Mux) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// pending reports the queued-but-unlaunched request count (tests).
func (m *Mux) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// consolidate packs the pending requests, in arrival order, into device
// batches via the index splitter below.
func consolidate(reqs []*request, maxFrames int) [][]*request {
	groups := consolidateBy(len(reqs),
		func(i int) batchKey { return reqs[i].key() },
		func(i int) int { return len(reqs[i].ids) },
		maxFrames)
	batches := make([][]*request, len(groups))
	for b, g := range groups {
		batch := make([]*request, len(g))
		for j, i := range g {
			batch[j] = reqs[i]
		}
		batches[b] = batch
	}
	return batches
}

// consolidateBy is the batch-consolidation splitter: it partitions the
// indices 0..n-1, in order, into batches such that every batch holds
// one key only and at most maxFrames frames (maxFrames <= 0 means
// unbounded; a single item larger than the bound gets a batch of its
// own). Each key keeps one open batch: an item joins its key's open
// batch when it fits, otherwise it closes that batch and opens a new
// one, so interleaved arrivals of two keys consolidate into two batches
// rather than splitting at every key switch. Batches are ordered by
// their first item's arrival; the partition is a pure function of
// (keys, sizes, maxFrames).
func consolidateBy[K comparable](n int, key func(int) K, size func(int) int, maxFrames int) [][]int {
	var batches [][]int
	var frames []int
	open := make(map[K]int)
	for i := 0; i < n; i++ {
		k := key(i)
		if b, ok := open[k]; ok && (maxFrames <= 0 || frames[b]+size(i) <= maxFrames) {
			batches[b] = append(batches[b], i)
			frames[b] += size(i)
			continue
		}
		open[k] = len(batches)
		batches = append(batches, []int{i})
		frames = append(frames, size(i))
	}
	return batches
}
