package windows

import (
	"math"
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/uncertain"
)

// mixedScore is a concurrency-safe scoreOf with both exact and mixture
// frames, deterministic in the representative index.
func mixedScore(rep int) FrameScore {
	if rep%5 == 0 {
		return FrameScore{IsExact: true, Exact: float64(rep % 11)}
	}
	return FrameScore{Mix: uncertain.Mixture{
		{Weight: 0.6, Mean: float64(rep%9) + 1, Sigma: 1.2},
		{Weight: 0.4, Mean: float64(rep%13) / 2, Sigma: 0.7},
	}}
}

// TestBuildRelationProcsBitIdentical is the package-level determinism
// contract for the parallel window aggregation: tumbling and sliding
// relations must match the serial scan bit for bit at every worker count.
// Run under -race it also proves the fan-out is data-race free.
func TestBuildRelationProcsBitIdentical(t *testing.T) {
	const n = 6000
	diff := segDiff(n, 7)
	for _, base := range []Options{
		{Size: 30, Step: 0.5},
		{Size: 50, Stride: 10, Step: 0.5, MaxLevel: 40},
	} {
		opt := base
		opt.Procs = 1
		serial, err := BuildRelation(mixedScore, diff, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{0, 2, 8} {
			opt := base
			opt.Procs = procs
			par, err := BuildRelation(mixedScore, diff, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("size=%d stride=%d procs=%d: relation diverged from serial",
					base.Size, base.Stride, procs)
			}
		}
	}
}

// TestBuildRelationParallelErrorMatchesSerial checks that the parallel
// path reports the same (lowest-window) error the serial scan would.
func TestBuildRelationParallelErrorMatchesSerial(t *testing.T) {
	// A NaN-sigma mixture fails quantization for every window touching
	// rep 3; serial and parallel must both report the lowest one.
	bad := func(rep int) FrameScore {
		if rep == 3 {
			return FrameScore{Mix: uncertain.Mixture{{Weight: 1, Mean: 1, Sigma: math.NaN()}}}
		}
		return mixedScore(rep)
	}
	diff := flatDiff(300)
	opt := Options{Size: 10, Step: 0.5, Procs: 1}
	_, serialErr := BuildRelation(bad, diff, opt)
	if serialErr == nil {
		t.Fatal("NaN sigma did not fail quantization")
	}
	opt.Procs = 8
	_, parErr := BuildRelation(bad, diff, opt)
	if parErr == nil {
		t.Fatal("parallel path swallowed the error")
	}
	if parErr.Error() != serialErr.Error() {
		t.Fatalf("parallel error %q != serial %q", parErr, serialErr)
	}
}
