package windows

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/uncertain"
)

// testMixture is a single-component Gaussian mixture.
func testMixture(mean, sigma float64) uncertain.Mixture {
	return uncertain.Mixture{{Weight: 1, Mean: mean, Sigma: sigma}}
}

func TestNumSlidingWindows(t *testing.T) {
	cases := []struct{ n, size, stride, want int }{
		{100, 10, 10, 10}, // tumbling
		{100, 10, 5, 19},  // half-overlap
		{100, 10, 1, 91},  // per-frame
		{100, 10, 30, 4},  // gaps
		{10, 10, 3, 1},    // exactly one
		{9, 10, 1, 0},     // too short
		{100, 0, 1, 0},    // degenerate
		{100, 10, 0, 0},   // degenerate
	}
	for _, c := range cases {
		if got := NumSlidingWindows(c.n, c.size, c.stride); got != c.want {
			t.Fatalf("NumSlidingWindows(%d, %d, %d) = %d, want %d", c.n, c.size, c.stride, got, c.want)
		}
	}
}

func TestNumSlidingWindowsMatchesEnumeration(t *testing.T) {
	f := func(n, size, stride uint8) bool {
		nn, ss, st := int(n), 1+int(size)%20, 1+int(stride)%20
		count := 0
		for lo := 0; lo+ss <= nn; lo += st {
			count++
		}
		return NumSlidingWindows(nn, ss, st) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStrideEqualsSizeIsTumbling(t *testing.T) {
	score := func(rep int) FrameScore {
		if rep%3 == 0 {
			return FrameScore{IsExact: true, Exact: float64(rep % 5)}
		}
		return FrameScore{Mix: testMixture(float64(rep%5), 0.8)}
	}
	tumbling, err := BuildRelation(score, segDiff(120, 4), Options{Size: 10, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	strided, err := BuildRelation(score, segDiff(120, 4), Options{Size: 10, Stride: 10, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tumbling) != len(strided) {
		t.Fatalf("sizes differ: %d vs %d", len(tumbling), len(strided))
	}
	for i := range tumbling {
		a, b := tumbling[i].Dist, strided[i].Dist
		if a.Min != b.Min || len(a.P) != len(b.P) {
			t.Fatalf("window %d distributions differ", i)
		}
		for j := range a.P {
			if math.Abs(a.P[j]-b.P[j]) > 1e-12 {
				t.Fatalf("window %d probability %d differs", i, j)
			}
		}
	}
}

func TestSlidingWindowsCoverStridedRanges(t *testing.T) {
	// With stride 5 and size 10 over 30 frames there are 5 windows; window
	// w must aggregate frames [5w, 5w+10). We verify via exact scores:
	// frame i scores i, so window w's mean is 5w + 4.5.
	score := func(rep int) FrameScore { return FrameScore{IsExact: true, Exact: float64(rep)} }
	rel, err := BuildRelation(score, flatDiff(30), Options{Size: 10, Stride: 5, Step: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 5 {
		t.Fatalf("%d windows, want 5", len(rel))
	}
	for w, x := range rel {
		if !x.Dist.IsCertain() {
			t.Fatalf("window %d not certain", w)
		}
		wantMean := float64(5*w) + 4.5
		got := float64(x.Dist.Min) * 0.5 // level → score units
		if math.Abs(got-wantMean) > 0.5 {
			t.Fatalf("window %d mean %v, want %v", w, got, wantMean)
		}
	}
}

func TestOverlappingDetection(t *testing.T) {
	if (Options{Size: 10, Stride: 5}).Overlapping() != true {
		t.Fatal("stride < size must report overlapping")
	}
	if (Options{Size: 10, Stride: 10}).Overlapping() != false {
		t.Fatal("tumbling is not overlapping")
	}
	if (Options{Size: 10}).Overlapping() != false {
		t.Fatal("zero stride defaults to tumbling")
	}
	if (Options{Size: 10, Stride: 15}).Overlapping() != false {
		t.Fatal("gapped windows are not overlapping")
	}
}

func TestSlidingOracleSamplesWithinStridedWindow(t *testing.T) {
	var got [][]int
	o := &Oracle{
		ScoreFrames: func(ids []int) ([]float64, error) {
			got = append(got, append([]int(nil), ids...))
			return make([]float64, len(ids)), nil
		},
		Size:       10,
		Stride:     4,
		SampleFrac: 0.5,
		Step:       1,
		Seed:       3,
	}
	if _, err := o.CleanBatch([]int{0, 3}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d oracle calls, want 2", len(got))
	}
	for call, frames := range got {
		w := []int{0, 3}[call]
		lo, hi := w*4, w*4+10
		if len(frames) != 5 {
			t.Fatalf("window %d sampled %d frames, want 5", w, len(frames))
		}
		for _, f := range frames {
			if f < lo || f >= hi {
				t.Fatalf("window %d sampled frame %d outside [%d, %d)", w, f, lo, hi)
			}
		}
	}
}

func TestSlidingRelationSharesFrameInfluence(t *testing.T) {
	// Overlapping windows that share an uncertain segment must both carry
	// its variance — the correlation the union bound exists for.
	score := func(rep int) FrameScore {
		if rep == 8 {
			return FrameScore{Mix: testMixture(5, 2)}
		}
		return FrameScore{IsExact: true, Exact: 1}
	}
	rel, err := BuildRelation(score, flatDiff(20), Options{Size: 10, Stride: 4, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0 ([0,10)), 1 ([4,14)) and 2 ([8,18)) all contain frame 8.
	for _, w := range []int{0, 1, 2} {
		if rel[w].Dist.IsCertain() {
			t.Fatalf("window %d should be uncertain (contains frame 8)", w)
		}
	}
}
