// Package windows implements Everest's Top-K window queries.
//
// Tumbling windows (§3.4): the video is split into consecutive
// non-overlapping windows of L frames, a window's score is the mean of
// its frames' scores, and the window score distribution is approximated
// by a Gaussian assembled from the difference-detector segments (Eq. 9),
// quantized into x-tuples compatible with the Phase 2 engine.
//
// Sliding windows (an extension beyond the paper): windows of L frames
// start every Stride frames. When Stride < Size the windows overlap and
// share frames, so their scores are correlated and the x-tuple
// independence assumption of §2 no longer holds; such relations must be
// processed with core.BoundUnion, the dependence-safe Bonferroni bound.
// Stride == Size recovers tumbling windows exactly.
package windows

import (
	"fmt"
	"math"

	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/workpool"
	"github.com/everest-project/everest/internal/xrand"
)

// FrameScore is what Phase 1 knows about one retained frame: either the
// proxy's mixture or an exact oracle label.
type FrameScore struct {
	// Mix is the CMDN mixture (nil when exact).
	Mix uncertain.Mixture
	// Exact is the oracle score, valid when IsExact.
	Exact float64
	// IsExact marks frames labelled during Phase 1 sampling.
	IsExact bool
}

// Options configures window construction.
type Options struct {
	// Size is L, the frames per window.
	Size int
	// Stride is the offset between consecutive window starts; zero means
	// Size (tumbling). Stride < Size produces overlapping windows.
	Stride int
	// Step is the quantization step for window mean scores.
	Step float64
	// MaxLevel clamps window levels (use the UDF's bound); zero means
	// unbounded.
	MaxLevel int
	// Procs bounds the workers BuildRelation aggregates windows on,
	// following the engine-wide Config.Procs convention: zero or negative
	// means GOMAXPROCS. Results are bit-identical for every value. When
	// the effective worker count exceeds 1, scoreOf must be safe for
	// concurrent calls (a read of immutable state, e.g. a map populated
	// before the call).
	Procs int
	// Pool, when non-nil, aggregates the windows on a caller-owned
	// resident worker pool instead of transient goroutines (serving
	// paths reuse one pool per query). Never affects results.
	Pool *workpool.Pool
}

func (o Options) stride() int {
	if o.Stride <= 0 {
		return o.Size
	}
	return o.Stride
}

// NumWindows returns the number of complete windows of size L in n frames.
func NumWindows(n, size int) int { return n / size }

// NumSlidingWindows returns the number of complete windows of the given
// size starting every stride frames in n frames.
func NumSlidingWindows(n, size, stride int) int {
	if n < size || size <= 0 || stride <= 0 {
		return 0
	}
	return (n-size)/stride + 1
}

// Overlapping reports whether the options describe overlapping windows
// (requiring the union-bound engine).
func (o Options) Overlapping() bool { return o.stride() < o.Size }

// Reps returns the distinct retained representatives BuildRelation will
// consult for the same (diff, opt), in first-touch order — the exact
// inference set a caller must precompute to serve BuildRelation from a
// cache. It walks windows and segments only; no scores are touched.
func Reps(diff diffdet.Result, opt Options) []int {
	if opt.Size <= 0 {
		return nil
	}
	stride := opt.stride()
	nw := NumSlidingWindows(diff.NumFrames(), opt.Size, stride)
	seen := make(map[int]bool)
	var reps []int
	for w := 0; w < nw; w++ {
		lo, hi := w*stride, w*stride+opt.Size
		for _, seg := range diff.Segments(lo, hi) {
			if !seen[seg.Rep] {
				seen[seg.Rep] = true
				reps = append(reps, seg.Rep)
			}
		}
	}
	return reps
}

// BuildRelation constructs the window uncertain relation. scoreOf must
// return the Phase 1 knowledge for any retained frame index (Reps
// enumerates exactly the indices that will be requested); diff supplies
// the segment structure (frames represented by each retained frame).
//
// Per Eq. 9, window w with segments s_1..s_l represented by frames
// r_1..r_l gets S_w ~ N(1/L Σ|s_t|·μ̄_rt, 1/L Σ|s_t|·σ̄²_rt). Windows whose
// segments are all exact become certain tuples.
//
// Every window is a pure function of its index (diff and scoreOf are
// read-only during the call), so the aggregation fans out over opt.Procs
// workers with index-ordered emission; the relation — and the reported
// error, always the lowest failing window's — are bit-identical to the
// serial scan for every worker count.
func BuildRelation(scoreOf func(rep int) FrameScore, diff diffdet.Result, opt Options) (uncertain.Relation, error) {
	if opt.Size <= 0 {
		return nil, fmt.Errorf("windows: size must be positive, got %d", opt.Size)
	}
	if opt.Step <= 0 {
		return nil, fmt.Errorf("windows: step must be positive, got %v", opt.Step)
	}
	stride := opt.stride()
	n := diff.NumFrames()
	nw := NumSlidingWindows(n, opt.Size, stride)
	if nw == 0 {
		return nil, fmt.Errorf("windows: no complete window of %d frames in %d", opt.Size, n)
	}
	maxLevel := opt.MaxLevel
	if maxLevel == 0 {
		maxLevel = math.MaxInt
	}
	qopt := uncertain.QuantizeOptions{Step: opt.Step, MinLevel: 0, MaxLevel: maxLevel}

	type windowOut struct {
		d   uncertain.Dist
		err error
	}
	outs := workpool.MapOn(opt.Pool, opt.Procs, nw, func(_, w int) windowOut {
		lo, hi := w*stride, w*stride+opt.Size
		var mean, variance float64
		allExact := true
		for _, seg := range diff.Segments(lo, hi) {
			fs := scoreOf(seg.Rep)
			frac := float64(seg.Size) / float64(opt.Size)
			if fs.IsExact {
				mean += frac * fs.Exact
				continue
			}
			allExact = false
			mean += frac * fs.Mix.Mean()
			// Eq. 9 uses (1/L)·Σ|s_t|·σ̄², i.e. segment-weighted total
			// variance (conservative vs. the independent-average 1/L²).
			variance += frac * fs.Mix.Variance()
		}
		if allExact {
			lvl := uncertain.LevelOf(mean, opt.Step)
			return windowOut{d: uncertain.Certain(min(max(lvl, 0), maxLevel))}
		}
		d, err := uncertain.QuantizeNormal(mean, math.Sqrt(variance), qopt)
		if err != nil {
			return windowOut{err: fmt.Errorf("windows: window %d: %w", w, err)}
		}
		return windowOut{d: d}
	})
	rel := make(uncertain.Relation, 0, nw)
	for w, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		rel = append(rel, uncertain.XTuple{ID: w, Dist: o.d})
	}
	return rel, nil
}

// Oracle confirms windows by sampling a fraction of each window's frames,
// scoring them with the exact model, and reporting the sample-mean level
// (§3.4: "we only sample some frames to verify with the oracle and compute
// the sample mean").
type Oracle struct {
	// ScoreFrames returns exact scores for frame indices (the frame-level
	// oracle; it must charge its own inference cost).
	ScoreFrames func(ids []int) ([]float64, error)
	// Size is L.
	Size int
	// Stride is the window start offset; zero means Size (tumbling).
	Stride int
	// SampleFrac is the fraction of window frames scored; zero means 0.1
	// (the paper's 10%).
	SampleFrac float64
	// Step quantizes the sample mean to a level.
	Step float64
	// Seed drives sampling.
	Seed uint64
}

// SamplesPerWindow returns how many frames one confirmation scores.
func (o *Oracle) SamplesPerWindow() int {
	frac := o.SampleFrac
	if frac == 0 {
		frac = 0.1
	}
	k := int(math.Ceil(frac * float64(o.Size)))
	if k < 1 {
		k = 1
	}
	if k > o.Size {
		k = o.Size
	}
	return k
}

// CleanBatch implements core.Oracle over window IDs.
func (o *Oracle) CleanBatch(ids []int) ([]int, error) {
	k := o.SamplesPerWindow()
	stride := o.Stride
	if stride <= 0 {
		stride = o.Size
	}
	out := make([]int, len(ids))
	root := xrand.New(o.Seed).Split("windows/oracle")
	for j, w := range ids {
		r := root.SplitIndex(uint64(w))
		offsets := r.SampleK(o.Size, k)
		frames := make([]int, k)
		for i, off := range offsets {
			frames[i] = w*stride + off
		}
		scores, err := o.ScoreFrames(frames)
		if err != nil {
			return nil, err
		}
		mean := 0.0
		for _, s := range scores {
			mean += s
		}
		mean /= float64(len(scores))
		out[j] = uncertain.LevelOf(mean, o.Step)
	}
	return out, nil
}
