package windows

import (
	"errors"
	"math"
	"testing"

	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/uncertain"
)

// flatDiff builds a diff result where every frame represents itself.
func flatDiff(n int) diffdet.Result {
	rep := make([]int32, n)
	for i := range rep {
		rep[i] = int32(i)
	}
	return diffdet.Result{RepOf: rep}
}

// segDiff builds a diff result with fixed-size segments.
func segDiff(n, seg int) diffdet.Result {
	rep := make([]int32, n)
	for i := range rep {
		rep[i] = int32((i / seg) * seg)
	}
	return diffdet.Result{RepOf: rep}
}

func TestBuildRelationValidation(t *testing.T) {
	score := func(int) FrameScore { return FrameScore{IsExact: true, Exact: 1} }
	if _, err := BuildRelation(score, flatDiff(10), Options{Size: 0, Step: 1}); err == nil {
		t.Fatal("zero size should fail")
	}
	if _, err := BuildRelation(score, flatDiff(10), Options{Size: 5, Step: 0}); err == nil {
		t.Fatal("zero step should fail")
	}
	if _, err := BuildRelation(score, flatDiff(3), Options{Size: 5, Step: 1}); err == nil {
		t.Fatal("no complete window should fail")
	}
}

func TestAllExactWindowsAreCertain(t *testing.T) {
	score := func(rep int) FrameScore { return FrameScore{IsExact: true, Exact: float64(rep % 7)} }
	rel, err := BuildRelation(score, flatDiff(20), Options{Size: 5, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 4 {
		t.Fatalf("%d windows, want 4", len(rel))
	}
	for _, x := range rel {
		if !x.Dist.IsCertain() {
			t.Fatalf("window %d not certain", x.ID)
		}
	}
	// Window 0 covers frames 0..4 with scores 0,1,2,3,4 → mean 2.
	if rel[0].Dist.Min != 2 {
		t.Fatalf("window 0 level %d, want 2", rel[0].Dist.Min)
	}
}

func TestEq9MeanAndVariance(t *testing.T) {
	// One window of 10 frames, two segments of 5, reps 0 and 5.
	mixA := uncertain.Mixture{{Weight: 1, Mean: 4, Sigma: 1}}
	mixB := uncertain.Mixture{{Weight: 1, Mean: 8, Sigma: 2}}
	score := func(rep int) FrameScore {
		if rep == 0 {
			return FrameScore{Mix: mixA}
		}
		return FrameScore{Mix: mixB}
	}
	rel, err := BuildRelation(score, segDiff(10, 5), Options{Size: 10, Step: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	d := rel[0].Dist
	// Eq. 9: mean = (5·4 + 5·8)/10 = 6; var = (5·1 + 5·4)/10 = 2.5.
	gotMean := d.Mean() * 0.25
	if math.Abs(gotMean-6) > 0.15 {
		t.Fatalf("window mean %v, want ~6", gotMean)
	}
	gotVar := d.Variance() * 0.25 * 0.25
	if math.Abs(gotVar-2.5) > 0.5 {
		t.Fatalf("window variance %v, want ~2.5", gotVar)
	}
}

func TestMixedExactAndUncertainSegments(t *testing.T) {
	mix := uncertain.Mixture{{Weight: 1, Mean: 10, Sigma: 1}}
	score := func(rep int) FrameScore {
		if rep == 0 {
			return FrameScore{IsExact: true, Exact: 2}
		}
		return FrameScore{Mix: mix}
	}
	rel, err := BuildRelation(score, segDiff(10, 5), Options{Size: 10, Step: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	d := rel[0].Dist
	if d.IsCertain() {
		t.Fatal("mixed window should stay uncertain")
	}
	// mean = (5·2 + 5·10)/10 = 6; var = (5·0 + 5·1)/10 = 0.5.
	if math.Abs(d.Mean()*0.5-6) > 0.2 {
		t.Fatalf("mixed mean %v, want ~6", d.Mean()*0.5)
	}
}

func TestWindowLevelsClamped(t *testing.T) {
	mix := uncertain.Mixture{{Weight: 1, Mean: 95, Sigma: 10}}
	score := func(int) FrameScore { return FrameScore{Mix: mix} }
	rel, err := BuildRelation(score, flatDiff(10), Options{Size: 5, Step: 1, MaxLevel: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range rel {
		if x.Dist.Max() > 100 || x.Dist.Min < 0 {
			t.Fatalf("window support [%d,%d] outside clamp", x.Dist.Min, x.Dist.Max())
		}
	}
}

func TestNumWindows(t *testing.T) {
	if NumWindows(100, 30) != 3 {
		t.Fatal("NumWindows(100,30) != 3")
	}
	if NumWindows(90, 30) != 3 {
		t.Fatal("NumWindows(90,30) != 3")
	}
	if NumWindows(29, 30) != 0 {
		t.Fatal("NumWindows(29,30) != 0")
	}
}

func TestOracleSampleMean(t *testing.T) {
	// Frame score = frame index; window 2 of size 10 covers frames 20..29
	// whose mean is 24.5. The sampled mean should land near that.
	o := &Oracle{
		ScoreFrames: func(ids []int) ([]float64, error) {
			out := make([]float64, len(ids))
			for i, id := range ids {
				out[i] = float64(id)
			}
			return out, nil
		},
		Size: 10, SampleFrac: 0.5, Step: 0.5, Seed: 1,
	}
	levels, err := o.CleanBatch([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(levels[0]) * 0.5
	if got < 20 || got > 29 {
		t.Fatalf("sampled window mean %v outside window range", got)
	}
}

func TestOracleFullSampling(t *testing.T) {
	// SampleFrac 1.0 must reproduce the exact window mean.
	o := &Oracle{
		ScoreFrames: func(ids []int) ([]float64, error) {
			out := make([]float64, len(ids))
			for i, id := range ids {
				out[i] = float64(id % 10)
			}
			return out, nil
		},
		Size: 10, SampleFrac: 1.0, Step: 0.1, Seed: 2,
	}
	levels, err := o.CleanBatch([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Mean of 0..9 = 4.5 → level 45 at step 0.1.
	for _, lvl := range levels {
		if lvl != 45 {
			t.Fatalf("full-sample level %d, want 45", lvl)
		}
	}
}

func TestOracleSamplesPerWindow(t *testing.T) {
	o := &Oracle{Size: 30}
	if o.SamplesPerWindow() != 3 {
		t.Fatalf("default 10%% of 30 = %d, want 3", o.SamplesPerWindow())
	}
	o = &Oracle{Size: 5, SampleFrac: 0.01}
	if o.SamplesPerWindow() != 1 {
		t.Fatal("minimum one sample per window")
	}
	o = &Oracle{Size: 5, SampleFrac: 5}
	if o.SamplesPerWindow() != 5 {
		t.Fatal("samples capped at window size")
	}
}

func TestOracleDeterministic(t *testing.T) {
	mk := func() *Oracle {
		return &Oracle{
			ScoreFrames: func(ids []int) ([]float64, error) {
				out := make([]float64, len(ids))
				for i, id := range ids {
					out[i] = float64(id * id % 17)
				}
				return out, nil
			},
			Size: 20, Step: 1, Seed: 7,
		}
	}
	a, err := mk().CleanBatch([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().CleanBatch([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("window oracle nondeterministic")
		}
	}
}

func TestOracleErrorPropagates(t *testing.T) {
	boom := errors.New("decode failed")
	o := &Oracle{
		ScoreFrames: func([]int) ([]float64, error) { return nil, boom },
		Size:        10, Step: 1,
	}
	if _, err := o.CleanBatch([]int{0}); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want propagated", err)
	}
}
