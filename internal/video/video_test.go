package video

import (
	"math"
	"testing"
)

func testSource(t *testing.T, frames int) *Synthetic {
	t.Helper()
	s, err := NewSynthetic(Config{
		Name: "test", Kind: KindTraffic, Class: ClassCar, Frames: frames,
		FPS: 30, Seed: 1, MeanPopulation: 3, BurstRate: 2, DailyCycle: true,
		DistractorPopulation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(Config{Frames: 0}); err == nil {
		t.Fatal("zero frames should fail")
	}
	if _, err := NewSynthetic(Config{Frames: 10, MeanPopulation: -1}); err == nil {
		t.Fatal("negative population should fail")
	}
}

func TestSceneCountsMatchPrecomputed(t *testing.T) {
	s := testSource(t, 5000)
	for i := 0; i < s.NumFrames(); i += 37 {
		want := s.TrueCountFast(i)
		got := s.Scene(i).CountClass(ClassCar)
		if got != want {
			t.Fatalf("frame %d: Scene count %d, precomputed %d", i, got, want)
		}
		if got != TrueCount(s, i) {
			t.Fatalf("frame %d: TrueCount mismatch", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := testSource(t, 2000)
	b := testSource(t, 2000)
	for i := 0; i < 2000; i += 101 {
		fa, fb := a.Render(i), b.Render(i)
		for p := range fa.Pix {
			if fa.Pix[p] != fb.Pix[p] {
				t.Fatalf("frame %d pixel %d differs between identical configs", i, p)
			}
		}
		if a.TrueCountFast(i) != b.TrueCountFast(i) {
			t.Fatalf("frame %d count differs", i)
		}
	}
}

func TestDifferentSeedsDifferentContent(t *testing.T) {
	a := testSource(t, 2000)
	cfg := a.cfg
	cfg.Seed = 999
	b, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 2000; i++ {
		if a.TrueCountFast(i) == b.TrueCountFast(i) {
			same++
		}
	}
	if same == 2000 {
		t.Fatal("different seeds produced identical count series")
	}
}

func TestRenderedPixelsInRange(t *testing.T) {
	s := testSource(t, 500)
	f := s.Render(100)
	w, h := s.Resolution()
	if f.W != w || f.H != h || len(f.Pix) != w*h {
		t.Fatalf("unexpected frame geometry %dx%d len %d", f.W, f.H, len(f.Pix))
	}
	for _, v := range f.Pix {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("pixel out of range: %v", v)
		}
	}
}

func TestTemporalLocality(t *testing.T) {
	// Consecutive frames must be much more similar than distant frames —
	// the property the difference detector exploits.
	s := testSource(t, 3000)
	var nearSum, farSum float64
	n := 0
	for i := 100; i < 2800; i += 97 {
		f0 := s.Render(i)
		f1 := s.Render(i + 1)
		ffar := s.Render(i + 150)
		near, err := f0.MSE(f1)
		if err != nil {
			t.Fatal(err)
		}
		far, err := f0.MSE(ffar)
		if err != nil {
			t.Fatal(err)
		}
		nearSum += near
		farSum += far
		n++
	}
	if nearSum/float64(n) >= farSum/float64(n) {
		t.Fatalf("no temporal locality: near MSE %v >= far MSE %v",
			nearSum/float64(n), farSum/float64(n))
	}
}

func TestPixelScoreCorrelation(t *testing.T) {
	// Mean pixel intensity must correlate positively with object count;
	// otherwise the CMDN has nothing to learn.
	s := testSource(t, 4000)
	var xs, ys []float64
	for i := 0; i < 4000; i += 13 {
		f := s.Render(i)
		mean := 0.0
		for _, v := range f.Pix {
			mean += v
		}
		xs = append(xs, mean/float64(len(f.Pix)))
		ys = append(ys, float64(s.TrueCountFast(i)))
	}
	if r := pearson(xs, ys); r < 0.3 {
		t.Fatalf("pixel/count correlation %v too weak for proxy learning", r)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	num := sxy - sx*sy/n
	den := math.Sqrt((sxx - sx*sx/n) * (syy - sy*sy/n))
	if den == 0 {
		return 0
	}
	return num / den
}

func TestCountAutocorrelation(t *testing.T) {
	// Counts must be strongly autocorrelated at lag 1 (objects persist
	// across frames) — the temporal locality that makes Top-K windows and
	// difference detection meaningful.
	s := testSource(t, 10000)
	var x, y []float64
	for i := 0; i+1 < 10000; i++ {
		x = append(x, float64(s.TrueCountFast(i)))
		y = append(y, float64(s.TrueCountFast(i+1)))
	}
	if r := pearson(x, y); r < 0.9 {
		t.Fatalf("lag-1 autocorrelation %v, want > 0.9", r)
	}
}

func TestBurstsCreateSkew(t *testing.T) {
	// The max count must be well above the mean, so Top-K targets exist.
	s := testSource(t, 20000)
	sum, maxC := 0, 0
	for i := 0; i < 20000; i++ {
		c := s.TrueCountFast(i)
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(sum) / 20000
	if float64(maxC) < 2*mean {
		t.Fatalf("max count %d not skewed vs mean %.2f", maxC, mean)
	}
}

func TestDashcamLeadGap(t *testing.T) {
	spec, err := DatasetByName("Dashcam-California")
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.Build(20000)
	if err != nil {
		t.Fatal(err)
	}
	minGap, maxGap := math.Inf(1), 0.0
	for i := 0; i < s.NumFrames(); i++ {
		g := s.LeadGap(i)
		if g <= 0 {
			t.Fatalf("frame %d: non-positive gap %v", i, g)
		}
		minGap = math.Min(minGap, g)
		maxGap = math.Max(maxGap, g)
		if sc := s.Scene(i); sc.LeadGap != g {
			t.Fatalf("Scene.LeadGap mismatch at %d", i)
		}
	}
	if minGap > 10 {
		t.Fatalf("no close-approach events: min gap %v", minGap)
	}
	if maxGap < 30 {
		t.Fatalf("no cruising: max gap %v", maxGap)
	}
}

func TestStreetHappiness(t *testing.T) {
	spec, err := DatasetByName("Daxi-old-street")
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.Build(30000)
	if err != nil {
		t.Fatal(err)
	}
	hi := 0.0
	for i := 0; i < s.NumFrames(); i++ {
		h := s.Happiness(i)
		if h < 0 || h > 100 {
			t.Fatalf("happiness out of range: %v", h)
		}
		hi = math.Max(hi, h)
	}
	if hi < 70 {
		t.Fatalf("no happy moments generated: max %v", hi)
	}
}

func TestAllDatasetsBuild(t *testing.T) {
	for _, spec := range Datasets() {
		s, err := spec.Build(1000)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if s.Name() != spec.Name {
			t.Fatalf("name mismatch: %s vs %s", s.Name(), spec.Name)
		}
		if s.NumFrames() != 1000 {
			t.Fatalf("%s: frames %d", spec.Name, s.NumFrames())
		}
		_ = s.Render(500)
		_ = s.Scene(999)
	}
	if len(CountingDatasets()) != 5 || len(DashcamDatasets()) != 2 {
		t.Fatal("dataset grouping wrong")
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestDefaultScaleBuild(t *testing.T) {
	spec, _ := DatasetByName("Archie")
	s, err := spec.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(spec.PaperFrames) * DefaultScale)
	if s.NumFrames() != want {
		t.Fatalf("default build frames %d, want %d", s.NumFrames(), want)
	}
}

func TestSceneOutOfRangePanics(t *testing.T) {
	s := testSource(t, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Scene should panic")
		}
	}()
	s.Scene(100)
}

func TestMSESizeMismatch(t *testing.T) {
	a := Frame{W: 2, H: 2, Pix: make([]float64, 4)}
	b := Frame{W: 3, H: 2, Pix: make([]float64, 6)}
	if _, err := a.MSE(b); err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestObjectIDsPersistAcrossFrames(t *testing.T) {
	s := testSource(t, 2000)
	// Find a frame with objects; its object IDs should also appear in the
	// next frame (sojourn >> 1 frame).
	for i := 0; i < 1900; i++ {
		sc := s.Scene(i)
		if len(sc.Objects) == 0 {
			continue
		}
		next := s.Scene(i + 1)
		nextIDs := make(map[int]bool)
		for _, o := range next.Objects {
			nextIDs[o.ID] = true
		}
		persisted := 0
		for _, o := range sc.Objects {
			if nextIDs[o.ID] {
				persisted++
			}
		}
		if persisted == 0 && len(sc.Objects) > 1 {
			t.Fatalf("frame %d: no object persisted to frame %d", i, i+1)
		}
		return
	}
	t.Skip("no populated frame found")
}
