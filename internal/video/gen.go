package video

import (
	"fmt"
	"math"

	"github.com/everest-project/everest/internal/xrand"
)

// Kind selects the scene dynamics of a synthetic source.
type Kind int

const (
	// KindTraffic is a fixed camera over a road: target objects cross the
	// view with Poisson arrivals, daily-cycle rate modulation and bursts.
	KindTraffic Kind = iota
	// KindStreet is a (possibly moving) camera over a pedestrian street;
	// it additionally carries a crowd-sentiment signal.
	KindStreet
	// KindCanal is a slow waterway camera (long object sojourns).
	KindCanal
	// KindDashcam is a forward-facing vehicle camera: a leading vehicle at
	// an Ornstein–Uhlenbeck-varying gap plus ambient traffic.
	KindDashcam
)

// Config parameterizes a synthetic source.
type Config struct {
	// Name identifies the dataset in reports.
	Name string
	// Kind selects scene dynamics.
	Kind Kind
	// Class is the object-of-interest (counting target).
	Class string
	// Frames is the total number of frames.
	Frames int
	// FPS is the frame rate.
	FPS int
	// W, H set the render resolution; 0 means 64×64.
	W, H int
	// Seed makes the source deterministic.
	Seed uint64
	// MeanPopulation is the average number of concurrent target objects.
	MeanPopulation float64
	// MeanSojournSec is the average seconds an object stays in view.
	MeanSojournSec float64
	// BurstRate is the expected number of high-traffic bursts per hour of
	// video; bursts multiply the arrival rate 3–6×, creating the rare
	// high-count moments Top-K queries look for.
	BurstRate float64
	// DailyCycle modulates arrivals with a slow sinusoid when true.
	DailyCycle bool
	// CameraDrift is horizontal background drift in fraction-of-width per
	// second (moving-camera datasets).
	CameraDrift float64
	// DistractorPopulation is the average concurrent count of
	// non-target-class objects.
	DistractorPopulation float64
	// HeavyDistractorPopulation is the average concurrent count of large
	// bright non-target objects (buses/trucks). One bus carries the pixel
	// mass of several cars but counts as zero for a car query, which is
	// what defeats naive global-intensity proxies on real footage.
	HeavyDistractorPopulation float64
	// NoiseAmp is per-pixel sensor noise amplitude (default 0.02).
	NoiseAmp float64
}

func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = 64
	}
	if c.H == 0 {
		c.H = 64
	}
	if c.FPS == 0 {
		c.FPS = 30
	}
	if c.MeanSojournSec == 0 {
		c.MeanSojournSec = 3
	}
	if c.NoiseAmp == 0 {
		c.NoiseAmp = 0.005
	}
	if c.Class == "" {
		c.Class = ClassCar
	}
	return c
}

// event is one object's passage through the view.
type event struct {
	id    int
	class string
	t0    int // first frame
	dur   int // frames in view
	lane  float64
	size  float64
	shade float64
	speed float64 // horizontal crossings per sojourn (direction via sign)
	// phase0 is the starting position along the path in [0,1): crossing
	// objects start at 0 (the view edge); congested or turning traffic
	// appears mid-view, which spreads simultaneous arrivals across the
	// frame instead of stacking them at the edges.
	phase0 float64
}

// Synthetic is a procedurally generated video Source.
type Synthetic struct {
	cfg    Config
	events []event
	// chunk index: chunks[c] lists events overlapping frames
	// [c*chunkLen, (c+1)*chunkLen).
	chunks  [][]int32
	counts  []uint16  // per-frame target-class count (ground truth)
	leadGap []float32 // dashcam only
	happy   []float32 // street only
	bgSeed  uint64
}

const chunkLen = 256

var _ Source = (*Synthetic)(nil)

// NewSynthetic generates a deterministic synthetic video from cfg.
func NewSynthetic(cfg Config) (*Synthetic, error) {
	cfg = cfg.withDefaults()
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("video: Frames must be positive, got %d", cfg.Frames)
	}
	if cfg.MeanPopulation < 0 || cfg.DistractorPopulation < 0 {
		return nil, fmt.Errorf("video: negative population")
	}
	s := &Synthetic{cfg: cfg}
	root := xrand.New(cfg.Seed).Split("video/" + cfg.Name)
	s.bgSeed = root.Split("background").Uint64()

	s.generateEvents(root)
	s.buildIndex()
	s.buildCounts()
	switch cfg.Kind {
	case KindDashcam:
		s.buildLeadGap(root.Split("leadgap"))
	case KindStreet:
		s.buildHappiness(root.Split("happiness"))
	}
	return s, nil
}

// generateEvents draws object passages as a non-homogeneous Poisson
// process: per-frame arrival rate λ(t) = population/sojourn × cycle(t) ×
// burst(t).
func (s *Synthetic) generateEvents(root *xrand.RNG) {
	cfg := s.cfg
	r := root.Split("events")
	sojourn := cfg.MeanSojournSec * float64(cfg.FPS)
	if cfg.Kind == KindCanal {
		sojourn *= 4 // boats cross slowly
	}

	// Precompute burst intervals.
	bursts := s.burstIntervals(root.Split("bursts"))

	addStream := func(class string, population float64, rr *xrand.RNG, sizeScale float64) {
		if population <= 0 {
			return
		}
		base := population / sojourn // arrivals per frame
		nextID := len(s.events) + 1
		for t := 0; t < cfg.Frames; t++ {
			// A burst overrides the daily cycle: rush-hour spikes are not
			// damped by the time-of-day baseline.
			rate := base * s.cycleFactor(t)
			if bf := burstFactor(bursts, t); bf > 1 {
				rate = base * bf
			}
			n := rr.Poisson(rate)
			for k := 0; k < n; k++ {
				dur := int(sojourn * math.Exp(0.4*rr.Norm()))
				if dur < cfg.FPS/2 {
					dur = cfg.FPS / 2
				}
				dir := 1.0
				if rr.Float64() < 0.5 {
					dir = -1
				}
				phase0 := 0.0
				if rr.Float64() < 0.35 {
					phase0 = 0.7 * rr.Float64()
				}
				s.events = append(s.events, event{
					id:     nextID,
					class:  class,
					t0:     t,
					dur:    dur,
					lane:   0.15 + 0.7*rr.Float64(),
					size:   (0.08 + 0.10*rr.Float64()) * sizeScale,
					shade:  shadeFor(class, rr),
					speed:  dir,
					phase0: phase0,
				})
				nextID++
			}
		}
	}
	addStream(cfg.Class, cfg.MeanPopulation, r.Split("target"), 1)
	distractor := ClassPerson
	if cfg.Class == ClassPerson {
		distractor = ClassCar
	}
	addStream(distractor, cfg.DistractorPopulation, r.Split("distractor"), 1)
	heavy := ClassBus
	if cfg.Class == ClassBus {
		heavy = ClassBoat
	}
	addStream(heavy, cfg.HeavyDistractorPopulation, r.Split("heavy"), 2.6)
}

// shadeFor draws a rendered intensity from the class's distinctive range
// — different object classes look different on camera, which is what lets
// any pixel-level proxy (CMDN or baseline classifier) tell a car from a
// pedestrian.
func shadeFor(class string, r *xrand.RNG) float64 {
	switch class {
	case ClassCar:
		return 0.68 + 0.27*r.Float64()
	case ClassBus:
		return 0.80 + 0.20*r.Float64()
	case ClassPerson:
		return 0.05 + 0.15*r.Float64()
	case ClassBoat:
		return 0.58 + 0.22*r.Float64()
	default:
		return 0.5 + 0.3*r.Float64()
	}
}

// burstInterval is a period of elevated arrivals.
type burstInterval struct {
	t0, t1 int
	factor float64
}

func (s *Synthetic) burstIntervals(r *xrand.RNG) []burstInterval {
	cfg := s.cfg
	if cfg.BurstRate <= 0 {
		return nil
	}
	hours := float64(cfg.Frames) / float64(cfg.FPS) / 3600
	n := r.Poisson(cfg.BurstRate * hours)
	if n == 0 {
		n = 1 // guarantee at least one interesting moment
	}
	out := make([]burstInterval, 0, n)
	// Bursts are rare moments, not regimes: cap each burst at a small
	// fraction of the video so scaled-down videos keep the paper-like
	// skew (a handful of standout moments over a long quiet baseline).
	maxDurSec := cfg.Frames / cfg.FPS / 15
	if maxDurSec < 10 {
		maxDurSec = 10
	}
	for i := 0; i < n; i++ {
		durSec := 20 + r.Intn(100)
		if durSec > maxDurSec {
			durSec = maxDurSec
		}
		dur := durSec * cfg.FPS
		// Place the burst so it fits inside the video (with headroom for
		// the object-sojourn ramp-up); a burst that starts on the final
		// frames never builds up any population.
		span := cfg.Frames - dur - 2*cfg.FPS
		start := 0
		if span > 1 {
			start = r.Intn(span)
		}
		out = append(out, burstInterval{
			t0:     start,
			t1:     start + dur,
			factor: 3 + 3*r.Float64(),
		})
	}
	return out
}

func burstFactor(bursts []burstInterval, t int) float64 {
	f := 1.0
	for _, b := range bursts {
		if t >= b.t0 && t < b.t1 {
			// Rush hours ramp up, peak and subside (half-sine profile);
			// a flat-rate burst would produce a long plateau of tied
			// counts with no meaningful Top-K inside it.
			phase := float64(t-b.t0) / float64(b.t1-b.t0)
			f *= 1 + (b.factor-1)*math.Sin(math.Pi*phase)
		}
	}
	return f
}

// cycleFactor is the slow daily-cycle modulation of arrival rates.
func (s *Synthetic) cycleFactor(t int) float64 {
	if !s.cfg.DailyCycle {
		return 1
	}
	// One "day" spans the whole video if the video is shorter than 24h.
	day := 24 * 3600 * s.cfg.FPS
	if s.cfg.Frames < day {
		day = s.cfg.Frames
	}
	phase := 2 * math.Pi * float64(t) / float64(day)
	return 0.35 + 0.65*(0.5+0.5*math.Sin(phase-math.Pi/2))
}

func (s *Synthetic) buildIndex() {
	nChunks := (s.cfg.Frames + chunkLen - 1) / chunkLen
	s.chunks = make([][]int32, nChunks)
	for i, e := range s.events {
		c0 := e.t0 / chunkLen
		c1 := (e.t0 + e.dur - 1) / chunkLen
		if c1 >= nChunks {
			c1 = nChunks - 1
		}
		for c := c0; c <= c1; c++ {
			s.chunks[c] = append(s.chunks[c], int32(i))
		}
	}
}

func (s *Synthetic) buildCounts() {
	s.counts = make([]uint16, s.cfg.Frames)
	for _, e := range s.events {
		if e.class != s.cfg.Class {
			continue
		}
		end := min(e.t0+e.dur, s.cfg.Frames)
		for t := e.t0; t < end; t++ {
			if eventInView(e, t) && s.counts[t] < math.MaxUint16 {
				s.counts[t]++
			}
		}
	}
}

// eventInView reports whether the object's center is inside the frame at
// time t — the visibility criterion shared by Scene, the precomputed
// counts and the renderer's ground truth. An object that has barely
// entered (or nearly left) the view contributes almost no pixels, and no
// real detector counts it either.
func eventInView(e event, t int) bool {
	x := eventX(e, t)
	cx := x + e.size/2
	return cx >= 0 && cx <= 1
}

// eventX returns the object's left edge at time t.
func eventX(e event, t int) float64 {
	frac := e.phase0 + (1-e.phase0)*float64(t-e.t0)/float64(e.dur)
	x := frac*(1+2*e.size) - e.size
	if e.speed < 0 {
		x = 1 - frac*(1+2*e.size)
	}
	return x
}

// buildLeadGap simulates the distance to the leading vehicle as an
// Ornstein–Uhlenbeck process around 25 m with occasional close-approach
// excursions — the "dangerous tailgating moments" of the fleet-management
// use case.
func (s *Synthetic) buildLeadGap(r *xrand.RNG) {
	n := s.cfg.Frames
	s.leadGap = make([]float32, n)
	inEvent := spanMask(r, n, 2e-4, s.cfg.FPS*3, s.cfg.FPS*13)
	gap := 25.0
	const (
		mean  = 25.0
		theta = 0.04 // mean-reversion per frame
		vol   = 0.5  // metres per sqrt(frame)
	)
	for t := 0; t < n; t++ {
		// Cruise target wanders slowly (traffic flow changes); during a
		// close-approach event it drops to tailgating range.
		target := mean + 12*math.Sin(float64(t)*0.0007+1)
		if inEvent[t] {
			target = 3 + 4*r.Float64()
		}
		gap += theta*(target-gap) + vol*r.Norm()
		if gap < 1.5 {
			gap = 1.5
		}
		if gap > 60 {
			gap = 60
		}
		s.leadGap[t] = float32(gap)
	}
}

// spanMask marks frames covered by randomly placed event spans. Events
// start per-frame with probability rate and last between minDur and maxDur
// frames; at least one event is always placed so every dataset has Top-K
// targets.
func spanMask(r *xrand.RNG, n int, rate float64, minDur, maxDur int) []bool {
	mask := make([]bool, n)
	count := r.Poisson(rate * float64(n))
	if count == 0 {
		count = 1
	}
	for e := 0; e < count; e++ {
		start := r.Intn(n)
		dur := minDur + r.Intn(max(maxDur-minDur, 1))
		for t := start; t < min(start+dur, n); t++ {
			mask[t] = true
		}
	}
	return mask
}

// buildHappiness simulates a [0,100] crowd-sentiment signal as a bounded
// random walk with festive spikes (the thumbnail-generation use case).
func (s *Synthetic) buildHappiness(r *xrand.RNG) {
	n := s.cfg.Frames
	s.happy = make([]float32, n)
	inSpike := spanMask(r, n, 1.5e-4, s.cfg.FPS*5, s.cfg.FPS*25)
	h := 50.0
	for t := 0; t < n; t++ {
		target := 45 + 10*math.Sin(float64(t)*0.0004)
		if inSpike[t] {
			target = 92
		}
		h += 0.03*(target-h) + 0.6*r.Norm()
		h = math.Max(0, math.Min(100, h))
		s.happy[t] = float32(h)
	}
}

// Name implements Source.
func (s *Synthetic) Name() string { return s.cfg.Name }

// NumFrames implements Source.
func (s *Synthetic) NumFrames() int { return s.cfg.Frames }

// FPS implements Source.
func (s *Synthetic) FPS() int { return s.cfg.FPS }

// TargetClass implements Source.
func (s *Synthetic) TargetClass() string { return s.cfg.Class }

// Resolution implements Source.
func (s *Synthetic) Resolution() (int, int) { return s.cfg.W, s.cfg.H }

// TrueCountFast returns the precomputed target-class count of frame i
// without materializing the scene; detectors use Scene, the test suite and
// workload analysis use this.
func (s *Synthetic) TrueCountFast(i int) int { return int(s.counts[i]) }

// Scene implements Source.
func (s *Synthetic) Scene(i int) Scene {
	if i < 0 || i >= s.cfg.Frames {
		panic(fmt.Sprintf("video: frame %d out of range [0,%d)", i, s.cfg.Frames))
	}
	var sc Scene
	for _, ei := range s.chunks[i/chunkLen] {
		e := s.events[ei]
		if i < e.t0 || i >= e.t0+e.dur {
			continue
		}
		if !eventInView(e, i) {
			continue
		}
		x := eventX(e, i)
		sc.Objects = append(sc.Objects, Object{
			ID:    e.id,
			Class: e.class,
			X:     x,
			Y:     e.lane,
			W:     e.size,
			H:     e.size * 0.7,
			Shade: e.shade,
		})
	}
	if s.leadGap != nil {
		sc.LeadGap = float64(s.leadGap[i])
		// The leading vehicle is itself an object whose apparent size grows
		// as the gap shrinks; this is the pixel signal the CMDN learns.
		size := 0.5 * 6 / math.Max(3, sc.LeadGap)
		sc.Objects = append(sc.Objects, Object{
			ID:    0,
			Class: ClassCar,
			X:     0.5 - size/2,
			Y:     0.55 - size*0.35,
			W:     size,
			H:     size * 0.7,
			Shade: 0.8,
		})
	}
	if s.happy != nil {
		sc.Happiness = float64(s.happy[i])
	}
	return sc
}

// LeadGap returns the dashcam lead-vehicle gap for frame i (metres) or 0
// for non-dashcam sources.
func (s *Synthetic) LeadGap(i int) float64 {
	if s.leadGap == nil {
		return 0
	}
	return float64(s.leadGap[i])
}

// Happiness returns the sentiment signal for frame i, or 0 for sources
// without one.
func (s *Synthetic) Happiness(i int) float64 {
	if s.happy == nil {
		return 0
	}
	return float64(s.happy[i])
}
