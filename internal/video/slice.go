package video

import "fmt"

// SliceSource is a contiguous view [Lo, Hi) of an underlying Source,
// re-indexed from zero. It is how the scale-out executor shards a video:
// each worker runs Phase 1 over one slice while the underlying frames are
// rendered by the parent source, so slicing costs nothing.
type SliceSource struct {
	src    Source
	lo, hi int
}

// Slice returns the view of src covering frames [lo, hi).
func Slice(src Source, lo, hi int) (*SliceSource, error) {
	if src == nil {
		return nil, fmt.Errorf("video: nil source")
	}
	if lo < 0 || hi > src.NumFrames() || lo >= hi {
		return nil, fmt.Errorf("video: invalid slice [%d, %d) of %d frames", lo, hi, src.NumFrames())
	}
	return &SliceSource{src: src, lo: lo, hi: hi}, nil
}

// PrefixSource is the view of a feed at an earlier point in time: the
// same camera (same Name), only the first n frames visible. It models the
// append-only growth of a continuously recording camera, which is what
// Index.Extend ingests incrementally.
type PrefixSource struct {
	SliceSource
}

// Prefix returns the first n frames of src under src's own name.
func Prefix(src Source, n int) (*PrefixSource, error) {
	sl, err := Slice(src, 0, n)
	if err != nil {
		return nil, err
	}
	return &PrefixSource{SliceSource: *sl}, nil
}

// Name identifies the feed, not the truncation: a prefix is the same
// camera observed earlier.
func (p *PrefixSource) Name() string { return p.src.Name() }

// Name identifies the slice.
func (s *SliceSource) Name() string {
	return fmt.Sprintf("%s[%d:%d)", s.src.Name(), s.lo, s.hi)
}

// NumFrames is the slice length.
func (s *SliceSource) NumFrames() int { return s.hi - s.lo }

// FPS delegates to the parent.
func (s *SliceSource) FPS() int { return s.src.FPS() }

// TargetClass delegates to the parent.
func (s *SliceSource) TargetClass() string { return s.src.TargetClass() }

// Lo returns the slice's start frame in parent coordinates.
func (s *SliceSource) Lo() int { return s.lo }

// Scene returns the ground truth of slice frame i (parent frame Lo+i).
func (s *SliceSource) Scene(i int) Scene { return s.src.Scene(s.check(i)) }

// Render decodes slice frame i (parent frame Lo+i).
func (s *SliceSource) Render(i int) Frame {
	f := s.src.Render(s.check(i))
	f.Index = i
	return f
}

// Resolution delegates to the parent.
func (s *SliceSource) Resolution() (w, h int) { return s.src.Resolution() }

func (s *SliceSource) check(i int) int {
	if i < 0 || i >= s.hi-s.lo {
		panic(fmt.Sprintf("video: slice frame %d out of [0, %d)", i, s.hi-s.lo))
	}
	return s.lo + i
}
