package video

import "testing"

func benchSource(b *testing.B, frames int) *Synthetic {
	b.Helper()
	s, err := NewSynthetic(Config{
		Name: "bench", Kind: KindTraffic, Class: ClassCar,
		Frames: frames, FPS: 30, Seed: 1, MeanPopulation: 4, BurstRate: 2,
		DistractorPopulation: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = benchSource(b, 100000)
	}
}

func BenchmarkRender(b *testing.B) {
	s := benchSource(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Render(i % 10000)
	}
}

func BenchmarkScene(b *testing.B) {
	s := benchSource(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Scene(i % 10000)
	}
}

func BenchmarkMSE(b *testing.B) {
	s := benchSource(b, 100)
	f, g := s.Render(0), s.Render(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.MSE(g); err != nil {
			b.Fatal(err)
		}
	}
}
