// Package video is the video substrate of the Everest reproduction: a
// deterministic, procedurally generated stand-in for the paper's real
// videos (Table 7).
//
// A Source exposes exactly what the rest of the system consumes from a
// video: decoded pixels per frame (for the difference detector and the
// CMDN proxy) and a ground-truth scene graph per frame (read only by the
// oracle detector in internal/vision). Scenes are generated from seeded
// object arrival/departure processes with temporal locality — bursts,
// daily cycles, camera motion — so Top-K targets are rare, clustered
// moments, as in real footage. Pixels are rendered lazily and
// deterministically; no frame data is stored.
package video

import "fmt"

// Class labels used by the simulator and detectors.
const (
	ClassCar    = "car"
	ClassBus    = "bus"
	ClassPerson = "person"
	ClassBoat   = "boat"
)

// Object is one ground-truth object instance in a frame. Coordinates are
// normalized to [0,1] in both axes; W/H are the half-free extents.
type Object struct {
	// ID is the persistent identity of the object across frames (what the
	// paper's tracker recovers as objectID).
	ID int
	// Class is the object class label.
	Class string
	// X, Y locate the top-left corner; W, H the extent (normalized).
	X, Y, W, H float64
	// Shade is the rendered intensity in [0,1].
	Shade float64
}

// Scene is the ground truth of one frame.
type Scene struct {
	// Objects lists all visible objects.
	Objects []Object
	// LeadGap is the distance in metres to the leading vehicle (dashcam
	// sources only; 0 elsewhere).
	LeadGap float64
	// Happiness is the crowd-sentiment signal in [0,100] (street sources
	// only; 0 elsewhere).
	Happiness float64
}

// CountClass returns the number of objects of the given class.
func (s Scene) CountClass(class string) int {
	n := 0
	for _, o := range s.Objects {
		if o.Class == class {
			n++
		}
	}
	return n
}

// Frame is one decoded grayscale frame.
type Frame struct {
	// Index is the frame's position in the video.
	Index int
	// W, H are the pixel dimensions.
	W, H int
	// Pix holds W*H row-major grayscale intensities in [0,1].
	Pix []float64
}

// MSE returns the mean squared error between two frames of equal size.
func (f Frame) MSE(g Frame) (float64, error) {
	if f.W != g.W || f.H != g.H {
		return 0, fmt.Errorf("video: frame size mismatch %dx%d vs %dx%d", f.W, f.H, g.W, g.H)
	}
	sum := 0.0
	for i := range f.Pix {
		d := f.Pix[i] - g.Pix[i]
		sum += d * d
	}
	return sum / float64(len(f.Pix)), nil
}

// Source is a video: random access to scenes (ground truth) and rendered
// frames (pixels). Implementations must be deterministic and safe for
// concurrent reads.
type Source interface {
	// Name identifies the dataset.
	Name() string
	// NumFrames is the total frame count.
	NumFrames() int
	// FPS is the frame rate.
	FPS() int
	// TargetClass is the dataset's object-of-interest.
	TargetClass() string
	// Scene returns frame i's ground truth. Only detectors may call this.
	Scene(i int) Scene
	// Render decodes frame i's pixels.
	Render(i int) Frame
	// Resolution returns the rendered width and height.
	Resolution() (w, h int)
}

// TrueCount returns the ground-truth target-class count of frame i; it is
// the score the default object-counting UDF computes via the oracle.
func TrueCount(s Source, i int) int {
	return s.Scene(i).CountClass(s.TargetClass())
}
