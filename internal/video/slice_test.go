package video

import (
	"strings"
	"testing"
)

func sliceTestSource(t *testing.T) Source {
	t.Helper()
	spec, err := DatasetByName("Archie")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(600)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestSliceBasics(t *testing.T) {
	src := sliceTestSource(t)
	sl, err := Slice(src, 100, 350)
	if err != nil {
		t.Fatal(err)
	}
	if sl.NumFrames() != 250 {
		t.Fatalf("NumFrames = %d, want 250", sl.NumFrames())
	}
	if sl.Lo() != 100 {
		t.Fatalf("Lo = %d, want 100", sl.Lo())
	}
	if !strings.Contains(sl.Name(), "[100:350)") {
		t.Fatalf("Name = %q, want range suffix", sl.Name())
	}
	if sl.FPS() != src.FPS() || sl.TargetClass() != src.TargetClass() {
		t.Fatal("FPS/TargetClass must delegate to parent")
	}
	w1, h1 := sl.Resolution()
	w2, h2 := src.Resolution()
	if w1 != w2 || h1 != h2 {
		t.Fatal("Resolution must delegate to parent")
	}
}

func TestSliceFramesMatchParent(t *testing.T) {
	src := sliceTestSource(t)
	sl, err := Slice(src, 42, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 13, 56} {
		want := src.Render(42 + i)
		got := sl.Render(i)
		if got.Index != i {
			t.Fatalf("slice frame index = %d, want %d (re-based)", got.Index, i)
		}
		if got.W != want.W || got.H != want.H {
			t.Fatal("size mismatch")
		}
		for p := range got.Pix {
			if got.Pix[p] != want.Pix[p] {
				t.Fatalf("pixel %d of slice frame %d differs from parent frame %d", p, i, 42+i)
			}
		}
		ws, gs := src.Scene(42+i), sl.Scene(i)
		if len(ws.Objects) != len(gs.Objects) {
			t.Fatalf("scene object count differs at slice frame %d", i)
		}
	}
}

func TestSliceValidation(t *testing.T) {
	src := sliceTestSource(t)
	cases := []struct{ lo, hi int }{
		{-1, 10}, {0, 0}, {10, 10}, {50, 20}, {0, src.NumFrames() + 1},
	}
	for _, c := range cases {
		if _, err := Slice(src, c.lo, c.hi); err == nil {
			t.Fatalf("Slice(%d, %d) should fail", c.lo, c.hi)
		}
	}
	if _, err := Slice(nil, 0, 1); err == nil {
		t.Fatal("nil source should fail")
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	src := sliceTestSource(t)
	sl, err := Slice(src, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access must panic like a slice index")
		}
	}()
	sl.Render(10)
}

func TestPrefixKeepsFeedName(t *testing.T) {
	src := sliceTestSource(t)
	p, err := Prefix(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != src.Name() {
		t.Fatalf("prefix name %q, want the feed's own %q", p.Name(), src.Name())
	}
	if p.NumFrames() != 100 {
		t.Fatalf("NumFrames = %d, want 100", p.NumFrames())
	}
	// Frames are the feed's own frames.
	a, b := p.Render(42), src.Render(42)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("prefix frame differs from feed frame")
		}
	}
	if _, err := Prefix(src, 0); err == nil {
		t.Fatal("empty prefix must fail")
	}
	if _, err := Prefix(src, src.NumFrames()+1); err == nil {
		t.Fatal("over-long prefix must fail")
	}
}
