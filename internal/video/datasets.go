package video

import "fmt"

// DatasetSpec describes one of the paper's evaluation videos (Table 7)
// together with the synthetic configuration that stands in for it.
type DatasetSpec struct {
	// Name matches the paper's dataset name.
	Name string
	// PaperFrames and PaperHours are the original corpus sizes, recorded
	// for EXPERIMENTS.md; the synthetic stand-in scales them down by
	// DefaultScale (overridable).
	PaperFrames int
	PaperHours  float64
	// Config is the full-scale synthetic configuration (Frames set to
	// PaperFrames); Build rescales it.
	Config Config
}

// DefaultScale shrinks paper-sized frame counts to something a single CPU
// core processes in seconds. Experiments can override via Build's frames
// argument.
const DefaultScale = 1.0 / 400

// Datasets returns the specs of the five object-counting videos and two
// dashcam videos of Table 7, in the paper's order.
func Datasets() []DatasetSpec {
	return []DatasetSpec{
		{
			Name: "Archie", PaperFrames: 2130000, PaperHours: 19.7,
			Config: Config{
				Name: "Archie", Kind: KindTraffic, Class: ClassCar, FPS: 30,
				Seed: 0xA2C41E, MeanPopulation: 3.5, MeanSojournSec: 3,
				BurstRate: 1.2, DailyCycle: true, DistractorPopulation: 1,
				HeavyDistractorPopulation: 0.6,
			},
		},
		{
			Name: "Daxi-old-street", PaperFrames: 8640000, PaperHours: 80,
			Config: Config{
				Name: "Daxi-old-street", Kind: KindStreet, Class: ClassPerson, FPS: 30,
				Seed: 0xDA81, MeanPopulation: 5, MeanSojournSec: 6,
				BurstRate: 0.9, DailyCycle: true, CameraDrift: 0.02,
				DistractorPopulation: 0.5, HeavyDistractorPopulation: 0.4,
			},
		},
		{
			Name: "Grand-Canal", PaperFrames: 25100000, PaperHours: 116.2,
			Config: Config{
				Name: "Grand-Canal", Kind: KindCanal, Class: ClassBoat, FPS: 60,
				Seed: 0x6CA7A1, MeanPopulation: 2, MeanSojournSec: 5,
				BurstRate: 0.6, DailyCycle: true, HeavyDistractorPopulation: 0.3,
			},
		},
		{
			Name: "Irish-Center", PaperFrames: 32401000, PaperHours: 300,
			Config: Config{
				Name: "Irish-Center", Kind: KindTraffic, Class: ClassCar, FPS: 30,
				Seed: 0x141583, MeanPopulation: 4, MeanSojournSec: 2.5,
				BurstRate: 1.5, DailyCycle: true, CameraDrift: 0.015,
				DistractorPopulation: 1.5, HeavyDistractorPopulation: 0.7,
			},
		},
		{
			Name: "Taipei-bus", PaperFrames: 32488000, PaperHours: 300.8,
			Config: Config{
				Name: "Taipei-bus", Kind: KindTraffic, Class: ClassCar, FPS: 30,
				Seed: 0x7A1BE1, MeanPopulation: 4.5, MeanSojournSec: 3,
				BurstRate: 1.8, DailyCycle: true, DistractorPopulation: 2,
				HeavyDistractorPopulation: 0.8,
			},
		},
		{
			Name: "Dashcam-California", PaperFrames: 324000, PaperHours: 3,
			Config: Config{
				Name: "Dashcam-California", Kind: KindDashcam, Class: ClassCar, FPS: 30,
				Seed: 0xDC0CA1, MeanPopulation: 2, MeanSojournSec: 1.5,
				CameraDrift: 0.25, NoiseAmp: 0.012,
			},
		},
		{
			Name: "Dashcam-Greenport", PaperFrames: 350000, PaperHours: 3.2,
			Config: Config{
				Name: "Dashcam-Greenport", Kind: KindDashcam, Class: ClassCar, FPS: 30,
				Seed: 0xD69EE0, MeanPopulation: 1.5, MeanSojournSec: 1.5,
				CameraDrift: 0.2, NoiseAmp: 0.012,
			},
		},
	}
}

// CountingDatasets returns the five object-counting specs (Fig. 4–7).
func CountingDatasets() []DatasetSpec { return Datasets()[:5] }

// DashcamDatasets returns the two dashcam specs (Fig. 9).
func DashcamDatasets() []DatasetSpec { return Datasets()[5:] }

// DatasetByName looks a spec up by its paper name.
func DatasetByName(name string) (DatasetSpec, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("video: unknown dataset %q", name)
}

// Build instantiates the spec's synthetic source with the given frame
// count; frames <= 0 uses PaperFrames × DefaultScale.
func (d DatasetSpec) Build(frames int) (*Synthetic, error) {
	cfg := d.Config
	if frames <= 0 {
		frames = int(float64(d.PaperFrames) * DefaultScale)
	}
	cfg.Frames = frames
	return NewSynthetic(cfg)
}
