package video

import "math"

// Render implements Source: it rasterizes frame i deterministically from
// the scene graph — a textured background with optional camera drift,
// filled object rectangles, a subtle global illumination cycle and
// per-pixel sensor noise. The renderer is intentionally simple; what
// matters to the pipeline is that (a) pixel content correlates with the
// ground-truth score (so the CMDN has signal to learn), (b) consecutive
// frames are similar (so the difference detector has duplicates to
// discard), and (c) rendering is cheap and allocation-light.
func (s *Synthetic) Render(i int) Frame {
	w, h := s.cfg.W, s.cfg.H
	pix := make([]float64, w*h)

	// Background: a smooth per-dataset texture, shifted by camera drift.
	driftPx := s.cfg.CameraDrift * float64(i) / float64(s.cfg.FPS) * float64(w)
	for y := 0; y < h; y++ {
		fy := float64(y) / float64(h)
		rowBase := 0.28 + 0.12*fy
		for x := 0; x < w; x++ {
			fx := float64(x) + driftPx
			tex := 0.06*math.Sin(fx*0.55) + 0.04*math.Sin(fx*0.17+fy*9)
			pix[y*w+x] = rowBase + tex
		}
	}

	// Illumination: a slow ambient-light cycle (clouds, sun angle) plus a
	// faint flicker. Outdoor footage's global brightness varies far more
	// with lighting than with scene content, which is exactly why naive
	// global-intensity proxies fail on counting queries.
	cyc := 2 * math.Pi * float64(i) / (40 * 60 * float64(s.cfg.FPS))
	illum := 1 + 0.12*math.Sin(cyc+float64(s.bgSeed%7)) + 0.01*math.Sin(float64(i)*0.002)

	// Objects: filled rectangles at their normalized positions.
	sc := s.Scene(i)
	for _, o := range sc.Objects {
		x0 := int(o.X * float64(w))
		y0 := int(o.Y * float64(h))
		x1 := int((o.X + o.W) * float64(w))
		y1 := int((o.Y + o.H) * float64(h))
		// Never rasterize a visible object to zero pixels: one extra car
		// must always change the frame (it does at 1080p).
		if x1 == x0 {
			x1++
		}
		if y1 == y0 {
			y1++
		}
		x0 = max(x0, 0)
		y0 = max(y0, 0)
		x1 = min(x1, w)
		y1 = min(y1, h)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				// Layered blend rather than overwrite: a second object on
				// the same pixels still changes them (windshields, shadows
				// and partial occlusion keep stacked objects distinguishable
				// at full resolution; the blend preserves that countable
				// signal at ours).
				pix[y*w+x] += 0.65 * (o.Shade - pix[y*w+x])
			}
		}
	}

	// Sensor noise: deterministic per (frame, pixel).
	amp := s.cfg.NoiseAmp
	base := s.bgSeed ^ uint64(i)*0x9e3779b97f4a7c15
	for p := range pix {
		v := pix[p]*illum + amp*(hash01(base+uint64(p))-0.5)
		pix[p] = math.Max(0, math.Min(1, v))
	}
	return Frame{Index: i, W: w, H: h, Pix: pix}
}

// hash01 maps a 64-bit value to [0,1) via splitmix64 finalization.
func hash01(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
