// Package repl implements the interactive EQL shell behind
// `cmd/everest -repl`. It is where the repository's multi-query machinery
// composes into a workflow: the shell is one eql.ScriptSession, so the
// first query against a (dataset, UDF) pair pays Phase 1 once by building
// an ingestion Index, and every later statement — in the same input or a
// later one — runs through a Session over that index, sharing all
// previously revealed oracle labels. Input is a script: `;`-separated
// statements execute as one coordinated plan graph (common sub-plans
// bound once, one serving budget), and an incomplete statement continues
// onto the next line. EXPLAIN statements describe plans without running
// them; EXPLAIN ANALYZE statements let the cost-based planner choose the
// engine knobs, run the chosen plan on the pair's session, and report
// predicted vs actual simulated cost.
package repl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/eql"
	"github.com/everest-project/everest/internal/video"
)

// REPL holds the shell's state: one ScriptSession whose relations (one
// ingestion index + session per (dataset, frame count, UDF, seed) key)
// are built lazily and persist across inputs.
type REPL struct {
	out io.Writer
	ss  *eql.ScriptSession
}

// New returns an empty shell writing results to out.
func New(out io.Writer) *REPL {
	r := &REPL{out: out, ss: eql.NewScriptSession()}
	r.ss.OnIngestStart = func(dataset, udf string) {
		fmt.Fprintf(r.out, "(ingesting %s for %s — one-off Phase 1)\n", dataset, udf)
	}
	r.ss.OnIngestDone = func(dataset, udf string, ingestMS float64) {
		fmt.Fprintf(r.out, "(ingested in %.0f sim-ms; later queries pay Phase 2 only)\n", ingestMS)
	}
	return r
}

// AttachLive registers a live stream so `SELECT STREAM …` statements can
// compile to follower registrations on it.
func (r *REPL) AttachLive(name string, ls *everest.LiveStream) { r.ss.AttachLive(name, ls) }

// Sessions returns how many (dataset, UDF) sessions the shell has opened.
func (r *REPL) Sessions() int { return len(r.ss.Entries()) }

// Run reads statements from in until EOF or a quit command. Statements
// end at `;` or end of line; an input that stops mid-statement (or
// inside an unterminated string) continues onto the next line, and a
// blank line forces the pending text out. Errors are printed, not fatal
// — a shell keeps going.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var buf []string
	prompt := func() {
		if len(buf) == 0 {
			fmt.Fprint(r.out, "everest> ")
		} else {
			fmt.Fprint(r.out, "      -> ")
		}
	}
	exec := func(src string) {
		if err := r.ExecLine(src); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if len(buf) == 0 {
			switch strings.ToLower(trimmed) {
			case "quit", "exit", `\q`:
				fmt.Fprintln(r.out, "bye")
				return nil
			}
			if trimmed == "" {
				prompt()
				continue
			}
			if isCommand(trimmed) {
				exec(trimmed)
				prompt()
				continue
			}
		}
		if trimmed == "" {
			// A blank line forces the pending statement out as-is.
			src := strings.Join(buf, "\n")
			buf = nil
			exec(src)
			prompt()
			continue
		}
		buf = append(buf, line)
		src := strings.Join(buf, "\n")
		if _, err := eql.ParseScript(src); err != nil {
			var pe *eql.ParseError
			if errors.As(err, &pe) && pe.AtEOF {
				// The statement is incomplete, not wrong: keep reading.
				prompt()
				continue
			}
		}
		buf = nil
		exec(src)
		prompt()
	}
	if len(buf) > 0 {
		exec(strings.Join(buf, "\n"))
	}
	fmt.Fprintln(r.out)
	return sc.Err()
}

// isCommand reports whether a line is a dot-command rather than EQL.
func isCommand(line string) bool {
	switch strings.ToLower(line) {
	case "help", `\h`, "?", "datasets", `\d`, "sessions", `\s`:
		return true
	}
	return false
}

// ExecLine executes one complete shell input: a dot-command (help,
// datasets, sessions) or an EQL script — one statement or several
// separated by `;`, run as one coordinated plan graph on the shell's
// script session.
func (r *REPL) ExecLine(line string) error {
	switch strings.ToLower(strings.TrimSpace(line)) {
	case "help", `\h`, "?":
		r.help()
		return nil
	case "datasets", `\d`:
		r.datasets()
		return nil
	case "sessions", `\s`:
		r.listSessions()
		return nil
	}
	res, err := r.ss.ExecWith(line, eql.ScriptOptions{})
	if res == nil {
		return err
	}
	r.printScript(res)
	return err
}

// printScript renders a script's results. Single-statement inputs print
// exactly as the pre-script shell did; multi-statement inputs add a
// coordination header and per-statement banners.
func (r *REPL) printScript(res *eql.ScriptResult) {
	multi := len(res.Statements) > 1
	if multi {
		fmt.Fprintf(r.out, "(script: %d statements over %d relation(s), %d shared sub-plan unit(s); concurrency %d, coalesce %s, mux %s)\n",
			len(res.Statements), res.Relations, res.SharedUnits,
			res.Concurrency, onOff(res.Coalesce), onOff(res.UseMux))
	}
	for i, sr := range res.Statements {
		if multi {
			fmt.Fprintf(r.out, "[%d] %s\n", i+1, sr.Text)
		}
		switch {
		case sr.Explain != "":
			fmt.Fprint(r.out, sr.Explain)
		case sr.Analyze != nil:
			fmt.Fprint(r.out, sr.Analyze.String())
		case len(sr.Followers) > 0:
			fmt.Fprintf(r.out, "(continuous: %d follower(s) registered on the live stream; deltas accumulate as footage arrives)\n",
				len(sr.Followers))
		default:
			if sr.Stmt != nil && sr.Stmt.Parallel > 1 {
				fmt.Fprintf(r.out, "(scale-out: %d workers)\n", sr.Stmt.Parallel)
			}
			for _, ur := range sr.Units {
				if ur == nil || ur.Result == nil {
					continue
				}
				if len(sr.Units) > 1 {
					fmt.Fprintf(r.out, "%s rank-by %s:\n", ur.Dataset, ur.Predicate)
				}
				r.printResult(ur.Result, ur.FPS)
			}
			for _, ar := range sr.And {
				fmt.Fprintf(r.out, "AND (%s): %d ids in every predicate's top-K: %v\n",
					ar.Dataset, len(ar.IDs), ar.IDs)
			}
		}
	}
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

func (r *REPL) printResult(res *everest.Result, fps int) {
	unit := "frame"
	if res.IsWindow {
		unit = "window"
	}
	fmt.Fprintf(r.out, "confidence %.4f (%s bound), %d %ss, cleaned %d, cost %.0f sim-ms\n",
		res.Confidence, res.Bound, len(res.IDs), unit,
		res.EngineStats.Cleaned, res.Clock.TotalMS())
	if fps <= 0 {
		fps = 30
	}
	for i, id := range res.IDs {
		sec := float64(id) / float64(fps)
		if res.IsWindow {
			sec = float64(id*res.WindowStride) / float64(fps)
		}
		fmt.Fprintf(r.out, "  #%-3d %s %-8d t=%8.1fs  score %.2f\n", i+1, unit, id, sec, res.Scores[i])
	}
}

func (r *REPL) help() {
	fmt.Fprint(r.out, `statements:
  SELECT TOP k FRAMES FROM dataset RANK BY udf(arg) [THRESHOLD p] [LIMIT FRAMES n] [SEED s] [PARALLEL w]
  SELECT TOP k WINDOWS OF n [EVERY m] FROM dataset RANK BY udf(arg) [...]
  SELECT STREAM TOP k ... FROM live-stream ...
                            register a continuous query on an attached live stream
  RANK BY udf(a) AND udf(b) per-source AND of the predicates' top-K sets
  FROM a, b                 run the same query over several videos
  EXPLAIN SELECT ...        describe the plan without running it
  EXPLAIN ANALYZE SELECT ...plan with the cost-based optimizer, run the
                            chosen plan, report predicted vs actual cost
scripts:
  statements separated by ';' execute as one coordinated plan graph:
  statements over the same (dataset, frames, udf, seed) share one
  ingestion and one label cache under a single serving budget, with
  results bit-identical to running them one at a time in order.
  an incomplete statement continues onto the next line.
commands:
  datasets                  list built-in datasets
  sessions                  list open ingestion sessions
  help                      this text
  quit                      leave the shell
the first query on a (dataset, udf) pair ingests it (Phase 1); later
queries reuse the index and every oracle label revealed so far.
`)
}

func (r *REPL) datasets() {
	fmt.Fprintf(r.out, "%-22s %-8s %12s\n", "name", "object", "paper-frames")
	for _, d := range video.Datasets() {
		fmt.Fprintf(r.out, "%-22s %-8s %12d\n", d.Name, d.Config.Class, d.PaperFrames)
	}
}

func (r *REPL) listSessions() {
	entries := r.ss.Entries()
	if len(entries) == 0 {
		fmt.Fprintln(r.out, "no sessions yet")
		return
	}
	for _, e := range entries {
		fmt.Fprintf(r.out, "%s: %d queries, %d cached labels, ingest %.0f sim-ms\n",
			e.Key, e.Queries, e.CachedLabels, e.IngestMS)
	}
}
