// Package repl implements the interactive EQL shell behind
// `cmd/everest -repl`. It is where the repository's multi-query machinery
// composes into a workflow: the first query against a (dataset, UDF) pair
// pays Phase 1 once by building an ingestion Index, and every later query
// in the same shell runs through a Session over that index — Phase 2
// only, sharing all previously revealed oracle labels. EXPLAIN statements
// describe plans without running them; EXPLAIN ANALYZE statements let the
// cost-based planner choose the engine knobs, run the chosen plan on the
// pair's session, and report predicted vs actual simulated cost.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	everest "github.com/everest-project/everest"
	"github.com/everest-project/everest/internal/eql"
	"github.com/everest-project/everest/internal/video"
)

// REPL holds the shell's state: one ingestion index + session per
// (dataset, frame count, UDF, seed) key, built lazily.
type REPL struct {
	out      io.Writer
	sessions map[string]*entry
}

type entry struct {
	ix       *everest.Index
	sess     *everest.Session
	ingestMS float64
}

// New returns an empty shell writing results to out.
func New(out io.Writer) *REPL {
	return &REPL{out: out, sessions: make(map[string]*entry)}
}

// Sessions returns how many (dataset, UDF) sessions the shell has opened.
func (r *REPL) Sessions() int { return len(r.sessions) }

// Run reads statements from in until EOF or a quit command, executing
// each line. Errors are printed, not fatal — a shell keeps going.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	fmt.Fprint(r.out, "everest> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch strings.ToLower(line) {
		case "quit", "exit", `\q`:
			fmt.Fprintln(r.out, "bye")
			return nil
		}
		if line != "" {
			if err := r.ExecLine(line); err != nil {
				fmt.Fprintf(r.out, "error: %v\n", err)
			}
		}
		fmt.Fprint(r.out, "everest> ")
	}
	fmt.Fprintln(r.out)
	return sc.Err()
}

// ExecLine executes one shell line: a dot-command (help, datasets,
// sessions), an EXPLAIN statement, or an EQL query.
func (r *REPL) ExecLine(line string) error {
	switch strings.ToLower(strings.TrimSpace(line)) {
	case "help", `\h`, "?":
		r.help()
		return nil
	case "datasets", `\d`:
		r.datasets()
		return nil
	case "sessions", `\s`:
		r.listSessions()
		return nil
	}
	q, err := eql.Parse(line)
	if err != nil {
		return err
	}
	if q.Analyze {
		// EXPLAIN ANALYZE runs on the shell's session for the bound pair,
		// ingesting it first if this is its first query — the planner then
		// inherits the index's cascade and chooses the Phase 2 knobs.
		plan, err := eql.Bind(q)
		if err != nil {
			return err
		}
		if plan.Workers > 1 {
			return fmt.Errorf("eql: EXPLAIN ANALYZE does not support PARALLEL scale-out; the planner sets procs itself")
		}
		ent, err := r.entryFor(plan)
		if err != nil {
			return err
		}
		rep, err := eql.AnalyzeOnSession(line, ent.ix, ent.sess, eql.AnalyzeOptions{})
		if err != nil {
			return err
		}
		fmt.Fprint(r.out, rep.String())
		return nil
	}
	if q.Explain {
		out, err := eql.Explain(line)
		if err != nil {
			return err
		}
		fmt.Fprint(r.out, out)
		return nil
	}
	plan, err := eql.Bind(q)
	if err != nil {
		return err
	}
	if plan.Workers > 1 {
		// Scale-out runs partitioned Phase 1 per query; it does not share
		// an index, so it bypasses the session machinery.
		res, err := everest.RunParallel(plan.Source, plan.UDF, plan.Config, plan.Workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "(scale-out: %d workers)\n", plan.Workers)
		r.printResult(&res.Result, plan)
		return nil
	}

	ent, err := r.entryFor(plan)
	if err != nil {
		return err
	}
	res, err := ent.sess.Query(plan.Config)
	if err != nil {
		return err
	}
	r.printResult(res, plan)
	return nil
}

// entryFor returns the shell's session for a bound plan's (dataset,
// frame count, UDF, seed) key, ingesting the pair's index on first use.
func (r *REPL) entryFor(plan *eql.Plan) (*entry, error) {
	key := fmt.Sprintf("%s|%d|%s|%d",
		plan.Source.Name(), plan.Source.NumFrames(), plan.UDF.Name(), plan.Config.Seed)
	if ent, ok := r.sessions[key]; ok {
		return ent, nil
	}
	fmt.Fprintf(r.out, "(ingesting %s for %s — one-off Phase 1)\n",
		plan.Source.Name(), plan.UDF.Name())
	ix, err := everest.BuildIndex(plan.Source, plan.UDF, plan.Config)
	if err != nil {
		return nil, err
	}
	sess, err := everest.NewSession(ix, plan.Source, plan.UDF)
	if err != nil {
		return nil, err
	}
	ent := &entry{ix: ix, sess: sess, ingestMS: ix.IngestMS()}
	r.sessions[key] = ent
	fmt.Fprintf(r.out, "(ingested in %.0f sim-ms; later queries pay Phase 2 only)\n", ent.ingestMS)
	return ent, nil
}

func (r *REPL) printResult(res *everest.Result, plan *eql.Plan) {
	unit := "frame"
	if res.IsWindow {
		unit = "window"
	}
	fmt.Fprintf(r.out, "confidence %.4f (%s bound), %d %ss, cleaned %d, cost %.0f sim-ms\n",
		res.Confidence, res.Bound, len(res.IDs), unit,
		res.EngineStats.Cleaned, res.Clock.TotalMS())
	fps := plan.Source.FPS()
	for i, id := range res.IDs {
		sec := float64(id) / float64(fps)
		if res.IsWindow {
			sec = float64(id*res.WindowStride) / float64(fps)
		}
		fmt.Fprintf(r.out, "  #%-3d %s %-8d t=%8.1fs  score %.2f\n", i+1, unit, id, sec, res.Scores[i])
	}
}

func (r *REPL) help() {
	fmt.Fprint(r.out, `statements:
  SELECT TOP k FRAMES FROM dataset RANK BY udf(arg) [THRESHOLD p] [LIMIT FRAMES n] [SEED s] [PARALLEL w]
  SELECT TOP k WINDOWS OF n [EVERY m] FROM dataset RANK BY udf(arg) [...]
  EXPLAIN SELECT ...        describe the plan without running it
  EXPLAIN ANALYZE SELECT ...plan with the cost-based optimizer, run the
                            chosen plan, report predicted vs actual cost
commands:
  datasets                  list built-in datasets
  sessions                  list open ingestion sessions
  help                      this text
  quit                      leave the shell
the first query on a (dataset, udf) pair ingests it (Phase 1); later
queries reuse the index and every oracle label revealed so far.
`)
}

func (r *REPL) datasets() {
	fmt.Fprintf(r.out, "%-22s %-8s %12s\n", "name", "object", "paper-frames")
	for _, d := range video.Datasets() {
		fmt.Fprintf(r.out, "%-22s %-8s %12d\n", d.Name, d.Config.Class, d.PaperFrames)
	}
}

func (r *REPL) listSessions() {
	if len(r.sessions) == 0 {
		fmt.Fprintln(r.out, "no sessions yet")
		return
	}
	keys := make([]string, 0, len(r.sessions))
	for key := range r.sessions {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ent := r.sessions[key]
		fmt.Fprintf(r.out, "%s: %d queries, %d cached labels, ingest %.0f sim-ms\n",
			key, ent.sess.Queries(), ent.sess.CachedLabels(), ent.ingestMS)
	}
}
