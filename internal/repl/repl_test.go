package repl

import (
	"bytes"
	"strings"
	"testing"
)

func TestCommands(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	for _, cmd := range []string{"help", "datasets", "sessions"} {
		if err := r.ExecLine(cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
	got := out.String()
	for _, want := range []string{"SELECT TOP", "Taipei-bus", "no sessions yet"} {
		if !strings.Contains(got, want) {
			t.Fatalf("command output missing %q:\n%s", want, got)
		}
	}
}

func TestExplainStatement(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	err := r.ExecLine("EXPLAIN SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 6000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "plan: everest top-5") {
		t.Fatalf("explain output wrong:\n%s", out.String())
	}
	if r.Sessions() != 0 {
		t.Fatal("EXPLAIN must not ingest anything")
	}
}

func TestExplainAnalyzeStatementRunsOnSession(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	err := r.ExecLine("EXPLAIN ANALYZE SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 4000 SEED 4")
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"ingesting", "chosen knobs", "predicted vs actual", "batch-size"} {
		if !strings.Contains(got, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, got)
		}
	}
	if r.Sessions() != 1 {
		t.Fatalf("%d sessions after EXPLAIN ANALYZE, want 1 — it must run on the shell session", r.Sessions())
	}
	// A later plain query on the same pair reuses the index and the
	// labels the analyzed run revealed.
	out.Reset()
	if err := r.ExecLine("SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 4000 SEED 4"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "ingesting") {
		t.Fatalf("query after EXPLAIN ANALYZE must reuse the session:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "cleaned 0") {
		t.Fatalf("repeat of the analyzed query should clean nothing:\n%s", out.String())
	}
}

func TestExplainAnalyzeRejectsParallel(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	err := r.ExecLine("EXPLAIN ANALYZE SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) PARALLEL 2 LIMIT FRAMES 4000")
	if err == nil || !strings.Contains(err.Error(), "PARALLEL") {
		t.Fatalf("PARALLEL under EXPLAIN ANALYZE should be rejected, got %v", err)
	}
	if r.Sessions() != 0 {
		t.Fatal("rejected statement must not ingest")
	}
}

func TestParseAndBindErrorsAreReturned(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	if err := r.ExecLine("SELECT nonsense"); err == nil {
		t.Fatal("parse error must surface")
	}
	if err := r.ExecLine("SELECT TOP 5 FRAMES FROM NoSuchVideo RANK BY count(car)"); err == nil {
		t.Fatal("bind error must surface")
	}
	if r.Sessions() != 0 {
		t.Fatal("failed statements must not leave sessions behind")
	}
}

func TestQueriesShareOneSession(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	stmt := "SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 4000 SEED 4"
	if err := r.ExecLine(stmt); err != nil {
		t.Fatal(err)
	}
	if r.Sessions() != 1 {
		t.Fatalf("%d sessions after first query, want 1", r.Sessions())
	}
	first := out.String()
	if !strings.Contains(first, "ingesting") {
		t.Fatalf("first query should announce ingestion:\n%s", first)
	}
	out.Reset()
	// The identical query again: same session, no new ingestion, zero
	// cleaning (the label cache covers every contender).
	if err := r.ExecLine(stmt); err != nil {
		t.Fatal(err)
	}
	second := out.String()
	if strings.Contains(second, "ingesting") {
		t.Fatalf("second query must reuse the session:\n%s", second)
	}
	if !strings.Contains(second, "cleaned 0") {
		t.Fatalf("repeat query should clean nothing:\n%s", second)
	}
	if r.Sessions() != 1 {
		t.Fatalf("%d sessions after repeat, want 1", r.Sessions())
	}
	out.Reset()
	if err := r.ExecLine("sessions"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 queries") {
		t.Fatalf("session listing wrong:\n%s", out.String())
	}
}

func TestRunLoopQuitAndErrorsKeepGoing(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	in := strings.NewReader("help\nSELECT garbage\nquit\n")
	if err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "error:") {
		t.Fatalf("shell should print statement errors and continue:\n%s", got)
	}
	if !strings.Contains(got, "bye") {
		t.Fatalf("quit should end the shell politely:\n%s", got)
	}
}

func TestRunLoopEOF(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	if err := r.Run(strings.NewReader("datasets\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Archie") {
		t.Fatal("dataset listing missing")
	}
}

func TestScriptStatementOnOneLine(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	err := r.ExecLine("SELECT TOP 5 FRAMES FROM Archie RANK BY count(car) LIMIT FRAMES 3000 SEED 3; " +
		"SELECT TOP 3 WINDOWS OF 30 FROM Archie RANK BY count(car) LIMIT FRAMES 3000 SEED 3")
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"script: 2 statements over 1 relation(s), 1 shared sub-plan unit(s)",
		"[1] SELECT TOP 5 FRAMES",
		"[2] SELECT TOP 3 WINDOWS OF 30",
		"frames, cleaned",
		"windows, cleaned",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("script output missing %q:\n%s", want, got)
		}
	}
	if r.Sessions() != 1 {
		t.Fatalf("%d sessions after a shared-relation script, want 1", r.Sessions())
	}
	// The shared ingest is announced exactly once.
	if strings.Count(got, "ingesting") != 1 {
		t.Fatalf("shared relation must ingest once:\n%s", got)
	}
}

// TestRunLoopMultiLineContinuation: an incomplete statement keeps
// buffering across lines until the parser stops reporting
// end-of-input, then the whole buffer executes as one script.
func TestRunLoopMultiLineContinuation(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	in := strings.NewReader(strings.Join([]string{
		"SELECT TOP 5 FRAMES FROM Archie",
		"RANK BY count(car) LIMIT FRAMES",
		"3000 SEED 3",
		"quit",
	}, "\n") + "\n")
	if err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "error:") {
		t.Fatalf("continuation lines must not surface as errors:\n%s", got)
	}
	if !strings.Contains(got, "5 frames, cleaned") {
		t.Fatalf("continued statement never ran:\n%s", got)
	}
	if r.Sessions() != 1 {
		t.Fatalf("%d sessions after the continued statement, want 1", r.Sessions())
	}
}

// TestRunLoopBlankLineFlushesBuffer: a blank line forces the pending
// buffer through the parser, so a genuinely broken statement errors
// out instead of trapping the shell in continuation mode.
func TestRunLoopBlankLineFlushesBuffer(t *testing.T) {
	var out bytes.Buffer
	r := New(&out)
	in := strings.NewReader("SELECT TOP 5 FRAMES FROM Archie\n\nquit\n")
	if err := r.Run(in); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "error:") {
		t.Fatalf("force-flushed incomplete statement should error:\n%s", got)
	}
	if !strings.Contains(got, "bye") {
		t.Fatalf("shell must keep going after the flush error:\n%s", got)
	}
	if r.Sessions() != 0 {
		t.Fatal("failed statement must not ingest")
	}
}
