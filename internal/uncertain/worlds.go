package uncertain

// This file implements possible-world semantics (§3, Eq. 1) by exhaustive
// enumeration. It is exponential in the number of uncertain tuples and
// exists as an independent test oracle for the closed-form Phase 2
// computations (Eq. 2–6); production code paths never call it.

// World is one instantiation of an uncertain relation: a level per tuple
// and the world's probability (the product of the chosen alternatives).
type World struct {
	// Levels[i] is the score level assigned to rel[i].
	Levels []int
	// Prob is Π Pr(rel[i] == Levels[i]).
	Prob float64
}

// EnumerateWorlds calls visit for every possible world of rel. Worlds with
// zero probability are skipped. The Levels slice is reused between calls;
// callers must copy it to retain it.
func EnumerateWorlds(rel Relation, visit func(World)) {
	levels := make([]int, len(rel))
	var rec func(i int, prob float64)
	rec = func(i int, prob float64) {
		if i == len(rel) {
			visit(World{Levels: levels, Prob: prob})
			return
		}
		d := rel[i].Dist
		for k, p := range d.P {
			if p == 0 {
				continue
			}
			levels[i] = d.Min + k
			rec(i+1, prob*p)
		}
	}
	rec(0, 1)
}

// WorldCount returns the number of possible worlds (product of support
// sizes), for guarding test sizes.
func WorldCount(rel Relation) int {
	n := 1
	for _, x := range rel {
		n *= len(x.Dist.P)
		if n > 1<<30 {
			return 1 << 30
		}
	}
	return n
}

// BruteTopkProb computes, by possible-world enumeration, the probability
// that no tuple of rel exceeds the threshold level sk — the event under
// which a certain result set with K-th score sk is the exact Top-K
// (Eq. 2, with ties allowed per the paper's footnote). rel must contain
// only the *uncertain* tuples.
func BruteTopkProb(rel Relation, sk int) float64 {
	total := 0.0
	EnumerateWorlds(rel, func(w World) {
		for _, lvl := range w.Levels {
			if lvl > sk {
				return
			}
		}
		total += w.Prob
	})
	return total
}
