package uncertain

import "math"

// JointCDF maintains H(t) = Π_{f ∈ U} F_f(t) over a mutable set U of
// uncertain tuples (§3.3.1, Eq. 3). Products over 10⁵–10⁶ frames underflow
// float64 almost immediately, so H is kept in log space with an explicit
// per-level count of zero factors: H(t) = 0 exactly when some member has
// F_f(t) == 0 (that frame is certain to exceed t).
//
// Building over n tuples costs O(Σ support). Removing a tuple (when Phase 2
// cleans it) costs O(its support + its Min − lo). Queries are O(1).
type JointCDF struct {
	lo, hi int
	// zeros[i] counts members with F_f(lo+i) == 0.
	zeros []int
	// logsum[i] = Σ log F_f(lo+i) over members with F_f > 0 and < 1.
	logsum []float64
	n      int
}

// NewJointCDF creates an accumulator covering levels [lo, hi].
func NewJointCDF(lo, hi int) *JointCDF {
	if hi < lo {
		hi = lo
	}
	return &JointCDF{
		lo:     lo,
		hi:     hi,
		zeros:  make([]int, hi-lo+1),
		logsum: make([]float64, hi-lo+1),
	}
}

// NewJointCDFFromRelation builds H over all uncertain tuples of rel,
// sized to the relation's level range.
func NewJointCDFFromRelation(rel Relation) *JointCDF {
	lo, hi := relationRange(rel)
	j := NewJointCDF(lo, hi)
	for _, x := range rel {
		if !x.Dist.IsCertain() {
			j.Add(x.Dist)
		}
	}
	return j
}

// Lo returns the lowest covered level.
func (j *JointCDF) Lo() int { return j.lo }

// Hi returns the highest covered level.
func (j *JointCDF) Hi() int { return j.hi }

// Len returns the number of member tuples.
func (j *JointCDF) Len() int { return j.n }

// Add inserts a tuple's distribution into the product.
func (j *JointCDF) Add(d Dist) { j.apply(d, +1) }

// Remove deletes a tuple's distribution from the product. The distribution
// must have been added before; removal exactly reverses the logs that Add
// contributed.
func (j *JointCDF) Remove(d Dist) { j.apply(d, -1) }

func (j *JointCDF) apply(d Dist, sign int) {
	j.n += sign
	// Levels below d.Min: F == 0.
	zHi := min(d.Min-1, j.hi)
	for t := j.lo; t <= zHi; t++ {
		j.zeros[t-j.lo] += sign
	}
	// Levels in [d.Min, d.Max-1]: 0 < F < 1.
	from := max(d.Min, j.lo)
	to := min(d.Max()-1, j.hi)
	for t := from; t <= to; t++ {
		j.logsum[t-j.lo] += float64(sign) * d.LogCDF(t)
	}
	// Levels >= d.Max: F == 1, no contribution.
}

// LogAt returns log H(t); −Inf when H(t) == 0.
func (j *JointCDF) LogAt(t int) float64 {
	if j.n == 0 {
		return 0 // empty product
	}
	if t >= j.hi {
		// hi bounds every member's Max, so F_f(t) == 1 for all members.
		return 0
	}
	if t < j.lo {
		return math.Inf(-1)
	}
	if j.zeros[t-j.lo] > 0 {
		return math.Inf(-1)
	}
	// H is a product of CDFs, so log H <= 0; clamp away removal drift.
	return math.Min(j.logsum[t-j.lo], 0)
}

// At returns H(t) = Π F_f(t).
func (j *JointCDF) At(t int) float64 {
	return math.Exp(j.LogAt(t))
}

// AtExcluding returns Π_{g ∈ U \ {f}} F_g(t) for a member f with
// distribution d. Unlike dividing At(t) by F_f(t), this stays well defined
// when F_f(t) == 0 (the 0/0 case of Eq. 5's third branch): the zero factor
// and the log contribution of f are subtracted structurally.
func (j *JointCDF) AtExcluding(d Dist, t int) float64 {
	if j.n <= 1 {
		return 1 // excluding the only member leaves the empty product
	}
	if t >= j.hi {
		return 1
	}
	if t < j.lo {
		// Every other member also has Min >= lo > t, so some factor is 0.
		return 0
	}
	zeros := j.zeros[t-j.lo]
	ls := j.logsum[t-j.lo]
	if t < d.Min {
		zeros--
	} else if t < d.Max() {
		ls -= d.LogCDF(t)
	}
	if zeros > 0 {
		return 0
	}
	return math.Exp(math.Min(ls, 0))
}
