package uncertain

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/xrand"
)

func TestQuantizeSingleGaussian(t *testing.T) {
	m := Mixture{{Weight: 1, Mean: 5, Sigma: 1}}
	d, err := Quantize(m, DefaultCountingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mode at 5.
	best, bestP := 0, 0.0
	for lvl := d.Min; lvl <= d.Max(); lvl++ {
		if p := d.Pr(lvl); p > bestP {
			best, bestP = lvl, p
		}
	}
	if best != 5 {
		t.Fatalf("mode at %d, want 5", best)
	}
	// Mean close to 5, variance close to 1 (bucketing + truncation shave a
	// little).
	if math.Abs(d.Mean()-5) > 0.05 {
		t.Fatalf("mean %v, want ~5", d.Mean())
	}
	if math.Abs(d.Variance()-1) > 0.2 {
		t.Fatalf("variance %v, want ~1", d.Variance())
	}
}

func TestQuantizeTruncatesAt3Sigma(t *testing.T) {
	m := Mixture{{Weight: 1, Mean: 50, Sigma: 2}}
	d, err := Quantize(m, DefaultCountingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Min < 44 || d.Max() > 56 {
		t.Fatalf("support [%d,%d] exceeds 3σ around 50", d.Min, d.Max())
	}
}

func TestQuantizeClampsNegativeSupport(t *testing.T) {
	// Counting scores cannot be negative; a Gaussian centred near 0 must be
	// clamped at level 0.
	m := Mixture{{Weight: 1, Mean: 0.2, Sigma: 1.5}}
	d, err := Quantize(m, DefaultCountingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Min < 0 {
		t.Fatalf("support contains negative level %d", d.Min)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeEntirelyBelowClamp(t *testing.T) {
	m := Mixture{{Weight: 1, Mean: -50, Sigma: 1}}
	d, err := Quantize(m, DefaultCountingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsCertain() || d.Min != 0 {
		t.Fatalf("fully-clamped mixture should collapse to level 0, got %+v", d)
	}
}

func TestQuantizeEntirelyAboveClamp(t *testing.T) {
	opt := DefaultCountingOptions()
	opt.MaxLevel = 10
	m := Mixture{{Weight: 1, Mean: 50, Sigma: 1}}
	d, err := Quantize(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsCertain() || d.Min != 10 {
		t.Fatalf("fully-clamped mixture should collapse to level 10, got %+v", d)
	}
}

func TestQuantizeMixtureBimodal(t *testing.T) {
	m := Mixture{
		{Weight: 0.5, Mean: 2, Sigma: 0.5},
		{Weight: 0.5, Mean: 10, Sigma: 0.5},
	}
	d, err := Quantize(m, DefaultCountingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-6) > 0.1 {
		t.Fatalf("bimodal mean %v, want ~6", d.Mean())
	}
	if d.Pr(2) < 0.2 || d.Pr(10) < 0.2 {
		t.Fatalf("modes not preserved: Pr(2)=%v Pr(10)=%v", d.Pr(2), d.Pr(10))
	}
	if d.Pr(6) > 0.05 {
		t.Fatalf("valley too heavy: Pr(6)=%v", d.Pr(6))
	}
}

func TestQuantizeStepSize(t *testing.T) {
	// Depth-style continuous score with step 0.5: score 3.7 → level 7,
	// wait: round(3.7/0.5) = round(7.4) = 7.
	if got := LevelOf(3.7, 0.5); got != 7 {
		t.Fatalf("LevelOf(3.7, 0.5) = %d, want 7", got)
	}
	if got := LevelValue(7, 0.5); got != 3.5 {
		t.Fatalf("LevelValue(7, 0.5) = %v, want 3.5", got)
	}
	m := Mixture{{Weight: 1, Mean: 3.7, Sigma: 0.3}}
	opt := QuantizeOptions{Step: 0.5, MinLevel: 0, MaxLevel: math.MaxInt}
	d, err := Quantize(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-7.4) > 0.2 {
		t.Fatalf("quantized mean level %v, want ~7.4", d.Mean())
	}
}

func TestQuantizeRejectsBadInput(t *testing.T) {
	good := Mixture{{Weight: 1, Mean: 0, Sigma: 1}}
	if _, err := Quantize(good, QuantizeOptions{Step: 0}); err == nil {
		t.Fatal("zero step should fail")
	}
	if _, err := Quantize(Mixture{}, DefaultCountingOptions()); err == nil {
		t.Fatal("empty mixture should fail")
	}
	bad := Mixture{{Weight: 1, Mean: 0, Sigma: -1}}
	if _, err := Quantize(bad, DefaultCountingOptions()); err == nil {
		t.Fatal("negative sigma should fail")
	}
	badW := Mixture{{Weight: 0.5, Mean: 0, Sigma: 1}}
	if _, err := Quantize(badW, DefaultCountingOptions()); err == nil {
		t.Fatal("weights not summing to 1 should fail")
	}
}

func TestQuantizeNormalDegenerate(t *testing.T) {
	d, err := QuantizeNormal(4.2, 0, QuantizeOptions{Step: 1, MinLevel: 0, MaxLevel: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsCertain() || d.Min != 4 {
		t.Fatalf("degenerate normal should be point mass at 4, got %+v", d)
	}
}

func TestMixtureMeanVariance(t *testing.T) {
	m := Mixture{
		{Weight: 0.3, Mean: 0, Sigma: 1},
		{Weight: 0.7, Mean: 10, Sigma: 2},
	}
	wantMean := 7.0
	if math.Abs(m.Mean()-wantMean) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", m.Mean(), wantMean)
	}
	// Var = Σπ(σ²+μ²) − μ̄² = 0.3·1 + 0.7·(4+100) − 49 = 0.3+72.8−49 = 24.1
	if math.Abs(m.Variance()-24.1) > 1e-9 {
		t.Fatalf("Variance = %v, want 24.1", m.Variance())
	}
}

// randomMixture generates a mixture with positive sigmas and normalized
// weights.
func randomMixture(r *xrand.RNG) Mixture {
	n := 1 + r.Intn(4)
	m := make(Mixture, n)
	sum := 0.0
	for i := range m {
		w := 0.05 + r.Float64()
		m[i] = GaussianComponent{
			Weight: w,
			Mean:   r.Float64() * 30,
			Sigma:  0.2 + 3*r.Float64(),
		}
		sum += w
	}
	for i := range m {
		m[i].Weight /= sum
	}
	return m
}

func TestQuantizePropertyValidAndMeanPreserving(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m := randomMixture(r)
		d, err := Quantize(m, DefaultCountingOptions())
		if err != nil {
			return false
		}
		if d.Validate() != nil {
			return false
		}
		// The clamp at level 0 biases the mean upward for mixtures with
		// substantial negative mass; allow for that plus bucketing error.
		negMass := 0.0
		for _, c := range m {
			negMass += c.Weight * stdNormCDF((0-c.Mean)/c.Sigma)
		}
		if negMass > 0.02 {
			return d.Mean() >= m.Mean()-1
		}
		return math.Abs(d.Mean()-m.Mean()) < 0.75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStdNormCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.841345},
		{-1, 0.158655},
		{3, 0.998650},
	}
	for _, c := range cases {
		if got := stdNormCDF(c.x); math.Abs(got-c.want) > 1e-5 {
			t.Fatalf("Φ(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
