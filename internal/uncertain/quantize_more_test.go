package uncertain

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/xrand"
)

func TestLevelRoundTripProperty(t *testing.T) {
	// LevelValue(LevelOf(x)) is within half a step of x.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		step := 0.1 + 2*r.Float64()
		x := (r.Float64() - 0.3) * 100
		lvl := LevelOf(x, step)
		back := LevelValue(lvl, step)
		return math.Abs(back-x) <= step/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeNormalMoments(t *testing.T) {
	// Quantizing N(μ,σ) preserves moments up to bucketing + truncation.
	cases := []struct{ mu, sigma, step float64 }{
		{10, 2, 1},
		{25, 0.8, 0.5},
		{6, 3, 1},
	}
	for _, c := range cases {
		d, err := QuantizeNormal(c.mu, c.sigma, QuantizeOptions{Step: c.step, MinLevel: 0, MaxLevel: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		mean := d.Mean() * c.step
		sd := math.Sqrt(d.Variance()) * c.step
		if math.Abs(mean-c.mu) > 0.15*c.sigma {
			t.Fatalf("N(%v,%v) step %v: mean %v", c.mu, c.sigma, c.step, mean)
		}
		// 3σ truncation shaves ~1% of the sd.
		if math.Abs(sd-c.sigma) > 0.12*c.sigma+c.step/2 {
			t.Fatalf("N(%v,%v) step %v: sd %v", c.mu, c.sigma, c.step, sd)
		}
	}
}

func TestQuantizeMassConservedProperty(t *testing.T) {
	// However the clamp slices the mixture, the result is normalized.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m := randomMixture(r)
		opt := DefaultCountingOptions()
		opt.MaxLevel = 1 + r.Intn(40)
		d, err := Quantize(m, opt)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range d.P {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9 && d.Min >= 0 && d.Max() <= opt.MaxLevel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCertainLevelArithmetic(t *testing.T) {
	d := Certain(-4)
	if d.Mean() != -4 || d.Variance() != 0 {
		t.Fatalf("Certain(-4) moments wrong: %v %v", d.Mean(), d.Variance())
	}
	if d.LogCDF(-4) != 0 {
		t.Fatal("LogCDF at the point mass should be 0")
	}
}

func TestWorldCountOverflowGuard(t *testing.T) {
	// 40 tuples × 3 alternatives would overflow; the guard caps it.
	rel := make(Relation, 40)
	for i := range rel {
		rel[i] = XTuple{ID: i, Dist: MustDist(0, []float64{0.3, 0.3, 0.4})}
	}
	if got := WorldCount(rel); got != 1<<30 {
		t.Fatalf("WorldCount cap = %d", got)
	}
}

func TestBruteTopkProbEdges(t *testing.T) {
	rel := Relation{{ID: 0, Dist: MustDist(2, []float64{0.5, 0.5})}}
	if p := BruteTopkProb(rel, 1); p != 0 {
		t.Fatalf("below support: %v", p)
	}
	if p := BruteTopkProb(rel, 3); p != 1 {
		t.Fatalf("above support: %v", p)
	}
	if p := BruteTopkProb(rel, 2); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("mid support: %v", p)
	}
	if p := BruteTopkProb(nil, 0); p != 1 {
		t.Fatalf("empty relation: %v", p)
	}
}
