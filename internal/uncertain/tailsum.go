package uncertain

// TailSum maintains T(t) = Σ_{f ∈ U} (1 − F_f(t)) over a mutable set U of
// uncertain tuples. It is the Bonferroni (union-bound) counterpart of
// JointCDF: by Boole's inequality,
//
//	Pr(∃ f ∈ U: S_f > t) ≤ T(t)
//
// holds under arbitrary dependence between the tuples, so
//
//	p̂ ≥ 1 − T(S_k)
//
// is a valid (conservative) confidence lower bound even when the x-tuple
// independence assumption of §2 fails — which it does for overlapping
// sliding windows, whose scores share frames. Phase 2 run with this bound
// keeps its guarantee at the cost of extra cleaning.
//
// The accumulator mirrors JointCDF's layout: per-level sums over the
// relation's level range, O(support + range-below-Min) add/remove, O(1)
// queries. Unlike JointCDF no log-space care is needed — T is a sum, not a
// product — but removal must reverse exactly what insertion added, so
// contributions are recomputed from the member's distribution on both
// sides.
type TailSum struct {
	lo, hi int
	// sum[i] = Σ (1 − F_f(lo+i)) over members.
	sum []float64
	n   int
}

// NewTailSum creates an accumulator covering levels [lo, hi].
func NewTailSum(lo, hi int) *TailSum {
	if hi < lo {
		hi = lo
	}
	return &TailSum{
		lo:  lo,
		hi:  hi,
		sum: make([]float64, hi-lo+1),
	}
}

// NewTailSumFromRelation builds T over all uncertain tuples of rel, sized
// to the relation's level range.
func NewTailSumFromRelation(rel Relation) *TailSum {
	lo, hi := relationRange(rel)
	ts := NewTailSum(lo, hi)
	for _, x := range rel {
		if !x.Dist.IsCertain() {
			ts.Add(x.Dist)
		}
	}
	return ts
}

// Lo returns the lowest covered level.
func (ts *TailSum) Lo() int { return ts.lo }

// Hi returns the highest covered level.
func (ts *TailSum) Hi() int { return ts.hi }

// Len returns the number of member tuples.
func (ts *TailSum) Len() int { return ts.n }

// Add inserts a tuple's distribution into the sum.
func (ts *TailSum) Add(d Dist) { ts.apply(d, +1) }

// Remove deletes a tuple's distribution from the sum. The distribution
// must have been added before.
func (ts *TailSum) Remove(d Dist) { ts.apply(d, -1) }

func (ts *TailSum) apply(d Dist, sign int) {
	ts.n += sign
	// Levels below d.Min: 1 − F == 1.
	zHi := min(d.Min-1, ts.hi)
	for t := ts.lo; t <= zHi; t++ {
		ts.sum[t-ts.lo] += float64(sign)
	}
	// Levels in [d.Min, d.Max−1]: 0 < 1 − F < 1.
	from := max(d.Min, ts.lo)
	to := min(d.Max()-1, ts.hi)
	for t := from; t <= to; t++ {
		ts.sum[t-ts.lo] += float64(sign) * (1 - d.CDF(t))
	}
	// Levels ≥ d.Max: 1 − F == 0, no contribution.
}

// At returns T(t) = Σ (1 − F_f(t)), clamped below at 0 to absorb removal
// round-off.
func (ts *TailSum) At(t int) float64 {
	if ts.n == 0 || t >= ts.hi {
		return 0
	}
	if t < ts.lo {
		return float64(ts.n)
	}
	s := ts.sum[t-ts.lo]
	if s < 0 {
		return 0
	}
	return s
}

// AtExcluding returns Σ_{g ∈ U \ {f}} (1 − F_g(t)) for a member f with
// distribution d.
func (ts *TailSum) AtExcluding(d Dist, t int) float64 {
	if ts.n <= 1 {
		return 0
	}
	if t >= ts.hi {
		return 0
	}
	if t < ts.lo {
		return float64(ts.n - 1)
	}
	s := ts.sum[t-ts.lo]
	if t < d.Min {
		s--
	} else if t < d.Max() {
		s -= 1 - d.CDF(t)
	}
	if s < 0 {
		return 0
	}
	return s
}

// relationRange returns the [lo, hi] level span of a relation, (0,0) when
// empty.
func relationRange(rel Relation) (lo, hi int) {
	lo, hi = int(^uint(0)>>1), -int(^uint(0)>>1)-1
	for _, x := range rel {
		lo = min(lo, x.Dist.Min)
		hi = max(hi, x.Dist.Max())
	}
	if lo > hi {
		lo, hi = 0, 0
	}
	return lo, hi
}
