package uncertain

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/xrand"
)

func TestNewDistNormalizes(t *testing.T) {
	d, err := NewDist(2, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Pr(2)-0.25) > 1e-12 || math.Abs(d.Pr(3)-0.75) > 1e-12 {
		t.Fatalf("normalization wrong: %v", d.P)
	}
}

func TestNewDistTrims(t *testing.T) {
	d, err := NewDist(0, []float64{0, 0, 0.5, 0.5, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Min != 2 || d.Max() != 3 {
		t.Fatalf("trim wrong: Min=%d Max=%d", d.Min, d.Max())
	}
}

func TestNewDistRejectsInvalid(t *testing.T) {
	cases := [][]float64{
		{},
		{0, 0},
		{-0.1, 1.1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, probs := range cases {
		if _, err := NewDist(0, probs); err == nil {
			t.Fatalf("NewDist(%v) should fail", probs)
		}
	}
}

func TestCertain(t *testing.T) {
	d := Certain(7)
	if !d.IsCertain() || d.Min != 7 || d.Pr(7) != 1 {
		t.Fatalf("Certain(7) wrong: %+v", d)
	}
	if d.CDF(6) != 0 || d.CDF(7) != 1 || d.CDF(100) != 1 {
		t.Fatal("Certain CDF wrong")
	}
}

func TestCDFBounds(t *testing.T) {
	d := MustDist(5, []float64{0.2, 0.3, 0.5})
	if d.CDF(4) != 0 {
		t.Fatal("CDF below Min should be 0")
	}
	if d.CDF(7) != 1 || d.CDF(1000) != 1 {
		t.Fatal("CDF at/above Max should be 1")
	}
	if math.Abs(d.CDF(5)-0.2) > 1e-12 || math.Abs(d.CDF(6)-0.5) > 1e-12 {
		t.Fatal("interior CDF wrong")
	}
}

func TestLogCDF(t *testing.T) {
	d := MustDist(0, []float64{0.5, 0.5})
	if !math.IsInf(d.LogCDF(-1), -1) {
		t.Fatal("LogCDF below support should be -Inf")
	}
	if math.Abs(d.LogCDF(0)-math.Log(0.5)) > 1e-12 {
		t.Fatal("LogCDF wrong")
	}
	if d.LogCDF(1) != 0 {
		t.Fatal("LogCDF at Max should be 0")
	}
}

func TestMeanVariance(t *testing.T) {
	d := MustDist(0, []float64{0.5, 0, 0.5}) // levels 0 and 2... trims? middle zero is interior, kept.
	if math.Abs(d.Mean()-1) > 1e-12 {
		t.Fatalf("Mean = %v, want 1", d.Mean())
	}
	if math.Abs(d.Variance()-1) > 1e-12 {
		t.Fatalf("Variance = %v, want 1", d.Variance())
	}
}

// randomDist builds a small random distribution for property tests.
func randomDist(r *xrand.RNG, maxSupport, maxMin int) Dist {
	n := 1 + r.Intn(maxSupport)
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = r.Float64()
	}
	// Ensure ends are nonzero so Min/Max are predictable.
	probs[0] += 0.01
	probs[n-1] += 0.01
	return MustDist(r.Intn(maxMin+1), probs)
}

func TestDistValidateProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		d := randomDist(r, 8, 10)
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMatchesPrefixSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		d := randomDist(r, 10, 5)
		acc := 0.0
		for lvl := d.Min; lvl <= d.Max(); lvl++ {
			acc += d.Pr(lvl)
			if math.Abs(d.CDF(lvl)-math.Min(acc, 1)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDist(xrand.New(seed), 12, 20)
		return d.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
