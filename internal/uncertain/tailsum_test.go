package uncertain

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/xrand"
)

func TestTailSumMatchesDirectSum(t *testing.T) {
	dists := []Dist{
		MustDist(0, []float64{0.5, 0.5}),
		MustDist(1, []float64{0.2, 0.3, 0.5}),
		MustDist(0, []float64{0.9, 0.1}),
	}
	ts := NewTailSum(0, 3)
	for _, d := range dists {
		ts.Add(d)
	}
	for lvl := -1; lvl <= 4; lvl++ {
		want := 0.0
		for _, d := range dists {
			want += 1 - d.CDF(lvl)
		}
		if got := ts.At(lvl); math.Abs(got-want) > 1e-12 {
			t.Fatalf("T(%d) = %v, want %v", lvl, got, want)
		}
	}
}

func TestTailSumBelowRangeCountsMembers(t *testing.T) {
	ts := NewTailSum(3, 8)
	ts.Add(MustDist(4, []float64{0.5, 0.5}))
	ts.Add(MustDist(6, []float64{1}))
	if got := ts.At(1); got != 2 {
		t.Fatalf("T below range = %v, want member count 2", got)
	}
	if got := ts.At(100); got != 0 {
		t.Fatalf("T above range = %v, want 0", got)
	}
}

func TestTailSumRemoveRestores(t *testing.T) {
	r := xrand.New(7)
	dists := make([]Dist, 20)
	for i := range dists {
		dists[i] = randomDist(r, 6, 8)
	}
	ts := NewTailSum(0, 20)
	for _, d := range dists {
		ts.Add(d)
	}
	for i := 0; i < 10; i++ {
		ts.Remove(dists[i])
	}
	for lvl := 0; lvl <= 20; lvl++ {
		want := 0.0
		for _, d := range dists[10:] {
			want += 1 - d.CDF(lvl)
		}
		if got := ts.At(lvl); math.Abs(got-want) > 1e-9 {
			t.Fatalf("T(%d) = %v, want %v after removals", lvl, got, want)
		}
	}
	if ts.Len() != 10 {
		t.Fatalf("Len = %d, want 10", ts.Len())
	}
}

func TestTailSumEmptyIsZero(t *testing.T) {
	ts := NewTailSum(0, 5)
	for lvl := -3; lvl <= 8; lvl++ {
		if ts.At(lvl) != 0 {
			t.Fatalf("empty T(%d) = %v, want 0", lvl, ts.At(lvl))
		}
	}
}

func TestTailSumFromRelationSkipsCertain(t *testing.T) {
	rel := Relation{
		{ID: 0, Dist: Certain(3)},
		{ID: 1, Dist: MustDist(0, []float64{0.5, 0.5})},
		{ID: 2, Dist: Certain(7)},
	}
	ts := NewTailSumFromRelation(rel)
	if ts.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (certain tuples excluded)", ts.Len())
	}
	if math.Abs(ts.At(0)-0.5) > 1e-12 {
		t.Fatalf("T(0) = %v, want 0.5", ts.At(0))
	}
}

func TestTailSumAtExcluding(t *testing.T) {
	a := MustDist(0, []float64{0.5, 0.5})
	b := MustDist(1, []float64{0.2, 0.3, 0.5})
	ts := NewTailSum(0, 4)
	ts.Add(a)
	ts.Add(b)
	for lvl := -1; lvl <= 5; lvl++ {
		want := 1 - b.CDF(lvl)
		if got := ts.AtExcluding(a, lvl); math.Abs(got-want) > 1e-12 {
			t.Fatalf("T\\a(%d) = %v, want %v", lvl, got, want)
		}
	}
	ts.Remove(b)
	if got := ts.AtExcluding(a, 0); got != 0 {
		t.Fatalf("excluding the only member should give 0, got %v", got)
	}
}

// TestUnionBoundIsValidLowerBound verifies the Bonferroni inequality this
// accumulator exists for: 1 − T(t) ≤ Pr(all ≤ t) for independent tuples
// (the only case we can enumerate), for random small relations.
func TestUnionBoundIsValidLowerBound(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(5)
		rel := make(Relation, n)
		for i := range rel {
			rel[i] = XTuple{ID: i, Dist: randomDist(r, 4, 6)}
		}
		var unc Relation
		for _, x := range rel {
			if !x.Dist.IsCertain() {
				unc = append(unc, x)
			}
		}
		ts := NewTailSumFromRelation(rel)
		for lvl := -1; lvl <= 11; lvl++ {
			exact := BruteTopkProb(unc, lvl)
			lower := 1 - ts.At(lvl)
			if lower > exact+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionBoundTightWhenTailsSmall: for a single uncertain tuple the
// union bound is exact; with tiny tails it is within the sum of pairwise
// products of the exact value.
func TestUnionBoundTightWhenTailsSmall(t *testing.T) {
	d := MustDist(0, []float64{0.99, 0.01})
	ts := NewTailSum(0, 2)
	ts.Add(d)
	if got, want := 1-ts.At(0), d.CDF(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("single-member union bound = %v, want exact %v", got, want)
	}
	// Two members with tail ε each: exact = (1−ε)², bound = 1−2ε; the gap
	// is ε² — second-order small.
	ts.Add(d)
	exact := d.CDF(0) * d.CDF(0)
	bound := 1 - ts.At(0)
	if gap := exact - bound; gap < 0 || gap > 1e-4+1e-12 {
		t.Fatalf("gap = %v, want within ε² = 1e-4", gap)
	}
}

func TestTailSumExcludingNeverNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(6)
		dists := make([]Dist, n)
		ts := NewTailSum(0, 12)
		for i := range dists {
			dists[i] = randomDist(r, 5, 7)
			ts.Add(dists[i])
		}
		for lvl := -2; lvl <= 14; lvl++ {
			if ts.At(lvl) < 0 {
				return false
			}
			for _, d := range dists {
				if ts.AtExcluding(d, lvl) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
