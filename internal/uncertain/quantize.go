package uncertain

import (
	"fmt"
	"math"
)

// GaussianComponent is one component of a Gaussian mixture emitted by the
// CMDN's MDN layer: weight π, mean μ and standard deviation σ.
type GaussianComponent struct {
	Weight float64
	Mean   float64
	Sigma  float64
}

// Mixture is a Gaussian mixture density over raw (unquantized) scores.
type Mixture []GaussianComponent

// Mean returns the mixture mean Σ π_j μ_j (the "CMDN-only" baseline ranks
// by this value).
func (m Mixture) Mean() float64 {
	s := 0.0
	for _, c := range m {
		s += c.Weight * c.Mean
	}
	return s
}

// Variance returns the total mixture variance Σ π_j (σ_j² + μ_j²) − μ̄²,
// the quantity used for window aggregation in Eq. 9.
func (m Mixture) Variance() float64 {
	mu := m.Mean()
	s := 0.0
	for _, c := range m {
		s += c.Weight * (c.Sigma*c.Sigma + c.Mean*c.Mean)
	}
	v := s - mu*mu
	if v < 0 {
		v = 0 // float drift on near-degenerate mixtures
	}
	return v
}

// Validate checks that weights are a distribution and sigmas are positive.
func (m Mixture) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("uncertain: empty mixture")
	}
	sum := 0.0
	for _, c := range m {
		if c.Weight < 0 || math.IsNaN(c.Weight) {
			return fmt.Errorf("uncertain: invalid weight %v", c.Weight)
		}
		if c.Sigma <= 0 || math.IsNaN(c.Sigma) {
			return fmt.Errorf("uncertain: invalid sigma %v", c.Sigma)
		}
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("uncertain: weights sum to %v", sum)
	}
	return nil
}

// QuantizeOptions controls mixture quantization (§3.2).
type QuantizeOptions struct {
	// Step is the quantization step size. Counting scoring functions use 1;
	// other scoring functions must provide it when the UDF is defined.
	Step float64
	// MinLevel clamps the support from below; counting queries use 0 so the
	// support is the non-negative integers. Use math.MinInt to disable.
	MinLevel int
	// MaxLevel clamps the support from above. Use math.MaxInt to disable.
	MaxLevel int
	// TruncSigma is the truncation radius in standard deviations. The paper
	// follows Chopin [17] and truncates at 3σ, redistributing the tail mass
	// evenly over the retained buckets. Zero means 3.
	TruncSigma float64
}

// DefaultCountingOptions returns the quantization used by the default
// object-counting UDF: unit step, non-negative support, 3σ truncation.
func DefaultCountingOptions() QuantizeOptions {
	return QuantizeOptions{Step: 1, MinLevel: 0, MaxLevel: math.MaxInt, TruncSigma: 3}
}

// stdNormCDF is Φ(x) for the standard normal.
func stdNormCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// Quantize converts a Gaussian mixture into a discrete level distribution:
// each component is truncated at ±TruncSigma·σ with the clipped tail mass
// redistributed evenly over that component's retained buckets, then bucket
// masses Φ((b+½)·step) − Φ((b−½)·step) are accumulated per level and the
// result normalized. It returns an error when the mixture is invalid or no
// bucket within [MinLevel, MaxLevel] receives mass.
func Quantize(m Mixture, opt QuantizeOptions) (Dist, error) {
	if err := m.Validate(); err != nil {
		return Dist{}, err
	}
	if opt.Step <= 0 {
		return Dist{}, fmt.Errorf("uncertain: quantization step %v must be positive", opt.Step)
	}
	trunc := opt.TruncSigma
	if trunc == 0 {
		trunc = 3
	}

	// Determine the level range spanned by any component after truncation.
	lo, hi := math.MaxInt, math.MinInt
	for _, c := range m {
		l := levelOf(c.Mean-trunc*c.Sigma, opt.Step)
		h := levelOf(c.Mean+trunc*c.Sigma, opt.Step)
		lo = min(lo, l)
		hi = max(hi, h)
	}
	lo = max(lo, opt.MinLevel)
	hi = min(hi, opt.MaxLevel)
	if lo > hi {
		// The whole truncated mixture lies outside the clamp; collapse to
		// the nearest boundary level.
		b := opt.MinLevel
		if levelOf(m.Mean(), opt.Step) > opt.MaxLevel {
			b = opt.MaxLevel
		}
		return Certain(b), nil
	}

	probs := make([]float64, hi-lo+1)
	for _, c := range m {
		cl := max(levelOf(c.Mean-trunc*c.Sigma, opt.Step), lo)
		ch := min(levelOf(c.Mean+trunc*c.Sigma, opt.Step), hi)
		if cl > ch {
			// Component entirely clamped away: dump its mass on the nearest
			// retained boundary so weight is conserved.
			b := lo
			if levelOf(c.Mean, opt.Step) > hi {
				b = hi
			}
			probs[b-lo] += c.Weight
			continue
		}
		// Tail mass clipped by the ±truncσ truncation, spread evenly
		// (the paper: "set to zero and evenly distributed to the rest").
		tail := 2 * (1 - stdNormCDF(trunc))
		even := tail / float64(ch-cl+1)
		var acc float64
		for b := cl; b <= ch; b++ {
			// Mass of bucket b: Gaussian mass in [(b-0.5)step, (b+0.5)step],
			// clipped to the truncation interval. Boundary buckets absorb
			// everything beyond them inside the truncation radius.
			loX := (float64(b) - 0.5) * opt.Step
			hiX := (float64(b) + 0.5) * opt.Step
			zLo := (loX - c.Mean) / c.Sigma
			zHi := (hiX - c.Mean) / c.Sigma
			if b == cl {
				zLo = -trunc
			}
			if b == ch {
				zHi = trunc
			}
			zLo = math.Max(zLo, -trunc)
			zHi = math.Min(zHi, trunc)
			mass := 0.0
			if zHi > zLo {
				mass = stdNormCDF(zHi) - stdNormCDF(zLo)
			}
			probs[b-lo] += c.Weight * (mass + even)
			acc += mass + even
		}
		_ = acc
	}
	return NewDist(lo, probs)
}

// QuantizeNormal quantizes a single Gaussian; used for window score
// distributions (Eq. 9).
func QuantizeNormal(mean, sigma float64, opt QuantizeOptions) (Dist, error) {
	if sigma <= 0 {
		// Degenerate window (all segments certain): point mass.
		lvl := levelOf(mean, opt.Step)
		lvl = min(max(lvl, opt.MinLevel), opt.MaxLevel)
		return Certain(lvl), nil
	}
	return Quantize(Mixture{{Weight: 1, Mean: mean, Sigma: sigma}}, opt)
}

// LevelOf maps a raw score to its quantized level under the given step.
func LevelOf(score, step float64) int { return levelOf(score, step) }

// LevelValue maps a level back to the representative raw score.
func LevelValue(level int, step float64) float64 { return float64(level) * step }

func levelOf(score, step float64) int {
	return int(math.Round(score / step))
}
