// Package uncertain implements the uncertain-data management substrate of
// Everest: discrete score distributions (x-tuples), truncation and
// quantization of Gaussian mixtures (§3.2), the precomputed per-frame CDFs
// F_f and joint CDF H of §3.3.1 in log space, and a brute-force
// possible-world enumerator used as a test oracle for the Phase 2
// algorithms.
//
// Scores are quantized onto an integer level grid: a frame's real-valued
// score s maps to level round(s/step). For counting queries step == 1 and
// levels are the counts themselves. All Phase 2 math operates on levels.
package uncertain

import (
	"fmt"
	"math"
)

// Dist is a discrete probability distribution over integer score levels.
// P[i] is the probability of level Min+i. Distributions are normalized and
// trimmed so that P[0] > 0 and P[len(P)-1] > 0.
type Dist struct {
	// Min is the lowest level with non-zero probability.
	Min int
	// P holds probabilities for levels Min, Min+1, ..., Min+len(P)-1.
	P []float64
	// cum[i] = Pr(level <= Min+i); cum[len(P)-1] == 1.
	cum []float64
}

// NewDist builds a distribution from probabilities of levels starting at
// min. It trims zero-probability head/tail entries and normalizes the rest.
// It returns an error if probs contains a negative or non-finite value or
// sums to zero.
func NewDist(min int, probs []float64) (Dist, error) {
	lo, hi := 0, len(probs)
	var sum float64
	for _, p := range probs {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return Dist{}, fmt.Errorf("uncertain: invalid probability %v", p)
		}
		sum += p
	}
	if sum <= 0 {
		return Dist{}, fmt.Errorf("uncertain: distribution sums to %v", sum)
	}
	for lo < hi && probs[lo] == 0 {
		lo++
	}
	for hi > lo && probs[hi-1] == 0 {
		hi--
	}
	p := make([]float64, hi-lo)
	for i := range p {
		p[i] = probs[lo+i] / sum
	}
	d := Dist{Min: min + lo, P: p}
	d.buildCum()
	return d, nil
}

// MustDist is NewDist that panics on error, for literals in tests and
// examples.
func MustDist(min int, probs []float64) Dist {
	d, err := NewDist(min, probs)
	if err != nil {
		panic(err)
	}
	return d
}

// Certain returns a point-mass distribution at the given level; used when a
// frame's exact score is known (cleaned by the oracle or labelled during
// Phase 1 sampling).
func Certain(level int) Dist {
	d := Dist{Min: level, P: []float64{1}}
	d.buildCum()
	return d
}

func (d *Dist) buildCum() {
	d.cum = make([]float64, len(d.P))
	s := 0.0
	for i, p := range d.P {
		s += p
		d.cum[i] = s
	}
	// Clamp the final entry to exactly 1 to absorb float drift.
	d.cum[len(d.cum)-1] = 1
}

// Max returns the highest level with non-zero probability.
func (d Dist) Max() int { return d.Min + len(d.P) - 1 }

// IsCertain reports whether the distribution is a point mass.
func (d Dist) IsCertain() bool { return len(d.P) == 1 }

// Pr returns Pr(level == t).
func (d Dist) Pr(t int) float64 {
	if t < d.Min || t > d.Max() {
		return 0
	}
	return d.P[t-d.Min]
}

// CDF returns F(t) = Pr(level <= t).
func (d Dist) CDF(t int) float64 {
	if t < d.Min {
		return 0
	}
	if t >= d.Max() {
		return 1
	}
	return d.cum[t-d.Min]
}

// LogCDF returns log F(t), with -Inf when F(t) == 0.
func (d Dist) LogCDF(t int) float64 {
	f := d.CDF(t)
	if f == 0 {
		return math.Inf(-1)
	}
	return math.Log(f)
}

// Mean returns the expected level.
func (d Dist) Mean() float64 {
	m := 0.0
	for i, p := range d.P {
		m += float64(d.Min+i) * p
	}
	return m
}

// Variance returns the level variance.
func (d Dist) Variance() float64 {
	m := d.Mean()
	v := 0.0
	for i, p := range d.P {
		x := float64(d.Min+i) - m
		v += x * x * p
	}
	return v
}

// Validate checks internal invariants (normalization, trimmed ends,
// monotone CDF). It is used by property tests.
func (d Dist) Validate() error {
	if len(d.P) == 0 {
		return fmt.Errorf("uncertain: empty distribution")
	}
	if d.P[0] == 0 || d.P[len(d.P)-1] == 0 {
		return fmt.Errorf("uncertain: untrimmed distribution")
	}
	sum := 0.0
	for _, p := range d.P {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("uncertain: invalid probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("uncertain: probabilities sum to %v", sum)
	}
	prev := 0.0
	for i := range d.P {
		c := d.CDF(d.Min + i)
		if c+1e-12 < prev {
			return fmt.Errorf("uncertain: CDF not monotone at level %d", d.Min+i)
		}
		prev = c
	}
	return nil
}

// XTuple is one uncertain tuple of the relation: a frame (or window)
// identified by ID with a discrete score distribution. Following §2, the
// difference detector makes x-tuples independent of each other, so the
// relation is simply a slice of XTuples.
type XTuple struct {
	// ID identifies the frame or window (its index in the video).
	ID int
	// Dist is the score-level distribution; a point mass once cleaned.
	Dist Dist
}

// Relation is an uncertain relation: a set of independent x-tuples.
type Relation []XTuple
