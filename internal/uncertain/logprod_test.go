package uncertain

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/xrand"
)

func TestJointCDFMatchesDirectProduct(t *testing.T) {
	dists := []Dist{
		MustDist(0, []float64{0.5, 0.5}),
		MustDist(1, []float64{0.2, 0.3, 0.5}),
		MustDist(0, []float64{0.9, 0.1}),
	}
	j := NewJointCDF(0, 3)
	for _, d := range dists {
		j.Add(d)
	}
	for tLvl := -1; tLvl <= 4; tLvl++ {
		want := 1.0
		for _, d := range dists {
			want *= d.CDF(tLvl)
		}
		if got := j.At(tLvl); math.Abs(got-want) > 1e-12 {
			t.Fatalf("H(%d) = %v, want %v", tLvl, got, want)
		}
	}
}

func TestJointCDFZeroHandling(t *testing.T) {
	j := NewJointCDF(0, 10)
	d := MustDist(5, []float64{0.5, 0.5}) // F(t)=0 for t<5
	j.Add(d)
	if j.At(4) != 0 {
		t.Fatalf("H(4) = %v, want 0", j.At(4))
	}
	if !math.IsInf(j.LogAt(4), -1) {
		t.Fatal("LogAt below support should be -Inf")
	}
	j.Remove(d)
	if j.At(4) != 1 {
		t.Fatalf("after removal H(4) = %v, want 1 (empty product)", j.At(4))
	}
}

func TestJointCDFRemoveRestores(t *testing.T) {
	r := xrand.New(42)
	dists := make([]Dist, 20)
	for i := range dists {
		dists[i] = randomDist(r, 6, 8)
	}
	j := NewJointCDF(0, 20)
	for _, d := range dists {
		j.Add(d)
	}
	// Remove half of them; the result must equal a fresh product of the
	// survivors.
	for i := 0; i < 10; i++ {
		j.Remove(dists[i])
	}
	for tLvl := 0; tLvl <= 20; tLvl++ {
		want := 1.0
		for _, d := range dists[10:] {
			want *= d.CDF(tLvl)
		}
		got := j.At(tLvl)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("H(%d) = %v, want %v after removals", tLvl, got, want)
		}
	}
	if j.Len() != 10 {
		t.Fatalf("Len = %d, want 10", j.Len())
	}
}

func TestJointCDFEmptyProductIsOne(t *testing.T) {
	j := NewJointCDF(0, 5)
	for tLvl := -3; tLvl <= 8; tLvl++ {
		if j.At(tLvl) != 1 {
			t.Fatalf("empty product H(%d) = %v, want 1", tLvl, j.At(tLvl))
		}
	}
}

func TestJointCDFFromRelationSkipsCertain(t *testing.T) {
	rel := Relation{
		{ID: 0, Dist: Certain(3)},
		{ID: 1, Dist: MustDist(0, []float64{0.5, 0.5})},
		{ID: 2, Dist: Certain(7)},
	}
	j := NewJointCDFFromRelation(rel)
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (certain tuples excluded)", j.Len())
	}
	if math.Abs(j.At(0)-0.5) > 1e-12 {
		t.Fatalf("H(0) = %v, want 0.5", j.At(0))
	}
}

func TestJointCDFAboveRangeIsOne(t *testing.T) {
	j := NewJointCDF(0, 5)
	j.Add(MustDist(0, []float64{0.3, 0.7}))
	if j.At(5) != 1 || j.At(100) != 1 {
		t.Fatal("H above all supports should be 1")
	}
}

func TestJointCDFPropertyAgainstEnumeration(t *testing.T) {
	// H(t) over uncertain tuples equals the brute-force probability that
	// all tuples are <= t (independence), for random small relations.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(5)
		rel := make(Relation, n)
		for i := range rel {
			rel[i] = XTuple{ID: i, Dist: randomDist(r, 4, 6)}
		}
		j := NewJointCDFFromRelation(rel)
		// H covers only the uncertain tuples (D_u0 in the paper); compare
		// against enumeration over that same subset.
		var unc Relation
		for _, x := range rel {
			if !x.Dist.IsCertain() {
				unc = append(unc, x)
			}
		}
		for tLvl := -1; tLvl <= 11; tLvl++ {
			want := BruteTopkProb(unc, tLvl)
			got := j.At(tLvl)
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestJointCDFManyTuplesUnderflowSafe(t *testing.T) {
	// 10^5 tuples each with F(t) = 0.5 would underflow a direct product
	// (0.5^100000); log space must survive and return exactly 0 on Exp.
	j := NewJointCDF(0, 2)
	d := MustDist(0, []float64{0.5, 0.5})
	const n = 100000
	for i := 0; i < n; i++ {
		j.Add(d)
	}
	wantLog := float64(n) * math.Log(0.5)
	if math.Abs(j.LogAt(0)-wantLog) > 1e-6*math.Abs(wantLog) {
		t.Fatalf("LogAt(0) = %v, want %v", j.LogAt(0), wantLog)
	}
	if j.At(0) != 0 {
		t.Fatalf("At(0) should underflow to 0, got %v", j.At(0))
	}
	if j.At(1) != 1 {
		t.Fatalf("At(1) = %v, want 1", j.At(1))
	}
}

func TestWorldEnumeration(t *testing.T) {
	rel := Relation{
		{ID: 0, Dist: MustDist(0, []float64{0.78, 0.21, 0.01})},
		{ID: 1, Dist: MustDist(0, []float64{0.49, 0.42, 0.09})},
		{ID: 2, Dist: MustDist(0, []float64{0.16, 0.48, 0.36})},
	}
	count := 0
	total := 0.0
	EnumerateWorlds(rel, func(w World) {
		count++
		total += w.Prob
	})
	if count != 27 {
		t.Fatalf("world count = %d, want 27 (3^3)", count)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("world probabilities sum to %v, want 1", total)
	}
	if WorldCount(rel) != 27 {
		t.Fatalf("WorldCount = %d, want 27", WorldCount(rel))
	}
}

func TestPaperTable1Example(t *testing.T) {
	// Table 1a / §3: the Top-1 result {f3} over the example relation has
	// confidence 0.85; two specific worlds have the stated probabilities
	// (Table 4).
	f1 := MustDist(0, []float64{0.78, 0.21, 0.01})
	f2 := MustDist(0, []float64{0.49, 0.42, 0.09})
	f3 := MustDist(0, []float64{0.16, 0.48, 0.36})
	rel := Relation{{ID: 0, Dist: f1}, {ID: 1, Dist: f2}, {ID: 2, Dist: f3}}

	// Pr(W1): all three frames have count 0.
	// Pr(W2): f1=1, f2=0, f3=0.
	var w1, w2 float64
	EnumerateWorlds(rel, func(w World) {
		if w.Levels[0] == 0 && w.Levels[1] == 0 && w.Levels[2] == 0 {
			w1 = w.Prob
		}
		if w.Levels[0] == 1 && w.Levels[1] == 0 && w.Levels[2] == 0 {
			w2 = w.Prob
		}
	})
	if math.Abs(w1-0.78*0.49*0.16) > 1e-12 {
		t.Fatalf("Pr(W1) = %v", w1)
	}
	if math.Abs(w2-0.21*0.49*0.16) > 1e-12 {
		t.Fatalf("Pr(W2) = %v", w2)
	}

	// Confidence of {f3} as Top-1: sum over worlds in which f3 is a Top-1
	// (f3's count >= the others'; the paper computes 0.85 allowing ties).
	conf := 0.0
	EnumerateWorlds(rel, func(w World) {
		if w.Levels[2] >= w.Levels[0] && w.Levels[2] >= w.Levels[1] {
			conf += w.Prob
		}
	})
	if math.Abs(conf-0.85) > 0.005 {
		t.Fatalf("Top-1 confidence of f3 = %v, want ≈0.85 (paper)", conf)
	}

	// Table 5: after Oracle(f3) reveals count 0, the confidence of {f3}
	// drops to ≈0.38 = Pr(f1=0)·Pr(f2=0) allowing ties.
	after := f1.CDF(0) * f2.CDF(0)
	if math.Abs(after-0.78*0.49) > 1e-12 {
		t.Fatalf("post-clean confidence = %v", after)
	}
	if math.Abs(after-0.38) > 0.005 {
		t.Fatalf("post-clean confidence = %v, want ≈0.38 (paper)", after)
	}
}
