package diffdet

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/workpool"
)

func testSource(t *testing.T, frames int) *video.Synthetic {
	t.Helper()
	s, err := video.NewSynthetic(video.Config{
		Name: "difftest", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: 2, MeanPopulation: 2, BurstRate: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRun(t *testing.T, src video.Source, opt Options) Result {
	t.Helper()
	res, err := Run(src, opt, nil, simclock.Default(), simclock.PhaseDiffDetect)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInvariants(t *testing.T) {
	src := testSource(t, 3000)
	res := mustRun(t, src, Options{})
	if res.NumFrames() != 3000 {
		t.Fatalf("NumFrames = %d", res.NumFrames())
	}
	retained := make(map[int]bool)
	for i, f := range res.Retained {
		retained[f] = true
		if i > 0 && res.Retained[i-1] >= f {
			t.Fatal("Retained not strictly ascending")
		}
	}
	for i, rep := range res.RepOf {
		if !retained[int(rep)] {
			t.Fatalf("frame %d represented by non-retained frame %d", i, rep)
		}
		if retained[i] && int(rep) != i {
			t.Fatalf("retained frame %d has foreign representative %d", i, rep)
		}
	}
}

func TestMiddleFramesAlwaysRetained(t *testing.T) {
	src := testSource(t, 900)
	res := mustRun(t, src, Options{ClipSize: 30})
	retained := make(map[int]bool)
	for _, f := range res.Retained {
		retained[f] = true
	}
	for c := 0; c < 30; c++ {
		mid := c*30 + 15
		if !retained[mid] {
			t.Fatalf("clip %d middle frame %d not retained", c, mid)
		}
	}
}

func TestDiscardedFramesAreSimilar(t *testing.T) {
	src := testSource(t, 1500)
	opt := Options{}.withDefaults()
	res := mustRun(t, src, Options{})
	for i, rep := range res.RepOf {
		if int(rep) == i {
			continue
		}
		f, g := src.Render(i), src.Render(int(rep))
		mse, err := f.MSE(g)
		if err != nil {
			t.Fatal(err)
		}
		if mse >= opt.MSEThreshold {
			t.Fatalf("discarded frame %d has MSE %v >= threshold vs rep %d", i, mse, rep)
		}
	}
}

func TestThresholdExtremes(t *testing.T) {
	src := testSource(t, 300)
	// Threshold so small nothing is discarded (noise alone exceeds it).
	all := mustRun(t, src, Options{MSEThreshold: 1e-12})
	if len(all.Retained) != 300 {
		t.Fatalf("tiny threshold retained %d/300", len(all.Retained))
	}
	// Threshold so large only clip middles survive.
	few := mustRun(t, src, Options{MSEThreshold: 10, ClipSize: 30})
	if len(few.Retained) != 10 {
		t.Fatalf("huge threshold retained %d, want 10 middles", len(few.Retained))
	}
}

func TestReductionOnRealisticSource(t *testing.T) {
	src := testSource(t, 6000)
	res := mustRun(t, src, Options{})
	ratio := float64(len(res.Retained)) / 6000
	if ratio >= 1 {
		t.Fatalf("difference detector discarded nothing (ratio %v)", ratio)
	}
	if ratio < 0.02 {
		t.Fatalf("difference detector discarded almost everything (ratio %v)", ratio)
	}
	t.Logf("retention ratio %.3f", ratio)
}

func TestSegments(t *testing.T) {
	res := Result{RepOf: []int32{0, 0, 2, 2, 2, 5}}
	// Mark reps retained implicitly; Segments only reads RepOf.
	segs := res.Segments(0, 6)
	want := []Segment{{0, 2}, {2, 3}, {5, 1}}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segments = %v, want %v", segs, want)
		}
	}
	total := 0
	for _, s := range segs {
		total += s.Size
	}
	if total != 6 {
		t.Fatalf("segment sizes sum to %d", total)
	}
	// Sub-range query.
	sub := res.Segments(1, 4)
	if len(sub) != 2 || sub[0] != (Segment{0, 1}) || sub[1] != (Segment{2, 2}) {
		t.Fatalf("sub segments = %v", sub)
	}
}

func TestClockCharging(t *testing.T) {
	src := testSource(t, 500)
	clock := simclock.NewClock()
	cost := simclock.Default()
	if _, err := Run(src, Options{}, clock, cost, simclock.PhasePopulateD0); err != nil {
		t.Fatal(err)
	}
	want := 500 * (cost.DecodeMS + cost.DiffMS)
	if got := clock.PhaseMS(simclock.PhasePopulateD0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("charged %v, want %v", got, want)
	}
}

// TestDeterministicAcrossProcs is the workpool-era determinism contract:
// the detector result — retained set and representative map — must be
// bit-identical for every worker count, whether the clips run on
// transient workers or on a caller-owned resident pool.
func TestDeterministicAcrossProcs(t *testing.T) {
	src := testSource(t, 2000)
	serial := mustRun(t, src, Options{Procs: 1})
	check := func(name string, got Result) {
		t.Helper()
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("%s diverged from serial run", name)
		}
	}
	for _, procs := range []int{2, 8} {
		check(fmt.Sprintf("procs=%d", procs), mustRun(t, src, Options{Procs: procs}))
	}
	check("procs=0 (GOMAXPROCS)", mustRun(t, src, Options{}))
	pool := workpool.NewPool(8)
	defer pool.Close()
	check("resident pool (8 workers)", mustRun(t, src, Options{Pool: pool}))
}

func TestShortVideo(t *testing.T) {
	src := testSource(t, 7) // shorter than one clip
	res := mustRun(t, src, Options{ClipSize: 30})
	if len(res.Retained) == 0 {
		t.Fatal("short video retained nothing")
	}
}
