// Package diffdet implements Everest's difference detector (§3.5): it
// discards frames too similar to a retained neighbour, which (a) removes
// uninformative frames before proxy inference and (b) justifies modelling
// the retained frames as independent x-tuples (§3.2).
//
// Following the paper (and NoScope [38]), similarity is pixel mean squared
// error. To parallelize, the video is split into clips of c frames; every
// frame in a clip is compared against the clip's middle frame and
// discarded when the MSE falls below the threshold. Clips fan out through
// the engine-wide workpool: each clip is a pure function of its index and
// writes only its own frame range, so the result is bit-identical at any
// worker count.
package diffdet

import (
	"fmt"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/workpool"
)

// Options configures the detector.
type Options struct {
	// MSEThreshold discards a frame when its MSE against the clip middle
	// is below it. Zero means 8e-6, calibrated for the 64×64 renderer so
	// that a single extra object — even one mostly occluded by a
	// similar-shade neighbour — exceeds it while sensor noise stays
	// below, the same calibration the paper's 1e-4 encodes for normalized
	// 1080p pixels.
	MSEThreshold float64
	// ClipSize is c; zero means 30 (the paper's setting).
	ClipSize int
	// Procs bounds concurrent clip workers, following the engine-wide
	// Config.Procs convention: zero or negative means GOMAXPROCS. Results
	// are bit-identical for every value.
	Procs int
	// Pool, when non-nil, runs the clips on a caller-owned resident
	// worker pool instead of transient goroutines; ingestion paths that
	// already hold a pool for the rest of the pipeline reuse it here.
	// Never affects results.
	Pool *workpool.Pool
}

func (o Options) withDefaults() Options {
	if o.MSEThreshold == 0 {
		o.MSEThreshold = 8e-6
	}
	if o.ClipSize == 0 {
		o.ClipSize = 30
	}
	return o
}

// Result is the detector output.
type Result struct {
	// Retained lists retained frame indices in ascending order.
	Retained []int
	// RepOf maps every frame to its retained representative: RepOf[i] == i
	// for retained frames, otherwise the clip-middle frame whose score
	// distribution stands in for frame i (used by window aggregation,
	// Eq. 9).
	RepOf []int32
}

// NumFrames returns the total frame count covered.
func (r Result) NumFrames() int { return len(r.RepOf) }

// Segments returns, for the frame range [from, to), the maximal runs of
// consecutive frames sharing one representative — the segments of Eq. 9.
func (r Result) Segments(from, to int) []Segment {
	var segs []Segment
	for i := from; i < to; {
		rep := r.RepOf[i]
		j := i + 1
		for j < to && r.RepOf[j] == rep {
			j++
		}
		segs = append(segs, Segment{Rep: int(rep), Size: j - i})
		i = j
	}
	return segs
}

// Segment is a run of frames represented by one retained frame.
type Segment struct {
	// Rep is the retained representative frame index.
	Rep int
	// Size is the number of frames in the run.
	Size int
}

// Run executes the difference detector over all frames of src, charging
// per-frame decode and MSE cost to the given phase.
func Run(src video.Source, opt Options, clock *simclock.Clock, cost simclock.CostModel, phase simclock.Phase) (Result, error) {
	opt = opt.withDefaults()
	n := src.NumFrames()
	if n == 0 {
		return Result{}, fmt.Errorf("diffdet: empty source")
	}
	res := Result{RepOf: make([]int32, n)}
	retained := make([]bool, n)

	// Each clip touches only its own frame range [lo, hi), so the clips
	// are independent workpool items; errors collect into per-clip slots
	// and the first (lowest-clip) one is reported, as in the serial loop.
	nClips := (n + opt.ClipSize - 1) / opt.ClipSize
	errs := make([]error, nClips)
	workpool.ForEachOn(opt.Pool, opt.Procs, nClips, func(_, c int) {
		lo := c * opt.ClipSize
		hi := min(lo+opt.ClipSize, n)
		mid := lo + (hi-lo)/2
		midFrame := src.Render(mid)
		retained[mid] = true
		res.RepOf[mid] = int32(mid)
		for i := lo; i < hi; i++ {
			if i == mid {
				continue
			}
			f := src.Render(i)
			mse, err := f.MSE(midFrame)
			if err != nil {
				errs[c] = err
				return
			}
			if mse < opt.MSEThreshold {
				res.RepOf[i] = int32(mid)
			} else {
				retained[i] = true
				res.RepOf[i] = int32(i)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	if clock != nil {
		clock.Charge(phase, float64(n)*(cost.DecodeMS+cost.DiffMS))
	}
	for i, keep := range retained {
		if keep {
			res.Retained = append(res.Retained, i)
		}
	}
	return res, nil
}
