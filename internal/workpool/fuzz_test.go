package workpool

import (
	"math"
	"testing"
)

// FuzzMapOrdering fuzzes the two halves of the determinism contract over
// arbitrary item and worker counts: Map must emit results in index order
// (out[i] is fn's value for item i, never a neighbour's), and Sum must
// reduce bit-identically to the naive serial loop — the index-ordered
// serial reduction is exactly what makes parallel floating-point
// aggregation safe to use on the engine's hot paths.
func FuzzMapOrdering(f *testing.F) {
	f.Add(0, 1, uint64(1))
	f.Add(1, 64, uint64(2))
	f.Add(100, 4, uint64(3))
	f.Add(999, 7, uint64(4))
	f.Add(4096, 0, uint64(5))
	f.Add(5000, -3, uint64(6))
	f.Fuzz(func(t *testing.T, n, procs int, seed uint64) {
		if n < 0 {
			n = -n
		}
		n %= 5000
		if procs > 128 {
			procs %= 128
		}
		// Deterministic per-index values at wildly different magnitudes,
		// so any reordering of the reduction changes the rounding.
		term := func(i int) float64 {
			x := seed + uint64(i)*0x9e3779b97f4a7c15
			x ^= x >> 29
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 32
			mag := int(x%61) - 30
			return math.Ldexp(float64(int32(x>>32)), mag)
		}

		out := Map(procs, n, func(_, i int) float64 { return term(i) })
		if len(out) != n {
			t.Fatalf("Map emitted %d results for %d items", len(out), n)
		}
		for i, v := range out {
			if want := term(i); v != want {
				t.Fatalf("n=%d procs=%d: out[%d] = %v, want %v (index-ordered emission violated)",
					n, procs, i, v, want)
			}
		}

		want := 0.0
		for i := 0; i < n; i++ {
			want += term(i)
		}
		got := Sum(procs, n, func(_, i int) float64 { return term(i) })
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("n=%d procs=%d: Sum = %v, serial loop = %v (serial-reduction equivalence violated)",
				n, procs, got, want)
		}
	})
}
