package workpool

import (
	"sync"
	"sync/atomic"
)

// Pool is a resident worker pool: its goroutines are spawned once and
// reused for every batch, so hot paths that fan out thousands of times
// per query (the speculative blocks of Phase 2's Select-candidate, for
// example) pay no per-batch goroutine spawn, WaitGroup or channel
// construction — dispatching a batch allocates nothing.
//
// A Pool runs one batch at a time (ForEach serializes callers), and it
// honours the package determinism contract exactly as the transient
// helpers do: items are claimed by atomic index, so any computation
// that is a pure function of its item index yields byte-identical
// output whether it ran on a Pool, on transient workers, or serially.
//
// Close releases the goroutines. A Pool must not be used after Close.
type Pool struct {
	workers int
	work    chan struct{} // one token per participating worker per batch
	done    chan struct{} // signalled by the last worker of a batch

	mu sync.Mutex // serializes ForEach callers

	// Per-batch state, written by ForEach before tokens are issued and
	// read by workers only between token receipt and completion.
	fn     func(worker, i int)
	n      int
	next   atomic.Int64
	active atomic.Int64

	pmu  sync.Mutex
	pval any
}

// NewPool starts a resident pool of Procs(procs) workers.
func NewPool(procs int) *Pool {
	p := &Pool{workers: Procs(procs)}
	p.work = make(chan struct{}, p.workers)
	p.done = make(chan struct{}, 1)
	for w := 0; w < p.workers; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the resident worker count.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker(id int) {
	for range p.work {
		p.runSlice(id)
		if p.active.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// runSlice drains item indices until the batch is exhausted, capturing
// the first panic for re-raise on the dispatching goroutine (same
// contract as the transient ForEach).
func (p *Pool) runSlice(worker int) {
	defer func() {
		if r := recover(); r != nil {
			p.pmu.Lock()
			if p.pval == nil {
				p.pval = r
			}
			p.pmu.Unlock()
		}
	}()
	for {
		i := int(p.next.Add(1)) - 1
		if i >= p.n {
			return
		}
		p.fn(worker, i)
	}
}

// ForEach runs fn(worker, i) for every i in [0, n) on the resident
// workers. Worker IDs are in [0, Workers()); every index is processed
// by exactly one worker. Small batches (n == 1) and single-worker
// pools run on the calling goroutine, so the serial path is exactly
// the naive loop. Panics inside fn are re-raised here, untouched.
func (p *Pool) ForEach(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fn, p.n = fn, n
	p.next.Store(0)
	p.active.Store(int64(w))
	p.pval = nil
	for i := 0; i < w; i++ {
		p.work <- struct{}{}
	}
	<-p.done
	p.fn = nil
	p.pmu.Lock()
	pval := p.pval
	p.pmu.Unlock()
	if pval != nil {
		panic(pval)
	}
}

// Close releases the resident goroutines. Concurrent or subsequent
// ForEach calls are invalid.
func (p *Pool) Close() {
	close(p.work)
}

// ForEachOn runs the batch on pool when one is provided, else on
// transient workers bounded by procs — the bridge that lets packages
// accept an optional resident pool (diffdet, windows, the Phase 2
// selector) while keeping their standalone call sites unchanged.
func ForEachOn(pool *Pool, procs, n int, fn func(worker, i int)) {
	if pool != nil {
		pool.ForEach(n, fn)
		return
	}
	ForEach(procs, n, fn)
}

// MapOn is Map on an optional resident pool: results are collected in
// index order, identical for every worker count and either substrate.
func MapOn[T any](pool *Pool, procs, n int, fn func(worker, i int) T) []T {
	out := make([]T, n)
	ForEachOn(pool, procs, n, func(worker, i int) {
		out[i] = fn(worker, i)
	})
	return out
}

// MapWithOn is MapWith on an optional resident pool: newScratch runs
// at most once per worker per call, and fn receives that worker's own
// scratch instance. Scratch must not influence results, only speed.
func MapWithOn[S, T any](pool *Pool, procs, n int, newScratch func() S, fn func(scratch S, i int) T) []T {
	if pool == nil {
		return MapWith(procs, n, newScratch, fn)
	}
	scratch := make([]S, pool.Workers())
	made := make([]bool, pool.Workers())
	out := make([]T, n)
	pool.ForEach(n, func(worker, i int) {
		if !made[worker] {
			scratch[worker] = newScratch()
			made[worker] = true
		}
		out[i] = fn(scratch[worker], i)
	})
	return out
}
