package workpool

import (
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestProcs(t *testing.T) {
	if got := Procs(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Procs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Procs(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Procs(-3) = %d", got)
	}
	if got := Procs(5); got != 5 {
		t.Fatalf("Procs(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, procs := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int64, n)
		ForEach(procs, n, func(_, i int) {
			atomic.AddInt64(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("procs=%d: index %d processed %d times", procs, i, c)
			}
		}
	}
}

func TestForEachWorkerIDsDense(t *testing.T) {
	const n = 200
	var maxWorker int64 = -1
	ForEach(4, n, func(w, _ int) {
		for {
			cur := atomic.LoadInt64(&maxWorker)
			if int64(w) <= cur || atomic.CompareAndSwapInt64(&maxWorker, cur, int64(w)) {
				break
			}
		}
		if w < 0 || w >= 4 {
			t.Errorf("worker id %d out of [0,4)", w)
		}
	})
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(4, 0, func(_, _ int) { called = true })
	ForEach(4, -5, func(_, _ int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapOrdered(t *testing.T) {
	for _, procs := range []int{1, 3, 16} {
		got := Map(procs, 500, func(_, i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("procs=%d: out[%d] = %d", procs, i, v)
			}
		}
	}
}

func TestSumBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// Sums of values at wildly different magnitudes expose any change in
	// reduction order; all worker counts must agree bit-for-bit with the
	// serial loop.
	const n = 4096
	term := func(_, i int) float64 {
		return math.Sin(float64(i)) * math.Pow(10, float64(i%30)-15)
	}
	want := 0.0
	for i := 0; i < n; i++ {
		want += term(0, i)
	}
	for _, procs := range []int{1, 2, 5, 32} {
		if got := Sum(procs, n, term); got != want {
			t.Fatalf("procs=%d: sum %v != serial %v", procs, got, want)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	ForEach(4, 100, func(_, i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachSerialPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("serial panic not propagated")
		}
	}()
	ForEach(1, 3, func(_, i int) {
		if i == 1 {
			panic("boom")
		}
	})
}
