// Package workpool is the deterministic parallel-execution substrate of
// the real-CPU hot paths: CMDN grid training, Phase 1 feature extraction
// and D0 population, and proxy inference sweeps all fan out through it.
//
// Determinism contract: every helper assigns work by item index, collects
// results into index-ordered slots, and reduces in ascending index order.
// A computation that is a pure function of its item index therefore
// produces byte-identical output regardless of the worker count — the
// property the engine's "same Config.Seed ⇒ same Result" guarantee rests
// on. The scheduling (which worker runs which index, in what real-time
// order) is intentionally unobservable.
//
// All helpers run the caller's function on the calling goroutine when the
// effective worker count is 1 or the item count is small, so the serial
// path is exactly the naive loop.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Procs resolves a parallelism knob: values ≤ 0 mean "use all cores"
// (GOMAXPROCS); positive values are returned unchanged.
func Procs(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEach runs fn(worker, i) for every i in [0, n), spread over up to
// procs workers. Worker IDs are dense in [0, workers) so callers can give
// each worker private scratch (model clones, buffers); every index is
// processed by exactly one worker. Panics inside fn are captured and
// re-raised on the calling goroutine.
func ForEach(procs, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	p := Procs(procs)
	if p > n {
		p = n
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next int64 = 0
		wg   sync.WaitGroup
		pmu  sync.Mutex
		pval any
	)
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = r
					}
					pmu.Unlock()
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if pval != nil {
		// Re-raise the first worker's original panic value, untouched, so
		// typed values (runtime.Error, fmt-built strings) survive for the
		// caller's recover instead of being flattened into a string.
		panic(pval)
	}
}

// Map runs fn(worker, i) for every i in [0, n) and returns the results in
// index order. The output is identical for every worker count as long as
// fn(_, i) is a pure function of i.
func Map[T any](procs, n int, fn func(worker, i int) T) []T {
	out := make([]T, n)
	ForEach(procs, n, func(worker, i int) {
		out[i] = fn(worker, i)
	})
	return out
}

// MapWith is Map for workers that need private mutable scratch (model
// clones, buffers): newScratch runs at most once per worker, lazily, on
// that worker's goroutine, and fn receives the worker's own instance.
// The scratch must not influence fn's result value, only its speed.
func MapWith[S, T any](procs, n int, newScratch func() S, fn func(scratch S, i int) T) []T {
	p := Procs(procs)
	scratch := make([]S, p)
	made := make([]bool, p)
	out := make([]T, n)
	ForEach(p, n, func(worker, i int) {
		if !made[worker] {
			scratch[worker] = newScratch()
			made[worker] = true
		}
		out[i] = fn(scratch[worker], i)
	})
	return out
}

// Sum computes Σ fn(worker, i) for i in [0, n). Per-item terms are
// computed in parallel but reduced serially in ascending index order, so
// the floating-point rounding — and therefore the result bits — match the
// naive serial loop exactly, for every worker count.
func Sum(procs, n int, fn func(worker, i int) float64) float64 {
	terms := Map(procs, n, fn)
	total := 0.0
	for _, t := range terms {
		total += t
	}
	return total
}
