package workpool

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolCoversEveryIndexOnce(t *testing.T) {
	for _, procs := range []int{1, 2, 7, 16} {
		p := NewPool(procs)
		// Reuse the same pool across many batches of varying size —
		// the resident-worker scenario selectBatch drives.
		for _, n := range []int{1, 3, 100, 1000, 0, 7} {
			counts := make([]int64, n)
			p.ForEach(n, func(_, i int) {
				atomic.AddInt64(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("procs=%d n=%d: index %d processed %d times", procs, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestPoolWorkerIDsDense(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 500
	var maxWorker int64 = -1
	p.ForEach(n, func(worker, _ int) {
		if w := int64(worker); w >= 0 {
			for {
				cur := atomic.LoadInt64(&maxWorker)
				if w <= cur || atomic.CompareAndSwapInt64(&maxWorker, cur, w) {
					break
				}
			}
		}
	})
	if got := atomic.LoadInt64(&maxWorker); got >= int64(p.Workers()) {
		t.Fatalf("worker id %d outside [0, %d)", got, p.Workers())
	}
}

// TestPoolMatchesTransient locks the substrate-equivalence contract:
// a pure function of the item index must produce identical output on
// the resident pool, the transient helpers, and the serial loop.
func TestPoolMatchesTransient(t *testing.T) {
	const n = 997
	fn := func(_, i int) float64 { return float64(i*i%313) / 7 }
	serial := Map(1, n, fn)
	transient := Map(8, n, fn)
	p := NewPool(8)
	defer p.Close()
	pooled := MapOn(p, 8, n, fn)
	viaNilPool := MapOn(nil, 8, n, fn)
	for i := range serial {
		if pooled[i] != serial[i] || transient[i] != serial[i] || viaNilPool[i] != serial[i] {
			t.Fatalf("index %d diverged across substrates", i)
		}
	}
}

func TestPoolMapWithScratchPerWorker(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var made int64
	out := MapWithOn(p, 4, 300, func() *int64 {
		atomic.AddInt64(&made, 1)
		s := new(int64)
		return s
	}, func(s *int64, i int) int {
		*s++ // private mutable scratch; result must not depend on it
		return i * 2
	})
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if made > int64(p.Workers()) {
		t.Fatalf("newScratch ran %d times for %d workers", made, p.Workers())
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate from pool worker")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %v lost its original form", r)
		}
	}()
	p.ForEach(100, func(_, i int) {
		if i == 37 {
			panic("boom 37")
		}
	})
}

// TestPoolSurvivesPanicBatch checks the pool is reusable after a
// panicking batch — the residency property: one bad query must not
// poison the workers serving the next one.
func TestPoolSurvivesPanicBatch(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.ForEach(50, func(_, i int) {
			if i%2 == 0 {
				panic("even")
			}
		})
	}()
	var sum int64
	p.ForEach(100, func(_, i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("post-panic batch sum = %d, want 4950", sum)
	}
}
