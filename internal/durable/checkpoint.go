package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/everest-project/everest/internal/labelstore"
)

// Checkpoint file format — a full materialization of the label store at
// one version, written atomically (temp file + fsync + rename + dir
// fsync) so a crash mid-write can never leave a half checkpoint under
// the real name:
//
//	8 bytes  magic "EVCKPT01" (identifies file type AND format version)
//	uvarint  version — the cache version the snapshot represents
//	uvarint  count   — number of labels
//	count ×  (uvarint frame delta, 8-byte score bits), frames ascending
//	uint32   CRC32 (IEEE) of every preceding byte
//
// Frames are delta-encoded ascending, exactly the WAL's publish layout,
// and scores are raw IEEE-754 bits for bit-exact recovery.
var ckptMagic = [8]byte{'E', 'V', 'C', 'K', 'P', 'T', '0', '1'}

// encodeCheckpoint renders (labels, version) into the checkpoint wire
// form.
func encodeCheckpoint(labels labelstore.Map, version uint64) []byte {
	buf := make([]byte, 0, 16+labels.Len()*10)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.AppendUvarint(buf, version)
	buf = binary.AppendUvarint(buf, uint64(labels.Len()))
	prev := 0
	labels.Range(func(f int, v float64) bool {
		buf = binary.AppendUvarint(buf, uint64(f-prev))
		prev = f
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		return true
	})
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeCheckpoint validates and decodes a checkpoint file's bytes. Any
// failure — magic, framing, checksum — returns an error; recovery then
// falls back to the next-older checkpoint.
func decodeCheckpoint(data []byte) (labelstore.Map, uint64, error) {
	if len(data) < len(ckptMagic)+4 {
		return labelstore.Map{}, 0, fmt.Errorf("durable: checkpoint too short (%d bytes)", len(data))
	}
	if string(data[:len(ckptMagic)]) != string(ckptMagic[:]) {
		return labelstore.Map{}, 0, fmt.Errorf("durable: bad checkpoint magic")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return labelstore.Map{}, 0, fmt.Errorf("durable: checkpoint checksum mismatch")
	}
	p := body[len(ckptMagic):]
	version, n := binary.Uvarint(p)
	if n <= 0 {
		return labelstore.Map{}, 0, fmt.Errorf("durable: bad checkpoint version field")
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxRecordLen {
		return labelstore.Map{}, 0, fmt.Errorf("durable: bad checkpoint label count")
	}
	p = p[n:]
	var labels labelstore.Map
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(p)
		if n <= 0 {
			return labelstore.Map{}, 0, fmt.Errorf("durable: bad checkpoint frame delta")
		}
		p = p[n:]
		prev += delta
		if prev > math.MaxInt32 {
			return labelstore.Map{}, 0, fmt.Errorf("durable: checkpoint frame index out of range")
		}
		if len(p) < 8 {
			return labelstore.Map{}, 0, fmt.Errorf("durable: truncated checkpoint score")
		}
		labels = labels.Set(int(prev), math.Float64frombits(binary.LittleEndian.Uint64(p)))
		p = p[8:]
	}
	if len(p) != 0 {
		return labelstore.Map{}, 0, fmt.Errorf("durable: %d trailing checkpoint bytes", len(p))
	}
	return labels, version, nil
}
