package durable

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/everest-project/everest/internal/labelstore"
)

// refReplay is an independent reference for what recovery must produce
// from one segment's raw bytes: walk records greedily from the empty
// version-0 state, apply each contiguous record, and stop at the first
// framing/checksum failure or version gap. Recovery over arbitrary
// bytes must agree with this prefix exactly.
func refReplay(data []byte) (labelstore.Map, uint64) {
	var labels labelstore.Map
	version := uint64(0)
	off := 0
	for off < len(data) {
		rec, next, err := decodeRecord(data, off)
		if err != nil || rec.Version > version+1 {
			break
		}
		if rec.Version == version+1 {
			switch rec.Type {
			case recPublish:
				for i, f := range rec.Frames {
					labels = labels.Set(f, rec.Scores[i])
				}
			case recEvict:
				for _, f := range rec.Frames {
					labels = labels.Delete(f)
				}
			}
			version = rec.Version
		}
		off = next
	}
	return labels, version
}

func sameState(a labelstore.Map, av uint64, b labelstore.Map, bv uint64) bool {
	if av != bv || a.Len() != b.Len() {
		return false
	}
	same := true
	a.Range(func(f int, v float64) bool {
		got, ok := b.Get(f)
		if !ok || got != v {
			same = false
		}
		return same
	})
	return same
}

// FuzzWALReplay drops arbitrary bytes into a segment file and recovers.
// Whatever the bytes, Open must not panic, must yield exactly the
// checksum-valid contiguous prefix, and — because recovery physically
// truncates the torn tail — a second Open must reproduce the first
// recovery bit-for-bit.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a clean two-record log, a publish-then-evict log, a
	// truncated tail, a bit-flipped payload, garbage, and an empty file.
	clean := appendRecord(nil, Record{Type: recPublish, Version: 1, Frames: []int{3, 7, 12}, Scores: []float64{0.5, 0.25, 0.875}})
	clean = appendRecord(clean, Record{Type: recPublish, Version: 2, Frames: []int{20}, Scores: []float64{1}})
	withEvict := appendRecord(append([]byte(nil), clean...), Record{Type: recEvict, Version: 3, Frames: []int{7, 20}})
	f.Add(append([]byte(nil), clean...))
	f.Add(append([]byte(nil), withEvict...))
	f.Add(append([]byte(nil), withEvict[:len(withEvict)-5]...))
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("not a wal segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		m, v := s.Recovered()
		wantM, wantV := refReplay(data)
		if !sameState(m, v, wantM, wantV) {
			t.Fatalf("recovered version %d (%d labels), reference prefix is version %d (%d labels)",
				v, m.Len(), wantV, wantM.Len())
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Idempotence: the truncated log recovers to the same state.
		r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after truncation: %v", err)
		}
		defer r.Close()
		m2, v2 := r.Recovered()
		if !sameState(m, v, m2, v2) {
			t.Fatalf("recovery not idempotent: first (v%d, %d labels), second (v%d, %d labels)",
				v, m.Len(), v2, m2.Len())
		}
	})
}

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint decoder:
// it must never panic, and anything it accepts must survive a semantic
// re-encode/decode round trip.
func FuzzCheckpointDecode(f *testing.F) {
	var m labelstore.Map
	m = m.Set(4, 0.5).Set(9, 0.75)
	f.Add(encodeCheckpoint(m, 3))
	f.Add(encodeCheckpoint(labelstore.Map{}, 0))
	f.Add([]byte("EVCKPT01 but then junk"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		labels, version, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		labels2, version2, err := decodeCheckpoint(encodeCheckpoint(labels, version))
		if err != nil {
			t.Fatalf("re-encoded accepted checkpoint does not decode: %v", err)
		}
		if !sameState(labels, version, labels2, version2) {
			t.Fatalf("checkpoint round trip drifted: v%d/%d labels → v%d/%d labels",
				version, labels.Len(), version2, labels2.Len())
		}
	})
}
