// Package durable is the crash-safety layer under the serving state: a
// segment-based, CRC32-checksummed append-only write-ahead log of label
// publishes and evictions, periodic atomic checkpoints, and
// recovery-on-open that reconstructs the newest consistent prefix of
// the logged history.
//
// The paper's §3.5 cost model is explicit that oracle labels are the
// expensive resource; labelstore.SharedCache accumulates exactly those
// labels, and before this package they lived only in RAM — a restart
// re-paid the whole oracle bill. A Store makes the cache's versioned
// history durable the way "FO+MOD queries under updates" frames
// incremental maintenance: recovery does not recompute, it replays a
// log of updates on top of the newest checkpoint.
//
// Invariants (locked by the root crash_test.go harness and
// FuzzWALReplay):
//
//   - Atomic records: a publish or eviction is one WAL record; recovery
//     applies it entirely or not at all — never a partial batch.
//   - Consistent prefix: whatever bytes a crash leaves behind, recovery
//     yields the state after some prefix of the logged operations, with
//     the version counter equal to that prefix's length.
//   - Torn-tail truncation: the first corrupt record ends the log; the
//     tail is physically truncated and later segments removed.
//   - Version continuity: the recovered version counter continues where
//     the prefix ended, so version numbers never repeat with different
//     contents and pinned versions resolve identically or fail closed
//     (labelstore.VersionError) — never silently rebind.
package durable

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/everest-project/everest/internal/labelstore"
)

// Options configures a Store.
type Options struct {
	// FS is the filesystem the store writes through; nil means the real
	// one (OSFS). The crash-injection harness passes a fault layer.
	FS FS
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// many bytes; 0 means 1 MiB.
	SegmentBytes int
	// CheckpointEvery writes an atomic checkpoint (and truncates the
	// WAL) every this many appended records; 0 means 64, negative
	// disables automatic checkpoints.
	CheckpointEvery int
	// NoSync skips the per-append fsync. Throughput over durability:
	// a crash may then lose records an Append already acknowledged,
	// but recovery still yields a consistent prefix. The checkpoint
	// path always syncs regardless.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 64
	}
	return o
}

// Store is a durable mirror of one labelstore.SharedCache: it receives
// every publish and eviction (with the version each produced), appends
// them to the WAL, maintains the materialized state for checkpointing,
// and recovers the newest consistent prefix when reopened. It
// implements labelstore.WAL. Safe for concurrent use, though the cache
// already serializes calls under its own lock.
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex
	fs          FS
	labels      labelstore.Map
	version     uint64
	ckptVersion uint64 // newest durable checkpoint's version
	segSeq      uint64 // active segment sequence number
	seg         File   // nil until the first append after open/rotate
	segBytes    int
	recsSince   int   // records appended since the last checkpoint
	sticky      error // first fatal I/O failure; all later ops fail with it
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ck"
	tmpSuffix  = ".tmp"
)

func segName(seq uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }
func ckptName(version uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, version, ckptSuffix)
}

// parseSeq extracts the hex sequence from name given its prefix/suffix;
// ok is false for foreign files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Open opens (creating if needed) the durable store in dir and recovers
// its state: the newest valid checkpoint is loaded, the WAL replayed on
// top of it in version order, and a torn tail truncated at the first
// corrupt record. Open never panics on corrupt input — arbitrary bytes
// in the directory yield a consistent prefix or an error.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{dir: dir, opts: opts, fs: opts.FS}
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// path joins dir and a file name.
func (s *Store) path(name string) string { return s.dir + "/" + name }

// listing scans the directory into checkpoint versions (descending) and
// segment sequences (ascending). Temp files and foreign names are
// ignored.
func (s *Store) listing() (ckpts []uint64, segs []uint64, err error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: listing %s: %w", s.dir, err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		if v, ok := parseSeq(name, ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, v)
		} else if v, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, v)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs, nil
}

// loadBase returns the newest checkpoint whose version is ≤ limit and
// that validates, or the empty version-0 state. Invalid checkpoints are
// skipped (recovery falls back to the next older one); they are swept
// by the next checkpoint's cleanup, not here — recovery mutates nothing
// but the torn tail.
func (s *Store) loadBase(ckpts []uint64, limit uint64) (labelstore.Map, uint64) {
	for _, v := range ckpts {
		if v > limit {
			continue
		}
		data, err := s.fs.ReadFile(s.path(ckptName(v)))
		if err != nil {
			continue
		}
		labels, version, err := decodeCheckpoint(data)
		if err != nil || version != v {
			continue
		}
		return labels, version
	}
	return labelstore.Map{}, 0
}

// replay applies segment records on top of (labels, version), stopping
// — and, when fix is true, truncating the torn tail and removing the
// unreachable later segments — at the first corrupt or discontinuous
// record. Records at or below the starting version are stale segments'
// leftovers and are skipped; limit bounds how far to apply (MaxUint64
// for "everything valid").
func (s *Store) replay(segs []uint64, labels labelstore.Map, version, limit uint64, fix bool) (labelstore.Map, uint64, error) {
	for si, seq := range segs {
		name := s.path(segName(seq))
		data, err := s.fs.ReadFile(name)
		if err != nil {
			return labels, version, fmt.Errorf("durable: reading %s: %w", name, err)
		}
		off := 0
		for off < len(data) {
			rec, next, derr := decodeRecord(data, off)
			if derr == nil && rec.Version > version+1 {
				// A version gap means the contiguous history ends here:
				// whatever produced this record, the records before it are
				// gone, so it is unreachable — same treatment as corruption.
				derr = fmt.Errorf("durable: version gap (%d after %d) in %s", rec.Version, version, name)
			}
			if derr != nil {
				if !fix {
					return labels, version, nil
				}
				// Torn tail: cut this segment at the last valid record and
				// drop every later segment — they are beyond the first
				// corruption and therefore not part of the consistent prefix.
				if err := s.fs.Truncate(name, int64(off)); err != nil {
					return labels, version, fmt.Errorf("durable: truncating torn tail of %s: %w", name, err)
				}
				for _, later := range segs[si+1:] {
					if err := s.fs.Remove(s.path(segName(later))); err != nil {
						return labels, version, fmt.Errorf("durable: removing unreachable segment: %w", err)
					}
				}
				if err := s.fs.SyncDir(s.dir); err != nil {
					return labels, version, fmt.Errorf("durable: syncing %s: %w", s.dir, err)
				}
				return labels, version, nil
			}
			if rec.Version > limit {
				return labels, version, nil
			}
			if rec.Version == version+1 {
				switch rec.Type {
				case recPublish:
					for i, f := range rec.Frames {
						labels = labels.Set(f, rec.Scores[i])
					}
				case recEvict:
					for _, f := range rec.Frames {
						labels = labels.Delete(f)
					}
				}
				version = rec.Version
			}
			off = next
		}
	}
	return labels, version, nil
}

// recover loads the newest valid checkpoint and replays the WAL.
func (s *Store) recover() error {
	ckpts, segs, err := s.listing()
	if err != nil {
		return err
	}
	labels, version := s.loadBase(ckpts, ^uint64(0))
	s.ckptVersion = version
	labels, version, err = s.replay(segs, labels, version, ^uint64(0), true)
	if err != nil {
		return err
	}
	s.labels, s.version = labels, version
	if n := len(segs); n > 0 {
		s.segSeq = segs[n-1] + 1
	} else {
		s.segSeq = 1
	}
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Recovered returns the state recovered at Open (or adopted since):
// the label map and the version counter the cache should resume from.
func (s *Store) Recovered() (labelstore.Map, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.labels, s.version
}

// Err returns the store's sticky fatal error, if any: the first append
// or checkpoint I/O failure. A store with a sticky error keeps failing
// every later operation — the in-RAM cache stays available, but
// durability has stopped at a known prefix.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sticky
}

// AppendPublish logs one publish batch as the record that produced
// version. Frames must be sorted ascending (labelstore publishes in
// sorted fold order); version must be exactly one past the store's.
func (s *Store) AppendPublish(version uint64, frames []int, scores []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(Record{Type: recPublish, Version: version, Frames: frames, Scores: scores}); err != nil {
		return err
	}
	for i, f := range frames {
		s.labels = s.labels.Set(f, scores[i])
	}
	s.version = version
	return s.maybeCheckpointLocked()
}

// AppendEvict logs one eviction pass as the record that produced
// version.
func (s *Store) AppendEvict(version uint64, frames []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sorted := append([]int(nil), frames...)
	sort.Ints(sorted)
	if err := s.appendLocked(Record{Type: recEvict, Version: version, Frames: sorted}); err != nil {
		return err
	}
	for _, f := range sorted {
		s.labels = s.labels.Delete(f)
	}
	s.version = version
	return s.maybeCheckpointLocked()
}

// appendLocked validates continuity, encodes and writes one record to
// the active segment, syncing per the options. Caller holds s.mu.
func (s *Store) appendLocked(rec Record) error {
	if s.sticky != nil {
		return s.sticky
	}
	if rec.Version != s.version+1 {
		return fmt.Errorf("durable: version discontinuity: appending %d onto %d", rec.Version, s.version)
	}
	if s.seg == nil {
		seg, err := s.fs.OpenAppend(s.path(segName(s.segSeq)))
		if err != nil {
			return s.fail(fmt.Errorf("durable: opening segment: %w", err))
		}
		s.seg = seg
		s.segBytes = 0
	}
	buf := appendRecord(nil, rec)
	if _, err := s.seg.Write(buf); err != nil {
		return s.fail(fmt.Errorf("durable: appending record: %w", err))
	}
	if !s.opts.NoSync {
		if err := s.seg.Sync(); err != nil {
			return s.fail(fmt.Errorf("durable: syncing segment: %w", err))
		}
	}
	s.segBytes += len(buf)
	s.recsSince++
	if s.segBytes >= s.opts.SegmentBytes {
		s.rotateLocked()
	}
	return nil
}

// fail records the first fatal error and returns it.
func (s *Store) fail(err error) error {
	if s.sticky == nil {
		s.sticky = err
	}
	return s.sticky
}

// rotateLocked closes the active segment and directs future appends at
// the next one. Caller holds s.mu.
func (s *Store) rotateLocked() {
	if s.seg != nil {
		_ = s.seg.Close()
		s.seg = nil
	}
	s.segSeq++
	s.segBytes = 0
}

// maybeCheckpointLocked runs the automatic checkpoint cadence.
func (s *Store) maybeCheckpointLocked() error {
	if s.opts.CheckpointEvery <= 0 || s.recsSince < s.opts.CheckpointEvery {
		return nil
	}
	return s.checkpointLocked()
}

// Checkpoint forces an atomic checkpoint of the current state and
// truncates the WAL behind it.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sticky != nil {
		return s.sticky
	}
	return s.checkpointLocked()
}

// checkpointLocked writes the materialized state atomically — temp
// file, fsync, rename, directory fsync — then rotates the WAL and
// removes the segments and older checkpoints the new one supersedes.
// The deletions run only after the rename is durable, so a crash at any
// point leaves either the old recovery chain or the new one intact.
// Caller holds s.mu.
func (s *Store) checkpointLocked() error {
	final := s.path(ckptName(s.version))
	tmp := final + tmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return s.fail(fmt.Errorf("durable: creating checkpoint temp: %w", err))
	}
	_, werr := f.Write(encodeCheckpoint(s.labels, s.version))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return s.fail(fmt.Errorf("durable: writing checkpoint: %w", werr))
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return s.fail(fmt.Errorf("durable: publishing checkpoint: %w", err))
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return s.fail(fmt.Errorf("durable: syncing checkpoint: %w", err))
	}
	s.ckptVersion = s.version
	s.recsSince = 0
	// The WAL behind the checkpoint is now redundant: every record in
	// every existing segment is ≤ the checkpointed version (appends and
	// checkpoints serialize under s.mu). Rotate so new records land in a
	// fresh segment, then sweep. Sweep failures are fatal-sticky like any
	// other I/O failure; a crash mid-sweep just leaves stale files that
	// recovery skips by version.
	s.rotateLocked()
	ckpts, segs, err := s.listing()
	if err != nil {
		return s.fail(err)
	}
	kept := 0
	for _, v := range ckpts { // descending
		kept++
		if kept <= 2 { // newest two: belt and braces against a bad disk
			continue
		}
		if err := s.fs.Remove(s.path(ckptName(v))); err != nil {
			return s.fail(fmt.Errorf("durable: sweeping old checkpoint: %w", err))
		}
	}
	for _, seq := range segs {
		if seq < s.segSeq {
			if err := s.fs.Remove(s.path(segName(seq))); err != nil {
				return s.fail(fmt.Errorf("durable: sweeping old segment: %w", err))
			}
		}
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return s.fail(fmt.Errorf("durable: syncing sweep: %w", err))
	}
	return nil
}

// Adopt installs (labels, version) as the store's baseline — the warm-
// cache attach path, where a cache that already holds published state
// becomes durable. Only an empty store (fresh directory, no recovered
// state) can adopt: adopting over existing durable history would let
// the version counter regress, breaking the continuity rule.
func (s *Store) Adopt(labels labelstore.Map, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sticky != nil {
		return s.sticky
	}
	if s.version != 0 || s.labels.Len() != 0 {
		return fmt.Errorf("durable: %s already holds state at version %d; cannot adopt a different cache", s.dir, s.version)
	}
	s.labels, s.version = labels, version
	return s.checkpointLocked()
}

// StateAt reconstructs the exact label map at a historical version by
// replaying the on-disk log up to it. It fails closed with a typed
// *labelstore.VersionError when the version is ahead of the store,
// below the truncation horizon (no remaining checkpoint precedes it),
// or not reconstructible from the surviving records — never returning
// a different label set under the requested version number.
func (s *Store) StateAt(version uint64) (labelstore.Map, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if version == s.version {
		return s.labels, nil
	}
	if version > s.version {
		return labelstore.Map{}, &labelstore.VersionError{
			Version: version, Newest: s.version,
			Reason: "version is ahead of the durable store",
		}
	}
	ckpts, segs, err := s.listing()
	if err != nil {
		return labelstore.Map{}, &labelstore.VersionError{Version: version, Newest: s.version, Reason: err.Error()}
	}
	// Base from the newest checkpoint at or below the requested version.
	// When none survives (the WAL behind the newest checkpoint was
	// truncated), the replay from version 0 below succeeds only if the
	// raw log still reaches the request — otherwise it is beyond the
	// truncation horizon and fails closed.
	labels, base := s.loadBase(ckpts, version)
	labels, got, err := s.replay(segs, labels, base, version, false)
	if err != nil || got != version {
		reason := "version predates the truncation horizon"
		if err != nil {
			reason = err.Error()
		}
		return labelstore.Map{}, &labelstore.VersionError{
			Version: version, Oldest: s.ckptVersion, Newest: s.version, Reason: reason,
		}
	}
	return labels, nil
}

// Version returns the store's current version counter.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Close closes the active segment handle. The store's contents are
// already durable per the sync policy; Close is hygiene, not a flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg != nil {
		err := s.seg.Close()
		s.seg = nil
		return err
	}
	return nil
}
