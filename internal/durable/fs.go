package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the durability layer writes through. It
// exists so the crash-injection harness (internal/faultinject's
// filesystem fault layer) can interpose torn writes, failed fsyncs and
// crash-at-offset faults between the store and the disk; production
// stores use OSFS. Every mutating operation a Store performs goes
// through this interface — there is no side channel — which is what
// makes "crash at the k-th write" a complete enumeration of the store's
// failure points.
type FS interface {
	// MkdirAll creates dir (and parents) if absent.
	MkdirAll(dir string) error
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns name's full contents.
	ReadFile(name string) ([]byte, error)
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and removes
	// durable.
	SyncDir(dir string) error
}

// File is one writable file of an FS.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Close releases the handle (without an implicit Sync).
	Close() error
}

// OSFS is the production FS: direct os calls.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS. Directory fsync makes the metadata operations
// (rename, remove, create) durable; on platforms where directories
// cannot be fsynced the error is reported to the caller.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
