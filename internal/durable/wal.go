package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// WAL record wire format. Each record is self-delimiting and
// self-validating, so recovery can walk a segment byte stream and stop
// at the first record whose checksum or framing fails — the torn tail a
// crash mid-append leaves behind:
//
//	uint32  CRC32 (IEEE) of the length field and the payload
//	uint32  payload length (little-endian)
//	payload:
//	  byte     record type (1 = publish, 2 = evict)
//	  uvarint  version — the cache version this record produced
//	  uvarint  count   — number of frames in the record
//	  publish: count × (uvarint frame delta, 8-byte score bits)
//	  evict:   count × (uvarint frame delta)
//
// Frames are stored sorted ascending and delta-encoded (first frame
// absolute, the rest as gaps), matching the sorted fold order
// labelstore.SharedCache.Publish already guarantees. Scores are raw
// IEEE-754 bits, so replay reproduces them bit-exactly.
const (
	recPublish byte = 1
	recEvict   byte = 2

	recHeaderLen = 8
	// maxRecordLen bounds a single record's payload so an adversarial or
	// corrupt length field can never drive a multi-gigabyte allocation
	// during recovery: framing beyond it is treated as corruption.
	maxRecordLen = 1 << 26
)

// Record is one decoded WAL record.
type Record struct {
	Type    byte
	Version uint64
	Frames  []int
	Scores  []float64 // publish records only, parallel to Frames
}

// appendRecord encodes r onto buf and returns the extended slice.
func appendRecord(buf []byte, r Record) []byte {
	payload := make([]byte, 0, 16+len(r.Frames)*10)
	payload = append(payload, r.Type)
	payload = binary.AppendUvarint(payload, r.Version)
	payload = binary.AppendUvarint(payload, uint64(len(r.Frames)))
	prev := 0
	for i, f := range r.Frames {
		payload = binary.AppendUvarint(payload, uint64(f-prev))
		prev = f
		if r.Type == recPublish {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(r.Scores[i]))
		}
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[:4], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeRecord reads the record starting at data[off]. It returns the
// record and the offset just past it. A framing or checksum failure
// returns an error and leaves next == off — recovery truncates there.
func decodeRecord(data []byte, off int) (rec Record, next int, err error) {
	if len(data)-off < recHeaderLen {
		return Record{}, off, fmt.Errorf("durable: truncated record header at offset %d", off)
	}
	crc := binary.LittleEndian.Uint32(data[off:])
	plen := int(binary.LittleEndian.Uint32(data[off+4:]))
	if plen <= 0 || plen > maxRecordLen || len(data)-off-recHeaderLen < plen {
		return Record{}, off, fmt.Errorf("durable: bad record length %d at offset %d", plen, off)
	}
	payload := data[off+recHeaderLen : off+recHeaderLen+plen]
	got := crc32.ChecksumIEEE(data[off+4 : off+recHeaderLen])
	got = crc32.Update(got, crc32.IEEETable, payload)
	if got != crc {
		return Record{}, off, fmt.Errorf("durable: record checksum mismatch at offset %d", off)
	}
	rec, err = parsePayload(payload)
	if err != nil {
		return Record{}, off, fmt.Errorf("durable: %w at offset %d", err, off)
	}
	return rec, off + recHeaderLen + plen, nil
}

// parsePayload decodes a checksum-valid payload. A payload that passes
// the CRC but fails structural validation is still treated as
// corruption — the checksum guards bit rot, not logic errors.
func parsePayload(p []byte) (Record, error) {
	if len(p) < 1 {
		return Record{}, fmt.Errorf("empty record payload")
	}
	rec := Record{Type: p[0]}
	if rec.Type != recPublish && rec.Type != recEvict {
		return Record{}, fmt.Errorf("unknown record type %d", rec.Type)
	}
	p = p[1:]
	version, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, fmt.Errorf("bad record version field")
	}
	p = p[n:]
	rec.Version = version
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxRecordLen {
		return Record{}, fmt.Errorf("bad record frame count")
	}
	p = p[n:]
	rec.Frames = make([]int, 0, count)
	if rec.Type == recPublish {
		rec.Scores = make([]float64, 0, count)
	}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(p)
		if n <= 0 {
			return Record{}, fmt.Errorf("bad frame delta")
		}
		p = p[n:]
		prev += delta
		if prev > math.MaxInt32 {
			return Record{}, fmt.Errorf("frame index %d out of range", prev)
		}
		rec.Frames = append(rec.Frames, int(prev))
		if rec.Type == recPublish {
			if len(p) < 8 {
				return Record{}, fmt.Errorf("truncated score")
			}
			rec.Scores = append(rec.Scores, math.Float64frombits(binary.LittleEndian.Uint64(p)))
			p = p[8:]
		}
	}
	if len(p) != 0 {
		return Record{}, fmt.Errorf("%d trailing payload bytes", len(p))
	}
	return rec, nil
}
