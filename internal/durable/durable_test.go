package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/everest-project/everest/internal/labelstore"
)

// publishN appends n publish batches, batch i (1-based version) holding
// frames {10i, 10i+1} with scores derived from the frame.
func publishN(t *testing.T, s *Store, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		frames := []int{10 * i, 10*i + 1}
		scores := []float64{float64(10 * i), float64(10*i + 1)}
		if err := s.AppendPublish(uint64(i), frames, scores); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
}

// stateMap flattens a labelstore.Map for comparison.
func stateMap(m labelstore.Map) map[int]float64 {
	out := make(map[int]float64)
	m.Range(func(f int, v float64) bool {
		out[f] = v
		return true
	})
	return out
}

// wantState returns the expected flattened state after the first n
// publishN batches.
func wantState(n int) map[int]float64 {
	out := make(map[int]float64)
	for i := 1; i <= n; i++ {
		out[10*i] = float64(10 * i)
		out[10*i+1] = float64(10*i + 1)
	}
	return out
}

func assertState(t *testing.T, m labelstore.Map, version uint64, wantN int) {
	t.Helper()
	if version != uint64(wantN) {
		t.Fatalf("version %d, want %d", version, wantN)
	}
	got, want := stateMap(m), wantState(wantN)
	if len(got) != len(want) {
		t.Fatalf("recovered %d labels, want %d", len(got), len(want))
	}
	for f, v := range want {
		if got[f] != v {
			t.Fatalf("frame %d: recovered %v, want %v", f, got[f], v)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 1, 7)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m, v := r.Recovered()
	assertState(t, m, v, 7)
	// Version continuity: the reopened store accepts exactly version 8.
	if err := r.AppendPublish(9, []int{1}, []float64{1}); err == nil {
		t.Fatal("version gap accepted")
	}
	if err := r.AppendPublish(8, []int{80}, []float64{80}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreEvictionReplays(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 1, 3) // versions 1..3
	if err := s.AppendEvict(4, []int{10, 11}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m, v := r.Recovered()
	if v != 4 {
		t.Fatalf("version %d, want 4", v)
	}
	got := stateMap(m)
	if _, ok := got[10]; ok {
		t.Fatal("evicted frame 10 resurrected by replay")
	}
	if len(got) != 4 {
		t.Fatalf("recovered %d labels, want 4 (batches 2,3)", len(got))
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 1, 5)
	s.Close()

	// Tear the active segment: chop bytes off its end, then smear a few
	// garbage bytes — a torn append.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{}, data[:len(data)-9]...)
	torn = append(torn, 0xde, 0xad)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m, v := r.Recovered()
	assertState(t, m, v, 4) // record 5 torn, 1..4 intact
	// The tail was physically truncated: reopening again finds a clean log.
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(torn)) == fi.Size() {
		t.Fatal("torn tail not truncated")
	}
}

func TestStoreCorruptMidSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates into its own segment.
	s, err := Open(dir, Options{SegmentBytes: 1, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 1, 5)
	s.Close()

	// Flip a payload byte in segment 2 (record with version 2).
	seg := filepath.Join(dir, segName(2))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m, v := r.Recovered()
	assertState(t, m, v, 1) // consistent prefix ends before the corruption
	// Segments past the corruption are unreachable and must be gone.
	for seq := uint64(3); seq <= 5; seq++ {
		if _, err := os.Stat(filepath.Join(dir, segName(seq))); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("unreachable segment %d survived recovery", seq)
		}
	}
}

func TestStoreCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 1, 10) // checkpoints at v4 and v8
	s.Close()

	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts, segs := 0, 0
	for _, e := range names {
		if strings.HasSuffix(e.Name(), ckptSuffix) {
			ckpts++
		}
		if strings.HasSuffix(e.Name(), segSuffix) {
			segs++
		}
	}
	if ckpts != 2 {
		t.Fatalf("%d checkpoints on disk, want the newest 2", ckpts)
	}
	if segs != 1 {
		t.Fatalf("%d segments on disk, want 1 (WAL truncated at checkpoint)", segs)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m, v := r.Recovered()
	assertState(t, m, v, 10)
}

func TestStoreCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, s, 1, 7) // checkpoints at v3 and v6; records 7 in WAL
	s.Close()

	// Corrupt the newest checkpoint (v6). Recovery must fall back to v3
	// — but records 4..7 were truncated at the v6 checkpoint, so the
	// consistent prefix is v3: stale, but a prefix, never garbage.
	data, err := os.ReadFile(filepath.Join(dir, ckptName(6)))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, ckptName(6)), data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, v := r.Recovered()
	if v != 3 {
		t.Fatalf("recovered version %d, want fallback checkpoint 3", v)
	}
}

func TestStoreStateAt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	publishN(t, s, 1, 6)

	for _, v := range []uint64{1, 3, 6} {
		m, err := s.StateAt(v)
		if err != nil {
			t.Fatalf("StateAt(%d): %v", v, err)
		}
		assertState(t, m, v, int(v))
	}
	// Version 0 is the empty store.
	m, err := s.StateAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("StateAt(0) has %d labels", m.Len())
	}
	// Ahead of the store: fail closed.
	var verr *labelstore.VersionError
	if _, err := s.StateAt(7); !errors.As(err, &verr) {
		t.Fatalf("StateAt(7) = %v, want *labelstore.VersionError", err)
	}
}

func TestStoreStateAtHorizonFailsClosed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	publishN(t, s, 1, 8) // checkpoints at 3 and 6; WAL now holds 7,8 only

	// v6 (exact checkpoint) and v7, v8 (checkpoint + surviving WAL) work.
	for _, v := range []uint64{6, 7, 8} {
		m, err := s.StateAt(v)
		if err != nil {
			t.Fatalf("StateAt(%d): %v", v, err)
		}
		assertState(t, m, v, int(v))
	}
	// v3 still works: its checkpoint file is one of the two kept.
	if _, err := s.StateAt(3); err != nil {
		t.Fatalf("StateAt(3): %v", err)
	}
	// v4 is beyond reconstruction: records 4,5 were truncated at the v6
	// checkpoint and no kept checkpoint lands on it. Fail closed.
	var verr *labelstore.VersionError
	if _, err := s.StateAt(4); !errors.As(err, &verr) {
		t.Fatalf("StateAt(4) = %v, want *labelstore.VersionError", err)
	}
	if verr.Version != 4 || verr.Newest != 8 {
		t.Fatalf("VersionError fields off: %+v", verr)
	}
}

func TestStoreAdopt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var warm labelstore.Map
	warm = warm.Set(5, 50).Set(9, 90)
	if err := s.Adopt(warm, 12); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPublish(13, []int{20}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, v := r.Recovered()
	if v != 13 || m.Len() != 3 {
		t.Fatalf("adopted store recovered v%d with %d labels, want v13 / 3", v, m.Len())
	}
	// A store that already holds state refuses a second adoption.
	if err := r.Adopt(warm, 2); err == nil {
		t.Fatal("non-empty store accepted Adopt")
	}
	r.Close()
}

func TestStoreGarbageDirectoryNeverPanics(t *testing.T) {
	dir := t.TempDir()
	// A garbage segment, a garbage checkpoint, a foreign file and a
	// stale temp: recovery must shrug all of them off.
	files := map[string][]byte{
		segName(1):              []byte("not a wal segment at all"),
		ckptName(9):             []byte("EVCKPT01 but not really"),
		"README.txt":            []byte("hello"),
		ckptName(3) + tmpSuffix: make([]byte, 100),
		segName(2):              {},
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, v := s.Recovered()
	if v != 0 || m.Len() != 0 {
		t.Fatalf("garbage directory recovered v%d / %d labels, want empty", v, m.Len())
	}
	// And the store still works.
	if err := s.AppendPublish(1, []int{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
}
