package vision

import (
	"errors"
	"fmt"

	"github.com/everest-project/everest/internal/video"
)

// FallibleUDF is the optional error-returning extension of UDF — the
// dispatch-boundary contract of the fault-tolerance layer. A UDF whose
// oracle can fail (a remote model, a fault-injection wrapper) implements
// TryScore; the engine's dispatch path prefers it over Score, classifies
// the error (see Transient) and retries transient failures with
// simulated backoff. Plain UDFs are dispatched through SafeScore's panic
// recovery instead, so a panicking oracle surfaces as a typed
// *OracleError either way — never as a panic in a caller goroutine.
type FallibleUDF interface {
	// TryScore is Score with an error channel: it returns the exact raw
	// score of each listed frame, or an error describing why the oracle
	// could not. Like Score it must be safe for concurrent calls.
	TryScore(src video.Source, ids []int) ([]float64, error)
}

// OracleError is the typed failure of one oracle dispatch: which UDF,
// which frames, and whether the oracle panicked or returned an error.
// It is the error Session.Query and friends surface when a tenant's UDF
// fails or panics — a panicking UDF must never crash a serving process.
type OracleError struct {
	// UDF names the scoring function that failed.
	UDF string
	// Frames lists the frame IDs of the failed dispatch.
	Frames []int
	// Panic is the recovered panic value when the oracle panicked
	// (nil for plain errors).
	Panic any
	// Err is the underlying error (nil for pure panics).
	Err error
	// Transient marks failures worth retrying: the oracle said (via the
	// Transient() classification hook) that a later attempt may succeed.
	// Panics and unclassified errors are permanent.
	Transient bool
}

// Error implements error.
func (e *OracleError) Error() string {
	switch {
	case e.Panic != nil:
		return fmt.Sprintf("vision: oracle %s panicked scoring %d frames: %v", e.UDF, len(e.Frames), e.Panic)
	case e.Transient:
		return fmt.Sprintf("vision: oracle %s transiently failed scoring %d frames: %v", e.UDF, len(e.Frames), e.Err)
	default:
		return fmt.Sprintf("vision: oracle %s failed scoring %d frames: %v", e.UDF, len(e.Frames), e.Err)
	}
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *OracleError) Unwrap() error { return e.Err }

// OracleFailure marks the error as an oracle-availability failure — the
// class of error a degraded-mode query (Plan.DegradedOK) may answer
// around with proxy-only results. The engine's Phase 2 loop probes for
// this method rather than importing this package.
func (e *OracleError) OracleFailure() bool { return true }

// transienter is the classification hook fault sources implement on
// their error types: Transient() true means a retry may succeed.
type transienter interface{ Transient() bool }

// Transient reports whether err is a retryable oracle failure: an
// *OracleError marked transient, or any error in the chain implementing
// Transient() bool returning true.
func Transient(err error) bool {
	var oe *OracleError
	if errors.As(err, &oe) {
		return oe.Transient
	}
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// SafeScore is the one oracle dispatch boundary: it scores ids with the
// UDF — via TryScore when implemented, Score otherwise — and converts
// every failure mode into a typed *OracleError: returned errors are
// wrapped (carrying their Transient classification), panics are
// recovered, and a wrong-length score slice is rejected. On success the
// scores are exactly what a direct udf.Score call would return, at zero
// added cost — the fault layer never perturbs the golden path.
func SafeScore(udf UDF, src video.Source, ids []int) (scores []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			scores = nil
			err = &OracleError{UDF: udf.Name(), Frames: append([]int(nil), ids...), Panic: r}
		}
	}()
	if f, ok := udf.(FallibleUDF); ok {
		scores, err = f.TryScore(src, ids)
		if err != nil {
			var oe *OracleError
			if errors.As(err, &oe) {
				return nil, oe
			}
			return nil, &OracleError{
				UDF:       udf.Name(),
				Frames:    append([]int(nil), ids...),
				Err:       err,
				Transient: Transient(err),
			}
		}
	} else {
		scores = udf.Score(src, ids)
	}
	if len(scores) != len(ids) {
		return nil, &OracleError{
			UDF:    udf.Name(),
			Frames: append([]int(nil), ids...),
			Err:    fmt.Errorf("oracle returned %d scores for %d frames", len(scores), len(ids)),
		}
	}
	return scores, nil
}
