package vision

import (
	"math"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
)

func trafficSource(t *testing.T, frames int) *video.Synthetic {
	t.Helper()
	s, err := video.NewSynthetic(video.Config{
		Name: "vtest", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: 5, MeanPopulation: 3, BurstRate: 2,
		DistractorPopulation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIoU(t *testing.T) {
	a := BBox{0, 0, 1, 1}
	if got := a.IoU(a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self IoU = %v", got)
	}
	b := BBox{0.5, 0, 1, 1}
	if got := a.IoU(b); math.Abs(got-0.5/1.5) > 1e-12 {
		t.Fatalf("IoU = %v, want 1/3", got)
	}
	c := BBox{2, 2, 1, 1}
	if a.IoU(c) != 0 {
		t.Fatal("disjoint IoU should be 0")
	}
}

func TestOracleDetectorExact(t *testing.T) {
	src := trafficSource(t, 2000)
	det := OracleDetector{}
	for i := 0; i < 2000; i += 53 {
		got := CountClass(det.Detect(src, i), video.ClassCar)
		if got != src.TrueCountFast(i) {
			t.Fatalf("frame %d: oracle count %d, truth %d", i, got, src.TrueCountFast(i))
		}
	}
}

func TestCountUDFMatchesOracle(t *testing.T) {
	src := trafficSource(t, 1000)
	udf := CountUDF{Class: video.ClassCar}
	ids := []int{0, 17, 400, 999}
	scores := udf.Score(src, ids)
	for k, i := range ids {
		if int(scores[k]) != src.TrueCountFast(i) {
			t.Fatalf("frame %d: UDF %v, truth %d", i, scores[k], src.TrueCountFast(i))
		}
	}
	if udf.Quantize().Step != 1 {
		t.Fatal("counting UDF must quantize at unit step")
	}
}

func TestNoisyDetectorsDeterministic(t *testing.T) {
	src := trafficSource(t, 500)
	for _, det := range []Detector{NewTinyDetector(), NewHOGDetector()} {
		a := det.Detect(src, 123)
		b := det.Detect(src, 123)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic detection count", det.Name())
		}
		for i := range a {
			if a[i].Box != b[i].Box {
				t.Fatalf("%s: nondeterministic boxes", det.Name())
			}
		}
	}
}

func TestNoisyDetectorsAreWorseThanOracle(t *testing.T) {
	src := trafficSource(t, 3000)
	for _, det := range []Detector{NewTinyDetector(), NewHOGDetector()} {
		scorer := ApproxCountScorer{Det: det, Class: video.ClassCar}
		var absErr float64
		n := 0
		for i := 0; i < 3000; i += 7 {
			diff := scorer.Score(src, i) - float64(src.TrueCountFast(i))
			absErr += math.Abs(diff)
			n++
		}
		mean := absErr / float64(n)
		if mean < 0.3 {
			t.Fatalf("%s: mean abs error %v too small — baseline should be inaccurate", det.Name(), mean)
		}
		if mean > 6 {
			t.Fatalf("%s: mean abs error %v absurdly large", det.Name(), mean)
		}
	}
}

func TestNoisyDetectorCorrelatesWithTruth(t *testing.T) {
	// Inaccurate but not useless: counts should still correlate.
	src := trafficSource(t, 3000)
	scorer := ApproxCountScorer{Det: NewTinyDetector(), Class: video.ClassCar}
	var xs, ys []float64
	for i := 0; i < 3000; i += 5 {
		xs = append(xs, scorer.Score(src, i))
		ys = append(ys, float64(src.TrueCountFast(i)))
	}
	if r := pearson(xs, ys); r < 0.5 {
		t.Fatalf("tiny detector correlation %v too weak", r)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	den := math.Sqrt((sxx - sx*sx/n) * (syy - sy*sy/n))
	if den == 0 {
		return 0
	}
	return (sxy - sx*sy/n) / den
}

func TestDetectorCosts(t *testing.T) {
	cost := simclock.Default()
	if (OracleDetector{}).FrameCostMS(cost) != cost.OracleMS {
		t.Fatal("oracle cost wrong")
	}
	if NewTinyDetector().FrameCostMS(cost) >= (OracleDetector{}).FrameCostMS(cost) {
		t.Fatal("tiny detector must be cheaper than oracle")
	}
	if NewHOGDetector().FrameCostMS(cost) < cost.OracleMS {
		t.Fatal("HOG must be oracle-scale or slower (§4.1)")
	}
}

func TestTrackerRecoverIdentities(t *testing.T) {
	// Tracking oracle detections over consecutive frames should keep IDs
	// stable: the set of tracker IDs present across a short span should
	// roughly equal the number of true object identities.
	src := trafficSource(t, 2000)
	det := OracleDetector{}
	tracker := NewTracker()
	trueIDs := make(map[int]bool)
	trackIDs := make(map[int]bool)
	start := 0
	for i := start; i < start+120; i++ {
		dets := det.Detect(src, i)
		for _, d := range dets {
			trueIDs[d.ObjectID] = true
		}
		for k := range dets {
			dets[k].ObjectID = 0
		}
		for _, d := range tracker.Track(dets) {
			trackIDs[d.ObjectID] = true
		}
	}
	if len(trueIDs) == 0 {
		t.Skip("no objects in span")
	}
	ratio := float64(len(trackIDs)) / float64(len(trueIDs))
	if ratio > 2.5 {
		t.Fatalf("tracker fragmented identities: %d tracks for %d objects", len(trackIDs), len(trueIDs))
	}
}

func TestTrackerAssignsFreshIDs(t *testing.T) {
	tr := NewTracker()
	d1 := tr.Track([]Detection{{Class: "car", Box: BBox{0.1, 0.1, 0.2, 0.2}}})
	if d1[0].ObjectID == 0 {
		t.Fatal("no ID assigned")
	}
	// Same position next frame: same ID.
	d2 := tr.Track([]Detection{{Class: "car", Box: BBox{0.11, 0.1, 0.2, 0.2}}})
	if d2[0].ObjectID != d1[0].ObjectID {
		t.Fatal("overlapping detection did not inherit ID")
	}
	// Different class at same position: new ID.
	d3 := tr.Track([]Detection{{Class: "bus", Box: BBox{0.11, 0.1, 0.2, 0.2}}})
	if d3[0].ObjectID == d2[0].ObjectID {
		t.Fatal("class mismatch must not match tracks")
	}
}

func TestMaterializeRelation(t *testing.T) {
	src := trafficSource(t, 300)
	rows := MaterializeRelation(src, OracleDetector{}, 0, 300)
	// Row count equals total object appearances.
	want := 0
	for i := 0; i < 300; i++ {
		want += len(src.Scene(i).Objects)
	}
	if len(rows) != want {
		t.Fatalf("relation has %d rows, want %d", len(rows), want)
	}
	s := FormatRelation(rows, 5)
	if len(s) == 0 {
		t.Fatal("empty formatting")
	}
}

func TestTailgateUDF(t *testing.T) {
	spec, err := video.DatasetByName("Dashcam-California")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(5000)
	if err != nil {
		t.Fatal(err)
	}
	udf := TailgateUDF{}
	ids := []int{0, 100, 2500, 4999}
	scores := udf.Score(src, ids)
	for k, i := range ids {
		want := math.Max(0, 40-src.LeadGap(i))
		if math.Abs(scores[k]-want) > 1e-9 {
			t.Fatalf("frame %d: score %v, want %v", i, scores[k], want)
		}
	}
	q := udf.Quantize()
	if q.Step != 0.5 || q.MinLevel != 0 || q.MaxLevel != 80 {
		t.Fatalf("quantization %+v unexpected", q)
	}
}

func TestSentimentUDF(t *testing.T) {
	spec, err := video.DatasetByName("Daxi-old-street")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(5000)
	if err != nil {
		t.Fatal(err)
	}
	udf := SentimentUDF{}
	scores := udf.Score(src, []int{42, 4242})
	for _, s := range scores {
		if s < 0 || s > 100 {
			t.Fatalf("sentiment score %v out of range", s)
		}
	}
}
