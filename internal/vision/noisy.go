package vision

import (
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/xrand"
)

// noisyDetector is the shared machinery of the cheap inaccurate baselines:
// each true object is detected with probability 1−miss (scaled down for
// small objects), spurious detections arrive Poisson(falsePos), and boxes
// are jittered. Noise is deterministic per (detector, source, frame).
type noisyDetector struct {
	name     string
	seed     uint64
	miss     float64 // base miss probability
	sizeMiss float64 // additional miss probability for the smallest objects
	falsePos float64 // expected spurious detections per frame
	jitter   float64 // box-coordinate noise
}

func (d *noisyDetector) Detect(src video.Source, i int) []Detection {
	r := xrand.New(d.seed).Split(src.Name()).SplitIndex(uint64(i))
	sc := src.Scene(i)
	var out []Detection
	for _, o := range sc.Objects {
		// Small objects are disproportionately missed, as with real
		// shallow detectors.
		smallness := 1 - minF(o.W/0.12, 1)
		pMiss := d.miss + d.sizeMiss*smallness
		if r.Float64() < pMiss {
			continue
		}
		out = append(out, Detection{
			Frame: i,
			Class: o.Class,
			Box: BBox{
				X: o.X + d.jitter*r.Norm(),
				Y: o.Y + d.jitter*r.Norm(),
				W: o.W * (1 + d.jitter*r.Norm()),
				H: o.H * (1 + d.jitter*r.Norm()),
			},
			Confidence: 0.4 + 0.5*r.Float64(),
		})
	}
	// False positives copy the class mix of the scene's target objects.
	nFP := r.Poisson(d.falsePos)
	for k := 0; k < nFP; k++ {
		class := src.TargetClass()
		out = append(out, Detection{
			Frame:      i,
			Class:      class,
			Box:        BBox{X: r.Float64(), Y: r.Float64(), W: 0.05, H: 0.04},
			Confidence: 0.3 + 0.3*r.Float64(),
		})
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// TinyDetector simulates TinyYOLOv3: fast, but with "so few layers its
// precision and score error are no better than HOG" (§4.1).
type TinyDetector struct{ noisyDetector }

// NewTinyDetector returns a TinyYOLOv3-class detector.
func NewTinyDetector() *TinyDetector {
	return &TinyDetector{noisyDetector{
		name: "tinyyolov3", seed: 0x717170,
		miss: 0.30, sizeMiss: 0.35, falsePos: 0.8, jitter: 0.02,
	}}
}

// Name implements Detector.
func (d *TinyDetector) Name() string { return d.name }

// FrameCostMS implements Detector.
func (d *TinyDetector) FrameCostMS(cost simclock.CostModel) float64 { return cost.TinyMS }

// HOGDetector simulates the classic HOG+SVM sliding-window detector [20]:
// no deep learning, hundreds of SVM evaluations per frame (slow), and
// score errors far above the oracle's.
type HOGDetector struct{ noisyDetector }

// NewHOGDetector returns a HOG+SVM-class detector.
func NewHOGDetector() *HOGDetector {
	return &HOGDetector{noisyDetector{
		name: "hog-svm", seed: 0x40609,
		miss: 0.35, sizeMiss: 0.40, falsePos: 1.6, jitter: 0.04,
	}}
}

// Name implements Detector.
func (d *HOGDetector) Name() string { return d.name }

// FrameCostMS implements Detector.
func (d *HOGDetector) FrameCostMS(cost simclock.CostModel) float64 { return cost.HOGMS }

// ApproxCountScorer adapts a cheap detector into a per-frame approximate
// scorer for baseline rankers.
type ApproxCountScorer struct {
	// Det is the underlying detector.
	Det Detector
	// Class is the counting target.
	Class string
}

// Score returns the detector's class count for frame i.
func (a ApproxCountScorer) Score(src video.Source, i int) float64 {
	return float64(CountClass(a.Det.Detect(src, i), a.Class))
}
