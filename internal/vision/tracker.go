package vision

import "sort"

// Tracker assigns stable object IDs across consecutive frames by greedy
// IoU matching, reproducing the role of the entity-resolution tracker [67]
// that populates the objectID column of the paper's video relation
// (Table 2). Feed frames in order; each call matches against the previous
// frame's tracked detections.
type Tracker struct {
	// MinIoU is the matching threshold; zero means 0.3.
	MinIoU float64

	nextID int
	prev   []Detection
}

// NewTracker returns a tracker with fresh identity state.
func NewTracker() *Tracker { return &Tracker{nextID: 1} }

func (t *Tracker) minIoU() float64 {
	if t.MinIoU == 0 {
		return 0.3
	}
	return t.MinIoU
}

// Track assigns ObjectIDs to dets (detections of one frame) and returns
// them. Detections matching a previous-frame detection of the same class
// with IoU above threshold inherit its ID; the rest get fresh IDs.
func (t *Tracker) Track(dets []Detection) []Detection {
	type pair struct {
		iou      float64
		cur, prv int
	}
	var pairs []pair
	for ci, c := range dets {
		for pi, p := range t.prev {
			if c.Class != p.Class {
				continue
			}
			if iou := c.Box.IoU(p.Box); iou >= t.minIoU() {
				pairs = append(pairs, pair{iou, ci, pi})
			}
		}
	}
	// Greedy best-IoU-first matching, each side used once.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].iou != pairs[j].iou {
			return pairs[i].iou > pairs[j].iou
		}
		if pairs[i].cur != pairs[j].cur {
			return pairs[i].cur < pairs[j].cur
		}
		return pairs[i].prv < pairs[j].prv
	})
	curUsed := make([]bool, len(dets))
	prvUsed := make([]bool, len(t.prev))
	for _, p := range pairs {
		if curUsed[p.cur] || prvUsed[p.prv] {
			continue
		}
		dets[p.cur].ObjectID = t.prev[p.prv].ObjectID
		curUsed[p.cur] = true
		prvUsed[p.prv] = true
	}
	for i := range dets {
		if !curUsed[i] {
			t.nextID++
			dets[i].ObjectID = t.nextID
		}
	}
	t.prev = append(t.prev[:0], dets...)
	return dets
}
