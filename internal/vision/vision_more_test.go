package vision

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/xrand"
)

func randBox(r *xrand.RNG) BBox {
	return BBox{
		X: r.Float64(), Y: r.Float64(),
		W: 0.01 + 0.5*r.Float64(), H: 0.01 + 0.5*r.Float64(),
	}
}

func TestIoUProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a, b := randBox(r), randBox(r)
		ab, ba := a.IoU(b), b.IoU(a)
		// Symmetric, bounded, and exactly 1 only against itself.
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		if ab < 0 || ab > 1 {
			return false
		}
		if math.Abs(a.IoU(a)-1) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIoUContainment(t *testing.T) {
	outer := BBox{0, 0, 1, 1}
	inner := BBox{0.25, 0.25, 0.5, 0.5}
	want := 0.25 // inner area / outer area
	if got := outer.IoU(inner); math.Abs(got-want) > 1e-12 {
		t.Fatalf("containment IoU = %v, want %v", got, want)
	}
}

func TestTailgateUDFRequiresSynthetic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TailgateUDF on a non-synthetic source should panic")
		}
	}()
	var fake fakeSource
	vision := TailgateUDF{}
	vision.Score(fake, []int{0})
}

func TestSentimentUDFRequiresSynthetic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SentimentUDF on a non-synthetic source should panic")
		}
	}()
	SentimentUDF{}.Score(fakeSource{}, []int{0})
}

// fakeSource is a minimal non-synthetic video.Source.
type fakeSource struct{}

func (fakeSource) Name() string           { return "fake" }
func (fakeSource) NumFrames() int         { return 1 }
func (fakeSource) FPS() int               { return 30 }
func (fakeSource) TargetClass() string    { return video.ClassCar }
func (fakeSource) Scene(int) video.Scene  { return video.Scene{} }
func (fakeSource) Render(int) video.Frame { return video.Frame{W: 1, H: 1, Pix: []float64{0}} }
func (fakeSource) Resolution() (int, int) { return 1, 1 }

func TestTailgateCustomBounds(t *testing.T) {
	u := TailgateUDF{MaxGap: 30, Step: 1}
	q := u.Quantize()
	if q.MaxLevel != 30 || q.Step != 1 {
		t.Fatalf("quantize %+v", q)
	}
}

func TestSentimentQuantizeStep(t *testing.T) {
	u := SentimentUDF{Step: 2}
	q := u.Quantize()
	if q.Step != 2 || q.MaxLevel != 50 {
		t.Fatalf("quantize %+v", q)
	}
}

func TestTrackerEmptyFrames(t *testing.T) {
	tr := NewTracker()
	if got := tr.Track(nil); len(got) != 0 {
		t.Fatalf("tracking empty frame returned %v", got)
	}
	// An object appearing after an empty frame gets a fresh ID.
	d := tr.Track([]Detection{{Class: "car", Box: BBox{0.1, 0.1, 0.1, 0.1}}})
	if d[0].ObjectID == 0 {
		t.Fatal("no ID after empty frame")
	}
}

func TestTrackerGreedyPicksBestOverlap(t *testing.T) {
	tr := NewTracker()
	first := tr.Track([]Detection{
		{Class: "car", Box: BBox{0.10, 0.10, 0.20, 0.20}},
		{Class: "car", Box: BBox{0.50, 0.50, 0.20, 0.20}},
	})
	// Next frame: both moved slightly; matching must pair each with its
	// nearest predecessor, not cross over.
	second := tr.Track([]Detection{
		{Class: "car", Box: BBox{0.12, 0.10, 0.20, 0.20}},
		{Class: "car", Box: BBox{0.52, 0.50, 0.20, 0.20}},
	})
	if second[0].ObjectID != first[0].ObjectID || second[1].ObjectID != first[1].ObjectID {
		t.Fatalf("greedy matching crossed over: %+v vs %+v", first, second)
	}
}

func TestOracleDetectorCountsAllClasses(t *testing.T) {
	src := trafficSource(t, 500)
	det := OracleDetector{}
	for i := 0; i < 500; i += 29 {
		dets := det.Detect(src, i)
		if len(dets) != len(src.Scene(i).Objects) {
			t.Fatalf("frame %d: %d detections for %d objects", i, len(dets), len(src.Scene(i).Objects))
		}
	}
}
