// Package vision is the detector substrate of the Everest reproduction.
//
// It supplies the accurate-but-slow oracle models the paper plugs in as
// UDFs (a YOLOv3-class object detector, a monodepth-class depth estimator,
// a visual sentimentalizer), the cheap noisy baselines (TinyYOLOv3, HOG),
// an IoU object tracker, and the video-relation materialization of the
// paper's Table 2. Oracles read the simulator's ground-truth scene graph —
// Everest itself never looks inside an oracle, it only pays the oracle's
// simulated inference cost and consumes its scores.
package vision

import (
	"fmt"
	"math"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
)

// BBox is an axis-aligned bounding box in normalized coordinates. The
// paper's relation stores polygons; axis-aligned boxes are the polygon
// form every referenced detector actually emits.
type BBox struct {
	X, Y, W, H float64
}

// IoU returns the intersection-over-union of two boxes.
func (b BBox) IoU(o BBox) float64 {
	x0 := math.Max(b.X, o.X)
	y0 := math.Max(b.Y, o.Y)
	x1 := math.Min(b.X+b.W, o.X+o.W)
	y1 := math.Min(b.Y+b.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := (x1 - x0) * (y1 - y0)
	union := b.W*b.H + o.W*o.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Detection is one detected object in one frame.
type Detection struct {
	// Frame is the frame index (the relation's timestamp).
	Frame int
	// Class is the predicted class label.
	Class string
	// Box is the bounding polygon.
	Box BBox
	// ObjectID is the tracker-assigned identity (0 before tracking).
	ObjectID int
	// Confidence is the detector's score for the detection.
	Confidence float64
}

// Detector produces per-frame detections.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Detect returns the detections for frame i of src.
	Detect(src video.Source, i int) []Detection
	// FrameCostMS is the simulated per-frame inference cost.
	FrameCostMS(cost simclock.CostModel) float64
}

// OracleDetector is the ground-truth detector (the YOLOv3 stand-in): it
// reads the scene graph exactly and charges oracle-scale cost.
type OracleDetector struct{}

// Name implements Detector.
func (OracleDetector) Name() string { return "oracle-yolov3" }

// Detect implements Detector.
func (OracleDetector) Detect(src video.Source, i int) []Detection {
	sc := src.Scene(i)
	out := make([]Detection, 0, len(sc.Objects))
	for _, o := range sc.Objects {
		out = append(out, Detection{
			Frame:      i,
			Class:      o.Class,
			Box:        BBox{X: o.X, Y: o.Y, W: o.W, H: o.H},
			ObjectID:   o.ID,
			Confidence: 1,
		})
	}
	return out
}

// FrameCostMS implements Detector.
func (OracleDetector) FrameCostMS(cost simclock.CostModel) float64 { return cost.OracleMS }

// CountClass counts detections of a class.
func CountClass(dets []Detection, class string) int {
	n := 0
	for _, d := range dets {
		if d.Class == class {
			n++
		}
	}
	return n
}

// UDF is a user-defined scoring function in the paper's sense (Fig. 3): it
// computes exact frame scores with an accurate deep model and declares how
// scores are quantized into x-tuple levels.
type UDF interface {
	// Name identifies the UDF.
	Name() string
	// Score returns the exact raw score of each listed frame. It must be
	// safe for concurrent calls: the scale-out shards and concurrent
	// session queries (Session.QueryBatch) invoke it from multiple
	// goroutines at once.
	Score(src video.Source, ids []int) []float64
	// Quantize returns the level-grid options for this score domain.
	// Counting UDFs use step 1; others supply their step as §3.2 requires.
	Quantize() uncertain.QuantizeOptions
	// OracleCostMS is the per-frame cost of the accurate model behind the
	// UDF.
	OracleCostMS(cost simclock.CostModel) float64
}

// CountUDF scores a frame by the number of objects of a class found by the
// oracle detector — the paper's default UDF (Fig. 3).
type CountUDF struct {
	// Class is the object-of-interest.
	Class string
}

// Name implements UDF.
func (u CountUDF) Name() string { return fmt.Sprintf("count(%s)", u.Class) }

// Score implements UDF.
func (u CountUDF) Score(src video.Source, ids []int) []float64 {
	out := make([]float64, len(ids))
	det := OracleDetector{}
	for k, i := range ids {
		out[k] = float64(CountClass(det.Detect(src, i), u.Class))
	}
	return out
}

// Quantize implements UDF.
func (u CountUDF) Quantize() uncertain.QuantizeOptions {
	return uncertain.DefaultCountingOptions()
}

// OracleCostMS implements UDF.
func (u CountUDF) OracleCostMS(cost simclock.CostModel) float64 { return cost.OracleMS }

// TailgateUDF scores a dashcam frame by tailgating danger: the accurate
// depth estimator measures the gap to the leading vehicle, and the score
// grows as the gap shrinks (score = maxGap − gap, clamped at 0). Per §3.2,
// a non-counting UDF must supply its quantization step.
type TailgateUDF struct {
	// MaxGap is the gap (metres) at or beyond which danger is 0; zero
	// means 40.
	MaxGap float64
	// Step is the quantization step in metres; zero means 0.5.
	Step float64
}

func (u TailgateUDF) maxGap() float64 {
	if u.MaxGap == 0 {
		return 40
	}
	return u.MaxGap
}

// Name implements UDF.
func (u TailgateUDF) Name() string { return "tailgate-degree" }

// Score implements UDF.
func (u TailgateUDF) Score(src video.Source, ids []int) []float64 {
	s, ok := src.(*video.Synthetic)
	if !ok {
		panic("vision: TailgateUDF requires a synthetic dashcam source")
	}
	out := make([]float64, len(ids))
	for k, i := range ids {
		out[k] = math.Max(0, u.maxGap()-s.LeadGap(i))
	}
	return out
}

// Quantize implements UDF.
func (u TailgateUDF) Quantize() uncertain.QuantizeOptions {
	step := u.Step
	if step == 0 {
		step = 0.5
	}
	return uncertain.QuantizeOptions{
		Step:     step,
		MinLevel: 0,
		MaxLevel: int(math.Ceil(u.maxGap() / step)),
	}
}

// OracleCostMS implements UDF: the depth estimator is oracle-scale.
func (u TailgateUDF) OracleCostMS(cost simclock.CostModel) float64 { return cost.OracleMS }

// SentimentUDF scores a frame by crowd happiness in [0,100] via a deep
// visual sentimentalizer (the thumbnail-generation use case).
type SentimentUDF struct {
	// Step is the quantization step; zero means 1.
	Step float64
}

// Name implements UDF.
func (u SentimentUDF) Name() string { return "sentiment" }

// Score implements UDF.
func (u SentimentUDF) Score(src video.Source, ids []int) []float64 {
	s, ok := src.(*video.Synthetic)
	if !ok {
		panic("vision: SentimentUDF requires a synthetic street source")
	}
	out := make([]float64, len(ids))
	for k, i := range ids {
		out[k] = s.Happiness(i)
	}
	return out
}

// Quantize implements UDF.
func (u SentimentUDF) Quantize() uncertain.QuantizeOptions {
	step := u.Step
	if step == 0 {
		step = 1
	}
	return uncertain.QuantizeOptions{Step: step, MinLevel: 0, MaxLevel: int(math.Ceil(100 / step))}
}

// OracleCostMS implements UDF.
func (u SentimentUDF) OracleCostMS(cost simclock.CostModel) float64 { return cost.OracleMS }
