package vision

import (
	"fmt"
	"strings"

	"github.com/everest-project/everest/internal/video"
)

// Row is one tuple of the paper's video relation (Table 2): one object in
// one frame. The content and feature-vector columns are elided — nothing
// in the pipeline reads them, and the paper's whole point is to avoid
// materializing this relation at scale.
type Row struct {
	// Timestamp is the frame index.
	Timestamp int
	// Class is the object's class label.
	Class string
	// Polygon is the bounding box.
	Polygon BBox
	// ObjectID is the tracker-assigned identity.
	ObjectID int
}

// MaterializeRelation runs the detector and tracker over frames
// [from, to) of src and returns the resulting video relation. This is the
// ground-truth relation a scan-and-test system would populate; Everest
// queries the same videos without ever building it in full.
func MaterializeRelation(src video.Source, det Detector, from, to int) []Row {
	if from < 0 {
		from = 0
	}
	if to > src.NumFrames() {
		to = src.NumFrames()
	}
	tracker := NewTracker()
	var rows []Row
	for i := from; i < to; i++ {
		dets := det.Detect(src, i)
		// The oracle already knows true identities; re-track anyway so the
		// relation reflects the paper's pipeline (detector + tracker [67]).
		for k := range dets {
			dets[k].ObjectID = 0
		}
		dets = tracker.Track(dets)
		for _, d := range dets {
			rows = append(rows, Row{
				Timestamp: d.Frame,
				Class:     d.Class,
				Polygon:   d.Box,
				ObjectID:  d.ObjectID,
			})
		}
	}
	return rows
}

// FormatRelation renders rows as the paper's Table 2 layout, for examples
// and debugging.
func FormatRelation(rows []Row, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %-28s %s\n", "ts", "class", "polygon", "objectID")
	for i, r := range rows {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "... (%d more rows)\n", len(rows)-limit)
			break
		}
		fmt.Fprintf(&b, "%-10d %-8s (%.2f,%.2f,%.2f,%.2f)%-8s %d\n",
			r.Timestamp, r.Class, r.Polygon.X, r.Polygon.Y, r.Polygon.W, r.Polygon.H, "", r.ObjectID)
	}
	return b.String()
}
