// Package labelstore is the serving-scale label cache substrate: an
// immutable persistent map from frame index to exact oracle score, the
// per-query overlay that queries mutate privately, and a versioned
// process-wide shared cache many sessions publish into.
//
// The paper's Session layer (multi-query work sharing, §4.2 extended)
// caches every oracle-revealed frame score. Under heavy concurrent
// traffic the cache itself becomes the hot path: copying the whole map
// per query snapshot costs O(cache) allocations per request. Map is a
// persistent (immutable, structure-sharing) 32-way trie keyed by frame
// index, so a snapshot is one word copy — O(1) — and an insert
// path-copies O(log₃₂ n) nodes while every previously taken snapshot
// stays frozen. This is the incremental-sharing lever of "Answering
// FO+MOD queries under updates": previously computed answers stay
// valid, verbatim, while the store advances underneath.
package labelstore

// Trie geometry: 5 key bits per level, 32-way fan-out. Frame indices
// are dense non-negative ints, so the trie is effectively a chunked
// copy-on-write array: a leaf holds 32 consecutive frames' scores and
// a full path for a multi-million-frame video is 4–5 nodes deep.
const (
	bitsPerLevel = 5
	fanout       = 1 << bitsPerLevel
	levelMask    = fanout - 1
)

// node is one trie node. At depth 0 it is a leaf: vals/bits hold up to
// 32 scores for consecutive frame indices. Above depth 0 it is a
// branch: kids point at subtries. Only the slice its level uses is
// allocated, so a path copy moves 32 words per node, not both arrays.
// Nodes are immutable once published into a Map; Set copies the nodes
// along the key's path only.
type node struct {
	kids []*node   // len fanout at branch levels, nil at leaves
	vals []float64 // len fanout at leaves, nil at branch levels
	bits uint32    // leaf occupancy
}

func newLeaf() *node   { return &node{vals: make([]float64, fanout)} }
func newBranch() *node { return &node{kids: make([]*node, fanout)} }

// clone copies a node's occupied role for a path copy.
func (n *node) clone() *node {
	c := &node{bits: n.bits}
	if n.kids != nil {
		c.kids = make([]*node, fanout)
		copy(c.kids, n.kids)
	}
	if n.vals != nil {
		c.vals = make([]float64, fanout)
		copy(c.vals, n.vals)
	}
	return c
}

// Map is a persistent frame→score map. The zero value is the empty
// map. Map values are cheap to copy (three words) and safe to share
// across goroutines: all mutating operations return a new Map and
// never touch nodes reachable from existing ones.
type Map struct {
	root  *node
	depth int // branch levels above the leaves; capacity is 32^(depth+1)
	count int
}

// Len returns the number of stored labels.
func (m Map) Len() int { return m.count }

// capacity returns the largest key count representable at depth d.
func capacity(depth int) int { return 1 << (bitsPerLevel * (depth + 1)) }

// Get returns the score stored for frame f.
func (m Map) Get(f int) (float64, bool) {
	if m.root == nil || f < 0 || f >= capacity(m.depth) {
		return 0, false
	}
	n := m.root
	for d := m.depth; d > 0; d-- {
		n = n.kids[(f>>(bitsPerLevel*d))&levelMask]
		if n == nil {
			return 0, false
		}
	}
	i := f & levelMask
	if n.bits&(1<<i) == 0 {
		return 0, false
	}
	return n.vals[i], true
}

// Set returns a map holding every entry of m plus f→v. m itself — and
// every snapshot taken from it — is unchanged. Frame indices must be
// non-negative.
func (m Map) Set(f int, v float64) Map {
	if f < 0 {
		panic("labelstore: negative frame index")
	}
	if m.root == nil {
		m.root = newLeaf()
		m.depth = 0
	}
	// Grow the trie upward until the key fits: the old root becomes
	// child 0 of each new root, preserving all existing entries.
	for f >= capacity(m.depth) {
		r := newBranch()
		r.kids[0] = m.root
		m.root = r
		m.depth++
	}
	root, added := setAt(m.root, m.depth, f, v)
	m.root = root
	if added {
		m.count++
	}
	return m
}

// setAt path-copies n (and its ancestors via the caller) to hold f→v.
func setAt(n *node, depth, f int, v float64) (*node, bool) {
	var c *node
	if n != nil {
		c = n.clone()
	} else if depth == 0 {
		c = newLeaf()
	} else {
		c = newBranch()
	}
	if depth == 0 {
		i := f & levelMask
		added := c.bits&(1<<i) == 0
		c.vals[i] = v
		c.bits |= 1 << i
		return c, added
	}
	i := (f >> (bitsPerLevel * depth)) & levelMask
	kid, added := setAt(c.kids[i], depth-1, f, v)
	c.kids[i] = kid
	return c, added
}

// Delete returns a map holding every entry of m except f. m itself —
// and every snapshot taken from it — is unchanged; the delete
// path-copies O(log₃₂ n) nodes like Set. Deleting an absent key
// returns m unchanged without copying.
func (m Map) Delete(f int) Map {
	if m.root == nil || f < 0 || f >= capacity(m.depth) {
		return m
	}
	root, removed := deleteAt(m.root, m.depth, f)
	if removed {
		m.root = root
		m.count--
	}
	return m
}

// deleteAt path-copies n to drop f; empty leaves are kept in place (the
// occupancy bitmap already marks them absent, and frame indices are
// dense so the slot will likely refill).
func deleteAt(n *node, depth, f int) (*node, bool) {
	if n == nil {
		return n, false
	}
	if depth == 0 {
		i := f & levelMask
		if n.bits&(1<<i) == 0 {
			return n, false
		}
		c := n.clone()
		c.bits &^= 1 << i
		c.vals[i] = 0
		return c, true
	}
	i := (f >> (bitsPerLevel * depth)) & levelMask
	kid, removed := deleteAt(n.kids[i], depth-1, f)
	if !removed {
		return n, false
	}
	c := n.clone()
	c.kids[i] = kid
	return c, true
}

// Range calls fn for every entry in ascending frame order and stops
// early when fn returns false. Ascending order makes iteration
// deterministic, unlike a Go map.
func (m Map) Range(fn func(f int, v float64) bool) {
	if m.root != nil {
		rangeAt(m.root, m.depth, 0, fn)
	}
}

func rangeAt(n *node, depth, prefix int, fn func(f int, v float64) bool) bool {
	if depth == 0 {
		for i := 0; i < fanout; i++ {
			if n.bits&(1<<i) != 0 && !fn(prefix|i, n.vals[i]) {
				return false
			}
		}
		return true
	}
	for i := 0; i < fanout; i++ {
		if kid := n.kids[i]; kid != nil {
			if !rangeAt(kid, depth-1, prefix|i<<(bitsPerLevel*depth), fn) {
				return false
			}
		}
	}
	return true
}

// Overlay is a query's private view of the cache: an immutable base
// snapshot plus the labels this query confirmed on top of it. Reads
// check the fresh labels first, then the base; writes go to the fresh
// map only, so the base snapshot other queries share is never touched.
//
// A nil *Overlay is a valid empty cache that ignores writes — the
// uncached Index.Query path.
//
// Concurrency: Get is safe to call from many goroutines as long as no
// Set is concurrent with it (the engine builds relations from a frozen
// overlay before cleaning mutates it).
type Overlay struct {
	base  Map
	fresh map[int]float64
}

// NewOverlay returns an overlay over the given base snapshot.
func NewOverlay(base Map) *Overlay {
	return &Overlay{base: base}
}

// Get returns the cached score for frame f, fresh labels first.
func (o *Overlay) Get(f int) (float64, bool) {
	if o == nil {
		return 0, false
	}
	if v, ok := o.fresh[f]; ok {
		return v, true
	}
	return o.base.Get(f)
}

// Set records a label confirmed by this query. No-op on a nil overlay.
func (o *Overlay) Set(f int, v float64) {
	if o == nil {
		return
	}
	if o.fresh == nil {
		o.fresh = make(map[int]float64)
	}
	o.fresh[f] = v
}

// Fresh returns the labels recorded since the overlay was created —
// exactly what the query must publish back to the shared cache. The
// map is the overlay's own; callers take ownership after the query
// finishes.
func (o *Overlay) Fresh() map[int]float64 {
	if o == nil {
		return nil
	}
	return o.fresh
}
