package labelstore

import "fmt"

// WAL is the durability hook a SharedCache logs through when durable
// mode is enabled (internal/durable.Store implements it; the interface
// lives here so labelstore does not depend on the storage layer).
// Append calls happen under the cache lock, after the cache has applied
// the operation and bumped its version — so by the time any other
// goroutine can observe version v, the record that produced v is on
// disk (per the store's sync policy). Versions arrive strictly
// contiguously: one Append per version bump, in order.
type WAL interface {
	// Dir identifies the backing directory (idempotent-attach checks).
	Dir() string
	// AppendPublish logs the publish batch that produced version.
	// Frames are sorted ascending, parallel to scores.
	AppendPublish(version uint64, frames []int, scores []float64) error
	// AppendEvict logs the eviction pass that produced version.
	AppendEvict(version uint64, frames []int) error
	// Adopt installs a warm cache's current state as the store baseline
	// (only valid on a store with no recovered state).
	Adopt(labels Map, version uint64) error
	// Recovered returns the state recovered when the store was opened.
	Recovered() (Map, uint64)
	// StateAt reconstructs the label map at a historical version, or
	// fails closed with a *VersionError.
	StateAt(version uint64) (Map, error)
}

// VersionError is the fail-closed answer to a version that cannot be
// resolved to exactly the label set it originally named: it is ahead of
// the store, behind the WAL-truncation horizon, or the cache is not
// durable and the version is no longer current. Callers holding a
// pinned version across a crash get this error — never a silently
// different label set under the same number.
type VersionError struct {
	// Version is the requested version.
	Version uint64
	// Oldest and Newest bound what the store can still reconstruct
	// (Oldest is the newest checkpoint's version — the truncation
	// horizon; zero when unknown).
	Oldest, Newest uint64
	// Reason says why the version is unresolvable.
	Reason string
}

// Error implements error.
func (e *VersionError) Error() string {
	return fmt.Sprintf("labelstore: version %d not resolvable (reconstructible range ~[%d,%d]): %s",
		e.Version, e.Oldest, e.Newest, e.Reason)
}

// EnableDurable attaches a write-ahead log to the cache. On a cold
// cache (nothing published yet) the store's recovered state is adopted
// — labels AND version counter, so the version sequence continues
// across the restart. On a warm cache the current state is installed
// into the store as a baseline checkpoint instead (only a fresh store
// can accept that). Attaching the same directory twice is a no-op;
// attaching a second, different directory is an error. From the attach
// on, every publish and eviction is logged before its version becomes
// observable.
func (c *SharedCache) EnableDurable(w WAL) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal != nil {
		if c.wal.Dir() == w.Dir() {
			return nil
		}
		return fmt.Errorf("labelstore: cache already durable in %s; cannot switch to %s", c.wal.Dir(), w.Dir())
	}
	if c.version == 0 && c.labels.Len() == 0 {
		// Cold cache: resume exactly where the durable history ended.
		// Recovered labels carry no publish-batch history, so they are
		// policy-exempt (like pre-policy publishes): TTL/max-labels govern
		// batches published from here on.
		c.labels, c.version = w.Recovered()
	} else {
		if err := w.Adopt(c.labels, c.version); err != nil {
			return err
		}
	}
	c.wal = w
	return nil
}

// DurableDir returns the attached WAL's directory, or "" when the cache
// is RAM-only.
func (c *SharedCache) DurableDir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal == nil {
		return ""
	}
	return c.wal.Dir()
}

// DurableErr returns the first WAL append failure, if any. The cache
// keeps serving from RAM after a log failure (availability over
// durability — the prefix logged before the failure is still intact on
// disk), and this surfaces that the durable horizon stopped advancing.
func (c *SharedCache) DurableErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.walErr
}

// SnapshotAt resolves a pinned version to exactly the label map that
// version named when it was issued. The current version resolves from
// RAM; historical versions are reconstructed from the durable log. When
// the cache is not durable, or the version is outside what the log can
// still reconstruct, it fails closed with a typed *VersionError — a
// pinned version never silently rebinds to a different label set (the
// determinism contract's recovery clause; see DESIGN.md "Durability &
// crash recovery").
func (c *SharedCache) SnapshotAt(version uint64) (Map, error) {
	c.mu.Lock()
	wal, cur, labels := c.wal, c.version, c.labels
	c.mu.Unlock()
	if version == cur {
		return labels, nil
	}
	if wal == nil {
		return Map{}, &VersionError{
			Version: version, Newest: cur,
			Reason: "cache is not durable; only the current version is resolvable",
		}
	}
	// The store serializes against concurrent publishes internally; the
	// cache lock is NOT held across the disk replay.
	return wal.StateAt(version)
}

// logPublish forwards a publish to the WAL (caller holds c.mu and has
// already bumped the version). Failures latch into walErr.
func (c *SharedCache) logPublish(version uint64, frames []int, fresh map[int]float64) {
	if c.wal == nil {
		return
	}
	scores := make([]float64, len(frames))
	for i, f := range frames {
		scores[i] = fresh[f]
	}
	if err := c.wal.AppendPublish(version, frames, scores); err != nil && c.walErr == nil {
		c.walErr = err
	}
}

// logEvict forwards an eviction pass to the WAL (caller holds c.mu).
func (c *SharedCache) logEvict(version uint64, frames []int) {
	if c.wal == nil {
		return
	}
	if err := c.wal.AppendEvict(version, frames); err != nil && c.walErr == nil {
		c.walErr = err
	}
}
