package labelstore

import (
	"testing"
	"time"
)

func TestMapDelete(t *testing.T) {
	var m Map
	for i := 0; i < 100; i++ {
		m = m.Set(i*37, float64(i))
	}
	snap := m
	m = m.Delete(37)
	if _, ok := m.Get(37); ok {
		t.Fatal("deleted key still present")
	}
	if m.Len() != 99 {
		t.Fatalf("Len = %d after delete, want 99", m.Len())
	}
	// Snapshots taken before the delete are frozen.
	if v, ok := snap.Get(37); !ok || v != 1 {
		t.Fatalf("delete mutated an earlier snapshot: %v %v", v, ok)
	}
	// Deleting an absent key is a no-op that does not copy.
	before := m
	m = m.Delete(37)
	if m.Len() != 99 || m.root != before.root {
		t.Fatal("absent-key delete changed the map")
	}
	m = m.Delete(-5)
	m = m.Delete(1 << 40)
	if m.Len() != 99 {
		t.Fatal("out-of-range delete changed the count")
	}
	// Remaining keys intact, and the slot can refill.
	for i := 2; i < 100; i++ {
		if v, ok := m.Get(i * 37); !ok || v != float64(i) {
			t.Fatalf("key %d lost after deletes", i*37)
		}
	}
	m = m.Set(37, 42)
	if v, ok := m.Get(37); !ok || v != 42 || m.Len() != 100 {
		t.Fatal("slot did not refill after delete")
	}
}

func publish(c *SharedCache, keys ...int) {
	fresh := make(map[int]float64, len(keys))
	for _, k := range keys {
		fresh[k] = float64(k)
	}
	c.Publish(fresh)
}

func TestSharedCacheMaxLabelsEviction(t *testing.T) {
	c := NewSharedCache()
	c.SetPolicy(Policy{MaxLabels: 3})
	publish(c, 1, 2) // v1
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	vBefore := c.Version()
	publish(c, 3, 4) // v2 grows to 4 > 3, then the eviction pass (v3) drops batch {1,2}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", c.Len())
	}
	snap, v := c.Snapshot()
	if v != vBefore+2 {
		t.Fatalf("version %d, want publish+eviction bumps to %d", v, vBefore+2)
	}
	for _, gone := range []int{1, 2} {
		if _, ok := snap.Get(gone); ok {
			t.Fatalf("evicted label %d still present", gone)
		}
	}
	for _, kept := range []int{3, 4} {
		if _, ok := snap.Get(kept); !ok {
			t.Fatalf("fresh label %d evicted", kept)
		}
	}
}

func TestSharedCacheEvictionKeepsRepublishedLabels(t *testing.T) {
	c := NewSharedCache()
	c.SetPolicy(Policy{MaxLabels: 2})
	publish(c, 1, 2)
	publish(c, 2, 3) // over budget: batch {1,2} is evicted, but 2 was re-published
	snap, _ := c.Snapshot()
	if _, ok := snap.Get(1); ok {
		t.Fatal("label 1 should be evicted with its batch")
	}
	if _, ok := snap.Get(2); !ok {
		t.Fatal("re-published label 2 must survive its original batch's eviction")
	}
	if _, ok := snap.Get(3); !ok {
		t.Fatal("label 3 lost")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestSharedCacheTTLEviction(t *testing.T) {
	c := NewSharedCache()
	now := time.Unix(1000, 0)
	c.SetClockForTest(func() time.Time { return now })
	c.SetPolicy(Policy{TTL: time.Minute})
	publish(c, 1, 2)
	// Within the TTL nothing moves.
	now = now.Add(30 * time.Second)
	publish(c, 3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d before expiry, want 3", c.Len())
	}
	// Past the TTL the old batch goes; the fresh publish stays.
	now = now.Add(45 * time.Second) // batch {1,2} is now 75s old, batch {3} 45s
	publish(c, 4)
	snap, _ := c.Snapshot()
	for _, gone := range []int{1, 2} {
		if _, ok := snap.Get(gone); ok {
			t.Fatalf("expired label %d still present", gone)
		}
	}
	for _, kept := range []int{3, 4} {
		if _, ok := snap.Get(kept); !ok {
			t.Fatalf("unexpired label %d evicted", kept)
		}
	}
}

func TestSharedCacheTTLEvictsOnSnapshot(t *testing.T) {
	// All-hit traffic never publishes, so expiry must also fire on the
	// snapshot path — a warm cache cannot serve stale labels forever.
	c := NewSharedCache()
	now := time.Unix(1000, 0)
	c.SetClockForTest(func() time.Time { return now })
	c.SetPolicy(Policy{TTL: time.Minute})
	publish(c, 1, 2)
	now = now.Add(2 * time.Minute)
	snap, v := c.Snapshot()
	if _, ok := snap.Get(1); ok {
		t.Fatal("expired label served from the snapshot path")
	}
	if snap.Len() != 0 {
		t.Fatalf("snapshot holds %d labels, want 0", snap.Len())
	}
	if v != 2 {
		t.Fatalf("version %d, want 2 (publish + eviction)", v)
	}
}

func TestSharedCacheEvictionLeavesPinnedSnapshotsFrozen(t *testing.T) {
	c := NewSharedCache()
	c.SetPolicy(Policy{MaxLabels: 1})
	publish(c, 1)
	pinned, pinnedV := c.Snapshot()
	publish(c, 2) // evicts batch {1}
	if _, ok := pinned.Get(1); !ok {
		t.Fatal("eviction reached into a pinned snapshot")
	}
	if pinned.Len() != 1 {
		t.Fatalf("pinned snapshot Len = %d, want 1", pinned.Len())
	}
	if _, v := c.Snapshot(); v == pinnedV {
		t.Fatal("eviction did not advance the version past the pinned one")
	}
}

func TestSharedCacheUnloggedRepublishSurvivesEviction(t *testing.T) {
	// A frame published while a policy was active, then re-published
	// while the policy was off (an unlogged, permanent publish), must
	// not be evicted when its original logged batch later expires.
	c := NewSharedCache()
	now := time.Unix(1000, 0)
	c.SetClockForTest(func() time.Time { return now })
	c.SetPolicy(Policy{TTL: time.Minute})
	publish(c, 7) // logged batch
	c.SetPolicy(Policy{})
	c.Publish(map[int]float64{7: 2.0}) // unlogged: now permanent
	now = now.Add(2 * time.Minute)
	c.SetPolicy(Policy{TTL: time.Minute}) // re-enable; batch {7} is expired
	publish(c, 8)                         // triggers eviction of the logged batch
	snap, _ := c.Snapshot()
	if v, ok := snap.Get(7); !ok || v != 2.0 {
		t.Fatalf("unlogged re-publish of 7 was evicted with its stale batch: %v %v", v, ok)
	}
}

func TestSharedCacheCapCountsGovernedLabelsOnly(t *testing.T) {
	// Pre-policy (permanent) labels must not count toward MaxLabels:
	// otherwise a cap below their count would thrash every new batch.
	c := NewSharedCache()
	publish(c, 1, 2, 3, 4, 5) // permanent, above the cap below
	c.SetPolicy(Policy{MaxLabels: 3})
	publish(c, 10, 11)
	publish(c, 12) // governed count 3, not over
	snap, _ := c.Snapshot()
	for _, kept := range []int{10, 11, 12} {
		if _, ok := snap.Get(kept); !ok {
			t.Fatalf("governed label %d thrashed by permanent labels", kept)
		}
	}
	publish(c, 13, 14) // governed count 5 > 3: evict oldest batches
	snap, _ = c.Snapshot()
	for _, gone := range []int{10, 11} {
		if _, ok := snap.Get(gone); ok {
			t.Fatalf("label %d should be evicted", gone)
		}
	}
	for _, kept := range []int{1, 2, 3, 4, 5, 12, 13, 14} {
		if _, ok := snap.Get(kept); !ok {
			t.Fatalf("label %d lost", kept)
		}
	}
}

func TestSharedCachePolicyClear(t *testing.T) {
	c := NewSharedCache()
	c.SetPolicy(Policy{MaxLabels: 2})
	publish(c, 1, 2)
	c.SetPolicy(Policy{}) // cleared: nothing evicts any more
	publish(c, 3, 4)
	publish(c, 5, 6)
	if c.Len() != 6 {
		t.Fatalf("cleared policy still evicted: Len = %d, want 6", c.Len())
	}
}

func TestSharedCachePolicyOnlyGovernsLoggedBatches(t *testing.T) {
	// Labels published before any policy was active carry no history and
	// are never evicted — installing a policy later must not corrupt
	// them, and the policy applies to publishes from then on.
	c := NewSharedCache()
	publish(c, 1, 2, 3)
	c.SetPolicy(Policy{MaxLabels: 1})
	publish(c, 4)
	publish(c, 5) // evicts batch {4}; pre-policy labels stay
	snap, _ := c.Snapshot()
	for _, kept := range []int{1, 2, 3, 5} {
		if _, ok := snap.Get(kept); !ok {
			t.Fatalf("label %d lost", kept)
		}
	}
	if _, ok := snap.Get(4); ok {
		t.Fatal("logged batch {4} should be evicted")
	}
}
