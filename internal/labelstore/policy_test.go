package labelstore

import (
	"testing"
	"time"
)

// TestTightenPolicyStrictestWins pins the merge algebra TightenPolicy
// gives a shared cache: positive knobs only ever tighten, zero knobs
// never touch a sibling's bound, and the merge commutes — any arrival
// order of conflicting installs lands on the pairwise minimum.
func TestTightenPolicyStrictestWins(t *testing.T) {
	steps := []struct {
		install Policy
		want    Policy
	}{
		// First writer installs both bounds.
		{Policy{TTL: time.Hour, MaxLabels: 100}, Policy{TTL: time.Hour, MaxLabels: 100}},
		// A zero-TTL install must not erase the TTL; its tighter cap wins.
		{Policy{MaxLabels: 5}, Policy{TTL: time.Hour, MaxLabels: 5}},
		// Looser values change nothing.
		{Policy{TTL: 2 * time.Hour, MaxLabels: 500}, Policy{TTL: time.Hour, MaxLabels: 5}},
		// A tighter TTL still gets through.
		{Policy{TTL: time.Minute}, Policy{TTL: time.Minute, MaxLabels: 5}},
		// The zero policy is a pure read.
		{Policy{}, Policy{TTL: time.Minute, MaxLabels: 5}},
	}
	c := NewSharedCache()
	for i, s := range steps {
		if got := c.TightenPolicy(s.install); got != s.want {
			t.Fatalf("step %d: installing %+v yielded %+v, want %+v", i, s.install, got, s.want)
		}
	}

	// Commutativity: the reverse install order converges on the same
	// effective policy.
	r := NewSharedCache()
	for i := len(steps) - 1; i >= 0; i-- {
		r.TightenPolicy(steps[i].install)
	}
	if got, want := r.TightenPolicy(Policy{}), steps[len(steps)-1].want; got != want {
		t.Fatalf("reverse install order yielded %+v, want %+v", got, want)
	}

	// SetPolicy remains the explicit whole-policy reset.
	c.SetPolicy(Policy{})
	if got := c.TightenPolicy(Policy{}); got != (Policy{}) {
		t.Fatalf("SetPolicy reset left %+v installed", got)
	}
}

// TestTightenPolicyEvicts checks that tightening applies immediately:
// a cap installed below the cache's logged label count evicts the
// oldest batches right away, exactly like SetPolicy.
func TestTightenPolicyEvicts(t *testing.T) {
	c := NewSharedCache()
	c.SetPolicy(Policy{MaxLabels: 100}) // start logging batches
	c.Publish(map[int]float64{1: 1, 2: 2})
	c.Publish(map[int]float64{3: 3, 4: 4})
	if c.Len() != 4 {
		t.Fatalf("setup: cache holds %d labels, want 4", c.Len())
	}
	c.TightenPolicy(Policy{MaxLabels: 2})
	if c.Len() != 2 {
		t.Fatalf("tightening to 2 left %d labels", c.Len())
	}
}
