package labelstore

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMapMatchesPlainMap drives a persistent Map and a plain Go map
// through the same random operation sequence and checks full
// equivalence after every step: Get on present and absent keys, Len,
// and ascending Range enumeration.
func TestMapMatchesPlainMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var m Map
		ref := make(map[int]float64)
		// Mix of dense small keys (frame-index-like) and sparse large
		// ones that force the trie to grow levels mid-sequence.
		keyRange := []int{32, 1000, 1 << 20}[trial%3]
		for step := 0; step < 400; step++ {
			f := rng.Intn(keyRange)
			v := rng.NormFloat64()
			m = m.Set(f, v)
			ref[f] = v
			if len(ref) != m.Len() {
				t.Fatalf("trial %d step %d: Len %d, want %d", trial, step, m.Len(), len(ref))
			}
			// Spot-check random present/absent lookups each step.
			for probe := 0; probe < 4; probe++ {
				k := rng.Intn(keyRange * 2)
				got, ok := m.Get(k)
				want, wok := ref[k]
				if ok != wok || got != want {
					t.Fatalf("trial %d step %d: Get(%d) = (%v, %v), want (%v, %v)",
						trial, step, k, got, ok, want, wok)
				}
			}
		}
		// Range must enumerate exactly ref, in ascending key order.
		wantKeys := make([]int, 0, len(ref))
		for f := range ref {
			wantKeys = append(wantKeys, f)
		}
		sort.Ints(wantKeys)
		var gotKeys []int
		m.Range(func(f int, v float64) bool {
			if v != ref[f] {
				t.Fatalf("trial %d: Range(%d) = %v, want %v", trial, f, v, ref[f])
			}
			gotKeys = append(gotKeys, f)
			return true
		})
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("trial %d: Range visited %d keys, want %d", trial, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("trial %d: Range order[%d] = %d, want %d", trial, i, gotKeys[i], wantKeys[i])
			}
		}
	}
}

// TestMapSnapshotIsolation takes snapshots at random points of an
// insert sequence and verifies every snapshot still holds exactly its
// capture-time contents after the map has moved arbitrarily far ahead —
// the O(1)-snapshot property the concurrent serving path rests on.
func TestMapSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type snap struct {
		m   Map
		ref map[int]float64
	}
	var m Map
	ref := make(map[int]float64)
	var snaps []snap
	for step := 0; step < 3000; step++ {
		if step%97 == 0 {
			frozen := make(map[int]float64, len(ref))
			for f, v := range ref {
				frozen[f] = v
			}
			snaps = append(snaps, snap{m: m, ref: frozen})
		}
		f := rng.Intn(1 << 16)
		v := float64(step)
		m = m.Set(f, v)
		ref[f] = v
	}
	for i, s := range snaps {
		if s.m.Len() != len(s.ref) {
			t.Fatalf("snapshot %d: Len %d, want %d", i, s.m.Len(), len(s.ref))
		}
		count := 0
		s.m.Range(func(f int, v float64) bool {
			want, ok := s.ref[f]
			if !ok || v != want {
				t.Fatalf("snapshot %d: entry (%d, %v) not in frozen reference (want %v, present %v)",
					i, f, v, want, ok)
			}
			count++
			return true
		})
		if count != len(s.ref) {
			t.Fatalf("snapshot %d: Range visited %d, want %d", i, count, len(s.ref))
		}
	}
}

// TestMapZeroValueAndNegative locks the edge contract: the zero Map is
// empty and usable, and negative frame indices panic on Set / miss on
// Get.
func TestMapZeroValueAndNegative(t *testing.T) {
	var m Map
	if m.Len() != 0 {
		t.Fatalf("zero Map Len = %d", m.Len())
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("zero Map Get(0) reported a value")
	}
	if _, ok := m.Get(-5); ok {
		t.Fatal("Get(-5) reported a value")
	}
	m.Range(func(int, float64) bool { t.Fatal("zero Map Range visited an entry"); return false })
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) did not panic")
		}
	}()
	m.Set(-1, 1)
}

// TestOverlay checks read-through, write isolation from the base, and
// Fresh extraction.
func TestOverlay(t *testing.T) {
	var base Map
	base = base.Set(3, 0.5).Set(9, 1.5)
	o := NewOverlay(base)
	if v, ok := o.Get(3); !ok || v != 0.5 {
		t.Fatalf("Get(3) = (%v, %v)", v, ok)
	}
	o.Set(4, 2.5)
	o.Set(3, 0.5) // Set always records into fresh, even for base-present keys
	if v, ok := o.Get(4); !ok || v != 2.5 {
		t.Fatalf("Get(4) = (%v, %v)", v, ok)
	}
	if _, ok := base.Get(4); ok {
		t.Fatal("overlay write leaked into the base snapshot")
	}
	fresh := o.Fresh()
	if len(fresh) != 2 || fresh[4] != 2.5 {
		t.Fatalf("Fresh = %v", fresh)
	}

	// A nil overlay reads empty and swallows writes.
	var nilO *Overlay
	if _, ok := nilO.Get(1); ok {
		t.Fatal("nil overlay Get reported a value")
	}
	nilO.Set(1, 1)
	if nilO.Fresh() != nil {
		t.Fatal("nil overlay accumulated state")
	}
}

// TestSharedCacheVersioning checks the versioned-publish contract:
// snapshots pin a version, publishes advance it monotonically, and a
// pinned snapshot never sees later labels.
func TestSharedCacheVersioning(t *testing.T) {
	c := NewSharedCache()
	m0, v0 := c.Snapshot()
	if v0 != 0 || m0.Len() != 0 {
		t.Fatalf("fresh cache snapshot = (%d labels, v%d)", m0.Len(), v0)
	}
	if v := c.Publish(nil); v != 0 {
		t.Fatalf("empty publish bumped version to %d", v)
	}
	v1 := c.Publish(map[int]float64{1: 0.5, 2: 1.5})
	if v1 != 1 {
		t.Fatalf("first publish gave version %d", v1)
	}
	m1, got1 := c.Snapshot()
	if got1 != v1 || m1.Len() != 2 {
		t.Fatalf("snapshot after publish = (%d labels, v%d)", m1.Len(), got1)
	}
	c.Publish(map[int]float64{3: 2.5})
	if _, ok := m1.Get(3); ok {
		t.Fatal("pinned snapshot observed a later publish")
	}
	if c.Len() != 3 || c.Version() != 2 {
		t.Fatalf("cache = (%d labels, v%d), want (3, v2)", c.Len(), c.Version())
	}
}

// TestSharedCacheRegistry checks process-wide keying and test reset.
func TestSharedCacheRegistry(t *testing.T) {
	defer ResetForTest()
	ResetForTest()
	a := For("video-a\x00udf-x")
	if For("video-a\x00udf-x") != a {
		t.Fatal("same key returned a different cache")
	}
	if For("video-b\x00udf-x") == a {
		t.Fatal("different key shared a cache")
	}
	ResetForTest()
	if For("video-a\x00udf-x") == a {
		t.Fatal("ResetForTest kept the old cache in the registry")
	}
}
