package labelstore

import (
	"context"
	"sort"
	"sync"
	"time"
)

// SharedCache is a versioned label store many sessions read and
// publish into concurrently. Reads are O(1) snapshots of an immutable
// Map; publishes fold a query's fresh labels in under a short lock and
// bump the version.
//
// Determinism contract (see DESIGN.md, "Serving layer"): a query pins
// one version when it snapshots and never observes later publishes, so
// its result is a deterministic function of (pinned snapshot, Config).
// Publishes are monotone — labels are only ever added, and an exact
// frame score is query-independent, so the store's content at version
// v is the same set of labels no matter which interleaving of
// publishes produced it; only the version number at which a given
// label appears depends on arrival order.
type SharedCache struct {
	mu      sync.Mutex
	labels  Map
	version uint64

	// Admission control: inflight counts oracle-heavy units (a lone
	// query or one QueryBatch) currently running against this cache;
	// admit blocks while inflight ≥ the caller's limit.
	cond     *sync.Cond
	inflight int

	// Eviction policy state: pubs logs publish batches (kept only while
	// a policy is active, so the unbounded-cache fast path records
	// nothing), lastPub maps a frame to the sequence number of the
	// newest publish that contained it, and now is the injectable clock
	// for TTL tests.
	policy  Policy
	pubs    []publishRecord
	lastPub map[int]uint64
	pubSeq  uint64
	now     func() time.Time

	// Durability hook (nil for RAM-only caches): every publish and
	// eviction is logged, with the version it produced, before the
	// version becomes observable outside the lock. walErr latches the
	// first append failure — the cache then keeps serving from RAM with
	// a frozen durable horizon. See durable.go.
	wal    WAL
	walErr error

	// attachment is the serving layer's per-cache singleton slot (the
	// coalescing scheduler); tying it to the cache gives it exactly the
	// cache's lifetime — when a registry drops the cache, whatever was
	// attached goes with it.
	attachment any
}

// Attachment returns the cache's singleton attachment, creating it
// with mk on first use. mk must not call back into the cache.
func (c *SharedCache) Attachment(mk func() any) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.attachment == nil {
		c.attachment = mk()
	}
	return c.attachment
}

// Policy bounds a long-lived cache. The zero value keeps every label
// forever (the default). Eviction runs at publish and snapshot time,
// oldest publish batch first (the newest batch is exempt from the size
// cap, so the publishing query can always reuse its own labels), and
// each eviction pass bumps the cache version — queries pinned to
// earlier snapshots hold immutable maps and are unaffected; an evicted
// frame is simply re-charged by the next query that needs it. The
// policy governs labels published after it is set: batches published
// before any policy was active carry no history, are never evicted,
// and do not count toward MaxLabels.
type Policy struct {
	// TTL, when positive, evicts publish batches older than this.
	TTL time.Duration
	// MaxLabels, when positive, evicts oldest batches until the cache
	// holds at most this many policy-governed labels.
	MaxLabels int
}

// active reports whether the policy bounds anything.
func (p Policy) active() bool { return p.TTL > 0 || p.MaxLabels > 0 }

// publishRecord remembers one publish batch for eviction.
type publishRecord struct {
	seq  uint64
	at   time.Time
	keys []int
}

// NewSharedCache returns an empty cache. Sessions with a private label
// cache use one of these unshared; shared sessions get a registry
// instance via For.
func NewSharedCache() *SharedCache {
	c := &SharedCache{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Snapshot returns the current label map and the version it
// represents. The map is immutable; the caller can read it — and layer
// an Overlay over it — without further coordination. When a TTL policy
// is active, expired batches are evicted first, so a warm cache whose
// queries all hit (and therefore never publish) still ages labels out
// on the snapshot path rather than serving them stale forever.
func (c *SharedCache) Snapshot() (Map, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy.active() && len(c.pubs) > 0 {
		c.evictLocked()
	}
	return c.labels, c.version
}

// Publish folds fresh labels into the cache and returns the new
// version. Empty publishes do not bump the version. Keys are folded in
// ascending order so the trie's internal shape — not just its content
// — is independent of Go map iteration order. When an eviction policy
// is active, the batch is logged and over-budget or expired batches are
// evicted before returning (each eviction pass bumps the version once
// more).
func (c *SharedCache) Publish(fresh map[int]float64) uint64 {
	if len(fresh) == 0 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.version
	}
	keys := make([]int, 0, len(fresh))
	for f := range fresh {
		keys = append(keys, f)
	}
	sort.Ints(keys)
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.labels
	for _, f := range keys {
		m = m.Set(f, fresh[f])
	}
	c.labels = m
	c.version++
	c.logPublish(c.version, keys, fresh)
	if c.policy.active() {
		c.pubSeq++
		c.pubs = append(c.pubs, publishRecord{seq: c.pubSeq, at: c.clock()(), keys: keys})
		if c.lastPub == nil {
			c.lastPub = make(map[int]uint64)
		}
		for _, f := range keys {
			c.lastPub[f] = c.pubSeq
		}
		c.evictLocked()
	} else if c.lastPub != nil {
		// With the policy off, this publish is unlogged — the label is
		// now permanent, so it must no longer be attributed to an older
		// logged batch (re-enabling a policy later must not evict it).
		for _, f := range keys {
			delete(c.lastPub, f)
		}
	}
	return c.version
}

// SetPolicy installs (or replaces) the cache's eviction policy and
// immediately applies it to the logged batches. It is a whole-policy
// overwrite — last writer wins, including clearing fields the previous
// writer set — so it belongs to single-owner caches and explicit
// administrative resets; sessions funneling per-query knobs into a
// cache shared with siblings use TightenPolicy instead. The zero
// Policy disables eviction (already-logged batches are kept but stop
// being evicted).
func (c *SharedCache) SetPolicy(p Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
	if p.active() {
		c.evictLocked()
	}
}

// TightenPolicy merges p into the cache's policy strictest-wins and
// returns the effective result: a positive TTL or MaxLabels in p takes
// effect only where the cache has no bound yet or p's bound is
// tighter, and p's zero fields never touch what another writer
// installed. This is the sound resolution for a cache shared by
// sessions with conflicting knobs — any limit a user was promised
// still holds, because concurrent tightenings commute to the pairwise
// minimum regardless of arrival order (unlike SetPolicy, where the
// last writer silently erases its siblings' bounds). Loosening a
// shared cache requires the explicit SetPolicy reset.
func (c *SharedCache) TightenPolicy(p Policy) Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.TTL > 0 && (c.policy.TTL == 0 || p.TTL < c.policy.TTL) {
		c.policy.TTL = p.TTL
	}
	if p.MaxLabels > 0 && (c.policy.MaxLabels == 0 || p.MaxLabels < c.policy.MaxLabels) {
		c.policy.MaxLabels = p.MaxLabels
	}
	if c.policy.active() {
		c.evictLocked()
	}
	return c.policy
}

// SetClockForTest replaces the TTL clock (nil restores time.Now).
// Tests only.
func (c *SharedCache) SetClockForTest(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

func (c *SharedCache) clock() func() time.Time {
	if c.now != nil {
		return c.now
	}
	return time.Now
}

// evictLocked drops publish batches, oldest first, while the policy is
// violated: the cache exceeds MaxLabels, or the oldest batch is older
// than TTL. A frame is removed only if the batch being dropped is the
// newest one that contained it — re-published frames survive their
// original batch's eviction. Bumps the version once if anything was
// evicted. Caller holds c.mu.
func (c *SharedCache) evictLocked() {
	now := c.clock()()
	var removed []int
	for len(c.pubs) > 0 {
		// The newest batch is never size-evicted: the query that just
		// published it (and anyone coalesced behind it) must be able to
		// reuse its own labels, so a cap smaller than one batch degrades
		// to keeping the latest batch only. TTL eviction has no such
		// exemption — a genuinely expired batch goes even if it is the
		// last one. The cap is measured over the labels the policy
		// governs (logged, un-evicted ones — len(lastPub)), not the
		// whole map: pre-policy labels are permanent, and counting them
		// would make an unreachable cap evict every new batch forever.
		over := c.policy.MaxLabels > 0 && len(c.lastPub) > c.policy.MaxLabels && len(c.pubs) > 1
		expired := c.policy.TTL > 0 && now.Sub(c.pubs[0].at) > c.policy.TTL
		if !over && !expired {
			break
		}
		pub := c.pubs[0]
		c.pubs = c.pubs[1:]
		for _, f := range pub.keys {
			if c.lastPub[f] != pub.seq {
				continue
			}
			c.labels = c.labels.Delete(f)
			delete(c.lastPub, f)
			removed = append(removed, f)
		}
	}
	if len(removed) > 0 {
		c.version++
		c.logEvict(c.version, removed)
	}
}

// Len returns the number of labels currently stored.
func (c *SharedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.labels.Len()
}

// Version returns the current publish version.
func (c *SharedCache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Admit blocks until fewer than limit oracle-heavy units are running
// against this cache, then reserves a slot; the returned release frees
// it. limit ≤ 0 means no cap (the release is still required). Each
// caller enforces its own limit against the shared in-flight count, so
// heterogeneous configs degrade gracefully: the strictest in-flight
// caller waits the longest. Admission changes scheduling only, never
// results.
func (c *SharedCache) Admit(limit int) (release func()) {
	c.mu.Lock()
	for limit > 0 && c.inflight >= limit {
		c.cond.Wait()
	}
	c.inflight++
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
		c.cond.Broadcast()
	}
}

// AdmitCtx is Admit with a cancellable wait: a caller cancelled while
// blocked at the gate stops waiting and gets ctx.Err() with a nil
// release — no slot was reserved, so cancellation can never leak
// admission capacity. A nil ctx behaves exactly as Admit.
func (c *SharedCache) AdmitCtx(ctx context.Context, limit int) (release func(), err error) {
	if ctx == nil {
		return c.Admit(limit), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Cancellation wakes every gate waiter; the loop below re-checks its
	// own ctx, so only the cancelled caller gives up. Taking the lock in
	// the callback orders the broadcast after the waiter is parked.
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.cond.Broadcast()
	})
	defer stop()
	c.mu.Lock()
	for limit > 0 && c.inflight >= limit {
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		c.cond.Wait()
	}
	c.inflight++
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
		c.cond.Broadcast()
	}, nil
}

// InFlight reports how many admitted oracle-heavy units are currently
// running against this cache. Leak-detection tests assert it returns
// to zero after faulted workloads; it is scheduling introspection only.
func (c *SharedCache) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// registry is the process-wide cache directory: one SharedCache per
// (video source, UDF) pair, so every session over the same pair —
// across all users of the process — reuses one label store.
var registry = struct {
	mu sync.Mutex
	m  map[string]*SharedCache
}{m: make(map[string]*SharedCache)}

// For returns the process-wide shared cache for the given (video
// source, UDF) identity, creating it on first use. Callers build the
// key from the identifiers that make label reuse sound: same video
// content and same scoring function.
func For(key string) *SharedCache {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	c, ok := registry.m[key]
	if !ok {
		c = NewSharedCache()
		registry.m[key] = c
	}
	return c
}

// ResetForTest detaches every registry entry: sessions already holding
// a cache keep it, future For calls start fresh. Benchmarks and tests
// use this to measure cold-cache behaviour; production code has no
// reason to call it.
func ResetForTest() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.m = make(map[string]*SharedCache)
}
