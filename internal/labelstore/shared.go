package labelstore

import (
	"sort"
	"sync"
)

// SharedCache is a versioned label store many sessions read and
// publish into concurrently. Reads are O(1) snapshots of an immutable
// Map; publishes fold a query's fresh labels in under a short lock and
// bump the version.
//
// Determinism contract (see DESIGN.md, "Serving layer"): a query pins
// one version when it snapshots and never observes later publishes, so
// its result is a deterministic function of (pinned snapshot, Config).
// Publishes are monotone — labels are only ever added, and an exact
// frame score is query-independent, so the store's content at version
// v is the same set of labels no matter which interleaving of
// publishes produced it; only the version number at which a given
// label appears depends on arrival order.
type SharedCache struct {
	mu      sync.Mutex
	labels  Map
	version uint64

	// Admission control: inflight counts oracle-heavy units (a lone
	// query or one QueryBatch) currently running against this cache;
	// admit blocks while inflight ≥ the caller's limit.
	cond     *sync.Cond
	inflight int
}

// NewSharedCache returns an empty cache. Sessions with a private label
// cache use one of these unshared; shared sessions get a registry
// instance via For.
func NewSharedCache() *SharedCache {
	c := &SharedCache{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Snapshot returns the current label map and the version it
// represents. The map is immutable; the caller can read it — and layer
// an Overlay over it — without further coordination.
func (c *SharedCache) Snapshot() (Map, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.labels, c.version
}

// Publish folds fresh labels into the cache and returns the new
// version. Empty publishes do not bump the version. Keys are folded in
// ascending order so the trie's internal shape — not just its content
// — is independent of Go map iteration order.
func (c *SharedCache) Publish(fresh map[int]float64) uint64 {
	if len(fresh) == 0 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.version
	}
	keys := make([]int, 0, len(fresh))
	for f := range fresh {
		keys = append(keys, f)
	}
	sort.Ints(keys)
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.labels
	for _, f := range keys {
		m = m.Set(f, fresh[f])
	}
	c.labels = m
	c.version++
	return c.version
}

// Len returns the number of labels currently stored.
func (c *SharedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.labels.Len()
}

// Version returns the current publish version.
func (c *SharedCache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Admit blocks until fewer than limit oracle-heavy units are running
// against this cache, then reserves a slot; the returned release frees
// it. limit ≤ 0 means no cap (the release is still required). Each
// caller enforces its own limit against the shared in-flight count, so
// heterogeneous configs degrade gracefully: the strictest in-flight
// caller waits the longest. Admission changes scheduling only, never
// results.
func (c *SharedCache) Admit(limit int) (release func()) {
	c.mu.Lock()
	for limit > 0 && c.inflight >= limit {
		c.cond.Wait()
	}
	c.inflight++
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
		c.cond.Broadcast()
	}
}

// registry is the process-wide cache directory: one SharedCache per
// (video source, UDF) pair, so every session over the same pair —
// across all users of the process — reuses one label store.
var registry = struct {
	mu sync.Mutex
	m  map[string]*SharedCache
}{m: make(map[string]*SharedCache)}

// For returns the process-wide shared cache for the given (video
// source, UDF) identity, creating it on first use. Callers build the
// key from the identifiers that make label reuse sound: same video
// content and same scoring function.
func For(key string) *SharedCache {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	c, ok := registry.m[key]
	if !ok {
		c = NewSharedCache()
		registry.m[key] = c
	}
	return c
}

// ResetForTest detaches every registry entry: sessions already holding
// a cache keep it, future For calls start fresh. Benchmarks and tests
// use this to measure cold-cache behaviour; production code has no
// reason to call it.
func ResetForTest() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.m = make(map[string]*SharedCache)
}
