package labelstore

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestSharedCacheConcurrentPublish hammers one cache with many
// session-like goroutines, each repeatedly snapshotting, reading its
// pinned map while others publish, and publishing its own fresh
// labels. Under -race this proves the snapshot/publish path is
// data-race free; the assertions prove publishes are monotone (a label
// once visible never changes or disappears) and that the final store
// holds every session's labels. An exact frame score is
// query-independent, so all writers agree on shared keys — mirroring
// real oracle labels.
func TestSharedCacheConcurrentPublish(t *testing.T) {
	const (
		sessions = 16
		rounds   = 30
		perRound = 25
	)
	c := NewSharedCache()
	score := func(f int) float64 { return float64(f) * 0.25 }
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				snap, _ := c.Snapshot()
				// The pinned snapshot must be internally consistent
				// while other sessions publish: every visible label
				// carries the one true score.
				snap.Range(func(f int, v float64) bool {
					if v != score(f) {
						t.Errorf("session %d: frame %d has score %v, want %v", s, f, v, score(f))
						return false
					}
					return true
				})
				fresh := make(map[int]float64, perRound)
				for i := 0; i < perRound; i++ {
					// Half the keys collide across sessions, half are
					// private — both must merge cleanly.
					f := (s*rounds+r)*perRound + i
					if i%2 == 0 {
						f = r*perRound + i
					}
					fresh[f] = score(f)
				}
				c.Publish(fresh)
			}
		}(s)
	}
	wg.Wait()
	final, _ := c.Snapshot()
	bad := 0
	final.Range(func(f int, v float64) bool {
		if v != score(f) {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d labels diverged from the oracle score after concurrent publishes", bad)
	}
	if final.Len() == 0 {
		t.Fatal("concurrent publishes left the cache empty")
	}
}

// TestSharedCacheAdmission checks the admission gate: with a limit of
// 2, no more than 2 units are ever in flight, and every unit
// eventually runs.
func TestSharedCacheAdmission(t *testing.T) {
	c := NewSharedCache()
	const units = 12
	var (
		mu       sync.Mutex
		inflight int
		peak     int
		ran      int
	)
	var wg sync.WaitGroup
	for i := 0; i < units; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := c.Admit(2)
			defer release()
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			ran++
			mu.Unlock()
			// Hold the slot briefly so overlap is observable.
			for j := 0; j < 1000; j++ {
				_ = j
			}
			mu.Lock()
			inflight--
			mu.Unlock()
		}()
	}
	wg.Wait()
	if peak > 2 {
		t.Fatalf("admission limit 2 allowed %d concurrent units", peak)
	}
	if ran != units {
		t.Fatalf("only %d of %d units ran", ran, units)
	}

	// Unlimited admission must not block.
	release := c.Admit(0)
	release()
}

// TestAdmitCtxCancelWhileWaiting locks the cancellable admission gate:
// a waiter cancelled while parked at a full gate returns ctx.Err()
// with no slot reserved (InFlight unchanged), the remaining waiters
// admit normally once capacity frees, and a pre-cancelled or nil ctx
// takes the documented fast paths.
func TestAdmitCtxCancelWhileWaiting(t *testing.T) {
	c := NewSharedCache()

	// nil ctx: exactly Admit.
	release, err := c.AdmitCtx(nil, 1)
	if err != nil || release == nil {
		t.Fatalf("nil-ctx AdmitCtx failed: err=%v, release nil=%v", err, release == nil)
	}

	// Pre-cancelled: immediate error, nothing reserved (gate is full, so
	// success would mean it jumped the queue).
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if rel, err := c.AdmitCtx(pre, 1); !errors.Is(err, context.Canceled) || rel != nil {
		t.Fatalf("pre-cancelled AdmitCtx: err=%v (release nil=%v), want context.Canceled and nil release", err, rel == nil)
	}
	if got := c.InFlight(); got != 1 {
		t.Fatalf("in-flight %d after rejected admission, want 1", got)
	}

	// Park a cancellable waiter and a patient waiter at the full gate.
	ctx, cancel := context.WithCancel(context.Background())
	cancelledErr := make(chan error, 1)
	go func() {
		rel, err := c.AdmitCtx(ctx, 1)
		if rel != nil {
			rel()
		}
		cancelledErr <- err
	}()
	patient := make(chan error, 1)
	go func() {
		rel, err := c.AdmitCtx(context.Background(), 1)
		if err == nil {
			rel()
		}
		patient <- err
	}()
	// Both are (eventually) parked; cancel one. Only it may give up.
	cancel()
	if err := <-cancelledErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	select {
	case err := <-patient:
		t.Fatalf("patient waiter returned early (%v) while the gate was full", err)
	default:
	}
	// Free the slot: the patient waiter admits and releases.
	release()
	if err := <-patient; err != nil {
		t.Fatalf("patient waiter failed after capacity freed: %v", err)
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("gate leaked: %d in flight after all releases", got)
	}
}
