package labelstore_test

import (
	"errors"
	"sync"
	"testing"

	"github.com/everest-project/everest/internal/durable"
	"github.com/everest-project/everest/internal/labelstore"
)

func openStore(t *testing.T, dir string, opts durable.Options) *durable.Store {
	t.Helper()
	s, err := durable.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mapOf(m labelstore.Map) map[int]float64 {
	out := make(map[int]float64)
	m.Range(func(f int, v float64) bool {
		out[f] = v
		return true
	})
	return out
}

// TestSnapshotAtRAMOnlyFailsClosed: without a WAL, only the current
// version is resolvable — historical pins fail with a typed error, they
// never rebind to the current labels.
func TestSnapshotAtRAMOnlyFailsClosed(t *testing.T) {
	c := labelstore.NewSharedCache()
	c.Publish(map[int]float64{1: 1})
	v1 := c.Version()
	c.Publish(map[int]float64{2: 2})

	if _, err := c.SnapshotAt(c.Version()); err != nil {
		t.Fatalf("current version: %v", err)
	}
	var verr *labelstore.VersionError
	_, err := c.SnapshotAt(v1)
	if !errors.As(err, &verr) {
		t.Fatalf("historical pin on RAM-only cache = %v, want *VersionError", err)
	}
	if verr.Version != v1 {
		t.Fatalf("VersionError.Version = %d, want %d", verr.Version, v1)
	}
}

// TestSnapshotAtResolvesAcrossCrash is the pinned-version recovery
// contract: a version pinned before a crash resolves to exactly the
// label map it named originally — bit-identical scores — after the WAL
// is replayed into a fresh cache.
func TestSnapshotAtResolvesAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	c := labelstore.NewSharedCache()
	if err := c.EnableDurable(openStore(t, dir, durable.Options{})); err != nil {
		t.Fatal(err)
	}
	if got := c.DurableDir(); got != dir {
		t.Fatalf("DurableDir = %q, want %q", got, dir)
	}

	c.Publish(map[int]float64{10: 0.5, 11: 0.25})
	pinned := c.Version()
	want, err := c.SnapshotAt(pinned)
	if err != nil {
		t.Fatal(err)
	}
	c.Publish(map[int]float64{12: 0.75})
	c.Publish(map[int]float64{10: 0.875}) // overwrites frame 10 later

	// "Crash": abandon the cache, reopen the directory into a fresh one.
	recovered := labelstore.NewSharedCache()
	if err := recovered.EnableDurable(openStore(t, dir, durable.Options{})); err != nil {
		t.Fatal(err)
	}
	if recovered.Version() != c.Version() {
		t.Fatalf("recovered version %d, want %d (continuity)", recovered.Version(), c.Version())
	}
	got, err := recovered.SnapshotAt(pinned)
	if err != nil {
		t.Fatalf("pinned version %d after crash: %v", pinned, err)
	}
	gm, wm := mapOf(got), mapOf(want)
	if len(gm) != len(wm) {
		t.Fatalf("pinned snapshot has %d labels after crash, %d before", len(gm), len(wm))
	}
	for f, v := range wm {
		if gm[f] != v {
			t.Fatalf("frame %d: %v after crash, %v before", f, gm[f], v)
		}
	}
	if gm[10] != 0.5 {
		t.Fatalf("pinned snapshot sees the later overwrite of frame 10: %v", gm[10])
	}

	// Version continuity: new publishes continue the sequence durably.
	recovered.Publish(map[int]float64{20: 2})
	if err := recovered.DurableErr(); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
}

// TestSnapshotAtBeyondHorizonFailsClosed: once checkpointing truncates
// the WAL records behind a version, the pin fails closed with the
// horizon in the error — it never resolves to a nearby state.
func TestSnapshotAtBeyondHorizonFailsClosed(t *testing.T) {
	dir := t.TempDir()
	c := labelstore.NewSharedCache()
	if err := c.EnableDurable(openStore(t, dir, durable.Options{CheckpointEvery: 3})); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		c.Publish(map[int]float64{i: float64(i)})
	}
	// Checkpoints landed at v3 and v6, truncating records 1..6; v1 and v2
	// predate the oldest surviving checkpoint.
	var verr *labelstore.VersionError
	if _, err := c.SnapshotAt(2); !errors.As(err, &verr) {
		t.Fatalf("truncated version = %v, want *VersionError", err)
	}
	if verr.Oldest == 0 || verr.Newest != 7 {
		t.Fatalf("horizon [%d,%d], want oldest > 0, newest 7", verr.Oldest, verr.Newest)
	}
	if _, err := c.SnapshotAt(6); err != nil {
		t.Fatalf("checkpointed version 6: %v", err)
	}
}

// TestEnableDurableWarmCacheAdopts: a cache that already holds labels
// becomes durable by installing its state as the store baseline, and
// its pre-attach version remains resolvable.
func TestEnableDurableWarmCacheAdopts(t *testing.T) {
	dir := t.TempDir()
	c := labelstore.NewSharedCache()
	c.Publish(map[int]float64{1: 1})
	c.Publish(map[int]float64{2: 2})
	if err := c.EnableDurable(openStore(t, dir, durable.Options{})); err != nil {
		t.Fatal(err)
	}
	c.Publish(map[int]float64{3: 3})

	recovered := labelstore.NewSharedCache()
	if err := recovered.EnableDurable(openStore(t, dir, durable.Options{})); err != nil {
		t.Fatal(err)
	}
	if recovered.Version() != 3 || recovered.Len() != 3 {
		t.Fatalf("recovered v%d with %d labels, want v3 with 3", recovered.Version(), recovered.Len())
	}
	if m, err := recovered.SnapshotAt(2); err != nil || m.Len() != 2 {
		t.Fatalf("baseline version: %v (len %d)", err, m.Len())
	}
}

// TestEnableDurableRejectsSecondDir: a cache logs to one directory for
// its lifetime; re-attaching the same dir is a no-op, a different dir
// is an error.
func TestEnableDurableRejectsSecondDir(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	c := labelstore.NewSharedCache()
	sa := openStore(t, dirA, durable.Options{})
	if err := c.EnableDurable(sa); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableDurable(sa); err != nil {
		t.Fatalf("idempotent re-attach: %v", err)
	}
	if err := c.EnableDurable(openStore(t, dirB, durable.Options{})); err == nil {
		t.Fatal("switching durable dirs silently accepted")
	}
}

// TestEvictionLoggedDurably: TTL/max-labels evictions bump the version
// and are logged, so replay converges to the post-eviction state
// instead of resurrecting evicted labels.
func TestEvictionLoggedDurably(t *testing.T) {
	dir := t.TempDir()
	c := labelstore.NewSharedCache()
	if err := c.EnableDurable(openStore(t, dir, durable.Options{})); err != nil {
		t.Fatal(err)
	}
	c.SetPolicy(labelstore.Policy{MaxLabels: 2})
	c.Publish(map[int]float64{1: 1, 2: 2})
	c.Publish(map[int]float64{3: 3, 4: 4}) // evicts batch {1,2}: versions 2 (publish) + 3 (evict)
	if c.Version() != 3 || c.Len() != 2 {
		t.Fatalf("cache at v%d with %d labels, want v3 with 2", c.Version(), c.Len())
	}

	recovered := labelstore.NewSharedCache()
	if err := recovered.EnableDurable(openStore(t, dir, durable.Options{})); err != nil {
		t.Fatal(err)
	}
	if recovered.Version() != 3 || recovered.Len() != 2 {
		t.Fatalf("recovered v%d with %d labels, want v3 with 2", recovered.Version(), recovered.Len())
	}
	m, _ := recovered.Snapshot()
	if _, ok := m.Get(1); ok {
		t.Fatal("evicted frame 1 resurrected by replay")
	}
}

// TestSnapshotAtDoesNotHoldCacheLock: historical resolution replays the
// on-disk log without holding the cache mutex, so publishes proceed
// concurrently — run under -race, this locks the locking discipline.
func TestSnapshotAtDoesNotHoldCacheLock(t *testing.T) {
	dir := t.TempDir()
	c := labelstore.NewSharedCache()
	if err := c.EnableDurable(openStore(t, dir, durable.Options{CheckpointEvery: -1})); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		c.Publish(map[int]float64{i: float64(i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g%2 == 0 {
					if _, err := c.SnapshotAt(uint64(1 + i%8)); err != nil {
						t.Errorf("SnapshotAt: %v", err)
						return
					}
				} else {
					c.Publish(map[int]float64{100*g + i: float64(i)})
				}
			}
		}(g)
	}
	wg.Wait()
	if err := c.DurableErr(); err != nil {
		t.Fatal(err)
	}
}
