package stream

import (
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func feed(t *testing.T, frames int) *video.Synthetic {
	t.Helper()
	s, err := video.NewSynthetic(video.Config{
		Name: "cam", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: 12, MeanPopulation: 3, BurstRate: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testIngest keeps per-segment Phase 1 small enough for unit tests.
func testIngest(seed uint64) phase1.Options {
	return phase1.Options{
		SampleFrac: 0.1,
		MinSamples: 60,
		Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 20}}, Epochs: 10},
		Cost:       simclock.Default(),
		Seed:       seed,
	}
}

func countUDF() vision.UDF { return vision.CountUDF{Class: video.ClassCar} }

// TestStreamingMatchesBatch: one segment spanning the whole feed,
// delivered in awkward chunks, produces an artifact and simulated
// charges bit-identical to one batch Ingest over the same frames.
func TestStreamingMatchesBatch(t *testing.T) {
	const n = 900
	src := feed(t, n)
	udf := countUDF()

	batchClock := simclock.NewClock()
	prefix, err := video.Prefix(src, n)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Ingest(prefix, udf, testIngest(5), batchClock)
	if err != nil {
		t.Fatal(err)
	}

	g, err := NewIngestor(src, udf, Config{SegmentFrames: n, Ingest: testIngest(5)})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for delivered := 0; delivered < n; {
		chunk := 1 + delivered%13
		if delivered+chunk > n {
			chunk = n - delivered
		}
		if err := g.Append(chunk); err != nil {
			t.Fatal(err)
		}
		delivered += chunk
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want, g.Artifact()) {
		t.Fatal("streamed artifact differs from batch ingest")
	}
	if got, wantMS := g.IngestMS(), batchClock.TotalMS(); got != wantMS {
		t.Fatalf("streamed ingest charged %v ms, batch %v ms", got, wantMS)
	}
	st := g.Stats()
	if st.Segments != 1 || st.WastedLabels != 0 || st.EagerLabels == 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestSealedShortSegmentIsPure: sealing mid-segment re-plans for the
// actual length, so the artifact still matches batch ingestion of the
// same span; only extra (wasted eager) label charges are allowed.
func TestSealedShortSegmentIsPure(t *testing.T) {
	const n = 700
	src := feed(t, n)
	udf := countUDF()

	batchClock := simclock.NewClock()
	prefix, err := video.Prefix(src, n)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Ingest(prefix, udf, testIngest(5), batchClock)
	if err != nil {
		t.Fatal(err)
	}

	// Planned span exceeds the feed: the single segment seals short.
	g, err := NewIngestor(src, udf, Config{SegmentFrames: 4 * n, Ingest: testIngest(5)})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < n/100; i++ {
		if err := g.Append(100); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, g.Artifact()) {
		t.Fatal("sealed-short artifact differs from batch ingest")
	}
	if g.IngestMS() < batchClock.TotalMS() {
		t.Fatalf("streamed %v ms below batch %v ms", g.IngestMS(), batchClock.TotalMS())
	}
}

// TestWarmRefreshCheaperThanFull: on a stationary feed, RefreshWarm
// segments charge less simulated training time than RefreshFull at the
// same boundaries, and the counters record the modes.
func TestWarmRefreshCheaperThanFull(t *testing.T) {
	const n, seg = 1800, 600
	run := func(mode RefreshMode) (*Ingestor, error) {
		src := feed(t, n)
		cfg := Config{SegmentFrames: seg, Refresh: mode, Ingest: testIngest(5)}
		g, err := NewIngestor(src, countUDF(), cfg)
		if err != nil {
			return nil, err
		}
		defer g.Close()
		for i := 0; i < n/seg; i++ {
			if err := g.Append(seg); err != nil {
				return nil, err
			}
		}
		return g, g.Seal()
	}

	full, err := run(RefreshFull)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := run(RefreshWarm)
	if err != nil {
		t.Fatal(err)
	}
	fs, ws := full.Stats(), warm.Stats()
	if fs.FullTrains != 3 || fs.WarmRefreshes != 0 {
		t.Fatalf("full-mode stats %+v", fs)
	}
	if ws.FullTrains != 1 || ws.WarmRefreshes != 2 {
		t.Fatalf("warm-mode stats %+v", ws)
	}
	if warm.IngestMS() >= full.IngestMS() {
		t.Fatalf("warm ingest %v ms not below full %v ms", warm.IngestMS(), full.IngestMS())
	}
	// The artifacts agree on structure (same plans, same labels); only
	// the proxies — and hence the mixtures — differ.
	if warm.Artifact().TotalFrames != full.Artifact().TotalFrames ||
		!reflect.DeepEqual(warm.Artifact().Exact, full.Artifact().Exact) {
		t.Fatal("warm and full streams disagree on labelled frames")
	}
}

// TestDriftFallback: a negative tolerance rejects every warm start; the
// fallbacks are counted and the stream degrades to full trains.
func TestDriftFallback(t *testing.T) {
	const n, seg = 1200, 600
	src := feed(t, n)
	cfg := Config{SegmentFrames: seg, Refresh: RefreshAuto, DriftNLL: -1, Ingest: testIngest(5)}
	g, err := NewIngestor(src, countUDF(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < n/seg; i++ {
		if err := g.Append(seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.FullTrains != 2 || st.WarmRefreshes != 0 || st.DriftFallbacks != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestReservoirBounded: the calibration reservoir never exceeds its cap
// regardless of how many segments close — the O(chunk) live-memory
// claim for the model-refresh state.
func TestReservoirBounded(t *testing.T) {
	const n, seg = 2400, 600
	src := feed(t, n)
	cfg := Config{SegmentFrames: seg, Refresh: RefreshWarm, ReservoirCap: 50, Ingest: testIngest(5)}
	g, err := NewIngestor(src, countUDF(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < n/seg; i++ {
		if err := g.Append(seg); err != nil {
			t.Fatal(err)
		}
		if len(g.reservoir) > 50 {
			t.Fatalf("reservoir grew to %d (cap 50)", len(g.reservoir))
		}
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}
	if g.resSeen <= 50 {
		t.Fatalf("reservoir saw only %d samples", g.resSeen)
	}
}

// TestFollowerDeltas: a follower sees a first all-entered delta, its
// converged answer matches a direct engine run over the final artifact,
// and a staleness bound forces early closes.
func TestFollowerDeltas(t *testing.T) {
	const n, seg = 1200, 600
	src := feed(t, n)
	udf := countUDF()
	cfg := Config{SegmentFrames: seg, Refresh: RefreshFull, Ingest: testIngest(5)}
	g, err := NewIngestor(src, udf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	plan := engine.Plan{K: 3, Threshold: 0.9, Seed: 5, Cost: simclock.Default()}
	var seen []Delta
	f, err := g.Follow(FollowConfig{Plan: plan, OnDelta: func(d Delta) { seen = append(seen, d) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n/seg; i++ {
		if err := g.Append(seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}

	if len(seen) == 0 || len(seen) != len(f.Deltas()) {
		t.Fatalf("callback saw %d deltas, accumulator %d", len(seen), len(f.Deltas()))
	}
	first := seen[0]
	if len(first.Change.Entered) != 3 || len(first.Change.Left) != 0 {
		t.Fatalf("first delta %+v is not an all-entered answer", first.Change)
	}
	for i, d := range seen {
		if d.Seq != i {
			t.Fatalf("delta %d has Seq %d", i, d.Seq)
		}
	}

	// The converged answer equals a fresh engine run over the final
	// artifact (label caching never changes results).
	prefix, err := video.Prefix(src, n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := engine.NewPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Execute(p, engine.Binding{Src: prefix, UDF: udf, Artifact: g.Artifact()})
	if err != nil {
		t.Fatal(err)
	}
	got := f.Answer()
	if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Scores, want.Scores) {
		t.Fatalf("converged answer %v/%v, want %v/%v", got.IDs, got.Scores, want.IDs, want.Scores)
	}
}

// TestFollowerStalenessBound: with MaxLagChunks set, footage arriving
// without a segment close forces early closes so the follower stays
// within its bound.
func TestFollowerStalenessBound(t *testing.T) {
	const n = 1200
	src := feed(t, n)
	cfg := Config{SegmentFrames: n, Refresh: RefreshFull, Ingest: testIngest(5)}
	g, err := NewIngestor(src, countUDF(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	plan := engine.Plan{K: 3, Threshold: 0.9, Seed: 5, Cost: simclock.Default()}
	f, err := g.Follow(FollowConfig{Plan: plan, MaxLagChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := g.Append(300); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.ForcedCloses == 0 {
		t.Fatalf("no forced closes despite lag bound (stats %+v)", st)
	}
	if len(f.Deltas()) < 2 {
		t.Fatalf("follower saw only %d deltas", len(f.Deltas()))
	}
	last := f.Deltas()[len(f.Deltas())-1]
	if last.Frontier != n {
		t.Fatalf("final delta frontier %d, want %d", last.Frontier, n)
	}
}

// TestSharedConfirmations: two identical followers due at one close run
// as one scheduler group — the second rides the first's confirmations
// and is charged less.
func TestSharedConfirmations(t *testing.T) {
	const n = 900
	src := feed(t, n)
	cfg := Config{SegmentFrames: n, Refresh: RefreshFull, Ingest: testIngest(5)}
	g, err := NewIngestor(src, countUDF(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	plan := engine.Plan{K: 3, Threshold: 0.9, Seed: 5, Cost: simclock.Default()}
	f1, err := g.Follow(FollowConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := g.Follow(FollowConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Append(n); err != nil {
		t.Fatal(err)
	}
	if err := g.Seal(); err != nil {
		t.Fatal(err)
	}
	d1, d2 := f1.Deltas(), f2.Deltas()
	if len(d1) != 1 || len(d2) != 1 {
		t.Fatalf("delta counts %d/%d", len(d1), len(d2))
	}
	if !reflect.DeepEqual(d1[0].IDs, d2[0].IDs) {
		t.Fatal("identical followers disagree")
	}
	if d2[0].QueryMS >= d1[0].QueryMS {
		t.Fatalf("second follower charged %v ms, first %v ms — confirmations not shared",
			d2[0].QueryMS, d1[0].QueryMS)
	}
	if g.Stats().Evaluations != 1 {
		t.Fatalf("evaluations %d, want 1", g.Stats().Evaluations)
	}
}
