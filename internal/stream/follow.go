package stream

import (
	"errors"
	"fmt"

	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/video"
)

// FollowConfig registers a continuous top-K follower.
type FollowConfig struct {
	// Plan is the Phase 2 query plan to keep answered (compile it with
	// engine.NewPlan, or via the public Config.plan path). The plan's
	// ingest options are ignored — the ingestor owns Phase 1.
	Plan engine.Plan
	// MaxLagChunks is the staleness bound: when this many chunks arrive
	// without the follower seeing a new answer, the ingestor closes the
	// open segment early so the next evaluation reflects the frontier.
	// Zero means no bound — the follower updates at the segment cadence
	// only. Forced closes change segment boundaries, so a stream with a
	// lag bound is NOT bit-identical to batch ingestion of the same
	// footage (the converged scores still agree; membership tie-breaks
	// may not).
	MaxLagChunks int
	// OnDelta, when set, is called synchronously with each delta.
	OnDelta func(Delta)
}

// Delta is one continuous-query update: how the follower's top-K answer
// changed when the artifact advanced.
type Delta struct {
	// Seq numbers the follower's deltas from 0.
	Seq int
	// Frontier is the frame count the answer covers.
	Frontier int
	// Change is the membership/rank difference from the previous
	// answer; empty when footage arrived but the answer stood.
	Change engine.AnswerDelta
	// IDs and Scores snapshot the full answer (oracle-confirmed).
	IDs []int
	// Scores holds the confirmed score of each answer frame.
	Scores []float64
	// Confidence is the result's probabilistic guarantee.
	Confidence float64
	// QueryMS is this evaluation's simulated Phase 2 cost.
	QueryMS float64
}

// Follower is a registered continuous query. Its deltas arrive via the
// OnDelta callback and accumulate for Deltas(). Not safe for concurrent
// use with the owning Ingestor.
type Follower struct {
	ing     *Ingestor
	plan    engine.Plan
	maxLag  int
	onDelta func(Delta)

	prev          *engine.Outcome
	prevFrames    int
	lastEvalChunk int
	deltas        []Delta
}

// Follow registers a continuous top-K follower. Followers evaluate as
// segments close; concurrent followers due at the same close are
// submitted as one coalesced scheduler group over the ingestor's
// private label cache, sharing confirmation batches.
func (g *Ingestor) Follow(cfg FollowConfig) (*Follower, error) {
	if g.sealed {
		return nil, errors.New("stream: ingestor is sealed")
	}
	plan, err := engine.NewPlan(cfg.Plan)
	if err != nil {
		return nil, fmt.Errorf("stream: follower plan: %w", err)
	}
	if cfg.MaxLagChunks < 0 {
		return nil, fmt.Errorf("stream: negative staleness bound %d", cfg.MaxLagChunks)
	}
	f := &Follower{
		ing:           g,
		plan:          plan,
		maxLag:        cfg.MaxLagChunks,
		onDelta:       cfg.OnDelta,
		lastEvalChunk: g.chunkSeq,
	}
	g.followers = append(g.followers, f)
	return f, nil
}

// Deltas returns every delta emitted so far, oldest first.
func (f *Follower) Deltas() []Delta { return f.deltas }

// Answer returns the follower's latest full answer (nil before the
// first evaluation).
func (f *Follower) Answer() *engine.Outcome { return f.prev }

// evaluateFollowers runs every follower whose answer is behind the
// artifact as one scheduler group. With force (Seal), followers that
// have never evaluated run even if no footage was ingested since they
// registered.
func (g *Ingestor) evaluateFollowers(force bool) error {
	if g.art == nil {
		return nil
	}
	n := g.art.TotalFrames
	var due []*Follower
	for _, f := range g.followers {
		if f.prevFrames == n && !(force && f.prev == nil) {
			continue
		}
		// A plan the footage cannot satisfy yet (window longer than the
		// stream, K larger than the frame count) waits for more chunks.
		if err := f.plan.ValidateFor(n); err != nil {
			if force {
				return fmt.Errorf("stream: follower plan at sealed frontier %d: %w", n, err)
			}
			continue
		}
		due = append(due, f)
	}
	if len(due) == 0 {
		return nil
	}
	src, err := video.Prefix(g.src, n)
	if err != nil {
		return err
	}
	plans := make([]engine.Plan, len(due))
	binds := make([]engine.Binding, len(due))
	for i, f := range due {
		plans[i] = f.plan
		binds[i] = engine.Binding{Src: src, UDF: g.udf, Artifact: g.art}
	}
	g.stats.Evaluations++
	outs, err := g.sched.SubmitGroup(plans, binds)
	if err != nil {
		return fmt.Errorf("stream: follower evaluation at frame %d: %w", n, err)
	}
	for i, f := range due {
		f.deliver(outs[i], n, g.chunkSeq)
	}
	return nil
}

func (f *Follower) deliver(out *engine.Outcome, frames, chunk int) {
	d := Delta{
		Seq:        len(f.deltas),
		Frontier:   frames,
		Change:     engine.DiffOutcome(f.prev, out),
		IDs:        out.IDs,
		Scores:     out.Scores,
		Confidence: out.Confidence,
	}
	if out.Clock != nil {
		d.QueryMS = out.Clock.TotalMS()
	}
	f.prev = out
	f.prevFrames = frames
	f.lastEvalChunk = chunk
	f.deltas = append(f.deltas, d)
	if f.onDelta != nil {
		f.onDelta(d)
	}
}
