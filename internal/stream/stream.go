// Package stream implements live ingestion for Everest: a camera feed
// arrives in chunks, Phase 1 runs incrementally as footage lands, and
// continuous top-K followers receive answer deltas instead of
// re-running queries from scratch.
//
// The batch entrypoints (BuildIndex, Index.Extend) pay Phase 1 for a
// whole appended span at once. The Ingestor spreads that work over
// chunk arrivals while keeping the engine's determinism contract: the
// ingested artifact is a pure function of the segment-boundary
// sequence, never of how frames were chunked on the way in. Frames are
// modelled as a growing prefix of an underlying video.Source — the same
// append-only camera model Index.Extend uses.
//
// Three ideas, layered:
//
//   - Eager labelling. A segment's labelling plan (phase1.PlanSamples)
//     is fixed the moment the segment opens, so sampled frames are
//     labelled chunk by chunk as they arrive instead of in one burst at
//     the segment close. The oracle is deterministic per frame and the
//     per-sample charge is constant, so for a segment that closes at
//     its planned span both the labels and the simulated charges are
//     bit-identical to the batch path.
//
//   - Warm CMDN refresh. At a segment close the previous segment's
//     selected model is fine-tuned on the new samples (cmdn.Refresh) at
//     ~1/84 of a full grid specialize, guarded by a drift pre-check
//     (cmdn.(*Proxy).DriftNLL) that falls back to a full train when the
//     score distribution moved. Calibration draws on a deterministic
//     reservoir of held-out samples spanning past segments.
//
//   - Continuous top-K. Followers register a Phase 2 plan once and get
//     answer deltas (entered/left/reordered) as segments close. All
//     followers due at a close evaluate as one coalesced scheduler
//     group over the ingestor's private label cache, so concurrent
//     followers share confirmation batches and each oracle-confirmed
//     frame is paid for once.
package stream

import (
	"errors"
	"fmt"
	"sort"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/engine"
	"github.com/everest-project/everest/internal/labelstore"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/workpool"
	"github.com/everest-project/everest/internal/xrand"
)

// RefreshMode selects how a segment close obtains its CMDN.
type RefreshMode int

const (
	// RefreshAuto warm-starts from the previous segment's model when
	// the drift pre-check passes, and falls back to a full grid train
	// when it does not. The default.
	RefreshAuto RefreshMode = iota
	// RefreshFull runs a full grid specialize every segment — batch
	// Extend semantics at streaming granularity. A RefreshFull stream
	// is bit-identical (results and charges) to repeated Index.Extend
	// calls at the same segment boundaries.
	RefreshFull
	// RefreshWarm always warm-starts (after the first segment), with no
	// drift check. For measurement; Auto is the safe default.
	RefreshWarm
)

// Config parameterizes an Ingestor.
type Config struct {
	// SegmentFrames is the model-refresh granularity: every this many
	// ingested frames the open segment closes — its CMDN is trained (or
	// warm-refreshed), the difference detector runs, and the frames
	// join the artifact. Zero means 1800 (one minute at 30 fps).
	SegmentFrames int
	// Refresh selects warm-start behaviour at segment closes.
	Refresh RefreshMode
	// DriftNLL is the RefreshAuto tolerance: warm-start only while the
	// previous model's mean NLL on the new segment's holdout samples
	// stays within this margin of its selection-time holdout NLL. Zero
	// means 0.5; negative disables warm starts entirely (every auto
	// close counts as a drift fallback).
	DriftNLL float64
	// RefreshEpochs is the warm fine-tune epoch count; zero means the
	// cmdn.RefreshConfig default (5).
	RefreshEpochs int
	// ReservoirCap bounds the cross-segment calibration reservoir of
	// held-out samples; zero means 256.
	ReservoirCap int
	// Ingest is the Phase 1 configuration. Ingest.Seed is the base
	// seed: the segment opening at global frame lo derives its stream
	// as Seed^lo, exactly like Index.Extend, so a RefreshFull stream
	// and a sequence of batch Extends at the same boundaries draw
	// identical samples.
	Ingest phase1.Options
}

func (c Config) withDefaults() Config {
	if c.SegmentFrames == 0 {
		c.SegmentFrames = 1800
	}
	if c.ReservoirCap == 0 {
		c.ReservoirCap = 256
	}
	if c.Ingest.Cost == (simclock.CostModel{}) {
		c.Ingest.Cost = simclock.Default()
	}
	return c
}

// Stats counts what the ingestor has done.
type Stats struct {
	// Chunks and Segments count Append calls and closed segments.
	Chunks, Segments int
	// WarmRefreshes, FullTrains and DriftFallbacks break down segment
	// closes: warm starts taken, full grid trains run, and how many of
	// the full trains were RefreshAuto closes rejected by the drift
	// pre-check.
	WarmRefreshes, FullTrains, DriftFallbacks int
	// EagerLabels counts frames labelled chunk-granularly before their
	// segment closed; WastedLabels the subset a sealed-short segment's
	// re-plan did not reuse.
	EagerLabels, WastedLabels int
	// ForcedCloses counts segments closed early by a follower's
	// staleness bound rather than at their planned span.
	ForcedCloses int
	// Evaluations counts follower evaluation groups submitted.
	Evaluations int
}

// Ingestor ingests a live feed incrementally. Not safe for concurrent
// use; one goroutine owns it.
type Ingestor struct {
	src video.Source
	udf vision.UDF
	cfg Config

	art   *engine.Artifact
	clock *simclock.Clock
	pool  *workpool.Pool
	cache *labelstore.SharedCache
	sched *engine.Scheduler

	frontier int // frames arrived (visible to the open segment)
	ingested int // frames covered by the artifact
	chunkSeq int
	sealed   bool

	// Open-segment state: the labelling plan over the planned span and
	// the eagerly obtained oracle scores, all in segment-local frames.
	segLo   int
	segSpan int
	segSrc  video.Source
	segPlan phase1.SamplePlan
	eager   map[int]float64
	wanted  []int // plan frames ascending; wantPos is the labelling cursor
	wantPos int

	prevProxy *cmdn.Proxy
	reservoir []cmdn.Sample
	resSeen   int
	segIdx    int

	followers []*Follower
	stats     Stats
}

// NewIngestor starts ingesting src from frame zero. The source is the
// underlying camera recording; frames become visible to the ingestor
// only as Append delivers them.
func NewIngestor(src video.Source, udf vision.UDF, cfg Config) (*Ingestor, error) {
	return newIngestor(nil, src, udf, cfg)
}

// NewIngestorFrom resumes ingestion on top of an existing artifact
// (typically a loaded index's): streaming continues at art.TotalFrames.
// The artifact is mutated in place as segments close.
func NewIngestorFrom(art *engine.Artifact, src video.Source, udf vision.UDF, cfg Config) (*Ingestor, error) {
	if art == nil {
		return nil, errors.New("stream: nil artifact")
	}
	if src == nil || udf == nil {
		return nil, errors.New("stream: nil source or UDF")
	}
	if art.Dataset != src.Name() || art.UDFName != udf.Name() {
		return nil, fmt.Errorf("stream: artifact is for (%s, %s), not (%s, %s)",
			art.Dataset, art.UDFName, src.Name(), udf.Name())
	}
	if art.TotalFrames > src.NumFrames() {
		return nil, fmt.Errorf("stream: artifact covers %d frames but the feed has %d",
			art.TotalFrames, src.NumFrames())
	}
	return newIngestor(art, src, udf, cfg)
}

func newIngestor(art *engine.Artifact, src video.Source, udf vision.UDF, cfg Config) (*Ingestor, error) {
	if src == nil || udf == nil {
		return nil, errors.New("stream: nil source or UDF")
	}
	cfg = cfg.withDefaults()
	if cfg.SegmentFrames < 0 {
		return nil, fmt.Errorf("stream: negative segment size %d", cfg.SegmentFrames)
	}
	g := &Ingestor{
		src:   src,
		udf:   udf,
		cfg:   cfg,
		art:   art,
		clock: simclock.NewClock(),
		cache: labelstore.NewSharedCache(),
	}
	g.sched = engine.NewCacheScheduler(g.cache)
	if workpool.Procs(cfg.Ingest.Procs) > 1 {
		g.pool = workpool.NewPool(cfg.Ingest.Procs)
	}
	if art != nil {
		g.frontier = art.TotalFrames
		g.ingested = art.TotalFrames
	}
	if err := g.openSegment(); err != nil {
		g.Close()
		return nil, err
	}
	return g, nil
}

// Frontier returns how many frames have arrived.
func (g *Ingestor) Frontier() int { return g.frontier }

// Ingested returns how many frames the artifact covers.
func (g *Ingestor) Ingested() int { return g.ingested }

// Artifact exposes the growing artifact. It only ever changes at
// segment closes; between closes it is safe to query.
func (g *Ingestor) Artifact() *engine.Artifact { return g.art }

// IngestMS returns the simulated Phase 1 cost accumulated so far.
func (g *Ingestor) IngestMS() float64 { return g.clock.TotalMS() }

// PhaseMS returns the simulated cost charged to one ingest phase —
// PhaseTrainCMDN isolates the warm-refresh saving from the labelling
// cost, which no refresh policy can reduce.
func (g *Ingestor) PhaseMS(ph simclock.Phase) float64 { return g.clock.PhaseMS(ph) }

// Stats returns the ingestion counters.
func (g *Ingestor) Stats() Stats { return g.stats }

// Close releases the resident worker pool. The artifact stays valid.
func (g *Ingestor) Close() {
	if g.pool != nil {
		g.pool.Close()
		g.pool = nil
	}
}

// optFor is the segment's Phase 1 configuration: the base options with
// the per-segment seed derivation Index.Extend uses (Seed^lo), running
// on the resident pool.
func (g *Ingestor) optFor(lo int) phase1.Options {
	opt := g.cfg.Ingest
	opt.Seed = opt.Seed ^ uint64(lo)
	opt.Pool = g.pool
	return opt
}

// segView returns the ingest view [g.segLo, g.segLo+span): the prefix
// of the feed for the very first footage (so the artifact carries the
// camera's name), a slice otherwise.
func (g *Ingestor) segView(span int) (video.Source, error) {
	if g.segLo == 0 {
		return video.Prefix(g.src, span)
	}
	return video.Slice(g.src, g.segLo, g.segLo+span)
}

// openSegment fixes the next segment's labelling plan. The planned span
// is always SegmentFrames; a segment that seals or force-closes short
// re-plans for its actual length.
func (g *Ingestor) openSegment() error {
	g.segLo = g.ingested
	g.segSpan = g.cfg.SegmentFrames
	avail := g.src.NumFrames() - g.segLo
	if avail <= 0 {
		// The feed has no room for another segment; Seal handles the end.
		g.segSrc = nil
		g.segPlan = phase1.SamplePlan{}
		g.eager = nil
		g.wanted = nil
		g.wantPos = 0
		return nil
	}
	viewSpan := g.segSpan
	if viewSpan > avail {
		viewSpan = avail
	}
	view, err := g.segView(viewSpan)
	if err != nil {
		return err
	}
	plan, err := phase1.PlanSamples(g.segSpan, g.optFor(g.segLo))
	if err != nil {
		return fmt.Errorf("stream: planning segment at frame %d: %w", g.segLo, err)
	}
	g.segSrc = view
	g.segPlan = plan
	g.eager = make(map[int]float64, len(plan.TrainIdx)+len(plan.HoldIdx))
	g.wanted = g.wanted[:0]
	g.wanted = append(g.wanted, plan.TrainIdx...)
	g.wanted = append(g.wanted, plan.HoldIdx...)
	sort.Ints(g.wanted)
	g.wantPos = 0
	return nil
}

// labelAvailable labels every planned frame that has arrived but is not
// yet labelled — the chunk-granular half of Phase 1. One oracle batch
// per call, so the charge lands on this chunk.
func (g *Ingestor) labelAvailable() {
	if g.segSrc == nil {
		return
	}
	avail := g.frontier - g.segLo
	if max := g.segSrc.NumFrames(); avail > max {
		avail = max
	}
	var due []int
	for g.wantPos < len(g.wanted) && g.wanted[g.wantPos] < avail {
		due = append(due, g.wanted[g.wantPos])
		g.wantPos++
	}
	if len(due) == 0 {
		return
	}
	opt := g.optFor(g.segLo)
	scores := phase1.Label(g.segSrc, g.udf, due, opt, g.clock)
	for k, f := range due {
		g.eager[f] = scores[k]
	}
	g.stats.EagerLabels += len(due)
}

// Append delivers the next chunk of the feed: frames
// [frontier, frontier+frames) become visible. Planned samples among
// them are labelled immediately; every time the open segment reaches
// its planned span it closes — model refresh, difference detection,
// artifact append — and due followers are evaluated.
func (g *Ingestor) Append(frames int) error {
	if g.sealed {
		return errors.New("stream: ingestor is sealed")
	}
	if frames <= 0 {
		return fmt.Errorf("stream: chunk of %d frames", frames)
	}
	if g.frontier+frames > g.src.NumFrames() {
		return fmt.Errorf("stream: chunk to frame %d exceeds the %d-frame feed",
			g.frontier+frames, g.src.NumFrames())
	}
	g.frontier += frames
	g.chunkSeq++
	g.stats.Chunks++
	g.labelAvailable()
	for g.frontier-g.segLo >= g.segSpan && g.segSrc != nil {
		if err := g.closeSegment(g.segSpan); err != nil {
			return err
		}
	}
	// Bounded staleness: a follower too many chunks behind the frontier
	// forces the open segment closed early so its next answer reflects
	// the footage that already arrived.
	if g.staleFollower() && g.frontier > g.ingested {
		g.stats.ForcedCloses++
		if err := g.closeSegment(g.frontier - g.segLo); err != nil {
			return err
		}
	}
	return nil
}

func (g *Ingestor) staleFollower() bool {
	for _, f := range g.followers {
		if f.maxLag > 0 && g.chunkSeq-f.lastEvalChunk >= f.maxLag {
			return true
		}
	}
	return false
}

// Seal ends the stream: the final partial segment (if any) is ingested
// and every follower is brought to the converged answer. The ingestor
// accepts no more chunks.
func (g *Ingestor) Seal() error {
	if g.sealed {
		return errors.New("stream: ingestor already sealed")
	}
	if g.frontier > g.ingested {
		if err := g.closeSegment(g.frontier - g.segLo); err != nil {
			return err
		}
	}
	g.sealed = true
	return g.evaluateFollowers(true)
}

// closeSegment ingests the open segment at length spanL (the planned
// span, or shorter when sealing or force-closing), appends its artifact
// and evaluates followers.
func (g *Ingestor) closeSegment(spanL int) error {
	opt := g.optFor(g.segLo)
	view := g.segSrc
	plan := g.segPlan
	if spanL != g.segSpan {
		// Closed short of the planned span: the labelling plan is a
		// function of the segment length, so re-plan for the actual
		// length and reuse every overlapping eager label (the oracle is
		// deterministic per frame — only the charge for the shortfall is
		// new; eager labels outside the new plan are sunk cost).
		var err error
		if view, err = g.segView(spanL); err != nil {
			return err
		}
		if plan, err = phase1.PlanSamples(spanL, opt); err != nil {
			return fmt.Errorf("stream: segment at frame %d closed at %d frames: %w", g.segLo, spanL, err)
		}
		reused := make(map[int]bool, len(g.eager))
		label := func(ids []int) []float64 {
			scores := make([]float64, len(ids))
			var miss []int
			for _, f := range ids {
				if _, ok := g.eager[f]; !ok {
					miss = append(miss, f)
				}
			}
			for k, s := range phase1.Label(view, g.udf, miss, opt, g.clock) {
				g.eager[miss[k]] = s
			}
			for k, f := range ids {
				scores[k] = g.eager[f]
				reused[f] = true
			}
			return scores
		}
		trainScores := label(plan.TrainIdx)
		holdScores := label(plan.HoldIdx)
		for f := range g.eager {
			if !reused[f] {
				g.stats.WastedLabels++
			}
		}
		return g.finishSegment(view, opt, plan, trainScores, holdScores, spanL)
	}
	// Full segment: every planned frame has arrived and is labelled.
	trainScores := make([]float64, len(plan.TrainIdx))
	for k, f := range plan.TrainIdx {
		trainScores[k] = g.eager[f]
	}
	holdScores := make([]float64, len(plan.HoldIdx))
	for k, f := range plan.HoldIdx {
		holdScores[k] = g.eager[f]
	}
	return g.finishSegment(view, opt, plan, trainScores, holdScores, spanL)
}

// finishSegment trains or refreshes the segment's CMDN, captures the
// segment artifact, merges it, and rolls the stream state forward.
func (g *Ingestor) finishSegment(view video.Source, opt phase1.Options, plan phase1.SamplePlan, trainScores, holdScores []float64, spanL int) error {
	st, hold, err := g.segmentState(view, opt, plan, trainScores, holdScores)
	if err != nil {
		return err
	}
	art := engine.Capture(st, g.udf, opt.Cost, g.clock)
	if g.art == nil {
		g.art = art
	} else if err := g.art.Append(art, g.segLo); err != nil {
		return err
	}
	g.ingested = g.segLo + spanL
	g.prevProxy = st.Proxy
	g.updateReservoir(hold)
	g.segIdx++
	g.stats.Segments++
	if err := g.openSegment(); err != nil {
		return err
	}
	return g.evaluateFollowers(false)
}

// segmentState produces the segment's phase1.State: a warm refresh of
// the previous segment's model when allowed, a full grid train
// otherwise. Returns the holdout samples when they were materialized
// (warm paths) so the reservoir can reuse them.
func (g *Ingestor) segmentState(view video.Source, opt phase1.Options, plan phase1.SamplePlan, trainScores, holdScores []float64) (*phase1.State, []cmdn.Sample, error) {
	warm := g.prevProxy != nil && g.cfg.Refresh != RefreshFull
	var hold []cmdn.Sample
	if warm {
		hold = phase1.Samples(view, opt.Proxy.Arch, plan.HoldIdx, holdScores, opt.Procs, g.pool)
		if g.cfg.Refresh == RefreshAuto {
			tol := g.cfg.DriftNLL
			if tol == 0 {
				tol = 0.5
			}
			if tol < 0 || g.prevProxy.DriftNLL(hold) > g.prevProxy.HoldoutNLL()+tol {
				warm = false
				g.stats.DriftFallbacks++
			}
		}
	}
	if !warm {
		g.stats.FullTrains++
		st, err := phase1.RunLabelled(view, opt, plan, trainScores, holdScores, g.clock)
		return st, hold, err
	}

	train := phase1.Samples(view, opt.Proxy.Arch, plan.TrainIdx, trainScores, opt.Procs, g.pool)
	calib := make([]cmdn.Sample, 0, len(g.reservoir)+len(hold))
	calib = append(calib, g.reservoir...)
	calib = append(calib, hold...)
	proxy, err := cmdn.Refresh(g.prevProxy, train, hold, calib,
		cmdn.RefreshConfig{Epochs: g.cfg.RefreshEpochs, Seed: opt.Seed, Procs: opt.Procs},
		opt.Proxy, g.clock, opt.Cost)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: warm refresh at frame %d: %w", g.segLo, err)
	}
	g.stats.WarmRefreshes++
	st, err := phase1.AssembleState(view, proxy, opt, plan, trainScores, holdScores, g.clock)
	return st, hold, err
}

// updateReservoir folds a closed segment's holdout samples into the
// calibration reservoir with classic reservoir sampling, randomized by
// a stream derived from the base seed and the segment index — the
// reservoir contents are a pure function of the segment sequence.
func (g *Ingestor) updateReservoir(hold []cmdn.Sample) {
	r := xrand.New(g.cfg.Ingest.Seed).Split("stream/reservoir").SplitIndex(uint64(g.segIdx))
	for _, s := range hold {
		g.resSeen++
		if len(g.reservoir) < g.cfg.ReservoirCap {
			g.reservoir = append(g.reservoir, s)
			continue
		}
		if j := r.Intn(g.resSeen); j < g.cfg.ReservoirCap {
			g.reservoir[j] = s
		}
	}
}

