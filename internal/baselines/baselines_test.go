package baselines

import (
	"testing"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/metrics"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func testSource(t *testing.T, frames int) *video.Synthetic {
	t.Helper()
	s, err := video.NewSynthetic(video.Config{
		Name: "bl", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: 4, MeanPopulation: 3, BurstRate: 3,
		DailyCycle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func trueRanked(src *video.Synthetic) []metrics.Ranked {
	out := make([]metrics.Ranked, src.NumFrames())
	for i := range out {
		out[i] = metrics.Ranked{ID: i, Score: float64(src.TrueCountFast(i))}
	}
	return out
}

func smallP1() phase1.Options {
	return phase1.Options{
		SampleFrac: 0.05,
		Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 30}}, Epochs: 25},
		Cost:       simclock.Default(),
		Seed:       9,
	}
}

func TestScanAndTestIsExact(t *testing.T) {
	src := testSource(t, 4000)
	udf := vision.CountUDF{Class: video.ClassCar}
	cost := simclock.Default()
	out := ScanAndTest(src, udf, 10, cost)
	truth := metrics.TrueTopK(trueRanked(src), 10)
	scores := make(map[int]float64, len(out.IDs))
	for i, id := range out.IDs {
		scores[id] = out.Scores[i]
	}
	if p := metrics.Precision(out.IDs, truth, scores); p != 1 {
		t.Fatalf("scan-and-test precision %v, want 1", p)
	}
	if d := metrics.RankDistance(out.IDs, truth); d != 0 {
		t.Fatalf("scan-and-test rank distance %v, want 0", d)
	}
	wantMS := 4000 * (cost.OracleMS + cost.DecodeMS)
	if out.MS != wantMS {
		t.Fatalf("scan cost %v, want %v", out.MS, wantMS)
	}
}

func TestDetectorScansAreFastButInaccurate(t *testing.T) {
	src := testSource(t, 4000)
	cost := simclock.Default()
	truth := metrics.TrueTopK(trueRanked(src), 10)
	scan := ScanAndTest(src, vision.CountUDF{Class: video.ClassCar}, 10, cost)

	tiny := DetectorScan(src, vision.NewTinyDetector(), video.ClassCar, 10, cost)
	if tiny.MS >= scan.MS {
		t.Fatalf("tiny scan cost %v not below oracle scan %v", tiny.MS, scan.MS)
	}
	trueScore := func(ids []int) map[int]float64 {
		m := make(map[int]float64, len(ids))
		for _, id := range ids {
			m[id] = float64(src.TrueCountFast(id))
		}
		return m
	}
	// At the paper's scale (millions of frames, K=50) the tiny detector's
	// precision collapses to ~0; at this test's 4000 frames the ranking
	// problem is far easier, so we only require it to fall short of the
	// exact result.
	tinyPrec := metrics.Precision(tiny.IDs, truth, trueScore(tiny.IDs))
	if tinyPrec >= 1 {
		t.Fatalf("tiny precision %v — noisy baseline should not be exact", tinyPrec)
	}

	hog := DetectorScan(src, vision.NewHOGDetector(), video.ClassCar, 10, cost)
	if hog.MS <= scan.MS*0.9 {
		t.Fatalf("HOG cost %v should be oracle-scale (%v)", hog.MS, scan.MS)
	}
}

func TestCMDNOnlyFastButWeak(t *testing.T) {
	src := testSource(t, 6000)
	udf := vision.CountUDF{Class: video.ClassCar}
	cost := simclock.Default()
	out, err := CMDNOnly(src, udf, 10, smallP1())
	if err != nil {
		t.Fatal(err)
	}
	scan := ScanAndTest(src, udf, 10, cost)
	if out.MS >= scan.MS/2 {
		t.Fatalf("cmdn-only cost %v not clearly below scan %v", out.MS, scan.MS)
	}
	if len(out.IDs) != 10 {
		t.Fatalf("result size %d", len(out.IDs))
	}
	// Believed scores are proxy means, not exact: at least some should
	// disagree with the truth (this is the point of the baseline).
	exactCount := 0
	for i, id := range out.IDs {
		if out.Scores[i] == float64(src.TrueCountFast(id)) {
			exactCount++
		}
	}
	if exactCount == 10 {
		t.Fatal("cmdn-only scores all exact — proxy leak?")
	}
}

func TestSelectAndTopkLambdaTradeoff(t *testing.T) {
	src := testSource(t, 6000)
	udf := vision.CountUDF{Class: video.ClassCar}
	outs, err := SelectAndTopk(src, udf, 10, smallP1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 7 {
		t.Fatalf("%d λ outcomes, want 7", len(outs))
	}
	// The paper's point: λ is hard to get right. Candidate counts need not
	// even be monotone in λ (the FNR threshold is a noisy percentile), but
	// each non-failed outcome must verify at least K candidates.
	for _, o := range outs {
		if !o.Failed && o.Candidates < 10 {
			t.Fatalf("λ=%.1f: %d candidates but not marked failed", o.Lambda, o.Candidates)
		}
	}
	// Non-failed outcomes are oracle-verified: their scores are exact.
	truth := metrics.TrueTopK(trueRanked(src), 10)
	for _, o := range outs {
		if o.Failed {
			continue
		}
		for i, id := range o.IDs {
			if o.Scores[i] != float64(src.TrueCountFast(id)) {
				t.Fatalf("λ=%.1f: unverified score for frame %d", o.Lambda, id)
			}
		}
		// Low λ should reach high precision (it verifies almost everything).
		if o.Lambda <= 0.4 {
			scores := make(map[int]float64)
			for i, id := range o.IDs {
				scores[id] = o.Scores[i]
			}
			if p := metrics.Precision(o.IDs, truth, scores); p < 0.7 {
				t.Fatalf("λ=%.1f precision %v too low for near-full verification", o.Lambda, p)
			}
		}
	}
}

func TestSelectAndTopkCostIsOracleBound(t *testing.T) {
	src := testSource(t, 6000)
	udf := vision.CountUDF{Class: video.ClassCar}
	cost := simclock.Default()
	outs, err := SelectAndTopk(src, udf, 10, smallP1(), []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	o := outs[0]
	want := float64(o.Candidates) * cost.OracleMS
	if o.MS != want {
		t.Fatalf("cost %v, want %v (oracle time only)", o.MS, want)
	}
}
