// Package baselines implements the comparison systems of the paper's
// evaluation (§4): the naive scan-and-test oracle pass, the HOG and
// TinyYOLOv3 cheap-detector scans, the CMDN-only ranker (Phase 1 alone),
// and the Select-and-Topk rewrite over a NoScope-style specialized range
// classifier.
//
// Every baseline reports the Top-K it believes in plus its simulated cost,
// so the harness can compute the paper's speedup/precision/rank-distance/
// score-error panels.
package baselines

import (
	"fmt"
	"sort"

	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

// Outcome is one baseline's answer.
type Outcome struct {
	// Name identifies the baseline.
	Name string
	// IDs is the claimed Top-K, descending by the baseline's scores.
	IDs []int
	// Scores are the baseline's believed scores for IDs (exact for
	// oracle-verified baselines, approximate otherwise).
	Scores []float64
	// MS is the simulated cost.
	MS float64
}

// topKBy selects the K largest by score with ascending-ID tie-breaks.
func topKBy(ids []int, score func(int) float64, k int) ([]int, []float64) {
	sorted := append([]int(nil), ids...)
	sort.Slice(sorted, func(a, b int) bool {
		sa, sb := score(sorted[a]), score(sorted[b])
		if sa != sb {
			return sa > sb
		}
		return sorted[a] < sorted[b]
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	outIDs := make([]int, k)
	outScores := make([]float64, k)
	for i := 0; i < k; i++ {
		outIDs[i] = sorted[i]
		outScores[i] = score(sorted[i])
	}
	return outIDs, outScores
}

func allFrames(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// ScanAndTest runs the oracle UDF on every frame — the exact but slow
// reference all speedups are measured against.
func ScanAndTest(src video.Source, udf vision.UDF, k int, cost simclock.CostModel) Outcome {
	n := src.NumFrames()
	scores := udf.Score(src, allFrames(n))
	ids, top := topKBy(allFrames(n), func(i int) float64 { return scores[i] }, k)
	return Outcome{
		Name:   "scan-and-test",
		IDs:    ids,
		Scores: top,
		MS:     float64(n) * (udf.OracleCostMS(cost) + cost.DecodeMS),
	}
}

// DetectorScan ranks every frame by a cheap detector's object count (the
// HOG and TinyYOLOv3-only baselines).
func DetectorScan(src video.Source, det vision.Detector, class string, k int, cost simclock.CostModel) Outcome {
	n := src.NumFrames()
	scorer := vision.ApproxCountScorer{Det: det, Class: class}
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = scorer.Score(src, i)
	}
	ids, top := topKBy(allFrames(n), func(i int) float64 { return scores[i] }, k)
	return Outcome{
		Name:   det.Name() + "-only",
		IDs:    ids,
		Scores: top,
		MS:     float64(n) * (det.FrameCostMS(cost) + cost.DecodeMS),
	}
}

// CMDNOnly runs Everest's Phase 1 and ranks frames by the mean of their
// CMDN score distribution, with no oracle verification (§4.1).
func CMDNOnly(src video.Source, udf vision.UDF, k int, opt phase1.Options) (Outcome, error) {
	clock := simclock.NewClock()
	st, err := phase1.Run(src, udf, opt, clock)
	if err != nil {
		return Outcome{}, err
	}
	means := make(map[int]float64, len(st.Diff.Retained))
	for _, i := range st.Diff.Retained {
		if s, ok := st.Labeled[i]; ok {
			means[i] = s
		}
	}
	// Proxy inference over the retained set runs on all configured workers.
	inferIDs, mixes := st.InferRetainedMixtures()
	for j, i := range inferIDs {
		means[i] = mixes[j].Mean()
	}
	clock.Charge(simclock.PhasePopulateD0, float64(len(inferIDs))*opt.Cost.ProxyMS)
	ids, top := topKBy(st.Diff.Retained, func(i int) float64 { return means[i] }, k)
	return Outcome{Name: "cmdn-only", IDs: ids, Scores: top, MS: clock.TotalMS()}, nil
}

// SelectTopkOutcome is one λ setting of the Select-and-Topk baseline.
type SelectTopkOutcome struct {
	Outcome
	// Lambda is the range-selection fraction of the max training score.
	Lambda float64
	// Candidates is the size of the selection result verified by the
	// oracle.
	Candidates int
	// Failed marks λ settings that yielded fewer than K candidates.
	Failed bool
}

// SelectAndTopk rewrites the Top-K query as the range selection
// "S_f ≥ λM" served by a NoScope-style specialized classifier, followed by
// oracle verification of every candidate and a Top-K over the verified
// scores (§4, Baselines). M is the maximum score seen in training.
//
// Mirroring the paper's generosity to this baseline, the returned cost
// counts only oracle time on candidates (training and the cheap scan are
// free), and one outcome per λ is returned so the harness can pick the
// best λ per dataset, as the paper's authors did by hand.
func SelectAndTopk(src video.Source, udf vision.UDF, k int, opt phase1.Options, lambdas []float64) ([]SelectTopkOutcome, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	clock := simclock.NewClock()
	st, err := phase1.Run(src, udf, opt, clock)
	if err != nil {
		return nil, err
	}
	cost := opt.Cost
	if cost == (simclock.CostModel{}) {
		cost = simclock.Default()
	}

	// NoScope's specialized model is a *shallow binary CNN* trained per
	// range predicate — not Everest's CMDN. Its capability class is that
	// of a small detector-grade network, which this repository already
	// models as the TinyYOLOv3 simulation: per-object misses, false
	// positives, count noise. As the paper observes, such models "perform
	// well on point queries but not on range queries" — the count noise
	// that is harmless for "is there a car?" blurs the boundary of
	// "are there ≥ λM cars?".
	scorer := vision.ApproxCountScorer{Det: vision.NewTinyDetector(), Class: src.TargetClass()}
	means := make(map[int]float64, len(st.Diff.Retained)+len(st.Labeled))
	for _, i := range st.Diff.Retained {
		means[i] = scorer.Score(src, i)
	}
	for f := range st.Labeled {
		if _, ok := means[f]; !ok {
			means[f] = scorer.Score(src, f)
		}
	}

	// M = max score in the training data.
	maxScore := 0.0
	for _, s := range st.Labeled {
		if s > maxScore {
			maxScore = s
		}
	}

	// Per NoScope's tolerances (FNR target 0.1, FPR 0 — every candidate
	// is oracle-verified), the decision threshold for "S ≥ λM" is set on
	// the labelled data: the largest classifier threshold that keeps the
	// false-negative rate at or below 10% among labelled positives.
	out := make([]SelectTopkOutcome, 0, len(lambdas))
	for _, lambda := range lambdas {
		target := lambda * maxScore
		var posMeans []float64
		for f, s := range st.Labeled {
			if s >= target {
				posMeans = append(posMeans, means[f])
			}
		}
		tau := 0.0 // no positives observed: accept everything
		if len(posMeans) > 0 {
			sort.Float64s(posMeans)
			tau = posMeans[len(posMeans)/10] // 10th percentile → FNR ≤ 0.1
		}

		var candidates []int
		for _, i := range st.Diff.Retained {
			if means[i] >= tau {
				candidates = append(candidates, i)
			}
		}
		o := SelectTopkOutcome{
			Lambda:     lambda,
			Candidates: len(candidates),
		}
		o.Name = fmt.Sprintf("select-and-topk(λ=%.1f)", lambda)
		o.MS = float64(len(candidates)) * udf.OracleCostMS(cost)
		if len(candidates) < k {
			o.Failed = true
			out = append(out, o)
			continue
		}
		exact := udf.Score(src, candidates)
		exactOf := make(map[int]float64, len(candidates))
		for j, f := range candidates {
			exactOf[f] = exact[j]
		}
		o.IDs, o.Scores = topKBy(candidates, func(i int) float64 { return exactOf[i] }, k)
		out = append(out, o)
	}
	return out, nil
}
