// Package scaleout is the partitioned, parallel execution layer the paper
// names as future work (§3.5: "One future work is to follow RAM3S to
// implement our techniques as a software framework so that we can
// leverage the various big data platforms to scale-out").
//
// A query over a video of n frames with P workers proceeds as follows:
//
//   - The video is split into P contiguous shards. Each worker runs the
//     full Phase 1 pipeline — sample, label, train its own specialized
//     CMDN, difference-detect, infer — over its shard, on its own
//     simulated accelerator. Per-shard specialization mirrors the paper's
//     per-video specialization: a shard's model only ever scores frames
//     from the distribution it was trained on.
//   - The per-shard uncertain relations are merged into one global D0
//     (frame IDs are global), and a single Phase 2 engine runs over it.
//     Confirmation batches are spread across the P accelerators, so a
//     batch of b frames costs ⌈b/P⌉ oracle inferences of wall-clock time
//     plus one launch overhead.
//
// Simulated time uses a bulk-synchronous (BSP) model: the Phase 1 stage's
// wall-clock cost per phase is the maximum over workers
// (simclock.Clock.ChargeParallelMax), while the total paid accelerator
// time is the sum. Scale-out therefore reduces latency but never the
// bill — in fact the bill grows, because each shard pays the fixed
// sampling floor and trains its own proxy. The scalability experiment
// reports both.
package scaleout

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/everest-project/everest/internal/core"
	"github.com/everest-project/everest/internal/diffdet"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
	"github.com/everest-project/everest/internal/windows"
	"github.com/everest-project/everest/internal/workpool"
	"github.com/everest-project/everest/internal/xrand"
)

// Options configures a scale-out query.
type Options struct {
	// Workers is P, the number of parallel Phase 1 shards and Phase 2
	// accelerators. Must be ≥ 1.
	Workers int
	// K is the result size.
	K int
	// Threshold is the probabilistic guarantee; zero means 0.9.
	Threshold float64
	// BatchSize is the Phase 2 cleaning batch; zero means 8.
	BatchSize int
	// MaxCleaned caps Phase 2 oracle work (0 = none).
	MaxCleaned int
	// Window, when positive, runs a Top-K window query of this size.
	Window int
	// Stride is the window start offset; zero means Window (tumbling).
	Stride int
	// WindowSampleFrac is the per-window confirmation sample; zero means
	// 0.1.
	WindowSampleFrac float64
	// UnionBound forces the dependence-safe bound (overlapping windows
	// use it regardless).
	UnionBound bool
	// Phase1 configures the per-shard Phase 1 pipeline. Its Seed field is
	// ignored; per-shard seeds are derived from Seed below.
	Phase1 phase1.Options
	// Seed drives all randomness.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.9
	}
	if o.WindowSampleFrac == 0 {
		o.WindowSampleFrac = 0.1
	}
	if o.Phase1.Cost == (simclock.CostModel{}) {
		o.Phase1.Cost = simclock.Default()
	}
	return o
}

func (o Options) windowStride() int {
	if o.Stride <= 0 {
		return o.Window
	}
	return o.Stride
}

func (o Options) boundKind() core.BoundKind {
	if o.UnionBound || (o.Window > 0 && o.windowStride() < o.Window) {
		return core.BoundUnion
	}
	return core.BoundIndependent
}

// ShardInfo reports one worker's Phase 1 outcome.
type ShardInfo struct {
	// Lo, Hi are the shard's frame range in global coordinates.
	Lo, Hi int
	// Info is the shard's Phase 1 summary.
	Info phase1.Info
	// WallMS is the shard worker's own simulated time.
	WallMS float64
}

// Report is the outcome of a scale-out query.
type Report struct {
	// Core is the guaranteed Top-K (IDs are global frame indices, or
	// window indices for window queries).
	Core core.Result
	// Scores are the confirmed scores of Core.IDs in score units.
	Scores []float64
	// Clock is the BSP wall-clock: per-phase maxima over Phase 1 workers
	// plus the (parallelized) Phase 2 charges.
	Clock *simclock.Clock
	// WorkerSumMS is the total paid accelerator time of Phase 1 across
	// all workers (the bill, as opposed to the latency).
	WorkerSumMS float64
	// Shards are the per-worker Phase 1 summaries.
	Shards []ShardInfo
	// Tuples is the merged relation size.
	Tuples int
}

// shardOut is what one worker hands back to the merger.
type shardOut struct {
	state  *phase1.State
	clock  *simclock.Clock
	rel    uncertain.Relation         // frame queries: shard relation with global IDs
	scores map[int]windows.FrameScore // window queries: global rep → Phase 1 knowledge
	err    error
}

// Run executes a Top-K query over src with P-way scale-out.
func Run(src video.Source, udf vision.UDF, opt Options) (*Report, error) {
	if src == nil || udf == nil {
		return nil, errors.New("scaleout: nil source or UDF")
	}
	opt = opt.withDefaults()
	if opt.Workers < 1 {
		return nil, fmt.Errorf("scaleout: workers must be ≥ 1, got %d", opt.Workers)
	}
	if opt.K <= 0 {
		return nil, fmt.Errorf("scaleout: K must be positive, got %d", opt.K)
	}
	n := src.NumFrames()
	if n < opt.Workers*10 {
		return nil, fmt.Errorf("scaleout: %d frames are too few for %d workers", n, opt.Workers)
	}
	if opt.Window == 0 && opt.Stride > 0 {
		return nil, fmt.Errorf("scaleout: stride %d given without a window", opt.Stride)
	}

	qopt := udf.Quantize()
	p := opt.Workers
	outs := make([]shardOut, p)
	bounds := make([][2]int, p)
	for i := 0; i < p; i++ {
		bounds[i] = [2]int{i * n / p, (i + 1) * n / p}
	}
	seeds := xrand.New(opt.Seed).Split("scaleout/shards")

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = runShard(src, udf, opt, qopt, bounds[i], seeds.SplitIndex(uint64(i)).Uint64())
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("scaleout: shard %d: %w", i, outs[i].err)
		}
	}

	clock := simclock.NewClock()
	workerClocks := make([]*simclock.Clock, p)
	shards := make([]ShardInfo, p)
	for i, o := range outs {
		workerClocks[i] = o.clock
		shards[i] = ShardInfo{
			Lo:     bounds[i][0],
			Hi:     bounds[i][1],
			Info:   o.state.Info,
			WallMS: o.clock.TotalMS(),
		}
	}
	sumMS := clock.ChargeParallelMax(workerClocks)

	rel, oracle, err := assembleGlobal(src, udf, opt, qopt, outs, bounds, clock)
	if err != nil {
		return nil, err
	}
	if opt.K > len(rel) {
		return nil, fmt.Errorf("scaleout: K=%d exceeds merged relation size %d", opt.K, len(rel))
	}

	engineCost := opt.Phase1.Cost
	engineCost.OracleMS = 0 // the oracle charges its own (parallelized) cost
	eng, err := core.NewEngine(rel, core.Config{
		K:          opt.K,
		Threshold:  opt.Threshold,
		BatchSize:  opt.BatchSize,
		MaxCleaned: opt.MaxCleaned,
		Bound:      opt.boundKind(),
		// The merged Phase 2 runs on the coordinator, so it gets the full
		// engine-wide worker bound, not the per-shard split.
		Procs: opt.Phase1.Procs,
	}, oracle, clock, engineCost)
	if err != nil {
		return nil, err
	}
	coreRes, err := eng.Run()
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(coreRes.Levels))
	for i, lvl := range coreRes.Levels {
		scores[i] = uncertain.LevelValue(lvl, qopt.Step)
	}
	return &Report{
		Core:        coreRes,
		Scores:      scores,
		Clock:       clock,
		WorkerSumMS: sumMS,
		Shards:      shards,
		Tuples:      len(rel),
	}, nil
}

// runShard executes Phase 1 over one shard on its own clock and prepares
// its contribution to the global relation.
func runShard(src video.Source, udf vision.UDF, opt Options, qopt uncertain.QuantizeOptions, b [2]int, seed uint64) shardOut {
	lo, hi := b[0], b[1]
	slice, err := video.Slice(src, lo, hi)
	if err != nil {
		return shardOut{err: err}
	}
	clock := simclock.NewClock()
	p1opt := opt.Phase1
	p1opt.Seed = seed
	// All shards run concurrently, so each gets an equal slice of the CPU
	// budget instead of a full fan-out of its own (which would oversubscribe
	// the cores workers×procs). Procs never affects results, only speed.
	p1opt.Procs = max(1, workpool.Procs(p1opt.Procs)/opt.Workers)
	st, err := phase1.Run(slice, udf, p1opt, clock)
	if err != nil {
		return shardOut{err: err}
	}
	out := shardOut{state: st, clock: clock}
	if opt.Window > 0 {
		// Window queries need per-retained-frame Phase 1 knowledge in
		// global coordinates; aggregation happens after the merge because
		// windows may straddle shard boundaries. Proxy inference for the
		// unlabeled retained frames runs on all configured workers.
		scores := make(map[int]windows.FrameScore, len(st.Diff.Retained))
		for _, f := range st.Diff.Retained {
			if s, ok := st.Labeled[f]; ok {
				scores[lo+f] = windows.FrameScore{IsExact: true, Exact: s}
			}
		}
		inferIDs, mixes := st.InferRetainedMixtures()
		for k, f := range inferIDs {
			scores[lo+f] = windows.FrameScore{Mix: mixes[k]}
		}
		clock.Charge(simclock.PhasePopulateD0, float64(len(inferIDs))*p1opt.Cost.ProxyMS)
		out.scores = scores
		return out
	}
	rel := st.FrameRelation(qopt)
	for i := range rel {
		rel[i].ID += lo
	}
	out.rel = rel
	return out
}

// assembleGlobal merges the shard outputs into one relation and builds the
// (parallelized) Phase 2 oracle.
func assembleGlobal(src video.Source, udf vision.UDF, opt Options, qopt uncertain.QuantizeOptions,
	outs []shardOut, bounds [][2]int, clock *simclock.Clock) (uncertain.Relation, core.Oracle, error) {

	udfCost := udf.OracleCostMS(opt.Phase1.Cost)
	p := float64(opt.Workers)
	// scoreFrames reveals exact scores with the batch spread over the P
	// accelerators: wall-clock is ⌈frames/P⌉ serial inferences.
	scoreFrames := func(ids []int) ([]float64, error) {
		scores := udf.Score(src, ids)
		clock.Charge(simclock.PhaseConfirm, math.Ceil(float64(len(ids))/p)*udfCost)
		return scores, nil
	}

	if opt.Window > 0 {
		n := src.NumFrames()
		repOf := make([]int32, n)
		scores := make(map[int]windows.FrameScore)
		for i, o := range outs {
			lo := bounds[i][0]
			for j, rep := range o.state.Diff.RepOf {
				repOf[lo+j] = int32(lo) + rep
			}
			for g, fs := range o.scores {
				scores[g] = fs
			}
		}
		maxLevel := 0
		if qopt.MaxLevel > 0 && qopt.MaxLevel < int(^uint(0)>>1) {
			maxLevel = qopt.MaxLevel
		}
		rel, err := windows.BuildRelation(func(rep int) windows.FrameScore {
			return scores[rep]
		}, diffdet.Result{RepOf: repOf}, windows.Options{
			Size:     opt.Window,
			Stride:   opt.windowStride(),
			Step:     qopt.Step,
			MaxLevel: maxLevel,
		})
		if err != nil {
			return nil, nil, err
		}
		oracle := &windows.Oracle{
			ScoreFrames: scoreFrames,
			Size:        opt.Window,
			Stride:      opt.windowStride(),
			SampleFrac:  opt.WindowSampleFrac,
			Step:        qopt.Step,
			Seed:        opt.Seed,
		}
		return rel, oracle, nil
	}

	var rel uncertain.Relation
	for _, o := range outs {
		rel = append(rel, o.rel...)
	}
	oracle := core.OracleFunc(func(ids []int) ([]int, error) {
		scores, err := scoreFrames(ids)
		if err != nil {
			return nil, err
		}
		levels := make([]int, len(ids))
		for i, s := range scores {
			levels[i] = uncertain.LevelOf(s, qopt.Step)
		}
		return levels, nil
	})
	return rel, oracle, nil
}
