package scaleout

import (
	"strings"
	"testing"

	"github.com/everest-project/everest/internal/cmdn"
	"github.com/everest-project/everest/internal/phase1"
	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/video"
	"github.com/everest-project/everest/internal/vision"
)

func testSource(t *testing.T, frames int, seed uint64) *video.Synthetic {
	t.Helper()
	s, err := video.NewSynthetic(video.Config{
		Name: "scaleout", Kind: video.KindTraffic, Class: video.ClassCar,
		Frames: frames, FPS: 30, Seed: seed, MeanPopulation: 3, BurstRate: 3,
		DailyCycle: true, DistractorPopulation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallOptions(workers, k int) Options {
	return Options{
		Workers:   workers,
		K:         k,
		Threshold: 0.9,
		Seed:      7,
		Phase1: phase1.Options{
			SampleFrac: 0.05,
			MinSamples: 300,
			Proxy:      cmdn.Config{Grid: []cmdn.Hyper{{G: 5, H: 30}}, Epochs: 30},
		},
	}
}

func TestScaleoutValidation(t *testing.T) {
	src := testSource(t, 2000, 1)
	udf := vision.CountUDF{Class: video.ClassCar}
	cases := []Options{
		{Workers: 0, K: 5},
		{Workers: 2, K: 0},
		{Workers: 400, K: 5},           // 2000 frames / 400 workers = 5 < 10
		{Workers: 1, K: 5, Stride: 30}, // stride without window
	}
	for _, opt := range cases {
		if _, err := Run(src, udf, opt); err == nil {
			t.Fatalf("options %+v should be rejected", opt)
		}
	}
	if _, err := Run(nil, udf, smallOptions(1, 5)); err == nil {
		t.Fatal("nil source should be rejected")
	}
	if _, err := Run(src, nil, smallOptions(1, 5)); err == nil {
		t.Fatal("nil UDF should be rejected")
	}
}

func TestScaleoutFrameQueryMeetsGuarantee(t *testing.T) {
	src := testSource(t, 9000, 11)
	udf := vision.CountUDF{Class: video.ClassCar}
	rep, err := Run(src, udf, smallOptions(3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Core.IDs) != 10 {
		t.Fatalf("result size %d, want 10", len(rep.Core.IDs))
	}
	if rep.Core.Confidence < 0.9 {
		t.Fatalf("confidence %v < 0.9", rep.Core.Confidence)
	}
	// Every returned score must be the exact oracle score (certain-result
	// condition survives the merge).
	for i, id := range rep.Core.IDs {
		want := float64(src.TrueCountFast(id))
		if rep.Scores[i] != want {
			t.Fatalf("frame %d score %v, want oracle %v", id, rep.Scores[i], want)
		}
	}
	if len(rep.Shards) != 3 {
		t.Fatalf("%d shards, want 3", len(rep.Shards))
	}
	if rep.Shards[2].Hi != 9000 || rep.Shards[0].Lo != 0 {
		t.Fatalf("shard bounds wrong: %+v", rep.Shards)
	}
}

func TestScaleoutGlobalIDsCoverAllShards(t *testing.T) {
	// With K large enough, results should be free to come from any shard;
	// at minimum all IDs must be in-range and unique.
	src := testSource(t, 6000, 13)
	udf := vision.CountUDF{Class: video.ClassCar}
	rep, err := Run(src, udf, smallOptions(2, 25))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, id := range rep.Core.IDs {
		if id < 0 || id >= 6000 {
			t.Fatalf("frame ID %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate frame ID %d", id)
		}
		seen[id] = true
	}
	if rep.Tuples <= 0 || rep.Tuples > 6000 {
		t.Fatalf("merged relation size %d", rep.Tuples)
	}
}

func TestScaleoutDeterministic(t *testing.T) {
	src := testSource(t, 6000, 17)
	udf := vision.CountUDF{Class: video.ClassCar}
	a, err := Run(src, udf, smallOptions(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(src, udf, smallOptions(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Core.IDs) != len(b.Core.IDs) {
		t.Fatal("result sizes differ across identical runs")
	}
	for i := range a.Core.IDs {
		if a.Core.IDs[i] != b.Core.IDs[i] {
			t.Fatalf("IDs differ at %d: %d vs %d", i, a.Core.IDs[i], b.Core.IDs[i])
		}
	}
	if a.Clock.TotalMS() != b.Clock.TotalMS() {
		t.Fatalf("clocks differ: %v vs %v", a.Clock.TotalMS(), b.Clock.TotalMS())
	}
}

func TestScaleoutWallClockBelowSerialBill(t *testing.T) {
	// The BSP wall-clock with P workers must be strictly below the summed
	// worker bill when P > 1 (per-phase maxima < sums).
	src := testSource(t, 9000, 19)
	udf := vision.CountUDF{Class: video.ClassCar}
	rep, err := Run(src, udf, smallOptions(3, 10))
	if err != nil {
		t.Fatal(err)
	}
	wallP1 := 0.0
	for _, ph := range []simclock.Phase{
		simclock.PhaseLabelSamples, simclock.PhaseTrainCMDN,
		simclock.PhasePopulateD0, simclock.PhaseDiffDetect,
	} {
		wallP1 += rep.Clock.PhaseMS(ph)
	}
	if wallP1 >= rep.WorkerSumMS {
		t.Fatalf("BSP Phase 1 wall %v should be < summed bill %v", wallP1, rep.WorkerSumMS)
	}
}

func TestScaleoutWindowQuery(t *testing.T) {
	src := testSource(t, 6000, 23)
	udf := vision.CountUDF{Class: video.ClassCar}
	opt := smallOptions(2, 5)
	opt.Window = 60
	rep, err := Run(src, udf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Core.IDs) != 5 {
		t.Fatalf("result size %d, want 5", len(rep.Core.IDs))
	}
	nw := 6000 / 60
	for _, w := range rep.Core.IDs {
		if w < 0 || w >= nw {
			t.Fatalf("window ID %d out of [0, %d)", w, nw)
		}
	}
	if rep.Core.Confidence < 0.9 {
		t.Fatalf("confidence %v < 0.9", rep.Core.Confidence)
	}
}

func TestScaleoutSlidingWindowUsesUnionBound(t *testing.T) {
	src := testSource(t, 6000, 29)
	udf := vision.CountUDF{Class: video.ClassCar}
	opt := smallOptions(2, 5)
	opt.Window = 60
	opt.Stride = 30
	rep, err := Run(src, udf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Core.Bound.String(); got != "union" {
		t.Fatalf("overlapping windows must use the union bound, got %s", got)
	}
	if rep.Core.Confidence < 0.9 {
		t.Fatalf("confidence %v < 0.9", rep.Core.Confidence)
	}
}

func TestScaleoutShardErrorPropagates(t *testing.T) {
	// A shard too small for Phase 1 must surface as a descriptive error.
	src := testSource(t, 300, 31)
	udf := vision.CountUDF{Class: video.ClassCar}
	opt := smallOptions(30, 2) // 10-frame shards: passes the n/workers gate, fails inside phase1
	_, err := Run(src, udf, opt)
	if err == nil {
		t.Skip("tiny shards unexpectedly trained; nothing to assert")
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("error %q should name the failing shard", err)
	}
}

func TestScaleoutWindowStraddlingShardBoundary(t *testing.T) {
	// 6000 frames over 2 workers puts the shard boundary at 3000; windows
	// of 70 frames are not aligned to it, so window 42 ([2940, 3010))
	// aggregates Phase 1 knowledge from both shards. The merged segment
	// structure must handle that without losing the guarantee.
	src := testSource(t, 6000, 37)
	udf := vision.CountUDF{Class: video.ClassCar}
	opt := smallOptions(2, 5)
	opt.Window = 70
	rep, err := Run(src, udf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tuples != 6000/70 {
		t.Fatalf("merged relation has %d windows, want %d", rep.Tuples, 6000/70)
	}
	if rep.Core.Confidence < 0.9 {
		t.Fatalf("confidence %v < 0.9", rep.Core.Confidence)
	}
	for _, w := range rep.Core.IDs {
		if w < 0 || w >= 6000/70 {
			t.Fatalf("window ID %d out of range", w)
		}
	}
}
