package core

import (
	"math"
	"sort"

	"github.com/everest-project/everest/internal/uncertain"
)

// This file implements the alternative uncertain Top-K semantics surveyed
// in §2 — U-TopK [57,61], U-KRanks [56,57] and probabilistic-threshold
// Top-K (PT-k) [33] — for the no-oracle setting. They exist to reproduce
// the paper's argument that none of these notions provides Everest's
// guarantee: U-TopK's most probable set may still be very improbable,
// U-KRanks' per-rank winners need not form a probable set, and PT-k may
// return fewer (or more) than K tuples. The ablation harness contrasts
// their precision against Everest's oracle-in-the-loop results.
//
// All three assume independent x-tuples. Ranks are defined by the number
// of strictly greater scores (ties favour the tuple), matching the
// tie-tolerant convention used elsewhere in this reproduction.

// rankCountDP holds, per level t, the Poisson-binomial distribution of
// the number of tuples scoring strictly above t, truncated at kMax —
// together with per-tuple leave-one-out access via forward/backward
// arrays.
type rankCountDP struct {
	rel  uncertain.Relation
	kMax int
}

func newRankCountDP(rel uncertain.Relation, kMax int) *rankCountDP {
	return &rankCountDP{rel: rel, kMax: kMax}
}

// countsExcluding returns the distribution (truncated at kMax, with the
// tail mass in the last bucket) of #{g ≠ skip : S_g > t}. skip < 0 keeps
// all tuples.
func (d *rankCountDP) countsExcluding(skip int, t int) []float64 {
	probs := make([]float64, d.kMax+2) // [0..kMax] plus overflow bucket
	probs[0] = 1
	for gi, g := range d.rel {
		if gi == skip {
			continue
		}
		q := 1 - g.Dist.CDF(t) // Pr(S_g > t)
		if q == 0 {
			continue
		}
		// In-place convolution with a Bernoulli(q), high to low. The top
		// bucket is absorbing: counts at or above it stay there.
		over := len(probs) - 1
		probs[over] += probs[over-1] * q
		for c := over - 1; c >= 1; c-- {
			probs[c] = probs[c]*(1-q) + probs[c-1]*q
		}
		probs[0] *= 1 - q
	}
	return probs
}

// TopKMembershipProb returns, for each tuple, Pr(tuple ranks within the
// top k): Σ_s Pr(S_f = s) · Pr(#{g≠f : S_g > s} ≤ k−1).
func TopKMembershipProb(rel uncertain.Relation, k int) []float64 {
	dp := newRankCountDP(rel, k)
	out := make([]float64, len(rel))
	for fi, f := range rel {
		p := 0.0
		for lvl := f.Dist.Min; lvl <= f.Dist.Max(); lvl++ {
			pf := f.Dist.Pr(lvl)
			if pf == 0 {
				continue
			}
			counts := dp.countsExcluding(fi, lvl)
			cum := 0.0
			for c := 0; c <= k-1; c++ {
				cum += counts[c]
			}
			p += pf * cum
		}
		out[fi] = math.Min(p, 1)
	}
	return out
}

// PTk returns the probabilistic-threshold Top-K answer [33]: every tuple
// whose probability of being in the Top-K is at least p. The result may
// contain fewer or more than k tuples — one of the paper's arguments
// against this notion for video analytics.
func PTk(rel uncertain.Relation, k int, p float64) []int {
	probs := TopKMembershipProb(rel, k)
	var ids []int
	for i, pr := range probs {
		if pr >= p {
			ids = append(ids, rel[i].ID)
		}
	}
	return ids
}

// UKRanks returns the U-KRanks answer [56,57]: for each rank i ∈ 1..k,
// the tuple most likely to occupy exactly rank i. The same tuple may win
// several ranks; winners need not form the most probable Top-K set.
func UKRanks(rel uncertain.Relation, k int) []int {
	dp := newRankCountDP(rel, k)
	bestProb := make([]float64, k)
	bestID := make([]int, k)
	for i := range bestID {
		bestID[i] = -1
	}
	for fi, f := range rel {
		// rankProb[i] = Pr(exactly i tuples beat f) for i in 0..k-1.
		rankProb := make([]float64, k)
		for lvl := f.Dist.Min; lvl <= f.Dist.Max(); lvl++ {
			pf := f.Dist.Pr(lvl)
			if pf == 0 {
				continue
			}
			counts := dp.countsExcluding(fi, lvl)
			for i := 0; i < k; i++ {
				rankProb[i] += pf * counts[i]
			}
		}
		for i := 0; i < k; i++ {
			if rankProb[i] > bestProb[i] ||
				(rankProb[i] == bestProb[i] && bestID[i] >= 0 && rel[fi].ID < bestID[i]) {
				bestProb[i] = rankProb[i]
				bestID[i] = rel[fi].ID
			}
		}
	}
	return bestID
}

// UTopK returns the most probable Top-K set and its probability [57,61],
// by exhaustive possible-world enumeration. Exponential — usable only on
// small relations; it exists as a semantic reference, exactly the role it
// plays in the paper's related-work discussion.
func UTopK(rel uncertain.Relation, k int) ([]int, float64) {
	type key string
	setProb := make(map[key]float64)
	setIDs := make(map[key][]int)
	uncertain.EnumerateWorlds(rel, func(w uncertain.World) {
		// Top-K of this world: k largest levels, ties by ascending ID.
		idx := make([]int, len(rel))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if w.Levels[idx[a]] != w.Levels[idx[b]] {
				return w.Levels[idx[a]] > w.Levels[idx[b]]
			}
			return rel[idx[a]].ID < rel[idx[b]].ID
		})
		ids := make([]int, k)
		for i := 0; i < k; i++ {
			ids[i] = rel[idx[i]].ID
		}
		sort.Ints(ids)
		kk := key(intsKey(ids))
		setProb[kk] += w.Prob
		setIDs[kk] = ids
	})
	bestP := -1.0
	var bestKey key
	for kk, p := range setProb {
		if p > bestP || (p == bestP && kk < bestKey) {
			bestP = p
			bestKey = kk
		}
	}
	return setIDs[bestKey], bestP
}

func intsKey(ids []int) string {
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(b)
}
