package core

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/xrand"
)

// referenceBatch is the pre-heap linear-scan batch keeper: a
// position-ordered slice where the first strict minimum is replaced. The
// heap must reproduce its final contents exactly, including under E ties.
type referenceBatch struct {
	b    int
	best []batchItem
}

func (r *referenceBatch) insert(id int, ev float64) {
	if len(r.best) < r.b {
		r.best = append(r.best, batchItem{id: id, e: ev})
		return
	}
	wi, wv := 0, r.best[0].e
	for i, it := range r.best[1:] {
		if it.e < wv {
			wi, wv = i+1, it.e
		}
	}
	if ev > wv {
		r.best[wi] = batchItem{id: id, e: ev}
	}
}

func (r *referenceBatch) worst() float64 {
	if len(r.best) < r.b {
		return -1
	}
	w := r.best[0].e
	for _, it := range r.best[1:] {
		if it.e < w {
			w = it.e
		}
	}
	return w
}

func heapInsert(h batchHeap, b, id int, ev float64) batchHeap {
	if len(h) < b {
		h = append(h, batchItem{id: id, e: ev, pos: len(h)})
		h.siftUp(len(h) - 1)
		return h
	}
	if ev > h[0].e {
		h[0] = batchItem{id: id, e: ev, pos: h[0].pos}
		h.siftDown(0)
	}
	return h
}

// TestBatchHeapMatchesLinearScan drives both batch keepers with random
// streams (coarse values force frequent ties) and requires identical
// worst-member tracking and identical final ID sets.
func TestBatchHeapMatchesLinearScan(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		b := 1 + r.Intn(12)
		n := 1 + r.Intn(200)
		ref := &referenceBatch{b: b}
		var h batchHeap
		for i := 0; i < n; i++ {
			// Values in {0, 0.25, …, 1.75} so ties are common.
			ev := float64(r.Intn(8)) * 0.25
			ref.insert(i, ev)
			h = heapInsert(h, b, i, ev)
			refWorst := ref.worst()
			heapWorst := -1.0
			if len(h) == b {
				heapWorst = h[0].e
			}
			if refWorst != heapWorst {
				return false
			}
		}
		refIDs := make([]int, len(ref.best))
		for i, it := range ref.best {
			refIDs[i] = it.id
		}
		heapIDs := make([]int, len(h))
		for i, it := range h {
			heapIDs[i] = it.id
		}
		sort.Ints(refIDs)
		sort.Ints(heapIDs)
		if len(refIDs) != len(heapIDs) {
			return false
		}
		for i := range refIDs {
			if refIDs[i] != heapIDs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectBatchScratchReuse pins the allocation discipline: repeated
// selectBatch calls on a warm selector reuse the heap and sort scratch.
func TestSelectBatchScratchReuse(t *testing.T) {
	r := xrand.New(5)
	rel, oracle := randomRelation(r, 5000, 100, 5, 12)
	e, err := NewEngine(rel, Config{K: 20, Threshold: 0.9, BatchSize: 8}, oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	first := e.sel.selectBatch()
	if len(first) == 0 {
		t.Fatal("no batch selected")
	}
	// Warm path: no resort (schedule says reuse), heap reused → the only
	// allocation left is the returned ID slice.
	allocs := testing.AllocsPerRun(20, func() {
		_ = e.sel.selectBatch()
	})
	if allocs > 2 {
		t.Fatalf("selectBatch allocates %v objects per warm call, want ≤ 2", allocs)
	}
}
