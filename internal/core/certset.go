package core

import "sort"

// certainSet tracks the tuples whose exact scores are known and answers
// order-statistics queries for the top of the score order.
//
// Phase 2 only ever needs the K-th and (K−1)-st largest certain scores
// (S_k and S_p) and, at termination, the Top-K list itself. Certain scores
// never change once confirmed, so the set keeps just the current Top-K in
// a small sorted buffer (level descending, ID ascending for deterministic
// ties) and discards everything below — an O(K) insert instead of a full
// order-statistics tree.
type certEntry struct {
	id    int
	level int
}

type certainSet struct {
	cap int // number of top entries retained (the query's K)
	top []certEntry
	n   int // total certain tuples ever added
}

func newCertainSet() *certainSet { return &certainSet{cap: 1} }

// reserve grows the retained-top capacity; must be called before adds that
// matter for the given K. The engine calls it once with cfg.K.
func (s *certainSet) reserve(k int) {
	if k > s.cap {
		s.cap = k
	}
}

// add records a confirmed (id, level) pair.
func (s *certainSet) add(id, level int) {
	s.n++
	e := certEntry{id: id, level: level}
	// Find insertion point in the descending order.
	i := sort.Search(len(s.top), func(i int) bool {
		if s.top[i].level != e.level {
			return s.top[i].level < e.level
		}
		return s.top[i].id > e.id
	})
	if i >= s.cap {
		return // below the retained top
	}
	s.top = append(s.top, certEntry{})
	copy(s.top[i+1:], s.top[i:])
	s.top[i] = e
	if len(s.top) > s.cap {
		s.top = s.top[:s.cap]
	}
}

// len returns the total number of certain tuples.
func (s *certainSet) len() int { return s.n }

// kth returns the k-th largest certain level (1-based). It panics if fewer
// than k tuples are certain or k exceeds the reserved capacity.
func (s *certainSet) kth(k int) int {
	if k <= 0 || k > s.cap {
		panic("core: certainSet.kth out of reserved range")
	}
	return s.top[k-1].level
}

// topK returns the IDs and levels of the current Top-K in descending score
// order. It panics if fewer than k tuples are certain.
func (s *certainSet) topK(k int) (ids, levels []int) {
	ids = make([]int, k)
	levels = make([]int, k)
	for i := 0; i < k; i++ {
		ids[i] = s.top[i].id
		levels[i] = s.top[i].level
	}
	return ids, levels
}
