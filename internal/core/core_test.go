package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/xrand"
)

// trueWorldOracle fixes a ground-truth level per tuple and serves it.
type trueWorldOracle struct {
	levels map[int]int
	calls  int
}

func (o *trueWorldOracle) CleanBatch(ids []int) ([]int, error) {
	o.calls += len(ids)
	out := make([]int, len(ids))
	for i, id := range ids {
		lvl, ok := o.levels[id]
		if !ok {
			return nil, errors.New("unknown id")
		}
		out[i] = lvl
	}
	return out, nil
}

// randomRelation builds a relation of n tuples with true levels sampled
// from each tuple's own distribution (a perfectly calibrated proxy), plus
// nCertain pre-cleaned tuples.
func randomRelation(r *xrand.RNG, n, nCertain, maxSupport, maxMin int) (uncertain.Relation, *trueWorldOracle) {
	rel := make(uncertain.Relation, 0, n)
	oracle := &trueWorldOracle{levels: make(map[int]int)}
	for i := 0; i < n; i++ {
		var d uncertain.Dist
		if i < nCertain {
			d = uncertain.Certain(r.Intn(maxMin + maxSupport))
		} else {
			sup := 2 + r.Intn(maxSupport-1)
			probs := make([]float64, sup)
			for k := range probs {
				probs[k] = 0.05 + r.Float64()
			}
			d = uncertain.MustDist(r.Intn(maxMin+1), probs)
		}
		rel = append(rel, uncertain.XTuple{ID: i, Dist: d})
		oracle.levels[i] = sampleLevel(r, d)
		if d.IsCertain() {
			oracle.levels[i] = d.Min
		}
	}
	return rel, oracle
}

func sampleLevel(r *xrand.RNG, d uncertain.Dist) int {
	u := r.Float64()
	acc := 0.0
	for lvl := d.Min; lvl <= d.Max(); lvl++ {
		acc += d.Pr(lvl)
		if u < acc {
			return lvl
		}
	}
	return d.Max()
}

func defaultCfg(k int, thres float64) Config {
	return Config{K: k, Threshold: thres, BatchSize: 1}
}

func TestEngineValidation(t *testing.T) {
	rel := uncertain.Relation{{ID: 0, Dist: uncertain.Certain(1)}}
	oracle := OracleFunc(func(ids []int) ([]int, error) { return nil, nil })
	cases := []Config{
		{K: 0, Threshold: 0.9},
		{K: 2, Threshold: 0.9},  // K > n
		{K: 1, Threshold: 0},    // bad threshold
		{K: 1, Threshold: 1.01}, // bad threshold
	}
	for _, cfg := range cases {
		if _, err := NewEngine(rel, cfg, oracle, nil, simclock.Default()); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
	if _, err := NewEngine(nil, defaultCfg(1, 0.9), oracle, nil, simclock.Default()); !errors.Is(err, ErrEmptyRelation) {
		t.Fatalf("empty relation error = %v", err)
	}
	if _, err := NewEngine(rel, defaultCfg(1, 0.9), nil, nil, simclock.Default()); err == nil {
		t.Fatal("nil oracle should be rejected")
	}
	dup := uncertain.Relation{{ID: 0, Dist: uncertain.Certain(1)}, {ID: 0, Dist: uncertain.Certain(2)}}
	if _, err := NewEngine(dup, defaultCfg(1, 0.9), oracle, nil, simclock.Default()); err == nil {
		t.Fatal("duplicate IDs should be rejected")
	}
}

func TestEngineAllCertain(t *testing.T) {
	rel := uncertain.Relation{
		{ID: 0, Dist: uncertain.Certain(3)},
		{ID: 1, Dist: uncertain.Certain(9)},
		{ID: 2, Dist: uncertain.Certain(5)},
	}
	oracle := &trueWorldOracle{levels: map[int]int{}}
	e, err := NewEngine(rel, defaultCfg(2, 0.99), oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence != 1 {
		t.Fatalf("confidence = %v, want 1 for fully certain relation", res.Confidence)
	}
	if res.IDs[0] != 1 || res.IDs[1] != 2 {
		t.Fatalf("IDs = %v, want [1 2]", res.IDs)
	}
	if oracle.calls != 0 {
		t.Fatalf("oracle called %d times on a fully certain relation", oracle.calls)
	}
}

func TestEngineReachesThreshold(t *testing.T) {
	r := xrand.New(1)
	rel, oracle := randomRelation(r, 200, 20, 5, 10)
	cfg := defaultCfg(5, 0.9)
	e, err := NewEngine(rel, cfg, oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v < threshold", res.Confidence)
	}
	if len(res.IDs) != 5 {
		t.Fatalf("result size %d", len(res.IDs))
	}
	// Certain-result condition: every returned level is the true level.
	for i, id := range res.IDs {
		if res.Levels[i] != oracle.levels[id] {
			t.Fatalf("returned level %d for id %d, true %d", res.Levels[i], id, oracle.levels[id])
		}
	}
	// Result levels are in descending order.
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i] > res.Levels[i-1] {
			t.Fatalf("levels not descending: %v", res.Levels)
		}
	}
}

func TestEngineConfidenceMatchesBruteForce(t *testing.T) {
	// At termination, p̂ must equal the enumeration over remaining
	// uncertain tuples.
	r := xrand.New(7)
	rel, oracle := randomRelation(r, 12, 4, 3, 6)
	e, err := NewEngine(rel, defaultCfg(3, 0.8), oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	sk := res.Levels[len(res.Levels)-1]
	var unc uncertain.Relation
	for id, d := range e.dists {
		unc = append(unc, uncertain.XTuple{ID: id, Dist: d})
	}
	want := uncertain.BruteTopkProb(unc, sk)
	if math.Abs(res.Confidence-want) > 1e-9 {
		t.Fatalf("confidence %v, brute force %v", res.Confidence, want)
	}
}

func TestEngineExactWhenThresholdOne(t *testing.T) {
	// thres == 1 forces cleaning until no uncertain frame can exceed S_k;
	// the result must be the exact Top-K of the true world.
	for seed := uint64(0); seed < 10; seed++ {
		r := xrand.New(seed)
		rel, oracle := randomRelation(r, 60, 10, 4, 8)
		e, err := NewEngine(rel, defaultCfg(4, 1.0), oracle, nil, simclock.Default())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Confidence < 1 {
			t.Fatalf("seed %d: confidence %v < 1", seed, res.Confidence)
		}
		assertValidTopK(t, res, oracle, 4)
	}
}

// assertValidTopK checks that no tuple outside the result has a true level
// above the result's minimum level (ties allowed, per the paper).
func assertValidTopK(t *testing.T, res Result, oracle *trueWorldOracle, k int) {
	t.Helper()
	inResult := make(map[int]bool, k)
	for _, id := range res.IDs {
		inResult[id] = true
	}
	skTrue := res.Levels[len(res.Levels)-1]
	for id, lvl := range oracle.levels {
		if !inResult[id] && lvl > skTrue {
			t.Fatalf("tuple %d has true level %d > threshold %d", id, lvl, skTrue)
		}
	}
}

func TestEngineGuaranteeCalibration(t *testing.T) {
	// Statistical test of the paper's central claim: with a calibrated
	// proxy, Pr(R̂ is the exact Top-K) ≥ thres. Run many trials with
	// independent true worlds; the failure rate must not significantly
	// exceed 1 − thres.
	const trials = 300
	const thres = 0.8
	failures := 0
	for seed := uint64(0); seed < trials; seed++ {
		r := xrand.New(seed + 1000)
		rel, oracle := randomRelation(r, 40, 8, 4, 6)
		e, err := NewEngine(rel, defaultCfg(3, thres), oracle, nil, simclock.Default())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		inResult := make(map[int]bool)
		for _, id := range res.IDs {
			inResult[id] = true
		}
		skTrue := res.Levels[len(res.Levels)-1]
		ok := true
		for id, lvl := range oracle.levels {
			if !inResult[id] && lvl > skTrue {
				ok = false
				break
			}
		}
		if !ok {
			failures++
		}
	}
	// Binomial(300, 0.2) has mean 60, σ ≈ 6.9; allow mean + 4σ ≈ 88.
	if failures > 88 {
		t.Fatalf("guarantee violated: %d/%d failures at thres=%v", failures, trials, thres)
	}
}

func TestExpectedConfidenceMatchesBruteForce(t *testing.T) {
	// Eq. 6 must equal the definition: E[X_f] = Σ_s Pr(S_f=s)·p̂', where
	// p̂' is recomputed from scratch after hypothetically cleaning f at s.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 6 + r.Intn(6)
		k := 1 + r.Intn(3)
		nCertain := k + r.Intn(3)
		rel, oracle := randomRelation(r, n, nCertain, 4, 6)
		e, err := NewEngine(rel, defaultCfg(k, 0.99), oracle, nil, simclock.Default())
		if err != nil {
			return false
		}
		if e.certain.len() < k {
			return true // bootstrap case, covered elsewhere
		}
		sk, sp := e.thresholds()
		for id, d := range e.dists {
			got := e.sel.expectedConfidence(d, sk, sp)
			want := bruteExpectedConfidence(e, id, d, k)
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// bruteExpectedConfidence evaluates E[X_f] by direct definition.
func bruteExpectedConfidence(e *Engine, fid int, d uncertain.Dist, k int) float64 {
	// Snapshot current certain entries.
	type ce struct{ id, level int }
	var certs []ce
	for _, en := range e.certain.top {
		certs = append(certs, ce{en.id, en.level})
	}
	total := 0.0
	for lvl := d.Min; lvl <= d.Max(); lvl++ {
		p := d.Pr(lvl)
		if p == 0 {
			continue
		}
		// New certain pool with f cleaned at lvl.
		pool := append(append([]ce(nil), certs...), ce{fid, lvl})
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].level != pool[j].level {
				return pool[i].level > pool[j].level
			}
			return pool[i].id < pool[j].id
		})
		skNew := pool[k-1].level
		phat := 1.0
		for id, du := range e.dists {
			if id == fid {
				continue
			}
			phat *= du.CDF(skNew)
		}
		total += p * phat
	}
	return total
}

func TestEngineBootstrap(t *testing.T) {
	// No certain tuples at all: the engine must clean K frames first.
	r := xrand.New(3)
	rel, oracle := randomRelation(r, 30, 0, 4, 8)
	e, err := NewEngine(rel, defaultCfg(5, 0.9), oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BootstrapCleaned != 5 {
		t.Fatalf("BootstrapCleaned = %d, want 5", res.Stats.BootstrapCleaned)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
}

func TestEngineEarlyStopMatchesExhaustive(t *testing.T) {
	// The ψ bound must not change the chosen result, only the work done.
	for seed := uint64(0); seed < 8; seed++ {
		r1 := xrand.New(seed)
		rel1, oracle1 := randomRelation(r1, 80, 15, 4, 8)
		r2 := xrand.New(seed)
		rel2, oracle2 := randomRelation(r2, 80, 15, 4, 8)

		cfgFast := defaultCfg(4, 0.9)
		cfgSlow := defaultCfg(4, 0.9)
		cfgSlow.DisableEarlyStop = true

		e1, _ := NewEngine(rel1, cfgFast, oracle1, nil, simclock.Default())
		e2, _ := NewEngine(rel2, cfgSlow, oracle2, nil, simclock.Default())
		res1, err1 := e1.Run()
		res2, err2 := e2.Run()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(res1.IDs) != len(res2.IDs) {
			t.Fatalf("seed %d: result sizes differ", seed)
		}
		for i := range res1.IDs {
			if res1.IDs[i] != res2.IDs[i] {
				t.Fatalf("seed %d: early stop changed the result: %v vs %v", seed, res1.IDs, res2.IDs)
			}
		}
		if res1.Stats.Examined > res2.Stats.Examined {
			t.Fatalf("seed %d: early stop examined MORE candidates (%d > %d)",
				seed, res1.Stats.Examined, res2.Stats.Examined)
		}
	}
}

func TestEngineResortOnceStillTerminates(t *testing.T) {
	r := xrand.New(9)
	rel, oracle := randomRelation(r, 100, 15, 4, 8)
	cfg := defaultCfg(4, 0.9)
	cfg.ResortOnce = true
	e, err := NewEngine(rel, cfg, oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence < 0.9 {
		t.Fatalf("confidence %v", res.Confidence)
	}
	if res.Stats.Resorts != 1 {
		t.Fatalf("Resorts = %d, want 1", res.Stats.Resorts)
	}
}

func TestEngineBatchSizes(t *testing.T) {
	for _, b := range []int{1, 2, 8, 32} {
		r := xrand.New(11)
		rel, oracle := randomRelation(r, 120, 20, 4, 8)
		cfg := Config{K: 5, Threshold: 0.9, BatchSize: b}
		e, err := NewEngine(rel, cfg, oracle, nil, simclock.Default())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Confidence < 0.9 {
			t.Fatalf("b=%d: confidence %v", b, res.Confidence)
		}
		if res.Stats.Iterations > 0 && res.Stats.Cleaned > res.Stats.Iterations*b {
			t.Fatalf("b=%d: cleaned %d in %d iterations", b, res.Stats.Cleaned, res.Stats.Iterations)
		}
	}
}

func TestEngineOracleErrorPropagates(t *testing.T) {
	r := xrand.New(13)
	rel, _ := randomRelation(r, 20, 5, 4, 6)
	boom := errors.New("gpu on fire")
	oracle := OracleFunc(func(ids []int) ([]int, error) { return nil, boom })
	e, err := NewEngine(rel, defaultCfg(2, 0.99), oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped oracle error", err)
	}
}

func TestEngineMaxCleanedCap(t *testing.T) {
	r := xrand.New(17)
	rel, oracle := randomRelation(r, 300, 10, 5, 8)
	cfg := Config{K: 5, Threshold: 0.9999, BatchSize: 4, MaxCleaned: 12}
	e, err := NewEngine(rel, cfg, oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cleaned > 12+4 {
		t.Fatalf("cleaned %d, cap 12 (+1 batch)", res.Stats.Cleaned)
	}
}

func TestEngineChargesClock(t *testing.T) {
	r := xrand.New(19)
	rel, oracle := randomRelation(r, 100, 15, 4, 8)
	clock := simclock.NewClock()
	cost := simclock.Default()
	e, err := NewEngine(rel, defaultCfg(5, 0.9), oracle, clock, cost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantConfirm := float64(res.Stats.Cleaned)*cost.OracleMS +
		float64(res.Stats.OracleCalls)*cost.OracleCallMS
	if got := clock.PhaseMS(simclock.PhaseConfirm); math.Abs(got-wantConfirm) > 1e-9 {
		t.Fatalf("confirm charge %v, want %v", got, wantConfirm)
	}
	if res.Stats.OracleCalls == 0 {
		t.Fatal("OracleCalls not counted")
	}
	if res.Stats.Examined > 0 && clock.PhaseMS(simclock.PhaseSelect) <= 0 {
		t.Fatal("select phase not charged")
	}
}

func TestEngineK1(t *testing.T) {
	// K == 1 exercises the noPenultimate path.
	for seed := uint64(0); seed < 10; seed++ {
		r := xrand.New(seed + 50)
		rel, oracle := randomRelation(r, 40, 5, 4, 8)
		e, err := NewEngine(rel, defaultCfg(1, 0.95), oracle, nil, simclock.Default())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Confidence < 0.95 {
			t.Fatalf("seed %d: confidence %v", seed, res.Confidence)
		}
		if len(res.IDs) != 1 {
			t.Fatalf("result size %d", len(res.IDs))
		}
	}
}

func TestConfidenceMonotoneInCleaning(t *testing.T) {
	// Each batch clean must never leave p̂ undefined, and with threshold 1
	// p̂ must eventually hit exactly 1.
	r := xrand.New(23)
	rel, oracle := randomRelation(r, 50, 10, 4, 8)
	e, err := NewEngine(rel, defaultCfg(3, 1.0), oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence != 1 {
		t.Fatalf("confidence = %v, want exactly 1", res.Confidence)
	}
}
