package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/xrand"
)

func TestPsiMonotoneInThresholds(t *testing.T) {
	// Eq. 8's soundness rests on ψ being non-increasing as S_k and S_p
	// grow: a stale ψ from an earlier iteration over-estimates, never
	// under-estimates.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		d := randomTestDist(r)
		for sk := -2; sk < 12; sk++ {
			for sp := sk; sp < 13; sp++ {
				cur := psiOf(d, sk, sp, BoundIndependent)
				// Any later thresholds sk' >= sk, sp' >= sp must give ψ' <= ψ.
				later := psiOf(d, sk+1, sp+2, BoundIndependent)
				if later > cur+1e-12 && !math.IsInf(cur, 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomTestDist(r *xrand.RNG) uncertain.Dist {
	n := 2 + r.Intn(5)
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 0.05 + r.Float64()
	}
	return uncertain.MustDist(r.Intn(6), probs)
}

func TestPsiEdgeCases(t *testing.T) {
	d := uncertain.MustDist(3, []float64{0.5, 0.5}) // support {3,4}
	// Fully below S_k: no chance of entering Top-K → ψ = 0.
	if got := psiOf(d, 4, 5, BoundIndependent); got != 0 {
		t.Fatalf("ψ for hopeless frame = %v, want 0", got)
	}
	// Entirely above S_p: F(S_p) = 0 → ψ = +Inf (must be examined).
	if got := psiOf(d, 0, 1, BoundIndependent); !math.IsInf(got, 1) {
		t.Fatalf("ψ for certain-contender = %v, want +Inf", got)
	}
	// K == 1 (noPenultimate): denominator is 1.
	if got := psiOf(d, 2, noPenultimate, BoundIndependent); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ψ at K=1 = %v, want 1", got)
	}
}

func TestUpperBoundDominatesExpectedConfidence(t *testing.T) {
	// U(X_f) = p̂ + γ·ψ(f) >= E[X_f] for every uncertain frame (Eq. 7).
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 6 + r.Intn(8)
		k := 1 + r.Intn(3)
		rel, oracle := randomRelation(r, n, k+2, 4, 6)
		e, err := NewEngine(rel, Config{K: k, Threshold: 0.99}, oracle, nil, simclock.Default())
		if err != nil {
			return false
		}
		sk, sp := e.thresholds()
		phat := e.prob.Prob(sk)
		var gamma float64
		if sp == noPenultimate {
			gamma = 1
		} else {
			gamma = e.prob.Prob(sp)
		}
		for _, d := range e.dists {
			ev := e.sel.expectedConfidence(d, sk, sp)
			bound := phat + gamma*psiOf(d, sk, sp, BoundIndependent)
			if ev > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectBatchPrefersHighImpactFrames(t *testing.T) {
	// A frame certain to beat the current threshold must be selected
	// before one that cannot.
	rel := uncertain.Relation{
		{ID: 0, Dist: uncertain.Certain(5)},
		{ID: 1, Dist: uncertain.Certain(4)},
		{ID: 2, Dist: uncertain.MustDist(8, []float64{0.5, 0.5})}, // sure contender
		{ID: 3, Dist: uncertain.MustDist(0, []float64{0.9, 0.1})}, // hopeless
		{ID: 4, Dist: uncertain.MustDist(3, []float64{0.5, 0.5})}, // marginal
	}
	oracle := &trueWorldOracle{levels: map[int]int{2: 9, 3: 0, 4: 3}}
	e, err := NewEngine(rel, Config{K: 2, Threshold: 0.99, BatchSize: 1}, oracle, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	batch := e.sel.selectBatch()
	if len(batch) != 1 || batch[0] != 2 {
		t.Fatalf("first batch = %v, want [2] (the sure contender)", batch)
	}
}

func TestAtExcludingMatchesDirectProduct(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(6)
		dists := make([]uncertain.Dist, n)
		j := uncertain.NewJointCDF(0, 12)
		for i := range dists {
			dists[i] = randomTestDist(r)
			j.Add(dists[i])
		}
		for t := -1; t <= 13; t++ {
			for skip := 0; skip < n; skip++ {
				want := 1.0
				for i, d := range dists {
					if i == skip {
						continue
					}
					want *= d.CDF(t)
				}
				got := j.AtExcluding(dists[skip], t)
				if math.Abs(got-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleIntermittentFailure(t *testing.T) {
	// An oracle failing mid-run surfaces the error; nothing panics and the
	// stats reflect only completed work.
	r := xrand.New(77)
	rel, good := randomRelation(r, 60, 10, 4, 8)
	calls := 0
	flaky := OracleFunc(func(ids []int) ([]int, error) {
		calls++
		if calls == 3 {
			return nil, errFlaky
		}
		return good.CleanBatch(ids)
	})
	e, err := NewEngine(rel, Config{K: 4, Threshold: 0.9999, BatchSize: 2}, flaky, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run()
	if err == nil {
		t.Skip("query finished before the third oracle call")
	}
	if got := err.Error(); got == "" {
		t.Fatal("empty error")
	}
	if e.stats.Cleaned != 4 { // two successful batches of 2
		t.Fatalf("cleaned %d before failure, want 4", e.stats.Cleaned)
	}
}

var errFlaky = &flakyError{}

type flakyError struct{}

func (*flakyError) Error() string { return "transient inference failure" }

func TestOracleWrongLengthRejected(t *testing.T) {
	r := xrand.New(79)
	rel, _ := randomRelation(r, 20, 5, 4, 6)
	bad := OracleFunc(func(ids []int) ([]int, error) { return []int{1}, nil })
	e, err := NewEngine(rel, Config{K: 3, Threshold: 0.99, BatchSize: 4}, bad, nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("length-mismatched oracle response must be an error")
	}
}
