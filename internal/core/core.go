// Package core implements Everest's primary contribution: Phase 2 of the
// paper — uncertain Top-K query processing with an accurate but
// slow-to-run oracle in the loop (§3.3).
//
// Given an uncertain relation D0 (one x-tuple per retained frame, §3.2)
// and an oracle that can reveal any frame's exact score, the engine
// iteratively
//
//  1. extracts the Top-K result R̂ from the certain tuples D_c
//     (the certain-result condition, §3),
//  2. computes the confidence p̂ = Pr(R̂ = R) in closed form (Eq. 2–3), and
//  3. if p̂ < thres, selects the batch of uncertain frames whose cleaning
//     maximizes the expected next-round confidence E[X_f] (Eq. 4–6),
//     pruned by the ψ upper bound with lazy re-sorting (Eq. 7–8, §3.3.2),
//     and confirms them with the oracle.
//
// All probability products are maintained in log space by
// uncertain.JointCDF; selection work and oracle invocations are charged to
// a simclock.Clock so experiments report the paper's cost breakdown.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/workpool"
)

// Oracle reveals exact score levels for frames (or windows). Implementations
// charge their own inference cost to the clock.
type Oracle interface {
	// CleanBatch returns the exact score level of each requested ID, in
	// the same order.
	CleanBatch(ids []int) ([]int, error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(ids []int) ([]int, error)

// CleanBatch implements Oracle.
func (f OracleFunc) CleanBatch(ids []int) ([]int, error) { return f(ids) }

// Config controls a Phase 2 run.
type Config struct {
	// K is the result size.
	K int
	// Threshold is thres: the required probability that R̂ is exact.
	Threshold float64
	// BatchSize is b (§3.5 Batch Inference); 0 means 8, the paper default.
	BatchSize int
	// MaxCleaned caps the number of frames cleaned (0 = no cap); used only
	// as a safety valve in tests.
	MaxCleaned int
	// DisableEarlyStop turns off the ψ-bound pruning so Select-candidate
	// evaluates E[X_f] for every uncertain frame (ablation A1).
	DisableEarlyStop bool
	// ResortOnce freezes the ψ sort at j = 0 instead of the paper's
	// adaptive schedule (ablation A2).
	ResortOnce bool
	// UnhiddenDecodeMS is the per-frame decode cost charged on cleaning
	// when prefetching (§3.5) is disabled; with prefetching the decode of
	// upcoming candidates overlaps oracle compute and costs nothing extra.
	UnhiddenDecodeMS float64
	// Bound selects the confidence computation: the paper's exact
	// independent product (default) or the dependence-safe union bound
	// required for overlapping sliding windows.
	Bound BoundKind
	// Procs bounds the workers Select-candidate evaluates E[X_f] on,
	// following the engine-wide convention: zero or negative means
	// GOMAXPROCS. The knob trades wall-clock only — the selected batches,
	// counters and simulated charges are bit-identical for every value.
	Procs int
	// Pool, when non-nil, is a caller-owned resident worker pool the
	// speculative E[X_f] blocks fan out on. Select-candidate dispatches
	// thousands of blocks per query, so resident workers remove a
	// goroutine-spawn-and-join per block; nil falls back to transient
	// workers. Never affects results.
	Pool *workpool.Pool
	// Ctx, when non-nil, cancels the run: the loop checks it at every
	// select-and-clean boundary and returns ctx.Err() — cancellation is
	// caller abandonment, never a degraded answer. nil means no
	// cancellation.
	Ctx context.Context
	// BudgetMS is the simulated deadline: once the run's clock (which
	// may carry ingest charges the caller accumulated) reaches this many
	// simulated milliseconds, the loop stops — with a degraded result
	// when DegradedOK, with ErrDeadline otherwise. The check is
	// read-only, so charges on runs that never hit the budget are
	// bit-identical to runs with no budget at all. 0 means unbounded.
	BudgetMS float64
	// DegradedOK permits a principled best-effort answer instead of an
	// error when the budget expires or the oracle stays down past the
	// retry budget: the current Top-K estimate — confirmed scores where
	// the oracle got that far, proxy point estimates elsewhere — marked
	// with Result.Degraded. Unconfirmed estimates never reach the label
	// overlay, so a shared cache cannot be polluted by degraded answers.
	DegradedOK bool
}

func (c Config) validate(n int) error {
	if c.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", c.K)
	}
	if c.K > n {
		return fmt.Errorf("core: K=%d exceeds relation size %d", c.K, n)
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("core: threshold must be in (0,1], got %v", c.Threshold)
	}
	return c.Bound.validate()
}

func (c Config) batch() int {
	if c.BatchSize <= 0 {
		return 8
	}
	return c.BatchSize
}

// Stats reports Phase 2 execution counters (Table 8b).
type Stats struct {
	// Iterations is the number of select-and-clean rounds (batches).
	Iterations int
	// Cleaned is the number of tuples confirmed by the oracle during
	// Phase 2 (excludes tuples already certain in D0).
	Cleaned int
	// Examined is the number of E[X_f] evaluations across all rounds.
	Examined int
	// Pruned is the number of candidates skipped by the ψ bound.
	Pruned int
	// Resorts counts ψ re-sort passes.
	Resorts int
	// BootstrapCleaned counts frames cleaned just to reach |D_c| ≥ K.
	BootstrapCleaned int
	// OracleCalls counts oracle invocations (batches), each paying the
	// per-call overhead of the cost model.
	OracleCalls int
}

// Result is a probabilistically guaranteed Top-K answer — or, when
// Degraded is non-nil, the explicit best-effort answer a bounded run
// settled for.
type Result struct {
	// IDs are the Top-K tuple IDs in descending score order (ties broken
	// by ascending ID). Every ID's score was confirmed by the oracle,
	// except the ones a degraded run lists in Degraded.Unconfirmed.
	IDs []int
	// Levels[i] is the exact score level of IDs[i] (for unconfirmed IDs
	// of a degraded result: the proxy's rounded expected level).
	Levels []int
	// Confidence is p̂ = Pr(R̂ = R) ≥ thres at termination. Under
	// BoundUnion it is a lower bound on that probability. A degraded
	// result reports the p̂ it actually reached, below thres.
	Confidence float64
	// Bound echoes the confidence computation used.
	Bound BoundKind
	// Stats are execution counters.
	Stats Stats
	// Degraded is nil for guaranteed answers. Non-nil marks a
	// best-effort answer returned under Config.DegradedOK, with the
	// explicit provenance of what went unconfirmed and why.
	Degraded *Degraded
}

// Degraded is the provenance of a best-effort answer: which result
// entries are proxy estimates rather than oracle-confirmed scores, what
// stopped the run, and the simulated cost spent before it stopped.
type Degraded struct {
	// Reason is "deadline" (the simulated budget expired) or "oracle"
	// (the oracle stayed down past the retry budget).
	Reason string
	// Unconfirmed lists the result IDs whose Levels/Scores are proxy
	// point estimates, in result order. Empty means every returned score
	// is confirmed but the probabilistic guarantee was not reached.
	Unconfirmed []int
	// SpentMS is the clock's simulated total when the run degraded.
	SpentMS float64
}

// ErrEmptyRelation is returned when the relation has no tuples.
var ErrEmptyRelation = errors.New("core: empty relation")

// ErrDeadline is returned (wrapped) when a run's simulated deadline
// budget expires and the plan did not allow degraded answers.
var ErrDeadline = errors.New("core: simulated deadline exceeded")

// Engine runs Phase 2 over one uncertain relation. An Engine is
// single-use: construct with NewEngine, call Run once.
type Engine struct {
	cfg    Config
	oracle Oracle
	clock  *simclock.Clock
	cost   simclock.CostModel

	dists   map[int]uncertain.Dist // uncertain tuples only
	prob    noExceed
	certain *certainSet
	sel     *selector
	stats   Stats
}

// NewEngine validates inputs and indexes the relation. Tuples whose
// distribution is already a point mass (Phase 1 training/holdout samples)
// enter the certain set directly, so no oracle work is wasted (§3.2).
func NewEngine(rel uncertain.Relation, cfg Config, oracle Oracle, clock *simclock.Clock, cost simclock.CostModel) (*Engine, error) {
	if len(rel) == 0 {
		return nil, ErrEmptyRelation
	}
	if err := cfg.validate(len(rel)); err != nil {
		return nil, err
	}
	if oracle == nil {
		return nil, errors.New("core: nil oracle")
	}
	if clock == nil {
		clock = simclock.NewClock()
	}
	e := &Engine{
		cfg:     cfg,
		oracle:  oracle,
		clock:   clock,
		cost:    cost,
		dists:   make(map[int]uncertain.Dist),
		certain: newCertainSet(),
	}
	e.certain.reserve(cfg.K)
	seen := make(map[int]bool, len(rel))
	for _, x := range rel {
		if seen[x.ID] {
			return nil, fmt.Errorf("core: duplicate tuple ID %d", x.ID)
		}
		seen[x.ID] = true
		if x.Dist.IsCertain() {
			e.certain.add(x.ID, x.Dist.Min)
		} else {
			e.dists[x.ID] = x.Dist
		}
	}
	e.prob = newNoExceed(rel, cfg.Bound)
	e.sel = newSelector(e)
	return e, nil
}

// Run executes Phase 2 to completion and returns the guaranteed Top-K.
//
// Failure semantics: the loop checks cancellation and the simulated
// deadline at every select-and-clean boundary. Cancellation always
// returns ctx.Err(). An expired budget, or an oracle failure the
// dispatch layer could not retry around, returns ErrDeadline / the
// oracle's error — unless Config.DegradedOK, in which case the run
// settles for an explicitly marked best-effort answer (finishDegraded).
func (e *Engine) Run() (Result, error) {
	if err := e.bootstrap(); err != nil {
		return e.failOrDegrade(err)
	}
	for {
		sk, _ := e.thresholds()
		phat := e.prob.Prob(sk)
		if phat >= e.cfg.Threshold || len(e.dists) == 0 {
			return e.finish(phat), nil
		}
		if e.cfg.MaxCleaned > 0 && e.stats.Cleaned >= e.cfg.MaxCleaned {
			return e.finish(phat), nil
		}
		// Interrupt checks sit after the success checks: a run that meets
		// its guarantee on the very charge that exhausts the budget still
		// returns the guaranteed answer.
		if e.cfg.Ctx != nil {
			if err := e.cfg.Ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		if e.cfg.BudgetMS > 0 && e.clock.TotalMS() >= e.cfg.BudgetMS {
			if e.cfg.DegradedOK {
				return e.finishDegraded("deadline"), nil
			}
			return Result{}, fmt.Errorf("%w: %.1f of %.1f simulated ms spent, confidence %.4f < %.4f",
				ErrDeadline, e.clock.TotalMS(), e.cfg.BudgetMS, phat, e.cfg.Threshold)
		}
		batch := e.sel.selectBatch()
		if len(batch) == 0 {
			// No uncertain candidates can improve the result; p̂ is final.
			return e.finish(phat), nil
		}
		if err := e.clean(batch); err != nil {
			return e.failOrDegrade(err)
		}
		e.stats.Iterations++
	}
}

// oracleFailure is the classification hook oracle errors implement
// (vision.OracleError does): a failure of the oracle itself, the class
// a degraded run may answer around. Internal errors — a cancelled
// context, a malformed batch — never degrade.
type oracleFailure interface{ OracleFailure() bool }

// failOrDegrade maps a clean/bootstrap error to the run's outcome:
// oracle-availability failures degrade when the plan allows it,
// everything else propagates.
func (e *Engine) failOrDegrade(err error) (Result, error) {
	var of oracleFailure
	if e.cfg.DegradedOK && errors.As(err, &of) && of.OracleFailure() {
		return e.finishDegraded("oracle"), nil
	}
	return Result{}, err
}

// thresholds returns (S_k, S_p): the K-th and (K−1)-st certain scores.
// For K == 1 the penultimate is +∞ (sentinel noPenultimate).
func (e *Engine) thresholds() (sk, sp int) {
	sk = e.certain.kth(e.cfg.K)
	if e.cfg.K == 1 {
		return sk, noPenultimate
	}
	return sk, e.certain.kth(e.cfg.K - 1)
}

// noPenultimate is the S_p sentinel when K == 1: any cleaned score makes
// the frame the new threshold frame, so the "above penultimate" case of
// Eq. 5 never applies.
const noPenultimate = math.MaxInt

// bootstrap ensures |D_c| ≥ K by cleaning the uncertain frames with the
// highest mean scores. With Phase 1 sampling, D0 virtually always has far
// more than K certain tuples already, so this is a no-op in practice.
func (e *Engine) bootstrap() error {
	need := e.cfg.K - e.certain.len()
	if need <= 0 {
		return nil
	}
	type cand struct {
		id   int
		mean float64
	}
	cands := make([]cand, 0, len(e.dists))
	for id, d := range e.dists {
		cands = append(cands, cand{id, d.Mean()})
	}
	if len(cands) < need {
		return fmt.Errorf("core: relation has only %d tuples but K=%d", e.certain.len()+len(cands), e.cfg.K)
	}
	// Descending mean, ascending id for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mean != cands[j].mean {
			return cands[i].mean > cands[j].mean
		}
		return cands[i].id < cands[j].id
	})
	ids := make([]int, need)
	for i := 0; i < need; i++ {
		ids[i] = cands[i].id
	}
	if err := e.clean(ids); err != nil {
		return err
	}
	e.stats.BootstrapCleaned = need
	return nil
}

// clean confirms the given uncertain tuples with the oracle and promotes
// them to the certain set.
func (e *Engine) clean(ids []int) error {
	levels, err := e.oracle.CleanBatch(ids)
	if err != nil {
		return fmt.Errorf("core: oracle failed: %w", err)
	}
	if len(levels) != len(ids) {
		return fmt.Errorf("core: oracle returned %d levels for %d ids", len(levels), len(ids))
	}
	e.clock.Charge(simclock.PhaseConfirm,
		float64(len(ids))*(e.cost.OracleMS+e.cfg.UnhiddenDecodeMS)+e.cost.OracleCallMS)
	e.stats.OracleCalls++
	for i, id := range ids {
		d, ok := e.dists[id]
		if !ok {
			return fmt.Errorf("core: cleaning unknown or already-certain tuple %d", id)
		}
		e.prob.Remove(d)
		delete(e.dists, id)
		e.certain.add(id, levels[i])
	}
	e.stats.Cleaned += len(ids)
	return nil
}

func (e *Engine) finish(phat float64) Result {
	ids, levels := e.certain.topK(e.cfg.K)
	e.clock.Charge(simclock.PhaseTopkProb, 1e-3*float64(e.stats.Iterations+1))
	return Result{IDs: ids, Levels: levels, Confidence: phat, Bound: e.cfg.Bound, Stats: e.stats}
}

// finishDegraded assembles the best-effort answer of an interrupted
// run: every tuple — confirmed ones at their exact level, uncertain
// ones at the proxy's rounded expected level — ranked by (level desc,
// confirmed first, ID asc), truncated to K. Unconfirmed members are
// listed explicitly; their estimates are NEVER written to the label
// overlay (only oracle confirmations are), so nothing unconfirmed can
// leak into a shared cache. Deterministic: a pure function of the
// engine's state at the interrupt point.
func (e *Engine) finishDegraded(reason string) Result {
	type cand struct {
		id, level int
		confirmed bool
	}
	cands := make([]cand, 0, len(e.certain.top)+len(e.dists))
	for _, c := range e.certain.top {
		cands = append(cands, cand{id: c.id, level: c.level, confirmed: true})
	}
	for id, d := range e.dists {
		cands = append(cands, cand{id: id, level: int(math.Round(d.Mean()))})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.level != b.level {
			return a.level > b.level
		}
		if a.confirmed != b.confirmed {
			return a.confirmed
		}
		return a.id < b.id
	})
	k := min(e.cfg.K, len(cands))
	res := Result{
		Bound: e.cfg.Bound,
		Stats: e.stats,
		Degraded: &Degraded{
			Reason:  reason,
			SpentMS: e.clock.TotalMS(),
		},
	}
	res.Confidence = e.Confidence()
	res.IDs = make([]int, k)
	res.Levels = make([]int, k)
	for i := 0; i < k; i++ {
		res.IDs[i] = cands[i].id
		res.Levels[i] = cands[i].level
		if !cands[i].confirmed {
			res.Degraded.Unconfirmed = append(res.Degraded.Unconfirmed, cands[i].id)
		}
	}
	return res
}

// Confidence returns the current p̂ without advancing the engine; used by
// tests and by incremental callers.
func (e *Engine) Confidence() float64 {
	if e.certain.len() < e.cfg.K {
		return 0
	}
	sk, _ := e.thresholds()
	return e.prob.Prob(sk)
}
