package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/xrand"
)

func TestBoundKindString(t *testing.T) {
	if BoundIndependent.String() != "independent" || BoundUnion.String() != "union" {
		t.Fatalf("unexpected names: %v, %v", BoundIndependent, BoundUnion)
	}
	if BoundKind(9).String() != "BoundKind(9)" {
		t.Fatalf("unexpected fallback: %v", BoundKind(9))
	}
}

func TestUnknownBoundKindRejected(t *testing.T) {
	rel := uncertain.Relation{{ID: 0, Dist: uncertain.Certain(1)}}
	_, err := NewEngine(rel, Config{K: 1, Threshold: 0.9, Bound: BoundKind(42)},
		OracleFunc(func(ids []int) ([]int, error) { return nil, nil }), nil, simclock.Default())
	if err == nil {
		t.Fatal("unknown bound kind must be rejected")
	}
}

// TestUnionConfidenceNeverExceedsIndependent: on independent relations the
// Bonferroni bound is a lower bound of the exact product, at every point
// of the run. We compare the initial confidences of twin engines.
func TestUnionConfidenceNeverExceedsIndependent(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 6 + r.Intn(10)
		k := 1 + r.Intn(3)
		rel, _ := randomRelation(r, n, k+2, 4, 6)
		mk := func(b BoundKind) *Engine {
			e, err := NewEngine(rel, Config{K: k, Threshold: 0.9, Bound: b},
				OracleFunc(func(ids []int) ([]int, error) { return nil, nil }), nil, simclock.Default())
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		exact := mk(BoundIndependent).Confidence()
		union := mk(BoundUnion).Confidence()
		return union <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionEngineMeetsGuarantee: a full Phase 2 run under the union bound
// terminates with confidence ≥ thres and the certain-result condition
// intact, and its reported confidence lower-bounds the exact product over
// its own final state (the Weierstrass inequality Π(1−x_i) ≥ 1−Σx_i).
//
// Note the two bounds' cleaning bills are NOT point-wise ordered: the
// engines take different cleaning trajectories (E[X_f] is computed under
// different measures), so on tiny relations the union engine can get
// lucky and finish with fewer cleanings. The cost ordering is an
// empirical claim measured by ablation A7, not a per-instance theorem.
func TestUnionEngineMeetsGuarantee(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(30)
		k := 1 + r.Intn(4)
		rel, oracle := randomRelation(r, n, k+3, 4, 8)
		e, err := NewEngine(rel, Config{K: k, Threshold: 0.9, BatchSize: 2, Bound: BoundUnion},
			oracle, nil, simclock.Default())
		if err != nil {
			t.Fatal(err)
		}
		union, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if union.Confidence < 0.9 && len(e.dists) > 0 {
			return false // stopped early without meeting thres
		}
		if union.Bound != BoundUnion || len(union.IDs) != k {
			return false
		}
		// Weierstrass check on the final state: 1 − Σ tails ≤ Π CDFs.
		sk := union.Levels[len(union.Levels)-1]
		exact := 1.0
		for _, d := range e.dists {
			exact *= d.CDF(sk)
		}
		return union.Confidence <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionPsiMonotoneInThresholds mirrors the independent-mode test:
// stale ψ must over-estimate (Eq. 8 soundness) under the union bound too.
func TestUnionPsiMonotoneInThresholds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		d := randomTestDist(r)
		for sk := -2; sk < 12; sk++ {
			for sp := sk; sp < 13; sp++ {
				cur := psiOf(d, sk, sp, BoundUnion)
				later := psiOf(d, sk+1, sp+2, BoundUnion)
				if later > cur+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionUpperBoundDominatesExpectedConfidence: base + γ·ψ ≥ E[X_f]
// under the union bound (the derivation in psiOf's comment).
func TestUnionUpperBoundDominatesExpectedConfidence(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 6 + r.Intn(8)
		k := 1 + r.Intn(3)
		rel, oracle := randomRelation(r, n, k+2, 4, 6)
		e, err := NewEngine(rel, Config{K: k, Threshold: 0.99, Bound: BoundUnion}, oracle, nil, simclock.Default())
		if err != nil {
			return false
		}
		sk, sp := e.thresholds()
		var base float64
		if sp == noPenultimate {
			base = 1
		} else {
			base = e.prob.Prob(sp)
		}
		for _, d := range e.dists {
			ev := e.sel.expectedConfidence(d, sk, sp)
			bound := base + psiOf(d, sk, sp, BoundUnion)
			if ev > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionResultHonestAgainstBruteForce: on tiny independent relations,
// the union engine's reported confidence must lower-bound the true
// possible-world probability of its answer being Top-K.
func TestUnionResultHonestAgainstBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(4)
		rel, oracle := randomRelation(r, n, 2, 3, 4)
		e, err := NewEngine(rel, Config{K: 2, Threshold: 0.8, BatchSize: 1, Bound: BoundUnion},
			oracle, nil, simclock.Default())
		if err != nil {
			return false
		}
		res, err := e.Run()
		if err != nil {
			return false
		}
		// Reconstruct the post-run relation: cleaned tuples are certain at
		// their oracle level.
		post := make(uncertain.Relation, len(rel))
		for i, x := range rel {
			if _, cleaned := e.dists[x.ID]; cleaned {
				post[i] = x // still uncertain
			} else {
				post[i] = uncertain.XTuple{ID: x.ID, Dist: uncertain.Certain(oracle.levels[x.ID])}
			}
		}
		sk := res.Levels[len(res.Levels)-1]
		var unc uncertain.Relation
		for _, x := range post {
			if !x.Dist.IsCertain() {
				unc = append(unc, x)
			}
		}
		exact := uncertain.BruteTopkProb(unc, sk)
		return res.Confidence <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionBoundWithManyTuples(t *testing.T) {
	// 10^5 tuples each with tail 1e-6 above level 0 and a certain Top-1 at
	// level 0: T(S_k=0) = 0.1, so the union confidence is 0.9 — no
	// underflow or cancellation trouble at this scale.
	rel := make(uncertain.Relation, 0, 100001)
	rel = append(rel, uncertain.XTuple{ID: 0, Dist: uncertain.Certain(0)})
	d := uncertain.MustDist(0, []float64{1 - 1e-6, 1e-6})
	for i := 1; i <= 100000; i++ {
		rel = append(rel, uncertain.XTuple{ID: i, Dist: d})
	}
	e, err := NewEngine(rel, Config{K: 1, Threshold: 0.85, Bound: BoundUnion},
		OracleFunc(func(ids []int) ([]int, error) {
			out := make([]int, len(ids))
			return out, nil
		}), nil, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	got := e.Confidence()
	if math.Abs(got-0.9) > 1e-6 {
		t.Fatalf("union confidence = %v, want ≈0.9", got)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence < 0.85 {
		t.Fatalf("terminated below threshold: %v", res.Confidence)
	}
}
