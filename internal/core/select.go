package core

import (
	"math"
	"sort"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/workpool"
)

// selector implements Select-candidate (§3.3.2): it picks, per iteration,
// the batch of uncertain frames whose cleaning maximizes the expected
// next-round confidence E[X_f] (Eq. 4–6). Frames are examined in
// descending order of the sort-factor ψ_j(f) = (1 − F_f(S_kj)) / F_f(S_pj)
// computed at an earlier iteration j; since S_k and S_p only grow, ψ_j is
// an upper-bound surrogate (Eq. 8) and the scan stops early once
// p̂ + γ·ψ_j(f) cannot beat the batch's current worst E (Eq. 7).
//
// Re-sort schedule (paper §3.3.2): during the first 100 iterations ψ is
// recomputed every 10 iterations; afterwards it is recomputed whenever S_k
// or S_p changes.
type selector struct {
	e *Engine

	order  []int     // uncertain IDs, descending ψ at last sort
	psi    []float64 // ψ value parallel to order
	sorted bool

	lastSortIter int
	sortSk       int
	sortSp       int

	heap  batchHeap // selectBatch scratch, reused across iterations
	evBuf []float64 // speculative E[X_f] block scratch (parallel scan)
}

// minParallelSelect is the live-candidate count below which selectBatch
// stays serial: with the ψ early stop the scan typically examines a few
// dozen candidates, so fan-out overhead only pays off on large relations
// (or when the early stop is disabled). The cutover affects wall-clock
// only — both paths produce bit-identical batches.
const minParallelSelect = 1024

// speculationFactor sizes the parallel scan's speculative block as a
// multiple of the worker count. Any value yields identical results; it
// bounds how many E[X_f] evaluations past the early-stop point are wasted.
const speculationFactor = 32

func newSelector(e *Engine) *selector {
	return &selector{e: e}
}

// needResort applies the paper's lazy re-sort schedule.
func (s *selector) needResort(sk, sp int) bool {
	if !s.sorted {
		return true
	}
	if s.e.cfg.ResortOnce {
		return false
	}
	iter := s.e.stats.Iterations
	if iter < 100 {
		return iter-s.lastSortIter >= 10
	}
	return sk != s.sortSk || sp != s.sortSp
}

// psiOf computes the sort factor at threshold levels (sk, sp).
//
// Independent bound (Eq. 7): ψ(f) = (1 − F_f(S_k)) / F_f(S_p), and
// E[X_f] ≤ p̂ + γ·ψ(f) with γ = H(S_p)/Π F(S_p).
//
// Union bound: the analogous derivation gives E[X_f] ≤ (1 − T(S_p)) +
// (1 − F_f(S_k)) because T_excl_f(t) ≥ T(S_p) − (1 − F_f(S_k)) for every
// threshold t ≤ S_p the cleaning can produce, so ψ(f) = 1 − F_f(S_k)
// with base Prob(S_p) and γ = 1. In both modes ψ computed at an earlier
// iteration j over-estimates the current ψ (S_k and S_p only grow), so a
// stale sort order still yields a sound early-stop bound (Eq. 8).
func psiOf(d uncertain.Dist, sk, sp int, bound BoundKind) float64 {
	num := 1 - d.CDF(sk)
	if num <= 0 {
		return 0
	}
	if bound == BoundUnion {
		return num
	}
	var den float64
	if sp == noPenultimate {
		den = 1
	} else {
		den = d.CDF(sp)
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

func (s *selector) resort(sk, sp int) {
	n := len(s.e.dists)
	if cap(s.order) < n {
		s.order = make([]int, 0, n)
		s.psi = make([]float64, 0, n)
	}
	s.order = s.order[:0]
	s.psi = s.psi[:0]
	for id := range s.e.dists {
		s.order = append(s.order, id)
	}
	// Deterministic scan order under ψ ties.
	sort.Ints(s.order)
	s.psi = s.psi[:len(s.order)]
	for i, id := range s.order {
		s.psi[i] = psiOf(s.e.dists[id], sk, sp, s.e.cfg.Bound)
	}
	sortByPsi(s.order, s.psi)
	s.sorted = true
	s.lastSortIter = s.e.stats.Iterations
	s.sortSk, s.sortSp = sk, sp
	s.e.stats.Resorts++
}

// psiSorter sorts (order, psi) jointly in place.
type psiSorter struct {
	order []int
	psi   []float64
}

func (p *psiSorter) Len() int           { return len(p.order) }
func (p *psiSorter) Less(a, b int) bool { return p.psi[a] > p.psi[b] }
func (p *psiSorter) Swap(a, b int) {
	p.order[a], p.order[b] = p.order[b], p.order[a]
	p.psi[a], p.psi[b] = p.psi[b], p.psi[a]
}

// sortByPsi sorts (order, psi) jointly by ψ descending; ties keep the
// pre-existing ascending-ID order (stable). The joint in-place sort
// replaces an index-permutation pass that allocated three O(n) slices on
// every resort.
func sortByPsi(order []int, psi []float64) {
	sort.Stable(&psiSorter{order: order, psi: psi})
}

// expectedConfidence evaluates E[X_f] (Eq. 6) for the uncertain tuple with
// distribution d, at current thresholds (sk, sp), using the engine's
// no-exceed accumulator with f's own factor excluded (robust form of
// Eq. 5; see JointCDF.AtExcluding / TailSum.AtExcluding). Under
// BoundUnion the same three cases apply with the Bonferroni lower bound
// in place of the exact product.
func (s *selector) expectedConfidence(d uncertain.Dist, sk, sp int) float64 {
	pr := s.e.prob
	// Case s <= S_k: result and threshold unchanged; only f's uncertainty
	// is discounted. Mass F_f(S_k) at value Π_{others} F(S_k).
	e := d.CDF(sk) * pr.ProbExcluding(d, sk)
	// Case S_k < s <= S_p: f becomes the new threshold frame with score s.
	hiS := sp
	if hiS == noPenultimate || hiS > d.Max() {
		hiS = d.Max()
	}
	for lvl := max(sk+1, d.Min); lvl <= hiS; lvl++ {
		p := d.Pr(lvl)
		if p == 0 {
			continue
		}
		e += p * pr.ProbExcluding(d, lvl)
	}
	// Case s > S_p: the old penultimate becomes the threshold frame.
	if sp != noPenultimate {
		tail := 1 - d.CDF(sp)
		if tail > 0 {
			e += tail * pr.ProbExcluding(d, sp)
		}
	}
	return e
}

// batchItem is a candidate retained for the current batch. pos is a
// stable slot identifier in [0, b): replacements inherit the evicted
// item's slot, which makes the heap's eviction choice — smallest E, then
// smallest slot — coincide exactly with the old linear scan that replaced
// the first minimum in a position-ordered slice.
type batchItem struct {
	id  int
	e   float64
	pos int
}

// batchHeap is a min-heap of batch candidates ordered by (e, pos), so the
// root is the current batch's worst member.
type batchHeap []batchItem

func (h batchHeap) less(a, b int) bool {
	if h[a].e != h[b].e {
		return h[a].e < h[b].e
	}
	return h[a].pos < h[b].pos
}

func (h batchHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h batchHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// selectBatch returns up to cfg.batch() uncertain tuple IDs with the
// highest E[X_f]. It returns an empty slice when no uncertain tuples
// remain.
func (s *selector) selectBatch() []int {
	e := s.e
	if len(e.dists) == 0 {
		return nil
	}
	sk, sp := e.thresholds()
	if s.needResort(sk, sp) {
		s.resort(sk, sp)
	}
	// base + γ·ψ is the early-stop upper bound on E[X_f]; see psiOf for
	// the per-mode derivation.
	var base, gamma float64
	if e.cfg.Bound == BoundUnion {
		if sp == noPenultimate {
			base = 1
		} else {
			base = e.prob.Prob(sp)
		}
		gamma = 1
	} else {
		base = e.prob.Prob(sk)
		if sp == noPenultimate {
			gamma = 1
		} else {
			gamma = e.prob.Prob(sp)
		}
	}

	b := e.cfg.batch()
	if b > len(e.dists) {
		b = len(e.dists)
	}
	// The running batch is a min-heap over (E, slot): peeking the worst
	// member and replacing it are O(1)/O(log b) instead of the old O(b)
	// scans, and the heap storage is selector-owned scratch.
	if cap(s.heap) < b {
		s.heap = make(batchHeap, 0, b)
	}
	h := s.heap[:0]
	insert := func(id int, ev float64) {
		if len(h) < b {
			h = append(h, batchItem{id: id, e: ev, pos: len(h)})
			h.siftUp(len(h) - 1)
			return
		}
		if ev > h[0].e {
			h[0] = batchItem{id: id, e: ev, pos: h[0].pos}
			h.siftDown(0)
		}
	}

	// replay consumes one candidate in scan order: it applies the ψ
	// early-stop check against the running heap and, if the scan
	// survives, inserts the candidate's E[X_f]. Shared by the serial scan
	// (ev computed inline) and the parallel scan (ev precomputed
	// speculatively); both therefore build the exact same heap, counters
	// and early-stop point.
	examined := 0
	replay := func(i int, ev float64) (stop bool) {
		if !e.cfg.DisableEarlyStop && len(h) == b {
			// ψ_j is stale (computed at an earlier, lower S_k/S_p) and
			// therefore an over-estimate: the bound is sound (Eq. 8).
			bound := base + gamma*s.psi[i]
			if bound <= h[0].e {
				e.stats.Pruned += remainingLive(s.order[i:], e.dists)
				return true
			}
		}
		examined++
		insert(s.order[i], ev)
		return false
	}
	if procs := workpool.Procs(e.cfg.Procs); procs > 1 && len(e.dists) >= minParallelSelect {
		// Parallel scan: candidates are evaluated speculatively in
		// index-ordered blocks — each E[X_f] is a pure read of the engine
		// state, which is frozen during selection — then replayed serially
		// in scan order. The replay makes the batch bit-identical to the
		// serial scan; speculation past the early-stop point wastes real
		// CPU only, never simulated charges (those follow `examined`).
		block := speculationFactor * procs
		if cap(s.evBuf) < block {
			s.evBuf = make([]float64, block)
		}
	scan:
		for lo := 0; lo < len(s.order); lo += block {
			hi := min(lo+block, len(s.order))
			evs := s.evBuf[:hi-lo]
			workpool.ForEachOn(e.cfg.Pool, procs, hi-lo, func(_, k int) {
				if d, ok := e.dists[s.order[lo+k]]; ok {
					evs[k] = s.expectedConfidence(d, sk, sp)
				}
			})
			for i := lo; i < hi; i++ {
				if _, ok := e.dists[s.order[i]]; !ok {
					continue // cleaned since the last re-sort
				}
				if replay(i, evs[i-lo]) {
					break scan
				}
			}
		}
	} else {
		for i, id := range s.order {
			d, ok := e.dists[id]
			if !ok {
				continue // cleaned since the last re-sort
			}
			// E[X_f] is computed before replay's early-stop check — one
			// speculative evaluation in the stopping iteration — so the
			// serial and parallel paths share the exact same replay.
			if replay(i, s.expectedConfidence(d, sk, sp)) {
				break
			}
		}
	}
	s.heap = h
	e.stats.Examined += examined
	e.clock.Charge(simclock.PhaseSelect, float64(examined)*e.cost.SelectPerFrameMS)

	ids := make([]int, len(h))
	for i, it := range h {
		ids[i] = it.id
	}
	sort.Ints(ids) // deterministic oracle call order
	return ids
}

func remainingLive(tail []int, dists map[int]uncertain.Dist) int {
	n := 0
	for _, id := range tail {
		if _, ok := dists[id]; ok {
			n++
		}
	}
	return n
}
