package core

import (
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/uncertain"
	"github.com/everest-project/everest/internal/workpool"
	"github.com/everest-project/everest/internal/xrand"
)

// benchRelation builds an n-tuple relation with calibrated true scores.
func benchRelation(n, nCertain int) (uncertain.Relation, *trueWorldOracle) {
	r := xrand.New(99)
	return randomRelation(r, n, nCertain, 6, 20)
}

func BenchmarkEngineRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rel, oracle := benchRelation(20000, 500)
		e, err := NewEngine(rel, Config{K: 50, Threshold: 0.9, BatchSize: 8}, oracle, nil, simclock.Default())
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Cleaned), "cleaned")
		b.ReportMetric(float64(res.Stats.Examined), "examined")
	}
}

func BenchmarkTopkProb(b *testing.B) {
	rel, oracle := benchRelation(50000, 500)
	e, err := NewEngine(rel, Config{K: 50, Threshold: 0.9}, oracle, nil, simclock.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Confidence()
	}
}

func BenchmarkSelectBatch(b *testing.B) {
	rel, oracle := benchRelation(50000, 500)
	e, err := NewEngine(rel, Config{K: 50, Threshold: 0.9, BatchSize: 8}, oracle, nil, simclock.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.sel.sorted = false // force the full resort + scan path
		_ = e.sel.selectBatch()
	}
}

// benchExhaustiveEngine builds an engine whose selection scan cannot
// early-stop (ablation A1's worst case): every selectBatch call
// evaluates E[X_f] for all ~49.5k uncertain candidates, the regime
// where the speculative-block fan-out dominates and per-block worker
// spawn overhead is visible.
func benchExhaustiveEngine(b *testing.B, pool *workpool.Pool) *Engine {
	b.Helper()
	rel, oracle := benchRelation(50000, 500)
	e, err := NewEngine(rel, Config{
		K: 50, Threshold: 0.9, BatchSize: 8,
		DisableEarlyStop: true, Procs: 8, Pool: pool,
	}, oracle, nil, simclock.Default())
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkSelectBatchExhaustive spawns a transient worker set per
// speculative block (the pre-resident-pool behaviour, Pool == nil).
func BenchmarkSelectBatchExhaustive(b *testing.B) {
	e := benchExhaustiveEngine(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.sel.sorted = false
		_ = e.sel.selectBatch()
	}
}

// BenchmarkSelectBatchExhaustivePool runs the same scan on a resident
// workpool.Pool, as the serving path does: the goroutines are spawned
// once and every block reuses them.
func BenchmarkSelectBatchExhaustivePool(b *testing.B) {
	pool := workpool.NewPool(8)
	defer pool.Close()
	e := benchExhaustiveEngine(b, pool)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.sel.sorted = false
		_ = e.sel.selectBatch()
	}
}

func BenchmarkJointCDFBuild(b *testing.B) {
	rel, _ := benchRelation(50000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = uncertain.NewJointCDFFromRelation(rel)
	}
}

func BenchmarkUKRanks(b *testing.B) {
	rel, _ := benchRelation(500, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = UKRanks(rel, 10)
	}
}

func BenchmarkPTk(b *testing.B) {
	rel, _ := benchRelation(500, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PTk(rel, 10, 0.5)
	}
}
