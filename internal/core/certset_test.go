package core

import "testing"

func TestCertainSetBasicOrder(t *testing.T) {
	s := newCertainSet()
	s.reserve(3)
	s.add(10, 5)
	s.add(11, 9)
	s.add(12, 1)
	s.add(13, 7)
	ids, levels := s.topK(3)
	wantIDs := []int{11, 13, 10}
	wantLv := []int{9, 7, 5}
	for i := range wantIDs {
		if ids[i] != wantIDs[i] || levels[i] != wantLv[i] {
			t.Fatalf("topK = %v/%v, want %v/%v", ids, levels, wantIDs, wantLv)
		}
	}
	if s.kth(1) != 9 || s.kth(2) != 7 || s.kth(3) != 5 {
		t.Fatal("kth wrong")
	}
	if s.len() != 4 {
		t.Fatalf("len = %d, want 4", s.len())
	}
}

func TestCertainSetTieBreaksByID(t *testing.T) {
	s := newCertainSet()
	s.reserve(2)
	s.add(9, 5)
	s.add(3, 5)
	s.add(6, 5)
	ids, _ := s.topK(2)
	if ids[0] != 3 || ids[1] != 6 {
		t.Fatalf("tie break wrong: %v", ids)
	}
}

func TestCertainSetDiscardsBelowTop(t *testing.T) {
	s := newCertainSet()
	s.reserve(2)
	for i := 0; i < 100; i++ {
		s.add(i, i)
	}
	ids, levels := s.topK(2)
	if ids[0] != 99 || ids[1] != 98 || levels[0] != 99 || levels[1] != 98 {
		t.Fatalf("topK = %v/%v", ids, levels)
	}
	if len(s.top) != 2 {
		t.Fatalf("retained %d entries, want 2", len(s.top))
	}
}

func TestCertainSetKthPanicsOutOfRange(t *testing.T) {
	s := newCertainSet()
	s.reserve(2)
	s.add(0, 1)
	s.add(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("kth(3) beyond reserved capacity should panic")
		}
	}()
	s.kth(3)
}

func TestCertainSetAscendingInserts(t *testing.T) {
	s := newCertainSet()
	s.reserve(4)
	for i := 1; i <= 10; i++ {
		s.add(i, i)
	}
	_, levels := s.topK(4)
	want := []int{10, 9, 8, 7}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}

func TestCertainSetNegativeLevels(t *testing.T) {
	s := newCertainSet()
	s.reserve(2)
	s.add(0, -5)
	s.add(1, -2)
	s.add(2, -9)
	if s.kth(1) != -2 || s.kth(2) != -5 {
		t.Fatal("negative levels mishandled")
	}
}
