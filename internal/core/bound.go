package core

import (
	"fmt"

	"github.com/everest-project/everest/internal/uncertain"
)

// BoundKind selects how the engine computes the confidence p̂ from the
// uncertain tuples' marginal distributions.
type BoundKind int

const (
	// BoundIndependent is the paper's Eq. 2–3: p̂ = Π_{f∈D_u} F_f(S_k),
	// exact under the x-tuple independence assumption of §2 (frames and
	// tumbling windows after the difference detector).
	BoundIndependent BoundKind = iota
	// BoundUnion is the Bonferroni lower bound p̂ ≥ 1 − Σ_{f∈D_u}
	// (1 − F_f(S_k)), valid under arbitrary dependence between tuples. It
	// is required for overlapping sliding windows, whose scores share
	// frames and are therefore correlated; Phase 2 keeps its probabilistic
	// guarantee at the cost of extra cleaning.
	BoundUnion
)

// String implements fmt.Stringer.
func (b BoundKind) String() string {
	switch b {
	case BoundIndependent:
		return "independent"
	case BoundUnion:
		return "union"
	default:
		return fmt.Sprintf("BoundKind(%d)", int(b))
	}
}

func (b BoundKind) validate() error {
	switch b {
	case BoundIndependent, BoundUnion:
		return nil
	default:
		return fmt.Errorf("core: unknown bound kind %d", int(b))
	}
}

// noExceed abstracts "the probability that no member uncertain tuple
// scores above t" — the quantity Phase 2 compares against thres. The
// independent implementation computes it exactly (Eq. 3); the union
// implementation lower-bounds it without any independence assumption.
type noExceed interface {
	// Prob returns Pr(∀ members f: S_f ≤ t), or a valid lower bound.
	Prob(t int) float64
	// ProbExcluding returns Prob over members excluding one with
	// distribution d (the Eq. 5 per-candidate factor).
	ProbExcluding(d uncertain.Dist, t int) float64
	// Remove deletes a cleaned member.
	Remove(d uncertain.Dist)
	// Len returns the member count.
	Len() int
}

// indepProb is the exact product form backed by the log-space JointCDF.
type indepProb struct{ j *uncertain.JointCDF }

func (p indepProb) Prob(t int) float64 { return p.j.At(t) }
func (p indepProb) ProbExcluding(d uncertain.Dist, t int) float64 {
	return p.j.AtExcluding(d, t)
}
func (p indepProb) Remove(d uncertain.Dist) { p.j.Remove(d) }
func (p indepProb) Len() int                { return p.j.Len() }

// unionProb is the Bonferroni form backed by the tail-sum accumulator.
type unionProb struct{ ts *uncertain.TailSum }

func (p unionProb) Prob(t int) float64 { return clamp01(1 - p.ts.At(t)) }
func (p unionProb) ProbExcluding(d uncertain.Dist, t int) float64 {
	return clamp01(1 - p.ts.AtExcluding(d, t))
}
func (p unionProb) Remove(d uncertain.Dist) { p.ts.Remove(d) }
func (p unionProb) Len() int                { return p.ts.Len() }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// newNoExceed builds the accumulator for the configured bound over the
// relation's uncertain tuples.
func newNoExceed(rel uncertain.Relation, kind BoundKind) noExceed {
	switch kind {
	case BoundUnion:
		return unionProb{uncertain.NewTailSumFromRelation(rel)}
	default:
		return indepProb{uncertain.NewJointCDFFromRelation(rel)}
	}
}
