package core

import (
	"reflect"
	"testing"

	"github.com/everest-project/everest/internal/simclock"
	"github.com/everest-project/everest/internal/xrand"
)

// runAtProcs executes one full Phase 2 over a freshly built (seeded)
// relation and returns everything observable: the result, the simulated
// clock total and the oracle's invocation count.
func runAtProcs(t *testing.T, cfg Config, procs int) (Result, float64, int) {
	t.Helper()
	// The relation must be larger than minParallelSelect so the parallel
	// E[X_f] scan actually engages (smaller relations fall back to the
	// serial path, which is the same contract trivially).
	r := xrand.New(99).Split("core/parallel")
	rel, oracle := randomRelation(r, minParallelSelect+500, 60, 6, 10)
	clock := simclock.NewClock()
	cfg.Procs = procs
	eng, err := NewEngine(rel, cfg, oracle, clock, simclock.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, clock.TotalMS(), oracle.calls
}

// TestEngineProcsBitIdentical mirrors cmdn's package-level determinism
// contract for the parallel Select-candidate: batches, counters,
// simulated charges and the final Top-K must match the serial scan bit
// for bit at every worker count, in every bound mode, with and without
// the ψ early stop. Run under -race it also proves the speculative
// E[X_f] fan-out is data-race free.
func TestEngineProcsBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{K: 20, Threshold: 0.95}},
		{"no-early-stop", Config{K: 20, Threshold: 0.95, DisableEarlyStop: true}},
		{"union-bound", Config{K: 10, Threshold: 0.6, Bound: BoundUnion, MaxCleaned: 400}},
		{"batch-32", Config{K: 20, Threshold: 0.95, BatchSize: 32}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialRes, serialMS, serialCalls := runAtProcs(t, tc.cfg, 1)
			for _, procs := range []int{0, 2, 8} {
				res, ms, calls := runAtProcs(t, tc.cfg, procs)
				if !reflect.DeepEqual(res, serialRes) {
					t.Fatalf("procs=%d: result %+v != serial %+v", procs, res, serialRes)
				}
				if ms != serialMS {
					t.Fatalf("procs=%d: simulated cost %v != serial %v", procs, ms, serialMS)
				}
				if calls != serialCalls {
					t.Fatalf("procs=%d: oracle calls %d != serial %d", procs, calls, serialCalls)
				}
			}
		})
	}
}
